package esse_test

import (
	"context"
	"testing"

	"esse/internal/core"
	"esse/internal/realtime"
)

// TestEnsembleSchedulingOrderIndependence pins the determinism contract
// the esselint analyzers exist to protect: a fixed-master-seed twin
// experiment must produce bit-identical science whether the ensemble
// runs on one worker or eight. Member randomness derives from (seed,
// member index), the accumulator canonicalizes anomaly columns by
// member index, so the only remaining scheduling freedom is completion
// order — which must not leak into results.
//
// Convergence cancellation is disabled (MinSimilarity 2 is
// unattainable) so both runs use the identical member set; with
// adaptive cancellation the set itself depends on timing, which is the
// documented trade-off of the paper's convergence-driven workflow.
func TestEnsembleSchedulingOrderIndependence(t *testing.T) {
	type outcome struct {
		analysis []float64
		sigma    []float64
		rmse     []float64
	}
	run := func(workers int) outcome {
		cfg := integrationConfig()
		cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 2, MaxVarianceChange: 0}
		cfg.Ensemble.InitialSize = 8
		cfg.Ensemble.MaxSize = 8
		cfg.Ensemble.Workers = workers
		sys, err := realtime.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := outcome{
			analysis: append([]float64(nil), sys.Analysis()...),
			sigma:    append([]float64(nil), sys.Subspace().Sigma...),
		}
		for _, r := range results {
			out.rmse = append(out.rmse, r.RMSEForecastT, r.RMSEAnalysisT)
		}
		return out
	}

	serial := run(1)
	parallel := run(8)

	bitEqual := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s[%d]: Workers=1 gives %v, Workers=8 gives %v", name, i, a[i], b[i])
				return
			}
		}
	}
	bitEqual("analysis", serial.analysis, parallel.analysis)
	bitEqual("sigma", serial.sigma, parallel.sigma)
	bitEqual("rmse", serial.rmse, parallel.rmse)
}
