package core

import (
	"math"
	"sync"
	"testing"

	"esse/internal/rng"
)

func TestAccumulatorDiffsAgainstCentral(t *testing.T) {
	central := []float64{1, 2, 3}
	acc := NewAccumulator(central)
	if err := acc.Add(0, []float64{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	a := acc.Anomalies()
	if a.Rows != 3 || a.Cols != 1 {
		t.Fatalf("anomaly shape %dx%d", a.Rows, a.Cols)
	}
	if a.At(0, 0) != 1 || a.At(1, 0) != 0 || a.At(2, 0) != -1 {
		t.Fatalf("anomaly = %v", a.Data)
	}
}

func TestAccumulatorRejectsDuplicateIndex(t *testing.T) {
	acc := NewAccumulator([]float64{0})
	if err := acc.Add(5, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(5, []float64{2}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if acc.Len() != 1 {
		t.Fatalf("Len = %d after duplicate rejection", acc.Len())
	}
}

func TestAccumulatorRejectsWrongDim(t *testing.T) {
	acc := NewAccumulator([]float64{0, 0})
	if err := acc.Add(0, []float64{1}); err == nil {
		t.Fatal("wrong-dimension member accepted")
	}
}

func TestAccumulatorOutOfOrderIndices(t *testing.T) {
	acc := NewAccumulator([]float64{0})
	for _, idx := range []int{7, 2, 9, 1} {
		if err := acc.Add(idx, []float64{float64(idx)}); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshots are canonical (sorted by member index) so results never
	// depend on completion order; the raw arrival order stays available
	// for bookkeeping.
	got := acc.Indices()
	want := []int{1, 2, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want canonical order %v", got, want)
		}
	}
	arrival := acc.ArrivalOrder()
	wantArrival := []int{7, 2, 9, 1}
	for i := range wantArrival {
		if arrival[i] != wantArrival[i] {
			t.Fatalf("ArrivalOrder = %v, want %v", arrival, wantArrival)
		}
	}
	// Anomaly columns align with the canonical indices.
	a := acc.Anomalies()
	for j, idx := range want {
		if a.At(0, j) != float64(idx) {
			t.Fatalf("column %d = %v, want member %d's value", j, a.At(0, j), idx)
		}
	}
}

func TestAccumulatorEnsembleMean(t *testing.T) {
	acc := NewAccumulator([]float64{10, 20})
	_ = acc.Add(0, []float64{12, 20})
	_ = acc.Add(1, []float64{8, 24})
	mean := acc.EnsembleMean()
	if mean[0] != 10 || mean[1] != 22 {
		t.Fatalf("EnsembleMean = %v, want [10 22]", mean)
	}
}

func TestAccumulatorEmptyMeanIsCentral(t *testing.T) {
	acc := NewAccumulator([]float64{5, 6})
	mean := acc.EnsembleMean()
	if mean[0] != 5 || mean[1] != 6 {
		t.Fatalf("empty mean = %v", mean)
	}
}

func TestAccumulatorCentralIsCopied(t *testing.T) {
	central := []float64{1}
	acc := NewAccumulator(central)
	central[0] = 99
	if acc.Central()[0] != 1 {
		t.Fatal("accumulator aliased the caller's central slice")
	}
	c := acc.Central()
	c[0] = 42
	if acc.Central()[0] != 1 {
		t.Fatal("Central did not return a copy")
	}
}

func TestAccumulatorConcurrentAdds(t *testing.T) {
	const members = 200
	dim := 50
	central := make([]float64, dim)
	acc := NewAccumulator(central)
	s := rng.New(3)
	states := make([][]float64, members)
	for i := range states {
		states[i] = s.NormVec(nil, dim)
	}
	var wg sync.WaitGroup
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := acc.Add(i, states[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if acc.Len() != members {
		t.Fatalf("Len = %d, want %d", acc.Len(), members)
	}
	// Every index present exactly once.
	seen := make(map[int]bool)
	for _, idx := range acc.Indices() {
		if seen[idx] {
			t.Fatalf("index %d recorded twice", idx)
		}
		seen[idx] = true
	}
	// Anomalies correspond to the recorded index order.
	a := acc.Anomalies()
	idxs := acc.Indices()
	for j, idx := range idxs {
		for i := 0; i < dim; i++ {
			if math.Abs(a.At(i, j)-states[idx][i]) > 1e-15 {
				t.Fatalf("anomaly column %d does not match member %d", j, idx)
			}
		}
	}
}

func TestAnomaliesSnapshotIsolation(t *testing.T) {
	acc := NewAccumulator([]float64{0})
	_ = acc.Add(0, []float64{1})
	snap := acc.Anomalies()
	_ = acc.Add(1, []float64{2})
	if snap.Cols != 1 {
		t.Fatal("snapshot grew after later Add")
	}
}
