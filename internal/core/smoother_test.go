package core

import (
	"testing"

	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/obs"
	"esse/internal/rng"
)

// smootherTwin builds a linear-dynamics twin setup: members are drawn at
// t0, advanced by x1 = A x0, and the truth follows the same dynamics.
// Observations at t1 should then pull the t0 estimate toward the t0
// truth through the cross-covariance.
func smootherTwin(t *testing.T, seed uint64, members int) (x0 []float64, truth0 []float64,
	anoms0, anoms1 *linalg.Dense, network *obs.Network, y []float64) {
	t.Helper()
	s := rng.New(seed)
	g := grid.New(5, 5, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 1}})
	dim := l.Dim()

	// Linear dynamics: a contraction plus a fixed rotation-ish mixing.
	a := linalg.Identity(dim)
	for i := 0; i < dim-1; i++ {
		a.Set(i, i+1, 0.3)
	}
	linalg.ScaleInPlace(0.9, a)
	advance := func(x []float64) []float64 { return linalg.MatVec(a, x) }

	x0 = s.NormVec(nil, dim)
	// Truth = estimate + error of the same magnitude as member spread.
	err0 := s.NormVec(nil, dim)
	truth0 = make([]float64, dim)
	for i := range truth0 {
		truth0[i] = x0[i] + err0[i]
	}
	truth1 := advance(truth0)

	anoms0 = linalg.NewDense(dim, members)
	anoms1 = linalg.NewDense(dim, members)
	for j := 0; j < members; j++ {
		pert := s.NormVec(nil, dim)
		anoms0.SetCol(j, pert)
		anoms1.SetCol(j, advance(pert))
	}

	network = obs.NewNetwork(l)
	for i := 0; i < 5; i++ {
		if err := network.Add(obs.Observation{Var: "T", I: i, J: i, K: 0, Stddev: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	x1 := advance(x0)
	yObs := network.Sample(truth1, s)
	y = linalg.VecSub(yObs, network.ApplyH(x1)) // innovation at t1
	return
}

func TestSmootherReducesEarlierError(t *testing.T) {
	improved := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		x0, truth0, a0, a1, network, y := smootherTwin(t, uint64(200+trial), 60)
		res, err := SmoothPrevious(x0, a0, a1, network, y)
		if err != nil {
			t.Fatal(err)
		}
		before := linalg.Norm2(linalg.VecSub(x0, truth0))
		after := linalg.Norm2(linalg.VecSub(res.Mean, truth0))
		if after < before {
			improved++
		}
	}
	if improved < trials*3/5 {
		t.Fatalf("smoother improved the earlier state in only %d/%d trials", improved, trials)
	}
}

func TestSmootherNoObsIsIdentity(t *testing.T) {
	x0, _, a0, a1, _, _ := smootherTwin(t, 1, 10)
	g := grid.New(5, 5, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 1}})
	empty := obs.NewNetwork(l)
	res, err := SmoothPrevious(x0, a0, a1, empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IncrementNorm != 0 {
		t.Fatalf("empty network produced increment %v", res.IncrementNorm)
	}
	for i := range x0 {
		if res.Mean[i] != x0[i] {
			t.Fatal("state changed with no observations")
		}
	}
}

func TestSmootherValidation(t *testing.T) {
	x0, _, a0, a1, network, y := smootherTwin(t, 2, 10)
	short := a1.Slice(0, a1.Rows, 0, 5)
	if _, err := SmoothPrevious(x0, a0, short, network, y); err == nil {
		t.Fatal("column mismatch accepted")
	}
	if _, err := SmoothPrevious(x0[:3], a0, a1, network, y); err == nil {
		t.Fatal("state dim mismatch accepted")
	}
	if _, err := SmoothPrevious(x0, a0, a1, network, y[:1]); err == nil {
		t.Fatal("obs count mismatch accepted")
	}
	one := a0.Slice(0, a0.Rows, 0, 1)
	if _, err := SmoothPrevious(x0, one, one, network, y); err == nil {
		t.Fatal("single-member ensemble accepted")
	}
}

func TestSmootherIncrementInSpan(t *testing.T) {
	// The smoother increment must lie in the span of the t0 anomalies.
	x0, _, a0, a1, network, y := smootherTwin(t, 3, 8)
	res, err := SmoothPrevious(x0, a0, a1, network, y)
	if err != nil {
		t.Fatal(err)
	}
	incr := linalg.VecSub(res.Mean, x0)
	// Project onto an orthonormal basis of span(A0) and compare.
	qr := linalg.QR(a0)
	coef := linalg.MatTVec(qr.Q, incr)
	proj := linalg.MatVec(qr.Q, coef)
	resid := linalg.Norm2(linalg.VecSub(incr, proj))
	if resid > 1e-9*(1+linalg.Norm2(incr)) {
		t.Fatalf("smoother increment leaves the anomaly span: residual %v", resid)
	}
}

func TestSmootherZeroInnovationNoChange(t *testing.T) {
	x0, _, a0, a1, network, y := smootherTwin(t, 4, 12)
	for i := range y {
		y[i] = 0
	}
	res, err := SmoothPrevious(x0, a0, a1, network, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.IncrementNorm > 1e-12 {
		t.Fatalf("zero innovation moved the state by %v", res.IncrementNorm)
	}
}
