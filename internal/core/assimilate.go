package core

import (
	"fmt"
	"math"

	"esse/internal/linalg"
)

// ObsOperator abstracts the measurement system: a point (or generalized)
// operator H with diagonal error covariance R. obs.Network satisfies it;
// wrappers (e.g. non-dimensionalizing scalers) compose around it.
type ObsOperator interface {
	// Len returns the number of observations.
	Len() int
	// ApplyH computes y = H x.
	ApplyH(state []float64) []float64
	// ApplyHMat computes H E for a mode matrix E.
	ApplyHMat(e *linalg.Dense) *linalg.Dense
	// RDiag returns the diagonal of the observation error covariance.
	RDiag() []float64
}

// Analysis is the result of an ESSE assimilation update.
type Analysis struct {
	// Mean is the analysis (posterior) state estimate.
	Mean []float64
	// Posterior is the updated error subspace.
	Posterior *Subspace
	// InnovationNorm is the R⁻¹-weighted misfit ‖y − Hx‖_R⁻¹ before the
	// update. The weighting is what the minimum-error-variance update
	// provably reduces; the unweighted norm can grow when observation
	// errors are heterogeneous.
	InnovationNorm float64
	// ResidualNorm is ‖y − Hx‖_R⁻¹ after the update.
	ResidualNorm float64
}

// Assimilate performs the ESSE minimum-error-variance (Kalman) update in
// the error subspace. With forecast mean x, subspace (E, σ), point
// measurement operator H, observations y and diagonal error covariance R:
//
//	Γ   = diag(σ²)                      (subspace covariance)
//	HE  = H E                           (obsDim × p, by row gathering)
//	S   = HE Γ HEᵀ + R                  (innovation covariance)
//	K d = E Γ HEᵀ S⁻¹ (y − Hx)          (gain applied to innovation)
//	Γa  = Γ − Γ HEᵀ S⁻¹ HE Γ            (posterior subspace covariance)
//
// Γa is re-diagonalized (Γa = W Λ Wᵀ) and the posterior modes rotated to
// Ea = E W so that the invariant "orthonormal modes, diagonal spectrum"
// holds for the next forecast cycle.
func Assimilate(x []float64, sub *Subspace, network ObsOperator, y []float64) (*Analysis, error) {
	p := sub.Rank()
	mObs := network.Len()
	if len(y) != mObs {
		return nil, fmt.Errorf("core: %d observations but %d values", mObs, len(y))
	}
	if len(x) != sub.StateDim() {
		return nil, fmt.Errorf("core: state dim %d != subspace dim %d", len(x), sub.StateDim())
	}
	if mObs == 0 {
		mean := make([]float64, len(x))
		copy(mean, x)
		return &Analysis{Mean: mean, Posterior: sub.Clone()}, nil
	}

	he := network.ApplyHMat(sub.Modes) // mObs × p
	rDiag := network.RDiag()

	// S = HE Γ HEᵀ + R.
	heg := linalg.NewDense(mObs, p) // HE Γ
	for i := 0; i < mObs; i++ {
		row := he.Row(i)
		out := heg.Row(i)
		for j := 0; j < p; j++ {
			out[j] = row[j] * sub.Sigma[j] * sub.Sigma[j]
		}
	}
	s := linalg.MulBT(heg, he)
	for i := 0; i < mObs; i++ {
		s.Set(i, i, s.At(i, i)+rDiag[i])
	}

	// Innovation d = y − Hx (diagnostics use the R⁻¹ weighting).
	hx := network.ApplyH(x)
	d := linalg.VecSub(y, hx)
	innovationNorm := weightedNorm(d, rDiag)

	sInv, ok := linalg.InvertSPD(s)
	if !ok {
		return nil, fmt.Errorf("core: innovation covariance not positive definite (rank %d, %d obs)", p, mObs)
	}

	// Gain applied to innovation: K d = E Γ HEᵀ S⁻¹ d.
	sid := linalg.MatVec(sInv, d)      // S⁻¹ d
	ghesid := linalg.MatTVec(heg, sid) // Γ HEᵀ S⁻¹ d  (p)
	incr := linalg.MatVec(sub.Modes, ghesid)

	mean := make([]float64, len(x))
	for i := range x {
		mean[i] = x[i] + incr[i]
	}

	// Posterior subspace covariance Γa = Γ − Γ HEᵀ S⁻¹ HE Γ.
	gheT := heg.T()                 // p × mObs  (Γ HEᵀ)
	tmp := linalg.Mul(gheT, sInv)   // p × mObs
	reduce := linalg.Mul(tmp, heg)  // p × p  (Γ HEᵀ S⁻¹ HE Γ)
	gammaA := linalg.NewDense(p, p) // Γ − reduce
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			v := -reduce.At(i, j)
			if i == j {
				v += sub.Sigma[i] * sub.Sigma[i]
			}
			gammaA.Set(i, j, v)
		}
	}

	// Re-diagonalize and rotate the modes.
	eig := linalg.SymEig(gammaA)
	sigma := make([]float64, p)
	for i, lam := range eig.Values {
		if lam < 0 {
			lam = 0 // clip round-off negatives: covariance is PSD
		}
		sigma[i] = math.Sqrt(lam)
	}
	modes := linalg.Mul(sub.Modes, eig.Vectors)

	post := &Subspace{Modes: modes, Sigma: sigma}
	res := linalg.VecSub(y, network.ApplyH(mean))
	return &Analysis{
		Mean:           mean,
		Posterior:      post,
		InnovationNorm: innovationNorm,
		ResidualNorm:   weightedNorm(res, rDiag),
	}, nil
}

// weightedNorm computes ‖v‖ in the R⁻¹ metric for diagonal R.
func weightedNorm(v, rDiag []float64) float64 {
	s := 0.0
	for i, x := range v {
		s += x * x / rDiag[i]
	}
	return math.Sqrt(s)
}
