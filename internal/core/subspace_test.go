package core

import (
	"math"
	"testing"

	"esse/internal/linalg"
	"esse/internal/rng"
)

// randomSubspace builds an orthonormal subspace of rank p in dimension m
// with the given sigmas via QR of a random matrix.
func randomSubspace(s *rng.Stream, m, p int, sigma []float64) *Subspace {
	a := linalg.NewDense(m, p)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	sig := make([]float64, p)
	copy(sig, sigma)
	return &Subspace{Modes: f.Q, Sigma: sig}
}

func TestSubspaceFromAnomaliesReconstructsCovariance(t *testing.T) {
	s := rng.New(1)
	m, n := 30, 12
	a := linalg.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	sub := SubspaceFromAnomalies(a, 0, 0)
	// P = A Aᵀ/(n−1) must equal E Σ² Eᵀ when no truncation occurs.
	p := linalg.Scale(1/float64(n-1), linalg.MulBT(a, a))
	es := linalg.NewDense(m, sub.Rank())
	for i := 0; i < m; i++ {
		for j := 0; j < sub.Rank(); j++ {
			es.Set(i, j, sub.Modes.At(i, j)*sub.Sigma[j]*sub.Sigma[j])
		}
	}
	rec := linalg.MulBT(es, sub.Modes)
	if !rec.EqualApprox(p, 1e-8*(1+p.MaxAbs())) {
		t.Fatal("E Σ² Eᵀ does not reconstruct the sample covariance")
	}
}

func TestSubspaceInvariants(t *testing.T) {
	s := rng.New(2)
	a := linalg.NewDense(50, 8)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	sub := SubspaceFromAnomalies(a, 0, 1e-12)
	if err := sub.Check(1e-8); err != nil {
		t.Fatal(err)
	}
}

func TestSubspaceTruncationByTolerance(t *testing.T) {
	// Rank-2 anomalies: higher modes must be dropped at a loose relTol.
	s := rng.New(3)
	u := linalg.NewDense(40, 2)
	for i := range u.Data {
		u.Data[i] = s.Norm()
	}
	v := linalg.NewDense(10, 2)
	for i := range v.Data {
		v.Data[i] = s.Norm()
	}
	a := linalg.MulBT(u, v)
	sub := SubspaceFromAnomalies(a, 0, 1e-6)
	if sub.Rank() != 2 {
		t.Fatalf("rank = %d, want 2 (σ = %v)", sub.Rank(), sub.Sigma)
	}
}

func TestSubspaceMaxRank(t *testing.T) {
	s := rng.New(4)
	a := linalg.NewDense(30, 10)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	sub := SubspaceFromAnomalies(a, 4, 0)
	if sub.Rank() != 4 {
		t.Fatalf("rank = %d, want 4", sub.Rank())
	}
}

func TestTotalVarianceMatchesTrace(t *testing.T) {
	s := rng.New(5)
	a := linalg.NewDense(25, 8)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	sub := SubspaceFromAnomalies(a, 0, 0)
	// Trace of sample covariance == total variance (no truncation).
	p := linalg.Scale(1/float64(a.Cols-1), linalg.MulBT(a, a))
	if math.Abs(sub.TotalVariance()-p.Trace()) > 1e-8*(1+p.Trace()) {
		t.Fatalf("TotalVariance %v != trace %v", sub.TotalVariance(), p.Trace())
	}
}

func TestVariancePointwise(t *testing.T) {
	s := rng.New(6)
	sub := randomSubspace(s, 20, 3, []float64{3, 2, 1})
	vp := sub.VariancePointwise()
	// Compare against explicit diag(E Σ² Eᵀ).
	for i := 0; i < 20; i++ {
		want := 0.0
		for j := 0; j < 3; j++ {
			e := sub.Modes.At(i, j)
			want += e * e * sub.Sigma[j] * sub.Sigma[j]
		}
		if math.Abs(vp[i]-want) > 1e-12 {
			t.Fatalf("VariancePointwise[%d] = %v, want %v", i, vp[i], want)
		}
	}
}

func TestPerturbStatistics(t *testing.T) {
	s := rng.New(7)
	m, p := 6, 2
	sub := randomSubspace(s, m, p, []float64{2, 1})
	const draws = 40000
	mean := make([]float64, m)
	cov := linalg.NewDense(m, m)
	buf := make([]float64, m)
	for d := 0; d < draws; d++ {
		sub.Perturb(buf, s, 0)
		for i := range buf {
			mean[i] += buf[i]
		}
		linalg.OuterAdd(cov, 1, buf, buf)
	}
	for i := range mean {
		mean[i] /= draws
		if math.Abs(mean[i]) > 0.05 {
			t.Fatalf("perturbation mean[%d] = %v, want ~0", i, mean[i])
		}
	}
	linalg.ScaleInPlace(1.0/draws, cov)
	// Expected covariance E Σ² Eᵀ.
	want := linalg.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := 0.0
			for k := 0; k < p; k++ {
				v += sub.Modes.At(i, k) * sub.Modes.At(j, k) * sub.Sigma[k] * sub.Sigma[k]
			}
			want.Set(i, j, v)
		}
	}
	if !cov.EqualApprox(want, 0.12) {
		t.Fatal("sample covariance of perturbations deviates from E Σ² Eᵀ")
	}
}

func TestPerturbWhiteNoiseAddsVariance(t *testing.T) {
	s := rng.New(8)
	sub := randomSubspace(s, 10, 2, []float64{1, 0.5})
	const draws = 20000
	varNo, varWith := 0.0, 0.0
	buf := make([]float64, 10)
	for d := 0; d < draws; d++ {
		sub.Perturb(buf, s, 0)
		for _, v := range buf {
			varNo += v * v
		}
		sub.Perturb(buf, s, 0.5)
		for _, v := range buf {
			varWith += v * v
		}
	}
	// White noise of amplitude 0.5 adds 0.25 variance per element: total
	// added ≈ 10*0.25*draws.
	added := (varWith - varNo) / draws
	if added < 1.5 || added > 3.5 {
		t.Fatalf("white-noise added variance per draw = %v, want ~2.5", added)
	}
}

func TestSimilarityIdenticalSubspaces(t *testing.T) {
	s := rng.New(9)
	sub := randomSubspace(s, 15, 4, []float64{4, 3, 2, 1})
	if rho := SimilarityCoefficient(sub, sub); math.Abs(rho-1) > 1e-10 {
		t.Fatalf("self-similarity = %v, want 1", rho)
	}
}

func TestSimilarityOrthogonalSubspaces(t *testing.T) {
	// Disjoint coordinate subspaces are exactly orthogonal.
	m := 10
	e1 := linalg.NewDense(m, 2)
	e1.Set(0, 0, 1)
	e1.Set(1, 1, 1)
	e2 := linalg.NewDense(m, 2)
	e2.Set(2, 0, 1)
	e2.Set(3, 1, 1)
	a := &Subspace{Modes: e1, Sigma: []float64{1, 1}}
	b := &Subspace{Modes: e2, Sigma: []float64{1, 1}}
	if rho := SimilarityCoefficient(a, b); rho > 1e-12 {
		t.Fatalf("orthogonal similarity = %v, want 0", rho)
	}
}

func TestSimilarityIsVarianceWeighted(t *testing.T) {
	// b has one mode inside a (σ=3) and one outside (σ=1):
	// ρ = 9/(9+1) = 0.9.
	m := 8
	e1 := linalg.NewDense(m, 1)
	e1.Set(0, 0, 1)
	a := &Subspace{Modes: e1, Sigma: []float64{1}}
	e2 := linalg.NewDense(m, 2)
	e2.Set(0, 0, 1)
	e2.Set(5, 1, 1)
	b := &Subspace{Modes: e2, Sigma: []float64{3, 1}}
	if rho := SimilarityCoefficient(a, b); math.Abs(rho-0.9) > 1e-12 {
		t.Fatalf("weighted similarity = %v, want 0.9", rho)
	}
}

func TestSimilarityRangeProperty(t *testing.T) {
	s := rng.New(10)
	for trial := 0; trial < 20; trial++ {
		st := s.Split(uint64(trial))
		a := randomSubspace(st, 12, 1+st.Intn(5), []float64{5, 4, 3, 2, 1})
		b := randomSubspace(st, 12, 1+st.Intn(5), []float64{5, 4, 3, 2, 1})
		rho := SimilarityCoefficient(a, b)
		if rho < -1e-12 || rho > 1+1e-12 {
			t.Fatalf("similarity %v outside [0,1]", rho)
		}
	}
}

func TestConvergedCriterion(t *testing.T) {
	s := rng.New(11)
	crit := DefaultConvergence()
	sub := randomSubspace(s, 20, 3, []float64{3, 2, 1})
	if ok, rho := crit.Converged(sub, sub); !ok || math.Abs(rho-1) > 1e-9 {
		t.Fatalf("identical subspaces must converge (ok=%v rho=%v)", ok, rho)
	}
	// Same modes but very different variance: must NOT converge.
	inflated := sub.Clone()
	for i := range inflated.Sigma {
		inflated.Sigma[i] *= 2
	}
	if ok, _ := crit.Converged(sub, inflated); ok {
		t.Fatal("4x variance change must fail the convergence test")
	}
	if ok, _ := crit.Converged(nil, sub); ok {
		t.Fatal("nil previous subspace cannot converge")
	}
}

func TestTruncateSubspace(t *testing.T) {
	s := rng.New(12)
	sub := randomSubspace(s, 10, 4, []float64{4, 3, 2, 1})
	tr := sub.Truncate(2)
	if tr.Rank() != 2 || tr.Modes.Cols != 2 {
		t.Fatal("Truncate failed")
	}
	if tr.Sigma[0] != 4 || tr.Sigma[1] != 3 {
		t.Fatal("Truncate kept wrong sigmas")
	}
	if sub.Truncate(10) != sub {
		t.Fatal("Truncate beyond rank should return the receiver")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	s := rng.New(13)
	sub := randomSubspace(s, 10, 2, []float64{2, 1})
	bad := sub.Clone()
	bad.Sigma[1] = -1
	if bad.Check(1e-8) == nil {
		t.Fatal("negative sigma not detected")
	}
	bad2 := sub.Clone()
	bad2.Sigma[0], bad2.Sigma[1] = 1, 2
	if bad2.Check(1e-8) == nil {
		t.Fatal("non-descending sigma not detected")
	}
	bad3 := sub.Clone()
	bad3.Modes.Set(0, 0, bad3.Modes.At(0, 0)+0.5)
	if bad3.Check(1e-8) == nil {
		t.Fatal("non-orthonormal modes not detected")
	}
}

func TestSubspaceFromSnapshots(t *testing.T) {
	// Snapshots varying along two known directions.
	s := rng.New(14)
	m, n := 20, 15
	d1 := make([]float64, m)
	d2 := make([]float64, m)
	d1[0], d2[1] = 1, 1
	snaps := linalg.NewDense(m, n)
	base := s.NormVec(nil, m)
	for j := 0; j < n; j++ {
		c1 := 3 * s.Norm()
		c2 := 1 * s.Norm()
		for i := 0; i < m; i++ {
			snaps.Set(i, j, base[i]+c1*d1[i]+c2*d2[i])
		}
	}
	sub := SubspaceFromSnapshots(snaps, 2)
	if sub.Rank() != 2 {
		t.Fatalf("rank = %d", sub.Rank())
	}
	// Leading mode must align with d1 (the high-variance direction).
	if math.Abs(sub.Modes.At(0, 0)) < 0.9 {
		t.Fatalf("leading mode not aligned with dominant direction: %v", sub.Modes.At(0, 0))
	}
	if err := sub.Check(1e-8); err != nil {
		t.Fatal(err)
	}
}
