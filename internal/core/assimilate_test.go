package core

import (
	"math"
	"testing"

	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/obs"
	"esse/internal/rng"
)

// scalarSetup builds a 1-variable, 2x2x1 grid whose state has 4 elements,
// a rank-1 subspace aligned with state element 0, and one observation of
// that element. The update then reduces to the textbook scalar Kalman
// filter, which we can check analytically.
func scalarSetup(t *testing.T, priorVar, obsVar float64) (*grid.StateLayout, *Subspace, *obs.Network) {
	t.Helper()
	g := grid.New(2, 2, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 1}})
	e := linalg.NewDense(4, 1)
	e.Set(0, 0, 1)
	sub := &Subspace{Modes: e, Sigma: []float64{math.Sqrt(priorVar)}}
	n := obs.NewNetwork(l)
	if err := n.Add(obs.Observation{Var: "T", I: 0, J: 0, K: 0, Stddev: math.Sqrt(obsVar)}); err != nil {
		t.Fatal(err)
	}
	return l, sub, n
}

func TestAssimilateMatchesScalarKalman(t *testing.T) {
	priorVar, obsVar := 4.0, 1.0
	_, sub, n := scalarSetup(t, priorVar, obsVar)
	x := []float64{10, 0, 0, 0}
	y := []float64{12}
	an, err := Assimilate(x, sub, n, y)
	if err != nil {
		t.Fatal(err)
	}
	// Scalar Kalman: K = P/(P+R) = 4/5; xa = 10 + 0.8*2 = 11.6;
	// Pa = (1-K)P = 0.8.
	if math.Abs(an.Mean[0]-11.6) > 1e-10 {
		t.Fatalf("analysis mean = %v, want 11.6", an.Mean[0])
	}
	if math.Abs(an.Posterior.Sigma[0]*an.Posterior.Sigma[0]-0.8) > 1e-10 {
		t.Fatalf("posterior variance = %v, want 0.8", an.Posterior.Sigma[0]*an.Posterior.Sigma[0])
	}
	// Unobserved elements unchanged.
	for i := 1; i < 4; i++ {
		if an.Mean[i] != 0 {
			t.Fatalf("unobserved element %d changed to %v", i, an.Mean[i])
		}
	}
}

func TestAssimilateReducesResidual(t *testing.T) {
	_, sub, n := scalarSetup(t, 4, 1)
	an, err := Assimilate([]float64{10, 0, 0, 0}, sub, n, []float64{12})
	if err != nil {
		t.Fatal(err)
	}
	if an.ResidualNorm >= an.InnovationNorm {
		t.Fatalf("residual %v not below innovation %v", an.ResidualNorm, an.InnovationNorm)
	}
}

func TestAssimilateReducesVariance(t *testing.T) {
	// Multi-mode subspace with several observations: total posterior
	// variance must not exceed the prior, and the posterior must satisfy
	// the subspace invariants.
	s := rng.New(5)
	g := grid.New(4, 4, 2, 1, 1, 100)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 2}})
	sub := randomSubspace(s, l.Dim(), 4, []float64{2, 1.5, 1, 0.5})
	n := obs.NewNetwork(l)
	for i := 0; i < 4; i++ {
		if err := n.Add(obs.Observation{Var: "T", I: i, J: i, K: 0, Stddev: 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	x := s.NormVec(nil, l.Dim())
	truth := s.NormVec(nil, l.Dim())
	y := n.ApplyH(truth)
	an, err := Assimilate(x, sub, n, y)
	if err != nil {
		t.Fatal(err)
	}
	if an.Posterior.TotalVariance() > sub.TotalVariance()+1e-10 {
		t.Fatalf("posterior variance %v exceeds prior %v",
			an.Posterior.TotalVariance(), sub.TotalVariance())
	}
	if err := an.Posterior.Check(1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestAssimilateNoObservationsIsIdentity(t *testing.T) {
	s := rng.New(6)
	g := grid.New(3, 3, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 1}})
	sub := randomSubspace(s, l.Dim(), 2, []float64{1, 0.5})
	n := obs.NewNetwork(l)
	x := s.NormVec(nil, l.Dim())
	an, err := Assimilate(x, sub, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if an.Mean[i] != x[i] {
			t.Fatal("mean changed with no observations")
		}
	}
	if math.Abs(an.Posterior.TotalVariance()-sub.TotalVariance()) > 1e-12 {
		t.Fatal("variance changed with no observations")
	}
}

func TestAssimilatePerfectObservationPinsState(t *testing.T) {
	// Near-zero observation error: the analysis must move essentially all
	// the way to the observation.
	_, sub, _ := scalarSetup(t, 4, 1)
	g := grid.New(2, 2, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 1}})
	n := obs.NewNetwork(l)
	if err := n.Add(obs.Observation{Var: "T", I: 0, J: 0, K: 0, Stddev: 1e-4}); err != nil {
		t.Fatal(err)
	}
	an, err := Assimilate([]float64{10, 0, 0, 0}, sub, n, []float64{13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Mean[0]-13) > 1e-4 {
		t.Fatalf("near-perfect obs: mean = %v, want ~13", an.Mean[0])
	}
	if v := an.Posterior.Sigma[0]; v > 1e-3 {
		t.Fatalf("posterior sigma %v should collapse under near-perfect obs", v)
	}
}

func TestAssimilateDimensionErrors(t *testing.T) {
	_, sub, n := scalarSetup(t, 1, 1)
	if _, err := Assimilate([]float64{1, 2, 3, 4}, sub, n, []float64{1, 2}); err == nil {
		t.Fatal("observation count mismatch not detected")
	}
	if _, err := Assimilate([]float64{1, 2}, sub, n, []float64{1}); err == nil {
		t.Fatal("state dimension mismatch not detected")
	}
}

func TestAssimilatePullsTowardTruth(t *testing.T) {
	// Monte-Carlo twin check: analyses must on average be closer to the
	// truth than the forecasts, in the observed subspace.
	s := rng.New(7)
	g := grid.New(5, 5, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 1}})
	n := obs.NewNetwork(l)
	for i := 0; i < 5; i++ {
		if err := n.Add(obs.Observation{Var: "T", I: i, J: i, K: 0, Stddev: 0.2}); err != nil {
			t.Fatal(err)
		}
	}
	better := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		st := s.Split(uint64(trial))
		sub := randomSubspace(st, l.Dim(), 5, []float64{2, 1.5, 1.2, 1, 0.8})
		truth := st.NormVec(nil, l.Dim())
		// Forecast = truth + error drawn from the prior subspace.
		x := make([]float64, l.Dim())
		sub.Perturb(x, st, 0)
		for i := range x {
			x[i] += truth[i]
		}
		y := n.Sample(truth, st)
		an, err := Assimilate(x, sub, n, y)
		if err != nil {
			t.Fatal(err)
		}
		errF := linalg.Norm2(linalg.VecSub(n.ApplyH(x), n.ApplyH(truth)))
		errA := linalg.Norm2(linalg.VecSub(n.ApplyH(an.Mean), n.ApplyH(truth)))
		if errA < errF {
			better++
		}
	}
	if better < trials*3/4 {
		t.Fatalf("analysis beat forecast in only %d/%d trials", better, trials)
	}
}
