// Package core implements Error Subspace Statistical Estimation (ESSE),
// the paper's primary contribution: characterization and prediction of
// the dominant forecast uncertainties via a variable-size error subspace,
// estimated from an ensemble of stochastic ocean model runs, and used for
// minimum-error-variance data assimilation.
//
// The pipeline mirrors Fig. 2 of the paper:
//
//  1. perturb the mean initial state with randomly weighted combinations
//     of the dominant error modes (plus truncation white noise),
//  2. integrate the stochastic model for each ensemble member,
//  3. form the normalized difference (anomaly) matrix against the
//     central forecast,
//  4. take the SVD of the anomaly matrix to obtain the new error
//     subspace,
//  5. test convergence of the subspace as the ensemble grows, and
//  6. assimilate observations in the converged subspace.
//
// This package holds the numerical algorithm; the many-task orchestration
// that distributes step 2 lives in internal/workflow.
package core

import (
	"fmt"
	"math"

	"esse/internal/linalg"
	"esse/internal/rng"
)

// Subspace is a dominant error subspace: the decomposition
// P ≈ E diag(σ²) Eᵀ of the forecast error covariance, with E the
// orthonormal error modes (stateDim × rank) and σ the mode standard
// deviations sorted in descending order.
type Subspace struct {
	Modes *linalg.Dense
	Sigma []float64
}

// Rank returns the subspace dimension.
func (s *Subspace) Rank() int { return len(s.Sigma) }

// StateDim returns the state dimension.
func (s *Subspace) StateDim() int { return s.Modes.Rows }

// TotalVariance returns Σ σᵢ² — the trace of the low-rank covariance.
func (s *Subspace) TotalVariance() float64 {
	t := 0.0
	for _, v := range s.Sigma {
		t += v * v
	}
	return t
}

// Truncate returns a subspace keeping only the leading k modes.
func (s *Subspace) Truncate(k int) *Subspace {
	if k >= s.Rank() {
		return s
	}
	sig := make([]float64, k)
	copy(sig, s.Sigma[:k])
	return &Subspace{Modes: s.Modes.Slice(0, s.Modes.Rows, 0, k), Sigma: sig}
}

// VariancePointwise returns the diagonal of E diag(σ²) Eᵀ — the
// marginal error variance of every state element. This is the field
// plotted in the paper's Figs. 5 and 6 (as standard deviations).
func (s *Subspace) VariancePointwise() []float64 {
	out := make([]float64, s.Modes.Rows)
	for i := 0; i < s.Modes.Rows; i++ {
		row := s.Modes.Row(i)
		v := 0.0
		for j, e := range row {
			v += e * e * s.Sigma[j] * s.Sigma[j]
		}
		out[i] = v
	}
	return out
}

// Clone deep-copies the subspace.
func (s *Subspace) Clone() *Subspace {
	sig := make([]float64, len(s.Sigma))
	copy(sig, s.Sigma)
	return &Subspace{Modes: s.Modes.Clone(), Sigma: sig}
}

// Check validates the structural invariants (orthonormal modes within
// tol, non-negative descending sigma), returning a descriptive error.
func (s *Subspace) Check(tol float64) error {
	if s.Modes.Cols != len(s.Sigma) {
		return fmt.Errorf("core: %d modes but %d sigmas", s.Modes.Cols, len(s.Sigma))
	}
	for i, v := range s.Sigma {
		if v < 0 {
			return fmt.Errorf("core: negative sigma[%d] = %v", i, v)
		}
		if i > 0 && v > s.Sigma[i-1]+tol {
			return fmt.Errorf("core: sigma not descending at %d: %v > %v", i, v, s.Sigma[i-1])
		}
	}
	gram := linalg.MulTA(s.Modes, s.Modes)
	if !gram.EqualApprox(linalg.Identity(s.Rank()), tol) {
		return fmt.Errorf("core: modes not orthonormal within %v", tol)
	}
	return nil
}

// SubspaceFromAnomalies builds the error subspace from an anomaly matrix
// A whose columns are (member − central forecast) state differences. The
// covariance estimate is A Aᵀ / (n−1); its dominant structure is obtained
// from the thin Gram SVD of A (cheap because A is extremely tall), and
// the returned σ are the anomaly singular values scaled by 1/sqrt(n−1)
// so that P ≈ E diag(σ²) Eᵀ.
//
// maxRank limits the subspace size; pass 0 to keep every non-degenerate
// mode. Modes with σ below relTol·σmax are dropped (the "comparison of
// the singular values" of the paper).
func SubspaceFromAnomalies(a *linalg.Dense, maxRank int, relTol float64) *Subspace {
	n := a.Cols
	if n < 2 {
		panic("core: need at least 2 anomaly columns")
	}
	if maxRank <= 0 || maxRank > n {
		maxRank = n
	}
	f := linalg.ThinSVDGram(a, maxRank)
	scale := 1 / math.Sqrt(float64(n-1))
	sig := make([]float64, 0, len(f.S))
	for _, s := range f.S {
		sig = append(sig, s*scale)
	}
	// Drop degenerate tail.
	keep := len(sig)
	if len(sig) > 0 && relTol > 0 {
		thresh := relTol * sig[0]
		keep = 0
		for _, s := range sig {
			if s > thresh {
				keep++
			}
		}
		if keep == 0 {
			keep = 1
		}
	}
	return &Subspace{
		Modes: f.U.Slice(0, f.U.Rows, 0, keep),
		Sigma: sig[:keep],
	}
}

// SubspaceFromSnapshots builds an initial error subspace from model
// snapshots (columns), using deviations from the snapshot mean. This is
// how the "error nowcast" that seeds a real-time experiment is produced
// when no previous assimilation cycle exists.
func SubspaceFromSnapshots(snaps *linalg.Dense, maxRank int) *Subspace {
	m, n := snaps.Rows, snaps.Cols
	if n < 2 {
		panic("core: need at least 2 snapshots")
	}
	mean := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			mean[i] += snaps.At(i, j)
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	anom := linalg.NewDense(m, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			anom.Set(i, j, snaps.At(i, j)-mean[i])
		}
	}
	return SubspaceFromAnomalies(anom, maxRank, 1e-10)
}

// Perturb draws one random perturbation of the mean state:
//
//	δx = E diag(σ) u + εw,   u ~ N(0, I_p),  w ~ N(0, I_M)
//
// The white-noise term (amplitude whiteAmp) represents the errors
// truncated by the subspace, exactly as in the paper's Section 6. The
// result is written into dst (allocated if nil).
func (s *Subspace) Perturb(dst []float64, stream *rng.Stream, whiteAmp float64) []float64 {
	m := s.StateDim()
	if dst == nil {
		dst = make([]float64, m)
	}
	dst = dst[:m]
	for i := range dst {
		dst[i] = 0
	}
	p := s.Rank()
	u := make([]float64, p)
	for j := 0; j < p; j++ {
		u[j] = s.Sigma[j] * stream.Norm()
	}
	// dst = E u (E is tall: iterate rows).
	for i := 0; i < m; i++ {
		row := s.Modes.Row(i)
		acc := 0.0
		for j, uj := range u {
			acc += row[j] * uj
		}
		dst[i] = acc
	}
	if whiteAmp > 0 {
		for i := range dst {
			dst[i] += whiteAmp * stream.Norm()
		}
	}
	return dst
}

// SimilarityCoefficient measures how much of the variance captured by
// subspace b already lies inside subspace a:
//
//	ρ = Σ_j σ²_b,j ‖Eaᵀ e_b,j‖² / Σ_j σ²_b,j  ∈ [0, 1]
//
// ρ → 1 as the subspaces converge. This is the variance-weighted
// projection criterion ESSE uses to compare error subspaces of different
// sizes (the "convergence criterion" box of Fig. 2).
func SimilarityCoefficient(a, b *Subspace) float64 {
	if a.StateDim() != b.StateDim() {
		panic("core: similarity of subspaces with different state dims")
	}
	tot := b.TotalVariance()
	if tot == 0 {
		return 1
	}
	// proj = Eaᵀ Eb  (pa × pb)
	proj := linalg.MulTA(a.Modes, b.Modes)
	num := 0.0
	for j := 0; j < proj.Cols; j++ {
		col := 0.0
		for i := 0; i < proj.Rows; i++ {
			v := proj.At(i, j)
			col += v * v
		}
		num += col * b.Sigma[j] * b.Sigma[j]
	}
	return num / tot
}

// ConvergenceCriterion bundles the thresholds of the ESSE convergence
// test between successive subspaces.
type ConvergenceCriterion struct {
	// MinSimilarity is the minimum variance-weighted subspace projection
	// (ρ) for convergence; the paper's experiments use values ~0.97.
	MinSimilarity float64
	// MaxVarianceChange is the maximum relative change in total variance.
	MaxVarianceChange float64
}

// DefaultConvergence returns the thresholds used by the reproduction.
func DefaultConvergence() ConvergenceCriterion {
	return ConvergenceCriterion{MinSimilarity: 0.97, MaxVarianceChange: 0.05}
}

// Converged reports whether the subspace estimate has converged from
// prev to cur, together with the measured similarity ρ.
func (c ConvergenceCriterion) Converged(prev, cur *Subspace) (bool, float64) {
	if prev == nil || cur == nil {
		return false, 0
	}
	rho := SimilarityCoefficient(prev, cur)
	if rho < c.MinSimilarity {
		return false, rho
	}
	vp, vc := prev.TotalVariance(), cur.TotalVariance()
	if vp == 0 && vc == 0 {
		return true, rho
	}
	denom := math.Max(vp, vc)
	if math.Abs(vc-vp)/denom > c.MaxVarianceChange {
		return false, rho
	}
	return true, rho
}
