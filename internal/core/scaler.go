package core

import (
	"fmt"

	"esse/internal/grid"
)

// Scaler non-dimensionalizes packed state vectors with per-variable
// reference scales. The paper's Section 2.2 notes that the coupled
// covariance "is computed and non-dimensionalized" — without this,
// whichever variable happens to carry the largest numeric variance
// (typically the fast gravity-wave velocities) monopolizes the error
// subspace, and slow tracers like temperature never enter it.
//
// In scaled space z = x ⊘ s, every variable contributes O(1) variance
// when its errors reach the reference scale. Subspaces, perturbations
// and assimilation all operate on z; physical states are recovered with
// FromScaled.
type Scaler struct {
	Scale []float64
}

// DefaultVarScales returns reference error scales for the ocean model's
// variables: 5 cm sea-surface height, 5 cm/s currents, 0.5 °C
// temperature, 0.05 PSU salinity — the mesoscale error magnitudes of a
// coastal forecast system.
func DefaultVarScales() map[string]float64 {
	return map[string]float64{
		"eta": 0.05,
		"u":   0.05,
		"v":   0.05,
		"T":   0.5,
		"S":   0.05,
	}
}

// NewScaler builds a per-element scale vector from per-variable scales.
// Variables missing from byVar default to scale 1.
func NewScaler(l *grid.StateLayout, byVar map[string]float64) (*Scaler, error) {
	scale := make([]float64, l.Dim())
	for i := range scale {
		scale[i] = 1
	}
	for name, s := range byVar {
		if s <= 0 {
			return nil, fmt.Errorf("core: non-positive scale %v for %q", s, name)
		}
		idx := l.VarIndex(name)
		if idx < 0 {
			continue // layout may not carry every catalogued variable
		}
		sl := l.Slice(scale, idx)
		for i := range sl {
			sl[i] = s
		}
	}
	return &Scaler{Scale: scale}, nil
}

// ToScaled writes z = x ⊘ scale into dst (allocated if nil).
func (s *Scaler) ToScaled(dst, x []float64) []float64 {
	if len(x) != len(s.Scale) {
		panic("core: ToScaled dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, len(x))
	}
	for i, v := range x {
		dst[i] = v / s.Scale[i]
	}
	return dst
}

// FromScaled writes x = z ⊙ scale into dst (allocated if nil).
func (s *Scaler) FromScaled(dst, z []float64) []float64 {
	if len(z) != len(s.Scale) {
		panic("core: FromScaled dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, len(z))
	}
	for i, v := range z {
		dst[i] = v * s.Scale[i]
	}
	return dst
}

// At returns the scale of state element i.
func (s *Scaler) At(i int) float64 { return s.Scale[i] }

// Dim returns the state dimension.
func (s *Scaler) Dim() int { return len(s.Scale) }
