package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"esse/internal/linalg"
	"esse/internal/rng"
)

// linearPropagator returns M(x) = A x + b: for a linear model, tangent
// propagation is exact at any linearization step.
func linearPropagator(a *linalg.Dense, b []float64) Propagator {
	return func(ctx context.Context, x []float64) ([]float64, error) {
		y := linalg.MatVec(a, x)
		for i := range y {
			y[i] += b[i]
		}
		return y, nil
	}
}

func TestPropagateSubspaceLinearExact(t *testing.T) {
	s := rng.New(1)
	dim, p := 12, 3
	a := randomDenseCore(s, dim, dim)
	b := s.NormVec(nil, dim)
	sub := randomSubspace(s, dim, p, []float64{3, 2, 1})
	mean := s.NormVec(nil, dim)

	newMean, newSub, err := PropagateSubspace(context.Background(),
		linearPropagator(a, b), mean, sub, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Mean: A x + b.
	wantMean := linalg.MatVec(a, mean)
	for i := range wantMean {
		wantMean[i] += b[i]
		if math.Abs(newMean[i]-wantMean[i]) > 1e-10 {
			t.Fatalf("propagated mean wrong at %d", i)
		}
	}
	// Covariance: A E Σ² Eᵀ Aᵀ. Its factor is A E Σ, whose SVD gives the
	// propagated subspace; compare total variance and reconstruction.
	es := linalg.NewDense(dim, p)
	for i := 0; i < dim; i++ {
		for j := 0; j < p; j++ {
			es.Set(i, j, sub.Modes.At(i, j)*sub.Sigma[j])
		}
	}
	factor := linalg.Mul(a, es)
	wantCov := linalg.MulBT(factor, factor)
	gotFactor := linalg.NewDense(dim, newSub.Rank())
	for i := 0; i < dim; i++ {
		for j := 0; j < newSub.Rank(); j++ {
			gotFactor.Set(i, j, newSub.Modes.At(i, j)*newSub.Sigma[j])
		}
	}
	gotCov := linalg.MulBT(gotFactor, gotFactor)
	if !gotCov.EqualApprox(wantCov, 1e-7*(1+wantCov.MaxAbs())) {
		t.Fatal("propagated covariance != A P Aᵀ for a linear model")
	}
	if err := newSub.Check(1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestPropagateSubspaceStepInvarianceLinear(t *testing.T) {
	// For a linear model, the result must not depend on eps.
	s := rng.New(2)
	dim := 8
	a := randomDenseCore(s, dim, dim)
	b := make([]float64, dim)
	sub := randomSubspace(s, dim, 2, []float64{2, 1})
	mean := s.NormVec(nil, dim)
	_, subA, err := PropagateSubspace(context.Background(), linearPropagator(a, b), mean, sub, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, subB, err := PropagateSubspace(context.Background(), linearPropagator(a, b), mean, sub, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rho := SimilarityCoefficient(subA, subB); rho < 1-1e-7 {
		t.Fatalf("eps changed the linear propagation: rho=%v", rho)
	}
}

func TestPropagateSubspaceRotation(t *testing.T) {
	// A 90° rotation must rotate the subspace with it.
	a := linalg.NewDenseFrom(2, 2, []float64{0, -1, 1, 0})
	e := linalg.NewDense(2, 1)
	e.Set(0, 0, 1)
	sub := &Subspace{Modes: e, Sigma: []float64{2}}
	_, newSub, err := PropagateSubspace(context.Background(),
		linearPropagator(a, []float64{0, 0}), []float64{0, 0}, sub, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Abs(newSub.Modes.At(1, 0))-1) > 1e-10 {
		t.Fatalf("mode not rotated: %v", newSub.Modes.Data)
	}
	if math.Abs(newSub.Sigma[0]-2) > 1e-10 {
		t.Fatalf("rotation changed sigma: %v", newSub.Sigma[0])
	}
}

func TestPropagateSubspaceContraction(t *testing.T) {
	// A contracting model must shrink the predicted uncertainty.
	a := linalg.Scale(0.5, linalg.Identity(5))
	s := rng.New(3)
	sub := randomSubspace(s, 5, 2, []float64{2, 1})
	_, newSub, err := PropagateSubspace(context.Background(),
		linearPropagator(a, make([]float64, 5)), s.NormVec(nil, 5), sub, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(newSub.TotalVariance()-0.25*sub.TotalVariance()) > 1e-8 {
		t.Fatalf("contraction: variance %v, want %v", newSub.TotalVariance(), 0.25*sub.TotalVariance())
	}
}

func TestPropagateSubspaceErrors(t *testing.T) {
	s := rng.New(4)
	sub := randomSubspace(s, 4, 2, []float64{1, 1})
	mean := make([]float64, 4)
	ok := linearPropagator(linalg.Identity(4), make([]float64, 4))
	if _, _, err := PropagateSubspace(context.Background(), ok, mean, sub, 0, 1); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, _, err := PropagateSubspace(context.Background(), ok, []float64{1}, sub, 1, 1); err == nil {
		t.Fatal("mean dim mismatch accepted")
	}
	failing := func(ctx context.Context, x []float64) ([]float64, error) {
		return nil, errors.New("model exploded")
	}
	if _, _, err := PropagateSubspace(context.Background(), failing, mean, sub, 1, 2); err == nil {
		t.Fatal("propagator failure swallowed")
	}
}

func TestPropagateSubspaceRankCollapse(t *testing.T) {
	// A model that maps everything to a constant kills all variance.
	constant := func(ctx context.Context, x []float64) ([]float64, error) {
		return make([]float64, len(x)), nil
	}
	s := rng.New(5)
	sub := randomSubspace(s, 4, 2, []float64{1, 1})
	if _, _, err := PropagateSubspace(context.Background(), constant, make([]float64, 4), sub, 1, 1); err == nil {
		t.Fatal("rank collapse not reported")
	}
}

// randomDenseCore avoids clashing with helpers in other test files.
func randomDenseCore(s *rng.Stream, r, c int) *linalg.Dense {
	m := linalg.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = s.Norm()
	}
	return m
}
