package core

import (
	"fmt"
	"sort"
	"sync"

	"esse/internal/linalg"
)

// Accumulator is the "diff loop" of the paper's Fig. 4 run as a data
// structure: ensemble member forecasts arrive in any order and are
// immediately differenced against the central forecast into a growing
// anomaly matrix. Out-of-order arrival is explicitly supported — the
// paper relaxes the requirement that covariance columns appear in
// perturbation order and instead keeps per-column bookkeeping, which is
// exactly what Indices records.
//
// Snapshots (Anomalies, Indices, EnsembleMean) are returned in CANONICAL
// member-index order, independent of arrival order: floating-point
// results must not depend on goroutine scheduling, or chaotic model
// dynamics amplify bit-level differences into irreproducible forecasts.
//
// Accumulator is safe for concurrent use: the many forecast tasks of the
// MTC pool feed it directly.
type Accumulator struct {
	mu      sync.Mutex
	central []float64
	cols    [][]float64
	indices []int
	seen    map[int]bool
}

// NewAccumulator creates an accumulator for the given central forecast.
// The central state is copied.
func NewAccumulator(central []float64) *Accumulator {
	c := make([]float64, len(central))
	copy(c, central)
	return &Accumulator{central: c, seen: make(map[int]bool)}
}

// Add differences one member forecast against the central forecast and
// appends it as a new anomaly column. The member index is recorded for
// bookkeeping; adding the same index twice is an error (a lost-and-
// retried task must be deduplicated by the caller's tracker, but this is
// the last line of defense).
func (a *Accumulator) Add(index int, state []float64) error {
	if len(state) != len(a.central) {
		return fmt.Errorf("core: member %d has dim %d, central has %d", index, len(state), len(a.central))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.seen[index] {
		return fmt.Errorf("core: member %d already accumulated", index)
	}
	a.seen[index] = true
	col := make([]float64, len(state))
	for i, v := range state {
		col[i] = v - a.central[i]
	}
	a.cols = append(a.cols, col)
	a.indices = append(a.indices, index)
	return nil
}

// Len returns the number of accumulated members.
func (a *Accumulator) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.cols)
}

// Indices returns the member indices in canonical (sorted) order,
// aligned with Anomalies columns.
func (a *Accumulator) Indices() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, len(a.indices))
	copy(out, a.indices)
	sort.Ints(out)
	return out
}

// ArrivalOrder returns the member indices in completion order (pure
// bookkeeping; snapshots never depend on it).
func (a *Accumulator) ArrivalOrder() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, len(a.indices))
	copy(out, a.indices)
	return out
}

// sortedPermLocked returns column positions ordered by member index.
// Callers must hold the mutex.
func (a *Accumulator) sortedPermLocked() []int {
	perm := make([]int, len(a.indices))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool { return a.indices[perm[x]] < a.indices[perm[y]] })
	return perm
}

// Anomalies snapshots the current anomaly matrix (stateDim × n), with
// columns in canonical member-index order. The matrix is a copy: the
// SVD stage can work on it while more members stream in (this is the
// role of the paper's "safe file").
func (a *Accumulator) Anomalies() *linalg.Dense {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.cols)
	m := len(a.central)
	out := linalg.NewDense(m, n)
	for j, src := range a.sortedPermLocked() {
		col := a.cols[src]
		for i, v := range col {
			out.Data[i*n+j] = v
		}
	}
	return out
}

// EnsembleMean returns central + mean(anomalies): the ensemble estimate
// of the conditional mean.
func (a *Accumulator) EnsembleMean() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	mean := make([]float64, len(a.central))
	copy(mean, a.central)
	if len(a.cols) == 0 {
		return mean
	}
	// Sum in canonical member order so the floating-point result is
	// independent of completion order.
	inv := 1 / float64(len(a.cols))
	for _, src := range a.sortedPermLocked() {
		for i, v := range a.cols[src] {
			mean[i] += v * inv
		}
	}
	return mean
}

// Central returns a copy of the central forecast.
func (a *Accumulator) Central() []float64 {
	out := make([]float64, len(a.central))
	copy(out, a.central)
	return out
}
