package core

import (
	"fmt"

	"esse/internal/linalg"
)

// This file implements the smoothing extension of ESSE (Lermusiaux,
// Robinson, Haley & Leslie 2002, "Filtering and smoothing via Error
// Subspace Statistical Estimation" — reference [16] of the paper):
// observations at a later time improve the estimate at an earlier time
// through the ensemble cross-covariance between the two times.
//
// With member anomaly matrices A₀ (earlier time) and A₁ (later time)
// sharing column ↔ member alignment, the smoother gain applied to the
// later-time innovation d = y − H x₁ is
//
//	K₀ = A₀ (H A₁)ᵀ [ (H A₁)(H A₁)ᵀ + (N−1) R ]⁻¹
//
// so  x₀ˢ = x₀ + K₀ d.  (The (N−1) factors cancel against the sample-
// covariance normalization.)

// SmootherResult carries the smoothed earlier-time estimate.
type SmootherResult struct {
	// Mean is the smoothed earlier-time state.
	Mean []float64
	// IncrementNorm is ‖x₀ˢ − x₀‖ (diagnostic).
	IncrementNorm float64
}

// SmoothPrevious updates the earlier-time mean x0 using later-time
// observations y through the member-aligned anomaly matrices. The two
// anomaly matrices must have identical column counts with column j of
// each belonging to the same ensemble member (the workflow accumulator's
// Indices bookkeeping provides exactly this alignment).
func SmoothPrevious(x0 []float64, anoms0, anoms1 *linalg.Dense, network ObsOperator, y []float64) (*SmootherResult, error) {
	n := anoms0.Cols
	if anoms1.Cols != n {
		return nil, fmt.Errorf("core: smoother anomaly column mismatch %d vs %d", n, anoms1.Cols)
	}
	if n < 2 {
		return nil, fmt.Errorf("core: smoother needs >= 2 members, got %d", n)
	}
	if len(x0) != anoms0.Rows {
		return nil, fmt.Errorf("core: smoother state dim %d != anomalies %d", len(x0), anoms0.Rows)
	}
	m := network.Len()
	if len(y) != m {
		return nil, fmt.Errorf("core: %d observations but %d values", m, len(y))
	}
	out := &SmootherResult{Mean: append([]float64(nil), x0...)}
	if m == 0 {
		return out, nil
	}

	ha1 := network.ApplyHMat(anoms1) // m × n
	rDiag := network.RDiag()

	// S = (HA₁)(HA₁)ᵀ + (N−1) R.
	s := linalg.MulBT(ha1, ha1)
	for i := 0; i < m; i++ {
		s.Set(i, i, s.At(i, i)+float64(n-1)*rDiag[i])
	}

	// Innovation uses the later-time ensemble mean implied by the
	// caller: y must already be an innovation against x₁ when the caller
	// wants the textbook form; we accept the raw innovation directly.
	sInv, ok := linalg.InvertSPD(s)
	if !ok {
		return nil, fmt.Errorf("core: smoother innovation covariance not positive definite")
	}
	sid := linalg.MatVec(sInv, y)    // S⁻¹ d
	w := linalg.MatTVec(ha1, sid)    // (HA₁)ᵀ S⁻¹ d  (n)
	incr := linalg.MatVec(anoms0, w) // A₀ … (stateDim)
	out.IncrementNorm = linalg.Norm2(incr)
	for i := range out.Mean {
		out.Mean[i] += incr[i]
	}
	return out, nil
}
