package core

import (
	"context"
	"fmt"
	"sync"

	"esse/internal/linalg"
)

// Propagator integrates the (nonlinear) model from an initial state over
// one forecast interval and returns the final state. Implementations
// must be safe for concurrent use.
type Propagator func(ctx context.Context, initial []float64) ([]float64, error)

// PropagateSubspace evolves the mean and the error subspace
// deterministically through the model using finite-difference
// tangent linearization:
//
//	x_f      = M(x)
//	δx_f,j   = [M(x + ε σ_j e_j) − M(x)] / ε
//
// followed by an SVD re-orthonormalization of the propagated factor
// [δx_f,1 … δx_f,p]. This is the deterministic, dominant-mode evolution
// the paper's future work points to (the dynamically-orthogonal field
// equations of Sapsis & Lermusiaux 2009): it costs p+1 model runs
// instead of an N-member ensemble, at the price of ignoring the
// model-noise contribution that the stochastic ensemble captures.
//
// eps controls the linearization step as a fraction of each mode's σ;
// values around 1 probe the finite-amplitude dynamics (like ESSE
// perturbations), small values approach the tangent-linear limit.
func PropagateSubspace(ctx context.Context, prop Propagator, mean []float64, sub *Subspace, eps float64, workers int) ([]float64, *Subspace, error) {
	if eps <= 0 {
		return nil, nil, fmt.Errorf("core: non-positive linearization step %v", eps)
	}
	p := sub.Rank()
	dim := sub.StateDim()
	if len(mean) != dim {
		return nil, nil, fmt.Errorf("core: mean dim %d != subspace dim %d", len(mean), dim)
	}
	if workers < 1 {
		workers = 1
	}

	central, err := prop(ctx, mean)
	if err != nil {
		return nil, nil, fmt.Errorf("core: central propagation: %w", err)
	}
	if len(central) != dim {
		return nil, nil, fmt.Errorf("core: propagator changed state dim %d -> %d", dim, len(central))
	}

	factor := linalg.NewDense(dim, p)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
launch:
	for j := 0; j < p; j++ {
		// Acquire a worker slot or stop launching on cancellation: a
		// bare send would block past ctx if every worker were stuck in a
		// slow propagator.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			mu.Lock()
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			mu.Unlock()
			break launch
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = ctx.Err()
				}
				mu.Unlock()
				return
			}
			amp := eps * sub.Sigma[j]
			if amp == 0 {
				return // degenerate mode: propagated column stays zero
			}
			perturbed := make([]float64, dim)
			for i := 0; i < dim; i++ {
				perturbed[i] = mean[i] + amp*sub.Modes.At(i, j)
			}
			final, err := prop(ctx, perturbed)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("core: mode %d propagation: %w", j, err)
				}
				mu.Unlock()
				return
			}
			inv := 1 / eps
			mu.Lock()
			for i := 0; i < dim; i++ {
				factor.Set(i, j, (final[i]-central[i])*inv)
			}
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	// Re-orthonormalize: the propagated factor columns already carry the
	// σ amplitudes, so the SVD's singular values are the forecast σ.
	f := linalg.ThinSVDGram(factor, p)
	sigma := make([]float64, 0, p)
	keep := 0
	for _, sv := range f.S {
		if sv > 1e-12*(1+f.S[0]) {
			sigma = append(sigma, sv)
			keep++
		}
	}
	if keep == 0 {
		return nil, nil, fmt.Errorf("core: propagated subspace collapsed to rank 0")
	}
	newSub := &Subspace{
		Modes: f.U.Slice(0, dim, 0, keep),
		Sigma: sigma,
	}
	return central, newSub, nil
}
