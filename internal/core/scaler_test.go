package core

import (
	"math"
	"testing"

	"esse/internal/grid"
)

func scalerFixture(t *testing.T) (*grid.StateLayout, *Scaler) {
	t.Helper()
	g := grid.New(4, 4, 2, 1, 1, 100)
	l := grid.NewLayout(g, []grid.VarSpec{
		{Name: "eta", Levels: 1},
		{Name: "T", Levels: 2},
	})
	s, err := NewScaler(l, map[string]float64{"eta": 0.05, "T": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return l, s
}

func TestScalerRoundTrip(t *testing.T) {
	l, s := scalerFixture(t)
	x := make([]float64, l.Dim())
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	z := s.ToScaled(nil, x)
	back := s.FromScaled(nil, z)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-12 {
			t.Fatalf("round trip differs at %d: %v vs %v", i, back[i], x[i])
		}
	}
}

func TestScalerPerVariableScales(t *testing.T) {
	l, s := scalerFixture(t)
	x := make([]float64, l.Dim())
	etaIdx := l.VarIndex("eta")
	tIdx := l.VarIndex("T")
	x[l.Offset(etaIdx, 0, 0, 0)] = 0.05 // one eta scale unit
	x[l.Offset(tIdx, 1, 1, 1)] = 0.5    // one T scale unit
	z := s.ToScaled(nil, x)
	if math.Abs(z[l.Offset(etaIdx, 0, 0, 0)]-1) > 1e-12 {
		t.Fatal("eta not scaled to unit")
	}
	if math.Abs(z[l.Offset(tIdx, 1, 1, 1)]-1) > 1e-12 {
		t.Fatal("T not scaled to unit")
	}
}

func TestScalerDefaultsToUnity(t *testing.T) {
	g := grid.New(3, 3, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "mystery", Levels: 1}})
	s, err := NewScaler(l, map[string]float64{"T": 0.5}) // T absent from layout
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Dim(); i++ {
		if s.At(i) != 1 {
			t.Fatalf("scale[%d] = %v, want 1", i, s.At(i))
		}
	}
}

func TestScalerRejectsNonPositive(t *testing.T) {
	g := grid.New(3, 3, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 1}})
	if _, err := NewScaler(l, map[string]float64{"T": 0}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := NewScaler(l, map[string]float64{"T": -1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestScalerDimensionChecks(t *testing.T) {
	_, s := scalerFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch must panic")
		}
	}()
	s.ToScaled(nil, []float64{1, 2})
}

func TestDefaultVarScalesCoverModelVars(t *testing.T) {
	scales := DefaultVarScales()
	for _, v := range []string{"eta", "u", "v", "T", "S"} {
		if scales[v] <= 0 {
			t.Fatalf("missing default scale for %q", v)
		}
	}
}
