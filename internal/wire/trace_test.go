package wire

import (
	"bytes"
	"strings"
	"testing"

	"esse/internal/telemetry"
)

// traceCtx returns a well-formed wire TraceContext derived from the
// telemetry types, so the hex conventions of the two packages are
// pinned against each other.
func traceCtx() TraceContext {
	sc := telemetry.SpanContext{Trace: telemetry.DeriveTraceID(9), Span: 42}
	return TraceContext{TraceID: sc.TraceHex(), SpanID: sc.SpanHex()}
}

func TestTraceContextRoundTrip(t *testing.T) {
	in := validTask()
	in.Trace = traceCtx()
	var buf bytes.Buffer
	if err := EncodeTask(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Task
	if err := DecodeTask(&buf, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != *in {
		t.Fatalf("round trip changed the task: %+v != %+v", out, *in)
	}
	// The acceptance property: the same TraceID on both sides of the
	// wire, bit for bit, resolvable back into the telemetry type.
	sc, ok := telemetry.SpanContextFromHex(out.Trace.TraceID, out.Trace.SpanID)
	if !ok || sc.Trace != telemetry.DeriveTraceID(9) || sc.Span != 42 {
		t.Fatalf("decoded trace context does not resolve: %+v, %v", sc, ok)
	}

	lease := validLease()
	lease.Trace = traceCtx()
	buf.Reset()
	if err := EncodeLease(&buf, lease); err != nil {
		t.Fatalf("encode lease: %v", err)
	}
	var lout Lease
	if err := DecodeLease(&buf, &lout); err != nil {
		t.Fatalf("decode lease: %v", err)
	}
	if lout != *lease {
		t.Fatalf("lease round trip: %+v != %+v", lout, *lease)
	}

	res := validResult()
	res.Trace = traceCtx()
	buf.Reset()
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatalf("encode result: %v", err)
	}
	var rout Result
	if err := DecodeResult(&buf, &rout); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if rout != *res {
		t.Fatalf("result round trip: %+v != %+v", rout, *res)
	}
}

func TestTraceContextZeroValueIsLegacyLegal(t *testing.T) {
	// Payloads from pre-tracing peers carry no trace block at all;
	// the zero value must validate and round trip untouched.
	in := validTask()
	if !in.Trace.IsZero() {
		t.Fatal("validTask grew a trace context")
	}
	var buf bytes.Buffer
	if err := EncodeTask(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Task
	if err := DecodeTask(&buf, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !out.Trace.IsZero() {
		t.Fatalf("zero trace context mutated: %+v", out.Trace)
	}
	// A raw legacy payload without the "trace" key decodes too.
	legacy := `{"id":"t-7","kind":1,"member":3,"seed":42,"dt":0.5,"horizon":3600}`
	var lt Task
	if err := DecodeTask(strings.NewReader(legacy), &lt); err != nil {
		t.Fatalf("legacy payload rejected: %v", err)
	}
}

func TestTraceContextValidateRejections(t *testing.T) {
	good := traceCtx()
	cases := []struct {
		name string
		tc   TraceContext
	}{
		{"half-set trace only", TraceContext{TraceID: good.TraceID}},
		{"half-set span only", TraceContext{SpanID: good.SpanID}},
		{"short trace", TraceContext{TraceID: good.TraceID[:31], SpanID: good.SpanID}},
		{"long span", TraceContext{TraceID: good.TraceID, SpanID: good.SpanID + "0"}},
		{"uppercase", TraceContext{TraceID: strings.ToUpper(good.TraceID), SpanID: good.SpanID}},
		{"non-hex", TraceContext{TraceID: strings.Repeat("g", 32), SpanID: good.SpanID}},
		{"all-zero trace", TraceContext{TraceID: strings.Repeat("0", 32), SpanID: good.SpanID}},
		{"all-zero span", TraceContext{TraceID: good.TraceID, SpanID: strings.Repeat("0", 16)}},
	}
	for _, c := range cases {
		task := validTask()
		task.Trace = c.tc
		if err := task.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", c.name, c.tc)
		}
		// The corrupt context must also be refused at decode time.
		var buf bytes.Buffer
		task2 := validTask()
		if err := EncodeTask(&buf, task2); err != nil {
			t.Fatalf("encode: %v", err)
		}
		lease := validLease()
		lease.Trace = c.tc
		if err := lease.Validate(); err == nil {
			t.Errorf("%s: lease accepted %+v", c.name, c.tc)
		}
		res := validResult()
		res.Trace = c.tc
		if err := res.Validate(); err == nil {
			t.Errorf("%s: result accepted %+v", c.name, c.tc)
		}
	}
}

func TestTraceContextEncodeRejectsCorrupt(t *testing.T) {
	task := validTask()
	task.Trace = TraceContext{TraceID: "nothex", SpanID: "alsonothex"}
	var buf bytes.Buffer
	if err := EncodeTask(&buf, task); err == nil {
		t.Fatal("encode accepted a corrupt trace context")
	}
	payload := `{"id":"t-7","kind":1,"member":3,"seed":42,"dt":0.5,"horizon":3600,` +
		`"trace":{"trace_id":"XYZ","span_id":"0000000000000001"}}`
	var out Task
	if err := DecodeTask(strings.NewReader(payload), &out); err == nil {
		t.Fatal("decode accepted a corrupt trace context")
	}
}
