package wire

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func validTask() *Task {
	return &Task{ID: "t-7", Kind: KindForecast, Member: 3, Seed: 42, Dt: 0.5, Horizon: 3600}
}

func validLease() *Lease {
	return &Lease{TaskID: "t-7", Worker: "w-1", State: LeaseActive, DeadlineUnixMS: 1754500000000}
}

func validResult() *Result {
	return &Result{TaskID: "t-7", Worker: "w-1", OK: true, Rho: 0.93, ElapsedSec: 12.25}
}

func TestTaskRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := validTask()
	if err := EncodeTask(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Task
	if err := DecodeTask(&buf, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != *in {
		t.Fatalf("round trip changed the task: %+v != %+v", out, *in)
	}
}

func TestLeaseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := validLease()
	if err := EncodeLease(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Lease
	if err := DecodeLease(&buf, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != *in {
		t.Fatalf("round trip changed the lease: %+v != %+v", out, *in)
	}
}

func TestResultRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := validResult()
	if err := EncodeResult(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Result
	if err := DecodeResult(&buf, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != *in {
		t.Fatalf("round trip changed the result: %+v != %+v", out, *in)
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Task)
	}{
		{"nan dt", func(tk *Task) { tk.Dt = math.NaN() }},
		{"inf horizon", func(tk *Task) { tk.Horizon = math.Inf(1) }},
		{"neg inf dt", func(tk *Task) { tk.Dt = math.Inf(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tk := validTask()
			tc.mut(tk)
			var buf bytes.Buffer
			err := EncodeTask(&buf, tk)
			if err == nil {
				t.Fatal("EncodeTask accepted a non-finite float")
			}
			if !strings.Contains(err.Error(), "not finite") {
				t.Fatalf("error does not name the finiteness policy: %v", err)
			}
			if buf.Len() != 0 {
				t.Fatalf("invalid task still wrote %d bytes to the socket", buf.Len())
			}
		})
	}

	res := validResult()
	res.Rho = math.NaN()
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err == nil {
		t.Fatal("EncodeResult accepted NaN rho")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"task empty id", func() error { tk := validTask(); tk.ID = ""; return tk.Validate() }()},
		{"task unknown kind", func() error { tk := validTask(); tk.Kind = TaskKind(99); return tk.Validate() }()},
		{"task negative member", func() error { tk := validTask(); tk.Member = -1; return tk.Validate() }()},
		{"task zero dt", func() error { tk := validTask(); tk.Dt = 0; return tk.Validate() }()},
		{"lease unknown state", func() error { l := validLease(); l.State = LeaseState(99); return l.Validate() }()},
		{"lease active without worker", func() error { l := validLease(); l.Worker = ""; return l.Validate() }()},
		{"result failed without error", func() error { r := validResult(); r.OK = false; return r.Validate() }()},
		{"result negative elapsed", func() error { r := validResult(); r.ElapsedSec = -1; return r.Validate() }()},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: Validate accepted an invalid value", tc.name)
		}
	}
	if err := validTask().Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	if err := validLease().Validate(); err != nil {
		t.Errorf("valid lease rejected: %v", err)
	}
	if err := validResult().Validate(); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
}

func TestDecodeValidates(t *testing.T) {
	var tk Task
	err := DecodeTask(strings.NewReader(`{"id":"t-1","kind":99,"member":0,"dt":1,"horizon":10}`), &tk)
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("DecodeTask accepted an unknown kind: %v", err)
	}
	err = DecodeTask(strings.NewReader(`{"id":`), &tk)
	if err == nil || !strings.Contains(err.Error(), "decoding task") {
		t.Fatalf("DecodeTask on truncated input: %v", err)
	}
}

func TestEnumStrings(t *testing.T) {
	kinds := map[TaskKind]string{
		KindPerturb: "perturb", KindForecast: "forecast", KindTangentLinear: "tangent-linear",
		TaskKind(9): "TaskKind(9)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("TaskKind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
	states := map[LeaseState]string{
		LeasePending: "pending", LeaseActive: "active", LeaseExpired: "expired",
		LeaseCompleted: "completed", LeaseFailed: "failed", LeaseState(9): "LeaseState(9)",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("LeaseState(%d).String() = %q, want %q", uint8(s), got, want)
		}
	}
}

// TestLeaseTransitionTable asserts every (from, to) pair of the lease
// lifecycle explicitly, so neither the runtime table nor the statefsm
// directive can drift without this test naming the pair that moved.
func TestLeaseTransitionTable(t *testing.T) {
	states := []LeaseState{LeasePending, LeaseActive, LeaseExpired, LeaseCompleted, LeaseFailed}
	legal := map[[2]LeaseState]bool{
		{LeasePending, LeaseActive}:   true,
		{LeaseActive, LeaseActive}:    true,
		{LeaseActive, LeaseExpired}:   true,
		{LeaseActive, LeaseCompleted}: true,
		{LeaseActive, LeaseFailed}:    true,
		{LeaseExpired, LeasePending}:  true,
		{LeaseFailed, LeasePending}:   true,
	}
	for _, from := range states {
		for _, to := range states {
			want := legal[[2]LeaseState{from, to}]
			if got := CanTransition(from, to); got != want {
				t.Errorf("CanTransition(%v, %v) = %v, want %v", from, to, got, want)
			}
		}
	}
	// Terminal states produce no successors, and only LeaseCompleted is
	// terminal.
	for _, s := range states {
		wantTerminal := s == LeaseCompleted
		if got := s.Terminal(); got != wantTerminal {
			t.Errorf("%v.Terminal() = %v, want %v", s, got, wantTerminal)
		}
		if wantTerminal && len(LeaseTransitions[s]) != 0 {
			t.Errorf("terminal state %v has successors %v", s, LeaseTransitions[s])
		}
	}
	// The table holds exactly the legal arcs and keys no state outside
	// the declared enum.
	total, keyed := 0, 0
	for _, s := range states {
		total += len(LeaseTransitions[s])
		if _, ok := LeaseTransitions[s]; ok {
			keyed++
		}
	}
	if total != len(legal) {
		t.Errorf("transition table carries %d arcs, want %d", total, len(legal))
	}
	if keyed != len(LeaseTransitions) {
		t.Errorf("transition table keys a state outside the declared enum")
	}
}
