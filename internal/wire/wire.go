// Package wire defines the blessed JSON wire types for the
// dispatcher/worker split (ROADMAP item 1): the task a dispatcher
// offers, the lease a worker holds while computing it, and the result
// it reports back. Every type here round-trips through
// Encode*/Decode*, carries only concrete exported fields, and is
// validated on both sides of the socket — the invariants esselint's
// jsonwire analyzer enforces tree-wide.
//
// NaN/Inf policy: ESSE state is NaN/Inf-prone — error variances
// collapse, condition numbers blow up, timing ratios divide by zero —
// and encoding/json fails AT RUNTIME on a non-finite float, turning a
// numerical wobble into a dropped lease. Every float crossing the
// wire must therefore be finite: Validate rejects NaN and ±Inf on
// both the encode path (before the value is committed to the socket,
// where the failure is attributable) and the decode path (defense in
// depth against peers not built from this package). Use
// Finite/CheckFinite for new fields; jsonwire treats a field routed
// through them as provably NaN/Inf-free.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Finite reports whether v is neither NaN nor ±Inf.
func Finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// CheckFinite returns an error naming field when v is not finite.
func CheckFinite(field string, v float64) error {
	if !Finite(v) {
		return fmt.Errorf("wire: field %s is not finite (%v)", field, v)
	}
	return nil
}

// TraceContext is the causal identity riding with every wire payload:
// the trace the work belongs to and the span that caused it, in the
// telemetry package's hex-string form (32 lowercase hex digits of
// trace ID, 16 of span ID — the traceparent field grammar). The zero
// value means "untraced" and is always legal, so legacy peers that
// never heard of tracing keep validating; a non-zero context must be
// well-formed in BOTH halves — a trace ID without a span ID (or vice
// versa) is corrupt, not partial.
type TraceContext struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// IsZero reports whether the context is the legal "untraced" value.
func (tc *TraceContext) IsZero() bool {
	return tc.TraceID == "" && tc.SpanID == ""
}

// Validate enforces the hex grammar. where names the enclosing payload
// for attributable errors.
func (tc *TraceContext) Validate(where string) error {
	if tc.IsZero() {
		return nil
	}
	if tc.TraceID == "" || tc.SpanID == "" {
		return fmt.Errorf("wire: %s has a half-set trace context (trace_id=%q span_id=%q)", where, tc.TraceID, tc.SpanID)
	}
	if !validHex(tc.TraceID, 32) {
		return fmt.Errorf("wire: %s has malformed trace_id %q", where, tc.TraceID)
	}
	if !validHex(tc.SpanID, 16) {
		return fmt.Errorf("wire: %s has malformed span_id %q", where, tc.SpanID)
	}
	if allZeroHex(tc.TraceID) || allZeroHex(tc.SpanID) {
		return fmt.Errorf("wire: %s has all-zero trace context ids", where)
	}
	return nil
}

// validHex reports whether s is exactly n lowercase hex digits.
// Uppercase is rejected: the canonical form is lowercase-only and
// accepting both would let two spellings of one ID ride the wire.
func validHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// allZeroHex reports whether s is nothing but '0' digits — the invalid
// ID both here and in the traceparent grammar.
func allZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// TaskKind classifies the many-task work units of the ESSE pipeline.
type TaskKind uint8

const (
	// KindPerturb generates one perturbed initial condition.
	KindPerturb TaskKind = iota
	// KindForecast integrates one ensemble member forward.
	KindForecast
	// KindTangentLinear runs one tangent-linear acoustics solve.
	KindTangentLinear
)

func (k TaskKind) String() string {
	switch k {
	case KindPerturb:
		return "perturb"
	case KindForecast:
		return "forecast"
	case KindTangentLinear:
		return "tangent-linear"
	}
	return fmt.Sprintf("TaskKind(%d)", uint8(k))
}

// valid reports whether k names a defined kind (the decode-side gate:
// a peer can send any integer).
func (k TaskKind) valid() bool {
	return k <= KindTangentLinear
}

// LeaseState is the lifecycle of one task lease on the dispatcher.
// The legal transitions are declared once, below, for both the
// statefsm analyzer and the runtime (LeaseTransitions); statefsm flags
// any drift between the two. LeaseCompleted has no successors: a
// completed lease is terminal.
//
//esselint:fsm LeasePending->LeaseActive, LeaseActive->LeaseActive, LeaseActive->LeaseExpired, LeaseActive->LeaseCompleted, LeaseActive->LeaseFailed, LeaseExpired->LeasePending, LeaseFailed->LeasePending
type LeaseState uint8

const (
	// LeasePending: offered, not yet claimed by a worker.
	LeasePending LeaseState = iota
	// LeaseActive: claimed; the worker must renew before the deadline.
	LeaseActive
	// LeaseExpired: the renewal deadline passed; the task is
	// re-offerable.
	LeaseExpired
	// LeaseCompleted: a result was accepted.
	LeaseCompleted
	// LeaseFailed: the worker reported failure; retry policy applies.
	LeaseFailed
)

func (s LeaseState) String() string {
	switch s {
	case LeasePending:
		return "pending"
	case LeaseActive:
		return "active"
	case LeaseExpired:
		return "expired"
	case LeaseCompleted:
		return "completed"
	case LeaseFailed:
		return "failed"
	}
	return fmt.Sprintf("LeaseState(%d)", uint8(s))
}

func (s LeaseState) valid() bool {
	return s <= LeaseFailed
}

// LeaseTransitions is the runtime form of the lease lifecycle: every
// legal from→to pair, mirroring the //esselint:fsm directive on
// LeaseState. LeaseActive renews onto itself; LeaseExpired and
// LeaseFailed re-offer the task; LeaseCompleted is absent because it
// has no successors.
var LeaseTransitions = map[LeaseState][]LeaseState{
	LeasePending: {LeaseActive},
	LeaseActive:  {LeaseActive, LeaseExpired, LeaseCompleted, LeaseFailed},
	LeaseExpired: {LeasePending},
	LeaseFailed:  {LeasePending},
}

// CanTransition reports whether a lease may move from from to to.
func CanTransition(from, to LeaseState) bool {
	for _, next := range LeaseTransitions[from] {
		if next == to {
			return true
		}
	}
	return false
}

// Terminal reports whether s has no legal successors: a lease in a
// terminal state never moves again.
func (s LeaseState) Terminal() bool {
	return len(LeaseTransitions[s]) == 0
}

// Task is one unit of many-task work as the dispatcher offers it.
type Task struct {
	// ID is the dispatcher-unique task identifier.
	ID string `json:"id"`
	// Kind selects the computation.
	Kind TaskKind `json:"kind"`
	// Member is the ensemble-member index the task belongs to.
	Member int `json:"member"`
	// Attempt counts prior offers of this task (0 = first).
	Attempt int `json:"attempt"`
	// Seed is the deterministic RNG stream seed for the member, so a
	// retried task reproduces the original draw bit-for-bit.
	Seed uint64 `json:"seed"`
	// Dt is the model time step in seconds; Horizon the forecast
	// length in seconds. Both must be finite and positive.
	Dt      float64 `json:"dt"`
	Horizon float64 `json:"horizon"`
	// Trace carries the causal identity of the dispatch that created
	// the task; the zero value is a legal untraced task.
	Trace TraceContext `json:"trace"`
}

// Validate enforces the wire invariants in both directions.
func (t *Task) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("wire: task has empty id")
	}
	if !t.Kind.valid() {
		return fmt.Errorf("wire: task %s has unknown kind %d", t.ID, uint8(t.Kind))
	}
	if t.Member < 0 {
		return fmt.Errorf("wire: task %s has negative member %d", t.ID, t.Member)
	}
	if t.Attempt < 0 {
		return fmt.Errorf("wire: task %s has negative attempt %d", t.ID, t.Attempt)
	}
	if err := CheckFinite("dt", t.Dt); err != nil {
		return err
	}
	if err := CheckFinite("horizon", t.Horizon); err != nil {
		return err
	}
	if t.Dt <= 0 || t.Horizon <= 0 {
		return fmt.Errorf("wire: task %s has non-positive dt=%v or horizon=%v", t.ID, t.Dt, t.Horizon)
	}
	return t.Trace.Validate("task " + t.ID)
}

// Lease is the dispatcher's record of one offered task, as reported
// to workers and monitors.
type Lease struct {
	TaskID string     `json:"task_id"`
	Worker string     `json:"worker"`
	State  LeaseState `json:"state"`
	// DeadlineUnixMS is the renewal deadline, milliseconds since the
	// Unix epoch. Integer on purpose: wall-clock times never ride the
	// wire as floats.
	DeadlineUnixMS int64 `json:"deadline_unix_ms"`
	// Trace carries the causal identity of the offered task, so lease
	// listings correlate with the span tree. Zero is legal.
	Trace TraceContext `json:"trace"`
}

// Validate enforces the wire invariants in both directions.
func (l *Lease) Validate() error {
	if l.TaskID == "" {
		return fmt.Errorf("wire: lease has empty task_id")
	}
	if !l.State.valid() {
		return fmt.Errorf("wire: lease %s has unknown state %d", l.TaskID, uint8(l.State))
	}
	if l.State != LeasePending && l.Worker == "" {
		return fmt.Errorf("wire: lease %s in state %s has no worker", l.TaskID, l.State)
	}
	return l.Trace.Validate("lease " + l.TaskID)
}

// Result is a worker's report for one completed (or failed) task.
type Result struct {
	TaskID string `json:"task_id"`
	Worker string `json:"worker"`
	OK     bool   `json:"ok"`
	// Error carries the failure description when OK is false.
	Error string `json:"error,omitempty"`
	// Rho is the ensemble convergence metric of the member; ElapsedSec
	// the wall time spent. Both must be finite.
	Rho        float64 `json:"rho"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// Trace echoes the task's causal identity back to the dispatcher,
	// closing the loop worker-side. Zero is legal.
	Trace TraceContext `json:"trace"`
}

// Validate enforces the wire invariants in both directions.
func (r *Result) Validate() error {
	if r.TaskID == "" {
		return fmt.Errorf("wire: result has empty task_id")
	}
	if r.Worker == "" {
		return fmt.Errorf("wire: result %s has no worker", r.TaskID)
	}
	if !r.OK && r.Error == "" {
		return fmt.Errorf("wire: failed result %s carries no error", r.TaskID)
	}
	if err := CheckFinite("rho", r.Rho); err != nil {
		return err
	}
	if err := CheckFinite("elapsed_sec", r.ElapsedSec); err != nil {
		return err
	}
	if r.ElapsedSec < 0 {
		return fmt.Errorf("wire: result %s has negative elapsed_sec %v", r.TaskID, r.ElapsedSec)
	}
	return r.Trace.Validate("result " + r.TaskID)
}

// EncodeTask validates t and writes it to w as one JSON line.
func EncodeTask(w io.Writer, t *Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(t)
}

// DecodeTask reads one JSON task from r and validates it.
func DecodeTask(r io.Reader, t *Task) error {
	if err := json.NewDecoder(r).Decode(t); err != nil {
		return fmt.Errorf("wire: decoding task: %w", err)
	}
	return t.Validate()
}

// EncodeLease validates l and writes it to w as one JSON line.
func EncodeLease(w io.Writer, l *Lease) error {
	if err := l.Validate(); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(l)
}

// DecodeLease reads one JSON lease from r and validates it.
func DecodeLease(r io.Reader, l *Lease) error {
	if err := json.NewDecoder(r).Decode(l); err != nil {
		return fmt.Errorf("wire: decoding lease: %w", err)
	}
	return l.Validate()
}

// EncodeResult validates res and writes it to w as one JSON line.
func EncodeResult(w io.Writer, res *Result) error {
	if err := res.Validate(); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(res)
}

// DecodeResult reads one JSON result from r and validates it.
func DecodeResult(r io.Reader, res *Result) error {
	if err := json.NewDecoder(r).Decode(res); err != nil {
		return fmt.Errorf("wire: decoding result: %w", err)
	}
	return res.Validate()
}
