package wire

import (
	"bytes"
	"strings"
	"testing"
)

// The decode paths face the network: a peer can send anything. Corrupt,
// truncated or non-finite-injected payloads must come back as errors,
// never panics, and anything the decoder accepts must satisfy the same
// contract the encoder enforces — so an accepted payload re-encodes.

func FuzzDecodeTask(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeTask(&seed, validTask()); err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add(seed.String())
	f.Add(`{"id":"t","kind":1,"member":2,"seed":9,"dt":0.5,"horizon":60}`)
	f.Add(`{"id":"t","dt":NaN}`)
	f.Add(`{"id":"t","dt":1e999}`)
	f.Add(`{"id":`)
	f.Add(``)
	f.Add(`null`)
	f.Add("{\"id\":\"t\"}{\"id\":\"u\"}")
	f.Fuzz(func(t *testing.T, payload string) {
		var task Task
		if err := DecodeTask(strings.NewReader(payload), &task); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeTask(&buf, &task); err != nil {
			t.Fatalf("accepted task fails to re-encode: %v\npayload: %q", err, payload)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeResult(&seed, validResult()); err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add(seed.String())
	f.Add(`{"task_id":"t","worker":"w","ok":true,"rho":0.5,"elapsed_sec":1}`)
	f.Add(`{"task_id":"t","rho":NaN}`)
	f.Add(`{"task_id":"t","elapsed_sec":-1e999}`)
	f.Add(`{"task_id"`)
	f.Add(``)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, payload string) {
		var res Result
		if err := DecodeResult(strings.NewReader(payload), &res); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeResult(&buf, &res); err != nil {
			t.Fatalf("accepted result fails to re-encode: %v\npayload: %q", err, payload)
		}
	})
}
