// Package trace records the three interleaved timelines of real-time
// ocean forecasting shown in the paper's Fig. 1: "observation" (ocean)
// time T during which measurements are made, "forecaster" time τ during
// which the k-th forecasting procedure runs, and per-simulation time tᵢ
// covering portions of ocean time.
//
// A Timeline collects spans and renders an ASCII Gantt chart — the
// reproduction of Fig. 1 — as well as machine-readable summaries used by
// the benchmark harness.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a span onto one of the three Fig. 1 rows.
type Kind int

const (
	// ObservationTime spans mark observation batches T₀..T_f.
	ObservationTime Kind = iota
	// ForecasterTime spans mark forecaster tasks τᵏ.
	ForecasterTime
	// SimulationTime spans mark individual forecast simulations tⁱ.
	SimulationTime
)

// String names the kind as in the paper.
func (k Kind) String() string {
	switch k {
	case ObservationTime:
		return "observation"
	case ForecasterTime:
		return "forecaster"
	case SimulationTime:
		return "simulation"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Span is one labeled interval on a timeline row.
type Span struct {
	Kind  Kind
	Label string
	Start float64
	End   float64
}

// Duration returns End − Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline accumulates spans. It is safe for concurrent use.
type Timeline struct {
	mu    sync.Mutex
	spans []Span
}

// New returns an empty timeline.
func New() *Timeline { return &Timeline{} }

// Add records a span; it panics on a negative-length interval.
func (t *Timeline) Add(kind Kind, label string, start, end float64) {
	if end < start {
		panic(fmt.Sprintf("trace: span %q ends (%v) before it starts (%v)", label, end, start))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Kind: kind, Label: label, Start: start, End: end})
}

// Spans returns a copy of all spans sorted by (kind, start).
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		//esselint:allow floatcmp exact comparison: equal starts must fall through to the label tiebreaker
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Len returns the number of recorded spans.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Extent returns the [min start, max end] over all spans.
func (t *Timeline) Extent() (float64, float64) {
	spans := t.Spans()
	if len(spans) == 0 {
		return 0, 0
	}
	lo, hi := spans[0].Start, spans[0].End
	for _, s := range spans {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return lo, hi
}

// Overlap reports whether any two simulation spans overlap in time —
// the signature of distributed (rather than serial) execution.
func (t *Timeline) Overlap(kind Kind) bool {
	spans := t.Spans()
	var ofKind []Span
	for _, s := range spans {
		if s.Kind == kind {
			ofKind = append(ofKind, s)
		}
	}
	sort.Slice(ofKind, func(i, j int) bool { return ofKind[i].Start < ofKind[j].Start })
	for i := 1; i < len(ofKind); i++ {
		if ofKind[i].Start < ofKind[i-1].End {
			return true
		}
	}
	return false
}

// Render draws an ASCII Gantt chart with one row per span, grouped into
// the three Fig. 1 timelines, using width character cells.
func (t *Timeline) Render(width int) string {
	if width < 20 {
		width = 20
	}
	spans := t.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	lo, hi := t.Extent()
	//esselint:allow floatcmp exact equality is the degenerate-extent guard for the division below
	if hi == lo {
		hi = lo + 1
	}
	scale := float64(width) / (hi - lo)
	var b strings.Builder
	labelW := 0
	for _, s := range spans {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	cur := Kind(-1)
	for _, s := range spans {
		if s.Kind != cur {
			cur = s.Kind
			fmt.Fprintf(&b, "--- %s time ---\n", cur)
		}
		startCell := int((s.Start - lo) * scale)
		endCell := int((s.End - lo) * scale)
		if endCell <= startCell {
			endCell = startCell + 1
		}
		if endCell > width {
			endCell = width
		}
		fmt.Fprintf(&b, "%-*s |%s%s%s|\n", labelW, s.Label,
			strings.Repeat(" ", startCell),
			strings.Repeat("=", endCell-startCell),
			strings.Repeat(" ", width-endCell))
	}
	return b.String()
}

// Makespan returns the total wall-clock extent of spans of the given kind.
func (t *Timeline) Makespan(kind Kind) float64 {
	spans := t.Spans()
	lo, hi := 0.0, 0.0
	first := true
	for _, s := range spans {
		if s.Kind != kind {
			continue
		}
		if first {
			lo, hi = s.Start, s.End
			first = false
			continue
		}
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return hi - lo
}
