package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndSpansSorted(t *testing.T) {
	tl := New()
	tl.Add(SimulationTime, "sim-1", 5, 8)
	tl.Add(ObservationTime, "T0", 0, 2)
	tl.Add(ForecasterTime, "tau-0", 2, 6)
	tl.Add(ObservationTime, "T1", 2, 4)
	spans := tl.Spans()
	if len(spans) != 4 {
		t.Fatalf("Len = %d", len(spans))
	}
	if spans[0].Kind != ObservationTime || spans[0].Label != "T0" {
		t.Fatalf("first span %+v", spans[0])
	}
	if spans[3].Kind != SimulationTime {
		t.Fatalf("last span %+v", spans[3])
	}
}

func TestAddPanicsOnNegativeSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Add(ObservationTime, "bad", 5, 4)
}

func TestExtentAndMakespan(t *testing.T) {
	tl := New()
	tl.Add(SimulationTime, "a", 1, 4)
	tl.Add(SimulationTime, "b", 3, 9)
	tl.Add(ForecasterTime, "f", 0, 2)
	lo, hi := tl.Extent()
	if lo != 0 || hi != 9 {
		t.Fatalf("Extent = [%v, %v]", lo, hi)
	}
	if ms := tl.Makespan(SimulationTime); ms != 8 {
		t.Fatalf("Makespan(sim) = %v, want 8", ms)
	}
	if ms := tl.Makespan(ObservationTime); ms != 0 {
		t.Fatalf("Makespan(obs) = %v, want 0", ms)
	}
}

func TestOverlapDetection(t *testing.T) {
	serial := New()
	serial.Add(SimulationTime, "a", 0, 1)
	serial.Add(SimulationTime, "b", 1, 2)
	if serial.Overlap(SimulationTime) {
		t.Fatal("back-to-back spans reported as overlapping")
	}
	parallel := New()
	parallel.Add(SimulationTime, "a", 0, 2)
	parallel.Add(SimulationTime, "b", 1, 3)
	if !parallel.Overlap(SimulationTime) {
		t.Fatal("overlapping spans not detected")
	}
}

func TestRenderContainsRowsAndBars(t *testing.T) {
	tl := New()
	tl.Add(ObservationTime, "T0", 0, 2)
	tl.Add(ForecasterTime, "tau0", 1, 3)
	tl.Add(SimulationTime, "sim0", 2, 4)
	out := tl.Render(40)
	for _, want := range []string{"observation time", "forecaster time", "simulation time", "T0", "tau0", "sim0", "="} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := New().Render(40); !strings.Contains(out, "empty") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestConcurrentAdds(t *testing.T) {
	tl := New()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tl.Add(SimulationTime, "s", float64(i), float64(i+1))
		}(i)
	}
	wg.Wait()
	if tl.Len() != 100 {
		t.Fatalf("Len = %d after concurrent adds", tl.Len())
	}
}

func TestKindString(t *testing.T) {
	if ObservationTime.String() != "observation" || Kind(42).String() == "" {
		t.Fatal("Kind.String broken")
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{Start: 2, End: 5.5}
	if s.Duration() != 3.5 {
		t.Fatalf("Duration = %v", s.Duration())
	}
}
