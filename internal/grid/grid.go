// Package grid provides the structured ocean grid, multi-variable state
// layout and packing used by the ocean model, the observation operators
// and the ESSE state vectors.
//
// A Grid is a regular NX×NY horizontal mesh with NZ vertical levels. A
// StateLayout concatenates a set of named variables (2-D fields such as
// sea-surface height, 3-D fields such as temperature) into one flat state
// vector — the "augmented state vector x of large but finite dimensions"
// of the paper's Section 3.
package grid

import "fmt"

// Grid is a regular structured grid over a coastal region.
type Grid struct {
	NX, NY, NZ int
	// Dx, Dy are horizontal spacings in meters.
	//esselint:unit m
	Dx, Dy float64
	// Depths are the vertical level depths in meters (surface first).
	//esselint:unit m
	Depths []float64
	// Lon0, Lat0 anchor the grid's south-west corner (degrees).
	Lon0, Lat0 float64
}

// New constructs a grid with uniformly spaced vertical levels from the
// surface down to maxDepth.
func New(nx, ny, nz int, dx, dy, maxDepth float64) *Grid {
	if nx < 2 || ny < 2 || nz < 1 {
		panic(fmt.Sprintf("grid: degenerate dimensions %dx%dx%d", nx, ny, nz))
	}
	depths := make([]float64, nz)
	if nz == 1 {
		depths[0] = 0
	} else {
		for k := range depths {
			depths[k] = maxDepth * float64(k) / float64(nz-1)
		}
	}
	return &Grid{NX: nx, NY: ny, NZ: nz, Dx: dx, Dy: dy, Depths: depths}
}

// MontereyBay returns a grid sized like the AOSN-II Monterey Bay domain
// of the paper's Section 6 (order 100 km × 100 km, O(10) levels), at a
// resolution scaled down so ensemble experiments run at laptop scale.
func MontereyBay(nx, ny, nz int) *Grid {
	g := New(nx, ny, nz, 100e3/float64(nx-1), 100e3/float64(ny-1), 150)
	g.Lon0, g.Lat0 = -122.5, 36.3
	return g
}

// N2 returns the number of horizontal points.
func (g *Grid) N2() int { return g.NX * g.NY }

// N3 returns the number of 3-D points.
func (g *Grid) N3() int { return g.NX * g.NY * g.NZ }

// Idx2 flattens a horizontal index (i east, j north).
func (g *Grid) Idx2(i, j int) int { return j*g.NX + i }

// Idx3 flattens a 3-D index (level k counted downward).
func (g *Grid) Idx3(i, j, k int) int { return k*g.NX*g.NY + j*g.NX + i }

// Lon returns the longitude of column i (degrees).
func (g *Grid) Lon(i int) float64 {
	// ~111 km per degree scaled by cos(latitude of domain center).
	return g.Lon0 + float64(i)*g.Dx/(111e3*0.8)
}

// Lat returns the latitude of row j (degrees).
func (g *Grid) Lat(j int) float64 { return g.Lat0 + float64(j)*g.Dy/111e3 }

// InBounds reports whether (i, j) lies on the grid.
func (g *Grid) InBounds(i, j int) bool {
	return i >= 0 && i < g.NX && j >= 0 && j < g.NY
}

// VarSpec names one state variable. Levels is 1 for a 2-D field (e.g.
// sea-surface height) or Grid.NZ for a full 3-D field.
type VarSpec struct {
	Name   string
	Levels int
}

// StateLayout maps named variables into a single packed state vector.
type StateLayout struct {
	G       *Grid
	Vars    []VarSpec
	offsets []int
	dim     int
}

// NewLayout builds the layout for the given variables on grid g.
func NewLayout(g *Grid, vars []VarSpec) *StateLayout {
	l := &StateLayout{G: g, Vars: vars, offsets: make([]int, len(vars))}
	off := 0
	for i, v := range vars {
		if v.Levels < 1 || v.Levels > g.NZ {
			panic(fmt.Sprintf("grid: variable %q has %d levels, grid has %d", v.Name, v.Levels, g.NZ))
		}
		l.offsets[i] = off
		off += v.Levels * g.N2()
	}
	l.dim = off
	return l
}

// Dim returns the packed state dimension.
func (l *StateLayout) Dim() int { return l.dim }

// VarIndex returns the index of the named variable, or -1.
func (l *StateLayout) VarIndex(name string) int {
	for i, v := range l.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// Slice returns the sub-slice of state holding variable idx (all levels).
func (l *StateLayout) Slice(state []float64, idx int) []float64 {
	if len(state) != l.dim {
		panic("grid: state vector has wrong dimension")
	}
	n := l.Vars[idx].Levels * l.G.N2()
	return state[l.offsets[idx] : l.offsets[idx]+n]
}

// SliceByName returns the sub-slice for the named variable.
func (l *StateLayout) SliceByName(state []float64, name string) []float64 {
	idx := l.VarIndex(name)
	if idx < 0 {
		panic("grid: unknown variable " + name)
	}
	return l.Slice(state, idx)
}

// Level returns the horizontal slab (NX*NY values) of variable idx at
// vertical level k.
func (l *StateLayout) Level(state []float64, idx, k int) []float64 {
	v := l.Slice(state, idx)
	n2 := l.G.N2()
	if k < 0 || k >= l.Vars[idx].Levels {
		panic("grid: level out of range")
	}
	return v[k*n2 : (k+1)*n2]
}

// At returns the value of variable idx at (i, j, k).
func (l *StateLayout) At(state []float64, idx, i, j, k int) float64 {
	return l.Level(state, idx, k)[l.G.Idx2(i, j)]
}

// Offset returns the flat position in the state vector of variable idx at
// (i, j, k). Observation operators use this to address single scalars.
func (l *StateLayout) Offset(idx, i, j, k int) int {
	return l.offsets[idx] + k*l.G.N2() + l.G.Idx2(i, j)
}

// NewState allocates a zero state vector.
func (l *StateLayout) NewState() []float64 { return make([]float64, l.dim) }

// NearestLevel returns the vertical level index closest to the given
// depth in meters.
func (g *Grid) NearestLevel(depth float64) int {
	best, bestD := 0, -1.0
	for k, d := range g.Depths {
		diff := d - depth
		if diff < 0 {
			diff = -diff
		}
		if bestD < 0 || diff < bestD {
			best, bestD = k, diff
		}
	}
	return best
}
