package grid

import (
	"testing"
	"testing/quick"
)

func testLayout() (*Grid, *StateLayout) {
	g := New(8, 6, 4, 1000, 1000, 300)
	l := NewLayout(g, []VarSpec{
		{Name: "eta", Levels: 1},
		{Name: "T", Levels: 4},
		{Name: "S", Levels: 4},
	})
	return g, l
}

func TestGridCounts(t *testing.T) {
	g, _ := testLayout()
	if g.N2() != 48 || g.N3() != 192 {
		t.Fatalf("N2=%d N3=%d", g.N2(), g.N3())
	}
}

func TestGridIdx(t *testing.T) {
	g, _ := testLayout()
	if g.Idx2(3, 2) != 2*8+3 {
		t.Fatalf("Idx2 = %d", g.Idx2(3, 2))
	}
	if g.Idx3(3, 2, 1) != 48+19 {
		t.Fatalf("Idx3 = %d", g.Idx3(3, 2, 1))
	}
}

func TestGridDepthsMonotone(t *testing.T) {
	g := New(4, 4, 10, 1, 1, 500)
	if g.Depths[0] != 0 {
		t.Fatal("surface level depth must be 0")
	}
	if g.Depths[9] != 500 {
		t.Fatalf("deepest level = %v, want 500", g.Depths[9])
	}
	for k := 1; k < 10; k++ {
		if g.Depths[k] <= g.Depths[k-1] {
			t.Fatal("depths not increasing")
		}
	}
}

func TestNearestLevel(t *testing.T) {
	g := New(4, 4, 5, 1, 1, 400) // levels 0,100,200,300,400
	cases := map[float64]int{0: 0, 30: 0, 90: 1, 151: 2, 1000: 4}
	for depth, want := range cases {
		if got := g.NearestLevel(depth); got != want {
			t.Fatalf("NearestLevel(%v) = %d, want %d", depth, got, want)
		}
	}
}

func TestLayoutDim(t *testing.T) {
	_, l := testLayout()
	want := 48 * (1 + 4 + 4)
	if l.Dim() != want {
		t.Fatalf("Dim = %d, want %d", l.Dim(), want)
	}
}

func TestLayoutSlices(t *testing.T) {
	_, l := testLayout()
	state := l.NewState()
	for i := range state {
		state[i] = float64(i)
	}
	eta := l.SliceByName(state, "eta")
	if len(eta) != 48 || eta[0] != 0 || eta[47] != 47 {
		t.Fatalf("eta slice wrong: len=%d first=%v last=%v", len(eta), eta[0], eta[47])
	}
	T := l.SliceByName(state, "T")
	if len(T) != 192 || T[0] != 48 {
		t.Fatalf("T slice wrong: len=%d first=%v", len(T), T[0])
	}
}

func TestLayoutLevelAndOffset(t *testing.T) {
	g, l := testLayout()
	state := l.NewState()
	tIdx := l.VarIndex("T")
	// Write through Offset, read back through At and Level.
	off := l.Offset(tIdx, 5, 3, 2)
	state[off] = 42
	if l.At(state, tIdx, 5, 3, 2) != 42 {
		t.Fatal("Offset/At disagree")
	}
	lev := l.Level(state, tIdx, 2)
	if lev[g.Idx2(5, 3)] != 42 {
		t.Fatal("Level slab addressing wrong")
	}
}

func TestVarIndexUnknown(t *testing.T) {
	_, l := testLayout()
	if l.VarIndex("nope") != -1 {
		t.Fatal("unknown variable should return -1")
	}
}

func TestOffsetsDisjointProperty(t *testing.T) {
	// Property: every (var, i, j, k) offset is unique and in range.
	g, l := testLayout()
	seen := make(map[int]bool)
	for v, spec := range l.Vars {
		for k := 0; k < spec.Levels; k++ {
			for j := 0; j < g.NY; j++ {
				for i := 0; i < g.NX; i++ {
					off := l.Offset(v, i, j, k)
					if off < 0 || off >= l.Dim() {
						t.Fatalf("offset %d out of range", off)
					}
					if seen[off] {
						t.Fatalf("duplicate offset %d", off)
					}
					seen[off] = true
				}
			}
		}
	}
	if len(seen) != l.Dim() {
		t.Fatalf("offsets cover %d of %d state entries", len(seen), l.Dim())
	}
}

func TestInBoundsProperty(t *testing.T) {
	g := New(10, 7, 1, 1, 1, 0)
	if err := quick.Check(func(i, j int8) bool {
		in := g.InBounds(int(i), int(j))
		want := int(i) >= 0 && int(i) < 10 && int(j) >= 0 && int(j) < 7
		return in == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMontereyBayGeometry(t *testing.T) {
	g := MontereyBay(21, 21, 5)
	if g.Lon(0) != -122.5 || g.Lat(0) != 36.3 {
		t.Fatal("Monterey Bay anchor wrong")
	}
	if g.Lat(20) <= g.Lat(0) || g.Lon(20) <= g.Lon(0) {
		t.Fatal("coordinates must increase with index")
	}
	// 100 km domain: ~0.9 degrees of latitude.
	if dLat := g.Lat(20) - g.Lat(0); dLat < 0.5 || dLat > 1.5 {
		t.Fatalf("domain latitude extent = %v degrees", dLat)
	}
}

func TestNewLayoutRejectsBadLevels(t *testing.T) {
	g := New(4, 4, 3, 1, 1, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Levels > NZ")
		}
	}()
	NewLayout(g, []VarSpec{{Name: "bad", Levels: 9}})
}
