package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicReplay(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds produced %d/100 equal draws", same)
	}
}

func TestSplitIsPure(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(3)
	c2 := parent.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split with the same id must produce identical children")
		}
	}
}

func TestSplitChildrenIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams produced %d/100 equal draws", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(12)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(13)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d drawn %d times out of 70000; poor uniformity", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(14)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	s := New(15)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.NormScaled(3, 0.5)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.02 {
		t.Fatalf("scaled normal mean = %v, want ~3", mean)
	}
}

func TestNormVec(t *testing.T) {
	s := New(16)
	v := s.NormVec(nil, 64)
	if len(v) != 64 {
		t.Fatalf("NormVec length = %d, want 64", len(v))
	}
	reuse := make([]float64, 128)
	w := s.NormVec(reuse, 32)
	if len(w) != 32 {
		t.Fatalf("NormVec reuse length = %d, want 32", len(w))
	}
	if &w[0] != &reuse[0] {
		t.Fatal("NormVec did not reuse the provided buffer")
	}
}

func TestUniformVecRange(t *testing.T) {
	s := New(17)
	v := s.UniformVec(nil, 1000, -2, 5)
	for _, x := range v {
		if x < -2 || x >= 5 {
			t.Fatalf("UniformVec value %v outside [-2,5)", x)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(18)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := s.Exp(2.5)
		if x < 0 {
			t.Fatalf("Exp returned negative value %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~2.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(20)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit fraction = %v", frac)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(21)
	for i := 0; i < 1000; i++ {
		if x := s.LogNormal(0, 1); x <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", x)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Norm()
	}
	_ = sink
}
