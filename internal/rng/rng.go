// Package rng provides a deterministic, splittable pseudo-random number
// generator for reproducible stochastic ocean simulations and ensemble
// perturbations.
//
// The core generator is xoshiro256**, seeded through SplitMix64. Streams
// are splittable: Split derives a statistically independent child stream,
// which lets each ensemble member, each grid forcing field and each
// simulated cluster component own its own generator while the whole run
// stays bit-reproducible under a fixed master seed.
//
// Generators are NOT safe for concurrent use; give each goroutine its own
// stream via Split.
package rng

import (
	"math"
	"math/bits"
)

// Stream is a deterministic random number stream.
type Stream struct {
	s [4]uint64
	// cached spare Gaussian variate for the polar method
	hasSpare bool
	spare    float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding and splitting.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given master seed.
func New(seed uint64) *Stream {
	st := seed
	var s Stream
	for i := range s.s {
		s.s[i] = splitMix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x1badc0de
	}
	return &s
}

// Split derives an independent child stream keyed by id. The parent is
// not advanced, so Split(i) is a pure function of (parent state, id):
// calling it repeatedly with the same id yields identical children.
func (s *Stream) Split(id uint64) *Stream {
	st := s.s[0] ^ bits.RotateLeft64(s.s[1], 17) ^ (id * 0xd1342543de82ef95)
	var c Stream
	for i := range c.s {
		c.s[i] = splitMix64(&st)
	}
	if c.s[0]|c.s[1]|c.s[2]|c.s[3] == 0 {
		c.s[0] = 0x5eed5eed
	}
	return &c
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (s *Stream) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	x := s.Uint64()
	hi, lo := bits.Mul64(x, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			x = s.Uint64()
			hi, lo = bits.Mul64(x, un)
		}
	}
	return int(hi)
}

// Norm returns a standard normal variate (Marsaglia polar method).
func (s *Stream) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// NormScaled returns mean + stddev*Norm().
func (s *Stream) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// NormVec fills dst with independent standard normal variates and
// returns it. If dst is nil a new slice of length n is allocated.
func (s *Stream) NormVec(dst []float64, n int) []float64 {
	if dst == nil {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = s.Norm()
	}
	return dst
}

// UniformVec fills dst with uniform variates in [lo, hi).
func (s *Stream) UniformVec(dst []float64, n int, lo, hi float64) []float64 {
	if dst == nil {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	w := hi - lo
	for i := range dst {
		dst[i] = lo + w*s.Float64()
	}
	return dst
}

// Exp returns an exponentially distributed variate with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Norm())
}
