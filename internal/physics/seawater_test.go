package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoundSpeedKnownValue(t *testing.T) {
	// Anchor value: at T=0°C, S=35 PSU, D=0 m every correction term
	// vanishes and the formula returns its constant, 1448.96 m/s.
	if got := SoundSpeedMackenzie(0, 35, 0); math.Abs(got-1448.96) > 1e-9 {
		t.Fatalf("SoundSpeed(0,35,0) = %v, want 1448.96", got)
	}
	// Mid-depth check: T=10°C, S=35, D=1000 m evaluates to ~1506.26 m/s.
	if got := SoundSpeedMackenzie(10, 35, 1000); math.Abs(got-1506.26) > 0.05 {
		t.Fatalf("SoundSpeed(10,35,1000) = %v, want ~1506.26", got)
	}
}

func TestSoundSpeedSurface(t *testing.T) {
	// Typical surface value near 1500 m/s for 13°C, 33.5 PSU.
	got := SoundSpeedMackenzie(13, 33.5, 0)
	if got < 1480 || got > 1520 {
		t.Fatalf("surface sound speed = %v, implausible", got)
	}
}

func TestSoundSpeedIncreasesWithTemperature(t *testing.T) {
	if err := quick.Check(func(raw uint8) bool {
		temp := float64(raw%25) + 1 // 1..25°C
		c1 := SoundSpeedMackenzie(temp, 34, 100)
		c2 := SoundSpeedMackenzie(temp+1, 34, 100)
		return c2 > c1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoundSpeedIncreasesWithDepthAtFixedT(t *testing.T) {
	c1 := SoundSpeedMackenzie(5, 34, 100)
	c2 := SoundSpeedMackenzie(5, 34, 2000)
	if c2 <= c1 {
		t.Fatalf("pressure term should raise sound speed: %v vs %v", c1, c2)
	}
}

func TestDensityReference(t *testing.T) {
	if got := Density(TRef, SRef); math.Abs(got-RhoRef) > 1e-9 {
		t.Fatalf("Density at reference = %v, want %v", got, RhoRef)
	}
}

func TestDensityWarmerIsLighter(t *testing.T) {
	if Density(20, SRef) >= Density(10, SRef) {
		t.Fatal("warmer water must be lighter")
	}
}

func TestDensitySaltierIsHeavier(t *testing.T) {
	if Density(TRef, 35) <= Density(TRef, 33) {
		t.Fatal("saltier water must be heavier")
	}
}

func TestThorpAttenuationShape(t *testing.T) {
	// Monotone increasing in frequency and positive.
	prev := 0.0
	for _, f := range []float64{0.1, 0.5, 1, 5, 10, 50, 100} {
		a := ThorpAttenuation(f)
		if a <= prev {
			t.Fatalf("attenuation not increasing at %v kHz: %v <= %v", f, a, prev)
		}
		prev = a
	}
	// Sanity: ~1 kHz absorption is a fraction of a dB/km.
	if a := ThorpAttenuation(1); a < 0.01 || a > 0.2 {
		t.Fatalf("Thorp(1 kHz) = %v dB/km, implausible", a)
	}
}

func TestCoriolis(t *testing.T) {
	if math.Abs(Coriolis(0)) > 1e-12 {
		t.Fatal("Coriolis at equator must vanish")
	}
	f := Coriolis(36.6) // Monterey Bay
	if f < 8e-5 || f > 9.5e-5 {
		t.Fatalf("Coriolis(36.6°) = %v, implausible", f)
	}
	if Coriolis(-36.6) >= 0 {
		t.Fatal("southern hemisphere must be negative")
	}
}
