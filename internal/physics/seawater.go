// Package physics provides seawater physical relations used to couple
// the ocean state to acoustics: sound speed (Mackenzie 1981), a
// linearized equation of state for density, and Thorp's attenuation
// formula for acoustic absorption.
package physics

import "math"

// SoundSpeedMackenzie returns the speed of sound in seawater (m/s) from
// temperature T (°C), salinity S (PSU) and depth D (m), using the
// nine-term Mackenzie (1981) equation. Valid for -2..30 °C, 25..40 PSU,
// 0..8000 m.
func SoundSpeedMackenzie(t, s, d float64) float64 {
	return 1448.96 +
		4.591*t -
		5.304e-2*t*t +
		2.374e-4*t*t*t +
		1.340*(s-35) +
		1.630e-2*d +
		1.675e-7*d*d -
		1.025e-2*t*(s-35) -
		7.139e-13*t*d*d*d
}

// Reference state for the linearized equation of state.
const (
	//esselint:unit kg/m^3
	RhoRef = 1025.0
	//esselint:unit degC
	TRef = 12.0
	//esselint:unit psu
	SRef = 33.5
	// AlphaT is the thermal expansion coefficient.
	//esselint:unit 1/degC
	AlphaT = 2.0e-4
	// BetaS is the haline contraction coefficient.
	//esselint:unit 1/psu
	BetaS = 7.6e-4
	//esselint:unit m/s^2
	Gravity = 9.81
)

// OmegaEarth is Earth's rotation rate.
//
//esselint:unit 1/s
const OmegaEarth = 7.2921e-5

// Density returns seawater density (kg/m³) from a linearized equation of
// state about the California-coast reference values above. Adequate for
// the mesoscale dynamics window the paper targets.
//
//esselint:unit t=degC s=psu return=kg/m^3
func Density(t, s float64) float64 {
	return RhoRef * (1 - AlphaT*(t-TRef) + BetaS*(s-SRef))
}

// ThorpAttenuation returns the volume absorption coefficient in dB/km at
// frequency f in kHz (Thorp 1967 with the low-frequency correction term).
func ThorpAttenuation(fKHz float64) float64 {
	f2 := fKHz * fKHz
	return 0.11*f2/(1+f2) + 44*f2/(4100+f2) + 2.75e-4*f2 + 0.003
}

// Coriolis returns the Coriolis parameter f = 2 Ω sin(lat) for a
// latitude in degrees. latDeg carries no unit directive: the degree→
// radian conversion inside would read as a dimensioned argument to sin.
//
//esselint:unit return=1/s
func Coriolis(latDeg float64) float64 {
	return 2 * OmegaEarth * math.Sin(latDeg*math.Pi/180)
}
