package sched

import "esse/internal/cluster"

// SimulateBatched models the §5.3.4 workaround for schedulers that
// "prioritize large core count parallel jobs and thereby penalize
// massive task parallelism workloads": singleton jobs are repackaged
// into batches of `batch` members submitted as a single scheduler job.
//
// Each batch runs its members back-to-back on one core: the input files
// are read once per batch (the I/O win), the scheduler sees 1/batch as
// many submissions and dispatch events (the policy win), but the last
// wave has batch-sized granularity, so stragglers cost more (the
// load-balance loss the ablation benchmark quantifies).
func SimulateBatched(c *cluster.Cluster, jobs int, spec JobSpec, cfg Config, batch int) *Result {
	if batch <= 1 {
		return Simulate(c, jobs, spec, cfg)
	}
	full := jobs / batch
	rem := jobs % batch

	batchSpec := JobSpec{
		PertCPU:      spec.PertCPU * float64(batch),
		ModelCPU:     spec.ModelCPU * float64(batch),
		PertInputMB:  spec.PertInputMB, // shared input read once per batch
		ModelInputMB: spec.ModelInputMB,
		OutputMB:     spec.OutputMB * float64(batch),
	}
	res := Simulate(c, full, batchSpec, cfg)

	if rem > 0 {
		// The leftover partial batch rides along as one more job; its
		// runtime is proportional to the remainder. Approximate by
		// extending the makespan if the partial batch cannot hide inside
		// the existing schedule (it usually can: it is shorter than any
		// full batch and there are idle cores in the last wave unless
		// full batches exactly fill every wave).
		cores := len(c.CoreList())
		if cores > 0 && full%cores == 0 {
			partial := JobSpec{
				PertCPU:      spec.PertCPU * float64(rem),
				ModelCPU:     spec.ModelCPU * float64(rem),
				PertInputMB:  spec.PertInputMB,
				ModelInputMB: spec.ModelInputMB,
				OutputMB:     spec.OutputMB * float64(rem),
			}
			tail := Simulate(c, 1, partial, cfg)
			res.Makespan += tail.Makespan
			res.NFSMBMoved += tail.NFSMBMoved
		}
		res.JobsCompleted += 0 // accounted below
	}

	// Convert batch counts back to member counts.
	res.JobsCompleted = res.JobsCompleted*batch + rem
	res.JobsFailed *= batch
	res.MeanJobSeconds /= float64(batch)
	res.MaxJobSeconds /= float64(batch)
	return res
}
