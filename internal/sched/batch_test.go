package sched

import (
	"testing"

	"esse/internal/cluster"
)

func TestBatchedOneEqualsPlain(t *testing.T) {
	c := cluster.MITAvailable(210)
	cfg := DefaultConfig()
	a := Simulate(c, 300, ESSEJob(), cfg)
	b := SimulateBatched(c, 300, ESSEJob(), cfg, 1)
	if a.Makespan != b.Makespan || a.JobsCompleted != b.JobsCompleted {
		t.Fatal("batch=1 must be identical to the plain simulation")
	}
}

func TestBatchedMemberAccounting(t *testing.T) {
	c := cluster.MITAvailable(210)
	cfg := DefaultConfig()
	for _, batch := range []int{2, 3, 5} {
		res := SimulateBatched(c, 600, ESSEJob(), cfg, batch)
		if res.JobsCompleted != 600 {
			t.Fatalf("batch=%d: completed %d of 600 members", batch, res.JobsCompleted)
		}
	}
}

func TestBatchedReducesNFSInputTraffic(t *testing.T) {
	// The input files are read once per batch instead of once per member.
	c := cluster.MITAvailable(210)
	cfg := DefaultConfig()
	cfg.IOMode = MixedNFS
	cfg.PrestageMB = 0
	plain := SimulateBatched(c, 600, ESSEJob(), cfg, 1)
	batched := SimulateBatched(c, 600, ESSEJob(), cfg, 3)
	if batched.NFSMBMoved >= plain.NFSMBMoved {
		t.Fatalf("batching did not reduce NFS traffic: %v vs %v",
			batched.NFSMBMoved, plain.NFSMBMoved)
	}
}

func TestBatchedCondorAmortizesDispatchDelay(t *testing.T) {
	// Under Condor's slow reassignment, fewer bigger jobs means fewer
	// negotiation waits and a shorter makespan.
	c := cluster.MITAvailable(210)
	cfg := DefaultConfig()
	cfg.Policy = Condor
	plain := SimulateBatched(c, 600, ESSEJob(), cfg, 1)
	batched := SimulateBatched(c, 600, ESSEJob(), cfg, 3)
	if batched.Makespan >= plain.Makespan {
		t.Fatalf("batching under Condor should amortize dispatch delays: %v vs %v",
			batched.Makespan/60, plain.Makespan/60)
	}
}

func TestBatchedGranularityTail(t *testing.T) {
	// With batch size ~ jobs/cores the schedule degenerates to a single
	// giant wave per core; granularity loss must show up versus small
	// batches when job count does not divide evenly.
	small := &cluster.Cluster{
		Nodes: []cluster.Node{{Name: "n", Cores: 10, Speed: 1}},
		NFS:   cluster.NFS{BandwidthMBps: 1250},
	}
	cfg := DefaultConfig()
	cfg.PrestageMB = 0
	// 25 members on 10 cores: plain takes 3 waves (ceil 25/10);
	// batch=5 yields 5 batch-jobs on 10 cores: one wave of 5x jobs,
	// i.e. 5 member-times — worse than 3.
	plain := SimulateBatched(small, 25, ESSEJob(), cfg, 1)
	batched := SimulateBatched(small, 25, ESSEJob(), cfg, 5)
	if batched.Makespan <= plain.Makespan {
		t.Fatalf("batch granularity should hurt here: batched %v <= plain %v",
			batched.Makespan, plain.Makespan)
	}
}
