package sched

import (
	"math"
	"testing"

	"esse/internal/cluster"
)

func mit210() *cluster.Cluster { return cluster.MITAvailable(210) }

func TestPSResourceSingleTransfer(t *testing.T) {
	ps := newPS(100) // 100 MB/s
	ps.add(500, 0, -1)
	id, tt, ok := ps.nextCompletion()
	if !ok || tt != 5 {
		t.Fatalf("single transfer completion at %v (ok=%v), want 5", tt, ok)
	}
	ps.advance(tt)
	if r := ps.transfers[id].remaining; math.Abs(r) > 1e-9 {
		t.Fatalf("remaining = %v after completion", r)
	}
}

func TestPSResourceSharing(t *testing.T) {
	ps := newPS(100)
	ps.add(500, 0, -1)
	ps.add(500, 1, -1)
	// Two equal transfers share bandwidth: each runs at 50 MB/s → 10 s.
	_, tt, ok := ps.nextCompletion()
	if !ok || math.Abs(tt-10) > 1e-9 {
		t.Fatalf("shared completion at %v, want 10", tt)
	}
}

func TestPSResourceAccounting(t *testing.T) {
	ps := newPS(100)
	ps.add(300, 0, -1)
	ps.advance(2)
	if math.Abs(ps.moved-200) > 1e-9 {
		t.Fatalf("moved = %v, want 200", ps.moved)
	}
}

func TestSimulateConservation(t *testing.T) {
	res := Simulate(mit210(), 100, ESSEJob(), DefaultConfig())
	if res.JobsCompleted != 100 || res.JobsFailed != 0 {
		t.Fatalf("completed=%d failed=%d", res.JobsCompleted, res.JobsFailed)
	}
	if res.Makespan <= 0 || math.IsInf(res.Makespan, 0) || math.IsNaN(res.Makespan) {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Condor
	cfg.Seed = 42
	a := Simulate(mit210(), 150, ESSEJob(), cfg)
	b := Simulate(mit210(), 150, ESSEJob(), cfg)
	if a.Makespan != b.Makespan || a.NFSMBMoved != b.NFSMBMoved {
		t.Fatalf("same-seed simulations differ: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestLocalIOBeatsMixedNFS(t *testing.T) {
	// The §5.2.1 experiment: 600 members, ~210 cores.
	local := DefaultConfig()
	mixed := DefaultConfig()
	mixed.IOMode = MixedNFS
	rLocal := Simulate(mit210(), 600, ESSEJob(), local)
	rMixed := Simulate(mit210(), 600, ESSEJob(), mixed)
	if rLocal.Makespan >= rMixed.Makespan {
		t.Fatalf("local (%v) not faster than mixed (%v)", rLocal.Makespan, rMixed.Makespan)
	}
	ratio := rMixed.Makespan / rLocal.Makespan
	if ratio < 1.03 || ratio > 1.30 {
		t.Fatalf("mixed/local makespan ratio = %v, want ~1.1 (paper: 86/77)", ratio)
	}
	// Makespans in the right ballpark: tens of minutes.
	if rLocal.Makespan < 60*60 || rLocal.Makespan > 110*60 {
		t.Fatalf("local makespan = %v min, want ~77 min", rLocal.Makespan/60)
	}
}

func TestPertUtilizationJump(t *testing.T) {
	// "CPU utilization jumped from ≈20% to ≈100%".
	local := DefaultConfig()
	mixed := DefaultConfig()
	mixed.IOMode = MixedNFS
	rLocal := Simulate(mit210(), 600, ESSEJob(), local)
	rMixed := Simulate(mit210(), 600, ESSEJob(), mixed)
	if rLocal.PertCPUUtilization < 0.95 {
		t.Fatalf("local pert utilization = %v, want ≈1", rLocal.PertCPUUtilization)
	}
	if rMixed.PertCPUUtilization > 0.40 || rMixed.PertCPUUtilization < 0.05 {
		t.Fatalf("mixed pert utilization = %v, want ≈0.2", rMixed.PertCPUUtilization)
	}
}

func TestCondorSlowerThanSGE(t *testing.T) {
	// "Timings under Condor were between 10−20% slower."
	sge := DefaultConfig()
	condor := DefaultConfig()
	condor.Policy = Condor
	rSGE := Simulate(mit210(), 600, ESSEJob(), sge)
	rCondor := Simulate(mit210(), 600, ESSEJob(), condor)
	ratio := rCondor.Makespan / rSGE.Makespan
	if ratio < 1.05 || ratio > 1.25 {
		t.Fatalf("Condor/SGE ratio = %v, want 1.10–1.20", ratio)
	}
	if rCondor.MeanDispatchDelay <= rSGE.MeanDispatchDelay {
		t.Fatal("Condor should impose larger dispatch delays")
	}
}

func TestJobArrayNotSlowerThanSingletons(t *testing.T) {
	arr := DefaultConfig()
	single := DefaultConfig()
	single.JobArray = false
	rArr := Simulate(mit210(), 600, ESSEJob(), arr)
	rSingle := Simulate(mit210(), 600, ESSEJob(), single)
	if rSingle.Makespan < rArr.Makespan-1e-9 {
		t.Fatalf("singleton submission (%v) beat job array (%v)",
			rSingle.Makespan, rArr.Makespan)
	}
}

func TestFailureInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FailureProb = 0.2
	cfg.Seed = 7
	res := Simulate(mit210(), 300, ESSEJob(), cfg)
	if res.JobsFailed == 0 {
		t.Fatal("no failures with 20% failure probability")
	}
	if res.JobsCompleted+res.JobsFailed != 300 {
		t.Fatalf("accounting: %d + %d != 300", res.JobsCompleted, res.JobsFailed)
	}
	noFail := DefaultConfig()
	noFail.Seed = 7
	base := Simulate(mit210(), 300, ESSEJob(), noFail)
	if res.Makespan > base.Makespan*1.05 {
		t.Fatalf("failures should not inflate makespan (failed jobs die early): %v vs %v",
			res.Makespan, base.Makespan)
	}
}

func TestAcousticEnsembleThroughput(t *testing.T) {
	// "more than 6000 ocean acoustics realizations - each ~3 minutes -
	// the system handled all 6000+ jobs without any problem."
	cfg := DefaultConfig()
	cfg.IOMode = MixedNFS // acoustics read sections over NFS
	cfg.PrestageMB = 0
	res := Simulate(mit210(), 6000, AcousticJob(), cfg)
	if res.JobsCompleted != 6000 {
		t.Fatalf("completed %d of 6000", res.JobsCompleted)
	}
	// Ideal makespan ≈ 6000/210 × ~181 s ≈ 86 min; allow I/O slack.
	if res.Makespan < 70*60 || res.Makespan > 140*60 {
		t.Fatalf("acoustic makespan = %v min, implausible", res.Makespan/60)
	}
}

func TestFasterCoresFinishSooner(t *testing.T) {
	fast := &cluster.Cluster{
		Nodes: []cluster.Node{{Name: "fast", Cores: 8, Speed: 2.0}},
		NFS:   cluster.NFS{BandwidthMBps: 1250},
	}
	slow := &cluster.Cluster{
		Nodes: []cluster.Node{{Name: "slow", Cores: 8, Speed: 1.0}},
		NFS:   cluster.NFS{BandwidthMBps: 1250},
	}
	cfg := DefaultConfig()
	cfg.PrestageMB = 0
	rf := Simulate(fast, 16, ESSEJob(), cfg)
	rs := Simulate(slow, 16, ESSEJob(), cfg)
	if rf.Makespan >= rs.Makespan {
		t.Fatalf("2x cores speed not reflected: %v vs %v", rf.Makespan, rs.Makespan)
	}
	ratio := rs.Makespan / rf.Makespan
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("speedup ratio = %v, want ~2", ratio)
	}
}

func TestPrestageDelaysFirstWaveOnly(t *testing.T) {
	with := DefaultConfig()
	without := DefaultConfig()
	without.PrestageMB = 0
	rWith := Simulate(mit210(), 210, ESSEJob(), with)
	rWithout := Simulate(mit210(), 210, ESSEJob(), without)
	if rWith.Makespan <= rWithout.Makespan {
		t.Fatal("prestage cost not visible in makespan")
	}
	// Prestage of 117 nodes × 1.5 GB over 1250 MB/s ≈ 140 s.
	extra := rWith.Makespan - rWithout.Makespan
	if extra < 30 || extra > 600 {
		t.Fatalf("prestage cost = %v s, implausible", extra)
	}
}

func TestZeroJobs(t *testing.T) {
	res := Simulate(mit210(), 0, ESSEJob(), DefaultConfig())
	if res.Makespan != 0 || res.JobsCompleted != 0 {
		t.Fatalf("zero-job simulation: %+v", res)
	}
}

func TestMITClusterShape(t *testing.T) {
	mit := cluster.MIT()
	if mit.TotalCores() != 114*2+3*4 {
		t.Fatalf("MIT cores = %d", mit.TotalCores())
	}
	avail := cluster.MITAvailable(210)
	if avail.TotalCores() != 210 {
		t.Fatalf("available cores = %d", avail.TotalCores())
	}
	if len(cluster.MIT().CoreList()) != 240 {
		t.Fatalf("core list = %d", len(cluster.MIT().CoreList()))
	}
}

func TestPolicyAndModeStrings(t *testing.T) {
	if SGE.String() != "SGE" || Condor.String() != "Condor" {
		t.Fatal("policy names")
	}
	if LocalPrestaged.String() != "all-local" || MixedNFS.String() != "mixed-NFS" {
		t.Fatal("mode names")
	}
}

func BenchmarkSimulate600Members(b *testing.B) {
	c := mit210()
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		Simulate(c, 600, ESSEJob(), cfg)
	}
}
