// Package sched is a discrete-event simulation of running ESSE's
// many-task workload under the two queueing systems of the paper's
// Section 5.2 (Sun Grid Engine and Condor) on a cluster with a shared
// NFS fileserver.
//
// The simulation reproduces the phenomena behind the paper's local
// timings: the ~77 min (all-local prestaged I/O) vs ~86 min (mixed NFS
// I/O) makespans for 600 ensemble members on ~210 cores, the jump of
// pert CPU utilization from ≈20% to ≈100% when input files are
// prestaged, the 10–20% throughput penalty of Condor's reassignment
// delay relative to SGE's immediate dispatch, and the effect of job
// arrays versus one-submission-per-member.
//
// The NFS fileserver is modelled as a processor-sharing fluid resource:
// every active transfer receives an equal share of the uplink bandwidth,
// recomputed at each event boundary.
package sched

import (
	"container/heap"
	"fmt"
	"math"

	"esse/internal/cluster"
	"esse/internal/rng"
)

// Policy selects the queueing system behaviour.
type Policy int

const (
	// SGE dispatches a queued job the moment a core frees up.
	SGE Policy = iota
	// Condor waits a negotiation interval before reassigning a core, the
	// cycle-harvester caution the paper observed.
	Condor
)

// String names the policy.
func (p Policy) String() string {
	if p == Condor {
		return "Condor"
	}
	return "SGE"
}

// IOMode selects where the large input files live.
type IOMode int

const (
	// LocalPrestaged copies inputs to every node's local disk up front;
	// per-job reads then hit local disk (modelled as free relative to
	// compute, matching the ≈100% CPU utilization observation).
	LocalPrestaged IOMode = iota
	// MixedNFS reads the large input files over NFS for every job.
	MixedNFS
)

// String names the I/O mode.
func (m IOMode) String() string {
	if m == MixedNFS {
		return "mixed-NFS"
	}
	return "all-local"
}

// JobSpec describes one ensemble-member job (pert + pemodel + copy-back).
// CPU seconds are at the speed-1.0 reference core; NFS volumes apply in
// MixedNFS mode only, except OutputMB which is always copied back.
type JobSpec struct {
	PertCPU      float64
	ModelCPU     float64
	PertInputMB  float64
	ModelInputMB float64
	OutputMB     float64
}

// ESSEJob is the paper's ensemble-member job: pert 6.21 s and pemodel
// 1531.33 s on the local Opteron 250 (Table 1, "local" row), with large
// input files and an 11 MB result (the §5.4.2 cost example's per-member
// output).
func ESSEJob() JobSpec {
	return JobSpec{
		PertCPU:      6.21,
		ModelCPU:     1531.33,
		PertInputMB:  150,
		ModelInputMB: 800,
		OutputMB:     11,
	}
}

// AcousticJob is one of the very large ensemble of short acoustics runs
// ("each of which executed for approximately 3 minutes").
func AcousticJob() JobSpec {
	return JobSpec{
		PertCPU:      0.5,
		ModelCPU:     180,
		PertInputMB:  20,
		ModelInputMB: 0,
		OutputMB:     2,
	}
}

// Config controls one simulation run.
type Config struct {
	Policy Policy
	IOMode IOMode
	// JobArray submits all members as one array job; otherwise each
	// member is an individual submission paying SubmitCost serially.
	JobArray bool
	// SubmitCost is the master-side cost of one individual submission.
	SubmitCost float64
	// PrestageMB is the per-node input volume copied before the first
	// job in LocalPrestaged mode (the paper's 1.5 GB input data set).
	PrestageMB float64
	// CondorFirstDelay / CondorReassignDelay bound the uniform
	// negotiation waits (seconds).
	CondorFirstDelayMin, CondorFirstDelayMax       float64
	CondorReassignDelayMin, CondorReassignDelayMax float64
	// SGEDispatchDelay is SGE's (near-immediate) dispatch latency.
	SGEDispatchDelay float64
	// FailureProb is the per-job probability of dying mid-model-run.
	FailureProb float64
	// Seed drives all randomness in the simulation.
	Seed uint64
}

// DefaultConfig returns the calibrated §5.2 setup.
func DefaultConfig() Config {
	return Config{
		Policy:                 SGE,
		IOMode:                 LocalPrestaged,
		JobArray:               true,
		SubmitCost:             0.05,
		PrestageMB:             1500,
		CondorFirstDelayMin:    5,
		CondorFirstDelayMax:    30,
		CondorReassignDelayMin: 120,
		CondorReassignDelayMax: 360,
		SGEDispatchDelay:       0.5,
	}
}

// Result summarizes a simulation.
type Result struct {
	// Makespan is the wall-clock seconds from submission to last
	// completed output copy.
	Makespan float64
	// JobsCompleted and JobsFailed partition the workload.
	JobsCompleted, JobsFailed int
	// PertCPUUtilization is compute/(compute+input-wait) over the pert
	// phase of all jobs — the paper's ≈20% vs ≈100% observation.
	PertCPUUtilization float64
	// MeanDispatchDelay averages the scheduler-imposed wait per job.
	MeanDispatchDelay float64
	// NFSMBMoved totals bytes through the fileserver.
	NFSMBMoved float64
	// MeanJobSeconds and MaxJobSeconds measure per-job residence time
	// (dispatch to output completion).
	MeanJobSeconds, MaxJobSeconds float64
}

// --- processor-sharing NFS model ------------------------------------------

type psTransfer struct {
	remaining float64 // MB
	core      int     // owning core, or -1 for node prestage
	node      int     // owning node for prestage transfers
}

type psResource struct {
	bw        float64
	transfers map[int]*psTransfer
	nextID    int
	lastT     float64
	moved     float64
}

func newPS(bw float64) *psResource {
	return &psResource{bw: bw, transfers: make(map[int]*psTransfer)}
}

// advance drains work from all active transfers up to time t.
func (p *psResource) advance(t float64) {
	if n := len(p.transfers); n > 0 {
		rate := p.bw / float64(n)
		dt := t - p.lastT
		for _, tr := range p.transfers {
			tr.remaining -= rate * dt
		}
		p.moved += rate * dt * float64(n)
	}
	p.lastT = t
}

// add registers a transfer and returns its id.
func (p *psResource) add(mb float64, core, node int) int {
	id := p.nextID
	p.nextID++
	p.transfers[id] = &psTransfer{remaining: mb, core: core, node: node}
	return id
}

// nextCompletion returns the id and absolute time of the next transfer
// completion, or ok=false if no transfers are active.
func (p *psResource) nextCompletion() (id int, t float64, ok bool) {
	n := len(p.transfers)
	if n == 0 {
		return 0, 0, false
	}
	rate := p.bw / float64(n)
	best := math.Inf(1)
	bestID := -1
	for tid, tr := range p.transfers {
		done := tr.remaining / rate
		//esselint:allow floatcmp exact-equality tie-break keeps event ordering deterministic across runs
		if done < best || (done == best && tid < bestID) {
			best = done
			bestID = tid
		}
	}
	return bestID, p.lastT + best, true
}

// --- event heap ------------------------------------------------------------

type event struct {
	t    float64
	core int
	seq  int // tiebreaker for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//esselint:allow floatcmp exact comparison: equal times must fall through to the seq tiebreaker bit-for-bit
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)                  { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)                    { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any                      { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(t float64, core, seq int) { heap.Push(h, event{t: t, core: core, seq: seq}) }

// --- core state machine ------------------------------------------------------

// stage is the per-core lifecycle: a parked core (stIdle) is given a
// job (stDispatch) and walks the pert-IO → pert-CPU → model-IO →
// model-CPU → output-IO ladder; a mid-model failure or a finished
// output hands the core back to tryAssign, which parks it or
// dispatches the next job. No stage is terminal — cores are reused.
//
//esselint:fsm stIdle->stIdle, stIdle->stDispatch, stDispatch->stPertIO, stPertIO->stPertCPU, stPertCPU->stModelIO, stModelIO->stModelCPU, stModelCPU->stOutIO, stModelCPU->stIdle, stModelCPU->stDispatch, stOutIO->stIdle, stOutIO->stDispatch
type stage int

const (
	stIdle stage = iota
	stDispatch
	stPertIO
	stPertCPU
	stModelIO
	stModelCPU
	stOutIO
)

type coreSim struct {
	stage       stage
	job         int // current job id, -1 if none
	jobStart    float64
	firstJob    bool
	transfer    int // active PS transfer id, -1 if none
	willFail    bool
	pertIOStart float64
}

// Simulate runs the DES for `jobs` identical JobSpec jobs on the cluster.
func Simulate(c *cluster.Cluster, jobs int, spec JobSpec, cfg Config) *Result {
	if jobs <= 0 {
		return &Result{}
	}
	cores := c.CoreList()
	nCores := len(cores)
	if nCores == 0 {
		panic("sched: cluster has no cores")
	}
	random := rng.New(cfg.Seed)
	ps := newPS(c.NFS.BandwidthMBps)

	res := &Result{}
	state := make([]coreSim, nCores)
	for i := range state {
		state[i] = coreSim{job: -1, transfer: -1, firstJob: true}
	}

	// Node prestage gates (LocalPrestaged only).
	nodeReady := make([]bool, len(c.Nodes))
	prestageOwner := map[int]int{} // transfer id → node
	if cfg.IOMode == LocalPrestaged && cfg.PrestageMB > 0 {
		for ni := range c.Nodes {
			id := ps.add(cfg.PrestageMB, -1, ni)
			prestageOwner[id] = ni
		}
	} else {
		for ni := range nodeReady {
			nodeReady[ni] = true
		}
	}

	nextJob := 0
	submitReady := func(job int) float64 {
		if cfg.JobArray {
			return 0
		}
		return float64(job+1) * cfg.SubmitCost
	}

	dispatchDelay := func(cs *coreSim) float64 {
		switch cfg.Policy {
		case Condor:
			if cs.firstJob {
				return cfg.CondorFirstDelayMin +
					(cfg.CondorFirstDelayMax-cfg.CondorFirstDelayMin)*random.Float64()
			}
			return cfg.CondorReassignDelayMin +
				(cfg.CondorReassignDelayMax-cfg.CondorReassignDelayMin)*random.Float64()
		default:
			return cfg.SGEDispatchDelay
		}
	}

	var fixed eventHeap
	seq := 0
	totalDispatchDelay := 0.0
	pertCPUTime, pertIOTime := 0.0, 0.0
	jobSecondsSum, jobSecondsMax := 0.0, 0.0
	now := 0.0

	// tryAssign gives core ci its next job (entering dispatch stage).
	tryAssign := func(ci int, t float64) {
		cs := &state[ci]
		if nextJob >= jobs {
			cs.stage = stIdle
			return
		}
		if !nodeReady[cores[ci].Node] {
			cs.stage = stIdle // re-assigned when prestage completes
			return
		}
		job := nextJob
		nextJob++
		d := dispatchDelay(cs)
		start := math.Max(t, submitReady(job)) + d
		totalDispatchDelay += (start - t)
		cs.stage = stDispatch
		cs.job = job
		cs.jobStart = start
		cs.willFail = cfg.FailureProb > 0 && random.Bool(cfg.FailureProb)
		seq++
		fixed.push(start, ci, seq)
	}

	// enterStage moves a core into its next lifecycle stage at time t.
	var enterStage func(ci int, t float64)
	enterStage = func(ci int, t float64) {
		cs := &state[ci]
		speed := cores[ci].Speed
		switch cs.stage {
		case stDispatch:
			cs.stage = stPertIO
			cs.pertIOStart = t
			if cfg.IOMode == MixedNFS && spec.PertInputMB > 0 {
				cs.transfer = ps.add(spec.PertInputMB, ci, -1)
				return
			}
			enterStage(ci, t) // no input wait: pert IO phase is empty
		case stPertIO:
			pertIOTime += t - cs.pertIOStart
			cs.pertIOStart = 0
			cs.stage = stPertCPU
			dur := spec.PertCPU / speed
			pertCPUTime += dur
			seq++
			fixed.push(t+dur, ci, seq)
		case stPertCPU:
			cs.stage = stModelIO
			if cfg.IOMode == MixedNFS && spec.ModelInputMB > 0 {
				cs.transfer = ps.add(spec.ModelInputMB, ci, -1)
				return
			}
			enterStage(ci, t)
		case stModelIO:
			cs.stage = stModelCPU
			dur := spec.ModelCPU / speed
			if cs.willFail {
				dur *= random.Float64() // dies partway through
			}
			seq++
			fixed.push(t+dur, ci, seq)
		case stModelCPU:
			if cs.willFail {
				res.JobsFailed++
				finishJob(res, cs, t, &jobSecondsSum, &jobSecondsMax)
				tryAssign(ci, t)
				return
			}
			cs.stage = stOutIO
			if spec.OutputMB > 0 {
				cs.transfer = ps.add(spec.OutputMB, ci, -1)
				return
			}
			enterStage(ci, t)
		case stOutIO:
			res.JobsCompleted++
			finishJob(res, cs, t, &jobSecondsSum, &jobSecondsMax)
			tryAssign(ci, t)
		case stIdle:
			// Idle cores advance only through tryAssign; an event landing
			// here means the heap holds a stale entry for a core that was
			// since parked — a simulator invariant violation, not a state
			// to wave through silently.
			panic(fmt.Sprintf("sched: lifecycle event for idle core %d at t=%.3f", ci, t))
		}
	}

	// Initial assignment: one pass over all cores.
	for ci := range state {
		tryAssign(ci, 0)
	}

	for {
		// Choose the earliest of the fixed-event heap and PS completion.
		var tFixed = math.Inf(1)
		if fixed.Len() > 0 {
			tFixed = fixed[0].t
		}
		psID, tPS, psOK := ps.nextCompletion()
		if math.IsInf(tFixed, 1) && !psOK {
			break
		}
		if psOK && tPS <= tFixed {
			now = tPS
			ps.advance(now)
			tr := ps.transfers[psID]
			delete(ps.transfers, psID)
			if ni, isPrestage := prestageOwner[psID]; isPrestage && tr.core == -1 {
				nodeReady[ni] = true
				delete(prestageOwner, psID)
				// Wake idle cores on this node.
				for ci := range state {
					if cores[ci].Node == ni && state[ci].stage == stIdle {
						tryAssign(ci, now)
					}
				}
				continue
			}
			ci := tr.core
			state[ci].transfer = -1
			enterStage(ci, now)
			continue
		}
		e := heap.Pop(&fixed).(event)
		now = e.t
		ps.advance(now)
		enterStage(e.core, now)
	}

	done := res.JobsCompleted + res.JobsFailed
	if done > 0 {
		res.MeanDispatchDelay = totalDispatchDelay / float64(done)
		res.MeanJobSeconds = jobSecondsSum / float64(done)
	}
	res.MaxJobSeconds = jobSecondsMax
	res.Makespan = now
	res.NFSMBMoved = ps.moved
	if pertCPUTime+pertIOTime > 0 {
		res.PertCPUUtilization = pertCPUTime / (pertCPUTime + pertIOTime)
	}
	if done != jobs {
		panic(fmt.Sprintf("sched: accounting error: %d of %d jobs accounted", done, jobs))
	}
	return res
}

func finishJob(res *Result, cs *coreSim, t float64, sum, max *float64) {
	d := t - cs.jobStart
	*sum += d
	if d > *max {
		*max = d
	}
	cs.job = -1
	cs.firstJob = false
}
