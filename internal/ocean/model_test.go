package ocean

import (
	"math"
	"testing"

	"esse/internal/grid"
	"esse/internal/rng"
)

func testModel(seed uint64) *Model {
	g := grid.MontereyBay(16, 16, 4)
	cfg := DefaultConfig(g)
	return New(cfg, rng.New(seed))
}

func TestDefaultConfigStable(t *testing.T) {
	m := testModel(1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfl := m.CFLNumber(); cfl <= 0 || cfl > 0.7 {
		t.Fatalf("CFL = %v, want (0, 0.7]", cfl)
	}
}

func TestStateRoundTrip(t *testing.T) {
	m := testModel(2)
	s1 := m.State(nil)
	if len(s1) != m.StateDim() {
		t.Fatalf("state length %d != dim %d", len(s1), m.StateDim())
	}
	m2 := testModel(3)
	m2.SetState(s1)
	s2 := m2.State(nil)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("state round trip differs at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a, b := testModel(7), testModel(7)
	a.Run(20)
	b.Run(20)
	sa, sb := a.State(nil), b.State(nil)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same-seed runs diverged: model is not reproducible")
		}
	}
}

func TestStochasticSpreadWithDifferentSeeds(t *testing.T) {
	a, b := testModel(1), testModel(2)
	a.Run(50)
	b.Run(50)
	sa, sb := a.State(nil), b.State(nil)
	diff := 0.0
	for i := range sa {
		d := sa[i] - sb[i]
		diff += d * d
	}
	if math.Sqrt(diff) == 0 {
		t.Fatal("different noise seeds produced identical trajectories")
	}
}

func TestStepKeepsFieldsFinite(t *testing.T) {
	m := testModel(4)
	m.Run(200)
	for i, v := range m.State(nil) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("state[%d] = %v after 200 steps", i, v)
		}
	}
}

func TestEnergyBounded(t *testing.T) {
	m := testModel(5)
	e0 := m.Energy()
	m.Run(300)
	e1 := m.Energy()
	if e1 > 100*(e0+1) {
		t.Fatalf("energy grew from %v to %v: numerical instability", e0, e1)
	}
}

func TestTemperatureStaysPhysical(t *testing.T) {
	m := testModel(6)
	m.Run(300)
	st := m.State(nil)
	for _, v := range m.Layout.SliceByName(st, "T") {
		if v < -5 || v > 40 {
			t.Fatalf("temperature %v out of physical range", v)
		}
	}
	for _, v := range m.Layout.SliceByName(st, "S") {
		if v < 25 || v > 40 {
			t.Fatalf("salinity %v out of physical range", v)
		}
	}
}

func TestStratification(t *testing.T) {
	m := testModel(8)
	g := m.Cfg.Grid
	st := m.State(nil)
	tt := m.Layout.SliceByName(st, "T")
	// Column-mean surface temperature must exceed bottom temperature.
	surf, bot := 0.0, 0.0
	for id := 0; id < g.N2(); id++ {
		surf += tt[id]
		bot += tt[(g.NZ-1)*g.N2()+id]
	}
	if surf <= bot {
		t.Fatalf("no stratification: surface %v <= bottom %v", surf, bot)
	}
}

func TestClosedBoundaryVelocities(t *testing.T) {
	m := testModel(9)
	m.Run(50)
	st := m.State(nil)
	u := m.Layout.SliceByName(st, "u")
	v := m.Layout.SliceByName(st, "v")
	g := m.Cfg.Grid
	for i := 0; i < g.NX; i++ {
		if u[g.Idx2(i, 0)] != 0 || v[g.Idx2(i, 0)] != 0 ||
			u[g.Idx2(i, g.NY-1)] != 0 || v[g.Idx2(i, g.NY-1)] != 0 {
			t.Fatal("velocity not zero on north/south boundary")
		}
	}
	for j := 0; j < g.NY; j++ {
		if u[g.Idx2(0, j)] != 0 || u[g.Idx2(g.NX-1, j)] != 0 {
			t.Fatal("velocity not zero on east/west boundary")
		}
	}
}

func TestTimeAdvances(t *testing.T) {
	m := testModel(10)
	if m.Time() != 0 {
		t.Fatal("initial time must be 0")
	}
	m.Run(5)
	want := 5 * m.Cfg.Dt
	if math.Abs(m.Time()-want) > 1e-9 {
		t.Fatalf("time = %v, want %v", m.Time(), want)
	}
	n := m.RunFor(10 * m.Cfg.Dt)
	if n != 10 {
		t.Fatalf("RunFor took %d steps, want 10", n)
	}
}

func TestSSTCopy(t *testing.T) {
	m := testModel(11)
	sst := m.SST()
	if len(sst) != m.Cfg.Grid.N2() {
		t.Fatalf("SST length = %d", len(sst))
	}
	sst[0] = -999
	if m.SST()[0] == -999 {
		t.Fatal("SST must return a copy")
	}
}

func TestMeanSSTPlausible(t *testing.T) {
	m := testModel(12)
	if sst := m.MeanSST(); sst < 8 || sst > 25 {
		t.Fatalf("mean SST = %v, implausible for California coast", sst)
	}
}

func TestEddySignatureInSSH(t *testing.T) {
	m := testModel(13)
	st := m.State(nil)
	eta := m.Layout.SliceByName(st, "eta")
	max := 0.0
	for _, v := range eta {
		if v > max {
			max = v
		}
	}
	if max < 0.02 {
		t.Fatalf("initial SSH eddy amplitude %v too small", max)
	}
}

func TestPerturbationGrowth(t *testing.T) {
	// Nonlinear stochastic dynamics: an initially tiny perturbation plus
	// differing noise realizations must grow, not collapse to zero.
	a, b := testModel(20), testModel(21)
	sb := b.State(nil)
	sb[0] += 1e-6
	b.SetState(sb)
	a.Run(100)
	b.Run(100)
	sa, sb2 := a.State(nil), b.State(nil)
	d := 0.0
	for i := range sa {
		diff := sa[i] - sb2[i]
		d += diff * diff
	}
	if math.Sqrt(d) < 1e-9 {
		t.Fatalf("perturbation collapsed: %v", math.Sqrt(d))
	}
}

func TestValidateCatchesBadCFL(t *testing.T) {
	g := grid.MontereyBay(16, 16, 3)
	cfg := DefaultConfig(g)
	cfg.Dt *= 100
	m := New(cfg, rng.New(1))
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted an unstable time step")
	}
}

func BenchmarkStep16x16(b *testing.B) {
	m := testModel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkStep32x32(b *testing.B) {
	g := grid.MontereyBay(32, 32, 6)
	m := New(DefaultConfig(g), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}
