package ocean

import (
	"esse/internal/linalg"
)

// VerticalMixer applies implicit vertical diffusion to the 3-D tracers —
// the surface mixed layer physics a primitive-equation model carries.
// The backward-Euler discretization is unconditionally stable, solved
// per water column with the Thomas algorithm, so strong mixing does not
// constrain the model time step.
//
// Mixing is optional: DefaultConfig leaves it off (the explicit
// horizontal diffusion suffices for the MTC experiments); enable it by
// setting Config.VerticalDiffusivity > 0.
type VerticalMixer struct {
	// bands are precomputed per column since the grid is uniform.
	sub, diag, super []float64
	rhs              []float64
	// x, c, d are Thomas-solver scratch, reused across columns so a
	// full mixing sweep allocates nothing.
	x, c, d []float64
	nz      int
}

// newVerticalMixer builds the implicit operator (I − dt·Kv·D2) for the
// given level spacing.
func newVerticalMixer(depths []float64, kv, dt float64) *VerticalMixer {
	nz := len(depths)
	m := &VerticalMixer{
		sub:   make([]float64, nz),
		diag:  make([]float64, nz),
		super: make([]float64, nz),
		rhs:   make([]float64, nz),
		x:     make([]float64, nz),
		c:     make([]float64, nz),
		d:     make([]float64, nz),
		nz:    nz,
	}
	if nz == 1 {
		m.diag[0] = 1
		return m
	}
	for k := 0; k < nz; k++ {
		var dzUp, dzDn float64
		if k > 0 {
			dzUp = depths[k] - depths[k-1]
		}
		if k < nz-1 {
			dzDn = depths[k+1] - depths[k]
		}
		// No-flux boundaries at surface and bottom.
		var aUp, aDn float64
		if k > 0 && dzUp > 0 {
			aUp = kv * dt / (dzUp * dzUp)
		}
		if k < nz-1 && dzDn > 0 {
			aDn = kv * dt / (dzDn * dzDn)
		}
		m.sub[k] = -aUp
		m.super[k] = -aDn
		m.diag[k] = 1 + aUp + aDn
	}
	return m
}

// mixColumn solves one water column in place. col holds nz values with
// stride `stride` starting at offset `off` in tr.
func (m *VerticalMixer) mixColumn(tr []float64, off, stride int) error {
	for k := 0; k < m.nz; k++ {
		m.rhs[k] = tr[off+k*stride]
	}
	if err := linalg.SolveTridiagonalInto(m.x, m.c, m.d, m.sub, m.diag, m.super, m.rhs); err != nil {
		return err
	}
	for k := 0; k < m.nz; k++ {
		tr[off+k*stride] = m.x[k]
	}
	return nil
}

// applyVerticalMixing diffuses both tracers implicitly over one step.
func (m *Model) applyVerticalMixing() error {
	kv := m.Cfg.VerticalDiffusivity
	if kv <= 0 || m.Cfg.Grid.NZ < 2 {
		return nil
	}
	if m.vmixer == nil {
		m.vmixer = newVerticalMixer(m.Cfg.Grid.Depths, kv, m.Cfg.Dt)
	}
	n2 := m.Cfg.Grid.N2()
	for id := 0; id < n2; id++ {
		if err := m.vmixer.mixColumn(m.t, id, n2); err != nil {
			return err
		}
		if err := m.vmixer.mixColumn(m.s, id, n2); err != nil {
			return err
		}
	}
	return nil
}
