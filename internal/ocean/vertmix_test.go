package ocean

import (
	"math"
	"testing"

	"esse/internal/grid"
	"esse/internal/rng"
)

func mixingModel(kv float64, seed uint64) *Model {
	g := grid.MontereyBay(10, 10, 6)
	cfg := DefaultConfig(g)
	cfg.VerticalDiffusivity = kv
	// Quiet model isolates the mixing effect.
	cfg.NoiseWind, cfg.NoiseTracer, cfg.WindAmp = 0, 0, 0
	return New(cfg, rng.New(seed))
}

func TestVerticalMixingConservesColumnMean(t *testing.T) {
	// With no-flux boundaries, implicit diffusion conserves each column's
	// mean tracer content (uniform level spacing).
	m := mixingModel(1e-2, 1)
	g := m.Cfg.Grid
	n2 := g.N2()
	colMean := func(tr []float64, id int) float64 {
		s := 0.0
		for k := 0; k < g.NZ; k++ {
			s += tr[k*n2+id]
		}
		return s / float64(g.NZ)
	}
	before := make([]float64, n2)
	for id := 0; id < n2; id++ {
		before[id] = colMean(m.t, id)
	}
	if err := m.applyVerticalMixing(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n2; id++ {
		after := colMean(m.t, id)
		if math.Abs(after-before[id]) > 1e-10 {
			t.Fatalf("column %d mean drifted: %v -> %v", id, before[id], after)
		}
	}
}

func TestVerticalMixingReducesStratification(t *testing.T) {
	m := mixingModel(5e-2, 2)
	g := m.Cfg.Grid
	n2 := g.N2()
	spread := func() float64 {
		s := 0.0
		for id := 0; id < n2; id++ {
			s += m.t[id] - m.t[(g.NZ-1)*n2+id] // surface minus bottom
		}
		return s
	}
	before := spread()
	m.Run(50)
	after := spread()
	if after >= before {
		t.Fatalf("mixing did not reduce stratification: %v -> %v", before, after)
	}
	if after < 0 {
		t.Fatal("mixing inverted the stratification")
	}
}

func TestVerticalMixingUnconditionallyStable(t *testing.T) {
	// Kv large enough that an explicit scheme would explode at this dt:
	// dz ≈ 30 m, dt ≈ 200 s → explicit limit Kv < dz²/(2dt) ≈ 2.25;
	// use 50 and demand finite, physical output.
	m := mixingModel(50, 3)
	m.Run(100)
	for _, v := range m.State(nil) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("implicit mixing went unstable")
		}
	}
	for _, v := range m.t {
		if v < 0 || v > 40 {
			t.Fatalf("temperature %v unphysical under strong mixing", v)
		}
	}
}

func TestVerticalMixingOffByDefault(t *testing.T) {
	g := grid.MontereyBay(8, 8, 4)
	cfg := DefaultConfig(g)
	if cfg.VerticalDiffusivity != 0 {
		t.Fatal("vertical mixing should default off")
	}
	a := New(cfg, rng.New(4))
	b := mixingModel(0, 4)
	_ = b
	before := a.State(nil)
	if err := a.applyVerticalMixing(); err != nil {
		t.Fatal(err)
	}
	after := a.State(nil)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Kv=0 changed the state")
		}
	}
}

func TestVerticalMixingParallelConsistent(t *testing.T) {
	mk := func() *Model { return mixingModel(1e-2, 5) }
	serial, parallel := mk(), mk()
	for i := 0; i < 20; i++ {
		serial.Step()
		parallel.StepParallel(3)
	}
	ss, sp := serial.State(nil), parallel.State(nil)
	for i := range ss {
		if ss[i] != sp[i] {
			t.Fatal("vertical mixing broke serial/parallel equivalence")
		}
	}
}

func TestVerticalMixingSingleLevelNoop(t *testing.T) {
	g := grid.MontereyBay(6, 6, 1)
	cfg := DefaultConfig(g)
	cfg.VerticalDiffusivity = 1
	m := New(cfg, rng.New(6))
	before := m.State(nil)
	if err := m.applyVerticalMixing(); err != nil {
		t.Fatal(err)
	}
	after := m.State(nil)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("single-level mixing changed the state")
		}
	}
}
