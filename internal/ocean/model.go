// Package ocean implements the stochastic dynamical ocean model that
// stands in for the paper's HOPS primitive-equation code (`pemodel`).
//
// The model couples a nonlinear shallow-water layer (sea-surface height
// eta and depth-averaged currents u, v, with momentum advection,
// Coriolis, bottom friction and lateral viscosity) to 3-D temperature and
// salinity tracers advected by the depth-attenuated flow, with horizontal
// diffusion. Stochastic wind-stress and surface-tracer forcing enter as
// Wiener increments (the dη term of equation B1a in the paper), so every
// ensemble member integrates a genuinely stochastic PDE.
//
// The state vector packs [eta, u, v, T(×NZ), S(×NZ)] through
// grid.StateLayout; ESSE perturbs, propagates and assimilates exactly
// this vector.
package ocean

import (
	"fmt"
	"math"

	"esse/internal/grid"
	"esse/internal/physics"
	"esse/internal/rng"
)

// Config collects the physical and numerical parameters of the model.
type Config struct {
	Grid *grid.Grid
	// Dt is the time step in seconds.
	//esselint:unit s
	Dt float64
	// MeanDepth is the resting layer depth H (m) of the shallow-water core.
	//esselint:unit m
	MeanDepth float64
	// Coriolis parameter f (1/s).
	//esselint:unit 1/s
	Coriolis float64
	// BottomFriction is the linear drag coefficient r (1/s).
	//esselint:unit 1/s
	BottomFriction float64
	// Viscosity is the lateral eddy viscosity for momentum (m²/s).
	//esselint:unit m^2/s
	Viscosity float64
	// Diffusivity is the horizontal tracer diffusivity (m²/s).
	//esselint:unit m^2/s
	Diffusivity float64
	// WindAmp is the steady wind-stress acceleration amplitude (m/s²).
	//esselint:unit m/s^2
	WindAmp float64
	// NoiseWind is the std-dev of the stochastic wind acceleration
	// integrated over one step, per sqrt(s) (Wiener forcing): an
	// acceleration times sqrt(s), i.e. m/s^1.5.
	//esselint:unit m/s^1.5
	NoiseWind float64
	// NoiseTracer is the std-dev of stochastic surface temperature
	// forcing per sqrt(s).
	//esselint:unit degC/s^0.5
	NoiseTracer float64
	// NoiseSmoothPasses controls the spatial correlation of the
	// stochastic forcing (diffusive smoothing passes over white noise).
	NoiseSmoothPasses int
	// EkmanDepth sets the e-folding depth (m) of velocity used to advect
	// the 3-D tracers.
	//esselint:unit m
	EkmanDepth float64
	// VerticalDiffusivity Kv (m²/s) enables implicit vertical tracer
	// mixing when positive (0 = off; see vertmix.go).
	//esselint:unit m^2/s
	VerticalDiffusivity float64
	// Climo parameterizes the initial mesoscale state (eddy + front).
	Climo ClimatologyParams
}

// ClimatologyParams positions the initial mesoscale features: a
// warm-core eddy and a coastal upwelling front. Jittering these
// parameters across realizations produces the structured, temperature-
// dominant initial-condition uncertainty of a real coastal forecast
// (the error fields mapped in the paper's Figs. 5 and 6 concentrate on
// exactly such features).
type ClimatologyParams struct {
	// EddyCXFrac, EddyCYFrac place the eddy center (fractions of NX, NY).
	EddyCXFrac, EddyCYFrac float64
	// EddyRadiusFrac sets the eddy radius as a fraction of min(NX, NY).
	EddyRadiusFrac float64
	// EddyAmpT is the eddy core temperature anomaly (degC).
	//esselint:unit degC
	EddyAmpT float64
	// EddyAmpSSH is the eddy sea-surface height anomaly (m).
	//esselint:unit m
	EddyAmpSSH float64
	// FrontAmpT is the upwelling front temperature anomaly (degC,
	// negative = cold).
	//esselint:unit degC
	FrontAmpT float64
	// FrontWidthFrac is the front e-folding width (fraction of NX).
	FrontWidthFrac float64
}

// DefaultClimatology returns the reference Monterey-Bay-like setup.
func DefaultClimatology() ClimatologyParams {
	return ClimatologyParams{
		EddyCXFrac:     0.55,
		EddyCYFrac:     0.45,
		EddyRadiusFrac: 0.18,
		EddyAmpT:       1.2,
		EddyAmpSSH:     0.08,
		FrontAmpT:      -1.5,
		FrontWidthFrac: 0.15,
	}
}

// Jitter returns a randomly perturbed copy of the climatology — an
// initial-condition realization for building the initial error subspace.
func (p ClimatologyParams) Jitter(s *rng.Stream) ClimatologyParams {
	out := p
	out.EddyCXFrac += 0.08 * s.Norm()
	out.EddyCYFrac += 0.08 * s.Norm()
	out.EddyRadiusFrac *= 1 + 0.15*s.Norm()
	if out.EddyRadiusFrac < 0.05 {
		out.EddyRadiusFrac = 0.05
	}
	out.EddyAmpT *= 1 + 0.25*s.Norm()
	out.EddyAmpSSH *= 1 + 0.25*s.Norm()
	out.FrontAmpT *= 1 + 0.25*s.Norm()
	out.FrontWidthFrac *= 1 + 0.15*s.Norm()
	if out.FrontWidthFrac < 0.05 {
		out.FrontWidthFrac = 0.05
	}
	return out
}

// defaultMeanDepth is the resting layer depth DefaultConfig uses. Named
// (and unit-annotated) so the gravity-wave speed and the derived time
// step below carry m/s and s through the unit analysis.
//
//esselint:unit m
const defaultMeanDepth = 50.0

// DefaultConfig returns a numerically stable configuration for grid g
// sized for the mesoscale window (days, kilometers) the paper studies.
func DefaultConfig(g *grid.Grid) Config {
	h := defaultMeanDepth
	c := math.Sqrt(physics.Gravity * h)
	minDx := math.Min(g.Dx, g.Dy)
	dt := 0.2 * minDx / c // well inside the CFL bound
	return Config{
		Grid:              g,
		Dt:                dt,
		MeanDepth:         h,
		Coriolis:          physics.Coriolis(36.6),
		BottomFriction:    2e-6,
		Viscosity:         0.01 * minDx * minDx / dt / 8, // mild, stability-safe
		Diffusivity:       0.005 * minDx * minDx / dt / 8,
		WindAmp:           1e-6,
		NoiseWind:         2e-7,
		NoiseTracer:       2e-5,
		NoiseSmoothPasses: 3,
		EkmanDepth:        80,
		Climo:             DefaultClimatology(),
	}
}

// Vars is the canonical state variable list of the model.
func Vars(g *grid.Grid) []grid.VarSpec {
	return []grid.VarSpec{
		{Name: "eta", Levels: 1},
		{Name: "u", Levels: 1},
		{Name: "v", Levels: 1},
		{Name: "T", Levels: g.NZ},
		{Name: "S", Levels: g.NZ},
	}
}

// Model is one realization of the stochastic ocean model. It is not safe
// for concurrent use; ensemble members each own a Model (and an
// independent rng stream).
type Model struct {
	Cfg    Config
	Layout *grid.StateLayout

	//esselint:unit m
	eta []float64 // n2
	//esselint:unit m/s
	u, v []float64 // n2
	//esselint:unit degC
	t []float64 // n3
	//esselint:unit psu
	s []float64 // n3

	noise  *rng.Stream
	time   float64
	vmixer *VerticalMixer

	// scratch buffers reused across steps. newTr is shared between the
	// temperature and salinity sweeps, so it carries no unit directive.
	//esselint:unit m
	newEta []float64
	//esselint:unit m/s
	newU, newV []float64
	newTr      []float64
	//esselint:unit m/s^2
	fx, fy []float64
	//esselint:unit degC
	ftr []float64

	// Parallel-phase worker closures, created once on the first
	// StepParallel so stepping allocates no per-step closures. The
	// tracer worker reads its per-level state from trSlab/trDecay/
	// trSurface, which stepTracerParallel writes serially before each
	// parallelRows barrier.
	momentumFn, continuityFn, tracerFn func(jLo, jHi int)
	trSlab                             []float64
	trDecay                            float64
	trSurface                          bool
}

// New builds a model with the climatological initial state: linear
// stratification plus a mesoscale eddy in sea-surface height and an
// upwelling-like temperature front, roughly matching the Monterey Bay
// situation of the paper's Section 6.
func New(cfg Config, noise *rng.Stream) *Model {
	if cfg.Grid == nil {
		panic("ocean: Config.Grid is nil")
	}
	if noise == nil {
		noise = rng.New(0)
	}
	g := cfg.Grid
	m := &Model{
		Cfg:    cfg,
		Layout: grid.NewLayout(g, Vars(g)),
		eta:    make([]float64, g.N2()),
		u:      make([]float64, g.N2()),
		v:      make([]float64, g.N2()),
		t:      make([]float64, g.N3()),
		s:      make([]float64, g.N3()),
		noise:  noise,
		newEta: make([]float64, g.N2()),
		newU:   make([]float64, g.N2()),
		newV:   make([]float64, g.N2()),
		newTr:  make([]float64, g.N2()),
		fx:     make([]float64, g.N2()),
		fy:     make([]float64, g.N2()),
		ftr:    make([]float64, g.N2()),
	}
	m.initClimatology()
	return m
}

func (m *Model) initClimatology() {
	g := m.Cfg.Grid
	maxD := g.Depths[g.NZ-1]
	if maxD == 0 {
		maxD = 1
	}
	p := m.Cfg.Climo
	if p == (ClimatologyParams{}) {
		p = DefaultClimatology()
	}
	cx, cy := float64(g.NX)*p.EddyCXFrac, float64(g.NY)*p.EddyCYFrac
	// The clamp keeps the eddy shape well-defined even for degenerate
	// grids or a zero radius fraction: without it, dx/rad at the eddy
	// center is 0/0 = NaN and seeds the whole temperature field with it.
	rad := math.Max(float64(minInt(g.NX, g.NY))*p.EddyRadiusFrac, 1e-9)
	for k := 0; k < g.NZ; k++ {
		frac := g.Depths[k] / maxD
		baseT := 16 - 9*frac // 16°C at surface to 7°C at depth
		baseS := 33.3 + 0.9*frac
		decay := math.Exp(-g.Depths[k] / math.Max(m.Cfg.EkmanDepth, 1))
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				idx := g.Idx3(i, j, k)
				// Coastal upwelling front: colder near the eastern edge.
				front := p.FrontAmpT * decay * math.Exp(-math.Pow(float64(g.NX-1-i)/(p.FrontWidthFrac*float64(g.NX)), 2))
				// Warm-core eddy.
				dx := (float64(i) - cx) / rad
				dy := (float64(j) - cy) / rad
				eddy := p.EddyAmpT * decay * math.Exp(-(dx*dx + dy*dy))
				m.t[idx] = baseT + front + eddy
				m.s[idx] = baseS - 0.05*eddy
			}
		}
	}
	// Geostrophically-consistent SSH for the eddy (warm core → high SSH).
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			dx := (float64(i) - cx) / rad
			dy := (float64(j) - cy) / rad
			m.eta[g.Idx2(i, j)] = p.EddyAmpSSH * math.Exp(-(dx*dx + dy*dy))
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Time returns the model time in seconds since initialization.
func (m *Model) Time() float64 { return m.time }

// StateDim returns the packed state dimension.
func (m *Model) StateDim() int { return m.Layout.Dim() }

// State packs the current model fields into dst (allocated if nil).
func (m *Model) State(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Layout.Dim())
	}
	copy(m.Layout.SliceByName(dst, "eta"), m.eta)
	copy(m.Layout.SliceByName(dst, "u"), m.u)
	copy(m.Layout.SliceByName(dst, "v"), m.v)
	copy(m.Layout.SliceByName(dst, "T"), m.t)
	copy(m.Layout.SliceByName(dst, "S"), m.s)
	return dst
}

// SetState loads a packed state vector into the model fields.
func (m *Model) SetState(state []float64) {
	copy(m.eta, m.Layout.SliceByName(state, "eta"))
	copy(m.u, m.Layout.SliceByName(state, "u"))
	copy(m.v, m.Layout.SliceByName(state, "v"))
	copy(m.t, m.Layout.SliceByName(state, "T"))
	copy(m.s, m.Layout.SliceByName(state, "S"))
}

// SST returns a copy of the surface temperature field.
func (m *Model) SST() []float64 {
	out := make([]float64, len(m.t[:m.Cfg.Grid.N2()]))
	copy(out, m.t[:m.Cfg.Grid.N2()])
	return out
}

// CFLNumber returns the gravity-wave CFL number c·dt/min(dx,dy); values
// below ~0.7 are stable for the forward-backward scheme.
func (m *Model) CFLNumber() float64 {
	// Validate rejects non-positive MeanDepth; the clamp keeps the Sqrt
	// NaN-free even on unvalidated configs.
	c := math.Sqrt(physics.Gravity * math.Max(m.Cfg.MeanDepth, 0))
	return c * m.Cfg.Dt / math.Min(m.Cfg.Grid.Dx, m.Cfg.Grid.Dy)
}

// Step advances the model by one time step.
func (m *Model) Step() {
	g := m.Cfg.Grid
	dt := m.Cfg.Dt
	dx, dy := g.Dx, g.Dy
	f := m.Cfg.Coriolis
	r := m.Cfg.BottomFriction
	nu := m.Cfg.Viscosity

	m.sampleForcing()

	// --- Momentum update (forward step with current eta) ---
	for j := 1; j < g.NY-1; j++ {
		for i := 1; i < g.NX-1; i++ {
			id := g.Idx2(i, j)
			ddxEta := (m.eta[g.Idx2(i+1, j)] - m.eta[g.Idx2(i-1, j)]) / (2 * dx)
			ddyEta := (m.eta[g.Idx2(i, j+1)] - m.eta[g.Idx2(i, j-1)]) / (2 * dy)
			// Nonlinear advection (centered).
			dudx := (m.u[g.Idx2(i+1, j)] - m.u[g.Idx2(i-1, j)]) / (2 * dx)
			dudy := (m.u[g.Idx2(i, j+1)] - m.u[g.Idx2(i, j-1)]) / (2 * dy)
			dvdx := (m.v[g.Idx2(i+1, j)] - m.v[g.Idx2(i-1, j)]) / (2 * dx)
			dvdy := (m.v[g.Idx2(i, j+1)] - m.v[g.Idx2(i, j-1)]) / (2 * dy)
			lapU := laplacian(m.u, g, i, j, dx, dy)
			lapV := laplacian(m.v, g, i, j, dx, dy)
			adv := m.u[id]*dudx + m.v[id]*dudy
			m.newU[id] = m.u[id] + dt*(-physics.Gravity*ddxEta+f*m.v[id]-r*m.u[id]-adv+nu*lapU+m.fx[id])
			adv = m.u[id]*dvdx + m.v[id]*dvdy
			m.newV[id] = m.v[id] + dt*(-physics.Gravity*ddyEta-f*m.u[id]-r*m.v[id]-adv+nu*lapV+m.fy[id])
		}
	}
	applyClosedBoundary(m.newU, g)
	applyClosedBoundary(m.newV, g)

	// --- Continuity update (backward step with the new velocities) ---
	h := m.Cfg.MeanDepth
	for j := 1; j < g.NY-1; j++ {
		for i := 1; i < g.NX-1; i++ {
			id := g.Idx2(i, j)
			div := (m.newU[g.Idx2(i+1, j)]-m.newU[g.Idx2(i-1, j)])/(2*dx) +
				(m.newV[g.Idx2(i, j+1)]-m.newV[g.Idx2(i, j-1)])/(2*dy)
			m.newEta[id] = m.eta[id] - dt*h*div
		}
	}
	zeroGradientBoundary(m.newEta, g)
	m.eta, m.newEta = m.newEta, m.eta
	m.u, m.newU = m.newU, m.u
	m.v, m.newV = m.newV, m.v

	// --- Tracer updates, level by level ---
	m.stepTracer(m.t, true)
	m.stepTracer(m.s, false)
	if err := m.applyVerticalMixing(); err != nil {
		// The implicit operator is diagonally dominant by construction;
		// a failure indicates a programming error, not a data condition.
		panic(err)
	}

	m.time += dt
}

// stepTracer advances one 3-D tracer with upwind advection by the
// depth-attenuated flow, diffusion, and (for temperature) stochastic
// surface forcing.
func (m *Model) stepTracer(tr []float64, isTemp bool) {
	g := m.Cfg.Grid
	dt := m.Cfg.Dt
	dx, dy := g.Dx, g.Dy
	kappa := m.Cfg.Diffusivity
	n2 := g.N2()
	for k := 0; k < g.NZ; k++ {
		decay := math.Exp(-g.Depths[k] / math.Max(m.Cfg.EkmanDepth, 1))
		slab := tr[k*n2 : (k+1)*n2]
		out := m.newTr
		for j := 1; j < g.NY-1; j++ {
			for i := 1; i < g.NX-1; i++ {
				id := g.Idx2(i, j)
				uu := m.u[id] * decay
				vv := m.v[id] * decay
				// First-order upwind advection.
				var ddxT, ddyT float64
				if uu >= 0 {
					ddxT = (slab[id] - slab[g.Idx2(i-1, j)]) / dx
				} else {
					ddxT = (slab[g.Idx2(i+1, j)] - slab[id]) / dx
				}
				if vv >= 0 {
					ddyT = (slab[id] - slab[g.Idx2(i, j-1)]) / dy
				} else {
					ddyT = (slab[g.Idx2(i, j+1)] - slab[id]) / dy
				}
				lap := laplacian(slab, g, i, j, dx, dy)
				val := slab[id] + dt*(-uu*ddxT-vv*ddyT+kappa*lap)
				if isTemp && k == 0 {
					val += m.ftr[id]
				}
				out[id] = val
			}
		}
		// Copy interior back; boundary gets zero-gradient.
		for j := 1; j < g.NY-1; j++ {
			row := out[j*g.NX : (j+1)*g.NX]
			copy(slab[j*g.NX+1:(j+1)*g.NX-1], row[1:g.NX-1])
		}
		zeroGradientBoundary(slab, g)
	}
}

// sampleForcing draws the wind and tracer stochastic forcing fields for
// this step (steady wind + smoothed Wiener increments).
func (m *Model) sampleForcing() {
	g := m.Cfg.Grid
	// Validate rejects non-positive Dt; the clamp keeps the Sqrt
	// NaN-free even on unvalidated configs.
	sqrtDt := math.Sqrt(math.Max(m.Cfg.Dt, 0))
	windNoise := m.Cfg.NoiseWind * sqrtDt / m.Cfg.Dt // acceleration equivalent
	trNoise := m.Cfg.NoiseTracer * sqrtDt
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			id := g.Idx2(i, j)
			// Steady upwelling-favorable (equatorward) wind plus noise.
			m.fx[id] = 0
			m.fy[id] = -m.Cfg.WindAmp
			if windNoise > 0 {
				m.fx[id] += windNoise * m.noise.Norm()
				m.fy[id] += windNoise * m.noise.Norm()
			}
			if trNoise > 0 {
				m.ftr[id] = trNoise * m.noise.Norm()
			} else {
				m.ftr[id] = 0
			}
		}
	}
	for p := 0; p < m.Cfg.NoiseSmoothPasses; p++ {
		smooth(m.fx, g)
		smooth(m.fy, g)
		smooth(m.ftr, g)
	}
}

// Run advances the model n steps.
func (m *Model) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// RunFor advances the model by the given duration in seconds (rounded to
// whole steps) and returns the number of steps taken.
func (m *Model) RunFor(seconds float64) int {
	n := int(seconds / m.Cfg.Dt)
	m.Run(n)
	return n
}

// Energy returns the total (kinetic + potential) shallow-water energy,
// a bounded diagnostic used by stability tests.
func (m *Model) Energy() float64 {
	g := m.Cfg.Grid
	e := 0.0
	for id := 0; id < g.N2(); id++ {
		e += 0.5*m.Cfg.MeanDepth*(m.u[id]*m.u[id]+m.v[id]*m.v[id]) +
			0.5*physics.Gravity*m.eta[id]*m.eta[id]
	}
	return e * g.Dx * g.Dy
}

// MeanSST returns the domain-averaged surface temperature (°C).
func (m *Model) MeanSST() float64 {
	n2 := m.Cfg.Grid.N2()
	if n2 == 0 {
		return 0
	}
	s := 0.0
	for _, v := range m.t[:n2] {
		s += v
	}
	return s / float64(n2)
}

// Validate sanity-checks the configuration, returning an error describing
// the first problem found.
func (m *Model) Validate() error {
	if cfl := m.CFLNumber(); cfl > 0.7 {
		return fmt.Errorf("ocean: CFL number %.3f exceeds stability bound 0.7", cfl)
	}
	if m.Cfg.Dt <= 0 {
		return fmt.Errorf("ocean: non-positive time step %v", m.Cfg.Dt)
	}
	return nil
}

func laplacian(field []float64, g *grid.Grid, i, j int, dx, dy float64) float64 {
	id := g.Idx2(i, j)
	return (field[g.Idx2(i+1, j)]-2*field[id]+field[g.Idx2(i-1, j)])/(dx*dx) +
		(field[g.Idx2(i, j+1)]-2*field[id]+field[g.Idx2(i, j-1)])/(dy*dy)
}

// applyClosedBoundary zeroes a velocity component on the domain edge.
func applyClosedBoundary(field []float64, g *grid.Grid) {
	for i := 0; i < g.NX; i++ {
		field[g.Idx2(i, 0)] = 0
		field[g.Idx2(i, g.NY-1)] = 0
	}
	for j := 0; j < g.NY; j++ {
		field[g.Idx2(0, j)] = 0
		field[g.Idx2(g.NX-1, j)] = 0
	}
}

// zeroGradientBoundary copies the nearest interior value to the edge.
func zeroGradientBoundary(field []float64, g *grid.Grid) {
	for i := 1; i < g.NX-1; i++ {
		field[g.Idx2(i, 0)] = field[g.Idx2(i, 1)]
		field[g.Idx2(i, g.NY-1)] = field[g.Idx2(i, g.NY-2)]
	}
	for j := 0; j < g.NY; j++ {
		field[g.Idx2(0, j)] = field[g.Idx2(1, j)]
		field[g.Idx2(g.NX-1, j)] = field[g.Idx2(g.NX-2, j)]
	}
}

// smooth applies one diffusive smoothing pass (5-point average) in place.
func smooth(field []float64, g *grid.Grid) {
	for j := 1; j < g.NY-1; j++ {
		for i := 1; i < g.NX-1; i++ {
			id := g.Idx2(i, j)
			field[id] = 0.5*field[id] + 0.125*(field[g.Idx2(i+1, j)]+
				field[g.Idx2(i-1, j)]+field[g.Idx2(i, j+1)]+field[g.Idx2(i, j-1)])
		}
	}
}
