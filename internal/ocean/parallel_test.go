package ocean

import (
	"testing"

	"esse/internal/grid"
	"esse/internal/rng"
)

func TestStepParallelBitIdenticalToSerial(t *testing.T) {
	for _, tasks := range []int{2, 3, 4, 7} {
		serial := testModel(42)
		parallel := testModel(42)
		for step := 0; step < 30; step++ {
			serial.Step()
			parallel.StepParallel(tasks)
		}
		ss := serial.State(nil)
		sp := parallel.State(nil)
		for i := range ss {
			if ss[i] != sp[i] {
				t.Fatalf("tasks=%d: state[%d] differs: %v vs %v", tasks, i, ss[i], sp[i])
			}
		}
	}
}

func TestStepParallelOneTaskDelegates(t *testing.T) {
	a := testModel(5)
	b := testModel(5)
	a.Step()
	b.StepParallel(1)
	sa, sb := a.State(nil), b.State(nil)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("StepParallel(1) differs from Step")
		}
	}
}

func TestStepParallelMoreTasksThanRows(t *testing.T) {
	g := grid.MontereyBay(8, 8, 3)
	m := New(DefaultConfig(g), rng.New(1))
	m.StepParallel(64) // must clamp, not crash
	if !stateFinite(m) {
		t.Fatal("non-finite state after over-subscribed parallel step")
	}
}

func TestRunParallelAdvancesTime(t *testing.T) {
	m := testModel(6)
	m.RunParallel(10, 3)
	want := 10 * m.Cfg.Dt
	if diff := m.Time() - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("time = %v, want %v", m.Time(), want)
	}
}

func stateFinite(m *Model) bool {
	for _, v := range m.State(nil) {
		if v != v || v > 1e300 || v < -1e300 {
			return false
		}
	}
	return true
}

func BenchmarkStepSerial48(b *testing.B) {
	g := grid.MontereyBay(48, 48, 6)
	m := New(DefaultConfig(g), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkStepParallel48x4(b *testing.B) {
	g := grid.MontereyBay(48, 48, 6)
	m := New(DefaultConfig(g), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepParallel(4)
	}
}
