package ocean

import (
	"math"
	"sync"

	"esse/internal/physics"
)

// StepParallel advances the model one time step using `tasks` goroutines
// that each own a band of grid rows — the Go analog of the paper's
// future-work "massive ensembles of small (2-3 task) MPI jobs", where
// each ensemble member is itself a small parallel program.
//
// The decomposition is deterministic and bit-identical to Step(): every
// phase reads only the previous phase's arrays and writes disjoint rows,
// with a barrier between phases (the role halo exchanges play in the
// MPI version). The stochastic forcing is drawn serially from the
// member's stream so the noise sequence is independent of the task
// count.
func (m *Model) StepParallel(tasks int) {
	if tasks <= 1 {
		m.Step()
		return
	}
	m.initPhases()
	g := m.Cfg.Grid

	m.sampleForcing() // serial: keeps the noise sequence task-count independent

	// --- Momentum phase: disjoint row bands of newU/newV ---
	m.parallelRows(tasks, m.momentumFn)
	applyClosedBoundary(m.newU, g)
	applyClosedBoundary(m.newV, g)

	// --- Continuity phase ---
	m.parallelRows(tasks, m.continuityFn)
	zeroGradientBoundary(m.newEta, g)
	m.eta, m.newEta = m.newEta, m.eta
	m.u, m.newU = m.newU, m.u
	m.v, m.newV = m.newV, m.v

	// --- Tracer phases ---
	m.stepTracerParallel(m.t, true, tasks)
	m.stepTracerParallel(m.s, false, tasks)
	if err := m.applyVerticalMixing(); err != nil {
		panic(err)
	}

	m.time += m.Cfg.Dt
}

// initPhases lazily builds the per-phase worker closures. Each closure
// captures only the model and rereads configuration and the
// double-buffered field slices on every invocation, so one closure per
// phase serves every subsequent step — repeated stepping allocates
// nothing.
func (m *Model) initPhases() {
	if m.momentumFn == nil {
		m.momentumFn = func(jLo, jHi int) {
			g := m.Cfg.Grid
			dt := m.Cfg.Dt
			dx, dy := g.Dx, g.Dy
			f := m.Cfg.Coriolis
			r := m.Cfg.BottomFriction
			nu := m.Cfg.Viscosity
			for j := jLo; j < jHi; j++ {
				if j == 0 || j == g.NY-1 {
					continue
				}
				for i := 1; i < g.NX-1; i++ {
					id := g.Idx2(i, j)
					ddxEta := (m.eta[g.Idx2(i+1, j)] - m.eta[g.Idx2(i-1, j)]) / (2 * dx)
					ddyEta := (m.eta[g.Idx2(i, j+1)] - m.eta[g.Idx2(i, j-1)]) / (2 * dy)
					dudx := (m.u[g.Idx2(i+1, j)] - m.u[g.Idx2(i-1, j)]) / (2 * dx)
					dudy := (m.u[g.Idx2(i, j+1)] - m.u[g.Idx2(i, j-1)]) / (2 * dy)
					dvdx := (m.v[g.Idx2(i+1, j)] - m.v[g.Idx2(i-1, j)]) / (2 * dx)
					dvdy := (m.v[g.Idx2(i, j+1)] - m.v[g.Idx2(i, j-1)]) / (2 * dy)
					lapU := laplacian(m.u, g, i, j, dx, dy)
					lapV := laplacian(m.v, g, i, j, dx, dy)
					adv := m.u[id]*dudx + m.v[id]*dudy
					m.newU[id] = m.u[id] + dt*(-physics.Gravity*ddxEta+f*m.v[id]-r*m.u[id]-adv+nu*lapU+m.fx[id])
					adv = m.u[id]*dvdx + m.v[id]*dvdy
					m.newV[id] = m.v[id] + dt*(-physics.Gravity*ddyEta-f*m.u[id]-r*m.v[id]-adv+nu*lapV+m.fy[id])
				}
			}
		}
		m.continuityFn = func(jLo, jHi int) {
			g := m.Cfg.Grid
			dt := m.Cfg.Dt
			dx, dy := g.Dx, g.Dy
			h := m.Cfg.MeanDepth
			for j := jLo; j < jHi; j++ {
				if j == 0 || j == g.NY-1 {
					continue
				}
				for i := 1; i < g.NX-1; i++ {
					id := g.Idx2(i, j)
					div := (m.newU[g.Idx2(i+1, j)]-m.newU[g.Idx2(i-1, j)])/(2*dx) +
						(m.newV[g.Idx2(i, j+1)]-m.newV[g.Idx2(i, j-1)])/(2*dy)
					m.newEta[id] = m.eta[id] - dt*h*div
				}
			}
		}
		m.tracerFn = func(jLo, jHi int) {
			g := m.Cfg.Grid
			dt := m.Cfg.Dt
			dx, dy := g.Dx, g.Dy
			kappa := m.Cfg.Diffusivity
			slab, decay, out := m.trSlab, m.trDecay, m.newTr
			for j := jLo; j < jHi; j++ {
				if j == 0 || j == g.NY-1 {
					continue
				}
				for i := 1; i < g.NX-1; i++ {
					id := g.Idx2(i, j)
					uu := m.u[id] * decay
					vv := m.v[id] * decay
					var ddxT, ddyT float64
					if uu >= 0 {
						ddxT = (slab[id] - slab[g.Idx2(i-1, j)]) / dx
					} else {
						ddxT = (slab[g.Idx2(i+1, j)] - slab[id]) / dx
					}
					if vv >= 0 {
						ddyT = (slab[id] - slab[g.Idx2(i, j-1)]) / dy
					} else {
						ddyT = (slab[g.Idx2(i, j+1)] - slab[id]) / dy
					}
					lap := laplacian(slab, g, i, j, dx, dy)
					val := slab[id] + dt*(-uu*ddxT-vv*ddyT+kappa*lap)
					if m.trSurface {
						val += m.ftr[id]
					}
					out[id] = val
				}
			}
		}
	}
}

// stepTracerParallel mirrors stepTracer with row-band parallelism per
// level. Per-level state reaches the shared tracer worker through the
// model's trSlab/trDecay/trSurface fields, written serially before the
// spawn so the goroutine start orders the writes before every read.
func (m *Model) stepTracerParallel(tr []float64, isTemp bool, tasks int) {
	g := m.Cfg.Grid
	n2 := g.N2()
	for k := 0; k < g.NZ; k++ {
		m.trDecay = math.Exp(-g.Depths[k] / math.Max(m.Cfg.EkmanDepth, 1))
		m.trSlab = tr[k*n2 : (k+1)*n2]
		m.trSurface = isTemp && k == 0
		m.parallelRows(tasks, m.tracerFn)
		// Copy interior back (barrier above guarantees newTr is complete).
		slab := m.trSlab
		for j := 1; j < g.NY-1; j++ {
			row := m.newTr[j*g.NX : (j+1)*g.NX]
			copy(slab[j*g.NX+1:(j+1)*g.NX-1], row[1:g.NX-1])
		}
		zeroGradientBoundary(slab, g)
	}
}

// parallelRows splits rows [0, NY) into contiguous bands, one goroutine
// each, and waits for all (the phase barrier).
func (m *Model) parallelRows(tasks int, fn func(jLo, jHi int)) {
	ny := m.Cfg.Grid.NY
	if tasks > ny {
		tasks = ny
	}
	var wg sync.WaitGroup
	chunk := (ny + tasks - 1) / tasks
	for t := 0; t < tasks; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > ny {
			hi = ny
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RunParallel advances n steps with task-parallel stepping.
func (m *Model) RunParallel(n, tasks int) {
	for i := 0; i < n; i++ {
		m.StepParallel(tasks)
	}
}
