// Package covstore implements the paper's on-disk covariance exchange
// between the continuously running "diff" stage and the SVD/convergence
// stage (Section 4.1):
//
//	"To fully decouple the loops without introducing a race condition on
//	 the covariance matrix file between its reading for the SVD and its
//	 writing by diff, we employ three files, a safe one for SVD to use
//	 and a live alternating pair for diff to write to, with the safe one
//	 being updated by the appropriate member of the pair."
//
// Store writes each snapshot to one of two alternating live files and
// atomically publishes it as the safe file via rename, so a reader never
// observes a torn matrix. What is stored is the ensemble anomaly matrix
// (the covariance square root): it carries the same information as the
// O((N·G·V)²) covariance at a fraction of the footprint, and it is what
// the SVD stage actually consumes.
//
// Every snapshot carries the member bookkeeping indices (the paper's
// "keep track of which perturbation is added every time") and an
// integrity checksum.
package covstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"esse/internal/linalg"
	"esse/internal/telemetry"
)

const magic = "ESSECOV2"

var crcTable = crc64.MakeTable(crc64.ECMA)

// Store manages the triple-file snapshot protocol in one directory.
type Store struct {
	dir string

	mu      sync.Mutex
	toggle  int
	version int64

	// stats
	writes int64

	// telemetry handles (nil no-ops unless Instrument is called)
	tel       *telemetry.Telemetry
	cWrites   *telemetry.Counter
	cReads    *telemetry.Counter
	hWriteSec *telemetry.Histogram
}

// Instrument registers the store's metrics in tel and enables spans on
// the Ctx read/write variants. Call it before the store is shared
// between goroutines; with a nil tel it is a no-op.
func (s *Store) Instrument(tel *telemetry.Telemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = tel
	s.cWrites = tel.Counter("esse_covstore_writes_total", "Covariance snapshots published through the triple-file protocol.")
	s.cReads = tel.Counter("esse_covstore_reads_total", "Safe-file snapshot reads by the SVD stage.")
	s.hWriteSec = tel.Histogram("esse_covstore_write_seconds", "Wall-clock duration of one snapshot write + atomic publish.", nil)
}

// telemetry returns the instrumented handle under the lock (nil until
// Instrument), mirroring the counter-snapshot idiom below.
func (s *Store) telemetry() *telemetry.Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel
}

// Open creates (or reuses) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("covstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) livePath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("live_%d.cov", i))
}

func (s *Store) safePath() string { return filepath.Join(s.dir, "safe.cov") }

// WriteSnapshotCtx is WriteSnapshot wrapped in a span parented under
// the active span in ctx (the SVD round that triggered the publish),
// so on-disk protocol time shows up as a child in the trace tree. The
// context carries lineage only; the write itself is not cancellable.
func (s *Store) WriteSnapshotCtx(ctx context.Context, m *linalg.Dense, indices []int) (int64, error) {
	_, sp := s.telemetry().SpanCtx(ctx, "covstore", "write", -1, -1)
	defer sp.End()
	return s.WriteSnapshot(m, indices)
}

// WriteSnapshot serializes the anomaly matrix and its member indices to
// the next live file and atomically publishes it as the safe file.
// It returns the monotonically increasing snapshot version.
func (s *Store) WriteSnapshot(m *linalg.Dense, indices []int) (int64, error) {
	if len(indices) != m.Cols {
		return 0, fmt.Errorf("covstore: %d indices for %d columns", len(indices), m.Cols)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := time.Now()
	s.version++
	v := s.version
	live := s.livePath(s.toggle)
	s.toggle = 1 - s.toggle

	f, err := os.Create(live)
	if err != nil {
		return 0, fmt.Errorf("covstore: %w", err)
	}
	if err := writeSnapshot(f, v, m, indices); err != nil {
		//esselint:allow errdrop close on the error path; the write error takes precedence
		f.Close()
		return 0, fmt.Errorf("covstore: writing %s: %w", live, err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("covstore: %w", err)
	}
	// Atomic publish: rename the completed live file over the safe file.
	if err := os.Rename(live, s.safePath()); err != nil {
		return 0, fmt.Errorf("covstore: publish: %w", err)
	}
	s.writes++
	s.cWrites.Inc()
	s.hWriteSec.Observe(time.Since(t0).Seconds())
	return v, nil
}

// ReadSafeCtx is ReadSafe wrapped in a span parented under the active
// span in ctx, the read-side twin of WriteSnapshotCtx.
func (s *Store) ReadSafeCtx(ctx context.Context) (*linalg.Dense, []int, int64, error) {
	_, sp := s.telemetry().SpanCtx(ctx, "covstore", "read", -1, -1)
	defer sp.End()
	return s.ReadSafe()
}

// ReadSafe reads the most recently published snapshot. It returns
// os.ErrNotExist if nothing has been published yet.
func (s *Store) ReadSafe() (*linalg.Dense, []int, int64, error) {
	// Snapshot the counter under the lock: Instrument writes it under mu
	// and may race a concurrent reader. The nil counter is a no-op.
	s.mu.Lock()
	cReads := s.cReads
	s.mu.Unlock()
	cReads.Inc()
	f, err := os.Open(s.safePath())
	if err != nil {
		return nil, nil, 0, err
	}
	//esselint:allow errdrop read-only file; Close cannot lose data
	defer f.Close()
	return readSnapshot(f)
}

// Version returns the last published version (0 if none).
func (s *Store) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Writes returns the number of published snapshots.
func (s *Store) Writes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

func writeSnapshot(w io.Writer, version int64, m *linalg.Dense, indices []int) error {
	if _, err := w.Write([]byte(magic)); err != nil {
		return err
	}
	// One Write of the whole header slice: the slice header is boxed
	// once instead of one interface allocation per int64 field.
	hdr := []int64{version, int64(m.Rows), int64(m.Cols)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	idx64 := make([]int64, len(indices))
	for i, v := range indices {
		idx64[i] = int64(v)
	}
	if err := binary.Write(w, binary.LittleEndian, idx64); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, m.Data); err != nil {
		return err
	}
	sum := snapshotChecksum(version, m, indices)
	return binary.Write(w, binary.LittleEndian, sum)
}

func readSnapshot(r io.Reader) (*linalg.Dense, []int, int64, error) {
	mg := make([]byte, len(magic))
	if _, err := io.ReadFull(r, mg); err != nil {
		return nil, nil, 0, err
	}
	if string(mg) != magic {
		return nil, nil, 0, fmt.Errorf("covstore: bad magic %q", mg)
	}
	var version, rows, cols int64
	for _, p := range []*int64{&version, &rows, &cols} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, nil, 0, err
		}
	}
	if rows < 0 || cols < 0 || rows*cols > 1<<33 {
		return nil, nil, 0, fmt.Errorf("covstore: implausible shape %dx%d", rows, cols)
	}
	idx64 := make([]int64, cols)
	if err := binary.Read(r, binary.LittleEndian, idx64); err != nil {
		return nil, nil, 0, err
	}
	m := linalg.NewDense(int(rows), int(cols))
	if err := binary.Read(r, binary.LittleEndian, m.Data); err != nil {
		return nil, nil, 0, err
	}
	var sum uint64
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return nil, nil, 0, err
	}
	indices := make([]int, cols)
	for i, v := range idx64 {
		indices[i] = int(v)
	}
	if want := snapshotChecksum(version, m, indices); sum != want {
		return nil, nil, 0, fmt.Errorf("covstore: checksum mismatch (torn snapshot?)")
	}
	return m, indices, version, nil
}

// snapshotChecksum hashes header, indices and payload. Words are
// staged through one fixed block buffer so the hash sees 512-byte
// writes instead of one Write call per matrix element; the byte
// stream — and therefore the checksum — is unchanged.
func snapshotChecksum(version int64, m *linalg.Dense, indices []int) uint64 {
	h := crc64.New(crcTable)
	block := make([]byte, 0, 512)
	flush := func() {
		//esselint:allow errdrop hash.Hash.Write is documented to never fail
		h.Write(block)
		block = block[:0]
	}
	put := func(v uint64) {
		if len(block)+8 > cap(block) {
			flush()
		}
		block = binary.LittleEndian.AppendUint64(block, v)
	}
	put(uint64(version))
	put(uint64(m.Rows))
	put(uint64(m.Cols))
	for _, idx := range indices {
		put(uint64(idx))
	}
	for _, f := range m.Data {
		put(math.Float64bits(f))
	}
	flush()
	return h.Sum64()
}
