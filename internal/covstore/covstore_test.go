package covstore

import (
	"errors"
	"os"
	"sync"
	"testing"

	"esse/internal/linalg"
	"esse/internal/rng"
)

func testMatrix(seed uint64, r, c int) (*linalg.Dense, []int) {
	s := rng.New(seed)
	m := linalg.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = s.Norm()
	}
	idx := make([]int, c)
	for i := range idx {
		idx[i] = i * 3
	}
	return m, idx
}

func TestWriteReadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, idx := testMatrix(1, 20, 5)
	v, err := st.WriteSnapshot(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first version = %d", v)
	}
	got, gotIdx, gotV, err := st.ReadSafe()
	if err != nil {
		t.Fatal(err)
	}
	if gotV != 1 {
		t.Fatalf("read version = %d", gotV)
	}
	if !got.EqualApprox(m, 0) {
		t.Fatal("matrix did not round trip")
	}
	for i := range idx {
		if gotIdx[i] != idx[i] {
			t.Fatalf("indices did not round trip: %v vs %v", gotIdx, idx)
		}
	}
}

func TestReadBeforeWriteIsNotExist(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = st.ReadSafe()
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("expected ErrNotExist, got %v", err)
	}
}

func TestVersionsIncrease(t *testing.T) {
	st, _ := Open(t.TempDir())
	m, idx := testMatrix(2, 4, 2)
	for want := int64(1); want <= 5; want++ {
		v, err := st.WriteSnapshot(m, idx)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("version = %d, want %d", v, want)
		}
	}
	if st.Version() != 5 || st.Writes() != 5 {
		t.Fatalf("Version=%d Writes=%d", st.Version(), st.Writes())
	}
}

func TestLatestSnapshotWins(t *testing.T) {
	st, _ := Open(t.TempDir())
	m1, idx1 := testMatrix(3, 6, 2)
	m2, idx2 := testMatrix(4, 6, 3)
	if _, err := st.WriteSnapshot(m1, idx1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteSnapshot(m2, idx2); err != nil {
		t.Fatal(err)
	}
	got, gotIdx, v, err := st.ReadSafe()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || got.Cols != 3 || len(gotIdx) != 3 {
		t.Fatalf("stale snapshot read: v=%d cols=%d", v, got.Cols)
	}
}

func TestIndexCountValidation(t *testing.T) {
	st, _ := Open(t.TempDir())
	m, _ := testMatrix(5, 4, 3)
	if _, err := st.WriteSnapshot(m, []int{1}); err == nil {
		t.Fatal("index/column mismatch accepted")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	m, idx := testMatrix(6, 8, 4)
	if _, err := st.WriteSnapshot(m, idx); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the safe file.
	path := st.safePath()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.ReadSafe(); err == nil {
		t.Fatal("corrupted snapshot passed checksum")
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	// The safety property of the triple-file protocol: under concurrent
	// publishing, a reader always sees a complete, checksum-valid
	// snapshot (never a torn file).
	st, _ := Open(t.TempDir())
	const writes = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			m, idx := testMatrix(uint64(i), 50, 1+i%7)
			if _, err := st.WriteSnapshot(m, idx); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var lastVersion int64
	reads := 0
	for lastVersion < writes {
		m, idx, v, err := st.ReadSafe()
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatalf("read %d: %v", reads, err)
		}
		if v < lastVersion {
			t.Fatalf("version went backwards: %d after %d", v, lastVersion)
		}
		if len(idx) != m.Cols {
			t.Fatal("inconsistent snapshot contents")
		}
		lastVersion = v
		reads++
	}
	wg.Wait()
	if reads == 0 {
		t.Fatal("no successful concurrent reads")
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	dir := t.TempDir() + "/nested/store"
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, idx := testMatrix(7, 3, 2)
	if _, err := st.WriteSnapshot(m, idx); err != nil {
		t.Fatal(err)
	}
	if st.Dir() != dir {
		t.Fatalf("Dir = %q", st.Dir())
	}
}

func TestReadSafeBadMagic(t *testing.T) {
	st, _ := Open(t.TempDir())
	if err := os.WriteFile(st.safePath(), []byte("GARBAGEGARBAGE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.ReadSafe(); err == nil {
		t.Fatal("garbage safe file accepted")
	}
}

func TestWriteSnapshotDirectoryRemoved(t *testing.T) {
	dir := t.TempDir() + "/gone"
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	m, idx := testMatrix(1, 3, 2)
	if _, err := st.WriteSnapshot(m, idx); err == nil {
		t.Fatal("write into removed directory succeeded")
	}
}
