package realtime

import (
	"context"
	"time"

	"esse/internal/core"
	"esse/internal/ocean"
	"esse/internal/rng"
	"esse/internal/workflow"
)

// deterministicForecast evolves the current error subspace through the
// quiet (noise-free) model by finite-difference tangent linearization —
// the DO-style alternative to the stochastic ensemble. It returns a
// workflow.Result-shaped summary so the rest of the cycle (assimilation,
// diagnostics) is agnostic to how the uncertainty was forecast.
func (s *System) deterministicForecast(ctx context.Context, centralZ []float64) (*workflow.Result, error) {
	start := time.Now()
	quiet := s.oceanCfg
	quiet.NoiseWind, quiet.NoiseTracer = 0, 0
	steps := s.Cfg.StepsPerCycle
	prop := func(ctx context.Context, initialZ []float64) ([]float64, error) {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		m := ocean.New(quiet, rng.New(1))
		m.SetState(s.scaler.FromScaled(nil, initialZ))
		m.Run(steps)
		return s.scaler.ToScaled(nil, m.State(nil)), nil
	}
	analysisZ := s.scaler.ToScaled(nil, s.analysis)
	mean, sub, err := core.PropagateSubspace(ctx, prop, analysisZ, s.subspace, 1.0, s.Cfg.Ensemble.Workers)
	if err != nil {
		return nil, err
	}
	return &workflow.Result{
		Subspace:    sub,
		Mean:        mean,
		Central:     centralZ,
		Converged:   true, // the propagation is exact for its own model
		Rho:         1,
		MembersUsed: s.subspace.Rank() + 1, // p mode runs + the central
		Elapsed:     time.Since(start),
	}, nil
}
