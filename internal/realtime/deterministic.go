package realtime

import (
	"context"
	"time"

	"esse/internal/core"
	"esse/internal/ocean"
	"esse/internal/workflow"
)

// quietStreamID keys the Split child handed to the noise-free model
// runs below. The quiet configuration never draws from its stream (all
// noise amplitudes are zero), but deriving it from the master seed —
// instead of an ad-hoc rng.New(1) — keeps every stream in the system
// attributable to Config.Seed.
const quietStreamID = 0xD0

// deterministicForecast evolves the current error subspace through the
// quiet (noise-free) model by finite-difference tangent linearization —
// the DO-style alternative to the stochastic ensemble. It returns a
// workflow.Result-shaped summary so the rest of the cycle (assimilation,
// diagnostics) is agnostic to how the uncertainty was forecast.
func (s *System) deterministicForecast(ctx context.Context, centralZ []float64) (*workflow.Result, error) {
	start := time.Now()
	quiet := s.oceanCfg
	quiet.NoiseWind, quiet.NoiseTracer = 0, 0
	steps := s.Cfg.StepsPerCycle
	prop := func(ctx context.Context, initialZ []float64) ([]float64, error) {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Split is a pure read of the parent, so concurrent prop calls
		// may each derive their own child here.
		m := ocean.New(quiet, s.seeds.Split(quietStreamID))
		m.SetState(s.scaler.FromScaled(nil, initialZ))
		m.Run(steps)
		return s.scaler.ToScaled(nil, m.State(nil)), nil
	}
	analysisZ := s.scaler.ToScaled(nil, s.analysis)
	mean, sub, err := core.PropagateSubspace(ctx, prop, analysisZ, s.subspace, 1.0, s.Cfg.Ensemble.Workers)
	if err != nil {
		return nil, err
	}
	return &workflow.Result{
		Subspace:    sub,
		Mean:        mean,
		Central:     centralZ,
		Converged:   true, // the propagation is exact for its own model
		Rho:         1,
		MembersUsed: s.subspace.Rank() + 1, // p mode runs + the central
		Elapsed:     time.Since(start),
	}, nil
}
