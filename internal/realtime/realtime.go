// Package realtime wires every substrate into the full real-time
// forecasting system of the paper: the stochastic ocean model, the
// AOSN-II-style observation network, the ESSE error subspace, the MTC
// ensemble workflow and the assimilation update, cycled over successive
// observation batches exactly as in the Fig. 1 timelines.
//
// The package implements a twin experiment (the standard substitute for
// the 2003 Monterey Bay campaign data): a "truth" ocean run generates
// synthetic observations; an independently initialized analysis is
// cycled through forecast → ensemble uncertainty prediction →
// assimilation. Forecast skill (RMSE against truth) and uncertainty maps
// (Figs. 5 and 6) come out of the same objects the real system would
// produce.
package realtime

import (
	"context"
	"fmt"
	"math"
	"time"

	"esse/internal/core"
	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/obs"
	"esse/internal/ocean"
	"esse/internal/rng"
	"esse/internal/telemetry"
	"esse/internal/trace"
	"esse/internal/workflow"
)

// Config parameterizes a twin experiment.
type Config struct {
	// NX, NY, NZ size the Monterey-Bay-like grid.
	NX, NY, NZ int
	// Cycles is the number of observation batches (T₀..T_k).
	Cycles int
	// StepsPerCycle is the number of model steps between batches.
	StepsPerCycle int
	// SnapshotCount and SnapshotStride build the initial error subspace
	// from a climatological run.
	SnapshotCount, SnapshotStride int
	// InitialRank truncates the initial subspace.
	InitialRank int
	// WhiteNoise is the truncation-error white noise added to each
	// perturbation (amplitude, model units).
	WhiteNoise float64
	// SubspaceInflation scales the climatological snapshot spread up to
	// realistic initial-condition error levels (snapshot spread from a
	// short free run underestimates true forecast error).
	SubspaceInflation float64
	// TruthPerturbation scales the initial-condition error injected into
	// the truth relative to the first guess, drawn from the error
	// subspace (so the twin experiment's true error statistics match the
	// prior ESSE assumes, as in the paper's error nowcast initialization).
	TruthPerturbation float64
	// Ensemble configures the MTC workflow per cycle.
	Ensemble workflow.Config
	// AdaptiveCasts, when positive, adds this many adaptively placed
	// full-depth virtual CTD casts per cycle, chosen by the greedy
	// expected-variance-reduction planner from the forecast subspace
	// (the Section 7 adaptive-sampling extension).
	AdaptiveCasts int
	// AdaptiveCastStd is the temperature error (degC) of adaptive casts.
	AdaptiveCastStd float64
	// Deterministic switches the per-cycle uncertainty forecast from the
	// stochastic MTC ensemble to the deterministic DO-style subspace
	// propagation (core.PropagateSubspace): p+1 quiet model runs instead
	// of an N-member ensemble. Model-noise growth is neglected — the
	// known limitation of the deterministic approach. Incompatible with
	// Smooth (no member anomalies exist).
	Deterministic bool
	// Smooth, when true, reanalyzes each cycle's starting state with
	// that cycle's observations through the ensemble cross-covariance
	// (the ESSE smoother, ref [16]); the result lands in
	// CycleResult.SmoothedStart.
	Smooth bool
	// WrapRunner, when non-nil, wraps each cycle's member runner — the
	// hook for the jobdir resume layer, instrumentation, or fault
	// injection. It receives the cycle number and the raw runner.
	WrapRunner func(cycle int, r workflow.MemberRunner) workflow.MemberRunner
	// Telemetry, when non-nil, instruments the cycle driver with
	// wall-clock phase spans, per-cycle lifecycle events and skill
	// gauges; NewSystem propagates it to Ensemble.Telemetry unless the
	// ensemble already carries its own bundle.
	Telemetry *telemetry.Telemetry
	// Seed drives all randomness (truth, noise, perturbations).
	Seed uint64
	// Serial switches the per-cycle ensemble to the Fig. 3 serial engine
	// (used by the serial-vs-parallel comparisons).
	Serial bool
}

// DefaultConfig returns a laptop-scale AOSN-II-like setup.
func DefaultConfig() Config {
	wf := workflow.DefaultConfig()
	wf.InitialSize = 16
	wf.MaxSize = 48
	wf.SVDBatch = 8
	wf.Workers = 8
	wf.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.90, MaxVarianceChange: 0.25}
	return Config{
		NX: 14, NY: 14, NZ: 4,
		Cycles:            3,
		StepsPerCycle:     25,
		SnapshotCount:     12,
		SnapshotStride:    8,
		InitialRank:       10,
		WhiteNoise:        0.002,
		SubspaceInflation: 4,
		TruthPerturbation: 1,
		AdaptiveCastStd:   0.05,
		Ensemble:          wf,
		Seed:              1,
	}
}

// CycleResult is the outcome of one forecast/assimilation cycle.
type CycleResult struct {
	Cycle int
	// RMSEForecastT / RMSEAnalysisT measure temperature skill against
	// truth before and after assimilation.
	RMSEForecastT, RMSEAnalysisT float64
	// Ensemble carries the workflow diagnostics.
	Ensemble *workflow.Result
	// InnovationNorm / ResidualNorm are the assimilation diagnostics.
	InnovationNorm, ResidualNorm float64
	// Observations is the batch size.
	Observations int
	// AdaptiveCasts lists the (i, j) locations of adaptively planned
	// casts used this cycle (empty when adaptive sampling is off).
	AdaptiveCasts [][2]int
	// SmoothedStart is the reanalyzed cycle-start state (physical
	// units), present only when Config.Smooth is set.
	SmoothedStart []float64
	// RMSEStartT / RMSESmoothedStartT compare the cycle-start analysis
	// and its smoothed reanalysis against the truth at cycle start
	// (temperature RMSE; only with Config.Smooth).
	RMSEStartT, RMSESmoothedStartT float64
}

// System is a running twin experiment.
type System struct {
	Cfg     Config
	Layout  *grid.StateLayout
	Network *obs.Network
	Tl      *trace.Timeline

	truth    *ocean.Model
	analysis []float64      // physical units
	subspace *core.Subspace // scaled (non-dimensional) space
	scaler   *core.Scaler
	scaled   *obs.ScaledNetwork

	oceanCfg ocean.Config
	seeds    *rng.Stream
	cycleNum int
	// clock is the simulated "ocean time" in seconds.
	clock float64
}

// NewSystem builds a twin experiment: truth model, observation network,
// and the initial error subspace estimated from climatological snapshots.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Cycles < 1 || cfg.StepsPerCycle < 1 {
		return nil, fmt.Errorf("realtime: need at least one cycle and one step")
	}
	if cfg.SnapshotCount < 2 {
		return nil, fmt.Errorf("realtime: need at least 2 snapshots for the initial subspace")
	}
	if cfg.Deterministic && cfg.Smooth {
		return nil, fmt.Errorf("realtime: Smooth requires ensemble anomalies; incompatible with Deterministic")
	}
	if cfg.Telemetry != nil && cfg.Ensemble.Telemetry == nil {
		cfg.Ensemble.Telemetry = cfg.Telemetry
	}
	g := grid.MontereyBay(cfg.NX, cfg.NY, cfg.NZ)
	oceanCfg := ocean.DefaultConfig(g)
	seeds := rng.New(cfg.Seed)

	truth := ocean.New(oceanCfg, seeds.Split(1))
	layout := truth.Layout

	network, err := obs.AOSN2Network(layout)
	if err != nil {
		return nil, fmt.Errorf("realtime: building network: %w", err)
	}
	scaler, err := core.NewScaler(layout, core.DefaultVarScales())
	if err != nil {
		return nil, fmt.Errorf("realtime: scaler: %w", err)
	}
	scaled, err := obs.NewScaled(network, scaler.Scale)
	if err != nil {
		return nil, fmt.Errorf("realtime: scaled network: %w", err)
	}

	// Initial subspace from climatological uncertainty: realizations of
	// the mesoscale state with jittered eddy/front parameters, advanced a
	// few steps each (seed stream differs from truth: we never peek at
	// the truth trajectory). Snapshots are non-dimensionalized before the
	// SVD, as the paper prescribes, so every variable can contribute to
	// the error subspace; the resulting modes concentrate along the eddy
	// rim and the upwelling front — the structures the paper's Figs. 5
	// and 6 map.
	snapSeeds := seeds.Split(2)
	snaps := linalg.NewDense(layout.Dim(), cfg.SnapshotCount)
	buf := make([]float64, layout.Dim())
	zbuf := make([]float64, layout.Dim())
	for j := 0; j < cfg.SnapshotCount; j++ {
		st := snapSeeds.Split(uint64(j))
		jcfg := oceanCfg
		jcfg.Climo = oceanCfg.Climo.Jitter(st)
		climo := ocean.New(jcfg, st.Split(1))
		climo.Run(cfg.SnapshotStride)
		climo.State(buf)
		scaler.ToScaled(zbuf, buf)
		snaps.SetCol(j, zbuf)
	}
	sub := core.SubspaceFromSnapshots(snaps, cfg.InitialRank)
	if cfg.SubspaceInflation > 0 {
		for i := range sub.Sigma {
			sub.Sigma[i] *= cfg.SubspaceInflation
		}
	}

	// Initial analysis: an independent model spin-up (a biased first
	// guess, as in real operations).
	first := ocean.New(oceanCfg, seeds.Split(3))
	first.Run(cfg.StepsPerCycle / 2)
	analysis := first.State(nil)

	// Inject a realistic initial-condition error into the truth, drawn
	// from the same error subspace the filter assumes: the twin-
	// experiment analog of the paper's posterior error nowcast.
	if cfg.TruthPerturbation > 0 {
		truthErrZ := sub.Perturb(nil, seeds.Split(4), cfg.WhiteNoise)
		truthErr := scaler.FromScaled(nil, truthErrZ)
		tState := truth.State(nil)
		for i := range tState {
			tState[i] = analysis[i] + cfg.TruthPerturbation*truthErr[i]
		}
		truth.SetState(tState)
	}
	// Let the truth decorrelate from the first guess before cycling.
	truth.Run(cfg.StepsPerCycle / 2)

	return &System{
		Cfg:      cfg,
		Layout:   layout,
		Network:  network,
		Tl:       trace.New(),
		truth:    truth,
		analysis: analysis,
		subspace: sub,
		scaler:   scaler,
		scaled:   scaled,
		oceanCfg: oceanCfg,
		seeds:    seeds,
	}, nil
}

// Subspace returns the current error subspace.
func (s *System) Subspace() *core.Subspace { return s.subspace }

// Analysis returns the current analysis state (not a copy).
func (s *System) Analysis() []float64 { return s.analysis }

// TruthState returns a copy of the current truth state.
func (s *System) TruthState() []float64 { return s.truth.State(nil) }

// runMember integrates one forecast from the given initial state with an
// independent noise stream.
func (s *System) runMember(initial []float64, noise *rng.Stream) []float64 {
	m := ocean.New(s.oceanCfg, noise)
	m.SetState(initial)
	m.Run(s.Cfg.StepsPerCycle)
	return m.State(nil)
}

// RunCycle executes one forecast + assimilation cycle: truth advances
// one observation period, the ESSE ensemble predicts the forecast
// uncertainty, observations of the truth are assimilated, and skill
// metrics are recorded.
func (s *System) RunCycle(ctx context.Context) (*CycleResult, error) {
	k := s.cycleNum
	s.cycleNum++
	cycleSeed := s.seeds.Split(uint64(1000 + k))

	tel := s.Cfg.Telemetry
	tel.Emit("cycle", k, 0, telemetry.PhaseRunning)
	// The cycle span is the root of this cycle's causal tree; every
	// phase below (and, through the engine's context, every member and
	// its perturb/forecast phases) parents back to it.
	ctx, cycleSpan := tel.SpanCtx(ctx, "realtime", "cycle", int64(k), 0)
	defer cycleSpan.End()
	cycleStart := time.Now()

	var truthAtStart []float64
	if s.Cfg.Smooth {
		truthAtStart = s.truth.State(nil)
	}
	startAnalysis := append([]float64(nil), s.analysis...)

	// --- observation time: the ocean evolves (Fig. 1 top row) ---
	obsStart := s.clock
	s.truth.Run(s.Cfg.StepsPerCycle)
	s.clock += float64(s.Cfg.StepsPerCycle) * s.oceanCfg.Dt
	s.Tl.Add(trace.ObservationTime, fmt.Sprintf("T%d", k), obsStart, s.clock)

	// --- forecaster time: the whole procedure below (middle row) ---
	forecasterStart := time.Now()

	// Central (unperturbed) forecast, in scaled space for the engine.
	_, spCentral := tel.SpanCtx(ctx, "realtime", "central-forecast", int64(k), -1)
	central := s.runMember(s.analysis, cycleSeed.Split(0))
	centralZ := s.scaler.ToScaled(nil, central)
	spCentral.End()

	// MTC ensemble: member i perturbs the analysis with the current
	// (scaled-space) subspace and integrates with its own stochastic
	// forcing; the engine sees non-dimensionalized forecast states so
	// the SVD weighs all variables fairly.
	sub := s.subspace
	analysis := s.analysis
	var cache *pertCache
	if s.Cfg.Smooth {
		cache = newPertCache()
	}
	runner := func(ctx context.Context, index int) ([]float64, error) {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// The engine delivers its member span through ctx; the perturb
		// and forecast phase spans parent under it and inherit its lane
		// (lane -1), so each worker row nests member → phases.
		_, spPert := tel.SpanCtx(ctx, "realtime", "perturb", int64(index), -1)
		st := cycleSeed.Split(uint64(index + 1))
		pertZ := sub.Perturb(nil, st, s.Cfg.WhiteNoise)
		if cache != nil {
			cache.put(index, pertZ)
		}
		pert := s.scaler.FromScaled(nil, pertZ)
		initial := make([]float64, len(analysis))
		for i := range initial {
			initial[i] = analysis[i] + pert[i]
		}
		spPert.End()
		_, spForecast := tel.SpanCtx(ctx, "realtime", "forecast", int64(index), -1)
		state := s.runMember(initial, st.Split(7))
		state = s.scaler.ToScaled(state, state)
		spForecast.End()
		return state, nil
	}

	if s.Cfg.WrapRunner != nil {
		runner = s.Cfg.WrapRunner(k, runner)
	}

	var ens *workflow.Result
	var err error
	ectx, spEnsemble := tel.SpanCtx(ctx, "realtime", "ensemble", int64(k), -1)
	switch {
	case s.Cfg.Deterministic:
		ens, err = s.deterministicForecast(ectx, centralZ)
	case s.Cfg.Serial:
		ens, err = workflow.RunSerial(ectx, s.Cfg.Ensemble, centralZ, runner)
	default:
		ens, err = workflow.RunParallel(ectx, s.Cfg.Ensemble, centralZ, runner)
	}
	spEnsemble.End()
	if err != nil {
		tel.Emit("cycle", k, 0, telemetry.PhaseFailed)
		return nil, fmt.Errorf("realtime: cycle %d ensemble: %w", k, err)
	}

	// Optionally target the largest predicted uncertainties with
	// adaptive casts before observing (Section 7 adaptive sampling).
	network, scaled := s.Network, s.scaled
	var castLocs [][2]int
	if s.Cfg.AdaptiveCasts > 0 {
		_, spAdaptive := tel.SpanCtx(ctx, "realtime", "adaptive-sampling", int64(k), -1)
		castStd := s.Cfg.AdaptiveCastStd
		if castStd <= 0 {
			castStd = 0.05
		}
		castLocs, err = s.PlanAdaptiveCasts(ens.Subspace, s.Cfg.AdaptiveCasts, castStd)
		if err != nil {
			spAdaptive.End()
			tel.Emit("cycle", k, 0, telemetry.PhaseFailed)
			return nil, fmt.Errorf("realtime: cycle %d adaptive planning: %w", k, err)
		}
		network, scaled, err = s.AugmentedNetwork(castLocs, castStd)
		if err != nil {
			spAdaptive.End()
			tel.Emit("cycle", k, 0, telemetry.PhaseFailed)
			return nil, fmt.Errorf("realtime: cycle %d adaptive network: %w", k, err)
		}
		spAdaptive.End()
	}

	// Observe the truth and assimilate in scaled space.
	_, spAssim := tel.SpanCtx(ctx, "realtime", "assimilate", int64(k), -1)
	y := network.Sample(s.truth.State(nil), cycleSeed.Split(999))
	yz := scaled.ScaleObs(y)
	an, err := core.Assimilate(ens.Mean, ens.Subspace, scaled, yz)
	spAssim.End()
	if err != nil {
		tel.Emit("cycle", k, 0, telemetry.PhaseFailed)
		return nil, fmt.Errorf("realtime: cycle %d assimilation: %w", k, err)
	}

	truthState := s.truth.State(nil)
	forecastMean := s.scaler.FromScaled(nil, ens.Mean)
	analysisMean := s.scaler.FromScaled(nil, an.Mean)
	res := &CycleResult{
		Cycle:          k,
		RMSEForecastT:  s.rmseT(forecastMean, truthState),
		RMSEAnalysisT:  s.rmseT(analysisMean, truthState),
		Ensemble:       ens,
		InnovationNorm: an.InnovationNorm,
		ResidualNorm:   an.ResidualNorm,
		Observations:   network.Len(),
		AdaptiveCasts:  castLocs,
	}

	if s.Cfg.Smooth {
		// Reanalyze the cycle-start state with this cycle's innovation
		// (base network only: the smoother shares the filter's H).
		_, spSmooth := tel.SpanCtx(ctx, "realtime", "smooth", int64(k), -1)
		innovZ := linalg.VecSub(s.scaled.ScaleObs(s.Network.Sample(s.truth.State(nil), cycleSeed.Split(998))),
			s.scaled.ApplyH(ens.Mean))
		smoothed, err := s.smoothStart(startAnalysis, cache, ens.Anomalies, ens.MemberIndices, innovZ)
		spSmooth.End()
		if err != nil {
			tel.Emit("cycle", k, 0, telemetry.PhaseFailed)
			return nil, fmt.Errorf("realtime: cycle %d smoothing: %w", k, err)
		}
		res.SmoothedStart = smoothed
		res.RMSEStartT = s.rmseT(startAnalysis, truthAtStart)
		res.RMSESmoothedStartT = s.rmseT(smoothed, truthAtStart)
	}

	s.analysis = analysisMean
	s.subspace = an.Posterior

	s.Tl.Add(trace.ForecasterTime, fmt.Sprintf("tau%d", k),
		obsStart, obsStart+time.Since(forecasterStart).Seconds())
	// Each member simulation covers the same stretch of ocean time.
	s.Tl.Add(trace.SimulationTime, fmt.Sprintf("sim%d", k), obsStart, s.clock)

	tel.Counter("esse_realtime_cycles_total", "Completed forecast/assimilation cycles.").Inc()
	tel.Histogram("esse_realtime_cycle_seconds", "Wall-clock duration of one full cycle.", nil).
		Observe(time.Since(cycleStart).Seconds())
	tel.Gauge("esse_realtime_rmse_temperature", "Temperature RMSE against truth for the last cycle.", "stage", "forecast").
		Set(res.RMSEForecastT)
	tel.Gauge("esse_realtime_rmse_temperature", "Temperature RMSE against truth for the last cycle.", "stage", "analysis").
		Set(res.RMSEAnalysisT)
	tel.Emit("cycle", k, 0, telemetry.PhaseDone)
	return res, nil
}

// rmseT computes temperature-field RMSE between two packed states.
func (s *System) rmseT(a, b []float64) float64 {
	ta := s.Layout.SliceByName(a, "T")
	tb := s.Layout.SliceByName(b, "T")
	sum := 0.0
	for i := range ta {
		d := ta[i] - tb[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ta)))
}

// Run executes all configured cycles.
func (s *System) Run(ctx context.Context) ([]*CycleResult, error) {
	var out []*CycleResult
	for k := 0; k < s.Cfg.Cycles; k++ {
		r, err := s.RunCycle(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// UncertaintyField returns the forecast standard deviation of variable
// name at vertical level k as an NX×NY field — the quantity mapped in
// the paper's Fig. 5 (SST, k=0) and Fig. 6 (30 m temperature).
func (s *System) UncertaintyField(name string, level int) ([]float64, error) {
	vi := s.Layout.VarIndex(name)
	if vi < 0 {
		return nil, fmt.Errorf("realtime: unknown variable %q", name)
	}
	if level < 0 || level >= s.Layout.Vars[vi].Levels {
		return nil, fmt.Errorf("realtime: level %d out of range", level)
	}
	// Variance is computed in scaled space; convert back to physical
	// units with the per-element scales.
	variance := s.subspace.VariancePointwise()
	for i := range variance {
		sc := s.scaler.At(i)
		variance[i] *= sc * sc
	}
	slab := s.Layout.Level(variance, vi, level)
	out := make([]float64, len(slab))
	for i, v := range slab {
		if v < 0 {
			v = 0
		}
		out[i] = math.Sqrt(v)
	}
	return out, nil
}

// LevelNearestDepth maps a depth in meters to the grid level index.
func (s *System) LevelNearestDepth(depth float64) int {
	return s.Layout.G.NearestLevel(depth)
}
