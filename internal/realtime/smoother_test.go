package realtime

import (
	"context"
	"testing"
)

func TestSmoothingReanalyzesCycleStart(t *testing.T) {
	cfg := tinyConfig()
	cfg.Smooth = true
	cfg.Cycles = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, r := range results {
		if r.SmoothedStart == nil {
			t.Fatalf("cycle %d missing smoothed state", r.Cycle)
		}
		if len(r.SmoothedStart) != sys.Layout.Dim() {
			t.Fatal("smoothed state has wrong dimension")
		}
		if r.RMSEStartT <= 0 {
			t.Fatal("missing start RMSE diagnostic")
		}
		if r.RMSESmoothedStartT < r.RMSEStartT {
			improved++
		}
	}
	if improved == 0 {
		t.Fatalf("smoothing never improved the cycle-start estimate: %+v",
			[]float64{results[0].RMSEStartT, results[0].RMSESmoothedStartT})
	}
}

func TestSmoothingOffByDefault(t *testing.T) {
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.SmoothedStart != nil || r.RMSEStartT != 0 {
		t.Fatal("smoothing artifacts present with Smooth=false")
	}
}

func TestSmoothingDoesNotChangeFilter(t *testing.T) {
	// The smoother is a diagnostic reanalysis: the forward filter
	// trajectory must be identical with and without it.
	run := func(smooth bool) []float64 {
		cfg := tinyConfig()
		cfg.Smooth = smooth
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, r := range results {
			out = append(out, r.RMSEForecastT, r.RMSEAnalysisT)
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("smoothing changed the forward filter: %v vs %v", a, b)
		}
	}
}
