package realtime

import (
	"fmt"

	"esse/internal/adaptive"
	"esse/internal/core"
	"esse/internal/obs"
)

// PlanAdaptiveCasts uses the current forecast error subspace (scaled
// space) to choose `casts` horizontal locations for additional full-depth
// virtual CTD casts — the adaptive-sampling loop the paper's Section 7
// points to: "To achieve optimal and adaptive sampling ... can be
// combined with our uncertainty estimations."
//
// Candidates are the surface temperature elements; selection is the
// sequential greedy expected-variance-reduction planner, so the chosen
// casts target the largest *remaining* uncertainties rather than k
// copies of the same hot spot.
func (s *System) PlanAdaptiveCasts(sub *core.Subspace, casts int, tStd float64) ([][2]int, error) {
	if casts <= 0 {
		return nil, fmt.Errorf("realtime: non-positive cast count %d", casts)
	}
	g := s.Layout.G
	tIdx := s.Layout.VarIndex("T")
	if tIdx < 0 {
		return nil, fmt.Errorf("realtime: layout lacks temperature")
	}
	var cands []adaptive.Candidate
	var locs [][2]int
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			off := s.Layout.Offset(tIdx, i, j, 0)
			cands = append(cands, adaptive.Candidate{
				Offset: off,
				Stddev: tStd / s.scaler.At(off), // scaled obs error
				Label:  fmt.Sprintf("cast(%d,%d)", i, j),
			})
			locs = append(locs, [2]int{i, j})
		}
	}
	plan, err := adaptive.Greedy(sub, cands, casts)
	if err != nil {
		return nil, err
	}
	out := make([][2]int, len(plan.Chosen))
	for k, ci := range plan.Chosen {
		out[k] = locs[ci]
	}
	return out, nil
}

// AugmentedNetwork returns a copy of the base observation network with
// full-depth T casts added at the given locations.
func (s *System) AugmentedNetwork(castLocs [][2]int, tStd float64) (*obs.Network, *obs.ScaledNetwork, error) {
	n := obs.NewNetwork(s.Layout)
	for _, o := range s.Network.Obs {
		if err := n.Add(o); err != nil {
			return nil, nil, err
		}
	}
	g := s.Layout.G
	for _, loc := range castLocs {
		for k := 0; k < g.NZ; k++ {
			if err := n.Add(obs.Observation{
				Platform: obs.CTD, Var: "T", I: loc[0], J: loc[1], K: k, Stddev: tStd,
			}); err != nil {
				return nil, nil, err
			}
		}
	}
	sn, err := obs.NewScaled(n, s.scaler.Scale)
	if err != nil {
		return nil, nil, err
	}
	return n, sn, nil
}
