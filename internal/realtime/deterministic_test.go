package realtime

import (
	"context"
	"testing"
)

func TestDeterministicForecastCycles(t *testing.T) {
	cfg := tinyConfig()
	cfg.Deterministic = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, r := range results {
		if r.Ensemble.Subspace == nil {
			t.Fatal("no propagated subspace")
		}
		if err := r.Ensemble.Subspace.Check(1e-6); err != nil {
			t.Fatal(err)
		}
		// p+1 model runs, not an N-member ensemble.
		if r.Ensemble.MembersUsed > cfg.Ensemble.InitialSize {
			t.Fatalf("deterministic mode used %d runs", r.Ensemble.MembersUsed)
		}
		if r.RMSEAnalysisT < r.RMSEForecastT {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("deterministic-mode assimilation never improved the forecast")
	}
}

func TestDeterministicRejectsSmoothing(t *testing.T) {
	cfg := tinyConfig()
	cfg.Deterministic = true
	cfg.Smooth = true
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("Deterministic+Smooth accepted")
	}
}

func TestDeterministicComparableToEnsemble(t *testing.T) {
	// Both methods must deliver usable analyses; the deterministic one
	// with far fewer model integrations.
	run := func(det bool) float64 {
		cfg := tinyConfig()
		cfg.Deterministic = det
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return results[len(results)-1].RMSEAnalysisT
	}
	ensErr := run(false)
	detErr := run(true)
	// The deterministic method neglects model noise; allow it to be
	// worse, but not catastrophically so.
	if detErr > 5*ensErr+0.05 {
		t.Fatalf("deterministic analysis error %v far above ensemble %v", detErr, ensErr)
	}
}
