package realtime

import (
	"context"
	"testing"
)

func TestAdaptiveCastsPlannedAndUsed(t *testing.T) {
	cfg := tinyConfig()
	cfg.AdaptiveCasts = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseObs := sys.Network.Len()
	r, err := sys.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AdaptiveCasts) != 3 {
		t.Fatalf("planned %d casts, want 3", len(r.AdaptiveCasts))
	}
	wantObs := baseObs + 3*cfg.NZ // full-depth T casts
	if r.Observations != wantObs {
		t.Fatalf("cycle used %d observations, want %d", r.Observations, wantObs)
	}
	// Distinct locations.
	seen := map[[2]int]bool{}
	for _, loc := range r.AdaptiveCasts {
		if seen[loc] {
			t.Fatalf("duplicate adaptive cast at %v", loc)
		}
		seen[loc] = true
		g := sys.Layout.G
		if !g.InBounds(loc[0], loc[1]) {
			t.Fatalf("cast outside grid: %v", loc)
		}
	}
}

func TestAdaptiveCastsHelpOrMatchStatic(t *testing.T) {
	// Same seed with and without adaptive casts: extra well-placed
	// observations must not hurt the analysis.
	run := func(casts int) float64 {
		cfg := tinyConfig()
		cfg.AdaptiveCasts = casts
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		results, err := sys.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			total += r.RMSEAnalysisT
		}
		return total
	}
	static := run(0)
	adapt := run(5)
	// Allow a small tolerance: the obs noise realizations differ.
	if adapt > static*1.15 {
		t.Fatalf("adaptive sampling hurt: %v vs %v", adapt, static)
	}
}

func TestPlanAdaptiveCastsValidation(t *testing.T) {
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PlanAdaptiveCasts(sys.Subspace(), 0, 0.05); err == nil {
		t.Fatal("zero casts accepted")
	}
}

func TestPlanAdaptiveCastsTargetsUncertainty(t *testing.T) {
	// The first planned cast must sit at (or adjacent to) the SST
	// uncertainty maximum.
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	locs, err := sys.PlanAdaptiveCasts(sys.Subspace(), 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sst, err := sys.UncertaintyField("T", 0)
	if err != nil {
		t.Fatal(err)
	}
	g := sys.Layout.G
	// Variance at the chosen point must be within the top decile.
	var vals []float64
	vals = append(vals, sst...)
	chosen := sst[g.Idx2(locs[0][0], locs[0][1])]
	higher := 0
	for _, v := range vals {
		if v > chosen {
			higher++
		}
	}
	if frac := float64(higher) / float64(len(vals)); frac > 0.1 {
		t.Fatalf("first cast at a point with %.0f%% of the field more uncertain", frac*100)
	}
}
