package realtime

import (
	"context"
	"testing"

	"esse/internal/core"
	"esse/internal/trace"
)

// tinyConfig returns a configuration small enough for unit tests.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = 10, 10, 3
	cfg.Cycles = 2
	cfg.StepsPerCycle = 10
	cfg.SnapshotCount = 8
	cfg.SnapshotStride = 5
	cfg.InitialRank = 6
	cfg.Ensemble.InitialSize = 8
	cfg.Ensemble.MaxSize = 12
	cfg.Ensemble.SVDBatch = 4
	cfg.Ensemble.Workers = 4
	cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.5, MaxVarianceChange: 0.9}
	return cfg
}

func TestNewSystemValidation(t *testing.T) {
	bad := tinyConfig()
	bad.Cycles = 0
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("zero cycles accepted")
	}
	bad2 := tinyConfig()
	bad2.SnapshotCount = 1
	if _, err := NewSystem(bad2); err == nil {
		t.Fatal("single snapshot accepted")
	}
}

func TestSystemInitialState(t *testing.T) {
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Subspace() == nil || sys.Subspace().Rank() < 1 {
		t.Fatal("no initial subspace")
	}
	if err := sys.Subspace().Check(1e-7); err != nil {
		t.Fatal(err)
	}
	if len(sys.Analysis()) != sys.Layout.Dim() {
		t.Fatal("analysis dimension mismatch")
	}
	if sys.Network.Len() == 0 {
		t.Fatal("empty observation network")
	}
}

func TestRunCycleProducesDiagnostics(t *testing.T) {
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle != 0 {
		t.Fatalf("cycle number = %d", res.Cycle)
	}
	if res.RMSEForecastT <= 0 {
		t.Fatal("forecast must differ from truth in a twin experiment")
	}
	if res.Ensemble == nil || res.Ensemble.MembersUsed < 2 {
		t.Fatal("ensemble did not run")
	}
	if res.ResidualNorm >= res.InnovationNorm {
		t.Fatalf("assimilation did not reduce the innovation: %v -> %v",
			res.InnovationNorm, res.ResidualNorm)
	}
	if res.Observations != sys.Network.Len() {
		t.Fatal("observation count mismatch")
	}
}

func TestAssimilationImprovesAnalysis(t *testing.T) {
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	results, err := sys.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.RMSEAnalysisT < r.RMSEForecastT {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("assimilation never improved temperature RMSE")
	}
}

func TestSubspaceEvolvesAcrossCycles(t *testing.T) {
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Subspace().Clone()
	if _, err := sys.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := sys.Subspace()
	if err := after.Check(1e-6); err != nil {
		t.Fatal(err)
	}
	// Posterior variance should not exceed the forecast ensemble's, and
	// the subspace should have actually changed from the initial one.
	rho := core.SimilarityCoefficient(before, after)
	if rho > 1-1e-12 && before.TotalVariance() == after.TotalVariance() {
		t.Fatal("subspace did not evolve over a cycle")
	}
}

func TestTimelineHasAllThreeRows(t *testing.T) {
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	spans := sys.Tl.Spans()
	kinds := map[trace.Kind]int{}
	for _, s := range spans {
		kinds[s.Kind]++
	}
	for _, k := range []trace.Kind{trace.ObservationTime, trace.ForecasterTime, trace.SimulationTime} {
		if kinds[k] != sys.Cfg.Cycles {
			t.Fatalf("kind %v has %d spans, want %d", k, kinds[k], sys.Cfg.Cycles)
		}
	}
}

func TestUncertaintyFields(t *testing.T) {
	sys, err := NewSystem(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	sst, err := sys.UncertaintyField("T", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sst) != sys.Cfg.NX*sys.Cfg.NY {
		t.Fatalf("SST uncertainty field has %d points", len(sst))
	}
	nonZero := 0
	for _, v := range sst {
		if v < 0 {
			t.Fatal("negative standard deviation")
		}
		if v > 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("uncertainty field identically zero")
	}
	deep, err := sys.UncertaintyField("T", sys.LevelNearestDepth(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(deep) != len(sst) {
		t.Fatal("level field size mismatch")
	}
	if _, err := sys.UncertaintyField("nope", 0); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := sys.UncertaintyField("T", 99); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestDeterministicTwinExperiment(t *testing.T) {
	// The scientific results (RMSE series) must be reproducible under a
	// fixed seed even though members run concurrently.
	run := func() []float64 {
		cfg := tinyConfig()
		cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 2} // fixed member count
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, r := range results {
			out = append(out, r.RMSEForecastT, r.RMSEAnalysisT)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("twin experiment not reproducible: %v vs %v", a, b)
		}
	}
}
