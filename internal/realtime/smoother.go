package realtime

import (
	"fmt"
	"sync"

	"esse/internal/core"
	"esse/internal/linalg"
)

// pertCache records, per member index, the initial (analysis-time)
// perturbation each member started from — the t₀ anomaly the ESSE
// smoother pairs with the member's forecast anomaly.
type pertCache struct {
	mu    sync.Mutex
	perts map[int][]float64
}

func newPertCache() *pertCache {
	return &pertCache{perts: make(map[int][]float64)}
}

func (c *pertCache) put(index int, pertZ []float64) {
	cp := make([]float64, len(pertZ))
	copy(cp, pertZ)
	c.mu.Lock()
	c.perts[index] = cp
	c.mu.Unlock()
}

func (c *pertCache) get(index int) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.perts[index]
	return p, ok
}

// SmoothStart reanalyzes the cycle's starting state (the previous
// analysis) with this cycle's observations — ESSE smoothing (paper
// ref. [16]): the member-aligned initial perturbations A₀ and forecast
// anomalies A₁ carry the cross-covariance that maps the later innovation
// back in time.
//
// It is invoked automatically by RunCycle when Config.Smooth is set; the
// result lands in CycleResult.SmoothedStart (physical units).
func (s *System) smoothStart(startAnalysis []float64, cache *pertCache,
	anoms1 *linalg.Dense, indices []int, innovationZ []float64) ([]float64, error) {
	dim := s.Layout.Dim()
	a0 := linalg.NewDense(dim, len(indices))
	for col, idx := range indices {
		pert, ok := cache.get(idx)
		if !ok {
			return nil, fmt.Errorf("realtime: member %d missing from perturbation cache", idx)
		}
		a0.SetCol(col, pert)
	}
	startZ := s.scaler.ToScaled(nil, startAnalysis)
	res, err := core.SmoothPrevious(startZ, a0, anoms1, s.scaled, innovationZ)
	if err != nil {
		return nil, err
	}
	return s.scaler.FromScaled(nil, res.Mean), nil
}
