// Package forensics reconstructs what a run actually did from its
// exported observability artifacts. The three telemetry endpoints —
// /trace (Chrome trace-event JSON), /events (lifecycle log) and
// /metrics (Prometheus exposition) — each tell part of the story;
// forensics merges them into one per-cycle Digest: phase timing
// breakdown, critical-path extraction, retry/cancel audit and
// orphan-span detection. It is the post-mortem counterpart of the live
// endpoints, the "check the error-code files after the run" workflow
// of the paper's Section 4.2 applied to traces instead of job
// directories.
package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"esse/internal/telemetry"
	"esse/internal/wire"
)

// chromeEvent is the decode-side view of one trace event.
// telemetry.ChromeEvent is encode-only (a hand-rolled renderer feeds
// /trace); forensics deliberately keeps its own unexported decode
// struct so the two directions can evolve independently and unknown
// fields from newer exporters are ignored rather than fatal.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	Pid  int64      `json:"pid"`
	Tid  int64      `json:"tid"`
	Args *spanIdent `json:"args"`
}

// spanIdent mirrors telemetry.SpanArgs on the decode side.
type spanIdent struct {
	TraceID    string `json:"trace_id"`
	SpanID     string `json:"span_id"`
	ParentSpan string `json:"parent_span_id"`
}

// Span is one reconstructed wall-clock span.
type Span struct {
	Name    string  // exported name, e.g. "member-3"
	Cat     string  // category, e.g. "workflow"
	TraceID string  // 32-hex trace identity
	SpanID  string  // 16-hex span identity
	Parent  string  // parent span id ("" on roots)
	Lane    int64   // exporter lane (tid)
	StartUS float64 // microseconds since tracer start
	DurUS   float64 // microseconds

	Children []*Span
}

// EndUS returns the span's end timestamp in microseconds.
func (s *Span) EndUS() float64 { return s.StartUS + s.DurUS }

// Base returns the span name with any trailing "-<id>" stripped:
// "member-17" groups as "member".
func (s *Span) Base() string { return baseName(s.Name) }

func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// Tree is the reconstructed span forest of one trace export.
type Tree struct {
	Roots   []*Span          // spans without a parent, by start time
	Orphans []*Span          // spans whose recorded parent never finished locally
	ByID    map[string]*Span // every wall-clock span by span id
}

// ParseTrace decodes a Chrome trace-event JSON body and rebuilds the
// span forest. Only wall-clock complete events that carry a span
// identity participate; flow events, paper-time Timeline rows and
// foreign events are skipped. A span whose parent_span_id does not
// resolve is kept — as a root for timing purposes — and also reported
// in Orphans, the causal-soundness failure the smoke gate checks for.
func ParseTrace(r io.Reader) (*Tree, error) {
	var raw []chromeEvent
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("forensics: decoding trace: %w", err)
	}
	tree := &Tree{ByID: make(map[string]*Span)}
	var spans []*Span
	for _, e := range raw {
		if e.Ph != "X" || e.Pid != 1 || e.Args == nil || e.Args.SpanID == "" {
			continue
		}
		// A trace with non-finite timestamps cannot be digested (and
		// could not be re-encoded); reject it rather than propagate.
		if err := wire.CheckFinite("ts", e.Ts); err != nil {
			return nil, fmt.Errorf("forensics: span %s: %w", e.Args.SpanID, err)
		}
		if err := wire.CheckFinite("dur", e.Dur); err != nil {
			return nil, fmt.Errorf("forensics: span %s: %w", e.Args.SpanID, err)
		}
		sp := &Span{
			Name:    e.Name,
			Cat:     e.Cat,
			TraceID: e.Args.TraceID,
			SpanID:  e.Args.SpanID,
			Parent:  e.Args.ParentSpan,
			Lane:    e.Tid,
			StartUS: e.Ts,
			DurUS:   e.Dur,
		}
		if prev, dup := tree.ByID[sp.SpanID]; dup {
			return nil, fmt.Errorf("forensics: duplicate span id %s (%s and %s)", sp.SpanID, prev.Name, sp.Name)
		}
		tree.ByID[sp.SpanID] = sp
		spans = append(spans, sp)
	}
	for _, sp := range spans {
		if sp.Parent == "" {
			tree.Roots = append(tree.Roots, sp)
			continue
		}
		parent, ok := tree.ByID[sp.Parent]
		if !ok {
			tree.Orphans = append(tree.Orphans, sp)
			tree.Roots = append(tree.Roots, sp)
			continue
		}
		parent.Children = append(parent.Children, sp)
	}
	byStart := func(list []*Span) {
		sort.Slice(list, func(a, b int) bool {
			//esselint:allow floatcmp exact comparison: equal starts must fall through to the span-id tiebreaker
			if list[a].StartUS != list[b].StartUS {
				return list[a].StartUS < list[b].StartUS
			}
			return list[a].SpanID < list[b].SpanID
		})
	}
	byStart(tree.Roots)
	byStart(tree.Orphans)
	for _, sp := range spans {
		byStart(sp.Children)
	}
	return tree, nil
}

// RootChain walks parent links from sp to its root. It returns the
// chain root and true when every hop resolved, or the last reachable
// ancestor and false when a parent id was missing (an orphaned chain).
func (t *Tree) RootChain(sp *Span) (*Span, bool) {
	seen := map[string]bool{}
	for sp.Parent != "" {
		if seen[sp.SpanID] {
			return sp, false // defensive: a cycle is as unsound as a hole
		}
		seen[sp.SpanID] = true
		parent, ok := t.ByID[sp.Parent]
		if !ok {
			return sp, false
		}
		sp = parent
	}
	return sp, true
}

// PhaseStat aggregates one kind of span ("workflow/member") inside a
// cycle subtree.
type PhaseStat struct {
	Cat     string  `json:"cat"`
	Name    string  `json:"name"` // base name, id suffix stripped
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// PathStep is one hop of a critical path.
type PathStep struct {
	Cat     string  `json:"cat"`
	Name    string  `json:"name"`
	SpanID  string  `json:"span_id"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// CycleDigest summarizes one root span's subtree — normally a
// realtime forecast cycle, but any causal root (an mtc-sim run, an
// acoustic climate pool) digests the same way.
type CycleDigest struct {
	Root         string      `json:"root"` // root span name, e.g. "cycle-0"
	Cat          string      `json:"cat"`
	SpanID       string      `json:"span_id"`
	StartMS      float64     `json:"start_ms"`
	DurMS        float64     `json:"dur_ms"`
	Spans        int         `json:"spans"`
	Members      int         `json:"members"`
	Phases       []PhaseStat `json:"phases"`
	CriticalPath []PathStep  `json:"critical_path"`
}

// RetryAudit counts lifecycle outcomes from the /events log.
type RetryAudit struct {
	Done       int   `json:"done"`
	Failed     int   `json:"failed"`
	Cancelled  int   `json:"cancelled"`
	Retried    int   `json:"retried"`
	MaxAttempt int   `json:"max_attempt"`
	Lost       int64 `json:"lost"` // events dropped to ring wraparound
}

// Digest is the merged post-run forensic summary.
type Digest struct {
	TraceID  string             `json:"trace_id"`
	Spans    int                `json:"spans"`
	Roots    int                `json:"roots"`
	Orphans  []string           `json:"orphans"` // span ids with unresolvable parents
	Warnings []string           `json:"warnings,omitempty"`
	Cycles   []CycleDigest      `json:"cycles"`
	Audit    RetryAudit         `json:"audit"`
	Counters map[string]float64 `json:"counters,omitempty"`
}

// BuildDigest merges the three artifact views. events and exp may be
// nil when only the trace was captured; tree must be non-nil.
func BuildDigest(tree *Tree, events *telemetry.EventsPage, exp *telemetry.Exposition) *Digest {
	d := &Digest{
		Spans:   len(tree.ByID),
		Roots:   len(tree.Roots),
		Orphans: []string{},
		Cycles:  []CycleDigest{},
	}
	for _, sp := range tree.Orphans {
		d.Orphans = append(d.Orphans, sp.SpanID)
	}
	traces := map[string]bool{}
	for _, sp := range tree.ByID {
		traces[sp.TraceID] = true
	}
	if len(tree.Roots) > 0 {
		d.TraceID = tree.Roots[0].TraceID
	}
	if len(traces) > 1 {
		d.Warnings = append(d.Warnings, fmt.Sprintf("trace mixes %d trace ids", len(traces)))
	}
	for _, root := range tree.Roots {
		d.Cycles = append(d.Cycles, digestCycle(root))
	}
	if events != nil {
		d.Audit = auditEvents(events)
		if d.Audit.Lost > 0 {
			d.Warnings = append(d.Warnings, fmt.Sprintf("event ring dropped %d events", d.Audit.Lost))
		}
	}
	if exp != nil {
		d.Counters = counterTotals(exp)
	}
	return d
}

func digestCycle(root *Span) CycleDigest {
	c := CycleDigest{
		Root:    root.Name,
		Cat:     root.Cat,
		SpanID:  root.SpanID,
		StartMS: root.StartUS / 1e3,
		DurMS:   root.DurUS / 1e3,
	}
	stats := map[string]*PhaseStat{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		c.Spans++
		key := sp.Cat + "/" + sp.Base()
		st, ok := stats[key]
		if !ok {
			st = &PhaseStat{Cat: sp.Cat, Name: sp.Base()}
			stats[key] = st
		}
		st.Count++
		ms := sp.DurUS / 1e3
		st.TotalMS += ms
		if ms > st.MaxMS {
			st.MaxMS = ms
		}
		if sp.Cat == "workflow" && sp.Base() == "member" {
			c.Members++
		}
		for _, ch := range sp.Children {
			walk(ch)
		}
	}
	walk(root)
	for _, st := range stats {
		c.Phases = append(c.Phases, *st)
	}
	sort.Slice(c.Phases, func(a, b int) bool {
		//esselint:allow floatcmp exact comparison: equal totals must fall through to the name tiebreaker
		if c.Phases[a].TotalMS != c.Phases[b].TotalMS {
			return c.Phases[a].TotalMS > c.Phases[b].TotalMS
		}
		return c.Phases[a].Cat+"/"+c.Phases[a].Name < c.Phases[b].Cat+"/"+c.Phases[b].Name
	})
	c.CriticalPath = criticalPath(root)
	return c
}

// criticalPath descends from root to the child whose end time is
// latest at every level — the chain that bounded the cycle's makespan,
// the trace analogue of the paper's slowest-member analysis.
func criticalPath(root *Span) []PathStep {
	var path []PathStep
	for sp := root; sp != nil; {
		path = append(path, PathStep{
			Cat:     sp.Cat,
			Name:    sp.Name,
			SpanID:  sp.SpanID,
			StartMS: sp.StartUS / 1e3,
			DurMS:   sp.DurUS / 1e3,
		})
		var next *Span
		for _, ch := range sp.Children {
			if next == nil || ch.EndUS() > next.EndUS() {
				next = ch
			}
		}
		sp = next
	}
	return path
}

func auditEvents(page *telemetry.EventsPage) RetryAudit {
	a := RetryAudit{Lost: page.Oldest}
	for _, e := range page.Events {
		switch e.Phase {
		case telemetry.PhaseDone:
			a.Done++
		case telemetry.PhaseFailed:
			a.Failed++
		case telemetry.PhaseCancelled:
			a.Cancelled++
		case telemetry.PhaseRetried:
			a.Retried++
		default:
			// Non-terminal stations (queued/dispatched/running) carry no
			// outcome; the audit counts how tasks ended, not how they ran.
		}
		if e.Attempt > a.MaxAttempt {
			a.MaxAttempt = e.Attempt
		}
	}
	return a
}

// counterTotals sums every counter family in the exposition — the
// headline numbers (tasks done, retries, bytes served) that belong in
// a digest without dragging the whole exposition along.
func counterTotals(exp *telemetry.Exposition) map[string]float64 {
	out := map[string]float64{}
	for _, f := range exp.Families {
		if f.Type != "counter" {
			continue
		}
		sum := 0.0
		for _, s := range f.Samples {
			sum += s.Value
		}
		out[f.Name] = sum
	}
	return out
}

// Validate checks every numeric field of the digest is finite — the
// same encode-path guard wire payloads use; json.Marshal fails on
// NaN/Inf, so WriteDigest runs this first to fail with a named field.
func (d *Digest) Validate() error {
	for _, c := range d.Cycles {
		if err := wire.CheckFinite("start_ms", c.StartMS); err != nil {
			return fmt.Errorf("forensics: cycle %s: %w", c.Root, err)
		}
		if err := wire.CheckFinite("dur_ms", c.DurMS); err != nil {
			return fmt.Errorf("forensics: cycle %s: %w", c.Root, err)
		}
		for _, p := range c.Phases {
			if err := wire.CheckFinite("total_ms", p.TotalMS); err != nil {
				return fmt.Errorf("forensics: phase %s/%s: %w", p.Cat, p.Name, err)
			}
			if err := wire.CheckFinite("max_ms", p.MaxMS); err != nil {
				return fmt.Errorf("forensics: phase %s/%s: %w", p.Cat, p.Name, err)
			}
		}
		for _, s := range c.CriticalPath {
			if err := wire.CheckFinite("start_ms", s.StartMS); err != nil {
				return fmt.Errorf("forensics: path step %s: %w", s.Name, err)
			}
			if err := wire.CheckFinite("dur_ms", s.DurMS); err != nil {
				return fmt.Errorf("forensics: path step %s: %w", s.Name, err)
			}
		}
	}
	return nil
}

// WriteDigest validates and writes the digest as indented JSON.
func WriteDigest(w io.Writer, d *Digest) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("forensics: encoding digest: %w", err)
	}
	return nil
}

// ParseDigest decodes a digest written by WriteDigest.
func ParseDigest(r io.Reader) (*Digest, error) {
	var d Digest
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("forensics: decoding digest: %w", err)
	}
	return &d, nil
}

// RenderText formats the digest as the human-readable report
// esse-report prints: one block per cycle with its phase table and
// critical path, then the audit and warnings.
func RenderText(d *Digest) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d spans, %d roots, %d orphans\n",
		d.TraceID, d.Spans, d.Roots, len(d.Orphans))
	for _, c := range d.Cycles {
		fmt.Fprintf(&b, "\n%s/%s (%d spans, %d members, %.1f ms)\n",
			c.Cat, c.Root, c.Spans, c.Members, c.DurMS)
		for _, p := range c.Phases {
			fmt.Fprintf(&b, "  %-28s x%-5d total %9.2f ms  max %9.2f ms\n",
				p.Cat+"/"+p.Name, p.Count, p.TotalMS, p.MaxMS)
		}
		b.WriteString("  critical path:")
		for i, s := range c.CriticalPath {
			if i > 0 {
				b.WriteString(" ->")
			}
			fmt.Fprintf(&b, " %s(%.1fms)", s.Name, s.DurMS)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\naudit: done %d, failed %d, cancelled %d, retried %d (max attempt %d)\n",
		d.Audit.Done, d.Audit.Failed, d.Audit.Cancelled, d.Audit.Retried, d.Audit.MaxAttempt)
	for _, w := range d.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	if len(d.Orphans) > 0 {
		fmt.Fprintf(&b, "orphan spans: %s\n", strings.Join(d.Orphans, " "))
	}
	return b.String()
}
