package forensics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"esse/internal/telemetry"
)

// buildTrace exports a small but realistic span tree through the real
// tracer: cycle -> {member-0 -> save-state, member-1} so the decode
// side is exercised against the genuine /trace encoding.
func buildTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	tr := telemetry.NewTracer()
	tr.SetTraceID(telemetry.DeriveTraceID(7))

	cycle := tr.StartChild(telemetry.SpanContext{}, "realtime", "cycle", 0, 0)
	time.Sleep(time.Millisecond)
	m0 := tr.StartChild(cycle.Context(), "workflow", "member", 0, 1)
	time.Sleep(time.Millisecond)
	save := tr.StartChild(m0.Context(), "jobdir", "save-state", 0, 1)
	save.End()
	m0.End()
	m1 := tr.StartChild(cycle.Context(), "workflow", "member", 1, 2)
	time.Sleep(2 * time.Millisecond)
	m1.End()
	cycle.End()

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tr.ChromeEvents()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return &buf
}

func TestParseTraceRebuildsTree(t *testing.T) {
	tree, err := ParseTrace(buildTrace(t))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree.Roots))
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphans = %v, want none", tree.Orphans)
	}
	root := tree.Roots[0]
	if root.Name != "cycle-0" || root.Cat != "realtime" {
		t.Fatalf("root = %s/%s, want realtime/cycle-0", root.Cat, root.Name)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	// Every span's parent chain must resolve back to the cycle root.
	for id, sp := range tree.ByID {
		chainRoot, ok := tree.RootChain(sp)
		if !ok || chainRoot != root {
			t.Errorf("span %s (%s) does not chain to root", id, sp.Name)
		}
		if sp.TraceID != root.TraceID {
			t.Errorf("span %s trace %s != root trace %s", id, sp.TraceID, root.TraceID)
		}
	}
	if got := tree.ByID[root.Children[0].SpanID].Base(); got != "member" {
		t.Errorf("Base() = %q, want member", got)
	}
}

func TestParseTraceDetectsOrphans(t *testing.T) {
	// A child pointing at a parent span that never finished locally.
	const body = `[
	 {"name":"member-0","cat":"workflow","ph":"X","ts":10,"dur":5,"pid":1,"tid":1,
	  "args":{"trace_id":"00000000000000010000000000000002","span_id":"0000000000000005","parent_span_id":"00000000000000ff"}}
	]`
	tree, err := ParseTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(tree.Orphans) != 1 || tree.Orphans[0].SpanID != "0000000000000005" {
		t.Fatalf("orphans = %v, want the one dangling span", tree.Orphans)
	}
	if _, ok := tree.RootChain(tree.Orphans[0]); ok {
		t.Fatal("RootChain resolved an orphaned chain")
	}
	d := BuildDigest(tree, nil, nil)
	if len(d.Orphans) != 1 {
		t.Fatalf("digest orphans = %v, want 1", d.Orphans)
	}
}

func TestParseTraceRejectsDuplicateSpanIDs(t *testing.T) {
	const body = `[
	 {"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":0,"args":{"trace_id":"t","span_id":"0000000000000001"}},
	 {"name":"b","ph":"X","ts":0,"dur":1,"pid":1,"tid":0,"args":{"trace_id":"t","span_id":"0000000000000001"}}
	]`
	if _, err := ParseTrace(strings.NewReader(body)); err == nil {
		t.Fatal("duplicate span ids accepted")
	}
}

func TestParseTraceSkipsNonSpanEvents(t *testing.T) {
	// Flow events, paper-time rows (pid 2) and argless events must not
	// become spans.
	const body = `[
	 {"name":"parent","cat":"flow","ph":"s","ts":1,"pid":1,"tid":0,"id":"x"},
	 {"name":"ocean","ph":"X","ts":0,"dur":9,"pid":2,"tid":0},
	 {"name":"bare","ph":"X","ts":0,"dur":9,"pid":1,"tid":0}
	]`
	tree, err := ParseTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(tree.ByID) != 0 {
		t.Fatalf("spans = %d, want 0", len(tree.ByID))
	}
}

func TestDigestPhasesAndCriticalPath(t *testing.T) {
	tree, err := ParseTrace(buildTrace(t))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	d := BuildDigest(tree, nil, nil)
	if len(d.Cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(d.Cycles))
	}
	c := d.Cycles[0]
	if c.Members != 2 {
		t.Errorf("members = %d, want 2", c.Members)
	}
	if c.Spans != 4 {
		t.Errorf("cycle spans = %d, want 4", c.Spans)
	}
	var member *PhaseStat
	for i := range c.Phases {
		if c.Phases[i].Name == "member" {
			member = &c.Phases[i]
		}
	}
	if member == nil || member.Count != 2 {
		t.Fatalf("member phase stat = %+v, want count 2", member)
	}
	if len(c.CriticalPath) < 2 {
		t.Fatalf("critical path = %v, want at least cycle->member", c.CriticalPath)
	}
	if c.CriticalPath[0].Name != "cycle-0" {
		t.Errorf("critical path starts at %s, want cycle-0", c.CriticalPath[0].Name)
	}
	// member-1 started after member-0 finished, so it bounds the cycle.
	if c.CriticalPath[1].Name != "member-1" {
		t.Errorf("critical path hop 1 = %s, want member-1", c.CriticalPath[1].Name)
	}
}

func TestDigestMergesEventsAndMetrics(t *testing.T) {
	tree, err := ParseTrace(buildTrace(t))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	page := &telemetry.EventsPage{
		Total:  5,
		Oldest: 1,
		Events: []telemetry.Event{
			{Task: "member", Index: 0, Phase: telemetry.PhaseRetried, Attempt: 1},
			{Task: "member", Index: 0, Phase: telemetry.PhaseDone, Attempt: 2},
			{Task: "member", Index: 1, Phase: telemetry.PhaseCancelled},
			{Task: "member", Index: 2, Phase: telemetry.PhaseFailed},
		},
	}
	exp, err := telemetry.ParsePrometheus(strings.NewReader(
		"# TYPE esse_member_retries_total counter\n" +
			"esse_member_retries_total 3\n" +
			"# TYPE esse_rt_cycle_seconds gauge\n" +
			"esse_rt_cycle_seconds 1.5\n"))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	d := BuildDigest(tree, page, exp)
	a := d.Audit
	if a.Done != 1 || a.Failed != 1 || a.Cancelled != 1 || a.Retried != 1 || a.MaxAttempt != 2 || a.Lost != 1 {
		t.Errorf("audit = %+v", a)
	}
	if d.Counters["esse_member_retries_total"] != 3 {
		t.Errorf("counters = %v, want retries 3", d.Counters)
	}
	if _, ok := d.Counters["esse_rt_cycle_seconds"]; ok {
		t.Error("gauge leaked into counter totals")
	}
	if len(d.Warnings) == 0 {
		t.Error("lost events produced no warning")
	}
}

func TestDigestRoundTrip(t *testing.T) {
	tree, err := ParseTrace(buildTrace(t))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	d := BuildDigest(tree, nil, nil)
	var buf bytes.Buffer
	if err := WriteDigest(&buf, d); err != nil {
		t.Fatalf("WriteDigest: %v", err)
	}
	back, err := ParseDigest(&buf)
	if err != nil {
		t.Fatalf("ParseDigest: %v", err)
	}
	if back.TraceID != d.TraceID || back.Spans != d.Spans || len(back.Cycles) != len(d.Cycles) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, d)
	}
	if back.Cycles[0].CriticalPath[0].SpanID != d.Cycles[0].CriticalPath[0].SpanID {
		t.Fatal("critical path lost in round trip")
	}
}

func TestRenderTextMentionsEverySection(t *testing.T) {
	tree, err := ParseTrace(buildTrace(t))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	out := RenderText(BuildDigest(tree, nil, nil))
	for _, want := range []string{"cycle-0", "workflow/member", "critical path:", "audit:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered digest missing %q:\n%s", want, out)
		}
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"member-17":   "member",
		"cycle-0":     "cycle",
		"svd":         "svd",
		"save-state":  "save-state",
		"tl-task-123": "tl-task",
		"x-":          "x-",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}
