package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustEnum (DESIGN §7 rule 19) treats a package-level const block of
// a named type — task phases, lease states, scheduler stages — as a
// closed enum: every value switch on that type, in any package of the
// set, must either cover every member or carry a default clause. The
// dispatcher's state machine must not be able to silently drop a state
// added later; a missing member is reported by name, so the fix is a
// one-line case (or an explicit default that states the policy).
//
// Membership is by constant VALUE, not name: aliased members (two
// names, one value) count as covered when either name appears, and a
// case listing multiple members covers each. Enum types are module
// types whose underlying kind is integer or string with at least two
// package-level constants of exactly that type; the members are read
// from the declaring package's scope, which works identically for
// source-checked and export-data packages, so a switch in cmd/ over an
// internal/ enum is checked against the full member set.
//
// Soundness gaps, stated plainly: type switches and switches with
// non-constant case expressions are skipped (the latter conservatively
// count as a default: a dynamic case may cover anything); a `switch
// {}` with boolean arms comparing the value is invisible; enums built
// by iota in multiple blocks are still one enum (membership is scope-
// wide, not block-wide), but a deliberately open-ended code list —
// HTTP statuses, say — will be treated as closed if it is module-local
// and typed; such switches should carry a default anyway.
var ExhaustEnum = &Analyzer{
	Name:  "exhaustenum",
	Doc:   "switches on module-local const enums must cover every member or carry a default",
	Scope: underInternalOrCmd,
	Run:   runExhaustEnum,
}

func runExhaustEnum(pass *Pass) error {
	// Module prefix: everything declared under it is "ours". For the
	// repo, Path = <module>/<RelPath>; for single-directory fixture
	// loads the two are equal and the prefix degenerates to the
	// package itself, which is exactly the fixture's universe.
	modPrefix := pass.Path
	if pass.RelPath != "." && strings.HasSuffix(pass.Path, "/"+pass.RelPath) {
		modPrefix = strings.TrimSuffix(pass.Path, "/"+pass.RelPath)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(pass, modPrefix, sw)
			return true
		})
	}
	return nil
}

func checkEnumSwitch(pass *Pass, modPrefix string, sw *ast.SwitchStmt) {
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if path != modPrefix && !strings.HasPrefix(path, modPrefix+"/") {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}
	members := enumMembers(obj.Pkg(), named)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the policy is stated
		}
		for _, e := range cc.List {
			etv, ok := pass.Info.Types[e]
			if !ok || etv.Value == nil {
				return // non-constant case may cover anything
			}
			covered[etv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Pos(), "switch on %s.%s covers %d of %d enum members and has no default; missing: %s — "+
		"add the cases or a default stating the policy, or a new member will be dropped silently",
		obj.Pkg().Name(), obj.Name(), len(members)-len(missing), len(members), strings.Join(missing, ", "))
}

type enumMember struct {
	name, val string
}

// enumMembers lists the package-level constants of exactly type named,
// deduplicated by value (the first name in sorted order speaks for an
// aliased value).
func enumMembers(pkg *types.Package, named *types.Named) []enumMember {
	scope := pkg.Scope()
	byVal := map[string]string{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		if prev, ok := byVal[v]; !ok || name < prev {
			byVal[v] = name
		}
	}
	out := make([]enumMember, 0, len(byVal))
	for v, n := range byVal {
		out = append(out, enumMember{name: n, val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
