package lint

import (
	"go/ast"
	"strings"
)

// forbiddenImports are the stochastic sources that defeat the fixed-
// master-seed reproducibility contract. math/rand's global state and
// crypto/rand's entropy pool both make ensemble results depend on
// something other than (seed, member index).
var forbiddenImports = map[string]string{
	"math/rand":    "use a seeded esse/internal/rng.Stream instead",
	"math/rand/v2": "use a seeded esse/internal/rng.Stream instead",
	"crypto/rand":  "entropy-seeded randomness breaks bit-reproducibility; use esse/internal/rng",
}

// RngDeterminism enforces the single-source-of-randomness rule: all
// stochastic code under internal/ and cmd/ draws from splittable
// esse/internal/rng streams, and no seed is ever derived from the wall
// clock. It is purely syntactic, so it also covers test files.
var RngDeterminism = &Analyzer{
	Name:  "rngdeterminism",
	Doc:   "forbid math/rand, math/rand/v2, crypto/rand and time.Now()-derived seeds; randomness must come from esse/internal/rng",
	Scope: underInternalOrCmd,
	Run:   runRngDeterminism,
}

func runRngDeterminism(pass *Pass) error {
	for _, f := range append(append([]*ast.File{}, pass.Files...), pass.TestFiles...) {
		checkRngFile(pass, f)
	}
	return nil
}

func checkRngFile(pass *Pass, f *ast.File) {
	timeName := ""
	rngName := ""
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		if why, bad := forbiddenImports[path]; bad {
			pass.Reportf(spec.Pos(), "import %q is forbidden: %s", path, why)
		}
		switch path {
		case "time":
			timeName = localImportName(spec, "time")
		case "esse/internal/rng":
			rngName = localImportName(spec, "rng")
		}
	}
	if timeName == "" || timeName == "_" {
		return // no wall clock in this file: nothing seed-related to check
	}

	isTimeNow := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == timeName
	}
	containsTimeNow := func(root ast.Node) ast.Node {
		var found ast.Node
		ast.Inspect(root, func(n ast.Node) bool {
			if found == nil && n != nil && isTimeNow(n) {
				found = n
			}
			return found == nil
		})
		return found
	}
	seedIdent := func(e ast.Expr) bool {
		switch v := e.(type) {
		case *ast.Ident:
			return strings.Contains(strings.ToLower(v.Name), "seed")
		case *ast.SelectorExpr:
			return strings.Contains(strings.ToLower(v.Sel.Name), "seed")
		}
		return false
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			// rng.New(...) / anything.Split(...) fed from the wall clock.
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				fromRng := rngName != "" && isIdentNamed(sel.X, rngName) && sel.Sel.Name == "New"
				if fromRng || sel.Sel.Name == "Split" {
					for _, arg := range v.Args {
						if now := containsTimeNow(arg); now != nil {
							pass.Reportf(now.Pos(), "time.Now()-derived seed defeats reproducibility; thread a fixed master seed through the config")
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if !seedIdent(lhs) || i >= len(v.Rhs) && len(v.Rhs) != 1 {
					continue
				}
				rhs := v.Rhs[0]
				if len(v.Rhs) > i {
					rhs = v.Rhs[i]
				}
				if now := containsTimeNow(rhs); now != nil {
					pass.Reportf(now.Pos(), "time.Now()-derived seed defeats reproducibility; thread a fixed master seed through the config")
				}
			}
		case *ast.KeyValueExpr:
			if seedIdent(v.Key) {
				if now := containsTimeNow(v.Value); now != nil {
					pass.Reportf(now.Pos(), "time.Now()-derived seed defeats reproducibility; thread a fixed master seed through the config")
				}
			}
		case *ast.ValueSpec:
			for i, name := range v.Names {
				if !seedIdent(name) || i >= len(v.Values) {
					continue
				}
				if now := containsTimeNow(v.Values[i]); now != nil {
					pass.Reportf(now.Pos(), "time.Now()-derived seed defeats reproducibility; thread a fixed master seed through the config")
				}
			}
		}
		return true
	})
}

// localImportName resolves the in-file name of an import.
func localImportName(spec *ast.ImportSpec, deflt string) string {
	if spec.Name != nil {
		return spec.Name.Name
	}
	return deflt
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
