package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose iteration order
// can become observable: Go randomizes map iteration per run, so any
// float accumulation, serialized output, task dispatch or unsorted
// slice produced in map order differs between runs — exactly the class
// of bug that breaks the repository's Workers=1-vs-8 bit-identity
// invariant (ensemble statistics must not depend on which goroutine,
// or which hash bucket, came first).
//
// Inside a map-range body the analyzer reports:
//
//   - compound float accumulation (`s += v`, `s = s + v`) into a
//     variable declared outside the loop — float addition does not
//     commute in rounding, so the sum depends on visit order;
//   - `append` to a slice declared outside the loop that is not passed
//     to a sort.*/slices.* call later in the enclosing block — the
//     collect-then-sort idiom is the approved fix and passes clean;
//   - channel sends and `go` statements — task-dispatch order becomes
//     map order;
//   - output calls, directly (fmt.Fprintf, Write/Encode methods,
//     binary.Write, hashes — anywhere call order becomes byte order)
//     or through a called function whose interprocedural effect
//     summary says it emits output, sends, or spawns (see summary.go).
//
// Per-entry mutation (`m[k] = f(v)`, copying into another map) and
// order-insensitive reductions guarded by deterministic tie-breaks
// (min/max with a key comparison) pass. Genuinely order-free sites can
// carry an audited //esselint:allow maporder directive.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order can reach float accumulation, serialized output, " +
		"task dispatch, or an unsorted slice (bit-reproducibility gate, interprocedural)",
	Scope: underInternalOrCmd,
	Run:   runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range FuncNodes(f) {
			body := funcBody(fn)
			if body == nil {
				continue
			}
			blocks := stmtBlocks(body)
			// One dedup set per function: nested map ranges would
			// otherwise report their shared sites twice.
			reported := map[token.Pos]bool{}
			walkOwnStmts(body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := exprType(pass.Info, rng.X).(*types.Map); isMap {
					checkMapRange(pass, rng, blocks, reported)
				}
				return true
			})
		}
	}
	return nil
}

// stmtBlocks indexes every statement list of a function body (blocks,
// case bodies, comm bodies), so the analyzer can see what follows a
// range statement in its enclosing list.
func stmtBlocks(body *ast.BlockStmt) map[ast.Stmt][]ast.Stmt {
	idx := map[ast.Stmt][]ast.Stmt{}
	record := func(list []ast.Stmt) {
		for _, s := range list {
			idx[s] = list
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			record(v.List)
		case *ast.CaseClause:
			record(v.Body)
		case *ast.CommClause:
			record(v.Body)
		}
		return true
	})
	return idx
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt, blocks map[ast.Stmt][]ast.Stmt, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	// declaredOutside reports whether the expression's root variable
	// outlives the loop body (so per-iteration state stays exempt).
	declaredOutside := func(e ast.Expr) (*ast.Ident, bool) {
		root := rootIdent(e)
		if root == nil {
			return nil, false
		}
		obj, ok := pass.Info.Uses[root].(*types.Var)
		if !ok {
			if obj, ok = pass.Info.Defs[root].(*types.Var); !ok {
				return nil, false
			}
		}
		return root, obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			report(v.Arrow, "channel send inside a map range dispatches in map-iteration order; "+
				"iterate sorted keys instead")
		case *ast.GoStmt:
			report(v.Go, "goroutine spawned inside a map range starts in map-iteration order; "+
				"iterate sorted keys instead")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, v, rng, blocks, declaredOutside, report)
		case *ast.CallExpr:
			if isOutputCall(pass.Info, v) {
				report(v.Pos(), "output written inside a map range serializes in map-iteration order; "+
					"iterate sorted keys instead")
			} else if pass.Prog != nil {
				if callee := StaticCallee(pass.Info, v); callee != nil {
					eff := pass.Prog.Effects[callee.FullName()]
					if eff&(EffEmitsOutput|EffSendsChan|EffSpawns) != 0 {
						report(v.Pos(), "call to %s inside a map range %s in map-iteration order; "+
							"iterate sorted keys instead", callee.Name(), effectVerb(eff))
					}
				}
			}
		}
		return true
	})
}

func effectVerb(eff Effects) string {
	switch {
	case eff&EffEmitsOutput != 0:
		return "emits output"
	case eff&EffSendsChan != 0:
		return "sends on a channel"
	default:
		return "spawns goroutines"
	}
}

// checkMapRangeAssign handles the two order-sensitive assignment
// shapes: float accumulation and un-sorted appends.
func checkMapRangeAssign(pass *Pass, as *ast.AssignStmt, rng *ast.RangeStmt,
	blocks map[ast.Stmt][]ast.Stmt,
	declaredOutside func(ast.Expr) (*ast.Ident, bool), report func(token.Pos, string, ...any)) {

	isFloat := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}

	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && isFloat(as.Lhs[0]) {
			if root, outside := declaredOutside(as.Lhs[0]); outside {
				report(as.TokPos, "float accumulation into %q in map-iteration order is not "+
					"bit-reproducible; iterate sorted keys instead", root.Name)
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			lhs := as.Lhs[i]
			// s = s + v (or s - v): accumulation spelled out long-hand.
			if bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok &&
				(bin.Op == token.ADD || bin.Op == token.SUB) && isFloat(lhs) {
				l := types.ExprString(ast.Unparen(lhs))
				if types.ExprString(ast.Unparen(bin.X)) == l || types.ExprString(ast.Unparen(bin.Y)) == l {
					if root, outside := declaredOutside(lhs); outside {
						report(as.TokPos, "float accumulation into %q in map-iteration order is not "+
							"bit-reproducible; iterate sorted keys instead", root.Name)
					}
				}
			}
			// s = append(s, ...): flag unless a sort of s follows the
			// range statement in its enclosing statement list.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				root, outside := declaredOutside(lhs)
				if !outside {
					continue
				}
				if !sortedAfter(pass, rng, blocks, root) {
					report(call.Pos(), "append to %q in map-iteration order without sorting it "+
						"afterwards; sort the slice (or collect-and-sort the keys first)", root.Name)
				}
			}
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// sortedAfter reports whether a sort.* or slices.* call whose
// arguments mention root's variable appears after rng in rng's
// enclosing statement list — the canonical collect-then-sort idiom.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, blocks map[ast.Stmt][]ast.Stmt, root *ast.Ident) bool {
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	list := blocks[ast.Stmt(rng)]
	after := false
	for _, s := range list {
		if s == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			callee := StaticCallee(pass.Info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if r := rootIdent(arg); r != nil && pass.Info.Uses[r] == obj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
