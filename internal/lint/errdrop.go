package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error returns in non-test code under
// internal/: bare calls whose results include an error (including defer
// and go statements) and errors assigned to the blank identifier. A
// small allowlist accepts callees that are documented never to fail
// (bytes.Buffer, strings.Builder) and best-effort stdout printing via
// fmt.Print*. Everything else needs handling or an explicit
// //esselint:allow errdrop directive with a reason.
//
// Test files are exempt by construction: the pass only type-checks
// non-test files, and errdrop inspects only those.
var ErrDrop = &Analyzer{
	Name:  "errdrop",
	Doc:   "flag discarded error returns (`_ =` and bare calls) in non-test code under internal/",
	Scope: underInternal,
	Run:   runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ExprStmt:
				checkBareCall(pass, v.X, "")
			case *ast.DeferStmt:
				checkBareCall(pass, v.Call, "deferred ")
			case *ast.GoStmt:
				checkBareCall(pass, v.Call, "goroutine ")
			case *ast.AssignStmt:
				checkBlankError(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkBareCall reports a call statement that silently discards an
// error result.
func checkBareCall(pass *Pass, x ast.Expr, kind string) {
	call, ok := x.(*ast.CallExpr)
	if !ok || !returnsError(pass, call) || allowlisted(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%scall discards its error result; handle it or annotate with //esselint:allow errdrop <reason>", kind)
}

// checkBlankError reports `_ = errExpr` and blank positions of
// multi-value assignments whose static type is error.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	blankAt := func(i int) bool {
		id, ok := as.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, _ := f() — look the tuple component up by position.
		tv, ok := pass.Info.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return
		}
		call, isCall := as.Rhs[0].(*ast.CallExpr)
		for i := 0; i < len(as.Lhs) && i < tuple.Len(); i++ {
			if blankAt(i) && isErrorType(tuple.At(i).Type()) {
				if isCall && allowlisted(pass, call) {
					continue
				}
				pass.Reportf(as.Lhs[i].Pos(), "error result assigned to blank identifier; handle it or annotate with //esselint:allow errdrop <reason>")
			}
		}
		return
	}
	for i := range as.Lhs {
		if i >= len(as.Rhs) || !blankAt(i) {
			continue
		}
		tv, ok := pass.Info.Types[as.Rhs[i]]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		if call, isCall := as.Rhs[i].(*ast.CallExpr); isCall && allowlisted(pass, call) {
			continue
		}
		pass.Reportf(as.Lhs[i].Pos(), "error result assigned to blank identifier; handle it or annotate with //esselint:allow errdrop <reason>")
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// allowlisted accepts callees that cannot meaningfully fail: methods on
// bytes.Buffer / strings.Builder (documented to never return an error),
// fmt.Print* (best-effort stdout), and fmt.Fprint* when the destination
// writer is itself a never-failing Buffer/Builder — the error result
// only relays the writer's.
func allowlisted(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := pass.Info.Selections[sel]; ok {
		return isSafeWriter(s.Recv())
	}
	// Package-level function: fmt.Print* / fmt.Fprint*-to-safe-writer.
	if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
		if obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
			return false
		}
		if strings.HasPrefix(obj.Name(), "Print") {
			return true
		}
		if strings.HasPrefix(obj.Name(), "Fprint") && len(call.Args) > 0 {
			if tv, ok := pass.Info.Types[call.Args[0]]; ok {
				return isSafeWriter(tv.Type)
			}
		}
	}
	return false
}

// isSafeWriter reports whether t is bytes.Buffer or strings.Builder
// (optionally behind a pointer), whose Write methods never fail.
func isSafeWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}
