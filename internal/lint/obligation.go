package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the generic obligation solver shared by the
// "prove a duty is discharged on every CFG path" analyzers: httpguard
// (response bodies closed), ctxflow (cancel funcs resolved) and resleak
// (files/tickers/timers released). Each analyzer supplies an ObSpec —
// how obligations are created, what discharges them, and when passing
// the obligated value onward transfers ownership — and the solver runs
// the shared forward dataflow: a may-analysis whose fact is the set of
// live obligations, met by union so an obligation resolved on only one
// branch stays live on the other.
//
// The shared semantics, extracted verbatim from the two original
// implementations:
//
//   - gen: an assignment whose single RHS call matches the spec's
//     acquisition table creates an obligation on the assigned variable,
//     optionally paired with the error variable assigned alongside it;
//   - discharge: the spec's release call (Body.Close, Close, Stop)
//     settles the obligation — either killing the fact or keeping it
//     live with Done set, so follow-on checks (httpguard's
//     status-before-read) continue to apply after a deferred release;
//   - ownership transfer: a bare mention of the obligated variable —
//     return, argument, assignment, composite literal — hands the
//     obligation onward, as does capture by a function literal; the
//     spec can veto per-argument transfer (resleak keeps the obligation
//     when the callee provably does not release its parameters);
//   - error-branch kills: on the arm where the paired error is non-nil
//     (or the value itself is nil) no resource exists, so the
//     obligation dies along that edge;
//   - reporting: obligations still live and undischarged at a return
//     statement or a fall-off-the-end exit leak; overwriting a live
//     undischarged obligation (the retry-loop leak) is reported at the
//     overwriting call.
//
// Soundness gaps, stated plainly: ownership transfer is syntactic —
// any bare mention blesses the path, so storing a handle in a struct
// both legs of an if discharges nothing yet silences the check;
// aliases created before the acquisition are invisible; obligations
// escaping through interface values (io.Closer) are treated as
// transferred at the conversion, not tracked to the eventual Close.

// ObInfo is the fact for one live obligation.
type ObInfo struct {
	// Pos is the acquisition call that created the obligation.
	Pos token.Pos
	// ErrVar is the error assigned alongside the value; the
	// `err != nil` branch kills the fact (nothing was acquired on it).
	ErrVar *types.Var
	// Release is the method name that discharges the obligation, for
	// specs whose table carries per-acquisition releasers ("" when the
	// spec hard-codes the discharge shape).
	Release string
	// Done records a discharge on every path into the current point
	// (AND at meets) for specs that keep the fact live after release.
	Done bool
	// Aux is a spec-defined per-path flag, AND-ed at meets (httpguard's
	// status-checked bit).
	Aux bool
}

// ObFact maps live obligated variables to their facts; nil is Top.
type ObFact map[*types.Var]ObInfo

func (f ObFact) clone() ObFact {
	m := make(ObFact, len(f))
	for k, v := range f {
		m[k] = v
	}
	return m
}

// ObGen is one obligation created by an acquisition site.
type ObGen struct {
	Var     *types.Var
	ErrVar  *types.Var
	Pos     token.Pos
	Release string
}

// ObReporter receives findings during the reporting replay. The solver
// deduplicates every hook by position, so specs report unconditionally.
type ObReporter struct {
	// Leak fires for each live undischarged obligation at a return or a
	// fall-off-the-end exit.
	Leak func(inf ObInfo)
	// Overwrite fires when a gen overwrites a live undischarged fact.
	Overwrite func(genPos token.Pos, prev ObInfo)
	// Custom is the spec's own channel (httpguard's early-read), fired
	// from OnSelector.
	Custom func(pos token.Pos, inf ObInfo)
}

// ObSpec defines one obligation discipline over the shared solver.
type ObSpec struct {
	Info *types.Info
	// Gen inspects an assignment whose single RHS is a call and returns
	// the obligations it creates. The assigned identifiers are excluded
	// from the transfer walk (they are overwritten, not read), and the
	// gens are applied after it.
	Gen func(as *ast.AssignStmt, call *ast.CallExpr) []ObGen
	// Discharge inspects a call; when it settles an obligation on a
	// tracked variable, return it with keepLive deciding whether the
	// fact stays live (Done=true) or dies. Return nil to decline; the
	// walk then descends into the call normally.
	Discharge func(call *ast.CallExpr, st ObFact) (v *types.Var, keepLive bool)
	// OnSelector, when non-nil, handles a selector rooted at a tracked
	// variable (the walk does not descend further, so the root is never
	// treated as a bare escape). When nil, the walk descends and the
	// root identifier gets ordinary bare-mention handling.
	OnSelector func(sel *ast.SelectorExpr, v *types.Var, st ObFact, rep *ObReporter)
	// TransferArg, when non-nil, decides whether passing v as a bare
	// call argument transfers the obligation to the callee. When nil,
	// every bare mention transfers.
	TransferArg func(call *ast.CallExpr, v *types.Var) bool
	// EdgeKills enables the nil-test branch kills (err non-nil / value
	// nil arms).
	EdgeKills bool

	// tracked counts the obligations genned during the reporting
	// replay, for the -stats obligation tally.
	tracked int
}

// obTrackedVar resolves e to a live obligated variable in st, or nil.
func obTrackedVar(info *types.Info, st ObFact, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, live := st[v]; !live {
		return nil
	}
	return v
}

// replay pushes one block node through the obligation fact map,
// reporting through rep when non-nil (the reporting pass; the transfer
// function replays with rep == nil).
func (s *ObSpec) replay(n ast.Node, st ObFact, rep *ObReporter) {
	// Gen detection first, so the assigned idents are excluded from the
	// transfer walk.
	var gens []ObGen
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && s.Gen != nil {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			gens = s.Gen(as, call)
		}
	}
	skip := map[*ast.Ident]bool{}
	if len(gens) > 0 {
		as := n.(*ast.AssignStmt)
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := identVar(s.Info, id)
			for _, g := range gens {
				if v != nil && (v == g.Var || v == g.ErrVar) {
					skip[id] = true
				}
			}
		}
	}
	// Per-argument transfer vetoes are syntactic (they depend on the
	// callee, not the fact state), so they precompute into the same
	// skip set: a vetoed bare-ident argument is read, not transferred.
	if s.TransferArg != nil {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				if v := identVar(s.Info, id); v != nil && !s.TransferArg(call, v) {
					skip[id] = true
				}
			}
			return true
		})
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			// Capture hands the obligation onward: the literal (a
			// deferred cleanup, a spawned reader) is now responsible.
			ast.Inspect(v, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if uv, ok := s.Info.Uses[id].(*types.Var); ok {
						delete(st, uv)
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if s.Discharge != nil {
				if dv, keep := s.Discharge(v, st); dv != nil {
					if keep {
						inf := st[dv]
						inf.Done = true
						st[dv] = inf
					} else {
						delete(st, dv)
					}
					return false
				}
			}
			return true
		case *ast.SelectorExpr:
			if s.OnSelector == nil {
				return true
			}
			rv := obTrackedVar(s.Info, st, v.X)
			if rv == nil {
				return true // keep walking: v.X may contain a deeper mention
			}
			s.OnSelector(v, rv, st, rep)
			return false // selector on a tracked var is never a bare escape
		case *ast.Ident:
			if skip[v] {
				return true
			}
			if uv, ok := s.Info.Uses[v].(*types.Var); ok {
				if _, live := st[uv]; live {
					delete(st, uv) // escaped whole: ownership handed onward
				}
			}
			return true
		}
		return true
	})

	for _, g := range gens {
		if g.Var == nil {
			continue
		}
		if rep != nil {
			s.tracked++
			if prev, live := st[g.Var]; live && !prev.Done && rep.Overwrite != nil {
				rep.Overwrite(g.Pos, prev)
			}
		}
		st[g.Var] = ObInfo{Pos: g.Pos, ErrVar: g.ErrVar, Release: g.Release}
	}
	if _, ok := n.(*ast.ReturnStmt); ok && rep != nil && rep.Leak != nil {
		for _, inf := range st {
			if !inf.Done {
				rep.Leak(inf)
			}
		}
	}
}

// identVar resolves an identifier to the variable it defines or uses.
func identVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// obFlow adapts an ObSpec to the shared forward solver.
type obFlow struct {
	spec *ObSpec
}

func (of *obFlow) Boundary() Fact { return ObFact{} }
func (of *obFlow) Top() Fact      { return ObFact(nil) }

func (of *obFlow) Transfer(b *Block, in Fact) Fact {
	st, _ := in.(ObFact)
	if st == nil {
		return ObFact(nil)
	}
	out := st.clone()
	for _, n := range b.Nodes {
		of.spec.replay(n, out, nil)
	}
	return out
}

// FlowEdge kills an obligation along the branch that proves nothing
// was acquired: for the paired error variable, the arm where it is (or
// may be) non-nil; for the obligated variable itself, the arm where it
// is nil. The two are mirror images of the same nil test.
func (of *obFlow) FlowEdge(e *Edge, out Fact) Fact {
	st, _ := out.(ObFact)
	if !of.spec.EdgeKills || st == nil || e.Cond == nil {
		return out
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	var idExpr, other ast.Expr = bin.X, bin.Y
	if isNilIdent(of.spec.Info, idExpr) {
		idExpr, other = other, idExpr
	}
	if !isNilIdent(of.spec.Info, other) {
		return out
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return out
	}
	v, ok := of.spec.Info.Uses[id].(*types.Var)
	if !ok {
		return out
	}
	// v != nil taken, or v == nil not taken → v is non-nil on e.
	nonNil := (bin.Op == token.NEQ && e.Branch) || (bin.Op == token.EQL && !e.Branch)
	var filtered ObFact
	for rv, inf := range st {
		// Error non-nil → nothing acquired; value nil → nothing to release.
		if (inf.ErrVar == v && nonNil) || (rv == v && !nonNil) {
			if filtered == nil {
				filtered = st.clone()
			}
			delete(filtered, rv)
		}
	}
	if filtered == nil {
		return out
	}
	return filtered
}

// Meet unions the live obligations; Done and Aux hold on the merged
// fact only if both arms established them, and the earliest acquisition
// position wins so reports are deterministic.
func (of *obFlow) Meet(a, b Fact) Fact {
	sa, _ := a.(ObFact)
	sb, _ := b.(ObFact)
	if sa == nil {
		return sb
	}
	if sb == nil {
		return sa
	}
	m := sa.clone()
	for k, v := range sb {
		if prev, ok := m[k]; ok {
			v.Aux = v.Aux && prev.Aux
			v.Done = v.Done && prev.Done
			if prev.Pos < v.Pos {
				v.Pos = prev.Pos
			}
		}
		m[k] = v
	}
	return m
}

func (of *obFlow) Equal(a, b Fact) bool {
	sa, _ := a.(ObFact)
	sb, _ := b.(ObFact)
	if (sa == nil) != (sb == nil) || len(sa) != len(sb) {
		return false
	}
	for k, v := range sa {
		w, ok := sb[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}

// CheckObligations solves spec over one function node and reports
// leaks, overwrites and spec-custom findings through rep, each
// deduplicated by position.
func CheckObligations(pass *Pass, fn ast.Node, spec *ObSpec, rep *ObReporter) {
	if funcBody(fn) == nil {
		return
	}
	cfg := BuildCFG(fn)
	res := Forward(cfg, &obFlow{spec: spec})

	flaggedLeak := map[token.Pos]bool{}
	flaggedOver := map[token.Pos]bool{}
	flaggedCustom := map[token.Pos]bool{}
	inner := &ObReporter{
		Leak: func(inf ObInfo) {
			if rep.Leak != nil && !flaggedLeak[inf.Pos] {
				flaggedLeak[inf.Pos] = true
				rep.Leak(inf)
			}
		},
		Overwrite: func(genPos token.Pos, prev ObInfo) {
			if rep.Overwrite != nil && !flaggedOver[genPos] {
				flaggedOver[genPos] = true
				rep.Overwrite(genPos, prev)
			}
		},
		Custom: func(pos token.Pos, inf ObInfo) {
			if rep.Custom != nil && !flaggedCustom[pos] {
				flaggedCustom[pos] = true
				rep.Custom(pos, inf)
			}
		},
	}
	for _, b := range cfg.Blocks {
		in, _ := res.In[b].(ObFact)
		if in == nil {
			continue
		}
		st := in.clone()
		for _, n := range b.Nodes {
			spec.replay(n, st, inner)
		}
	}
	if pass.Prog != nil {
		pass.Prog.Obligations += spec.tracked
	}
	// Fall-off-the-end paths: blocks feeding Exit whose last node is
	// neither a return nor a terminating call.
	for _, b := range fallOffExitBlocks(cfg) {
		out, _ := res.Out[b].(ObFact)
		if out == nil {
			continue
		}
		for _, inf := range out {
			if !inf.Done {
				inner.Leak(inf)
			}
		}
	}
}
