package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the package-set call graph the interprocedural
// layer (summary.go) computes its bottom-up summaries over. Nodes are
// the function declarations of the loaded packages; edges are the
// statically resolvable call sites — direct calls of package functions
// and method calls whose callee go/types can name. Calls through
// function values and interface methods have no edge (a documented
// soundness gap: their effects are invisible to the summaries).
//
// Functions are keyed by types.Func.FullName(), which is stable across
// the two views the loader produces of the same function: the
// source-checked object in its defining package and the export-data
// object an importing package sees. That makes cross-package edges
// line up without sharing types.Object identity.

// FuncInfo is one call-graph node: a function or method declaration in
// the loaded package set.
type FuncInfo struct {
	// Key is the canonical name, types.Func.FullName():
	// "esse/internal/linalg.Mul" or "(*esse/internal/linalg.Dense).At".
	Key string
	// Decl is the declaration; Decl.Body may be nil (external linkage).
	Decl *ast.FuncDecl
	Pkg  *Package
	Obj  *types.Func
	// Callees lists the keys of in-set functions this one may call,
	// sorted and deduplicated. Calls inside nested function literals
	// are attributed to this function: the literal may run (or be
	// spawned) under this function's dynamic extent.
	Callees []string
}

// CallGraph is the static call graph of one loaded package set.
type CallGraph struct {
	// Funcs maps canonical key → node.
	Funcs map[string]*FuncInfo
	// Keys holds the node keys in sorted order, so every iteration
	// over the graph is deterministic.
	Keys []string
	// SCCs lists the strongly connected components in bottom-up
	// (callee-first) order: by the time a component is visited, every
	// component it calls into has already been visited. Mutually
	// recursive functions share a component.
	SCCs [][]string
}

// BuildCallGraph indexes every function declaration in pkgs and
// resolves their static call edges.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: map[string]*FuncInfo{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Funcs[obj.FullName()] = &FuncInfo{
					Key:  obj.FullName(),
					Decl: fd,
					Pkg:  pkg,
					Obj:  obj,
				}
			}
		}
	}
	for key := range g.Funcs {
		g.Keys = append(g.Keys, key)
	}
	sort.Strings(g.Keys)
	for _, key := range g.Keys {
		fn := g.Funcs[key]
		fn.Callees = calleeKeys(g, fn)
	}
	g.SCCs = tarjanSCC(g)
	return g
}

// calleeKeys collects the sorted, deduplicated in-set callee keys of
// fn, including calls made inside nested function literals.
func calleeKeys(g *CallGraph, fn *FuncInfo) []string {
	if fn.Decl.Body == nil {
		return nil
	}
	seen := map[string]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := StaticCallee(fn.Pkg.Info, call); callee != nil {
			if _, inSet := g.Funcs[callee.FullName()]; inSet {
				seen[callee.FullName()] = true
			}
		}
		return true
	})
	if len(seen) == 0 {
		return nil
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// StaticCallee resolves the *types.Func a call statically dispatches
// to: a named function (possibly package-qualified) or a concrete
// method. Calls of function values, built-ins, conversions and
// interface methods return nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// An interface method has no body anywhere in the set; it
			// still resolves here, but its FullName never matches a
			// declared node, so the edge silently drops.
			return f
		}
	}
	return nil
}

// tarjanSCC computes the strongly connected components of g in
// emission order, which for Tarjan's algorithm is reverse topological:
// callees' components complete before their callers'. Roots and edge
// fan-out follow g.Keys / FuncInfo.Callees order, so the result is
// deterministic for a given package set.
func tarjanSCC(g *CallGraph) [][]string {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	states := map[string]*nodeState{}
	var stack []string
	var sccs [][]string
	next := 0

	// Iterative DFS: a frame tracks the node and how many callees have
	// been expanded, so deep call chains cannot overflow the goroutine
	// stack.
	type frame struct {
		key string
		ci  int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{key: root}}
		st := &nodeState{index: next, lowlink: next}
		next++
		states[root] = st
		stack = append(stack, root)
		st.onStack = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			fst := states[f.key]
			callees := g.Funcs[f.key].Callees
			if f.ci < len(callees) {
				c := callees[f.ci]
				f.ci++
				cst, seen := states[c]
				if !seen {
					cst = &nodeState{index: next, lowlink: next}
					next++
					states[c] = cst
					stack = append(stack, c)
					cst.onStack = true
					frames = append(frames, frame{key: c})
				} else if cst.onStack {
					if cst.index < fst.lowlink {
						fst.lowlink = cst.index
					}
				}
				continue
			}
			// All callees expanded: close the frame.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				pst := states[frames[len(frames)-1].key]
				if fst.lowlink < pst.lowlink {
					pst.lowlink = fst.lowlink
				}
			}
			if fst.lowlink == fst.index {
				var scc []string
				for {
					k := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					states[k].onStack = false
					scc = append(scc, k)
					if k == f.key {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, key := range g.Keys {
		if _, seen := states[key]; !seen {
			visit(key)
		}
	}
	return sccs
}
