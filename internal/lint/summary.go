package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// This file computes the per-function summaries the interprocedural
// analyzers consume, bottom-up over the call graph's strongly
// connected components:
//
//   - effect summaries: may the function block on a channel or a
//     wait, spawn goroutines, range over a map, send on a channel, or
//     emit serialized output — each a single monotone bit, OR-joined
//     from the function's own syntax and its callees' summaries
//     (ascending fixpoint within an SCC);
//   - lock summaries: the canonical keys of the mutexes a function may
//     acquire, transitively (set union, ascending fixpoint);
//   - numeric summaries: per-result sign masks in the divguard lattice
//     (nonzero / non-negative / non-positive), computed by re-running
//     the divguard dataflow over the callee body with the trust
//     boundary *disabled* — a summary must hold for every caller — in
//     two scenarios: parameters unknown (Base) and all float
//     parameters assumed positive (AllPos). Recursive components
//     iterate from the optimistic all-bits element down to a greatest
//     fixpoint, so facts survive mutual recursion; the claim is
//     divergence-insensitive (a non-terminating path proves anything
//     vacuously), which is the standard partial-correctness reading.
//
// Known soundness gaps, by design: calls through function values and
// interface methods contribute no edges (their effects and results are
// invisible); functions without bodies in the set (assembly, external)
// summarize as effect-free with unknown results.

// Effects is the may-effect bitmask of one function.
type Effects uint16

const (
	// EffMayBlock: may block indefinitely on a channel operation, a
	// select with no default, a sync.WaitGroup.Wait, or a time.Sleep.
	// Acquiring a mutex is deliberately excluded: nested acquisition
	// is the lock-order analyzer's job, with better precision.
	EffMayBlock Effects = 1 << iota
	// EffSpawns: may start a goroutine.
	EffSpawns
	// EffRangesMap: may range over a map.
	EffRangesMap
	// EffSendsChan: may send on a channel (task dispatch).
	EffSendsChan
	// EffEmitsOutput: may write to a stream, writer, hash or encoder —
	// anything where call order becomes observable byte order.
	EffEmitsOutput
	// EffAllocates: may perform heap allocation on an ordinary call —
	// make/new, slice or map composite literals, &T{} pointer literals,
	// string concatenation, or the creation of a capturing closure.
	// Allocation under a lazy-init guard (`if buf == nil`, `if cap(buf)
	// < n`) is amortized and deliberately excluded, as are goroutine
	// bodies (a per-call spawn is EffSpawns' cost to report). hotalloc
	// consumes this bit at loop-borne call sites.
	EffAllocates
	// EffReleases: may release a resource handed in by the caller — a
	// Close or Stop call on an expression rooted at a parameter or the
	// receiver. resleak consumes it at call sites: passing a tracked
	// handle to an EffReleases callee transfers the release obligation,
	// passing it to any other in-set callee does not. The bit ORs
	// through the fixpoint like the others, which is coarse in one
	// known way: a caller inherits it even when the releasing callee
	// only ever receives the caller's own locals — that can only hide a
	// leak (a missed report), never invent one.
	EffReleases
	// EffNetwork: may perform network I/O — a net Dial/Listen/Lookup, an
	// http.Client/Transport request, or the package-level http sugar —
	// directly or through any in-set callee. retrybudget keys on it: a
	// loop around a network effect is a retry loop and owes a budget.
	EffNetwork
)

// NumSummary is the numeric summary of one function's results.
type NumSummary struct {
	// NumParams is the flattened parameter count; Variadic marks a
	// trailing ...T. FloatParams indexes the float-typed parameters.
	NumParams   int
	Variadic    bool
	FloatParams []int
	// Base[i] is the proven sign mask of result i with nothing assumed
	// about the arguments; AllPos[i] assumes every float argument is
	// provably positive at the call site.
	Base, AllPos []uint8
}

// LockPair records one acquisition order observed somewhere in the
// package set: After was acquired (directly or through a call) while
// Before was held.
type LockPair struct {
	Before, After string
	Pos           token.Position
	PkgPath       string
	// Via names the called function the acquisition happened through,
	// or "" for a direct Lock call at Pos.
	Via string
}

// Program bundles the package set with its call graph and summaries;
// RunAnalyzers builds one per run and hands it to every Pass.
type Program struct {
	Graph *CallGraph
	// Effects, Locks and Numeric are keyed like Graph.Funcs.
	Effects map[string]Effects
	Locks   map[string][]string
	Numeric map[string]*NumSummary
	// LockPairs lists every observed acquisition order, sorted by
	// position. lockheld cross-references them for inversions.
	LockPairs []LockPair
	// CtxParam maps a function key to the index of its first
	// context.Context parameter; functions without one are absent.
	// ctxflow reads it to decide whether a callee can carry a context.
	CtxParam map[string]int
	// AtomicKeys holds the canonical key of every word accessed through
	// a function-style sync/atomic call anywhere in the set, with the
	// first observed position. atomicmix's "atomic anywhere means atomic
	// everywhere" domain; see concurrency.go.
	AtomicKeys map[string]token.Position
	// EntryHeld maps a function key to the locks held on every observed
	// static path into it (empty/absent = none provable). sharedguard
	// reads it so xxxLocked helpers inherit their callers' guards.
	EntryHeld map[string][]string
	// WireTypes maps the canonical "pkgpath.Name" key of every named
	// type that reaches an encoding/json sink anywhere in the set —
	// closed over the call graph and the type structure — to its sink
	// sites. FiniteFields holds the "pkgpath.Type.Field" keys of float
	// struct fields with a finite (IsNaN/IsInf) check somewhere in the
	// tree. jsonwire consumes both; see wirefacts.go.
	WireTypes    map[string]*WireFact
	FiniteFields map[string]bool
	// FSMTables maps the canonical "pkgpath.TypeName" key of every
	// module-local lifecycle enum carrying an //esselint:fsm directive
	// (or an adjacent transitions map var) to its declared transition
	// table. statefsm consumes it; see fsmfacts.go.
	FSMTables map[string]*FSMTable
	// Units is the //esselint:unit fact table (field, object and
	// function annotations plus malformed-directive problems); unitdim
	// consumes it. DimSummaries maps a function key to its symbolic
	// shape summary — result shapes and conformance requirements as
	// terms over the parameters; shapecheck consumes it. See dimfacts.go
	// and shapecheck.go.
	Units        *UnitTable
	DimSummaries map[string]*DimSummary
	// Obligations counts the facts the obligation solver tracked over
	// the run (httpguard responses, ctxflow cancels, resleak handles);
	// surfaced by -stats. The analyzer loop is sequential, so a plain
	// int is safe.
	Obligations int

	// labelTakers caches metriclabels' label-taking function set
	// (seed signatures plus wrapper propagation); see metriclabels.go.
	labelTakers map[string]bool
	labelOnce   sync.Once

	// kvTakers caches slogkv's kv-taking function set (seed signatures
	// plus wrapper propagation); see slogkv.go.
	kvTakers map[string]bool
	kvOnce   sync.Once

	// spawnReach caches the set of functions reachable from a goroutine
	// (spawn roots plus transitive callees); see concurrency.go.
	spawnReach map[string]bool
	spawnOnce  sync.Once

	// sgFindings caches sharedguard's program-wide findings; each pass
	// reports the subset belonging to its package (see sharedguard.go).
	sgFindings []sgFinding
	sgOnce     sync.Once
}

// BuildProgram computes the call graph and all summaries for pkgs.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Graph:   BuildCallGraph(pkgs),
		Effects: map[string]Effects{},
		Locks:   map[string][]string{},
		Numeric: map[string]*NumSummary{},
	}
	p.computeEffects()
	p.computeNumeric()
	p.LockPairs = collectLockPairs(p)
	p.computeCtxParams()
	p.computeAtomicKeys()
	p.computeEntryHeld()
	loaded := map[string]bool{}
	for _, pkg := range pkgs {
		loaded[pkg.Path] = true
	}
	p.computeWireTypes(loaded)
	p.computeFiniteFields(loaded)
	p.computeFSMTables(pkgs)
	p.computeUnitTable(pkgs)
	p.computeDimSummaries()
	return p
}

// FuncEffects returns the transitive effect summary of the statically
// resolved callee of call, or 0 when the callee is unknown.
func (p *Program) FuncEffects(info *types.Info, call *ast.CallExpr) Effects {
	if fn := StaticCallee(info, call); fn != nil {
		return p.Effects[fn.FullName()]
	}
	return 0
}

// --- effect summaries ------------------------------------------------------

func (p *Program) computeEffects() {
	direct := map[string]Effects{}
	directLocks := map[string]map[string]bool{}
	unguarded := map[string]map[string]bool{}
	for _, key := range p.Graph.Keys {
		fn := p.Graph.Funcs[key]
		direct[key], directLocks[key] = directEffects(fn)
		unguarded[key] = unguardedCallees(fn)
	}
	// Bottom-up over SCCs; within a component, iterate the OR/union
	// system to its (ascending) fixpoint.
	for _, scc := range p.Graph.SCCs {
		for changed := true; changed; {
			changed = false
			for _, key := range scc {
				eff := direct[key]
				locks := directLocks[key]
				for _, callee := range p.Graph.Funcs[key].Callees {
					ceff := p.Effects[callee]
					// Allocation amortized behind a lazy-init guard at
					// every call site is not the caller's per-call cost.
					if !unguarded[key][callee] {
						ceff &^= EffAllocates
					}
					eff |= ceff
					for _, lk := range p.Locks[callee] {
						if !locks[lk] {
							locks[lk] = true
						}
					}
				}
				if eff != p.Effects[key] || len(locks) != len(p.Locks[key]) {
					changed = true
				}
				p.Effects[key] = eff
				p.Locks[key] = sortedKeys(locks)
			}
		}
	}
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// directEffects scans one function body — nested literals included,
// since they execute (or are spawned) under the function's dynamic
// extent — for the syntactic effect sources and direct lock
// acquisitions.
func directEffects(fn *FuncInfo) (Effects, map[string]bool) {
	locks := map[string]bool{}
	if fn.Decl.Body == nil {
		return 0, locks
	}
	info := fn.Pkg.Info
	var eff Effects
	if allocatesDirectly(info, fn.Decl.Body) {
		eff |= EffAllocates
	}
	owned := ownedVars(fn)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			eff |= EffSendsChan | EffMayBlock
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				eff |= EffMayBlock
			}
		case *ast.RangeStmt:
			switch exprType(info, v.X).(type) {
			case *types.Map:
				eff |= EffRangesMap
			case *types.Chan:
				eff |= EffMayBlock
			}
		case *ast.SelectStmt:
			if !selectHasDefault(v) {
				eff |= EffMayBlock
			}
		case *ast.GoStmt:
			eff |= EffSpawns
		case *ast.CallExpr:
			if isBlockingStdCall(info, v) {
				eff |= EffMayBlock
			}
			if isOutputCall(info, v) {
				eff |= EffEmitsOutput
			}
			if isNetworkCall(info, v) {
				eff |= EffNetwork
			}
			if releasesOwned(info, v, owned) {
				eff |= EffReleases
			}
			if key, kind := lockAcquire(fn, v); kind != lockNone {
				locks[key] = true
			}
		}
		return true
	})
	return eff, locks
}

// ownedVars collects the parameter and receiver variables of fn — the
// values a caller hands it, whose release would discharge the caller's
// obligation.
func ownedVars(fn *FuncInfo) map[*types.Var]bool {
	owned := map[*types.Var]bool{}
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return owned
	}
	if r := sig.Recv(); r != nil {
		owned[r] = true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		owned[sig.Params().At(i)] = true
	}
	return owned
}

// releasesOwned reports whether call is a Close or Stop method call on
// an expression rooted at one of fn's parameters or its receiver — the
// direct source of the EffReleases bit.
func releasesOwned(info *types.Info, call *ast.CallExpr, owned map[*types.Var]bool) bool {
	if len(owned) == 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Stop") {
		return false
	}
	root := rootIdent(ast.Unparen(sel.X))
	if root == nil {
		return false
	}
	v, ok := info.Uses[root].(*types.Var)
	return ok && owned[v]
}

// networkFuncs lists the package-level standard-library functions that
// perform network I/O; networkMethods the method names per receiver
// type. Parsing-only neighbours (net/url, http.StatusText) stay out:
// the bit means "talks to the wire", not "mentions HTTP".
var networkFuncs = map[string]map[string]bool{
	"net": {"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true,
		"LookupHost": true, "LookupAddr": true, "LookupIP": true, "LookupCNAME": true},
	"net/http": {"Get": true, "Post": true, "PostForm": true, "Head": true,
		"ListenAndServe": true, "ListenAndServeTLS": true},
}

var networkMethods = map[string]map[string]bool{
	"Client":    {"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true},
	"Transport": {"RoundTrip": true},
	"Server":    {"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true},
	"Dialer":    {"Dial": true, "DialContext": true},
	"Resolver":  {"LookupHost": true, "LookupAddr": true, "LookupIP": true},
}

// isNetworkCall reports whether the call statically resolves to a
// standard-library network operation — the direct source of the
// EffNetwork bit (in-set callees contribute through the fixpoint).
func isNetworkCall(info *types.Info, call *ast.CallExpr) bool {
	obj := StaticCallee(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path != "net" && path != "net/http" {
		return false
	}
	if recv := recvNamed(obj); recv != "" {
		names := networkMethods[recv]
		return names != nil && names[obj.Name()]
	}
	names := networkFuncs[path]
	return names != nil && names[obj.Name()]
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isBlockingStdCall recognizes the standard-library calls that block
// indefinitely (or for a programmed duration): sync.WaitGroup.Wait and
// time.Sleep. sync.Cond.Wait is excluded — it must be called with its
// lock held, so flagging it under lockheld would be wrong by contract.
func isBlockingStdCall(info *types.Info, call *ast.CallExpr) bool {
	obj := StaticCallee(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		return obj.Name() == "Wait" && recvNamed(obj) == "WaitGroup"
	case "time":
		return obj.Name() == "Sleep"
	}
	return false
}

// recvNamed returns the bare name of a method's receiver type, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// outputFuncs lists the package-level functions that serialize their
// arguments to a stream in call order.
var outputFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true},
	"io":              {"WriteString": true, "Copy": true},
	"encoding/binary": {"Write": true},
	"log":             {"Print": true, "Printf": true, "Println": true},
	"os":              {"WriteFile": true},
}

// outputMethods lists the method names treated as serialized output on
// any receiver: writers, encoders and hashes alike — wherever call
// order becomes observable byte order. Name-based matching is coarse
// by design; a bespoke Write method that is genuinely order-free can
// carry an //esselint:allow maporder directive at the range site.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Flush": true, "Print": true, "Printf": true, "Println": true,
}

// isOutputCall reports whether the call serializes data in call order.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	obj := StaticCallee(info, call)
	if obj == nil {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	if isMethod {
		return outputMethods[obj.Name()]
	}
	if obj.Pkg() == nil {
		return false
	}
	names := outputFuncs[obj.Pkg().Path()]
	return names != nil && names[obj.Name()]
}

// --- numeric summaries -----------------------------------------------------

const sfAll = sfNonZero | sfNonNeg | sfNonPos // lattice bottom: optimistic init

func (p *Program) computeNumeric() {
	for _, scc := range p.Graph.SCCs {
		// Optimistic initialization for the (possibly recursive)
		// component: claim everything, then descend to the greatest
		// fixpoint. Callee components are already final.
		var members []*FuncInfo
		for _, key := range scc {
			fn := p.Graph.Funcs[key]
			if fn.Decl.Body == nil || fn.Decl.Type.Results == nil || fn.Decl.Type.Results.NumFields() == 0 {
				continue
			}
			members = append(members, fn)
			p.Numeric[key] = newOptimisticSummary(fn)
		}
		if len(members) == 0 {
			continue
		}
		// Each productive iteration clears at least one of the 3 sign
		// bits of some result of some member, so the descent is bounded
		// by the component's total bit count (plus one final stable
		// round).
		cap := 0
		for _, fn := range members {
			cap += 3 * len(p.Numeric[fn.Key].Base) * 2
		}
		converged := false
		for iter := 0; iter <= cap; iter++ {
			changed := false
			for _, fn := range members {
				sum := p.Numeric[fn.Key]
				base := summaryResultMasks(p, fn, false)
				allPos := summaryResultMasks(p, fn, true)
				if !masksEqual(base, sum.Base) || !masksEqual(allPos, sum.AllPos) {
					changed = true
				}
				sum.Base, sum.AllPos = base, allPos
			}
			if !changed {
				converged = true
				break
			}
		}
		if !converged {
			// Cannot happen for a monotone descent, but if it ever did,
			// an optimistic leftover would be an unsound claim: drop
			// the component's summaries instead.
			for _, fn := range members {
				delete(p.Numeric, fn.Key)
			}
		}
	}
}

func newOptimisticSummary(fn *FuncInfo) *NumSummary {
	sig := fn.Obj.Type().(*types.Signature)
	sum := &NumSummary{
		NumParams: sig.Params().Len(),
		Variadic:  sig.Variadic(),
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isFloatType(sig.Params().At(i).Type()) {
			sum.FloatParams = append(sum.FloatParams, i)
		}
	}
	n := sig.Results().Len()
	sum.Base = make([]uint8, n)
	sum.AllPos = make([]uint8, n)
	for i := range sum.Base {
		sum.Base[i] = sfAll
		sum.AllPos[i] = sfAll
	}
	return sum
}

func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func masksEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
