// Package lint implements esselint, a static-analysis suite enforcing
// the repository's determinism and concurrency invariants:
//
//   - rngdeterminism: stochastic code must draw from esse/internal/rng
//     streams — the stdlib rand packages (global-state and entropy
//     seeded alike) are forbidden imports under internal/ and cmd/,
//     and seeds must never be derived from time.Now().
//   - streamshare: a *rng.Stream is not safe for concurrent use; the
//     analyzer flags streams shared with goroutines (captured by a go
//     statement's function literal, or passed as a bare argument)
//     instead of handing each goroutine its own Split child.
//   - errdrop: non-test code under internal/ must not discard error
//     returns, either via `_ =` or by ignoring a call's results.
//   - divguard: float divisions and math.Sqrt/math.Log operands in the
//     numerical kernels must be dominated by a zero/sign guard or an
//     epsilon clamp (CFG + sign dataflow; see cfg.go, dataflow.go).
//   - floatcmp: no ==/!= between non-constant float expressions.
//   - goroutineleak: a goroutine blocking on a channel must be released
//     (drained, closed, Waited) on every path of its spawner.
//   - aliasguard: in-place linalg kernels must not be handed aliasing
//     destination and source arguments.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is self-contained: packages are
// enumerated with `go list -deps -export -json` and type-checked with
// go/types against the toolchain's export data, so the suite builds and
// runs offline with no dependencies outside the standard library. If
// x/tools ever lands in the module, each Analyzer here converts
// mechanically.
//
// Findings can be suppressed with directive comments:
//
//	//esselint:allow <analyzer> [reason...]   (same line or line above)
//	//esselint:allowfile <analyzer> [reason]  (anywhere: whole file)
//
// Suppressions should carry a reason; they are the audited escape
// hatch, not a convenience.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named invariant check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Scope, when non-nil, restricts the analyzer to packages whose
	// module-relative import path it accepts ("." is the module root).
	Scope func(relPath string) bool
	// Run reports diagnostics through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path; RelPath is module-relative.
	Path, RelPath string
	// Files holds the type-checked non-test files of the package.
	Files []*ast.File
	// TestFiles holds the package's test files, parsed but NOT
	// type-checked (Info has no entries for them). Only purely
	// syntactic analyzers may inspect them.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	// Prog carries the package set's call graph and interprocedural
	// summaries (effects, numeric, lock order). Nil only in unit tests
	// that drive an analyzer without a Program.
	Prog *Program

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks findings matched by an //esselint:allow[file]
	// directive. RunAnalyzers drops them; RunAnalyzersAll keeps them
	// flagged for audit/JSON output.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzers returns the full esselint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		RngDeterminism, StreamShare, ErrDrop,
		DivGuard, FloatCmp, GoroutineLeak, AliasGuard,
		MapOrder, LockHeld,
		HotAlloc, Preallocate, Boxing,
		MetricLabels, SlogKV,
		SharedGuard, CtxFlow, AtomicMix,
		JSONWire, HTTPGuard, ExhaustEnum,
		StateFSM, ResLeak, RetryBudget,
		ShapeCheck, UnitDim,
	}
}

// RunAnalyzers applies each analyzer to each in-scope package and
// returns the surviving (non-suppressed) diagnostics in file/position
// order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAnalyzersAll(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	diags := all[:0:0]
	for _, d := range all {
		if !d.Suppressed {
			diags = append(diags, d)
		}
	}
	return diags, nil
}

// RunAnalyzersAll is RunAnalyzers without the suppression filter:
// suppressed findings are kept, marked with Suppressed=true, so JSON
// consumers and the audit can see what the directives are hiding.
func RunAnalyzersAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersStats(pkgs, analyzers)
	return diags, err
}

// AnalyzerStats is one analyzer's cost over a run, accumulated across
// packages.
type AnalyzerStats struct {
	Name       string
	Wall       time.Duration
	Findings   int
	Suppressed int
}

// RunStats reports where a run spent its time and how many
// interprocedural facts the summaries produced.
type RunStats struct {
	// ProgramWall is the time spent building the call graph and the
	// effect/numeric/lock summaries.
	ProgramWall time.Duration
	// Funcs and SCCs size the call graph; the fact counts tally the
	// summaries: functions with a nonzero effect mask, functions with a
	// numeric summary, transitive lock keys, and observed lock pairs.
	Funcs, SCCs      int
	EffectFacts      int
	NumericSummaries int
	LockSummaryKeys  int
	LockPairs        int
	// Concurrency-layer facts: functions taking a context.Context,
	// atomically-accessed field/variable keys, and functions whose
	// every caller holds a lock at entry.
	CtxParams      int
	AtomicKeys     int
	EntryHeldFuncs int
	// WireTypes is the size of the jsonwire fact table: named types
	// reaching an encoding/json sink anywhere in the set.
	WireTypes int
	// Lifecycle-layer facts: declared FSM tables and the arcs they
	// carry, and the obligations the solver tracked across all
	// obligation-discipline analyzers (httpguard, ctxflow, resleak).
	FSMTables      int
	FSMTransitions int
	Obligations    int
	// Symbolic-dimension facts: functions with a shape summary, the
	// conformance requirements those summaries carry, and the number of
	// //esselint:unit annotations in the unit table.
	DimSummaries int
	DimRequires  int
	UnitFacts    int
	Analyzers    []AnalyzerStats
}

// RunAnalyzersStats is RunAnalyzersAll plus per-analyzer wall time and
// interprocedural fact counts for the -stats flag.
func RunAnalyzersStats(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *RunStats, error) {
	stats := &RunStats{}
	start := time.Now()
	prog := BuildProgram(pkgs)
	stats.ProgramWall = time.Since(start)
	stats.Funcs = len(prog.Graph.Keys)
	stats.SCCs = len(prog.Graph.SCCs)
	stats.LockPairs = len(prog.LockPairs)
	stats.NumericSummaries = len(prog.Numeric)
	stats.CtxParams = len(prog.CtxParam)
	stats.AtomicKeys = len(prog.AtomicKeys)
	stats.EntryHeldFuncs = len(prog.EntryHeld)
	stats.WireTypes = len(prog.WireTypes)
	stats.FSMTables = len(prog.FSMTables)
	stats.DimSummaries = len(prog.DimSummaries)
	stats.DimRequires = dimRequireCount(prog.DimSummaries)
	stats.UnitFacts = prog.Units.Facts()
	for _, t := range prog.FSMTables {
		for _, tos := range t.Trans {
			stats.FSMTransitions += len(tos)
		}
	}
	for _, key := range prog.Graph.Keys {
		if prog.Effects[key] != 0 {
			stats.EffectFacts++
		}
		stats.LockSummaryKeys += len(prog.Locks[key])
	}

	perAnalyzer := map[string]*AnalyzerStats{}
	for _, a := range analyzers {
		perAnalyzer[a.Name] = &AnalyzerStats{Name: a.Name}
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := newSuppressor(pkg)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.RelPath) {
				continue
			}
			acc := perAnalyzer[a.Name]
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Path:      pkg.Path,
				RelPath:   pkg.RelPath,
				Files:     pkg.Files,
				TestFiles: pkg.TestFiles,
				Pkg:       pkg.Pkg,
				Info:      pkg.Info,
				Prog:      prog,
				report: func(d Diagnostic) {
					d.Suppressed = sup.suppressed(d)
					if d.Suppressed {
						acc.Suppressed++
					} else {
						acc.Findings++
					}
					diags = append(diags, d)
				},
			}
			t0 := time.Now()
			err := a.Run(pass)
			acc.Wall += time.Since(t0)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	// The solver tallies obligations while analyzers run, so this read
	// must come after the loop.
	stats.Obligations = prog.Obligations
	for _, a := range analyzers {
		stats.Analyzers = append(stats.Analyzers, *perAnalyzer[a.Name])
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, stats, nil
}

// suppressor indexes a package's //esselint: directive comments.
type suppressor struct {
	// line maps filename → line → analyzer names allowed on that line
	// and the one below it.
	line map[string]map[int][]string
	// file maps filename → analyzer names allowed file-wide.
	file map[string][]string
}

func newSuppressor(pkg *Package) *suppressor {
	s := &suppressor{
		line: map[string]map[int][]string{},
		file: map[string][]string{},
	}
	index := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//esselint:")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				switch fields[0] {
				case "allow":
					m := s.line[pos.Filename]
					if m == nil {
						m = map[int][]string{}
						s.line[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], fields[1])
				case "allowfile":
					s.file[pos.Filename] = append(s.file[pos.Filename], fields[1])
				}
			}
		}
	}
	for _, f := range pkg.Files {
		index(f)
	}
	for _, f := range pkg.TestFiles {
		index(f)
	}
	return s
}

func (s *suppressor) suppressed(d Diagnostic) bool {
	match := func(names []string) bool {
		for _, n := range names {
			if n == d.Analyzer || n == "all" {
				return true
			}
		}
		return false
	}
	if match(s.file[d.Pos.Filename]) {
		return true
	}
	if m := s.line[d.Pos.Filename]; m != nil {
		// A directive applies to its own line and the line below it.
		if match(m[d.Pos.Line]) || match(m[d.Pos.Line-1]) {
			return true
		}
	}
	return false
}

// underInternalOrCmd scopes an analyzer to internal/ and cmd/ packages.
func underInternalOrCmd(rel string) bool {
	return rel == "internal" || rel == "cmd" ||
		strings.HasPrefix(rel, "internal/") || strings.HasPrefix(rel, "cmd/")
}

// underInternal scopes an analyzer to internal/ packages.
func underInternal(rel string) bool {
	return rel == "internal" || strings.HasPrefix(rel, "internal/")
}
