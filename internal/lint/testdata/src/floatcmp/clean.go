package floatcmp

import "math"

const eps = 1e-9

func tolerant(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

// x != x is the idiomatic NaN probe.
func nanProbe(x float64) bool {
	return x != x
}

// Comparisons against constants are legitimate sentinel tests.
func sentinel(x float64) bool {
	return x == 0
}

func constCmp(x float64) bool {
	return x != eps
}

func ints(a, b int) bool {
	return a == b
}
