package floatcmp

func bad(a, b float64) bool {
	return a == b // want "exact float comparison"
}

func badNeq(xs []float64) bool {
	return xs[0] != xs[1] // want "exact float comparison"
}

func badExpr(a, b, c float64) bool {
	return a+b == c // want "exact float comparison"
}
