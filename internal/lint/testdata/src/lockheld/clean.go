package lockheld

import "sync"

type store struct {
	mu   sync.Mutex
	vals map[string]int
}

// Release before blocking: the send happens outside the critical
// section.
func (s *store) put(ch chan int, k string) {
	s.mu.Lock()
	s.vals[k]++
	n := len(s.vals)
	s.mu.Unlock()
	ch <- n
}

// Deferred unlock over a straight-line critical section.
func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

// Spawning under a lock is fine: the goroutine blocks, not the
// spawner, and its own lock use is concurrent rather than nested.
func (s *store) spawn(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { ch <- 1 }()
}

// Consistent a→b order on every path: no inversion to report.
type ordered struct {
	a, b sync.Mutex
}

func (o *ordered) first() {
	o.a.Lock()
	o.b.Lock()
	o.b.Unlock()
	o.a.Unlock()
}

func (o *ordered) second() {
	o.a.Lock()
	o.b.Lock()
	o.b.Unlock()
	o.a.Unlock()
}

type rw struct {
	mu sync.RWMutex
	v  int
}

func (r *rw) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}
