package lockheld

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
	ch chan int
}

func (c *counter) sendLocked() {
	c.mu.Lock()
	c.ch <- c.n // want "channel send while .* is held"
	c.mu.Unlock()
}

func (c *counter) sleepLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while .* is held"
}

func (c *counter) waitLocked(wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while .* is held"
}

// blockingHelper's effect summary says it may block on a channel.
func blockingHelper(ch chan int) int {
	return <-ch
}

func (c *counter) indirectBlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = blockingHelper(c.ch) // want "call to blockingHelper may block"
}

// Inconsistent pairwise order: a→b here, b→a below. Both second
// acquisitions are reported.
type pair struct {
	a, b sync.Mutex
}

func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want "opposite order"
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want "opposite order"
	p.a.Unlock()
	p.b.Unlock()
}
