// This file demonstrates the audited escape hatch: the file-level
// directive suppresses rngdeterminism findings, so the forbidden import
// below must NOT be reported.
//
//esselint:allowfile rngdeterminism legacy comparison harness
package rngdet

import "math/rand/v2"

func legacyUniform() float64 { return rand.Float64() }
