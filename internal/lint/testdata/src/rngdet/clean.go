package rngdet

import (
	"time"

	"esse/internal/rng"
)

// Proper usage: fixed seeds, clock used only for timing, never seeding.
func clean() (float64, time.Duration) {
	start := time.Now()
	s := rng.New(42)
	child := s.Split(7)
	return child.Norm(), time.Since(start)
}
