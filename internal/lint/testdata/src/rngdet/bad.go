package rngdet

import (
	_ "crypto/rand" // want "entropy-seeded randomness breaks bit-reproducibility"
	"math/rand"     // want "import .math/rand. is forbidden"
	"time"

	"esse/internal/rng"
)

type config struct {
	Seed int64
}

func seeds(parent *rng.Stream) {
	seed := uint64(time.Now().UnixNano())                // want "time.Now\\(\\)-derived seed"
	s := rng.New(uint64(time.Now().UnixNano()))          // want "time.Now\\(\\)-derived seed"
	cfg := config{Seed: time.Now().Unix()}               // want "time.Now\\(\\)-derived seed"
	child := parent.Split(uint64(time.Now().UnixNano())) // want "time.Now\\(\\)-derived seed"
	_, _, _, _ = seed, s, cfg, child
	_ = rand.Intn(3)
}

var defaultSeed = time.Now().UnixNano() // want "time.Now\\(\\)-derived seed"
