// Package shapediff is a frozen, dimension-concrete ESSE analysis
// kernel used by the shapecheck differential test: the test injects a
// transposed operand into this source and asserts the analyzer names
// the exact line. Keep the shapes concrete and conformant, and keep
// every use downstream of the projection dependent only on its column
// count so the injected bug stays a single-line finding.
package shapediff

import "esse/internal/linalg"

// AnalysisStep mirrors one reduced ESSE update: project the ensemble
// anomaly matrix onto the dominant subspace and weight the reduced
// coefficients by the ensemble weights.
func AnalysisStep() []float64 {
	anom := linalg.NewDense(12, 4)     // 12 state dims x 4 ensemble members
	basis := linalg.NewDense(12, 3)    // dominant 3-mode subspace
	coeff := linalg.MulTA(basis, anom) // 3x4 reduced coefficients
	scaled := linalg.Scale(0.5, coeff)
	weights := make([]float64, 4)
	return linalg.MatVec(scaled, weights) // length-3 reduced increment
}
