package atomicmix

import "sync/atomic"

type stats struct {
	hits  int64
	total atomic.Uint64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) read() int64 {
	return s.hits // want "accessed with sync/atomic at .* but plainly here"
}

func (s *stats) rmwFunc() {
	atomic.StoreInt64(&s.hits, atomic.LoadInt64(&s.hits)+1) // want "read-modify-write of .* is two atomic operations"
}

func (s *stats) rmwTyped() {
	s.total.Store(s.total.Load() + 1) // want "read-modify-write of .* is two atomic operations"
}

var counter int64

func incr() {
	atomic.AddInt64(&counter, 1)
}

func peek() int64 {
	return counter // want "accessed with sync/atomic at .* but plainly here"
}

// A bare local of a named atomic type is its own key — loading and
// storing the same local is still a split read-modify-write.
func localRMW() int64 {
	var n atomic.Int64
	n.Store(n.Load() + 1) // want "read-modify-write of .* is two atomic operations"
	return n.Load()
}
