package atomicmix

import "sync/atomic"

type gauge struct {
	v atomic.Uint64
	n int64
}

func (g *gauge) inc() {
	atomic.AddInt64(&g.n, 1)
}

// Constructor initialization happens before the value is published.
func newGauge(start int64) *gauge {
	g := &gauge{}
	g.n = start
	return g
}

// The CAS loop is the single-operation read-modify-write idiom.
func (g *gauge) add(d uint64) {
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, old+d) {
			return
		}
	}
}

var total int64

func addTotal(d int64) {
	for {
		old := atomic.LoadInt64(&total)
		if atomic.CompareAndSwapInt64(&total, old, old+d) {
			return
		}
	}
}

// Store of a Load from a DIFFERENT key is a copy, not a lost update.
var src, dst atomic.Int64

func mirror() {
	dst.Store(src.Load())
}

// Distinct locals of the same named atomic type must not collapse to
// one key: a copy between two locals is not a read-modify-write.
func copyLocals() int64 {
	var a, b atomic.Int64
	a.Store(1)
	b.Store(a.Load())
	return b.Load()
}
