package divguardsum

import "math"

// clampPos's summary proves a strictly positive result for any
// argument: PR-2 style call sites need no directive anymore.
func clampPos(x float64) float64 {
	return math.Max(x, 1e-12)
}

func safeInverse(x float64) float64 {
	return 1 / clampPos(x)
}

func scaled(x, y float64) float64 {
	return x / (clampPos(y) + 1)
}

// square's AllPos summary applies when the argument is provably
// positive at the call site.
func square(x float64) float64 {
	return x * x
}

func sqrtScale(x float64) float64 {
	s := math.Max(x, 0.5)
	return 1 / square(s)
}

// Multi-result summaries propagate per result through a,b := f(x).
func posPair(x float64) (float64, float64) {
	p := math.Max(x, 1)
	return p, p + 1
}

func useBoth(x float64) float64 {
	a, b := posPair(x)
	return a / b
}

// Mutual recursion: the summary fixpoint converges to "positive" for
// both halves of the pair.
func evenPow(x float64, n int) float64 {
	if n == 0 {
		return 1
	}
	return oddPow(x, n-1) * clampPos(x)
}

func oddPow(x float64, n int) float64 {
	if n == 0 {
		return 1
	}
	return evenPow(x, n-1) * clampPos(x)
}

func usesRecursive(x float64) float64 {
	return 1 / evenPow(x, 4)
}
