package divguardsum

import "math"

// half passes its argument's sign straight through: its summary proves
// nothing about the result.
func half(x float64) float64 {
	return x / 2
}

func unsafeInverse(x float64) float64 {
	return 1 / half(x) // want "not provably nonzero"
}

// absNoZero proves non-negative but not nonzero.
func absNoZero(x float64) float64 {
	return math.Abs(x)
}

func stillZero(x float64) float64 {
	return 1 / absNoZero(x) // want "not provably nonzero"
}

// clampNonNeg's Base summary is only non-negative; dividing by it
// still needs a nonzero proof the summary cannot give.
func clampNonNeg(x float64) float64 {
	return math.Max(x, 0)
}

func needsPos(x, y float64) float64 {
	return x / clampNonNeg(y) // want "not provably nonzero"
}

// ...but the same summary satisfies math.Sqrt's non-negativity
// requirement interprocedurally: no finding here.
func sqrtOf(x float64) float64 {
	return math.Sqrt(clampNonNeg(x))
}
