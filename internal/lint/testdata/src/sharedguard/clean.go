package sharedguard

import "sync"

type store struct {
	mu sync.Mutex
	n  int
	ro int
}

// Constructor writes happen before publication.
func newStore() *store {
	s := &store{}
	s.n = 1
	s.ro = 7
	return s
}

// Consistently guarded accesses.
func (s *store) get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *store) set(v int) {
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
}

// Read-only after publication: no non-constructor writes anywhere.
func (s *store) readonly() int { return s.ro }

// A freshly allocated local is owned until it escapes.
func ownedUse() int {
	l := &store{}
	l.n = 3
	return l.n
}

// Guarded captured local plus a post-join read: the spawner owns the
// variable again after Wait.
func joined() int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		mu.Lock()
		total++
		mu.Unlock()
		wg.Done()
	}()
	wg.Wait()
	return total
}

// Locals declared inside the goroutine literal are per-instance state,
// even when the literal is spawned in a loop.
func perInstance(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			local := 0
			local++
			use(local)
			wg.Done()
		}()
	}
	wg.Wait()
}
