package sharedguard

import "sync"

// Rule 1: mixed guard — n is written under mu in one method and read
// with no lock in another.
type server struct {
	mu sync.Mutex
	n  int
}

func (s *server) incLocked() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *server) peek() int {
	return s.n // want "read of .* without holding .*mu, which guards it at other access sites"
}

// Rule 2: no guards anywhere, but a goroutine writes while another
// context reads.
var hits int

func bump() {
	go func() {
		hits++ // want "written here in a goroutine context and also accessed at"
	}()
	use(hits)
}

func use(int) {}

// Rule 3: a captured local written by the goroutine and read by the
// spawner before any join.
func gather() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total++ // want "captured variable total is written here and accessed at .* from a different goroutine context"
		close(done)
	}()
	<-done
	return total
}

// Rule 3, looped flavor: instances of the same go literal race on the
// shared counter.
func fanout(n int) {
	var wg sync.WaitGroup
	idx := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			idx++ // want "written in a goroutine spawned in a loop with no lock held"
			wg.Done()
		}()
	}
	wg.Wait()
}
