package directives

// This fixture asserts directive placement semantics: a suppressed
// finding must NOT surface, so a passing run (zero diagnostics, zero
// want comments) is the assertion.

func sameLine(a, b float64) bool {
	return a == b //esselint:allow floatcmp fixture: same-line suppression
}

func lineAbove(a, b float64) bool {
	//esselint:allow floatcmp fixture: line-above suppression
	return a == b
}
