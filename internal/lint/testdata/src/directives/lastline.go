package directives

func fileWide(a, b float64) bool {
	return a == b
}

//esselint:allowfile floatcmp fixture: file-wide directive on the last line
