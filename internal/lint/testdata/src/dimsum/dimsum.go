// Package dimsum exercises Program.DimSummaries: direct, transitive,
// and mutually recursive shape summaries over the linalg vocabulary.
package dimsum

import "esse/internal/linalg"

// Outer has a fully parametric summary: len(x) x len(y).
func Outer(x, y []float64) *linalg.Dense {
	m := linalg.NewDense(len(x), len(y))
	linalg.OuterAdd(m, 1.0, x, y)
	return m
}

// Chain picks up Outer's summary transitively.
func Chain(x []float64) *linalg.Dense {
	return Outer(x, x)
}

// Gram has a constant-free summary with no requirements: MulTA's
// row-conformance constraint is trivially satisfied by e == e.
func Gram(e *linalg.Dense) *linalg.Dense {
	return linalg.MulTA(e, e)
}

// MulPair exports Mul's inner-dimension constraint as a requirement.
func MulPair(a, b *linalg.Dense) *linalg.Dense {
	return linalg.Mul(a, b)
}

// MulChain propagates MulPair's requirement transitively.
func MulChain(a, b *linalg.Dense) *linalg.Dense {
	return MulPair(a, b)
}

// Even/Odd form a mutual-recursion SCC whose fixpoint still proves the
// exact result shapes: Even preserves its argument's shape, Odd
// transposes it.
func Even(m *linalg.Dense, n int) *linalg.Dense {
	if n == 0 {
		return m
	}
	return Odd(m.T(), n-1)
}

func Odd(m *linalg.Dense, n int) *linalg.Dense {
	if n == 0 {
		return m.T()
	}
	return Even(m.T(), n-1)
}

// Mixed returns a Dense on one path and loses the shape on another:
// the meet keeps only what both paths agree on.
func Mixed(x []float64, wide bool) *linalg.Dense {
	if wide {
		return linalg.NewDense(len(x), 2*len(x))
	}
	return linalg.NewDense(len(x), len(x))
}
