package divguard

import "math"

func guardedDiv(x []float64) float64 {
	d := x[0]
	if d == 0 {
		return 0
	}
	return 1 / d
}

func clampedDiv(x []float64) float64 {
	den := math.Max(x[0], 1e-12)
	return 1 / den
}

func squareSqrt(x []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * x[i]
	}
	return math.Sqrt(s)
}

func guardedLog(x []float64) float64 {
	v := x[0]
	if v > 0 {
		return math.Log(v)
	}
	return 0
}

func absGuard(x []float64) float64 {
	g := x[0]
	if math.Abs(g) <= 1e-300 {
		return 0
	}
	return 1 / (2 * g)
}

func orGuard(x []float64) float64 {
	alpha, gamma := x[0], x[1]
	if alpha == 0 || gamma == 0 {
		return 0
	}
	return alpha / gamma
}

// Parameters are trusted: validating configuration (grid spacing, time
// steps) is the constructor's contract, not every kernel's.
func trustedParam(dx float64) float64 {
	return 1 / (2 * dx)
}

func indexGuard(sv []float64, j int) float64 {
	if sv[j] > 0 {
		return 1 / sv[j]
	}
	return 0
}
