package divguard

import "math"

func badDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return 1 / s // want "not provably nonzero"
}

func badSqrt(x []float64) float64 {
	d := x[0] - x[1]
	return math.Sqrt(d) // want "not provably non-negative"
}

func badLog(x []float64) float64 {
	v := x[0]
	if v != 0 {
		// nonzero is not enough for Log: v may be negative.
		return math.Log(v) // want "not provably positive"
	}
	return 0
}

func badCompound(x []float64) {
	n := x[0]
	x[1] /= n // want "not provably nonzero"
}

func badPartialGuard(x []float64) float64 {
	d := x[0]
	if d > 0 {
		return 1 / d // fine: positive on this branch
	}
	return 1 / d // want "not provably nonzero"
}

func badGuardKilled(x []float64) float64 {
	d := x[0]
	if d == 0 {
		return 0
	}
	d = x[1]     // reassignment kills the guard fact
	return 1 / d // want "not provably nonzero"
}
