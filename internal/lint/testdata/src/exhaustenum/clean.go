package exhaustenum

import "time"

// Full coverage, multiple members per case.
func classify(p phase) string {
	switch p {
	case idle, running:
		return "live"
	case done, failed:
		return "terminal"
	}
	return ""
}

// A default states the policy for future members.
func brief(p phase) string {
	switch p {
	case idle:
		return "i"
	default:
		return "other"
	}
}

// Aliased members are one value: covering crimson covers red.
type color int

const (
	red color = iota
	green
	crimson = red
)

func paint(c color) string {
	switch c {
	case crimson, green:
		return "ok"
	}
	return ""
}

// A single-member type is not an enum.
type lone int

const only lone = 0

func one(l lone) bool {
	switch l {
	case only:
		return true
	}
	return false
}

// A non-constant case may cover anything: skipped.
func dyn(p, q phase) bool {
	switch p {
	case q:
		return true
	}
	return false
}

// Enums outside the module (stdlib) are not ours to close.
func month(m time.Month) bool {
	switch m {
	case time.January:
		return true
	}
	return false
}
