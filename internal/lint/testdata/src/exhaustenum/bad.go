package exhaustenum

type phase int

const (
	idle phase = iota
	running
	done
	failed
)

func describe(p phase) string {
	switch p { // want "covers 3 of 4 enum members and has no default; missing: failed"
	case idle:
		return "idle"
	case running:
		return "running"
	case done:
		return "done"
	}
	return "?"
}

type state string

const (
	stOpen state = "open"
	stShut state = "shut"
)

func flip(s state) state {
	switch s { // want "covers 1 of 2 enum members and has no default; missing: stShut"
	case stOpen:
		return stShut
	}
	return stOpen
}
