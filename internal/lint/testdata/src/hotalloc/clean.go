package hotalloc

// Hoisted buffer, reused every iteration.
func hoisted(n int) float64 {
	buf := make([]float64, 8)
	t := 0.0
	for i := 0; i < n; i++ {
		buf[0] = float64(i)
		t += buf[0]
	}
	return t
}

// Lazy-init guards amortize: the allocation runs once, not per
// iteration.
func lazyInit(n int) float64 {
	var buf []float64
	t := 0.0
	for i := 0; i < n; i++ {
		if buf == nil {
			buf = make([]float64, 8)
		}
		if cap(buf) < n {
			buf = make([]float64, n)
		}
		t += buf[0]
	}
	return t
}

type shaped struct {
	rows, cols int
	data       []float64
}

// The reallocate-on-shape-change variant: an || chain anchored by a
// nil check is still a lazy guard.
func shapeGuard(s *shaped, n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		if s.data == nil || s.rows != n {
			s.data = make([]float64, n)
			s.rows = n
		}
		t += s.data[0]
	}
	return t
}

// A terminating branch runs at most once per loop.
func terminatingBranch(xs []float64) []float64 {
	for _, x := range xs {
		if x < 0 {
			bad := make([]float64, 1)
			bad[0] = x
			return bad
		}
	}
	return nil
}

// Non-capturing literals compile to static functions: no allocation.
func nonCapturing(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		f := func(v int) int { return v * 2 }
		t = f(t)
	}
	return t
}

// An immediately invoked literal's body runs inline; the creation is
// not a per-iteration heap cost.
func immediatelyInvoked(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += func() float64 { return float64(i) }()
	}
	return t
}

type cache struct{ buf []float64 }

func (c *cache) get(n int) []float64 {
	if c.buf == nil {
		c.buf = make([]float64, n)
	}
	return c.buf
}

// The callee's only allocation is lazy-guarded, so its allocates
// effect is amortized and the loop-borne call is clean.
func callsCache(c *cache, n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += c.get(8)[0]
	}
	return t
}

// Value struct literals need not allocate.
func valueLiteral(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		p := point{x: float64(i)}
		t += p.x
	}
	return t
}

// Constant concatenation folds at compile time.
func constConcat(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s = "a" + "b"
	}
	return s
}
