package hotalloc

type point struct{ x, y float64 }

func makePerIteration(n int) [][]float64 {
	out := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 8) // want "allocated per loop iteration"
		row[0] = float64(i)
		out = append(out, row)
	}
	return out
}

func compositePerIteration(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		row := []float64{1, 2, 3} // want "allocated per loop iteration"
		t += row[i%3]
	}
	return t
}

func pointerLiteralPerIteration(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		p := &point{x: float64(i)} // want "allocated per loop iteration"
		t += p.x
	}
	return t
}

func concatPerIteration(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want "string concatenation per loop iteration"
	}
	return s
}

func concatBinaryPerIteration(parts []string) string {
	s := ""
	for _, p := range parts {
		s = s + p + "." // want "string concatenation per loop iteration"
	}
	return s
}

func closurePerIteration(n int) int {
	calls := 0
	for i := 0; i < n; i++ {
		f := func() int { return calls + i } // want "closure capturing enclosing variables"
		calls = f()
	}
	return calls
}

// allocator's make sets its allocates-effect bit; the loop-borne call
// below is reported interprocedurally.
func allocator(n int) []float64 { return make([]float64, n) }

func callsAllocator(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		v := allocator(8) // want "call to allocator allocates per loop iteration"
		t += v[0]
	}
	return t
}

// The allocation happens two hops down the call chain; the effect bit
// propagates transitively.
func allocatorWrapper() []float64 { return allocator(4) }

func callsWrapper(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += allocatorWrapper()[0] // want "call to allocatorWrapper allocates per loop iteration"
	}
	return t
}

func makeInLoopCondition(xs []float64) int {
	count := 0
	for i := 0; i < len(make([]int, len(xs))); i++ { // want "allocated per loop iteration"
		count++
	}
	return count
}
