package maporder

import (
	"fmt"
	"sort"
)

// Collect-then-sort: the approved idiom for map iteration whose order
// would otherwise become observable.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Per-entry mutation is order-free.
func scale(m map[string]float64, f float64) {
	for k, v := range m {
		m[k] = v * f
	}
}

// Copying into another map is order-free.
func copyMap(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Min-reduction with a deterministic key tiebreaker.
func argMin(m map[string]float64) string {
	best := ""
	bestV := 0.0
	first := true
	for k, v := range m {
		if first || v < bestV || (v <= bestV && k < best) {
			best, bestV, first = k, v, false
		}
	}
	return best
}

// Output in sorted-key order, outside any map range.
func report(m map[string]int) {
	for _, k := range sortedKeys(m) {
		fmt.Println(k, m[k])
	}
}

// Integer counters commute exactly.
func count(m map[string]bool) int {
	n := 0
	for _, ok := range m {
		if ok {
			n++
		}
	}
	return n
}
