package maporder

import "fmt"

func sumBad(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation"
	}
	return total
}

func longhandBad(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s = s + v // want "float accumulation"
	}
	return s
}

func appendBad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to .keys. in map-iteration order"
	}
	return keys
}

func printBad(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "output written inside a map range"
	}
}

func sendBad(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside a map range"
	}
}

func spawnBad(m map[string]func()) {
	for _, f := range m {
		go f() // want "goroutine spawned inside a map range"
	}
}

// emit's interprocedural effect summary says it writes output.
func emit(k string) {
	fmt.Println(k)
}

func indirectBad(m map[string]int) {
	for k := range m {
		emit(k) // want "call to emit inside a map range emits output"
	}
}
