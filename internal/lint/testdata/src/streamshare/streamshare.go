package streamshare

import (
	"sync"

	"esse/internal/rng"
)

func worker(s *rng.Stream) float64 { return s.Norm() }

type holder struct{ st *rng.Stream }

func badArg(parent *rng.Stream) {
	go worker(parent) // want "passed into goroutine is shared"
}

func badField(h *holder) {
	go worker(h.st) // want "passed into goroutine is shared"
}

// goodArgSplit hands each goroutine a fresh Split child: must NOT be
// flagged.
func goodArgSplit(parent *rng.Stream) {
	for i := 0; i < 4; i++ {
		go worker(parent.Split(uint64(i)))
	}
}

// goodArgSlot passes per-slot streams out of a pre-split pool.
func goodArgSlot(streams []*rng.Stream) {
	for i := range streams {
		go worker(streams[i])
	}
}

func badCaptureLoop(parent *rng.Stream) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = parent.Norm() // want "captures shared .rng.Stream"
		}()
	}
	wg.Wait()
}

// goodCaptureChild splits a per-iteration child before launching: the
// capture is owned by exactly one goroutine and must NOT be flagged.
func goodCaptureChild(parent *rng.Stream) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		child := parent.Split(uint64(i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = child.Norm()
		}()
	}
	wg.Wait()
}

// goodCaptureSplitOnly captures the parent but only ever calls Split on
// it (Split does not advance the parent): must NOT be flagged.
func goodCaptureSplitOnly(parent *rng.Stream) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		id := uint64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := parent.Split(id)
			_ = c.Norm()
		}()
	}
	wg.Wait()
}

func badHandoffThenUse() float64 {
	s := rng.New(7)
	go func() {
		_ = s.Float64() // want "captures shared .rng.Stream"
	}()
	return s.Float64()
}

// goodHandoff transfers ownership: the launcher never touches the
// stream again, so the single goroutine is its sole owner.
func goodHandoff() {
	s := rng.New(9)
	go func() {
		_ = s.Float64()
	}()
}
