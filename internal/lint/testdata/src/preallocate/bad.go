package preallocate

func rangeLen(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x*2) // want "append to .out. grows without capacity though the loop bound len\\(xs\\)"
	}
	return out
}

func countedBound(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i) // want "loop bound n is derivable"
	}
	return out
}

func inclusiveBound(n int) []int {
	out := make([]int, 0)
	for i := 0; i <= n; i++ {
		out = append(out, i) // want "loop bound n\\+1 is derivable"
	}
	return out
}

func intRange(n int) []int {
	var out []int
	for i := range n {
		out = append(out, i) // want "loop bound n is derivable"
	}
	return out
}

// dim is effect-free and in-set, so its result is a derivable bound.
func dim() int { return 16 }

func calleeBound(scale float64) []float64 {
	var out []float64
	for i := 0; i < dim(); i++ {
		out = append(out, scale*float64(i)) // want "loop bound dim\\(\\) is derivable"
	}
	return out
}

func nilDecl(xs []string) []string {
	var out []string = nil
	for range xs {
		out = append(out, "x") // want "grows without capacity"
	}
	return out
}
