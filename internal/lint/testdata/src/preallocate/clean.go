package preallocate

// Declared with the derivable capacity: the fix the analyzer demands.
func withCapacity(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// A nonzero length is a deliberate choice, not a missing capacity.
func withLength(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * 2
	}
	return out
}

// The growing-worklist idiom: the ranged operand is reassigned in the
// body, so the trip count is not the final length.
func worklist(seed []int) []int {
	queue := seed
	var seen []int
	for i := 0; i < len(queue); i++ {
		seen = append(seen, queue[i])
		if queue[i] > 0 {
			queue = append(queue, queue[i]-1)
		}
	}
	return seen
}

// Splat appends add an unknown element count per iteration.
func splat(chunks [][]float64) []float64 {
	var out []float64
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// Appends attribute to their nearest enclosing loop; here that inner
// loop has a non-canonical bound the analyzer cannot derive, which
// hides the append from the derivable outer loop.
func innerUnderivable(xs []float64) []float64 {
	var out []float64
	for range xs {
		for j := 1; j*j < len(xs); j++ {
			out = append(out, float64(j))
		}
	}
	return out
}

// A per-iteration target resets each time and never sees the bound.
func perIteration(xs [][]float64) int {
	total := 0
	for _, row := range xs {
		var tmp []float64
		tmp = append(tmp, row...)
		total += len(tmp)
	}
	return total
}

// The counter bound is mutated in the body: not loop-invariant.
func mutatedBound(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if i == 3 {
			n--
		}
		out = append(out, i)
	}
	return out
}
