package unitdim

import "math"

// Sample is one water-column sample with annotated physical units.
type Sample struct {
	//esselint:unit m
	Depth float64
	//esselint:unit s
	Dt float64
	//esselint:unit m/s
	U float64
	//esselint:unit degC
	T float64
	//esselint:unit psu
	S float64
}

//esselint:unit m/s^2
const gravityBad = 9.81

//esselint:unit kg/m^3
const rhoRef = 1000.0

//esselint:unit kg/m^3/degC
const alphaT = 0.2

//esselint:unit kg/m^3/psu
const betaS = 0.8

func badAdd(s *Sample) float64 {
	return s.Depth + s.Dt // want "operands of \\+ have different units: m vs s"
}

func badCompare(s *Sample) bool {
	return s.U > s.T // want "compared values have different units: m/s vs degC"
}

func badAssign(s *Sample) {
	s.T = s.U * s.Dt // want "drifts from its //esselint:unit degC directive: value has unit m"
}

func badCompound(s *Sample) {
	s.Depth += s.Dt // want "operands of \\+= have different units: m vs s"
}

//esselint:unit t=degC s=psu return=kg/m^3
func sigmaT(t, s float64) float64 {
	return rhoRef - alphaT*t + betaS*s
}

func badArg(s *Sample) float64 {
	return sigmaT(s.Depth, s.S) // want "argument 1 of sigmaT has unit m, //esselint:unit declares degC"
}

//esselint:unit dt=s return=m
func badReturn(dt float64) float64 {
	speed := 2.5
	return speed * dt // want "return value of badReturn has unit s, //esselint:unit declares m"
}

func badExp(s *Sample) float64 {
	return math.Exp(s.Depth) // want "math.Exp argument must be dimensionless, got m"
}

func badSqrtUse(s *Sample) float64 {
	c := math.Sqrt(gravityBad * s.Depth) // m/s after the square root
	return c - s.Dt                      // want "operands of - have different units: m/s vs s"
}

type badDirective struct {
	//esselint:unit m^x // want "bad exponent"
	X float64
}

func suppressedUnit(s *Sample) float64 {
	//esselint:allow unitdim fixture exercises suppression plumbing
	return s.Depth + s.Dt
}
