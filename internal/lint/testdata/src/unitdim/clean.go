package unitdim

import "math"

// Dimensionally consistent physics stays silent, including the
// polymorphic-literal cases that would trip a naive checker.

//esselint:unit h=m return=m/s
func waveSpeed(h float64) float64 {
	return math.Sqrt(gravityBad * h) // m/s^2 * m = m^2/s^2, sqrt = m/s
}

func cleanCourant(s *Sample) float64 {
	c := waveSpeed(s.Depth)
	return c * s.Dt / s.Depth // m/s * s / m = 1
}

func cleanLiterals(s *Sample) float64 {
	// Bare literals adapt: 2*dt is still seconds, and the 0.5 offset
	// takes on seconds when it meets one.
	half := 0.5
	return 2*s.Dt + half
}

func cleanDensity(s *Sample) float64 {
	return sigmaT(s.T, s.S)
}

func cleanUnknownPoison(s *Sample, raw float64) float64 {
	// raw carries no declared unit, so arithmetic with it is silent.
	return s.Depth + raw
}

func cleanPreserving(s *Sample) float64 {
	// Abs keeps its argument's unit; comparing m with m is fine.
	if math.Abs(s.Depth) > 10.0 {
		return s.Depth
	}
	return 0
}

func cleanRange(samples []float64, s *Sample) float64 {
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum + s.Depth
}

func cleanConversion(s *Sample) float64 {
	// A conversion keeps the unit; float32 round-trips are common in
	// the reduced-precision ensemble path.
	return float64(float32(s.Depth)) / s.Dt * s.Dt
}
