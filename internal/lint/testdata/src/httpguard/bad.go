package httpguard

import (
	"context"
	"errors"
	"io"
	"net/http"
)

var errBad = errors.New("bad status")

// The body is never closed on any path.
func leak(c *http.Client, url string) error {
	resp, err := c.Get(url) // want "may not be closed on every path"
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errBad
	}
	_, err = io.ReadAll(resp.Body)
	return err
}

// Closed on the happy path only: the early return leaks.
func closeHappyOnly(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url) // want "may not be closed on every path"
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// The body is decoded before anyone looks at the status code.
func readFirst(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body) // want "read before the status code is checked"
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, errBad
	}
	return b, nil
}

// The retry overwrites a response whose body may still be open.
func retryLoop(c *http.Client, url string) {
	var resp *http.Response
	var err error
	for i := 0; i < 3; i++ {
		resp, err = c.Get(url) // want "overwrites a response whose body may still be open"
		if err == nil && resp.StatusCode == http.StatusOK {
			break
		}
	}
	if resp != nil {
		resp.Body.Close()
	}
}

// A client with no Timeout and no context-carrying requests.
func newClient() *http.Client {
	return &http.Client{} // want "sets no Timeout"
}

// A server that lets a slow client pin the connection forever.
func newServer(h http.Handler) *http.Server {
	return &http.Server{Addr: ":8080", Handler: h} // want "sets no ReadHeaderTimeout"
}

// The package-level helper builds an unbounded Server with no
// Shutdown handle.
func serveForever(h http.Handler) error {
	return http.ListenAndServe(":8080", h) // want "no timeouts and no Shutdown handle"
}

// The shared default client has no timeout.
func useDefault(url string) (*http.Response, error) {
	return http.DefaultClient.Get(url) // want "http.DefaultClient has no Timeout"
}

// DefaultClient sugar inside a loop: one hung peer stalls the sweep.
func pollLoop(urls []string) {
	for _, u := range urls {
		resp, err := http.Get(u) // want "http.Get uses http.DefaultClient"
		if err != nil {
			continue
		}
		resp.Body.Close()
	}
}

// DefaultClient sugar in a ctx-taking function: the context cannot
// interrupt the request.
func fetchCtx(ctx context.Context, url string) error {
	_ = ctx
	resp, err := http.Get(url) // want "http.Get uses http.DefaultClient"
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errBad
	}
	return nil
}
