package httpguard

import (
	"context"
	"io"
	"net/http"
	"time"
)

// The canonical shape: error branch, deferred close, status check,
// drain on the error-status path, then the read.
func fetchClean(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, errBad
	}
	return io.ReadAll(resp.Body)
}

// Returning the response hands ownership (and the close) to the
// caller.
func open(c *http.Client, url string) (*http.Response, error) {
	resp, err := c.Get(url)
	return resp, err
}

// Passing the whole response onward does the same.
func fetchVia(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	return consume(resp)
}

func consume(resp *http.Response) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errBad
	}
	_, err := io.ReadAll(resp.Body)
	return err
}

// A capture hands ownership to the closure.
func fetchAsync(c *http.Client, url string, out chan<- error) {
	resp, err := c.Get(url)
	if err != nil {
		out <- err
		return
	}
	go func() {
		defer resp.Body.Close()
		out <- nil
	}()
}

// A Timeout bounds every request through this client.
func newBoundedClient() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}

// No Timeout, but every request carries a context: cancellation is
// the caller's, which is the documented alternative.
func ctxFetch(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	c := &http.Client{}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errBad
	}
	return nil
}

// ReadHeaderTimeout bounds the header read; the method form of
// ListenAndServe keeps the Shutdown handle.
func serveBounded(h http.Handler) error {
	srv := &http.Server{Addr: ":0", Handler: h, ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}
