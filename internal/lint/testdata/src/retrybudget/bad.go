package retrybudget

import (
	"net"
	"time"
)

func hammer(addr string) net.Conn {
	for { // want "retries a network operation with no attempt bound" "network loop retries without backoff"
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
	}
}

func busyPoll(ready func() bool) {
	for !ready() { // want "polls with no attempt bound"
		time.Sleep(10 * time.Millisecond)
	}
}

func boundedNoBackoff(addr string) {
	for i := 0; i < 5; i++ { // want "network loop retries without backoff"
		if c, err := net.Dial("tcp", addr); err == nil {
			c.Close()
			return
		}
	}
}

// dialOnce carries the network effect into its callers through the
// summary fixpoint.
func dialOnce(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

func viaHelper(addr string) {
	for { // want "retries a network operation with no attempt bound" "network loop retries without backoff"
		if dialOnce(addr) == nil {
			return
		}
	}
}
