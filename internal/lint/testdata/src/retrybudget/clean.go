package retrybudget

import (
	"context"
	"net"
	"time"
)

func boundedBackoff(addr string) net.Conn {
	for i := 0; i < 5; i++ {
		if c, err := net.Dial("tcp", addr); err == nil {
			return c
		}
		time.Sleep(time.Duration(i+1) * 100 * time.Millisecond)
	}
	return nil
}

func ctxPoll(ctx context.Context, addr string) net.Conn {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			if c, err := net.Dial("tcp", addr); err == nil {
				return c
			}
		}
	}
}

func errExit(ctx context.Context) {
	for ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
}

func attemptCounter(addr string) {
	attempts := 0
	for {
		attempts++
		if attempts > 10 {
			break
		}
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Loops that only block on channels are idle, not spinning; they are
// ctxflow's domain, not retrybudget's.
func channelLoop(ch chan int) int {
	total := 0
	for {
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// A literal defined in the loop runs on its own schedule; its network
// call is not this loop's per-iteration work.
func deferredWork(addr string) []func() error {
	var fns []func() error
	for i := 0; i < 3; i++ {
		fns = append(fns, func() error {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return err
			}
			return c.Close()
		})
	}
	return fns
}
