package boxing

import "fmt"

// Splat calls pass the already-boxed slice through unchanged.
func splat(args []any) {
	for i := 0; i < 3; i++ {
		fmt.Println(args...)
	}
}

// Constant operands box into compiler-interned static data.
func constants(n int) {
	for i := 0; i < n; i++ {
		fmt.Printf("%d %s\n", 42, "x")
	}
}

// Hoisted conversion: one box, reused each iteration.
func hoisted(xs []float64) int {
	n := 0
	v := any(len(xs))
	for range xs {
		n += variadic(v)
	}
	return n
}

// Strings and pointers do not heap-allocate on conversion (the
// analyzer's scope is numeric scalars and slices).
func stringsAndPointers(names []string, x *float64) {
	for _, s := range names {
		sink(s)
		sink(x)
	}
}

// Concretely-typed APIs are the recommended fix.
func concreteParam(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += double(x)
	}
	return t
}

func double(x float64) float64 { return 2 * x }

// Boxing outside any loop is a one-time cost.
func outsideLoop(x float64) any {
	return x
}
