package boxing

import "fmt"

func sink(v any)             {}
func pair(a, b interface{})  {}
func variadic(vs ...any) int { return len(vs) }

func interfaceParam(xs []float64) {
	for _, x := range xs {
		sink(x) // want ".x. \\(float64\\) is boxed into any per loop iteration"
	}
}

func variadicTail(xs []float64) {
	for i, x := range xs {
		fmt.Printf("%d %v\n", i, x) // want ".i. \\(int\\) is boxed into" ".x. \\(float64\\) is boxed into"
	}
}

func variadicBare(xs []float64) int {
	n := 0
	for _, x := range xs {
		n += variadic(x, x*2) // want ".x. \\(float64\\) is boxed into" "boxed into"
	}
	return n
}

func explicitConversion(xs []float64) []any {
	out := make([]any, 0, len(xs))
	for _, x := range xs {
		out = append(out, any(x)) // want "boxed into any per loop iteration"
	}
	return out
}

func assignBox(xs []float64) any {
	var v any
	for _, x := range xs {
		v = x // want "boxed into any per loop iteration"
	}
	return v
}

func declBox(xs []int) any {
	var last any
	for _, x := range xs {
		var v any = x // want ".x. \\(int\\) is boxed into"
		last = v
	}
	return last
}

func sliceBox(rows [][]float64) {
	for _, r := range rows {
		sink(r) // want ".r. \\(\\[\\]float64\\) is boxed into"
	}
}

func namedInterfaceParam(xs []float64) {
	for _, x := range xs {
		pair(x, 1.5) // want "boxed into"
	}
}
