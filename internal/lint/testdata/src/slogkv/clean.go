package slogkv

import "log/slog"

func cleanCalls(l *logger) {
	l.Info("m")
	l.Info("m", "a", 1)
	l.Info("m", "a", 1, "b", dynamicKey()) // values need not be constant

	const k = "stage"
	l.Info("m", k, "forecast") // named constants are compile-time keys

	// One slog.Attr consumes a single slot, mixed freely with pairs.
	l.Info("m", slog.Int("n", 1))
	l.Info("m", "a", 1, slog.String("s", "x"), "b", 2)
	slog.Info("m", "a", 1, slog.Duration("d", 0))

	wrap(l, "m", "a", 1, "b", 2) // wrapper call sites obey the same rules
}

// forward is the sanctioned wrapper shape: splatting its OWN trailing
// kv variadic is not a violation — forward's call sites are checked
// instead (and become kv-taking transitively, two hops deep).
func forward(l *logger, kv ...any) int {
	return wrap(l, "m", kv...)
}

func useForward(l *logger) {
	forward(l, "x", 1, "y", 2)
}
