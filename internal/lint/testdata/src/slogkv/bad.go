package slogkv

import "log/slog"

// logger mimics internal/telemetry's Logger convention: the trailing
// variadic named kv is the slogkv seed signature.
type logger struct{}

func (l *logger) Info(msg string, kv ...any) int {
	return len(kv)
}

// wrap forwards its own trailing ...any variadic into a kv-taking
// callee, so wrapper propagation makes it kv-taking too.
func wrap(l *logger, msg string, kv ...any) int {
	return l.Info(msg, kv...)
}

func badCalls(l *logger) {
	l.Info("m", "only-key")              // want "odd number of key/value arguments"
	l.Info("m", "a", 1, "b")             // want "odd number of key/value arguments"
	l.Info("m", "a", 1, "a", 2)          // want "duplicate kv key"
	l.Info("m", dynamicKey(), 1)         // want "compile-time string constant"
	l.Info("m", 42, "v")                 // want "compile-time string constant"
	wrap(l, "m", "a", 1, "a", 2)         // want "duplicate kv key"
	slog.Info("m", "x")                  // want "odd number of key/value arguments"
	slog.Warn("m", "k", 1, "k", 2)       // want "duplicate kv key"
	l.Info("m", slog.Int("n", 1), "odd") // want "odd number of key/value arguments"

	kvs := []any{"a", 1}
	l.Info("m", kvs...) // want "splatted from a slice"
}

// splatNotOwnParam splats a local slice, not its own kv variadic: the
// pairs cannot be validated at this call site or any other.
func splatNotOwnParam(l *logger, kv ...any) int {
	local := append([]any{"z", 9}, kv...)
	return l.Info("m", local...) // want "splatted from a slice"
}

func dynamicKey() string {
	return "runtime-key"
}
