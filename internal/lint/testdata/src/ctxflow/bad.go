package ctxflow

import (
	"context"
	"sync"
	"time"
)

func selectNoDone(ctx context.Context, ch chan int) {
	select { // want "select in a context-carrying function has no ctx.Done"
	case v := <-ch:
		use(v)
	}
}

func bareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want "channel send in a context-carrying function outside any select"
}

func bareRecv(ctx context.Context, ch chan int) {
	v := <-ch // want "channel receive in a context-carrying function outside any select"
	use(v)
}

func sleepy(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "time.Sleep in a context-carrying function ignores cancellation"
}

func waity(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want "WaitGroup.Wait in a context-carrying function whose extent never observes"
}

func ranger(ctx context.Context, ch chan int) {
	for v := range ch { // want "range over a channel that is never closed in this extent"
		use(v)
	}
}

func takesCtx(ctx context.Context) {}

func dropper(ctx context.Context) {
	takesCtx(context.Background()) // want "drops the live context by passing context.Background"
}

func leakyCancel(parent context.Context, b bool) {
	ctx, cancel := context.WithCancel(parent) // want "cancel function from this context.With call is not called"
	if b {
		cancel()
	}
	use2(ctx)
}

func timerLoop(ch chan int) {
	for range ch {
		<-time.After(time.Second) // want "time.After inside a loop allocates a timer every iteration"
	}
}

func use(int)              {}
func use2(context.Context) {}
