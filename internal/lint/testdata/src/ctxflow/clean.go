package ctxflow

import (
	"context"
	"sync"
	"time"
)

func selectsDone(ctx context.Context, ch chan int) {
	select {
	case v := <-ch:
		use(v)
	case <-ctx.Done():
	}
}

func selectDefault(ctx context.Context, ch chan int) {
	select {
	case v := <-ch:
		use(v)
	default:
	}
}

func sendSelect(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

// The producer's sends are drained by the range below; the range
// unblocks because the extent closes the channel.
func drainOwn(ctx context.Context) int {
	results := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			results <- i
		}
		close(results)
	}()
	sum := 0
	for v := range results {
		sum += v
	}
	return sum
}

func timedWait(ctx context.Context) {
	select {
	case <-time.After(time.Millisecond):
	case <-ctx.Done():
	}
}

// The extent consults ctx.Err, so the workers it waits for are
// cancellation-aware by convention.
func waitsChecked(ctx context.Context, wg *sync.WaitGroup) {
	if ctx.Err() != nil {
		return
	}
	wg.Wait()
}

func deferredCancel(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	use2(ctx)
	return nil
}

// Returning the cancel hands the obligation to the caller.
func handsOnward(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}

func propagates(ctx context.Context) {
	takesCtx(ctx)
}

func timerOnce(ch chan int) {
	<-time.After(time.Millisecond)
	use(<-ch)
}
