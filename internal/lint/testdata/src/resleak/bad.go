package resleak

import (
	"fmt"
	"os"
	"time"
)

func leakPlain() error {
	f, err := os.Create("out.txt") // want "may not be released on every path"
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "hi")
	return nil
}

func leakBranch(flag bool) {
	tk := time.NewTicker(time.Second) // want "may not be released on every path"
	if flag {
		tk.Stop()
	}
}

func fallsOff(d time.Duration) {
	tm := time.NewTimer(d) // want "may not be released on every path"
	<-tm.C
}

func overwriteLoop() {
	var f *os.File
	var err error
	for i := 0; i < 3; i++ {
		f, err = os.Create("x") // want "overwrites a handle"
		if err != nil {
			continue
		}
	}
	if f != nil {
		f.Close()
	}
}

// report only reads the handle, so passing the file to it does not
// discharge the obligation.
func report(f *os.File) {
	fmt.Println(f.Name())
}

func helperNoRelease() error {
	f, err := os.Create("tmp") // want "may not be released on every path"
	if err != nil {
		return err
	}
	report(f)
	return nil
}
