package resleak

import (
	"fmt"
	"os"
	"time"
)

func deferred() error {
	f, err := os.Create("out2.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "data")
	return nil
}

func stopped() {
	tk := time.NewTicker(time.Second)
	<-tk.C
	tk.Stop()
}

func handedBack() (*os.File, error) {
	return os.Open("in.txt") // never assigned: ownership is the caller's
}

func returned() (*os.File, error) {
	f, err := os.Open("in2.txt")
	if err != nil {
		return nil, err
	}
	return f, nil // bare mention: transferred to the caller
}

// closeAll provably releases its parameter (EffReleases), so passing
// the handle to it transfers the obligation.
func closeAll(f *os.File) {
	f.Close()
}

func viaHelper() error {
	f, err := os.Create("tmp2")
	if err != nil {
		return err
	}
	closeAll(f)
	return nil
}

func captured(d time.Duration) {
	tk := time.NewTicker(d)
	go func() {
		defer tk.Stop()
		<-tk.C
	}()
}
