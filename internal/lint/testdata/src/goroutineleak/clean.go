package goroutineleak

import "sync"

func drained(work []int) int {
	results := make(chan int)
	go func() {
		total := 0
		for _, w := range work {
			total += w
		}
		results <- total
	}()
	return <-results
}

func withWaitGroup(n int) int {
	var wg sync.WaitGroup
	results := make(chan int, 8)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			results <- v
		}(i)
	}
	wg.Wait()
	close(results)
	sum := 0
	for r := range results {
		sum += r
	}
	return sum
}

// A producer goroutine closing the channel it feeds is the standard
// pipeline pattern; the consumer range is the release.
func pipeline(work []int) int {
	jobs := make(chan int)
	go func() {
		for _, w := range work {
			jobs <- w
		}
		close(jobs)
	}()
	sum := 0
	for j := range jobs {
		sum += j
	}
	return sum
}

// A select with an escape case cannot block forever.
func selectEscape() {
	ticks := make(chan int)
	quit := make(chan struct{})
	go func() {
		for {
			select {
			case ticks <- 1:
			case <-quit:
				return
			}
		}
	}()
	close(quit)
}

// Deferred drains run on every exit path.
func deferredDrain(flag bool) int {
	done := make(chan int, 1)
	go func() {
		done <- 1
	}()
	defer drain(done)
	if flag {
		return 0
	}
	return 1
}

func drain(c chan int) {
	<-c
}
