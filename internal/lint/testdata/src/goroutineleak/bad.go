package goroutineleak

func leakySend(work []int) int {
	results := make(chan int)
	go func() { // want "does not drain"
		total := 0
		for _, w := range work {
			total += w
		}
		results <- total
	}()
	if len(work) == 0 {
		return 0 // early return: the goroutine is stranded forever
	}
	return <-results
}

func leakyReceive() {
	ready := make(chan struct{})
	go func() { // want "blocks forever"
		<-ready
	}()
}

func leakyParamSend(flag bool) int {
	out := make(chan int)
	go func(c chan<- int) { // want "does not drain"
		c <- 42
	}(out)
	if flag {
		return 0
	}
	return <-out
}
