package errdrop

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fail() error        { return nil }
func pair() (int, error) { return 0, nil }

func bad() {
	fail()         // want "call discards its error result"
	_ = fail()     // want "blank identifier"
	v, _ := pair() // want "blank identifier"
	_ = v
	f, _ := os.Open("x") // want "blank identifier"
	defer f.Close()      // want "deferred call discards its error result"
	go fail()            // want "goroutine call discards its error result"
}

func good() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := pair()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString("ok") // never fails: allowlisted
	var sb strings.Builder
	sb.WriteByte('x') // never fails: allowlisted
	fmt.Println(buf.String(), sb.String(), v)
	n, _ := fmt.Println("best-effort stdout") // allowlisted blank
	_ = n
	//esselint:allow errdrop best-effort cleanup, failure is benign here
	fail()
	return nil
}
