package statefsm

// Directive-declared job lifecycle exercised only along declared arcs,
// plus the shapes the analysis deliberately refuses to guess about.

//esselint:fsm jobNew->jobRun, jobRun->jobOK, jobRun->jobBad, jobBad->jobNew
type jobState int

const (
	jobNew jobState = iota
	jobRun
	jobOK
	jobBad
)

func advance() {
	s := jobNew
	s = jobRun // declared
	s = jobOK  // declared
	_ = s
}

func retryArc(s jobState) jobState {
	if s == jobBad {
		s = jobNew // declared
	}
	return s
}

func selfStore() {
	s := jobRun
	s = jobRun // self-stores are construction-idempotent, exempt
	_ = s
}

func unknownPrior(s jobState) {
	s = jobBad // prior state unproven: not checked
	_ = s
}

func throughPointer() {
	s := jobOK
	p := &s
	*p = jobNew // s is address-taken: never tracked
	_ = s
	_ = p
}

func captured() {
	s := jobNew
	f := func() { s = jobOK }
	f()
	s = jobRun // s is closure-captured: never tracked
	_ = s
}

type machine struct {
	state jobState
}

func (m machine) poke() {}

func callKills() {
	m := machine{state: jobOK}
	m.poke()
	m.state = jobNew // the call may mutate m: fact dropped, not checked
	_ = m
}

func fallThrough(s jobState) jobState {
	switch s {
	case jobOK:
		fallthrough
	case jobBad:
		s = jobNew // fallthrough forfeits clause refinement: not checked
	}
	return s
}

// A transitions map alone declares the table.
var gearTransitions = map[gear][]gear{
	gearLow:  {gearHigh},
	gearHigh: {gearLow},
}

type gear int

const (
	gearLow gear = iota
	gearHigh
)

func shift() {
	g := gearLow
	g = gearHigh // declared by the map
	g = gearLow  // declared by the map
	_ = g
}
