package statefsm

// Lease lifecycle declared by directive; leaseDone has no successors,
// so it is terminal.

//esselint:fsm leasePending->leaseActive, leaseActive->leaseExpired, leaseActive->leaseDone, leaseExpired->leasePending
type leaseState int

const (
	leasePending leaseState = iota
	leaseActive
	leaseExpired
	leaseDone
)

type lease struct {
	state leaseState
}

func regress() {
	s := leaseActive
	s = leasePending // want "undeclared lifecycle transition leaseActive -> leasePending"
	_ = s
}

func revive() {
	s := leaseDone
	s = leasePending // want "moves leaseState out of terminal state leaseDone"
	_ = s
}

func zeroStart() {
	var s leaseState
	s = leaseExpired // want "undeclared lifecycle transition leasePending -> leaseExpired"
	_ = s
}

func caseRefined(s leaseState) leaseState {
	switch s {
	case leasePending:
		s = leaseExpired // want "undeclared lifecycle transition leasePending -> leaseExpired"
	case leaseActive:
		s = leaseExpired // declared: fine
	}
	return s
}

func condRefined(s leaseState) leaseState {
	if s == leaseExpired {
		s = leaseDone // want "undeclared lifecycle transition leaseExpired -> leaseDone"
	}
	return s
}

func literalField() {
	l := lease{state: leaseActive}
	l.state = leasePending // want "undeclared lifecycle transition leaseActive -> leasePending"
	_ = l
}

// Table-level problems are reported at the directive: opMissing is not
// a member, and opStale is never wired into the table.

//esselint:fsm opOpen->opClosed, opOpen->opMissing // want "unknown state .opMissing." "never mentions member opStale"
type opState int

const (
	opOpen opState = iota
	opClosed
	opStale
)

// phC appears in the table but no declared arc can reach it from the
// initial state.

//esselint:fsm phA->phB, phC->phB // want "state phC in the fsm table for phase is unreachable"
type phase int

const (
	phA phase = iota
	phB
	phC
)

// A runtime transitions map that drifts from the directive is flagged
// where the map is declared.

//esselint:fsm modeOff->modeOn, modeOn->modeOff
type mode int

const (
	modeOff mode = iota
	modeOn
)

var modeTransitions = map[mode][]mode{ // want "disagrees with its //esselint:fsm directive"
	modeOff: {modeOn},
}
