// Package interproc is the call-graph unit-test fixture: a small
// function zoo with a linear chain, a mutually recursive pair, a
// self-recursive function, and one representative of each effect.
package interproc

import "fmt"

func Leaf() int { return 1 }

func Mid() int { return Leaf() + 1 }

func TopFn() int { return Mid() + Leaf() }

func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

func SelfRec(n int) int {
	if n <= 0 {
		return 0
	}
	return SelfRec(n - 1)
}

func Emits() { fmt.Println("x") }

func CallsEmits() { Emits() }

func Spawns(done chan int) {
	go func() { done <- 1 }()
}

func Blocks(ch chan int) int { return <-ch }

func CallsBlocks(ch chan int) int { return Blocks(ch) }

func RangesMap(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func Allocates(n int) []int { return make([]int, n) }

func CallsAllocates(n int) int { return len(Allocates(n)) }

// Mutually recursive pair where only one side allocates directly: the
// SCC fixpoint must hand the bit to both.
func AllocEven(n int) []int {
	buf := make([]int, 1)
	if n == 0 {
		return buf
	}
	return AllocOdd(n - 1)
}

func AllocOdd(n int) []int {
	if n == 0 {
		return nil
	}
	return AllocEven(n - 1)
}

var sharedBuf []int

// LazyAlloc's only allocation is amortized behind a nil guard.
func LazyAlloc(n int) []int {
	if sharedBuf == nil {
		sharedBuf = make([]int, n)
	}
	return sharedBuf
}

func CallsLazyAlloc(n int) int { return len(LazyAlloc(n)) }

// GuardedCall invokes an allocating callee only under a lazy-init
// guard, so the callee's bit must not cross the edge.
func GuardedCall(n int) int {
	if sharedBuf == nil {
		sharedBuf = Allocates(n)
	}
	return len(sharedBuf)
}
