package metriclabels

// counter mimics internal/telemetry's registration convention: the
// trailing variadic named labelKV is the metriclabels seed signature.
func counter(name, help string, labelKV ...string) int {
	return len(labelKV)
}

// wrap forwards its own trailing ...string variadic into counter's
// label position, so wrapper propagation makes it label-taking too.
func wrap(name string, kv ...string) int {
	return counter(name, "help", kv...)
}

func badCalls() {
	counter("m", "h", "b", "1", "a", "2")     // want "label keys unsorted"
	counter("m", "h", "a", "1", "a", "2")     // want "duplicate label key"
	counter("m", "h", "a")                    // want "odd number of label arguments"
	counter("m", "h", "outcome", "done", "a") // want "odd number of label arguments"

	k := dynamicKey()
	counter("m", "h", k, "1") // want "compile-time string constant"

	wrap("m", "b", "1", "a", "2") // want "label keys unsorted"

	kv := []string{"a", "1"}
	counter("m", "h", kv...) // want "splatted from a slice"
}

// splatNotOwnParam splats a local slice, not its own label variadic:
// the labels cannot be validated at this call site or any other.
func splatNotOwnParam(name string, kv ...string) int {
	local := append([]string{"z", "9"}, kv...)
	return counter(name, "h", local...) // want "splatted from a slice"
}

func dynamicKey() string {
	return "runtime-key"
}
