package metriclabels

func cleanCalls() {
	counter("m", "h")
	counter("m", "h", "outcome", "done")
	counter("m", "h", "a", "1", "b", "2")
	counter("m", "h", "a", dynamicKey(), "b", "2") // values need not be constant

	const k = "stage"
	counter("m", "h", k, "forecast") // named constants are compile-time keys

	wrap("m", "a", "1", "b", "2") // wrapper call sites obey the same rules
}

// forward is the sanctioned wrapper shape: splatting its OWN trailing
// label variadic is not a violation — forward's call sites are checked
// instead (and become label-taking transitively, two hops deep).
func forward(name string, kv ...string) int {
	return wrap(name, kv...)
}

func useForward() {
	forward("m", "x", "1", "y", "2")
}
