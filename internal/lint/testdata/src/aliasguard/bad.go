package aliasguard

import "esse/internal/linalg"

func badOuter(m *linalg.Dense, x []float64) {
	linalg.OuterAdd(m, 1.0, m.Row(0), x) // want "may alias"
}

func badSetCol(u *linalg.Dense, j int) {
	u.SetCol(j, u.Row(j)) // want "may alias"
}

func badCol(u *linalg.Dense) {
	u.Col(u.Row(0), 1) // want "may alias"
}
