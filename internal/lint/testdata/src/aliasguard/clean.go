package aliasguard

import "esse/internal/linalg"

func okOuter(m *linalg.Dense, x, y []float64) {
	linalg.OuterAdd(m, 0.5, x, y)
}

func okSetCol(u, v *linalg.Dense, j int) {
	u.SetCol(j, v.Row(j))
}

type pair struct{ a, b *linalg.Dense }

// Distinct fields of the same struct share a root variable but do not
// alias; the check requires one side to be the bare root.
func okDistinctFields(p *pair, buf []float64) {
	p.a.SetCol(0, buf)
	p.b.Col(buf, 0)
}
