package shapecheck

import "esse/internal/linalg"

func badMul() *linalg.Dense {
	a := linalg.NewDense(3, 4)
	b := linalg.NewDense(3, 5)
	return linalg.Mul(a, b) // want "inner dimensions provably mismatch \\(4 vs 3\\)"
}

func badTranspose() *linalg.Dense {
	a := linalg.NewDense(3, 4)
	b := linalg.NewDense(3, 5)
	// b.T() is 5x3: the transpose moves the mismatch to the inner pair.
	return linalg.Mul(a, b.T()) // want "inner dimensions provably mismatch \\(4 vs 5\\)"
}

func badMulTA() *linalg.Dense {
	a := linalg.NewDense(6, 2)
	b := linalg.NewDense(7, 2)
	return linalg.MulTA(a, b) // want "row counts provably mismatch \\(6 vs 7\\)"
}

func badMatVec() []float64 {
	a := linalg.NewDense(3, 4)
	x := make([]float64, 3)
	return linalg.MatVec(a, x) // want "cols vs vector length provably mismatch \\(4 vs 3\\)"
}

func badVecAdd() []float64 {
	x := []float64{1, 2, 3}
	y := make([]float64, 4)
	return linalg.VecAdd(x, y) // want "vector lengths provably mismatch \\(3 vs 4\\)"
}

func badAppendCols() *linalg.Dense {
	a := linalg.NewDense(3, 2)
	b := linalg.NewDense(4, 2)
	return a.AppendCols(b) // want "row counts provably mismatch \\(3 vs 4\\)"
}

func badSolveInto(f *linalg.LUFactors) {
	x := make([]float64, 3)
	b := make([]float64, 4)
	f.SolveInto(x, b) // want "solution and rhs lengths provably mismatch \\(3 vs 4\\)"
}

func badCopyFrom() {
	dst := linalg.NewDense(3, 3)
	src := linalg.NewDense(3, 5)
	dst.CopyFrom(src) // want "column counts provably mismatch \\(3 vs 5\\)"
}

// badRefined only becomes provable through the == guard: the analyzer
// learns n == 4 on the true edge and resolves the symbolic dimension.
func badRefined(n int) *linalg.Dense {
	a := linalg.NewDense(n, n)
	if n == 4 {
		b := linalg.NewDense(3, 2)
		return linalg.Mul(a, b) // want "inner dimensions provably mismatch \\(4 vs 3\\)"
	}
	return a
}

// basis8 has a constant summary, so the mismatch surfaces at the
// call site through Program.DimSummaries.
func basis8() *linalg.Dense {
	return linalg.NewDense(8, 5)
}

func badSummaryResult() *linalg.Dense {
	a := basis8()
	b := linalg.NewDense(7, 2)
	return linalg.Mul(a, b) // want "inner dimensions provably mismatch \\(5 vs 7\\)"
}

// project propagates Mul's conformance requirement into its summary;
// the violation is reported at the caller, not inside project.
func project(a, b *linalg.Dense) *linalg.Dense {
	return linalg.Mul(a, b)
}

func badSummaryRequire() *linalg.Dense {
	return project(linalg.NewDense(3, 4), linalg.NewDense(5, 6)) // want "call to project: required dimensions provably mismatch \\(4 vs 5\\)"
}

func suppressed() *linalg.Dense {
	a := linalg.NewDense(3, 4)
	b := linalg.NewDense(3, 5)
	//esselint:allow shapecheck fixture exercises suppression plumbing
	return linalg.Mul(a, b)
}
