package shapecheck

import "esse/internal/linalg"

// Conformant constant shapes stay silent.
func cleanMul() *linalg.Dense {
	a := linalg.NewDense(3, 4)
	b := linalg.NewDense(4, 5)
	return linalg.Mul(a, b)
}

// Symbolic shapes without a provable contradiction stay silent even
// when they might disagree at runtime: the analyzer only reports when
// both sides resolve to distinct integer constants.
func cleanSymbolic(n, p int) *linalg.Dense {
	a := linalg.NewDense(n, p)
	b := linalg.NewDense(p, n)
	return linalg.Mul(a, b)
}

func cleanUnknown(a, b *linalg.Dense) *linalg.Dense {
	return linalg.Mul(a, b)
}

// A transpose that fixes conformance is recognized.
func cleanTranspose() *linalg.Dense {
	a := linalg.NewDense(3, 4)
	b := linalg.NewDense(3, 5)
	return linalg.Mul(a.T(), b) // 4x3 * 3x5
}

// Slice arithmetic: both halves of a 6x4 matrix are 3x4.
func cleanSlice() *linalg.Dense {
	a := linalg.NewDense(6, 4)
	top := a.Slice(0, 3, 0, 4)
	bot := a.Slice(3, 6, 0, 4)
	return linalg.Add(top, bot)
}

// AppendCols widens: 3x2 ++ 3x3 = 3x5, conformant with a 5-row factor.
func cleanAppendCols() *linalg.Dense {
	a := linalg.NewDense(3, 2)
	b := linalg.NewDense(3, 3)
	wide := a.AppendCols(b)
	return linalg.Mul(wide, linalg.NewDense(5, 2))
}

// Guard-driven equality: after the runtime check the symbolic pair is
// known equal, matching the checkSameShape convention in linalg itself.
func cleanGuarded(a, b *linalg.Dense) *linalg.Dense {
	if a.Cols != b.Rows {
		panic("shape")
	}
	return linalg.Mul(a, b)
}

// Reassignment kills the old shape instead of reporting stale facts.
func cleanReassign() *linalg.Dense {
	a := linalg.NewDense(3, 4)
	a = linalg.NewDense(5, 2)
	return linalg.Mul(linalg.NewDense(1, 5), a)
}

// Helper summaries propagate shapes that conform at the caller.
func anomaly(x, y []float64) *linalg.Dense {
	m := linalg.NewDense(len(x), len(y))
	linalg.OuterAdd(m, 1.0, x, y)
	return m
}

func cleanSummary() []float64 {
	x := make([]float64, 6)
	y := make([]float64, 2)
	m := anomaly(x, y) // 6x2
	return linalg.MatTVec(m, x)
}
