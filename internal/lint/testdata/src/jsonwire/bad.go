package jsonwire

import "encoding/json"

// roundTrip forwards v to both json sinks; the analyzer's wrapper
// fixpoint makes every call site below a marshal+unmarshal site.
func roundTrip(v any) {
	b, _ := json.Marshal(v)
	_ = json.Unmarshal(b, v)
}

// Dropped loses state silently: the unexported field never crosses.
type Dropped struct {
	ID   int    `json:"id"`
	note string // want "unexported field note of wire type Dropped is silently dropped"
}

// Inner only reaches the wire nested inside Outer — the closure over
// the type structure must still check it.
type Outer struct {
	In Inner `json:"in"`
}

type Inner struct {
	secret int // want "unexported field secret of wire type Inner is silently dropped"
}

// Collide fights over input keys.
type Collide struct {
	A int `json:"v"`
	B int `json:"v"` // want "duplicate json tag"
	C int `json:"V"` // want "collide case-insensitively"
}

// Unserial makes json.Marshal fail at runtime.
type Unserial struct {
	Ch chan int   `json:"ch"` // want "contains a chan value"
	Fn func()     `json:"fn"` // want "contains a func value"
	Z  complex128 `json:"z"`  // want "contains a complex value"
}

// Loose has no schema.
type Loose struct {
	Payload any `json:"payload"` // want "bare interface"
}

// Hot carries an unguarded float: NaN/Inf kills Marshal at runtime.
type Hot struct {
	Rho float64 `json:"rho"` // want "not provably NaN/Inf-free"
}

// OneWayOut is marshalled below but decoded nowhere in the package.
type OneWayOut struct { // want "marshalled .* but never unmarshalled"
	N int `json:"n"`
}

// OneWayIn is decoded below but never produced.
type OneWayIn struct { // want "unmarshalled .* but never marshalled"
	N int `json:"n"`
}

func useAll() {
	roundTrip(&Dropped{})
	roundTrip(&Outer{})
	roundTrip(&Collide{})
	roundTrip(&Unserial{})
	roundTrip(&Loose{})
	roundTrip(&Hot{})
	_, _ = json.Marshal(OneWayOut{})
	var in OneWayIn
	_ = json.Unmarshal(nil, &in)
}
