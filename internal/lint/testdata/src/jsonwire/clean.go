package jsonwire

import (
	"encoding/json"
	"errors"
	"math"
)

// cleanShim is unexported: one-way codec shims for external formats
// are exempt from the asymmetry check.
type cleanShim struct {
	N int `json:"n"`
}

func emitShim() ([]byte, error) { return json.Marshal(cleanShim{N: 1}) }

// Guarded round-trips and finite-checks its float fields: Rho directly,
// Scale through the finite helper (exercising the checker fixpoint).
// The tagged-dash fields never cross the wire, so neither the
// unexported name nor the chan type is a finding.
type Guarded struct {
	Rho    float64  `json:"rho"`
	Scale  float64  `json:"scale"`
	hidden int      `json:"-"`
	Skip   chan int `json:"-"`
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func (g *Guarded) validate() error {
	if math.IsNaN(g.Rho) || math.IsInf(g.Rho, 0) {
		return errors.New("rho not finite")
	}
	if !finite(g.Scale) {
		return errors.New("scale not finite")
	}
	return nil
}

func guardedTrip(g *Guarded) error {
	if err := g.validate(); err != nil {
		return err
	}
	b, err := json.Marshal(g)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, g)
}

// Stamp owns its wire form: a custom codec in both used directions
// skips the field checks, so the unexported field is fine.
type Stamp struct {
	unix int64
}

func (s Stamp) MarshalJSON() ([]byte, error) { return json.Marshal(s.unix) }

func (s *Stamp) UnmarshalJSON(b []byte) error { return json.Unmarshal(b, &s.unix) }

func stampTrip(s *Stamp) { roundTrip(s) }

// Bystander never reaches a json sink: nothing here is checked.
type Bystander struct {
	note string
	ch   chan int
	rho  float64
}

func keep(b Bystander) Bystander { return b }
