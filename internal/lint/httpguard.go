package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HTTPGuard (DESIGN §7 rule 18) enforces the HTTP hygiene a retrying
// task-lease protocol lives or dies by:
//
//   - every *http.Response obtained in a function must have its Body
//     closed on every path out of the function — a CFG may-analysis on
//     the shared forward solver, defer-aware and error-branch aware
//     (the `if err != nil` arm kills the fact: there is no body to
//     close), with returning/storing/passing the whole response (or
//     capturing it in a closure) counting as handing ownership onward;
//     overwriting a still-live response variable (the retry-loop leak)
//     is flagged at the overwrite;
//   - the response body must not be read or decoded before the status
//     code is checked on that path: an error page decoded as payload
//     is the classic silent corruption of a scrape loop (Close and the
//     status-mention itself are exempt; the check composes through the
//     dataflow meet, so a check on one branch does not bless the
//     other);
//   - http.Client composite literals must set Timeout (or the
//     enclosing function must build its requests with
//     http.NewRequestWithContext, which carries cancellation
//     instead); referencing http.DefaultClient is flagged outright —
//     storing the shared zero-timeout client in a long-lived struct is
//     exactly how one hung peer blocks a fleet — and the package-level
//     http.Get/Post/PostForm/Head sugar (which uses it) is flagged
//     inside loops and inside ctx-taking functions;
//   - http.Server composite literals must set ReadHeaderTimeout (the
//     slowloris guard), and the ListenAndServe package functions are
//     flagged outright: they construct an unbounded Server with no
//     Shutdown handle.
//
// Soundness gaps, stated plainly: responses reaching a function as
// parameters or through struct fields are the caller's/owner's to
// close (no interprocedural ownership transfer is tracked); a client
// stored in a struct and used elsewhere is checked only at its
// literal; the status-before-read check keys on syntactic mention of
// StatusCode/Status, not on what the comparison does with it.
var HTTPGuard = &Analyzer{
	Name:  "httpguard",
	Doc:   "prove http.Response bodies closed on all paths, status checked before reads, clients carry timeouts or contexts, servers bound header reads",
	Scope: underInternalOrCmd,
	Run:   runHTTPGuard,
}

func runHTTPGuard(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, fn := range funcNodesWithin(fd) {
				checkRespPaths(pass, fn)
			}
			checkClientServerLiterals(pass, fd)
		}
	}
	return nil
}

// --- response-body dataflow ------------------------------------------------

// respInfo is the fact for one live (possibly unclosed) response.
type respInfo struct {
	pos token.Pos // the call that produced the response
	// errVar is the error assigned alongside the response; the
	// `err != nil` branch kills the fact (no body exists on it).
	errVar *types.Var
	// statusChecked records a StatusCode/Status mention on every path
	// into the current point (AND at meets).
	statusChecked bool
	// closed records a Body.Close on every path (AND at meets). The
	// fact stays live so the status-before-read check keeps working
	// after a `defer resp.Body.Close()`.
	closed bool
}

// respFact maps live response variables to their facts; nil is Top.
type respFact map[*types.Var]respInfo

func (f respFact) clone() respFact {
	m := make(respFact, len(f))
	for k, v := range f {
		m[k] = v
	}
	return m
}

type respFlow struct {
	info *types.Info
}

func (rf *respFlow) Boundary() Fact { return respFact{} }
func (rf *respFlow) Top() Fact      { return respFact(nil) }

func (rf *respFlow) Transfer(b *Block, in Fact) Fact {
	st, _ := in.(respFact)
	if st == nil {
		return respFact(nil)
	}
	out := st.clone()
	for _, n := range b.Nodes {
		replayResp(rf.info, n, out, nil)
	}
	return out
}

// FlowEdge kills a response fact along the branch that proves no body
// exists: for the paired error variable, the arm where it is (or may
// be) non-nil; for the response variable itself, the arm where it is
// nil. The two are mirror images of the same nil test.
func (rf *respFlow) FlowEdge(e *Edge, out Fact) Fact {
	st, _ := out.(respFact)
	if st == nil || e.Cond == nil {
		return out
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	var idExpr, other ast.Expr = bin.X, bin.Y
	if isNilIdent(rf.info, idExpr) {
		idExpr, other = other, idExpr
	}
	if !isNilIdent(rf.info, other) {
		return out
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return out
	}
	v, ok := rf.info.Uses[id].(*types.Var)
	if !ok {
		return out
	}
	// v != nil taken, or v == nil not taken → v is non-nil on e.
	nonNil := (bin.Op == token.NEQ && e.Branch) || (bin.Op == token.EQL && !e.Branch)
	var filtered respFact
	for rv, inf := range st {
		// Error non-nil → no response; response nil → no body.
		if (inf.errVar == v && nonNil) || (rv == v && !nonNil) {
			if filtered == nil {
				filtered = st.clone()
			}
			delete(filtered, rv)
		}
	}
	if filtered == nil {
		return out
	}
	return filtered
}

// Meet unions the live responses; a response live on both arms is
// status-checked only if both arms checked it.
func (rf *respFlow) Meet(a, b Fact) Fact {
	sa, _ := a.(respFact)
	sb, _ := b.(respFact)
	if sa == nil {
		return sb
	}
	if sb == nil {
		return sa
	}
	m := sa.clone()
	for k, v := range sb {
		if prev, ok := m[k]; ok {
			v.statusChecked = v.statusChecked && prev.statusChecked
			v.closed = v.closed && prev.closed
			if prev.pos < v.pos {
				v.pos = prev.pos
			}
		}
		m[k] = v
	}
	return m
}

func (rf *respFlow) Equal(a, b Fact) bool {
	sa, _ := a.(respFact)
	sb, _ := b.(respFact)
	if (sa == nil) != (sb == nil) || len(sa) != len(sb) {
		return false
	}
	for k, v := range sa {
		w, ok := sb[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}

// respReporter receives mid-replay findings during the reporting pass.
type respReporter struct {
	// earlyRead fires when a body is read before a status check.
	earlyRead func(readPos token.Pos, inf respInfo)
	// overwrite fires when a gen overwrites a still-live fact.
	overwrite func(genPos token.Pos, prev respInfo)
	// atReturn fires at each ReturnStmt with the then-live facts.
	atReturn func(st respFact)
}

// isHTTPRespPtr reports whether t is *net/http.Response.
func isHTTPRespPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// trackedVar resolves e to a live response variable in st, or nil.
func trackedVar(info *types.Info, st respFact, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, live := st[v]; !live {
		return nil
	}
	return v
}

// replayResp pushes one block node through the response fact map.
// Kill rules: Body.Close (plain or deferred) closes; a bare mention of
// the response outside a selector (return, argument, assignment,
// composite literal) hands ownership onward; capture by a function
// literal does the same. Reading Body any other way is not a kill —
// and fires earlyRead if no status check dominates. Assignments whose
// RHS call returns a *http.Response gen a fact (after reporting an
// overwrite of any still-live one).
func replayResp(info *types.Info, n ast.Node, st respFact, rep *respReporter) {
	// Gen detection first, so its LHS idents are excluded from the
	// kill walk (they are overwritten, not read).
	var genVar *types.Var
	var genErr *types.Var
	var genPos token.Pos
	genLHS := map[*ast.Ident]bool{}
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if d, ok := info.Defs[id].(*types.Var); ok {
					v = d
				} else if u, ok := info.Uses[id].(*types.Var); ok {
					v = u
				}
				if v == nil {
					continue
				}
				if isHTTPRespPtr(v.Type()) {
					genVar, genPos = v, call.Pos()
					genLHS[id] = true
				} else if i > 0 && types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
					genErr = v
					genLHS[id] = true
				}
			}
		}
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			// Capture hands ownership onward: the literal (a deferred
			// cleanup, a spawned reader) is now responsible.
			ast.Inspect(v, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if uv, ok := info.Uses[id].(*types.Var); ok {
						delete(st, uv)
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			// resp.Body.Close(): mark closed but keep the fact live, so
			// a read after `defer resp.Body.Close()` still needs the
			// status check.
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if bodySel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && bodySel.Sel.Name == "Body" {
					if rv := trackedVar(info, st, bodySel.X); rv != nil {
						inf := st[rv]
						inf.closed = true
						st[rv] = inf
						return false
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			rv := trackedVar(info, st, v.X)
			if rv == nil {
				return true // keep walking: v.X may contain a deeper mention
			}
			switch v.Sel.Name {
			case "StatusCode", "Status":
				inf := st[rv]
				inf.statusChecked = true
				st[rv] = inf
			case "Body":
				if inf := st[rv]; !inf.statusChecked && rep != nil && rep.earlyRead != nil {
					rep.earlyRead(v.Pos(), inf)
				}
			}
			return false // selector on resp is never a bare escape
		case *ast.Ident:
			if genLHS[v] {
				return true
			}
			if uv, ok := info.Uses[v].(*types.Var); ok {
				if _, live := st[uv]; live {
					delete(st, uv) // escaped whole: ownership handed onward
				}
			}
			return true
		}
		return true
	})

	if genVar != nil {
		if prev, live := st[genVar]; live && !prev.closed && rep != nil && rep.overwrite != nil {
			rep.overwrite(genPos, prev)
		}
		st[genVar] = respInfo{pos: genPos, errVar: genErr}
	}
	if _, ok := n.(*ast.ReturnStmt); ok && rep != nil && rep.atReturn != nil {
		rep.atReturn(st.clone())
	}
}

// checkRespPaths solves the response dataflow over fn and reports
// bodies not closed on some path, reads before status checks, and
// live-fact overwrites.
func checkRespPaths(pass *Pass, fn ast.Node) {
	if funcBody(fn) == nil {
		return
	}
	cfg := BuildCFG(fn)
	res := Forward(cfg, &respFlow{info: pass.Info})

	flaggedLeak := map[token.Pos]bool{}
	flagLeaks := func(st respFact) {
		for _, inf := range st {
			if !inf.closed && !flaggedLeak[inf.pos] {
				flaggedLeak[inf.pos] = true
				pass.Reportf(inf.pos, "response body from this call may not be closed on every path out of the function; "+
					"defer resp.Body.Close() after the error check, or hand the response onward explicitly")
			}
		}
	}
	flaggedRead := map[token.Pos]bool{}
	flaggedOver := map[token.Pos]bool{}
	rep := &respReporter{
		earlyRead: func(readPos token.Pos, inf respInfo) {
			if !flaggedRead[readPos] {
				flaggedRead[readPos] = true
				pass.Reportf(readPos, "response body is read before the status code is checked on this path; "+
					"an error page decoded as payload corrupts silently — check resp.StatusCode first")
			}
		},
		overwrite: func(genPos token.Pos, prev respInfo) {
			if !flaggedOver[genPos] {
				flaggedOver[genPos] = true
				pass.Reportf(genPos, "this assignment overwrites a response whose body may still be open (from the call at %s); "+
					"close the previous body before retrying", pass.Fset.Position(prev.pos))
			}
		},
		atReturn: flagLeaks,
	}
	for _, b := range cfg.Blocks {
		in, _ := res.In[b].(respFact)
		if in == nil {
			continue
		}
		st := in.clone()
		for _, n := range b.Nodes {
			replayResp(pass.Info, n, st, rep)
		}
	}
	// Fall-off-the-end paths, as in checkCancelPaths.
	for _, e := range cfg.Exit.Preds {
		b := e.From
		if len(b.Nodes) > 0 {
			last := b.Nodes[len(b.Nodes)-1]
			if _, isRet := last.(*ast.ReturnStmt); isRet {
				continue
			}
			if es, isExpr := last.(*ast.ExprStmt); isExpr && isTerminatingCall(es.X) {
				continue
			}
		}
		if out, _ := res.Out[b].(respFact); out != nil {
			flagLeaks(out)
		}
	}
}

// --- client and server discipline ------------------------------------------

// checkClientServerLiterals walks one declaration for http.Client and
// http.Server composite literals, http.DefaultClient references, and
// the package-level request/serve sugar.
func checkClientServerLiterals(pass *Pass, fd *ast.FuncDecl) {
	hasCtxReq := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := StaticCallee(pass.Info, call); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "net/http" && obj.Name() == "NewRequestWithContext" {
				hasCtxReq = true
			}
		}
		return true
	})
	ctxTaking := hasCtxParam(pass.Info, fd.Type)
	if !ctxTaking && pass.Prog != nil {
		if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			_, ctxTaking = pass.Prog.CtxParam[obj.FullName()]
		}
	}

	var loops [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, r := range loops {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			named := litNamed(pass.Info, v)
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "net/http" {
				return true
			}
			switch named.Obj().Name() {
			case "Client":
				if !litSetsField(v, "Timeout") && !hasCtxReq {
					pass.Reportf(v.Pos(), "http.Client literal sets no Timeout and the function builds no request with NewRequestWithContext; "+
						"one hung peer blocks this client forever — set Timeout or carry a context")
				}
			case "Server":
				if !litSetsField(v, "ReadHeaderTimeout") {
					pass.Reportf(v.Pos(), "http.Server literal sets no ReadHeaderTimeout; "+
						"a client trickling header bytes pins the connection forever (slowloris) — set ReadHeaderTimeout")
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := pass.Info.Uses[v.Sel].(*types.Var); ok && obj.Pkg() != nil &&
				obj.Pkg().Path() == "net/http" && obj.Name() == "DefaultClient" {
				if !hasCtxReq {
					pass.Reportf(v.Pos(), "http.DefaultClient has no Timeout: a single hung peer blocks every caller sharing it; "+
						"construct a client with Timeout, or build requests with NewRequestWithContext")
				}
			}
		case *ast.CallExpr:
			obj := StaticCallee(pass.Info, v)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" || recvNamed(obj) != "" {
				return true
			}
			switch obj.Name() {
			case "Get", "Post", "PostForm", "Head":
				if (inLoop(v.Pos()) || ctxTaking) && !hasCtxReq {
					pass.Reportf(v.Pos(), "http.%s uses http.DefaultClient, which has no Timeout; in a %s it turns one hung peer into a hang — "+
						"use a client with Timeout or NewRequestWithContext", obj.Name(), loopOrCtx(inLoop(v.Pos())))
				}
			case "ListenAndServe", "ListenAndServeTLS":
				pass.Reportf(v.Pos(), "http.%s constructs a Server with no timeouts and no Shutdown handle; "+
					"build an http.Server with ReadHeaderTimeout and serve it with a graceful shutdown path", obj.Name())
			}
		}
		return true
	})
}

func loopOrCtx(inLoop bool) string {
	if inLoop {
		return "loop"
	}
	return "context-taking function"
}

// litNamed resolves a composite literal's type to its named type,
// looking through one pointer (for &http.Client{...}).
func litNamed(info *types.Info, lit *ast.CompositeLit) *types.Named {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func litSetsField(lit *ast.CompositeLit, field string) bool {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
				return true
			}
		}
	}
	return false
}
