package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HTTPGuard (DESIGN §7 rule 18) enforces the HTTP hygiene a retrying
// task-lease protocol lives or dies by:
//
//   - every *http.Response obtained in a function must have its Body
//     closed on every path out of the function — a CFG may-analysis on
//     the shared forward solver, defer-aware and error-branch aware
//     (the `if err != nil` arm kills the fact: there is no body to
//     close), with returning/storing/passing the whole response (or
//     capturing it in a closure) counting as handing ownership onward;
//     overwriting a still-live response variable (the retry-loop leak)
//     is flagged at the overwrite;
//   - the response body must not be read or decoded before the status
//     code is checked on that path: an error page decoded as payload
//     is the classic silent corruption of a scrape loop (Close and the
//     status-mention itself are exempt; the check composes through the
//     dataflow meet, so a check on one branch does not bless the
//     other);
//   - http.Client composite literals must set Timeout (or the
//     enclosing function must build its requests with
//     http.NewRequestWithContext, which carries cancellation
//     instead); referencing http.DefaultClient is flagged outright —
//     storing the shared zero-timeout client in a long-lived struct is
//     exactly how one hung peer blocks a fleet — and the package-level
//     http.Get/Post/PostForm/Head sugar (which uses it) is flagged
//     inside loops and inside ctx-taking functions;
//   - http.Server composite literals must set ReadHeaderTimeout (the
//     slowloris guard), and the ListenAndServe package functions are
//     flagged outright: they construct an unbounded Server with no
//     Shutdown handle.
//
// Soundness gaps, stated plainly: responses reaching a function as
// parameters or through struct fields are the caller's/owner's to
// close (no interprocedural ownership transfer is tracked); a client
// stored in a struct and used elsewhere is checked only at its
// literal; the status-before-read check keys on syntactic mention of
// StatusCode/Status, not on what the comparison does with it.
var HTTPGuard = &Analyzer{
	Name:  "httpguard",
	Doc:   "prove http.Response bodies closed on all paths, status checked before reads, clients carry timeouts or contexts, servers bound header reads",
	Scope: underInternalOrCmd,
	Run:   runHTTPGuard,
}

func runHTTPGuard(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, fn := range funcNodesWithin(fd) {
				checkRespPaths(pass, fn)
			}
			checkClientServerLiterals(pass, fd)
		}
	}
	return nil
}

// --- response-body obligations ---------------------------------------------

// respSpec adapts the response-body discipline to the shared
// obligation solver (obligation.go). Gen: an assignment whose RHS call
// returns a *http.Response, paired with the error assigned alongside
// it. Discharge: resp.Body.Close() — marked Done but kept live, so a
// read after `defer resp.Body.Close()` still needs the status check.
// Selectors on a tracked response feed the status-before-read check:
// StatusCode/Status mentions set the Aux bit, a Body read without it
// fires the early-read finding. Bare mentions transfer ownership, and
// the error/nil edge kills apply.
func respSpec(info *types.Info) *ObSpec {
	return &ObSpec{
		Info: info,
		Gen: func(as *ast.AssignStmt, call *ast.CallExpr) []ObGen {
			g := ObGen{Pos: call.Pos()}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := identVar(info, id)
				if v == nil {
					continue
				}
				if isHTTPRespPtr(v.Type()) {
					g.Var = v
				} else if i > 0 && types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
					g.ErrVar = v
				}
			}
			if g.Var == nil {
				return nil
			}
			return []ObGen{g}
		},
		Discharge: func(call *ast.CallExpr, st ObFact) (*types.Var, bool) {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" {
				return nil, false
			}
			bodySel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok || bodySel.Sel.Name != "Body" {
				return nil, false
			}
			return obTrackedVar(info, st, bodySel.X), true
		},
		OnSelector: func(sel *ast.SelectorExpr, v *types.Var, st ObFact, rep *ObReporter) {
			switch sel.Sel.Name {
			case "StatusCode", "Status":
				inf := st[v]
				inf.Aux = true
				st[v] = inf
			case "Body":
				if inf := st[v]; !inf.Aux && rep != nil && rep.Custom != nil {
					rep.Custom(sel.Pos(), inf)
				}
			}
		},
		EdgeKills: true,
	}
}

// isHTTPRespPtr reports whether t is *net/http.Response.
func isHTTPRespPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// checkRespPaths runs the obligation solver over fn and reports bodies
// not closed on some path, reads before status checks, and live-fact
// overwrites.
func checkRespPaths(pass *Pass, fn ast.Node) {
	CheckObligations(pass, fn, respSpec(pass.Info), &ObReporter{
		Leak: func(inf ObInfo) {
			pass.Reportf(inf.Pos, "response body from this call may not be closed on every path out of the function; "+
				"defer resp.Body.Close() after the error check, or hand the response onward explicitly")
		},
		Overwrite: func(genPos token.Pos, prev ObInfo) {
			pass.Reportf(genPos, "this assignment overwrites a response whose body may still be open (from the call at %s); "+
				"close the previous body before retrying", pass.Fset.Position(prev.Pos))
		},
		Custom: func(pos token.Pos, inf ObInfo) {
			pass.Reportf(pos, "response body is read before the status code is checked on this path; "+
				"an error page decoded as payload corrupts silently — check resp.StatusCode first")
		},
	})
}

// --- client and server discipline ------------------------------------------

// checkClientServerLiterals walks one declaration for http.Client and
// http.Server composite literals, http.DefaultClient references, and
// the package-level request/serve sugar.
func checkClientServerLiterals(pass *Pass, fd *ast.FuncDecl) {
	hasCtxReq := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := StaticCallee(pass.Info, call); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "net/http" && obj.Name() == "NewRequestWithContext" {
				hasCtxReq = true
			}
		}
		return true
	})
	ctxTaking := hasCtxParam(pass.Info, fd.Type)
	if !ctxTaking && pass.Prog != nil {
		if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			_, ctxTaking = pass.Prog.CtxParam[obj.FullName()]
		}
	}

	var loops [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, r := range loops {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			named := litNamed(pass.Info, v)
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "net/http" {
				return true
			}
			switch named.Obj().Name() {
			case "Client":
				if !litSetsField(v, "Timeout") && !hasCtxReq {
					pass.Reportf(v.Pos(), "http.Client literal sets no Timeout and the function builds no request with NewRequestWithContext; "+
						"one hung peer blocks this client forever — set Timeout or carry a context")
				}
			case "Server":
				if !litSetsField(v, "ReadHeaderTimeout") {
					pass.Reportf(v.Pos(), "http.Server literal sets no ReadHeaderTimeout; "+
						"a client trickling header bytes pins the connection forever (slowloris) — set ReadHeaderTimeout")
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := pass.Info.Uses[v.Sel].(*types.Var); ok && obj.Pkg() != nil &&
				obj.Pkg().Path() == "net/http" && obj.Name() == "DefaultClient" {
				if !hasCtxReq {
					pass.Reportf(v.Pos(), "http.DefaultClient has no Timeout: a single hung peer blocks every caller sharing it; "+
						"construct a client with Timeout, or build requests with NewRequestWithContext")
				}
			}
		case *ast.CallExpr:
			obj := StaticCallee(pass.Info, v)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" || recvNamed(obj) != "" {
				return true
			}
			switch obj.Name() {
			case "Get", "Post", "PostForm", "Head":
				if (inLoop(v.Pos()) || ctxTaking) && !hasCtxReq {
					pass.Reportf(v.Pos(), "http.%s uses http.DefaultClient, which has no Timeout; in a %s it turns one hung peer into a hang — "+
						"use a client with Timeout or NewRequestWithContext", obj.Name(), loopOrCtx(inLoop(v.Pos())))
				}
			case "ListenAndServe", "ListenAndServeTLS":
				pass.Reportf(v.Pos(), "http.%s constructs a Server with no timeouts and no Shutdown handle; "+
					"build an http.Server with ReadHeaderTimeout and serve it with a graceful shutdown path", obj.Name())
			}
		}
		return true
	})
}

func loopOrCtx(inLoop bool) string {
	if inLoop {
		return "loop"
	}
	return "context-taking function"
}

// litNamed resolves a composite literal's type to its named type,
// looking through one pointer (for &http.Client{...}).
func litNamed(info *types.Info, lit *ast.CompositeLit) *types.Named {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func litSetsField(lit *ast.CompositeLit, field string) bool {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
				return true
			}
		}
	}
	return false
}
