package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// ShapeCheck proves matrix-conformance violations before they panic at
// runtime. The ESSE cycle is wall-to-wall linear algebra over
// *linalg.Dense, where every Mul/MulTA/MatVec carries a Rows/Cols
// contract enforced only by a panic in the middle of an ensemble run;
// a transposed operand or a swapped dimension pair costs a whole
// forecast cycle before it surfaces.
//
// The analyzer runs a forward dataflow over each function tracking the
// symbolic shape of every Dense and []float64 value as a pair of terms
// over the ints in scope: NewDense(n, p) is n×p, T() swaps, Mul(a, b)
// requires cols(a) ≡ rows(b) and yields rows(a)×cols(b), with transfer
// rules for the whole linalg vocabulary (MulTA, MulBT, MatVec, MatTVec,
// Slice, AppendCols, Diag, Identity, the *Into destinations, ...).
// Integer equalities learned from ==/!= guards (the checkSameShape
// idiom) refine the terms. Calls into the rest of the module consult
// Program.DimSummaries — per-function result shapes and conformance
// requirements as functions of the parameters, computed bottom-up over
// the call graph (dimfacts.go) — so a mismatch two calls deep is still
// a finding at the call site that commits it.
//
// Only *provable* violations are reported: both sides of a conformance
// requirement must resolve to distinct integer constants on some
// reachable path. Everything symbolic or unknown stays silent — the
// analyzer exists to catch the transposed-operand class of bug, not to
// demand annotations.
var ShapeCheck = &Analyzer{
	Name: "shapecheck",
	Doc: "prove linalg shape-conformance violations (Mul/MulTA/MatVec/... operand dimensions, " +
		"*Into destination shapes) by symbolic forward dataflow with interprocedural shape summaries",
	Scope: underInternalOrCmd,
	Run:   runShapeCheck,
}

// shapeFact is the dataflow state: shapes maps the canonical key of a
// Dense or []float64 expression to its symbolic shape, eq maps an
// integer expression's key to a term it provably equals. A nil pointer
// is the solver's Top (unreached).
type shapeFact struct {
	shapes map[string]DimShape
	eq     map[string]string
}

func (st *shapeFact) clone() *shapeFact {
	c := &shapeFact{
		shapes: make(map[string]DimShape, len(st.shapes)),
		eq:     make(map[string]string, len(st.eq)),
	}
	for k, v := range st.shapes {
		c.shapes[k] = v
	}
	for k, v := range st.eq {
		c.eq[k] = v
	}
	return c
}

func runShapeCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range FuncNodes(f) {
			a := &shapeFunc{pass: pass, fn: fn, reported: map[string]bool{}}
			cfg := BuildCFG(fn)
			res := Forward(cfg, a)
			for _, b := range cfg.Blocks {
				in, _ := res.In[b].(*shapeFact)
				if in == nil {
					continue // unreachable: don't report from dead code
				}
				st := in.clone()
				for _, n := range b.Nodes {
					a.step(st, n, true)
				}
			}
		}
	}
	return nil
}

// shapeFunc is the per-function analysis: FlowAnalysis plus the shape
// transfer vocabulary. dimfacts.go re-runs it in summary mode (summary
// set, paramSeed filled with $-terms) to compute DimSummaries.
type shapeFunc struct {
	pass     *Pass
	fn       ast.Node
	reported map[string]bool
	// summary mode: conformance sites record caller-expressible
	// requirements instead of reporting.
	summary   bool
	paramSeed *shapeFact
	requires  map[[2]string]bool
}

// --- FlowAnalysis ----------------------------------------------------------

func (a *shapeFunc) Boundary() Fact {
	if a.paramSeed != nil {
		return a.paramSeed.clone()
	}
	return &shapeFact{shapes: map[string]DimShape{}, eq: map[string]string{}}
}

func (a *shapeFunc) Top() Fact { return (*shapeFact)(nil) }

func (a *shapeFunc) Transfer(b *Block, in Fact) Fact {
	st, _ := in.(*shapeFact)
	if st == nil {
		return (*shapeFact)(nil)
	}
	out := st.clone()
	for _, n := range b.Nodes {
		a.step(out, n, false)
	}
	return out
}

func (a *shapeFunc) FlowEdge(e *Edge, out Fact) Fact {
	st, _ := out.(*shapeFact)
	if st == nil || e.Cond == nil {
		return out
	}
	refined := st.clone()
	a.refine(refined, e.Cond, e.Branch)
	return refined
}

// meetDim joins two dimension terms: equal terms survive, the
// optimistic top is the identity, anything else degrades to unknown.
func meetDim(x, y string) string {
	switch {
	case x == y:
		return x
	case x == dimTop:
		return y
	case y == dimTop:
		return x
	}
	return dimUnknown
}

func (a *shapeFunc) Meet(x, y Fact) Fact {
	sx, _ := x.(*shapeFact)
	sy, _ := y.(*shapeFact)
	if sx == nil {
		return sy
	}
	if sy == nil {
		return sx
	}
	m := &shapeFact{shapes: map[string]DimShape{}, eq: map[string]string{}}
	for k, vx := range sx.shapes {
		vy, ok := sy.shapes[k]
		if !ok || vx.Vec != vy.Vec {
			continue
		}
		s := DimShape{R: meetDim(vx.R, vy.R), C: meetDim(vx.C, vy.C), Vec: vx.Vec}
		if s.R != dimUnknown || s.C != dimUnknown {
			m.shapes[k] = s
		}
	}
	for k, vx := range sx.eq {
		if sy.eq[k] == vx {
			m.eq[k] = vx
		}
	}
	return m
}

func (a *shapeFunc) Equal(x, y Fact) bool {
	sx, _ := x.(*shapeFact)
	sy, _ := y.(*shapeFact)
	if (sx == nil) != (sy == nil) {
		return false
	}
	if sx == nil {
		return true
	}
	if len(sx.shapes) != len(sy.shapes) || len(sx.eq) != len(sy.eq) {
		return false
	}
	for k, v := range sx.shapes {
		if sy.shapes[k] != v {
			return false
		}
	}
	for k, v := range sx.eq {
		if sy.eq[k] != v {
			return false
		}
	}
	return true
}

// --- per-node transfer -----------------------------------------------------

// step checks (when report is set) the conformance sites inside n under
// the pre-state, then applies n's effects to st in place.
func (a *shapeFunc) step(st *shapeFact, n ast.Node, report bool) {
	if report {
		a.checkNode(st, n)
	}
	WalkBlockNode(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.AssignStmt:
			a.applyAssign(st, v)
			return false
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						a.applyValueSpec(st, vs)
					}
				}
			}
			return false
		case *ast.IncDecStmt:
			a.killExpr(st, v.X)
			return false
		case *ast.RangeStmt:
			if v.Key != nil {
				a.killExpr(st, v.Key)
			}
			if v.Value != nil {
				a.killExpr(st, v.Value)
			}
			return true
		case *ast.CallExpr:
			a.applyCallKills(st, v)
			return true
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				a.killExpr(st, v.X)
			}
			return true
		}
		return true
	})
}

func (a *shapeFunc) applyAssign(st *shapeFact, as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				a.applyCallKills(st, call)
			}
			return true
		})
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		// Compound assignment: the target's old value is gone.
		for _, lhs := range as.Lhs {
			a.killExpr(st, lhs)
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		type newFact struct {
			shape   DimShape
			isShape bool
			term    string
		}
		facts := make([]newFact, len(as.Rhs))
		for i, rhs := range as.Rhs {
			if a.isShapeTyped(rhs) {
				facts[i] = newFact{shape: a.shapeOf(st, rhs), isShape: true}
			} else if a.isIntExpr(rhs) {
				facts[i] = newFact{term: a.dimTerm(st, rhs)}
			}
		}
		for _, lhs := range as.Lhs {
			a.killExpr(st, lhs)
		}
		for i, lhs := range as.Lhs {
			if facts[i].isShape {
				a.genShape(st, lhs, facts[i].shape)
			} else if facts[i].term != "" {
				a.genEq(st, lhs, facts[i].term)
			}
		}
		return
	}
	// Multi-value assignment from one call: consult the callee's shape
	// summary per result (under the pre-kill state).
	var shapes []*DimShape
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if res, handled := a.callResultShapes(st, call, false); handled {
				shapes = res
			}
		}
	}
	for _, lhs := range as.Lhs {
		a.killExpr(st, lhs)
	}
	for i, lhs := range as.Lhs {
		if i < len(shapes) && shapes[i] != nil {
			a.genShape(st, lhs, *shapes[i])
		}
	}
}

func (a *shapeFunc) applyValueSpec(st *shapeFact, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		a.killExpr(st, name)
		if i >= len(vs.Values) {
			continue
		}
		rhs := vs.Values[i]
		if a.isShapeTyped(rhs) {
			a.genShape(st, name, a.shapeOf(st, rhs))
		} else if a.isIntExpr(rhs) {
			if t := a.dimTerm(st, rhs); t != "" {
				a.genEq(st, name, t)
			}
		}
	}
}

// applyCallKills invalidates shape facts a call may have clobbered.
// The entire linalg package is shape-preserving by construction (no
// operation resizes an existing matrix), so its calls kill nothing;
// any other call kills mutable-reference arguments and receivers, like
// divguard — an unknown callee might append, reslice or rebuild.
func (a *shapeFunc) applyCallKills(st *shapeFact, call *ast.CallExpr) {
	if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: no effects
	}
	if callee := StaticCallee(a.pass.Info, call); callee != nil &&
		callee.Pkg() != nil && callee.Pkg().Path() == linalgPkgPath {
		return
	}
	// Builtins never reshape their arguments: len/cap read, copy moves
	// contents within existing lengths, append leaves the argument's
	// own length alone.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := a.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	kill := func(e ast.Expr) {
		if root := rootIdent(e); root != nil {
			if obj, ok := a.pass.Info.Uses[root]; ok && isMutableRef(obj.Type()) {
				a.killName(st, root.Name)
			}
		}
	}
	for _, arg := range call.Args {
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			a.killExpr(st, u.X)
			continue
		}
		kill(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := a.pass.Info.Selections[sel]; isMethod {
			kill(sel.X)
		}
	}
}

func (a *shapeFunc) genShape(st *shapeFact, lhs ast.Expr, s DimShape) {
	key, ok := exprKeyOf(lhs)
	if !ok {
		return
	}
	// A dim term mentioning the target itself would be self-referential
	// after the assignment (m = m.T() stores the *old* m.Cols).
	if root := rootIdent(lhs); root != nil {
		if keyMentions(s.R, root.Name) {
			s.R = dimUnknown
		}
		if keyMentions(s.C, root.Name) {
			s.C = dimUnknown
		}
	}
	if s.R == dimUnknown && s.C == dimUnknown {
		return // the implicit shape says as much
	}
	st.shapes[key] = s
}

func (a *shapeFunc) genEq(st *shapeFact, lhs ast.Expr, term string) {
	key, ok := exprKeyOf(lhs)
	if !ok || term == dimUnknown || term == dimTop || term == key {
		return
	}
	if root := rootIdent(lhs); root != nil && keyMentions(term, root.Name) {
		return
	}
	st.eq[key] = term
}

// killExpr drops every fact depending on the root identifier of e.
func (a *shapeFunc) killExpr(st *shapeFact, e ast.Expr) {
	if root := rootIdent(e); root != nil {
		a.killName(st, root.Name)
	}
}

// killName scrubs name from the state: shapes keyed through it die,
// dimension terms mentioning it degrade to unknown, equalities
// mentioning it on either side die.
func (a *shapeFunc) killName(st *shapeFact, name string) {
	for k, s := range st.shapes {
		if keyMentions(k, name) {
			delete(st.shapes, k)
			continue
		}
		changed := false
		if keyMentions(s.R, name) {
			s.R = dimUnknown
			changed = true
		}
		if keyMentions(s.C, name) {
			s.C = dimUnknown
			changed = true
		}
		if changed {
			if s.R == dimUnknown && s.C == dimUnknown {
				delete(st.shapes, k)
			} else {
				st.shapes[k] = s
			}
		}
	}
	for k, v := range st.eq {
		if keyMentions(k, name) || keyMentions(v, name) {
			delete(st.eq, k)
		}
	}
}

// exprKeyOf returns the canonical fact key for e if e is keyable (same
// grammar as divguard's keys: identifiers, selector chains, indexed
// expressions with identifier or literal indices).
func exprKeyOf(e ast.Expr) (string, bool) {
	if !keyableExpr(e) {
		return "", false
	}
	return types.ExprString(ast.Unparen(e)), true
}

func keyableExpr(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name != "_"
	case *ast.SelectorExpr:
		return keyableExpr(v.X)
	case *ast.IndexExpr:
		if !keyableExpr(v.X) {
			return false
		}
		switch ast.Unparen(v.Index).(type) {
		case *ast.Ident, *ast.BasicLit:
			return true
		}
		return false
	}
	return false
}

// --- types -----------------------------------------------------------------

func (a *shapeFunc) exprType(e ast.Expr) types.Type {
	tv, ok := a.pass.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func (a *shapeFunc) isShapeTyped(e ast.Expr) bool {
	t := a.exprType(e)
	return t != nil && (isDenseType(t) || isFloatSliceType(t))
}

func (a *shapeFunc) isVecTyped(e ast.Expr) bool {
	t := a.exprType(e)
	return t != nil && isFloatSliceType(t)
}

func (a *shapeFunc) isIntExpr(e ast.Expr) bool {
	t := a.exprType(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// --- dimension terms -------------------------------------------------------

// resolveEq chases the equality map from t toward a more resolved term
// (ideally a constant). The chase is capped: the map is acyclic by
// construction in the common case, and eight steps of indirection is
// past anything the fixtures or the tree produce.
func resolveEq(st *shapeFact, t string) string {
	for i := 0; i < 8; i++ {
		n, ok := st.eq[t]
		if !ok || n == t {
			break
		}
		t = n
	}
	return t
}

// isConstTerm reports whether t is an integer-literal term — the only
// kind a provable-violation report may rest on.
func isConstTerm(t string) bool {
	_, ok := constTermValue(t)
	return ok
}

// constTermValue parses an integer-literal term without the error
// plumbing of strconv (terms are produced by the analyzer itself, so a
// non-digit simply means "not a constant").
func constTermValue(t string) (int, bool) {
	if t == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, false
		}
	}
	return n, true
}

// dimTerm evaluates an integer expression to a symbolic dimension term
// under st: constants fold, x.Rows/x.Cols/len(x) read tracked shapes,
// keyable expressions resolve through learned equalities (falling back
// to their own spelling, so two reads of the same field unify), small
// +/- arithmetic folds constants and drops additive zeros.
func (a *shapeFunc) dimTerm(st *shapeFact, e ast.Expr) string {
	e = ast.Unparen(e)
	if tv, ok := a.pass.Info.Types[e]; ok && tv.Value != nil {
		if s := tv.Value.String(); isConstTerm(s) {
			return s
		}
		return dimUnknown
	}
	switch v := e.(type) {
	case *ast.BinaryExpr:
		x, y := a.dimTerm(st, v.X), a.dimTerm(st, v.Y)
		switch v.Op {
		case token.ADD:
			return dimAdd(x, y)
		case token.SUB:
			return dimSub(x, y)
		}
		return dimUnknown
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "len" && len(v.Args) == 1 {
			if a.isVecTyped(v.Args[0]) {
				return a.vecLenTerm(st, v.Args[0])
			}
		}
		return dimUnknown
	case *ast.SelectorExpr:
		if (v.Sel.Name == "Rows" || v.Sel.Name == "Cols") && keyableExpr(v.X) {
			if t := a.exprType(v.X); t != nil && isDenseType(t) {
				s := a.shapeOf(st, v.X)
				d := s.R
				if v.Sel.Name == "Cols" {
					d = s.C
				}
				if d != dimUnknown {
					return d
				}
			}
		}
		if key, ok := exprKeyOf(v); ok {
			return resolveEq(st, key)
		}
	case *ast.Ident:
		if key, ok := exprKeyOf(v); ok {
			return resolveEq(st, key)
		}
	}
	return dimUnknown
}

// vecLenTerm is dimTerm for the length of a []float64 expression.
func (a *shapeFunc) vecLenTerm(st *shapeFact, e ast.Expr) string {
	s := a.shapeOf(st, e)
	return s.R
}

func dimAdd(x, y string) string {
	if x == "0" {
		return y
	}
	if y == "0" {
		return x
	}
	if xi, ok := constTermValue(x); ok {
		if yi, ok := constTermValue(y); ok {
			return strconv.Itoa(xi + yi)
		}
	}
	return dimUnknown
}

func dimSub(x, y string) string {
	if y == "0" {
		return x
	}
	if xi, ok := constTermValue(x); ok {
		if yi, ok := constTermValue(y); ok && xi >= yi {
			return strconv.Itoa(xi - yi)
		}
	}
	return dimUnknown
}

// shapeOf computes the symbolic shape of a Dense or []float64
// expression under st. Untracked keyable values get the implicit shape
// spelled through their own dimensions (x.Rows × x.Cols, len(x)), so
// conformance between two reads of the same value is still provable
// and kills can find them by name.
func (a *shapeFunc) shapeOf(st *shapeFact, e ast.Expr) DimShape {
	e = ast.Unparen(e)
	vec := a.isVecTyped(e)
	if key, ok := exprKeyOf(e); ok {
		if s, ok := st.shapes[key]; ok {
			return s
		}
		if vec {
			return DimShape{R: resolveEq(st, "len("+key+")"), C: dimUnknown, Vec: true}
		}
		return DimShape{R: resolveEq(st, key+".Rows"), C: resolveEq(st, key+".Cols")}
	}
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "make" && len(v.Args) >= 2 && vec {
			return DimShape{R: a.dimTerm(st, v.Args[1]), C: dimUnknown, Vec: true}
		}
		if res, handled := a.callResultShapes(st, v, false); handled && len(res) == 1 && res[0] != nil {
			return *res[0]
		}
	case *ast.CompositeLit:
		if vec {
			for _, el := range v.Elts {
				if _, keyed := el.(*ast.KeyValueExpr); keyed {
					return DimShape{R: dimUnknown, C: dimUnknown, Vec: true}
				}
			}
			return DimShape{R: strconv.Itoa(len(v.Elts)), C: dimUnknown, Vec: true}
		}
	}
	return DimShape{R: dimUnknown, C: dimUnknown, Vec: vec}
}

// --- the linalg transfer vocabulary ----------------------------------------

// callResultShapes evaluates a call's result shapes and, when check is
// set, verifies the conformance requirements the callee imposes. The
// bool result reports whether the callee was recognized (linalg
// vocabulary or a DimSummaries entry).
func (a *shapeFunc) callResultShapes(st *shapeFact, call *ast.CallExpr, check bool) ([]*DimShape, bool) {
	callee := StaticCallee(a.pass.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return nil, false
	}
	if callee.Pkg().Path() == linalgPkgPath {
		return a.linalgCall(st, call, callee, check)
	}
	return a.summaryCall(st, call, callee, check)
}

// mat/vecAt fetch operand shapes lazily so transfer rules read close to
// the ops they model; dimensions re-resolve through the current
// equality facts so a branch guard learned after the shape was stored
// still sharpens the check.
func (a *shapeFunc) matAt(st *shapeFact, call *ast.CallExpr, i int) DimShape {
	if i >= len(call.Args) {
		return DimShape{R: dimUnknown, C: dimUnknown}
	}
	s := a.shapeOf(st, call.Args[i])
	s.R = resolveEq(st, s.R)
	s.C = resolveEq(st, s.C)
	return s
}

func (a *shapeFunc) vecAt(st *shapeFact, call *ast.CallExpr, i int) string {
	if i >= len(call.Args) {
		return dimUnknown
	}
	return resolveEq(st, a.shapeOf(st, call.Args[i]).R)
}

func mat1(s DimShape) []*DimShape { return []*DimShape{{R: s.R, C: s.C}} }
func vec1(length string) []*DimShape {
	return []*DimShape{{R: length, C: dimUnknown, Vec: true}}
}

// linalgCall implements the transfer rules and conformance checks for
// the esse/internal/linalg vocabulary.
func (a *shapeFunc) linalgCall(st *shapeFact, call *ast.CallExpr, callee *types.Func, check bool) ([]*DimShape, bool) {
	name := callee.Name()
	pos := call.Pos()
	conform := func(what, ta, tb string) {
		if check {
			a.checkConform(pos, "linalg."+name, what, ta, tb)
		}
	}
	if recv := recvNamed(callee); recv != "" {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, true // method value: shapes unknown, still no kills
		}
		switch recv {
		case "Dense":
			r := a.shapeOf(st, sel.X)
			switch name {
			case "T":
				return mat1(DimShape{R: r.C, C: r.R}), true
			case "Clone":
				return mat1(r), true
			case "Slice":
				if len(call.Args) == 4 {
					r0, r1 := a.dimTerm(st, call.Args[0]), a.dimTerm(st, call.Args[1])
					c0, c1 := a.dimTerm(st, call.Args[2]), a.dimTerm(st, call.Args[3])
					return mat1(DimShape{R: dimSub(r1, r0), C: dimSub(c1, c0)}), true
				}
			case "AppendCols":
				b := a.matAt(st, call, 0)
				conform("row counts", r.R, b.R)
				return mat1(DimShape{R: r.R, C: dimAdd(r.C, b.C)}), true
			case "Row":
				return vec1(r.C), true
			case "Col":
				if len(call.Args) == 2 {
					conform("destination length vs rows", a.vecAt(st, call, 0), r.R)
				}
				return vec1(r.R), true
			case "SetCol":
				if len(call.Args) == 2 {
					conform("column length vs rows", a.vecAt(st, call, 1), r.R)
				}
			case "CopyFrom":
				src := a.matAt(st, call, 0)
				conform("row counts", r.R, src.R)
				conform("column counts", r.C, src.C)
			}
			return nil, true
		case "LUFactors":
			if name == "SolveInto" && len(call.Args) == 2 {
				conform("solution and rhs lengths", a.vecAt(st, call, 0), a.vecAt(st, call, 1))
				return vec1(a.vecAt(st, call, 0)), true
			}
			return nil, true
		}
		return nil, true
	}
	switch name {
	case "NewDense", "NewDenseFrom":
		if len(call.Args) >= 2 {
			return mat1(DimShape{R: a.dimTerm(st, call.Args[0]), C: a.dimTerm(st, call.Args[1])}), true
		}
	case "Identity":
		n := a.dimTerm(st, call.Args[0])
		return mat1(DimShape{R: n, C: n}), true
	case "Diag":
		n := a.vecAt(st, call, 0)
		return mat1(DimShape{R: n, C: n}), true
	case "Mul":
		x, y := a.matAt(st, call, 0), a.matAt(st, call, 1)
		conform("inner dimensions", x.C, y.R)
		return mat1(DimShape{R: x.R, C: y.C}), true
	case "MulTA":
		x, y := a.matAt(st, call, 0), a.matAt(st, call, 1)
		conform("row counts", x.R, y.R)
		return mat1(DimShape{R: x.C, C: y.C}), true
	case "MulBT":
		x, y := a.matAt(st, call, 0), a.matAt(st, call, 1)
		conform("column counts", x.C, y.C)
		return mat1(DimShape{R: x.R, C: y.R}), true
	case "mulInto":
		if len(call.Args) == 3 {
			out, x, y := a.matAt(st, call, 0), a.matAt(st, call, 1), a.matAt(st, call, 2)
			conform("inner dimensions", x.C, y.R)
			conform("destination rows", out.R, x.R)
			conform("destination cols", out.C, y.C)
		}
	case "MatVec":
		x, v := a.matAt(st, call, 0), a.vecAt(st, call, 1)
		conform("cols vs vector length", x.C, v)
		return vec1(x.R), true
	case "MatTVec":
		x, v := a.matAt(st, call, 0), a.vecAt(st, call, 1)
		conform("rows vs vector length", x.R, v)
		return vec1(x.C), true
	case "Add", "Sub":
		x, y := a.matAt(st, call, 0), a.matAt(st, call, 1)
		conform("row counts", x.R, y.R)
		conform("column counts", x.C, y.C)
		return mat1(x), true
	case "AddInPlace":
		x, y := a.matAt(st, call, 0), a.matAt(st, call, 1)
		conform("row counts", x.R, y.R)
		conform("column counts", x.C, y.C)
	case "Scale":
		return mat1(a.matAt(st, call, 1)), true
	case "Dot":
		conform("vector lengths", a.vecAt(st, call, 0), a.vecAt(st, call, 1))
	case "Axpy":
		if len(call.Args) == 3 {
			conform("vector lengths", a.vecAt(st, call, 1), a.vecAt(st, call, 2))
		}
	case "VecAdd", "VecSub":
		x, y := a.vecAt(st, call, 0), a.vecAt(st, call, 1)
		conform("vector lengths", x, y)
		return vec1(x), true
	case "VecScale":
		return vec1(a.vecAt(st, call, 1)), true
	case "OuterAdd":
		if len(call.Args) == 4 {
			m := a.matAt(st, call, 0)
			conform("rows vs left vector length", m.R, a.vecAt(st, call, 2))
			conform("cols vs right vector length", m.C, a.vecAt(st, call, 3))
		}
	}
	return nil, true
}

// summaryCall applies an in-set callee's DimSummary: its Requires are
// checked (or propagated, in summary mode) with the argument shapes
// substituted for the $-terms, and its Results become the call's.
func (a *shapeFunc) summaryCall(st *shapeFact, call *ast.CallExpr, callee *types.Func, check bool) ([]*DimShape, bool) {
	prog := a.pass.Prog
	if prog == nil || prog.DimSummaries == nil {
		return nil, false
	}
	sum := prog.DimSummaries[callee.FullName()]
	if sum == nil {
		return nil, false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Variadic() || call.Ellipsis.IsValid() {
		return nil, false
	}
	if sum.optimistic {
		// Same-SCC callee mid-fixpoint: every shape-typed result is top.
		res := make([]*DimShape, sig.Results().Len())
		for i := range res {
			t := sig.Results().At(i).Type()
			if isDenseType(t) {
				res[i] = &DimShape{R: dimTop, C: dimTop}
			} else if isFloatSliceType(t) {
				res[i] = &DimShape{R: dimTop, C: dimUnknown, Vec: true}
			}
		}
		return res, true
	}
	if len(call.Args) != sum.NumParams {
		return nil, false
	}
	args := make([]DimShape, len(call.Args))
	for i, arg := range call.Args {
		if a.isShapeTyped(arg) {
			args[i] = a.shapeOf(st, arg)
		} else {
			args[i] = DimShape{R: dimUnknown, C: dimUnknown}
		}
	}
	subst := func(t string) string { return substDimTerm(t, args) }
	if check {
		for _, req := range sum.Requires {
			a.checkConform(call.Pos(), "call to "+callee.Name(), "required dimensions",
				subst(req[0]), subst(req[1]))
		}
	}
	res := make([]*DimShape, len(sum.Results))
	for i, r := range sum.Results {
		if r == nil {
			continue
		}
		res[i] = &DimShape{R: subst(r.R), C: subst(r.C), Vec: r.Vec}
	}
	return res, true
}

// substDimTerm maps a summary term into the caller's term space given
// the argument shapes: constants pass through, $-terms index the
// arguments, the optimistic top survives (the caller's meet handles
// it), anything else is unknown.
func substDimTerm(t string, args []DimShape) string {
	if isConstTerm(t) {
		return t
	}
	if t == dimTop {
		return dimTop
	}
	if len(t) >= 3 && t[0] == '$' {
		idx, err := strconv.Atoi(t[2:])
		if err == nil && idx >= 0 && idx < len(args) {
			switch t[1] {
			case 'r', 'l':
				return args[idx].R
			case 'c':
				return args[idx].C
			}
		}
	}
	return dimUnknown
}

// checkConform is the single reporting (or, in summary mode,
// requirement-recording) point for a conformance constraint ta ≡ tb.
func (a *shapeFunc) checkConform(pos token.Pos, op, what, ta, tb string) {
	if a.summary {
		if exportableReq(ta) && exportableReq(tb) && ta != tb {
			p := [2]string{ta, tb}
			if p[0] > p[1] {
				p[0], p[1] = p[1], p[0]
			}
			a.requires[p] = true
		}
		return
	}
	if !isConstTerm(ta) || !isConstTerm(tb) || ta == tb {
		return
	}
	key := fmt.Sprintf("%d:%s:%s", pos, op, what)
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.pass.Reportf(pos, "%s: %s provably mismatch (%s vs %s); this call panics on every execution",
		op, what, ta, tb)
}

// exportableReq reports whether a requirement term is meaningful to a
// caller: an integer constant or a parameter dimension.
func exportableReq(t string) bool {
	return isConstTerm(t) || (len(t) >= 3 && t[0] == '$' && t != dimTop &&
		(t[1] == 'r' || t[1] == 'c' || t[1] == 'l'))
}

// --- branch refinement -----------------------------------------------------

// refine strengthens st with the integer equalities cond implies: the
// true edge of ==, the false edge of !=, through !, && and || — the
// checkSameShape guard idiom (`if a.Rows != b.Rows || ... { panic }`)
// teaches the fall-through edge both equalities.
func (a *shapeFunc) refine(st *shapeFact, cond ast.Expr, branch bool) {
	cond = ast.Unparen(cond)
	switch v := cond.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			a.refine(st, v.X, !branch)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			if branch {
				a.refine(st, v.X, true)
				a.refine(st, v.Y, true)
			}
		case token.LOR:
			if !branch {
				a.refine(st, v.X, false)
				a.refine(st, v.Y, false)
			}
		case token.EQL:
			if branch {
				a.applyDimEq(st, v.X, v.Y)
			}
		case token.NEQ:
			if !branch {
				a.applyDimEq(st, v.X, v.Y)
			}
		}
	}
}

// applyDimEq records that two integer expressions are equal, pointing
// the less-resolved side at the more-resolved term.
func (a *shapeFunc) applyDimEq(st *shapeFact, x, y ast.Expr) {
	if !a.isIntExpr(x) || !a.isIntExpr(y) {
		return
	}
	tx, ty := a.dimTerm(st, x), a.dimTerm(st, y)
	if tx == ty {
		return
	}
	if isConstTerm(ty) || tx == dimUnknown {
		a.setDimEq(st, x, ty)
		return
	}
	a.setDimEq(st, y, tx)
}

// setDimEq binds the dimension key of expression e to term.
func (a *shapeFunc) setDimEq(st *shapeFact, e ast.Expr, term string) {
	if term == dimUnknown || term == dimTop {
		return
	}
	key := a.dimKeyOf(e)
	if key == "" || key == term {
		return
	}
	st.eq[key] = term
}

// dimKeyOf returns the equality-map key of an integer expression:
// keyable expressions key as themselves, len(x) of a keyable vector as
// "len(x)" (matching the implicit-shape spelling).
func (a *shapeFunc) dimKeyOf(e ast.Expr) string {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
			if key, ok := exprKeyOf(call.Args[0]); ok && a.isVecTyped(call.Args[0]) {
				return "len(" + key + ")"
			}
		}
		return ""
	}
	if key, ok := exprKeyOf(e); ok {
		return key
	}
	return ""
}

// --- site checking ---------------------------------------------------------

// checkNode verifies the conformance of every recognized call inside n
// under the pre-state st.
func (a *shapeFunc) checkNode(st *shapeFact, n ast.Node) {
	WalkBlockNode(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			a.callResultShapes(st, call, true)
		}
		return true
	})
}

// --- summary extraction ----------------------------------------------------

// dimSummaryForFunc computes fn's shape summary by re-running the
// shapecheck dataflow in summary mode: shape-typed parameters are
// seeded with $-terms, conformance sites record caller-expressible
// requirements, and the result shapes are the meet over every
// reachable return site (the optimistic top is the meet identity, so a
// recursive callee mid-fixpoint constrains nothing). Bare returns and
// splat returns prove nothing — named-result tracking through writes
// is not worth the precision here.
func dimSummaryForFunc(p *Program, fn *FuncInfo) *DimSummary {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Variadic() {
		return &DimSummary{}
	}
	pass := &Pass{Fset: fn.Pkg.Fset, Path: fn.Pkg.Path, RelPath: fn.Pkg.RelPath,
		Pkg: fn.Pkg.Pkg, Info: fn.Pkg.Info, Prog: p}
	seed := &shapeFact{shapes: map[string]DimShape{}, eq: map[string]string{}}
	idx := 0
	if fn.Decl.Type.Params != nil {
		for _, field := range fn.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil && name.Name != "_" {
					i := strconv.Itoa(idx)
					if isDenseType(obj.Type()) {
						seed.shapes[name.Name] = DimShape{R: "$r" + i, C: "$c" + i}
					} else if isFloatSliceType(obj.Type()) {
						seed.shapes[name.Name] = DimShape{R: "$l" + i, C: dimUnknown, Vec: true}
					}
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	a := &shapeFunc{pass: pass, fn: fn.Decl, reported: map[string]bool{},
		summary: true, paramSeed: seed, requires: map[[2]string]bool{}}
	cfg := BuildCFG(fn.Decl)
	res := Forward(cfg, a)

	results := make([]*DimShape, sig.Results().Len())
	shapeResult := make([]bool, len(results))
	for i := range results {
		t := sig.Results().At(i).Type()
		if isDenseType(t) {
			results[i] = &DimShape{R: dimTop, C: dimTop}
			shapeResult[i] = true
		} else if isFloatSliceType(t) {
			results[i] = &DimShape{R: dimTop, C: dimUnknown, Vec: true}
			shapeResult[i] = true
		}
	}
	sawReturn := false
	for _, b := range cfg.Blocks {
		in, _ := res.In[b].(*shapeFact)
		if in == nil {
			continue // unreachable return sites constrain nothing
		}
		st := in.clone()
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == len(results) {
				sawReturn = true
				for i, e := range ret.Results {
					if !shapeResult[i] || results[i] == nil {
						continue
					}
					s := a.shapeOf(st, e)
					results[i].R = meetDim(results[i].R, exportTerm(s.R))
					results[i].C = meetDim(results[i].C, exportTerm(s.C))
				}
			} else if ok {
				sawReturn = true
				for i := range results {
					if shapeResult[i] {
						results[i] = nil
					}
				}
			}
			a.step(st, n, true)
		}
	}
	for i := range results {
		if !shapeResult[i] || results[i] == nil {
			results[i] = nil
			continue
		}
		if results[i].R == dimTop {
			results[i].R = dimUnknown
		}
		if results[i].C == dimTop {
			results[i].C = dimUnknown
		}
		if !sawReturn || (results[i].R == dimUnknown && results[i].C == dimUnknown) {
			results[i] = nil
		}
	}
	sum := &DimSummary{NumParams: idx, Results: results}
	for p := range a.requires {
		sum.Requires = append(sum.Requires, p)
	}
	sort.Slice(sum.Requires, func(i, j int) bool { return lessReq(sum.Requires[i], sum.Requires[j]) })
	return sum
}

// exportTerm restricts a state term to the summary vocabulary:
// constants, $-terms and top survive, everything local degrades.
func exportTerm(t string) string {
	if isConstTerm(t) || t == dimTop || exportableReq(t) {
		return t
	}
	return dimUnknown
}

func lessReq(a, b [2]string) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// dimRequireCount tallies requirement pairs across all summaries
// (-stats).
func dimRequireCount(sums map[string]*DimSummary) int {
	n := 0
	for _, s := range sums {
		n += len(s.Requires)
	}
	return n
}
