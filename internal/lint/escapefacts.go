package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// EscapeFacts holds the gc escape-analysis verdicts for a package set,
// parsed from `go build -gcflags=-m` diagnostics and keyed by absolute
// "file:line". They are the dynamic cross-check for the static
// allocation analyzers: a heap fact confirms a hotalloc/boxing finding
// against the compiler's own escape analysis, while a stack fact
// ("does not escape") proves the flagged expression never reaches the
// heap and downgrades the finding to suppressed.
//
// The facts are line-granular on purpose. The compiler reports column
// positions from its own IR, which routinely disagree with go/ast
// positions by a token or two; matching on file:line trades a little
// precision (two allocations on one line share a verdict) for zero
// false mismatches.
type EscapeFacts struct {
	// Heap maps "file:line" to the compiler messages proving a heap
	// allocation there ("escapes to heap", "moved to heap: x").
	Heap map[string][]string
	// Stack maps "file:line" to true where the compiler proved an
	// allocation does not escape.
	Stack map[string]bool
	// Cached reports whether the diagnostics were replayed from the
	// on-disk cache instead of recompiling.
	Cached bool
}

// HeapCount and StackCount size the fact tables for -stats.
func (f *EscapeFacts) HeapCount() int  { return len(f.Heap) }
func (f *EscapeFacts) StackCount() int { return len(f.Stack) }

// LoadEscapeFacts compiles the given package patterns with the gc
// escape-analysis diagnostics enabled (`go build -gcflags=-m`) in dir
// ("" for the current directory) and parses the verdicts.
//
// The raw diagnostics are cached on disk under `.esselint-cache/` at
// the module root (override the directory with ESSELINT_CACHE_DIR;
// set it to "off" to disable). The cache key is a content hash of
// go.mod, go.sum and every .go source in the hot packages — the only
// packages whose findings CrossCheck consults — plus the toolchain
// version and the build patterns, so an unchanged hot tree replays
// the diagnostics without paying the `go build -gcflags=-m` compile.
// CI persists the directory across runs for the same reason.
func LoadEscapeFacts(dir string, patterns ...string) (*EscapeFacts, error) {
	base := dir
	if base == "" {
		base = "."
	}
	abs, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	cacheDir, key := escapeCachePath(abs, patterns)
	if cacheDir != "" {
		if b, err := os.ReadFile(filepath.Join(cacheDir, key)); err == nil {
			facts := ParseEscapeFacts(string(b), abs)
			facts.Cached = true
			return facts, nil
		}
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// All -m diagnostics arrive on stderr; a failed build does too.
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, out)
	}
	if cacheDir != "" {
		//esselint:allow errdrop best-effort cache write; a failed save only costs one recompile next run
		_ = saveEscapeCache(cacheDir, key, out)
	}
	return ParseEscapeFacts(string(out), abs), nil
}

// hotPackageDirs mirrors the hotPackages analyzer scope (hotalloc.go):
// the escape-fact cache key hashes exactly the sources whose findings
// the cross-check can touch. Edits elsewhere keep the cache warm; an
// inlining change that leaks across this boundary is caught by the
// toolchain-version component of the key on upgrades, and by CI's
// periodic cold starts otherwise.
var hotPackageDirs = []string{
	"internal/linalg", "internal/ocean", "internal/covstore", "internal/acoustics", "internal/telemetry",
}

// escapeCachePath decides where the escape-fact cache lives and the
// content-keyed file name for this tree state. It returns ("", "")
// when caching is off (ESSELINT_CACHE_DIR=off) or the key cannot be
// computed (no go.mod at root — outside a module, the hot-dir layout
// is unknown, so silently recompiling is the safe default).
func escapeCachePath(root string, patterns []string) (cacheDir, key string) {
	loc := os.Getenv("ESSELINT_CACHE_DIR")
	if loc == "off" {
		return "", ""
	}
	if loc == "" {
		loc = filepath.Join(root, ".esselint-cache")
	}
	h := sha256.New()
	if _, err := fmt.Fprintf(h, "go=%s patterns=%s\n", runtime.Version(), strings.Join(patterns, " ")); err != nil {
		return "", ""
	}
	hashed := 0
	for _, name := range []string{"go.mod", "go.sum"} {
		if hashFileInto(h, filepath.Join(root, name), name) {
			hashed++
		}
	}
	if hashed == 0 {
		return "", ""
	}
	for _, rel := range hotPackageDirs {
		entries, err := os.ReadDir(filepath.Join(root, rel))
		if err != nil {
			continue
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			hashFileInto(h, filepath.Join(root, rel, name), rel+"/"+name)
		}
	}
	return loc, "escapefacts-" + hex.EncodeToString(h.Sum(nil)[:16]) + ".txt"
}

// hashFileInto mixes label plus the file's content into h; a missing
// or unreadable file contributes only its label, so the key still
// changes when a file appears or disappears.
func hashFileInto(h io.Writer, path, label string) bool {
	if _, err := fmt.Fprintf(h, "file=%s\n", label); err != nil {
		return false
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	if _, err := h.Write(b); err != nil {
		return false
	}
	return true
}

// saveEscapeCache atomically writes the diagnostics under key and
// prunes entries for superseded tree states, keeping the directory at
// one file. Callers treat failure as a cache miss.
func saveEscapeCache(dir, key string, out []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, key+".tmp")
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, key)); err != nil {
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "escapefacts-") && name != key {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParseEscapeFacts extracts escape verdicts from -m compiler output.
// Relative file paths are resolved against dir so the keys match the
// absolute positions the analyzers report.
func ParseEscapeFacts(output, dir string) *EscapeFacts {
	facts := &EscapeFacts{Heap: map[string][]string{}, Stack: map[string]bool{}}
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		// Shape: path/file.go:LINE:COL: message
		file, lineNo, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		key := file + ":" + strconv.Itoa(lineNo)
		switch {
		case strings.Contains(msg, "escapes to heap"), strings.HasPrefix(msg, "moved to heap"):
			facts.Heap[key] = append(facts.Heap[key], msg)
		case strings.Contains(msg, "does not escape"):
			facts.Stack[key] = true
		}
	}
	return facts
}

// splitDiagLine parses "file.go:line:col: msg" (the col is optional).
func splitDiagLine(line string) (file string, lineNo int, msg string, ok bool) {
	if !strings.Contains(line, ".go:") {
		return "", 0, "", false
	}
	i := strings.Index(line, ".go:")
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) < 2 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil || n <= 0 {
		return "", 0, "", false
	}
	// Optional column.
	msg = parts[len(parts)-1]
	if len(parts) == 3 {
		if _, err := strconv.Atoi(parts[1]); err != nil {
			msg = parts[1] + ":" + parts[2]
		}
	}
	return file, n, strings.TrimSpace(msg), true
}

// CrossCheckStats tallies what the escape facts did to a diagnostic
// set.
type CrossCheckStats struct {
	// Confirmed counts findings carrying a same-line heap fact;
	// Downgraded counts findings suppressed by a same-line stack fact.
	Confirmed, Downgraded int
}

// CrossCheck reconciles the allocation analyzers' findings with the
// compiler's escape facts, in place. A hotalloc or boxing finding
// whose line carries a heap fact is annotated "[compiler-confirmed]";
// one whose line carries only a stack fact is downgraded to suppressed
// — the compiler proved the value never reaches the heap, so the
// static report is a false positive. Findings on lines the compiler
// said nothing about (interprocedural call sites, closure creation the
// inliner erased) are left untouched: absence of a fact is not
// evidence.
func CrossCheck(diags []Diagnostic, facts *EscapeFacts) CrossCheckStats {
	var st CrossCheckStats
	for i := range diags {
		d := &diags[i]
		if d.Analyzer != HotAlloc.Name && d.Analyzer != Boxing.Name {
			continue
		}
		if d.Suppressed {
			continue
		}
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		if msgs, ok := facts.Heap[key]; ok {
			d.Message += " [compiler-confirmed: " + msgs[0] + "]"
			st.Confirmed++
			continue
		}
		if facts.Stack[key] {
			d.Suppressed = true
			st.Downgraded++
		}
	}
	return st
}
