package lint

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// EscapeFacts holds the gc escape-analysis verdicts for a package set,
// parsed from `go build -gcflags=-m` diagnostics and keyed by absolute
// "file:line". They are the dynamic cross-check for the static
// allocation analyzers: a heap fact confirms a hotalloc/boxing finding
// against the compiler's own escape analysis, while a stack fact
// ("does not escape") proves the flagged expression never reaches the
// heap and downgrades the finding to suppressed.
//
// The facts are line-granular on purpose. The compiler reports column
// positions from its own IR, which routinely disagree with go/ast
// positions by a token or two; matching on file:line trades a little
// precision (two allocations on one line share a verdict) for zero
// false mismatches.
type EscapeFacts struct {
	// Heap maps "file:line" to the compiler messages proving a heap
	// allocation there ("escapes to heap", "moved to heap: x").
	Heap map[string][]string
	// Stack maps "file:line" to true where the compiler proved an
	// allocation does not escape.
	Stack map[string]bool
}

// HeapCount and StackCount size the fact tables for -stats.
func (f *EscapeFacts) HeapCount() int  { return len(f.Heap) }
func (f *EscapeFacts) StackCount() int { return len(f.Stack) }

// LoadEscapeFacts compiles the given package patterns with the gc
// escape-analysis diagnostics enabled (`go build -gcflags=-m`) in dir
// ("" for the current directory) and parses the verdicts. The build
// artifacts are discarded; repeated runs replay the cached
// diagnostics, so the cross-check costs one compile at most.
func LoadEscapeFacts(dir string, patterns ...string) (*EscapeFacts, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// All -m diagnostics arrive on stderr; a failed build does too.
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, out)
	}
	base := dir
	if base == "" {
		base = "."
	}
	abs, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	return ParseEscapeFacts(string(out), abs), nil
}

// ParseEscapeFacts extracts escape verdicts from -m compiler output.
// Relative file paths are resolved against dir so the keys match the
// absolute positions the analyzers report.
func ParseEscapeFacts(output, dir string) *EscapeFacts {
	facts := &EscapeFacts{Heap: map[string][]string{}, Stack: map[string]bool{}}
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		// Shape: path/file.go:LINE:COL: message
		file, lineNo, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		key := file + ":" + strconv.Itoa(lineNo)
		switch {
		case strings.Contains(msg, "escapes to heap"), strings.HasPrefix(msg, "moved to heap"):
			facts.Heap[key] = append(facts.Heap[key], msg)
		case strings.Contains(msg, "does not escape"):
			facts.Stack[key] = true
		}
	}
	return facts
}

// splitDiagLine parses "file.go:line:col: msg" (the col is optional).
func splitDiagLine(line string) (file string, lineNo int, msg string, ok bool) {
	if !strings.Contains(line, ".go:") {
		return "", 0, "", false
	}
	i := strings.Index(line, ".go:")
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) < 2 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil || n <= 0 {
		return "", 0, "", false
	}
	// Optional column.
	msg = parts[len(parts)-1]
	if len(parts) == 3 {
		if _, err := strconv.Atoi(parts[1]); err != nil {
			msg = parts[1] + ":" + parts[2]
		}
	}
	return file, n, strings.TrimSpace(msg), true
}

// CrossCheckStats tallies what the escape facts did to a diagnostic
// set.
type CrossCheckStats struct {
	// Confirmed counts findings carrying a same-line heap fact;
	// Downgraded counts findings suppressed by a same-line stack fact.
	Confirmed, Downgraded int
}

// CrossCheck reconciles the allocation analyzers' findings with the
// compiler's escape facts, in place. A hotalloc or boxing finding
// whose line carries a heap fact is annotated "[compiler-confirmed]";
// one whose line carries only a stack fact is downgraded to suppressed
// — the compiler proved the value never reaches the heap, so the
// static report is a false positive. Findings on lines the compiler
// said nothing about (interprocedural call sites, closure creation the
// inliner erased) are left untouched: absence of a fact is not
// evidence.
func CrossCheck(diags []Diagnostic, facts *EscapeFacts) CrossCheckStats {
	var st CrossCheckStats
	for i := range diags {
		d := &diags[i]
		if d.Analyzer != HotAlloc.Name && d.Analyzer != Boxing.Name {
			continue
		}
		if d.Suppressed {
			continue
		}
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		if msgs, ok := facts.Heap[key]; ok {
			d.Message += " [compiler-confirmed: " + msgs[0] + "]"
			st.Confirmed++
			continue
		}
		if facts.Stack[key] {
			d.Suppressed = true
			st.Downgraded++
		}
	}
	return st
}
