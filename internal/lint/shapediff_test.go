package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShapecheckDifferential injects a transposed-operand bug into a
// frozen ESSE analysis kernel and asserts shapecheck reports the exact
// line — and only that line — while the pristine kernel stays clean.
func TestShapecheckDifferential(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "shapediff", "kernel.go"))
	if err != nil {
		t.Fatal(err)
	}

	run := func(dir string) []Diagnostic {
		t.Helper()
		pkg, err := LoadDir(".", dir)
		if err != nil {
			t.Fatalf("loading kernel from %s: %v", dir, err)
		}
		an := *ShapeCheck
		an.Scope = func(string) bool { return true }
		diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{&an})
		if err != nil {
			t.Fatalf("running shapecheck: %v", err)
		}
		return diags
	}

	if diags := run(filepath.Join("testdata", "src", "shapediff")); len(diags) != 0 {
		t.Fatalf("pristine kernel must lint clean, got %v", diags)
	}

	const pristine = "linalg.MulTA(basis, anom)"
	const injected = "linalg.MulTA(basis.T(), anom)"
	if strings.Count(string(src), pristine) != 1 {
		t.Fatalf("kernel.go must contain exactly one %q", pristine)
	}
	mutated := strings.Replace(string(src), pristine, injected, 1)

	// The line number of the injected bug, computed from the mutated
	// source rather than hard-coded.
	wantLine := 0
	for i, line := range strings.Split(mutated, "\n") {
		if strings.Contains(line, injected) {
			wantLine = i + 1
			break
		}
	}
	if wantLine == 0 {
		t.Fatal("injection failed to land")
	}

	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "kernel.go"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := run(tmp)
	if len(diags) != 1 {
		t.Fatalf("injected kernel: want exactly 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Pos.Line != wantLine {
		t.Errorf("diagnostic at line %d, want injected line %d (%s)", d.Pos.Line, wantLine, d)
	}
	if !strings.Contains(d.Message, "row counts provably mismatch (3 vs 12)") {
		t.Errorf("diagnostic message %q does not name the transposed mismatch", d.Message)
	}
}
