package lint

import (
	"path/filepath"
	"reflect"
	"testing"
)

func loadFixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadDir(".", filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func TestCallGraphEdges(t *testing.T) {
	g := BuildCallGraph([]*Package{loadFixturePkg(t, "interproc")})
	want := map[string][]string{
		"interproc.Leaf":        nil,
		"interproc.Mid":         {"interproc.Leaf"},
		"interproc.TopFn":       {"interproc.Leaf", "interproc.Mid"},
		"interproc.Even":        {"interproc.Odd"},
		"interproc.Odd":         {"interproc.Even"},
		"interproc.SelfRec":     {"interproc.SelfRec"},
		"interproc.CallsEmits":  {"interproc.Emits"},
		"interproc.CallsBlocks": {"interproc.Blocks"},
	}
	for key, callees := range want {
		fn := g.Funcs[key]
		if fn == nil {
			t.Fatalf("missing call-graph node %s (have %v)", key, g.Keys)
		}
		if !reflect.DeepEqual(fn.Callees, callees) {
			t.Errorf("%s callees = %v, want %v", key, fn.Callees, callees)
		}
	}
}

// sccOf returns the component containing key, and its emission index.
func sccOf(t *testing.T, g *CallGraph, key string) ([]string, int) {
	t.Helper()
	for i, scc := range g.SCCs {
		for _, k := range scc {
			if k == key {
				return scc, i
			}
		}
	}
	t.Fatalf("%s not in any SCC", key)
	return nil, 0
}

func TestSCCGroupingAndOrder(t *testing.T) {
	g := BuildCallGraph([]*Package{loadFixturePkg(t, "interproc")})

	evenSCC, _ := sccOf(t, g, "interproc.Even")
	if !reflect.DeepEqual(evenSCC, []string{"interproc.Even", "interproc.Odd"}) {
		t.Errorf("Even/Odd SCC = %v, want the mutually recursive pair together", evenSCC)
	}
	selfSCC, _ := sccOf(t, g, "interproc.SelfRec")
	if !reflect.DeepEqual(selfSCC, []string{"interproc.SelfRec"}) {
		t.Errorf("SelfRec SCC = %v, want a singleton", selfSCC)
	}

	// Callee components must be emitted before their callers'.
	_, leafIdx := sccOf(t, g, "interproc.Leaf")
	_, midIdx := sccOf(t, g, "interproc.Mid")
	_, topIdx := sccOf(t, g, "interproc.TopFn")
	if !(leafIdx < midIdx && midIdx < topIdx) {
		t.Errorf("SCC order not callee-first: Leaf=%d Mid=%d TopFn=%d", leafIdx, midIdx, topIdx)
	}
}

func TestCallGraphDeterminism(t *testing.T) {
	pkg := loadFixturePkg(t, "interproc")
	a := BuildCallGraph([]*Package{pkg})
	b := BuildCallGraph([]*Package{pkg})
	if !reflect.DeepEqual(a.Keys, b.Keys) {
		t.Errorf("Keys differ across builds")
	}
	if !reflect.DeepEqual(a.SCCs, b.SCCs) {
		t.Errorf("SCCs differ across builds:\n%v\n%v", a.SCCs, b.SCCs)
	}
}

func TestEffectSummaries(t *testing.T) {
	p := BuildProgram([]*Package{loadFixturePkg(t, "interproc")})
	cases := []struct {
		key  string
		has  Effects
		lack Effects
	}{
		{"interproc.Leaf", 0, EffMayBlock | EffSpawns | EffRangesMap | EffSendsChan | EffEmitsOutput},
		{"interproc.Emits", EffEmitsOutput, EffMayBlock},
		{"interproc.CallsEmits", EffEmitsOutput, EffMayBlock},
		{"interproc.Blocks", EffMayBlock, EffEmitsOutput},
		{"interproc.CallsBlocks", EffMayBlock, EffEmitsOutput},
		{"interproc.Spawns", EffSpawns | EffSendsChan, EffEmitsOutput},
		{"interproc.RangesMap", EffRangesMap, EffMayBlock},
		// The recursive pair converges without looping forever.
		{"interproc.Even", 0, EffMayBlock},
		{"interproc.SelfRec", 0, EffMayBlock},
		// Allocation effects: direct, transitive, and across a
		// mutually recursive SCC (only AllocEven allocates directly).
		{"interproc.Allocates", EffAllocates, EffMayBlock},
		{"interproc.CallsAllocates", EffAllocates, EffMayBlock},
		{"interproc.AllocEven", EffAllocates, 0},
		{"interproc.AllocOdd", EffAllocates, 0},
		// Lazy-init guards amortize: neither the guarded allocation
		// nor a guarded call to an allocator produces the bit.
		{"interproc.LazyAlloc", 0, EffAllocates},
		{"interproc.CallsLazyAlloc", 0, EffAllocates},
		{"interproc.GuardedCall", 0, EffAllocates},
		// Spawned literals are the spawn's cost, not an allocation
		// effect of the spawner.
		{"interproc.Spawns", EffSpawns, EffAllocates},
	}
	for _, c := range cases {
		eff := p.Effects[c.key]
		if eff&c.has != c.has {
			t.Errorf("%s effects = %b, missing %b", c.key, eff, c.has)
		}
		if eff&c.lack != 0 {
			t.Errorf("%s effects = %b, should not include %b", c.key, eff, c.lack)
		}
	}
}

// TestReleaseAndNetworkEffects pins the v7 effect bits on the fixture
// packages that exercise them: EffReleases must mark a helper that
// closes its parameter and not one that only reads it (the transfer
// test resleak's interprocedural discharge depends on), and EffNetwork
// must propagate from a direct net.Dial to its in-set caller (the
// trigger retrybudget's helper case depends on).
func TestReleaseAndNetworkEffects(t *testing.T) {
	res := BuildProgram([]*Package{loadFixturePkg(t, "resleak")})
	if res.Effects["resleak.closeAll"]&EffReleases == 0 {
		t.Errorf("closeAll (closes its *os.File parameter) lacks EffReleases: %b", res.Effects["resleak.closeAll"])
	}
	if res.Effects["resleak.report"]&EffReleases != 0 {
		t.Errorf("report (only reads its parameter) must not carry EffReleases: %b", res.Effects["resleak.report"])
	}

	rb := BuildProgram([]*Package{loadFixturePkg(t, "retrybudget")})
	for _, key := range []string{"retrybudget.dialOnce", "retrybudget.hammer"} {
		if rb.Effects[key]&EffNetwork == 0 {
			t.Errorf("%s (reaches net.Dial) lacks EffNetwork: %b", key, rb.Effects[key])
		}
	}
	if rb.Effects["retrybudget.channelLoop"]&EffNetwork != 0 {
		t.Errorf("channelLoop (no network I/O) must not carry EffNetwork: %b", rb.Effects["retrybudget.channelLoop"])
	}
}

func TestNumericSummaryFixpoint(t *testing.T) {
	p := BuildProgram([]*Package{loadFixturePkg(t, "divguardsum")})
	base := func(key string) uint8 {
		t.Helper()
		sum := p.Numeric[key]
		if sum == nil || len(sum.Base) != 1 {
			t.Fatalf("missing single-result numeric summary for %s", key)
		}
		return sum.Base[0]
	}
	allPos := func(key string) uint8 {
		t.Helper()
		return p.Numeric[key].AllPos[0]
	}

	if got := base("divguardsum.clampPos"); got != sfPos {
		t.Errorf("clampPos Base = %b, want positive (%b)", got, sfPos)
	}
	if got := base("divguardsum.clampNonNeg"); got != sfNonNeg {
		t.Errorf("clampNonNeg Base = %b, want non-negative (%b)", got, sfNonNeg)
	}
	if got := base("divguardsum.half"); got != 0 {
		t.Errorf("half Base = %b, want nothing proven", got)
	}
	if got := allPos("divguardsum.half"); got != sfPos {
		t.Errorf("half AllPos = %b, want positive (%b)", got, sfPos)
	}
	if got := allPos("divguardsum.square"); got != sfPos {
		t.Errorf("square AllPos = %b, want positive (%b)", got, sfPos)
	}
	// The mutually recursive pair must reach the greatest fixpoint, not
	// stay at the optimistic all-bits initialization or collapse to 0.
	for _, key := range []string{"divguardsum.evenPow", "divguardsum.oddPow"} {
		if got := base(key); got != sfPos {
			t.Errorf("%s Base = %b, want positive (%b) via recursion fixpoint", key, got, sfPos)
		}
	}
	// Multi-result summary: both results of posPair prove positive.
	sum := p.Numeric["divguardsum.posPair"]
	if sum == nil || len(sum.Base) != 2 {
		t.Fatalf("posPair summary missing or wrong arity: %+v", sum)
	}
	if sum.Base[0] != sfPos || sum.Base[1] != sfPos {
		t.Errorf("posPair Base = %b,%b, want both positive", sum.Base[0], sum.Base[1])
	}
}

func TestLockPairCollection(t *testing.T) {
	p := BuildProgram([]*Package{loadFixturePkg(t, "lockheld")})
	type ba struct{ before, after string }
	seen := map[ba]bool{}
	for _, pr := range p.LockPairs {
		seen[ba{pr.Before, pr.After}] = true
	}
	if !seen[ba{"(lockheld.pair).a", "(lockheld.pair).b"}] ||
		!seen[ba{"(lockheld.pair).b", "(lockheld.pair).a"}] {
		t.Errorf("expected both a→b and b→a pairs, got %+v", p.LockPairs)
	}
	// The consistently ordered type must only ever appear one way.
	if seen[ba{"(lockheld.ordered).b", "(lockheld.ordered).a"}] {
		t.Errorf("ordered type reported an inverted pair: %+v", p.LockPairs)
	}
	if !seen[ba{"(lockheld.ordered).a", "(lockheld.ordered).b"}] {
		t.Errorf("ordered type's a→b pair missing: %+v", p.LockPairs)
	}
}

// TestDimSummaries pins the shape summaries shapecheck computes
// bottom-up: direct, transitive, and mutually recursive functions all
// converge to exact parametric result shapes.
func TestDimSummaries(t *testing.T) {
	p := BuildProgram([]*Package{loadFixturePkg(t, "dimsum")})
	shape := func(r, c string) []*DimShape { return []*DimShape{{R: r, C: c}} }
	wantResults := map[string][]*DimShape{
		"dimsum.Outer":    shape("$l0", "$l1"),
		"dimsum.Chain":    shape("$l0", "$l0"),
		"dimsum.Gram":     shape("$c0", "$c0"),
		"dimsum.MulPair":  shape("$r0", "$c1"),
		"dimsum.MulChain": shape("$r0", "$c1"),
		"dimsum.Even":     shape("$r0", "$c0"),
		"dimsum.Odd":      shape("$c0", "$r0"),
		"dimsum.Mixed":    shape("$l0", "?"),
	}
	for key, want := range wantResults {
		sum := p.DimSummaries[key]
		if sum == nil {
			t.Errorf("missing DimSummary for %s", key)
			continue
		}
		if !reflect.DeepEqual(sum.Results, want) {
			t.Errorf("%s Results = %+v, want %+v", key, sum.Results[0], want[0])
		}
	}
	// Mul's conformance constraint travels: directly into MulPair's
	// summary and transitively into MulChain's. Gram's is trivially
	// satisfied and must not appear.
	wantReq := [][2]string{{"$c0", "$r1"}}
	for _, key := range []string{"dimsum.MulPair", "dimsum.MulChain"} {
		if sum := p.DimSummaries[key]; sum == nil || !reflect.DeepEqual(sum.Requires, wantReq) {
			t.Errorf("%s Requires = %+v, want %+v", key, sum, wantReq)
		}
	}
	for _, key := range []string{"dimsum.Outer", "dimsum.Gram", "dimsum.Even", "dimsum.Odd"} {
		if sum := p.DimSummaries[key]; sum != nil && len(sum.Requires) != 0 {
			t.Errorf("%s has unexpected Requires %+v", key, sum.Requires)
		}
	}
}

// TestDimSummariesNonConvergent proves the soundness valve: when an SCC
// fails to reach a fixpoint within the iteration budget its summaries
// are deleted outright, and the analyzer runs finding-free without
// them rather than trusting a half-converged fact.
func TestDimSummariesNonConvergent(t *testing.T) {
	saved := dimSummaryIterCap
	dimSummaryIterCap = 0
	defer func() { dimSummaryIterCap = saved }()

	pkg := loadFixturePkg(t, "dimsum")
	p := BuildProgram([]*Package{pkg})
	for key, sum := range p.DimSummaries {
		t.Errorf("summary %s survived a forced non-convergence: %+v", key, sum)
	}
	// The fixture is clean code: with all summaries dropped the
	// analyzer must stay silent, not crash or invent findings.
	an := *ShapeCheck
	an.Scope = func(string) bool { return true }
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{&an})
	if err != nil {
		t.Fatalf("running shapecheck without summaries: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic without summaries: %s", d)
	}
}
