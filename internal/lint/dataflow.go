package lint

import "go/ast"

// This file implements the generic forward-dataflow fixpoint solver the
// CFG analyzers share. An analysis supplies a lattice (Top, Meet,
// Equal), a boundary fact for function entry, a block transfer
// function, and an optional edge refinement (used by divguard to learn
// from branch conditions). The solver iterates a worklist to a
// fixpoint; analyses must be monotone with finite-height lattices for
// termination, and a generous iteration cap turns any violation into a
// sound over-approximation rather than a hang.

// Fact is one dataflow fact; its concrete type is private to each
// analysis.
type Fact any

// FlowAnalysis defines a forward dataflow problem over a CFG.
type FlowAnalysis interface {
	// Boundary is the fact at function entry.
	Boundary() Fact
	// Top is the identity of Meet — the fact of an unreached block.
	Top() Fact
	// Transfer pushes a fact through the statements of b.
	Transfer(b *Block, in Fact) Fact
	// FlowEdge refines the fact flowing along e (branch conditions).
	// Implementations must not mutate out; return it unchanged if the
	// edge carries no information.
	FlowEdge(e *Edge, out Fact) Fact
	// Meet combines facts at a join point.
	Meet(a, b Fact) Fact
	// Equal reports whether two facts are identical (fixpoint test).
	Equal(a, b Fact) bool
}

// FlowResult carries the solved facts: In[b] is the fact at the entry
// of block b, Out[b] after its transfer.
type FlowResult struct {
	In, Out map[*Block]Fact
}

// fallOffExitBlocks returns the blocks feeding the synthetic Exit whose
// last node is neither a return statement nor a terminating call —
// i.e. the fall-off-the-end paths a "discharged on every path" analysis
// must check in addition to the explicit returns. A block appears once
// even if several edges reach Exit from it.
func fallOffExitBlocks(cfg *CFG) []*Block {
	var out []*Block
	seen := map[*Block]bool{}
	for _, e := range cfg.Exit.Preds {
		b := e.From
		if seen[b] {
			continue
		}
		seen[b] = true
		if len(b.Nodes) > 0 {
			last := b.Nodes[len(b.Nodes)-1]
			if _, isRet := last.(*ast.ReturnStmt); isRet {
				continue
			}
			if es, isExpr := last.(*ast.ExprStmt); isExpr && isTerminatingCall(es.X) {
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

// Forward solves the analysis over cfg and returns the per-block facts.
func Forward(cfg *CFG, an FlowAnalysis) *FlowResult {
	res := &FlowResult{In: map[*Block]Fact{}, Out: map[*Block]Fact{}}
	for _, b := range cfg.Blocks {
		res.In[b] = an.Top()
		res.Out[b] = an.Top()
	}
	res.In[cfg.Entry] = an.Boundary()
	res.Out[cfg.Entry] = an.Transfer(cfg.Entry, an.Boundary())

	work := make([]*Block, 0, len(cfg.Blocks))
	queued := make([]bool, len(cfg.Blocks))
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}
	// Seed every block (in creation order, which approximates program
	// order): transfer functions may generate facts mid-graph, not just
	// at the boundary.
	for _, b := range cfg.Blocks {
		if b != cfg.Entry {
			push(b)
		}
	}

	// Cap the iteration count: |blocks| * a small lattice-height budget.
	budget := (len(cfg.Blocks) + 1) * 64
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		in := an.Top()
		for _, e := range b.Preds {
			in = an.Meet(in, an.FlowEdge(e, res.Out[e.From]))
		}
		if b == cfg.Entry {
			in = an.Meet(in, an.Boundary())
		}
		out := an.Transfer(b, in)
		res.In[b] = in
		if !an.Equal(out, res.Out[b]) {
			res.Out[b] = out
			for _, e := range b.Succs {
				push(e.To)
			}
		}
	}
	return res
}
