package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path    string // import path
	RelPath string // module-relative import path ("." = module root)
	Dir     string
	Fset    *token.FileSet
	// Files are the type-checked non-test files; TestFiles are parsed
	// only (test files may import packages we have no export data for).
	Files     []*ast.File
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	Standard     bool
	ForTest      string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

// Load enumerates the packages matching patterns (resolved relative to
// dir, "" = current directory) with the go tool, builds export data for
// their dependencies, and type-checks each matched package from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, m := range metas {
		// Analyzer fixtures under testdata/ are deliberately broken code;
		// exclude them explicitly rather than trusting `go list` pattern
		// semantics to keep doing it for us.
		if underTestdata(m.ImportPath) {
			continue
		}
		p, err := checkPackage(fset, imp, m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads the single package rooted at dir (which need not belong
// to the enclosing module — analyzer test fixtures live under
// testdata/). Imports are resolved by asking the go tool, from modDir,
// for export data of everything the fixture files mention.
func LoadDir(modDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading fixture dir: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exports := map[string]string{}
	if len(paths) > 0 {
		_, exports, err = goList(modDir, paths)
		if err != nil {
			return nil, err
		}
	}
	name := files[0].Name.Name
	pkg := &Package{
		Path:    name,
		RelPath: name,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
	}
	return pkg, typeCheck(pkg, newExportImporter(fset, exports))
}

// underTestdata reports whether any element of the slash-separated
// import path is "testdata".
func underTestdata(importPath string) bool {
	for _, seg := range strings.Split(importPath, "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

// goList runs `go list -e -deps -export -json` and returns the matched
// (non-dep-only) package metas plus an import-path → export-data map
// covering the whole dependency closure.
func goList(dir string, patterns []string) ([]listPkg, map[string]string, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	exports := map[string]string{}
	var metas []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// ForTest entries are synthesized test variants; skip them as
		// analysis targets (their export data is still collected above).
		if !p.DepOnly && !p.Standard && p.ForTest == "" {
			metas = append(metas, p)
		}
	}
	return metas, exports, nil
}

// newExportImporter returns a go/types importer that resolves every
// import from the export-data files the go tool just built. This works
// fully offline: no module downloads, no source re-checking.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, m listPkg) (*Package, error) {
	if len(m.CgoFiles) > 0 {
		return nil, fmt.Errorf("lint: %s uses cgo, which esselint does not support", m.ImportPath)
	}
	rel := m.ImportPath
	if m.Module != nil && m.Module.Path != "" {
		switch {
		case rel == m.Module.Path:
			rel = "."
		case strings.HasPrefix(rel, m.Module.Path+"/"):
			rel = rel[len(m.Module.Path)+1:]
		}
	}
	pkg := &Package{Path: m.ImportPath, RelPath: rel, Dir: m.Dir, Fset: fset}
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, name := range append(append([]string{}, m.TestGoFiles...), m.XTestGoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.TestFiles = append(pkg.TestFiles, f)
	}
	return pkg, typeCheck(pkg, imp)
}

// typeCheck fills pkg.Pkg/Info from pkg.Files.
func typeCheck(pkg *Package, imp types.Importer) error {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	p, err := conf.Check(pkg.Path, pkg.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Pkg = p
	return nil
}
