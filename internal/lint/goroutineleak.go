package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak flags `go` statements whose spawned function literal
// blocks on a channel the spawner does not release on every path. An
// ensemble run that converges early and returns without draining its
// result channel strands worker goroutines forever: each holds its
// member's state slices, and over a long forecast the leaked workers
// accumulate into real memory pressure and mask shutdown bugs.
//
// The analysis is intraprocedural and deliberately modest:
//
//   - Only function-literal goroutines are examined, and only channel
//     operands that resolve to a channel created in the spawning
//     function (a channel received as a parameter is the caller's
//     contract, not ours).
//   - A blocking operation is a send, receive, or range on a channel
//     outside a select with an escape (a second case or a default).
//   - A send-blocked channel must be released on every CFG path from
//     the go statement to function exit: a receive or range on the
//     channel, passing the channel to another function, storing it, or
//     waiting on a sync.WaitGroup the goroutine calls Done on.
//     Releases inside defers count for every path.
//   - A receive-blocked channel (including range) needs a send, close,
//     hand-off, or store of the channel anywhere in the spawning
//     function — including inside sibling goroutine literals, since a
//     producer goroutine closing the channel is the standard pattern.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "flag go statements whose goroutine blocks on a channel with no select escape and " +
		"no drain/close/WaitGroup release on every path of the spawner",
	Scope: underInternalOrCmd,
	Run:   runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range FuncNodes(f) {
			analyzeSpawner(pass, fn)
		}
	}
	return nil
}

// chanOp is one potentially blocking channel operation inside a spawned
// goroutine, resolved to the channel variable as the spawner sees it.
type chanOp struct {
	ch   *types.Var
	send bool
}

func analyzeSpawner(pass *Pass, fn ast.Node) {
	body := funcBody(fn)
	if body == nil {
		return
	}
	var gos []*ast.GoStmt
	walkOwnStmts(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
			return false // the literal's body belongs to the goroutine
		}
		return true
	})
	if len(gos) == 0 {
		return
	}
	var cfg *CFG // built lazily: only needed when a goroutine can block
	for _, g := range gos {
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			continue
		}
		ops, wgs := collectGoroutineOps(pass, fn, g, lit)
		checked := map[*types.Var]bool{}
		for _, op := range ops {
			if checked[op.ch] {
				continue
			}
			checked[op.ch] = true
			if op.send {
				if cfg == nil {
					cfg = BuildCFG(fn)
				}
				if sendLeaks(pass, cfg, g, op.ch, wgs) {
					pass.Reportf(g.Pos(),
						"goroutine sends on %q but the spawner does not drain it (or Wait on its WaitGroup) on every path; "+
							"an early return strands the goroutine forever", op.ch.Name())
				}
			} else {
				if receiveLeaks(pass, fn, g, op.ch) {
					pass.Reportf(g.Pos(),
						"goroutine receives on %q but nothing in the spawner ever sends on or closes it; "+
							"the goroutine blocks forever", op.ch.Name())
				}
			}
		}
	}
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch v := fn.(type) {
	case *ast.FuncDecl:
		return v.Body
	case *ast.FuncLit:
		return v.Body
	}
	return nil
}

// walkOwnStmts walks the statements a function executes itself,
// pruning nested function literals: their go statements belong to the
// nested function's own spawner analysis.
func walkOwnStmts(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// collectGoroutineOps gathers the blocking channel operations of the
// spawned literal, mapping literal parameters back to the call
// arguments and keeping only channels created inside the spawning
// function fn. It also returns the set of WaitGroup variables the
// goroutine calls Done on (again as the spawner's variables).
func collectGoroutineOps(pass *Pass, fn ast.Node, g *ast.GoStmt, lit *ast.FuncLit) ([]chanOp, map[*types.Var]bool) {
	escapable := escapableComms(lit.Body)
	var ops []chanOp
	wgs := map[*types.Var]bool{}

	resolve := func(e ast.Expr) *types.Var {
		root := rootIdent(e)
		if root == nil {
			return nil
		}
		v, ok := pass.Info.Uses[root].(*types.Var)
		if !ok {
			return nil
		}
		// A literal parameter stands for the corresponding call argument.
		if i := paramIndex(pass, lit, v); i >= 0 && i < len(g.Call.Args) {
			argRoot := rootIdent(g.Call.Args[i])
			if argRoot == nil {
				return nil
			}
			v, ok = pass.Info.Uses[argRoot].(*types.Var)
			if !ok {
				return nil
			}
		}
		// Only channels/WaitGroups created in the spawning function's
		// body are the spawner's responsibility: one received as a
		// parameter is the caller's contract, one declared inside the
		// literal never outlives the goroutine's own reasoning.
		spawnerBody := funcBody(fn)
		if spawnerBody == nil || !declaredWithin(v, spawnerBody) || declaredWithin(v, lit.Body) {
			return nil
		}
		return v
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			return false // a different goroutine's operations
		case *ast.SendStmt:
			if escapable[ast.Stmt(v)] {
				return true
			}
			if ch := resolve(v.Chan); ch != nil && isChanVar(ch) {
				ops = append(ops, chanOp{ch: ch, send: true})
			}
		case *ast.UnaryExpr:
			if v.Op != token.ARROW {
				return true
			}
			if ch := resolve(v.X); ch != nil && isChanVar(ch) {
				ops = append(ops, chanOp{ch: ch, send: false})
			}
		case *ast.AssignStmt, *ast.ExprStmt:
			if st, ok := n.(ast.Stmt); ok && escapable[st] {
				return false
			}
		case *ast.RangeStmt:
			if isChanType(pass, v.X) {
				if ch := resolve(v.X); ch != nil && isChanVar(ch) {
					ops = append(ops, chanOp{ch: ch, send: false})
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if wg := resolve(sel.X); wg != nil && isWaitGroupVar(wg) {
					wgs[wg] = true
				}
			}
		}
		return true
	})
	return ops, wgs
}

// escapableComms returns the comm statements of selects that cannot
// block indefinitely on a single channel: those with a default or at
// least two cases.
func escapableComms(body *ast.BlockStmt) map[ast.Stmt]bool {
	out := map[ast.Stmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		cases := 0
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm == nil {
					hasDefault = true
				} else {
					cases++
				}
			}
		}
		if hasDefault || cases >= 2 {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					out[cc.Comm] = true
				}
			}
		}
		return true
	})
	return out
}

func paramIndex(pass *Pass, lit *ast.FuncLit, v *types.Var) int {
	if lit.Type.Params == nil {
		return -1
	}
	i := 0
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if pass.Info.Defs[name] == v {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return -1
}

func declaredWithin(v *types.Var, node ast.Node) bool {
	return v.Pos() >= node.Pos() && v.Pos() < node.End()
}

func isChanVar(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Chan)
	return ok
}

func isChanType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func isWaitGroupVar(v *types.Var) bool {
	t := v.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// --- send-side path analysis ----------------------------------------------

// sendLeaks reports whether some path from the go statement to function
// exit never releases ch (receives/ranges it, passes or stores it, or
// waits on a linked WaitGroup).
func sendLeaks(pass *Pass, cfg *CFG, g *ast.GoStmt, ch *types.Var, wgs map[*types.Var]bool) bool {
	// A release inside a defer runs on every exit path.
	for _, d := range cfg.Defers {
		if releasesChan(pass, d.Call, ch, wgs) {
			return false
		}
	}
	an := &leakFlow{pass: pass, g: g, ch: ch, wgs: wgs}
	res := Forward(cfg, an)
	leaked, _ := res.In[cfg.Exit].(bool)
	return leaked
}

// leakFlow is a may-analysis: the fact is true when control may reach
// the current point with the goroutine spawned and its channel not yet
// released. Meet is OR, Top is false.
type leakFlow struct {
	pass *Pass
	g    *ast.GoStmt
	ch   *types.Var
	wgs  map[*types.Var]bool
}

func (a *leakFlow) Boundary() Fact                  { return false }
func (a *leakFlow) Top() Fact                       { return false }
func (a *leakFlow) FlowEdge(e *Edge, out Fact) Fact { return out }
func (a *leakFlow) Meet(x, y Fact) Fact             { return x.(bool) || y.(bool) }
func (a *leakFlow) Equal(x, y Fact) bool            { return x.(bool) == y.(bool) }

func (a *leakFlow) Transfer(b *Block, in Fact) Fact {
	fact := in.(bool)
	for _, n := range b.Nodes {
		if g, ok := n.(*ast.GoStmt); ok && g == a.g {
			fact = true
			continue
		}
		released := false
		WalkBlockNode(n, func(m ast.Node) bool {
			if released {
				return false
			}
			switch v := m.(type) {
			case *ast.GoStmt:
				return false
			case *ast.UnaryExpr:
				if v.Op == token.ARROW && a.isChan(v.X) {
					released = true
				}
			case *ast.RangeStmt:
				if a.isChan(v.X) {
					released = true
				}
			case *ast.CallExpr:
				if releasesChan(a.pass, v, a.ch, a.wgs) {
					released = true
					return false
				}
			case *ast.AssignStmt:
				// Storing the channel hands responsibility elsewhere.
				for _, rhs := range v.Rhs {
					if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && a.pass.Info.Uses[id] == a.ch {
						released = true
					}
				}
			}
			return true
		})
		if released {
			fact = false
		}
	}
	return fact
}

func (a *leakFlow) isChan(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && a.pass.Info.Uses[id] == a.ch
}

// releasesChan reports whether the call receives-from/forwards ch or
// waits on one of the linked WaitGroups.
func releasesChan(pass *Pass, call *ast.CallExpr, ch *types.Var, wgs map[*types.Var]bool) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
		if root := rootIdent(sel.X); root != nil {
			if v, ok := pass.Info.Uses[root].(*types.Var); ok && wgs[v] {
				return true
			}
		}
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.Uses[id] == ch {
			return true
		}
	}
	return false
}

// --- receive-side whole-function check ------------------------------------

// receiveLeaks reports whether nothing in the spawning function — on
// any path, in any sibling goroutine — ever sends on, closes, forwards,
// or stores ch.
func receiveLeaks(pass *Pass, fn ast.Node, g *ast.GoStmt, ch *types.Var) bool {
	isCh := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.Info.Uses[id] == ch
	}
	fed := false
	ast.Inspect(funcBody(fn), func(n ast.Node) bool {
		if fed {
			return false
		}
		if n == g {
			// The spawning statement itself: its literal's receives are
			// what we are checking, but a *send* in the same literal on
			// the same channel would be self-feeding, which never helps.
			// Other channels' traffic in the literal still counts, so
			// only the call arguments are excluded (the channel being
			// passed in is the binding, not a use).
			return true
		}
		switch v := n.(type) {
		case *ast.SendStmt:
			if isCh(v.Chan) {
				fed = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "close" && len(v.Args) == 1 && isCh(v.Args[0]) {
				fed = true
				return false
			}
			if v == g.Call {
				return true // skip the binding arguments, walk the literal
			}
			for _, arg := range v.Args {
				if isCh(arg) {
					fed = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				if isCh(rhs) {
					fed = true
				}
			}
		}
		return true
	})
	return !fed
}

// rootIdent returns the base identifier an expression reads through:
// x, x.f, x[i], x.f[i].g, (*x), x.m(...) all root at x. Returns nil
// when there is no single base identifier (composite literals, calls
// of package functions, constants).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return nil
		}
	}
}
