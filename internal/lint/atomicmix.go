package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces the all-or-nothing rule for sync/atomic: a field
// or package variable accessed through the sync/atomic functions
// anywhere in the tree must be accessed atomically everywhere. A plain
// read racing an atomic write is just as undefined as two plain
// accesses — the atomic call only orders itself against other atomics.
// The canonical access keys come from the program summary
// (Program.AtomicKeys), so a plain access in one package is checked
// against an atomic access in another.
//
// The analyzer also flags atomic read-modify-write split across two
// operations — Store(Load()+1) in either the function style or the
// typed-atomic style — which loses concurrent updates between the load
// and the store; Add or a CompareAndSwap loop is the single-operation
// form. A Load feeding a CompareAndSwap is the CAS-loop idiom and
// passes.
//
// Escape hatches: constructors (New*/Open*/init, or functions returning
// the owner type) may initialize plainly before the value is published;
// fresh locally-allocated values are owned until they escape. Soundness
// gap: ownership is the same defining-assignment heuristic sharedguard
// uses — publication through a later store is not tracked.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flag plain accesses to fields/variables that are accessed via sync/atomic elsewhere, " +
		"and atomic read-modify-write split across separate Load/Store operations",
	Scope: underInternalOrCmd,
	Run:   runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkAtomicMixDecl(pass, fd)
			}
		}
	}
	return nil
}

func checkAtomicMixDecl(pass *Pass, fd *ast.FuncDecl) {
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	ctx := &lockCtx{Info: pass.Info, Pkg: pass.Pkg, Path: pass.Path, Enclosing: obj.FullName()}
	checkAtomicRMW(pass, ctx, fd)

	if len(pass.Prog.AtomicKeys) == 0 {
		return
	}
	ctorAll := false
	ctorFor := map[string]bool{}
	if fn := pass.Prog.Graph.Funcs[obj.FullName()]; fn != nil {
		ctorAll, ctorFor = constructorOf(fn)
	}
	if ctorAll {
		return
	}
	owned := ownedLocals(pass.Info, fd)
	skip := atomicTargets(pass.Info, fd)
	ast.Inspect(fd, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.SelectorExpr, *ast.Ident:
		default:
			return true
		}
		if skip[e.Pos()] {
			return false
		}
		key := lockKeyOf(ctx, e)
		atomicAt, hot := pass.Prog.AtomicKeys[key]
		if !hot {
			return true
		}
		if owner, isField := ownerOf(key); isField && ctorFor[owner] {
			return false
		}
		if root := rootIdent(e); root != nil {
			if v, isVar := pass.Info.Uses[root].(*types.Var); isVar && owned[v] {
				return false
			}
		}
		pass.Reportf(e.Pos(), "%s is accessed with sync/atomic at %s but plainly here; "+
			"plain and atomic accesses race — use the atomic API at every access", key, atomicAt)
		return false
	})
}

// atomicTargets collects the positions of expressions that ARE the
// atomic accesses: the &x arguments of sync/atomic calls and the
// receivers of typed-atomic method calls. The plain-access walk skips
// them.
func atomicTargets(info *types.Info, root ast.Node) map[token.Pos]bool {
	skip := map[token.Pos]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if e := atomicAddrArg(info, call); e != nil {
			skip[e.Pos()] = true
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if tv, hasType := info.Types[sel.X]; hasType && isTypedAtomic(tv.Type) {
				skip[sel.X.Pos()] = true
			}
		}
		return true
	})
	return skip
}

// checkAtomicRMW flags Store-of-Load on the same key: the two atomic
// operations are individually ordered but the pair is not, so a
// concurrent Add or Store between them is silently overwritten.
func checkAtomicRMW(pass *Pass, ctx *lockCtx, fd *ast.FuncDecl) {
	report := func(call *ast.CallExpr, key string) {
		pass.Reportf(call.Pos(), "read-modify-write of %s is two atomic operations, not one; "+
			"a concurrent update between the Load and the Store is lost — use Add or a CompareAndSwap loop", key)
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Function style: atomic.StoreX(&k, ...atomic.LoadX(&k)...).
		// (The typed methods also live in sync/atomic, but have no &k
		// first argument, so atomicAddrArg filters them out.)
		if obj := StaticCallee(pass.Info, call); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "sync/atomic" && strings.HasPrefix(obj.Name(), "Store") && len(call.Args) >= 2 {
			if target := atomicAddrArg(pass.Info, call); target != nil {
				key := lockKeyOf(ctx, target)
				if loadsKeyFunc(pass.Info, ctx, call.Args[1], key) {
					report(call, key)
					return false
				}
			}
		}
		// Typed style: x.Store(...x.Load()...).
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Store" && len(call.Args) == 1 {
			if tv, hasType := pass.Info.Types[sel.X]; hasType && isTypedAtomic(tv.Type) {
				key := lockKeyOf(ctx, sel.X)
				if loadsKeyTyped(pass.Info, ctx, call.Args[0], key) {
					report(call, key)
					return false
				}
			}
		}
		return true
	})
}

// loadsKeyFunc reports whether e contains a sync/atomic Load* of key.
func loadsKeyFunc(info *types.Info, ctx *lockCtx, e ast.Expr, key string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if obj := StaticCallee(info, call); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "sync/atomic" && strings.HasPrefix(obj.Name(), "Load") {
			if target := atomicAddrArg(info, call); target != nil && lockKeyOf(ctx, target) == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// loadsKeyTyped reports whether e contains a typed-atomic .Load() of
// key.
func loadsKeyTyped(info *types.Info, ctx *lockCtx, e ast.Expr, key string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Load" && len(call.Args) == 0 {
			if tv, hasType := info.Types[sel.X]; hasType && isTypedAtomic(tv.Type) && lockKeyOf(ctx, sel.X) == key {
				found = true
			}
		}
		return !found
	})
	return found
}
