package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags per-iteration heap work inside the loops of the
// designated hot packages — the numerical kernels and I/O paths whose
// throughput the paper's many-task argument depends on. Inside a loop
// body (or a loop's condition/post statement) it reports:
//
//   - make/new builtin calls and slice/map composite literals — a fresh
//     heap object per iteration (value struct literals are excluded:
//     they need not allocate);
//   - &T{...} pointer literals;
//   - string concatenation (`a + b`, `s += x`) — each produces a new
//     backing array;
//   - function literals capturing enclosing variables — each creation
//     allocates a closure (non-capturing literals compile to static
//     functions and pass);
//   - interprocedurally, calls whose callee's allocates-effect summary
//     bit is set (see summary.go): the allocation happens inside the
//     callee, once per call.
//
// Amortized allocation under a lazy-init guard (`if buf == nil { buf =
// make(...) }`, `if cap(buf) < n`), branches that terminate the loop
// (return/panic — they run at most once), and goroutine/defer spawn
// sites (the spawn is the dominant cost and is governed elsewhere) are
// excluded. `append` growth is preallocate's domain and is not
// reported here. Genuinely unavoidable per-iteration allocation (e.g.
// results that must escape to a caller-owned sink) can carry an
// audited //esselint:allow hotalloc directive.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag per-iteration heap allocation in hot-package loops: make/new, slice and map " +
		"composite literals, &T{} literals, capturing closures, string concatenation, and " +
		"calls whose allocates-effect summary is set (interprocedural)",
	Scope: hotPackages,
	Run:   runHotAlloc,
}

// hotPackages scopes the performance analyzers to the packages the
// benchmark suite spends its cycles in.
var hotPackages = underAny("internal/linalg", "internal/ocean", "internal/covstore", "internal/acoustics", "internal/telemetry")

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			reported := map[token.Pos]bool{}
			skip := map[token.Pos]bool{}
			walkPerIteration(pass.Info, fd.Body, func(n ast.Node) {
				checkHotNode(pass, n, reported, skip)
			})
		}
	}
	return nil
}

func checkHotNode(pass *Pass, n ast.Node, reported, skip map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] || skip[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	switch v := n.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if lit, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
				// Claim the nested literal so it is not reported twice.
				skip[lit.Pos()] = true
				report(v.Pos(), "%s allocated per loop iteration; hoist it or reuse a buffer", exprSnippet(v))
			}
		}
	case *ast.CompositeLit:
		switch exprType(pass.Info, v).(type) {
		case *types.Slice, *types.Map:
			report(v.Pos(), "%s allocated per loop iteration; hoist it or reuse a buffer", exprSnippet(v))
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
			if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin {
				if id.Name == "make" || id.Name == "new" {
					report(v.Pos(), "%s allocated per loop iteration; hoist it or reuse a buffer", exprSnippet(v))
				}
				return
			}
		}
		if pass.Prog != nil {
			if callee := StaticCallee(pass.Info, v); callee != nil {
				if pass.Prog.Effects[callee.FullName()]&EffAllocates != 0 {
					report(v.Pos(), "call to %s allocates per loop iteration (allocates-effect summary); "+
						"hoist the call or pass it a reusable buffer", callee.Name())
				}
			}
		}
	case *ast.BinaryExpr:
		if v.Op == token.ADD && isStringExpr(pass.Info, v) && !isConstVal(pass.Info, v) {
			// Only the topmost concatenation of a chain reports. Report
			// before marking the operands: a left-nested chain shares
			// its Pos with its left operand, so the skip must not beat
			// the report to it.
			report(v.Pos(), "string concatenation per loop iteration allocates a new backing array; "+
				"use a strings.Builder or a preallocated byte buffer")
			for _, sub := range []ast.Expr{v.X, v.Y} {
				if b, ok := ast.Unparen(sub).(*ast.BinaryExpr); ok {
					skip[b.Pos()] = true
				}
			}
		}
	case *ast.AssignStmt:
		if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isStringExpr(pass.Info, v.Lhs[0]) {
			report(v.TokPos, "string concatenation per loop iteration allocates a new backing array; "+
				"use a strings.Builder or a preallocated byte buffer")
		}
	case *ast.FuncLit:
		if capturesLocals(pass.Info, v) {
			report(v.Pos(), "closure capturing enclosing variables allocated per loop iteration; "+
				"hoist the literal and pass per-iteration state as arguments")
		}
	}
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	b, ok := exprType(info, e).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstVal(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// walkPerIteration calls visit for every node of body that executes on
// each iteration of at least one enclosing loop. It is the shared
// traversal of the performance analyzers and encodes their common
// exclusions:
//
//   - a for loop's condition, post statement and body are
//     per-iteration; its init statement is not;
//   - a range statement's operand evaluates once; its body is
//     per-iteration;
//   - an if body guarded by a lazy-init condition (nil/len/cap check)
//     or ending in return/panic (it runs at most once per loop) is
//     lifted out of per-iteration reasoning;
//   - an immediately invoked function literal's body executes inline;
//   - go/defer call sites evaluate their arguments per iteration, but
//     the spawned literal's creation and body are excluded (spawn cost
//     dominates and is governed by the concurrency analyzers);
//   - any other function literal is visited as a creation site, and
//     its body restarts as a fresh non-loop context (when and where it
//     runs is unknown).
func walkPerIteration(info *types.Info, body *ast.BlockStmt, visit func(ast.Node)) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return true
			}
			switch v := m.(type) {
			case *ast.ForStmt:
				walk(v.Init, inLoop)
				walk(v.Cond, true)
				walk(v.Post, true)
				walk(v.Body, true)
				return false
			case *ast.RangeStmt:
				walk(v.X, inLoop)
				walk(v.Body, true)
				return false
			case *ast.IfStmt:
				walk(v.Init, inLoop)
				walk(v.Cond, inLoop)
				bodyLoop := inLoop
				if isLazyInitGuard(info, v.Cond) || terminatesLoop(v.Body) {
					bodyLoop = false
				}
				walk(v.Body, bodyLoop)
				walk(v.Else, inLoop)
				return false
			case *ast.GoStmt:
				walkSpawnCall(v.Call, inLoop, walk)
				return false
			case *ast.DeferStmt:
				walkSpawnCall(v.Call, inLoop, walk)
				return false
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(v.Fun).(*ast.FuncLit); ok {
					for _, a := range v.Args {
						walk(a, inLoop)
					}
					walk(lit.Body, inLoop)
					return false
				}
				if inLoop {
					visit(v)
				}
				return true
			case *ast.FuncLit:
				if inLoop {
					visit(v)
				}
				walk(v.Body, false)
				return false
			}
			if inLoop {
				visit(m)
			}
			return true
		})
	}
	walk(body, false)
}

// walkSpawnCall handles a go/defer call: arguments evaluate at the
// spawn site, the literal (if any) is the spawn's own cost.
func walkSpawnCall(call *ast.CallExpr, inLoop bool, walk func(ast.Node, bool)) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		walk(lit.Body, false)
	} else {
		walk(call.Fun, inLoop)
	}
	for _, a := range call.Args {
		walk(a, inLoop)
	}
}

// isLazyInitGuard recognizes the amortized-allocation idiom: a
// condition of the shape `x == nil`, `len(x) < n`, or `cap(x) < n`
// whose body (re)allocates only when the cached buffer is missing or
// too small. An || chain with a lazy guard anywhere in it also
// qualifies — `buf == nil || buf.Rows != n` is the
// reallocate-on-shape-change variant, amortized whenever the shape is
// stable.
func isLazyInitGuard(info *types.Info, cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if bin.Op == token.LOR {
		return isLazyInitGuard(info, bin.X) || isLazyInitGuard(info, bin.Y)
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isLenCap := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || (id.Name != "len" && id.Name != "cap") {
			return false
		}
		_, builtin := info.Uses[id].(*types.Builtin)
		return builtin
	}
	switch bin.Op {
	case token.EQL:
		return isNil(bin.X) || isNil(bin.Y) || isLenCap(bin.X) || isLenCap(bin.Y)
	case token.NEQ:
		return isLenCap(bin.X) || isLenCap(bin.Y)
	case token.LSS, token.LEQ:
		return isLenCap(bin.X)
	case token.GTR, token.GEQ:
		return isLenCap(bin.Y)
	}
	return false
}

// terminatesLoop reports whether the block's last statement leaves the
// enclosing loop for good: a return or a panic. (break is deliberately
// not included: an unlabeled break inside a switch stays in the loop.)
func terminatesLoop(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// capturesLocals reports whether lit references a variable declared in
// an enclosing function — the condition under which creating the
// literal allocates a closure. Package-level variables and the
// literal's own parameters and locals do not force an allocation.
func capturesLocals(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package scope
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

// allocatesDirectly reports whether body contains a direct
// heap-allocation source outside a lazy-init guard or a terminating
// branch — the syntactic side of the EffAllocates summary bit.
// Goroutine and defer literals are excluded (their cost is the
// spawn's, see EffSpawns); every other nested literal's body runs
// under this function's dynamic extent and counts, as does the
// creation of a capturing closure itself.
func allocatesDirectly(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || found {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || found {
				return false
			}
			switch v := m.(type) {
			case *ast.IfStmt:
				walk(v.Init)
				walk(v.Cond)
				if !isLazyInitGuard(info, v.Cond) && !terminatesLoop(v.Body) {
					walk(v.Body)
				}
				walk(v.Else)
				return false
			case *ast.GoStmt:
				for _, a := range v.Call.Args {
					walk(a)
				}
				return false
			case *ast.DeferStmt:
				for _, a := range v.Call.Args {
					walk(a)
				}
				return false
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(v.Fun).(*ast.FuncLit); ok {
					for _, a := range v.Args {
						walk(a)
					}
					walk(lit.Body)
					return false
				}
			case *ast.FuncLit:
				if capturesLocals(info, v) {
					found = true
					return false
				}
				walk(v.Body)
				return false
			}
			if allocSource(info, m) {
				found = true
				return false
			}
			return true
		})
	}
	walk(body)
	return found
}

// unguardedCallees collects the keys of callees fn invokes outside the
// amortized regions allocatesDirectly skips — lazy-init guard bodies,
// terminating branches, and go/defer call expressions. The effect
// fixpoint propagates EffAllocates to fn only across these edges
// (every other effect bit crosses every edge): a function whose only
// call to an allocator sits under `if buf == nil` pays that cost once,
// not per call.
func unguardedCallees(fn *FuncInfo) map[string]bool {
	out := map[string]bool{}
	if fn.Decl.Body == nil {
		return out
	}
	info := fn.Pkg.Info
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			switch v := m.(type) {
			case *ast.IfStmt:
				walk(v.Init)
				walk(v.Cond)
				if !isLazyInitGuard(info, v.Cond) && !terminatesLoop(v.Body) {
					walk(v.Body)
				}
				walk(v.Else)
				return false
			case *ast.GoStmt:
				for _, a := range v.Call.Args {
					walk(a)
				}
				return false
			case *ast.DeferStmt:
				for _, a := range v.Call.Args {
					walk(a)
				}
				return false
			case *ast.CallExpr:
				if callee := StaticCallee(info, v); callee != nil {
					out[callee.FullName()] = true
				}
			}
			return true
		})
	}
	walk(fn.Decl.Body)
	return out
}

// allocSource reports whether n is, by itself, a direct heap-allocation
// source: make/new, a slice or map composite literal, an &T{} literal,
// or non-constant string concatenation.
func allocSource(info *types.Info, n ast.Node) bool {
	switch v := n.(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(v.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		_, builtin := info.Uses[id].(*types.Builtin)
		return builtin && (id.Name == "make" || id.Name == "new")
	case *ast.CompositeLit:
		switch exprType(info, v).(type) {
		case *types.Slice, *types.Map:
			return true
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, ok := ast.Unparen(v.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.BinaryExpr:
		return v.Op == token.ADD && isStringExpr(info, v) && !isConstVal(info, v)
	case *ast.AssignStmt:
		return v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isStringExpr(info, v.Lhs[0])
	}
	return false
}
