package lint

import "testing"

// FuzzParseDirective fuzzes the shared //esselint: directive grammar —
// allow, allowfile, fsm, and unit (both the single-expression and the
// name=unit function forms). The invariant is canonical-form
// idempotence: any accepted directive must re-render and re-parse to
// exactly the same canonical string, so the audit tooling can rewrite
// directives without changing their meaning.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//esselint:allow maporder iteration order is sorted below",
		"//esselint:allow all generated file",
		"//esselint:allowfile rngdet fixture exercises raw rand",
		"//esselint:allow  divguard   extra   spacing",
		"//esselint:allow",
		"//esselint:fsm Pending->Active, Active->Completed",
		"//esselint:fsm A->B",
		"//esselint:fsm A->B, B->A // with a trailing note",
		"//esselint:fsm ->B",
		"//esselint:fsm A-B",
		"//esselint:unit m/s",
		"//esselint:unit kg/m^3",
		"//esselint:unit degC/s^0.5",
		"//esselint:unit 1/s",
		"//esselint:unit m^-1",
		"//esselint:unit t=degC s=psu return=kg/m^3",
		"//esselint:unit h=m return=m/s // wave speed",
		"//esselint:unit m^x",
		"//esselint:unit",
		"//esselint:nonsense payload",
		"// not a directive",
		"//esselint:unitless trap",
		"//esselint:fsmish trap",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		canon, ok := ParseDirective(text)
		if !ok {
			if canon != "" {
				t.Fatalf("rejected input %q returned non-empty canonical form %q", text, canon)
			}
			return
		}
		again, ok2 := ParseDirective(canon)
		if !ok2 {
			t.Fatalf("canonical form %q of %q does not re-parse", canon, text)
		}
		if again != canon {
			t.Fatalf("canonicalization is not a fixpoint: %q -> %q -> %q", text, canon, again)
		}
	})
}
