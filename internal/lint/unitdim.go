package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitDim checks physical units through the numerical core. Quantities
// are annotated where they are declared:
//
//	//esselint:unit m/s
//	U []float64
//
//	//esselint:unit t=degC s=psu return=kg/m^3
//	func Density(t, s float64) float64
//
// and the analyzer propagates the unit algebra (dimfacts.go) through
// the same forward dataflow shapecheck uses: multiplication and
// division combine exponents, addition, subtraction and comparison
// require equal units, math.Sqrt halves exponents, transcendental
// functions demand dimensionless arguments. Literals are polymorphic —
// `2 * dt` is still seconds, `0.5` adapts to whatever it meets — and
// anything unknown poisons silently, so a finding always involves two
// *declared* (or derived-from-declared) units that disagree: meters
// added to seconds, a m/s value stored into a degC field, a psu
// argument passed to a degC parameter.
//
// Malformed directives are reported once, in the package that declares
// them (the UnitTable's Problems side, mirroring statefsm).
var UnitDim = &Analyzer{
	Name: "unitdim",
	Doc: "check //esselint:unit physical-unit annotations (m, s, m/s, degC, psu, products/" +
		"quotients/powers) by linear unit algebra over the shapecheck dataflow",
	Scope: underInternalOrCmd,
	Run:   runUnitDim,
}

// unitVal is one expression's unit: any marks a polymorphic literal
// (adapts in add/compare, dimensionless in mul/div). Absence from the
// state means unknown, which is silent.
type unitVal struct {
	any bool
	u   Unit
}

func (v unitVal) eq(w unitVal) bool {
	if v.any != w.any {
		return false
	}
	return v.any || v.u.Equal(w.u)
}

// unitState maps keyable-expression keys to known units; nil is Top.
type unitState map[string]unitVal

func (s unitState) clone() unitState {
	c := make(unitState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func runUnitDim(pass *Pass) error {
	units := unitTableOf(pass)
	if units == nil {
		return nil
	}
	// Directive problems surface once, in the declaring package.
	for _, pb := range units.Problems[pass.Path] {
		pass.Reportf(pb.Pos, "%s", pb.Msg)
	}
	for _, f := range pass.Files {
		for _, fn := range FuncNodes(f) {
			a := &unitFunc{pass: pass, units: units, fn: fn, reported: map[token.Pos]bool{}}
			cfg := BuildCFG(fn)
			res := Forward(cfg, a)
			for _, b := range cfg.Blocks {
				in, _ := res.In[b].(unitState)
				if in == nil {
					continue
				}
				st := in.clone()
				for _, n := range b.Nodes {
					a.step(st, n, true)
				}
			}
		}
	}
	return nil
}

func unitTableOf(pass *Pass) *UnitTable {
	if pass.Prog == nil {
		return nil
	}
	return pass.Prog.Units
}

// unitFunc is the per-function unit analysis.
type unitFunc struct {
	pass     *Pass
	units    *UnitTable
	fn       ast.Node
	reported map[token.Pos]bool
}

// --- FlowAnalysis ----------------------------------------------------------

// Boundary seeds the annotated parameters of the enclosing FuncDecl.
func (a *unitFunc) Boundary() Fact {
	st := unitState{}
	decl, ok := a.fn.(*ast.FuncDecl)
	if !ok {
		return st
	}
	sig := a.funcSig(decl)
	if sig == nil || decl.Type.Params == nil {
		return st
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if idx < len(sig.Params) && sig.Params[idx] != nil && name.Name != "_" {
				st[name.Name] = unitVal{u: sig.Params[idx]}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return st
}

func (a *unitFunc) funcSig(decl *ast.FuncDecl) *UnitFuncSig {
	obj, ok := a.pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return nil
	}
	return a.units.Funcs[obj.FullName()]
}

func (a *unitFunc) Top() Fact { return unitState(nil) }

func (a *unitFunc) Transfer(b *Block, in Fact) Fact {
	st, _ := in.(unitState)
	if st == nil {
		return unitState(nil)
	}
	out := st.clone()
	for _, n := range b.Nodes {
		a.step(out, n, false)
	}
	return out
}

func (a *unitFunc) FlowEdge(e *Edge, out Fact) Fact { return out }

func (a *unitFunc) Meet(x, y Fact) Fact {
	sx, _ := x.(unitState)
	sy, _ := y.(unitState)
	if sx == nil {
		return sy
	}
	if sy == nil {
		return sx
	}
	m := unitState{}
	for k, vx := range sx {
		if vy, ok := sy[k]; ok && vx.eq(vy) {
			m[k] = vx
		}
	}
	return m
}

func (a *unitFunc) Equal(x, y Fact) bool {
	sx, _ := x.(unitState)
	sy, _ := y.(unitState)
	if (sx == nil) != (sy == nil) || len(sx) != len(sy) {
		return false
	}
	for k, v := range sx {
		w, ok := sy[k]
		if !ok || !v.eq(w) {
			return false
		}
	}
	return true
}

// --- per-node transfer -----------------------------------------------------

func (a *unitFunc) step(st unitState, n ast.Node, report bool) {
	if report {
		a.checkNode(st, n)
	}
	WalkBlockNode(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.AssignStmt:
			a.applyAssign(st, v)
			return false
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						a.applyValueSpec(st, vs)
					}
				}
			}
			return false
		case *ast.IncDecStmt:
			a.killExpr(st, v.X)
			return false
		case *ast.RangeStmt:
			if v.Key != nil {
				a.killExpr(st, v.Key)
			}
			if v.Value != nil {
				// Ranging over an annotated []float64 field hands the
				// element its unit.
				a.killExpr(st, v.Value)
				if ev, ok := a.unitOf(st, v.X); ok && !ev.any {
					a.gen(st, v.Value, ev)
				}
			}
			return true
		case *ast.CallExpr:
			a.applyCallKills(st, v)
			return true
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				a.killExpr(st, v.X)
			}
			return true
		}
		return true
	})
}

func (a *unitFunc) applyAssign(st unitState, as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				a.applyCallKills(st, call)
			}
			return true
		})
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		lhs := as.Lhs[0]
		var op token.Token
		switch as.Tok {
		case token.ADD_ASSIGN:
			op = token.ADD
		case token.SUB_ASSIGN:
			op = token.SUB
		case token.MUL_ASSIGN:
			op = token.MUL
		case token.QUO_ASSIGN:
			op = token.QUO
		default:
			a.killExpr(st, lhs)
			return
		}
		v, ok := a.binaryUnit(st, op, lhs, as.Rhs[0])
		a.killExpr(st, lhs)
		if ok {
			a.gen(st, lhs, v)
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		vals := make([]unitVal, len(as.Rhs))
		known := make([]bool, len(as.Rhs))
		for i, rhs := range as.Rhs {
			vals[i], known[i] = a.unitOf(st, rhs)
		}
		for _, lhs := range as.Lhs {
			a.killExpr(st, lhs)
		}
		for i, lhs := range as.Lhs {
			// An annotated target keeps its declared unit in the state —
			// the drift (if any) is reported once at the assignment, not
			// cascaded through every later read.
			if decl, ok := a.declaredUnit(lhs); ok {
				a.gen(st, lhs, unitVal{u: decl})
			} else if known[i] {
				a.gen(st, lhs, vals[i])
			}
		}
		return
	}
	for _, lhs := range as.Lhs {
		a.killExpr(st, lhs)
		if decl, ok := a.declaredUnit(lhs); ok {
			a.gen(st, lhs, unitVal{u: decl})
		}
	}
}

func (a *unitFunc) applyValueSpec(st unitState, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		a.killExpr(st, name)
		if i < len(vs.Values) {
			if v, ok := a.unitOf(st, vs.Values[i]); ok {
				a.gen(st, name, v)
			}
		}
	}
}

func (a *unitFunc) applyCallKills(st unitState, call *ast.CallExpr) {
	if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	kill := func(e ast.Expr) {
		if root := rootIdent(e); root != nil {
			if obj, ok := a.pass.Info.Uses[root]; ok && isMutableRef(obj.Type()) {
				a.killName(st, root.Name)
			}
		}
	}
	for _, arg := range call.Args {
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			a.killExpr(st, u.X)
			continue
		}
		kill(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := a.pass.Info.Selections[sel]; isMethod {
			kill(sel.X)
		}
	}
}

func (a *unitFunc) gen(st unitState, lhs ast.Expr, v unitVal) {
	if key, ok := exprKeyOf(lhs); ok {
		st[key] = v
	}
}

func (a *unitFunc) killExpr(st unitState, e ast.Expr) {
	if root := rootIdent(e); root != nil {
		a.killName(st, root.Name)
	}
}

func (a *unitFunc) killName(st unitState, name string) {
	for k := range st {
		if keyMentions(k, name) {
			delete(st, k)
		}
	}
}

// --- unit evaluation -------------------------------------------------------

// declaredUnit returns the //esselint:unit annotation attached to the
// declaration e refers to: a struct field, a package-level const/var,
// or an element of an annotated []float64 (indexing preserves the
// element quantity's unit).
func (a *unitFunc) declaredUnit(e ast.Expr) (Unit, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := a.pass.Info.Uses[v]; ok && obj.Pkg() != nil {
			if u, ok := a.units.Objects[obj.Pkg().Path()+"."+obj.Name()]; ok {
				return u, true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := a.pass.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			for {
				ptr, ok := t.(*types.Pointer)
				if !ok {
					break
				}
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Sel.Name
				if u, ok := a.units.Fields[key]; ok {
					return u, true
				}
			}
			return nil, false
		}
		// Qualified package-level object: pkg.Gravity.
		if obj, ok := a.pass.Info.Uses[v.Sel]; ok && obj.Pkg() != nil {
			switch obj.(type) {
			case *types.Const, *types.Var:
				if u, ok := a.units.Objects[obj.Pkg().Path()+"."+obj.Name()]; ok {
					return u, true
				}
			}
		}
	case *ast.IndexExpr:
		return a.declaredUnit(v.X)
	}
	return nil, false
}

// unitOf evaluates e's unit under st. The second result is false when
// the unit is unknown (which is always silent).
func (a *unitFunc) unitOf(st unitState, e ast.Expr) (unitVal, bool) {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.SUB || v.Op == token.ADD {
			return a.unitOf(st, v.X)
		}
	case *ast.BinaryExpr:
		return a.binaryUnit(st, v.Op, v.X, v.Y)
	case *ast.CallExpr:
		return a.callUnit(st, v)
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		if key, ok := exprKeyOf(e); ok {
			if val, found := st[key]; found {
				return val, true
			}
		}
		if u, ok := a.declaredUnit(e); ok {
			return unitVal{u: u}, true
		}
	}
	// Constant-folded leaves (and operators the switch does not model)
	// are polymorphic literals. This is the fallback, not the first
	// check, so a constant expression built FROM annotated constants —
	// -Gravity, 0.5*Gravity, 2*OmegaEarth — still recurses structurally
	// above and keeps its derived unit.
	if tv, ok := a.pass.Info.Types[e]; ok && tv.Value != nil {
		return unitVal{any: true}, true
	}
	return unitVal{}, false
}

func (a *unitFunc) binaryUnit(st unitState, op token.Token, x, y ast.Expr) (unitVal, bool) {
	vx, okx := a.unitOf(st, x)
	vy, oky := a.unitOf(st, y)
	switch op {
	case token.MUL, token.QUO:
		if !okx || !oky {
			return unitVal{}, false
		}
		if vx.any && vy.any {
			return unitVal{any: true}, true
		}
		// A polymorphic literal is dimensionless in a product.
		ux, uy := vx.u, vy.u
		if op == token.MUL {
			return unitVal{u: ux.Mul(uy)}, true
		}
		return unitVal{u: ux.Div(uy)}, true
	case token.ADD, token.SUB:
		if !okx || !oky {
			return unitVal{}, false
		}
		if vx.any {
			return vy, true
		}
		if vy.any {
			return vx, true
		}
		if vx.u.Equal(vy.u) {
			return vx, true
		}
		return unitVal{}, false // the mismatch itself is checkNode's report
	}
	return unitVal{}, false
}

// mathPreserving keeps its argument's unit; mathDimensionless demands a
// dimensionless argument and returns one. Sqrt is special-cased (halves
// exponents), Min/Max/Hypot/Mod/Dim meet two same-unit arguments.
var mathPreserving = map[string]bool{
	"Abs": true, "Ceil": true, "Floor": true, "Round": true, "Trunc": true,
	"Copysign": true,
}

var mathTwoArg = map[string]bool{
	"Min": true, "Max": true, "Hypot": true, "Mod": true, "Dim": true,
	"Remainder": true,
}

var mathDimensionless = map[string]bool{
	"Exp": true, "Exp2": true, "Expm1": true,
	"Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Sin": true, "Cos": true, "Tan": true, "Asin": true, "Acos": true,
	"Atan": true, "Sinh": true, "Cosh": true, "Tanh": true,
	"Erf": true, "Erfc": true,
}

func (a *unitFunc) callUnit(st unitState, call *ast.CallExpr) (unitVal, bool) {
	if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return a.unitOf(st, call.Args[0]) // conversion preserves units
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
		return unitVal{any: true}, true // a count adapts like a literal
	}
	callee := StaticCallee(a.pass.Info, call)
	if callee == nil {
		return unitVal{}, false
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "math" && len(call.Args) >= 1 {
		name := callee.Name()
		switch {
		case name == "Sqrt":
			v, ok := a.unitOf(st, call.Args[0])
			if !ok {
				return unitVal{}, false
			}
			if v.any {
				return v, true
			}
			if u, ok := v.u.Sqrt(); ok {
				return unitVal{u: u}, true
			}
			return unitVal{}, false
		case mathPreserving[name]:
			return a.unitOf(st, call.Args[0])
		case mathTwoArg[name] && len(call.Args) == 2:
			vx, okx := a.unitOf(st, call.Args[0])
			vy, oky := a.unitOf(st, call.Args[1])
			if okx && oky {
				if vx.any {
					return vy, true
				}
				if vy.any || vx.u.Equal(vy.u) {
					return vx, true
				}
			}
			return unitVal{}, false
		case mathDimensionless[name]:
			return unitVal{u: Unit{}}, true
		}
		return unitVal{}, false
	}
	if sig := a.units.Funcs[callee.FullName()]; sig != nil && sig.Result != nil {
		return unitVal{u: sig.Result}, true
	}
	return unitVal{}, false
}

// --- site checking ---------------------------------------------------------

func (a *unitFunc) checkNode(st unitState, n ast.Node) {
	WalkBlockNode(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.BinaryExpr:
			switch v.Op {
			case token.ADD, token.SUB:
				a.checkSameUnit(st, v.OpPos, v.X, v.Y, "operands of "+v.Op.String())
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				a.checkSameUnit(st, v.OpPos, v.X, v.Y, "compared values")
			}
		case *ast.AssignStmt:
			a.checkAssign(st, v)
		case *ast.CallExpr:
			a.checkCall(st, v)
		case *ast.ReturnStmt:
			a.checkReturn(st, v)
		}
		return true
	})
}

func (a *unitFunc) checkSameUnit(st unitState, pos token.Pos, x, y ast.Expr, what string) {
	vx, okx := a.unitOf(st, x)
	vy, oky := a.unitOf(st, y)
	if !okx || !oky || vx.any || vy.any || vx.u.Equal(vy.u) {
		return
	}
	a.reportOnce(pos, "%s have different units: %s vs %s", what, vx.u, vy.u)
}

func (a *unitFunc) checkAssign(st unitState, as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN {
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			a.checkSameUnit(st, as.TokPos, as.Lhs[0], as.Rhs[0], "operands of "+as.Tok.String())
		}
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		decl, ok := a.declaredUnit(lhs)
		if !ok {
			continue
		}
		v, known := a.unitOf(st, as.Rhs[i])
		if !known || v.any || v.u.Equal(decl) {
			continue
		}
		a.reportOnce(as.TokPos, "assignment to %s drifts from its //esselint:unit %s directive: value has unit %s",
			exprSnippet(lhs), decl, v.u)
	}
}

func (a *unitFunc) checkCall(st unitState, call *ast.CallExpr) {
	callee := StaticCallee(a.pass.Info, call)
	if callee == nil {
		return
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "math" &&
		mathDimensionless[callee.Name()] && len(call.Args) >= 1 {
		if v, known := a.unitOf(st, call.Args[0]); known && !v.any && len(v.u) > 0 {
			a.reportOnce(call.Pos(), "math.%s argument must be dimensionless, got %s",
				callee.Name(), v.u)
		}
		return
	}
	sig := a.units.Funcs[callee.FullName()]
	if sig == nil || call.Ellipsis.IsValid() || len(call.Args) != len(sig.Params) {
		return
	}
	for i, arg := range call.Args {
		if sig.Params[i] == nil {
			continue
		}
		v, known := a.unitOf(st, arg)
		if !known || v.any || v.u.Equal(sig.Params[i]) {
			continue
		}
		a.reportOnce(arg.Pos(), "argument %d of %s has unit %s, //esselint:unit declares %s",
			i+1, callee.Name(), v.u, sig.Params[i])
	}
}

func (a *unitFunc) checkReturn(st unitState, ret *ast.ReturnStmt) {
	decl, ok := a.fn.(*ast.FuncDecl)
	if !ok || len(ret.Results) != 1 {
		return
	}
	sig := a.funcSig(decl)
	if sig == nil || sig.Result == nil {
		return
	}
	v, known := a.unitOf(st, ret.Results[0])
	if !known || v.any || v.u.Equal(sig.Result) {
		return
	}
	a.reportOnce(ret.Pos(), "return value of %s has unit %s, //esselint:unit declares %s",
		decl.Name.Name, v.u, sig.Result)
}

func (a *unitFunc) reportOnce(pos token.Pos, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.pass.Reportf(pos, format, args...)
}
