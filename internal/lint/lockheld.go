package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld enforces the two lock disciplines the continuously running
// assimilation pipeline depends on:
//
//  1. A mutex must not be held across an operation that can block
//     indefinitely — a channel send/receive, a select without default,
//     sync.WaitGroup.Wait, time.Sleep, or a call to any function whose
//     interprocedural effect summary (summary.go) says it may block.
//     A blocked critical section stalls every other goroutine touching
//     that lock; in the paper's setting that is the scheduler freezing
//     mid-ensemble.
//  2. Pairwise lock-acquisition order must be consistent across the
//     whole package set: if one code path takes A then B (directly or
//     through a callee's transitive lock summary) and another takes B
//     then A, the two paths can deadlock. Pairs are collected globally
//     at Program build time and inversions reported in the package
//     that acquires second.
//
// Held-lock state is a must-analysis (forward dataflow, meet =
// intersection): a lock counts as held at a point only when every path
// to it acquired the lock without releasing. Deferred unlocks keep the
// lock held through the body by design — that is the idiom's point.
//
// Lock identity is canonical-by-type for receiver fields: s.mu and
// m.mu are the same key when s and m share a named type. Two distinct
// instances of one type therefore collapse (documented precision
// loss); per-instance ordering bugs need the race detector. Calls
// through function values and interface methods contribute no summary,
// so blocking hidden behind them is invisible (shared soundness gap of
// the whole interprocedural layer).
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "flag mutexes held across may-block operations (channel ops, waits, blocking callees) " +
		"and inconsistent pairwise lock-acquisition order across the package set",
	Scope: underInternalOrCmd,
	Run:   runLockHeld,
}

// lockOp classifies what a call does to a mutex.
type lockOp int

const (
	lockNone lockOp = iota
	lockTake
	lockDrop
)

// lockCtx carries what lock-key canonicalization needs about the
// package and enclosing function being analyzed.
type lockCtx struct {
	Info *types.Info
	Pkg  *types.Package
	Path string
	// Enclosing qualifies function-local mutex keys; it is the
	// enclosing function's canonical name.
	Enclosing string
}

// lockCall classifies call as a sync.Mutex/sync.RWMutex acquisition or
// release and returns the lock's canonical key.
func lockCall(ctx *lockCtx, call *ast.CallExpr) (string, lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	obj, ok := ctx.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", lockNone
	}
	switch recvNamed(obj) {
	case "Mutex", "RWMutex":
	default:
		return "", lockNone
	}
	var op lockOp
	switch obj.Name() {
	case "Lock", "RLock":
		op = lockTake
	case "Unlock", "RUnlock":
		op = lockDrop
	default:
		return "", lockNone
	}
	return lockKeyOf(ctx, sel.X), op
}

// lockAcquire reports the canonical key when call acquires a mutex
// inside fn; summary.go records it in the function's transitive lock
// set.
func lockAcquire(fn *FuncInfo, call *ast.CallExpr) (string, lockOp) {
	ctx := &lockCtx{Info: fn.Pkg.Info, Pkg: fn.Pkg.Pkg, Path: fn.Pkg.Path, Enclosing: fn.Key}
	key, op := lockCall(ctx, call)
	if op != lockTake {
		return "", lockNone
	}
	return key, lockTake
}

// lockKeyOf canonicalizes the mutex expression so the same logical
// lock gets the same key in every function:
//
//   - "(pkg.Type).field" for a mutex reached through a value of a
//     named type — receiver-name insensitive, so s.mu in one method
//     and m.mu in another agree;
//   - "pkgpath.var[.field]" for package-level mutexes, local or
//     imported;
//   - "<enclosing>·expr" for function-local mutexes, which cannot be
//     shared across functions except by pointer (not tracked).
func lockKeyOf(ctx *lockCtx, x ast.Expr) string {
	x = ast.Unparen(x)
	path := types.ExprString(x)
	if root := rootIdent(x); root != nil {
		switch obj := ctx.Info.Uses[root].(type) {
		case *types.PkgName:
			return obj.Imported().Path() + strings.TrimPrefix(path, root.Name)
		case *types.Var:
			if obj.Parent() == ctx.Pkg.Scope() {
				return ctx.Path + "." + path
			}
			t := obj.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			// Only selector paths (s.mu) take the receiver-insensitive
			// type-qualified form. A bare local of a named type keeps
			// the function-qualified key below: stripping the root
			// would collapse every atomic.Int64 local in the program
			// into one key.
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && path != root.Name {
				return "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")" +
					strings.TrimPrefix(path, root.Name)
			}
		}
	}
	return ctx.Enclosing + "·" + path
}

// heldSet is the must-held lock fact: key → held on every path. A nil
// set is the solver's Top (unreached).
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

// heldFlow is the FlowAnalysis tracking which locks are held.
type heldFlow struct {
	ctx *lockCtx
}

func (h *heldFlow) Boundary() Fact { return heldSet{} }
func (h *heldFlow) Top() Fact      { return heldSet(nil) }

func (h *heldFlow) Transfer(b *Block, in Fact) Fact {
	st, _ := in.(heldSet)
	if st == nil {
		return heldSet(nil)
	}
	out := st.clone()
	for _, n := range b.Nodes {
		replayHeld(h.ctx, n, out, nil, nil, nil)
	}
	return out
}

func (h *heldFlow) FlowEdge(e *Edge, out Fact) Fact { return out }

func (h *heldFlow) Meet(a, b Fact) Fact {
	sa, _ := a.(heldSet)
	sb, _ := b.(heldSet)
	if sa == nil {
		return sb
	}
	if sb == nil {
		return sa
	}
	m := heldSet{}
	for k := range sa {
		if sb[k] {
			m[k] = true
		}
	}
	return m
}

func (h *heldFlow) Equal(a, b Fact) bool {
	sa, _ := a.(heldSet)
	sb, _ := b.(heldSet)
	if (sa == nil) != (sb == nil) || len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}

// replayHeld walks the lock-relevant operations of block node n in
// source order, updating held in place. Callbacks may be nil:
// onTake fires at each acquisition with held still holding the *prior*
// set; onBlock fires at each may-block operation; onCall fires for
// every statically resolved call that is not itself a lock operation.
// Defer bodies are skipped (they run at function exit) and go
// statements are skipped entirely (the spawned call does not block the
// spawner, and its locks run concurrently, not nested).
func replayHeld(ctx *lockCtx, n ast.Node, held heldSet,
	onTake func(key string, pos token.Pos),
	onBlock func(desc string, pos token.Pos),
	onCall func(callee *types.Func, pos token.Pos)) {

	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	WalkBlockNode(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if onBlock != nil {
				onBlock("channel send", v.Arrow)
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && onBlock != nil {
				onBlock("channel receive", v.OpPos)
			}
		case *ast.RangeStmt:
			if _, isChan := exprType(ctx.Info, v.X).(*types.Chan); isChan && onBlock != nil {
				onBlock("range over channel", v.For)
			}
		case *ast.SelectStmt:
			if !selectHasDefault(v) && onBlock != nil {
				onBlock("select without default", v.Select)
			}
		case *ast.CallExpr:
			if key, op := lockCall(ctx, v); op != lockNone {
				if op == lockTake {
					if onTake != nil {
						onTake(key, v.Pos())
					}
					held[key] = true
				} else {
					delete(held, key)
				}
				return true
			}
			if isBlockingStdCall(ctx.Info, v) {
				if onBlock != nil {
					onBlock(blockDesc(ctx.Info, v), v.Pos())
				}
				return true
			}
			if onCall != nil {
				if callee := StaticCallee(ctx.Info, v); callee != nil {
					onCall(callee, v.Pos())
				}
			}
		}
		return true
	})
}

func blockDesc(info *types.Info, call *ast.CallExpr) string {
	obj := StaticCallee(info, call)
	if obj == nil {
		return "blocking call"
	}
	if r := recvNamed(obj); r != "" {
		return r + "." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

func runLockHeld(pass *Pass) error {
	if pass.Prog != nil {
		reportLockInversions(pass)
	}
	for _, f := range pass.Files {
		for _, fn := range FuncNodes(f) {
			checkLockHeldFunc(pass, fn)
		}
	}
	return nil
}

// checkLockHeldFunc reports may-block operations reached with a lock
// held on every path (part 1 of the discipline).
func checkLockHeldFunc(pass *Pass, fn ast.Node) {
	ctx := &lockCtx{Info: pass.Info, Pkg: pass.Pkg, Path: pass.Path, Enclosing: enclosingName(pass, fn)}
	cfg := BuildCFG(fn)
	res := Forward(cfg, &heldFlow{ctx: ctx})
	reported := map[token.Pos]bool{}
	for _, b := range cfg.Blocks {
		in, _ := res.In[b].(heldSet)
		if in == nil {
			continue // unreachable: don't report from dead code
		}
		held := in.clone()
		for _, n := range b.Nodes {
			replayHeld(ctx, n, held, nil,
				func(desc string, pos token.Pos) {
					if len(held) == 0 || reported[pos] {
						return
					}
					reported[pos] = true
					pass.Reportf(pos, "%s while %s is held can stall the critical section indefinitely; "+
						"release the lock first or make the operation non-blocking",
						desc, strings.Join(sortedKeys(held), ", "))
				},
				func(callee *types.Func, pos token.Pos) {
					if len(held) == 0 || reported[pos] || pass.Prog == nil {
						return
					}
					if pass.Prog.Effects[callee.FullName()]&EffMayBlock != 0 {
						reported[pos] = true
						pass.Reportf(pos, "call to %s may block (channel op or wait in its call tree) while %s is held; "+
							"release the lock before calling it",
							callee.Name(), strings.Join(sortedKeys(held), ", "))
					}
				})
		}
	}
}

func enclosingName(pass *Pass, fn ast.Node) string {
	if fd, ok := fn.(*ast.FuncDecl); ok {
		if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			return obj.FullName()
		}
		return pass.Path + "." + fd.Name.Name
	}
	pos := pass.Fset.Position(fn.Pos())
	return fmt.Sprintf("%s.func@%d:%d", pass.Path, pos.Line, pos.Column)
}

// collectLockPairs runs the held-lock dataflow over every function in
// the program and records each acquisition order observed: After taken
// — directly or through a callee's transitive lock summary — while
// Before was held. BuildProgram stores the sorted result on
// Program.LockPairs; reportLockInversions cross-references it.
func collectLockPairs(p *Program) []LockPair {
	var pairs []LockPair
	for _, key := range p.Graph.Keys {
		fn := p.Graph.Funcs[key]
		if fn.Decl.Body == nil {
			continue
		}
		ctx := &lockCtx{Info: fn.Pkg.Info, Pkg: fn.Pkg.Pkg, Path: fn.Pkg.Path, Enclosing: key}
		cfg := BuildCFG(fn.Decl)
		res := Forward(cfg, &heldFlow{ctx: ctx})
		for _, b := range cfg.Blocks {
			in, _ := res.In[b].(heldSet)
			if in == nil {
				continue
			}
			held := in.clone()
			for _, n := range b.Nodes {
				replayHeld(ctx, n, held,
					func(lk string, pos token.Pos) {
						for _, h := range sortedKeys(held) {
							if h != lk {
								pairs = append(pairs, LockPair{
									Before: h, After: lk,
									Pos:     fn.Pkg.Fset.Position(pos),
									PkgPath: fn.Pkg.Path,
								})
							}
						}
					},
					nil,
					func(callee *types.Func, pos token.Pos) {
						if len(held) == 0 {
							return
						}
						for _, lk := range p.Locks[callee.FullName()] {
							for _, h := range sortedKeys(held) {
								if h != lk {
									pairs = append(pairs, LockPair{
										Before: h, After: lk,
										Pos:     fn.Pkg.Fset.Position(pos),
										PkgPath: fn.Pkg.Path,
										Via:     callee.FullName(),
									})
								}
							}
						}
					})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Offset != b.Pos.Offset {
			return a.Pos.Offset < b.Pos.Offset
		}
		if a.Before != b.Before {
			return a.Before < b.Before
		}
		if a.After != b.After {
			return a.After < b.After
		}
		return a.Via < b.Via
	})
	return pairs
}

// reportLockInversions reports, in the package owning the second
// acquisition, every lock pair whose opposite order occurs anywhere in
// the program (part 2 of the discipline).
func reportLockInversions(pass *Pass) {
	first := map[string]token.Position{}
	for _, pr := range pass.Prog.LockPairs {
		k := pr.Before + "\x00" + pr.After
		if _, ok := first[k]; !ok {
			first[k] = pr.Pos
		}
	}
	seen := map[string]bool{}
	for _, pr := range pass.Prog.LockPairs {
		if pr.PkgPath != pass.Path {
			continue
		}
		rev, ok := first[pr.After+"\x00"+pr.Before]
		if !ok {
			continue
		}
		key := pr.Pos.String() + "\x00" + pr.Before + "\x00" + pr.After
		if seen[key] {
			continue
		}
		seen[key] = true
		via := ""
		if pr.Via != "" {
			via = " (through " + pr.Via + ")"
		}
		pass.report(Diagnostic{
			Pos:      pr.Pos,
			Analyzer: pass.Analyzer.Name,
			Message: fmt.Sprintf("lock %s acquired%s while %s is held, but the opposite order occurs at %s; "+
				"inconsistent pairwise lock order can deadlock", pr.After, via, pr.Before, rev),
		})
	}
}
