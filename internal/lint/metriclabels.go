package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// MetricLabels enforces the telemetry label-pair convention at every
// call site of a label-taking function. internal/telemetry declares its
// label parameters as a trailing `labelKV ...string` variadic; the
// registry canonicalizes a series key from those pairs at registration
// time and panics on malformed input. This analyzer moves that failure
// to compile time:
//
//   - label arguments must come in key/value pairs (even count);
//   - every key (the even positions) must be a compile-time string
//     constant, so the label set of a series is fixed at build time
//     and registration cannot allocate per-call key material;
//   - keys must be strictly ascending (sorted and deduplicated), so
//     two call sites naming the same series agree on its identity
//     without a runtime sort.
//
// Wrappers are followed through the call graph: a function with its
// own trailing `...string` variadic that splats it into a label-taking
// callee's label position is itself label-taking, and its call sites
// are checked instead. Splatting any other slice into the label
// position defeats static validation and is reported.
var MetricLabels = &Analyzer{
	Name: "metriclabels",
	Doc: "telemetry label arguments must be constant, sorted, deduplicated key/value pairs; " +
		"wrappers forwarding their own label variadic are followed through the call graph",
	Scope: underInternalOrCmd,
	Run:   runMetricLabels,
}

// trailingStringVariadic returns the parameter index of fn's trailing
// variadic ...string parameter, or -1 when fn has no such parameter.
func trailingStringVariadic(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() == 0 {
		return -1
	}
	last := sig.Params().Len() - 1
	sl, ok := sig.Params().At(last).Type().(*types.Slice)
	if !ok {
		return -1
	}
	b, ok := sl.Elem().(*types.Basic)
	if !ok || b.Kind() != types.String {
		return -1
	}
	return last
}

// isSeedLabelFunc reports whether fn follows the telemetry naming
// convention directly: a trailing variadic ...string parameter named
// exactly "labelKV". Parameter names survive in export data, so this
// recognizes telemetry's API from any importing package without
// needing the callee's source in the analyzed set.
func isSeedLabelFunc(fn *types.Func) bool {
	idx := trailingStringVariadic(fn)
	if idx < 0 {
		return false
	}
	return fn.Type().(*types.Signature).Params().At(idx).Name() == "labelKV"
}

// metricLabelTakers computes (once per Program) the set of in-set
// functions whose trailing variadic is a label parameter: the seed
// signatures plus an ascending fixpoint over wrappers that splat their
// own trailing ...string variadic into a label-taking callee.
func (p *Program) metricLabelTakers() map[string]bool {
	p.labelOnce.Do(func() {
		set := map[string]bool{}
		for _, key := range p.Graph.Keys {
			info := p.Graph.Funcs[key]
			if info.Obj != nil && isSeedLabelFunc(info.Obj) {
				set[key] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, key := range p.Graph.Keys {
				if set[key] {
					continue
				}
				info := p.Graph.Funcs[key]
				if info.Obj == nil || info.Decl == nil || info.Decl.Body == nil {
					continue
				}
				if trailingStringVariadic(info.Obj) < 0 {
					continue
				}
				if forwardsLabelVariadic(info, set) {
					set[key] = true
					changed = true
				}
			}
		}
		p.labelTakers = set
	})
	return p.labelTakers
}

// forwardsLabelVariadic reports whether info's body splats its own
// trailing variadic parameter into the label position of a
// label-taking callee (seed signature or already in set).
func forwardsLabelVariadic(info *FuncInfo, set map[string]bool) bool {
	obj := finalVariadicParamObj(info.Pkg.Info, info.Decl)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !call.Ellipsis.IsValid() || len(call.Args) == 0 {
			return true
		}
		callee := StaticCallee(info.Pkg.Info, call)
		if callee == nil || (!isSeedLabelFunc(callee) && !set[callee.FullName()]) {
			return true
		}
		// In a splat call the argument count equals the parameter
		// count, so the last argument is the variadic (label) slot.
		if id, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.Ident); ok &&
			info.Pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// finalVariadicParamObj resolves the types.Object of decl's trailing
// variadic parameter, or nil when the last parameter is not variadic
// or is unnamed.
func finalVariadicParamObj(info *types.Info, decl *ast.FuncDecl) types.Object {
	params := decl.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	if _, ok := last.Type.(*ast.Ellipsis); !ok || len(last.Names) == 0 {
		return nil
	}
	return info.Defs[last.Names[len(last.Names)-1]]
}

func runMetricLabels(pass *Pass) error {
	var takers map[string]bool
	if pass.Prog != nil {
		takers = pass.Prog.metricLabelTakers()
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The enclosing function's own label variadic, if any: a
			// splat forwarding it is the sanctioned wrapper pattern
			// (the wrapper's call sites are checked instead).
			ownVariadic := finalVariadicParamObj(pass.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := StaticCallee(pass.Info, call)
				if callee == nil || (!isSeedLabelFunc(callee) && !takers[callee.FullName()]) {
					return true
				}
				start := trailingStringVariadic(callee)
				if start < 0 {
					return true
				}
				checkLabelCall(pass, call, callee, start, ownVariadic)
				return true
			})
		}
	}
	return nil
}

// checkLabelCall validates the label arguments of one call to a
// label-taking function whose variadic begins at parameter index
// start.
func checkLabelCall(pass *Pass, call *ast.CallExpr, callee *types.Func, start int, ownVariadic types.Object) {
	name := callee.Name()
	if call.Ellipsis.IsValid() {
		arg := ast.Unparen(call.Args[len(call.Args)-1])
		if id, ok := arg.(*ast.Ident); ok && ownVariadic != nil && pass.Info.Uses[id] == ownVariadic {
			return // forwarding this function's own label parameter
		}
		pass.Reportf(call.Ellipsis, "%s: labels splatted from a slice cannot be statically validated; "+
			"pass constant key/value pairs or forward a trailing ...string label parameter", name)
		return
	}
	labels := call.Args[start:]
	if len(labels)%2 != 0 {
		pass.Reportf(call.Pos(), "%s: odd number of label arguments (%d); labels are key/value pairs", name, len(labels))
		return
	}
	prev, hasPrev := "", false
	for i := 0; i < len(labels); i += 2 {
		key := labels[i]
		tv, ok := pass.Info.Types[key]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(key.Pos(), "%s: label key must be a compile-time string constant", name)
			hasPrev = false
			continue
		}
		k := constant.StringVal(tv.Value)
		if hasPrev {
			if k == prev {
				pass.Reportf(key.Pos(), "%s: duplicate label key %q", name, k)
			} else if k < prev {
				pass.Reportf(key.Pos(), "%s: label keys unsorted: %q after %q", name, k, prev)
			}
		}
		prev, hasPrev = k, true
	}
}
