package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package under testdata/src/<name>,
// applies the analyzer, and compares its diagnostics against the
// fixture's expectations — the same contract as x/tools analysistest:
//
//	expr // want "substring" "another substring"
//
// Every `want` pattern must be matched (as a regexp) by a diagnostic
// on that line, every diagnostic must be claimed by a `want`, and
// //esselint: directives are honored, so fixtures can also assert that
// the allowlist machinery suppresses findings.
func RunFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(".", dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	// Fixture packages live outside internal//cmd/, so run the analyzer
	// with its path scope lifted; everything else behaves as in
	// production, including directive suppression.
	unscoped := *a
	unscoped.Scope = nil
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}

	wants := fixtureWants(t, pkg)
	matched := make([]bool, len(diags))
	for key, subs := range wants {
		for _, sub := range subs {
			re, err := regexp.Compile(sub)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", key, sub, err)
			}
			ok := false
			for i, d := range diags {
				if matched[i] {
					continue
				}
				if lineKey(d) == key && re.MatchString(d.Message) {
					matched[i] = true
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s: no diagnostic matching %q", key, sub)
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// fixtureWants extracts the `// want "..."` expectations, keyed by
// file:line.
func fixtureWants(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range splitQuoted(m[1]) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					wants[key] = append(wants[key], s)
				}
			}
		}
	}
	return wants
}

// splitQuoted splits `"a" "b c"` into its quoted tokens.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(s[i+1:], '"')
		if j < 0 {
			return out
		}
		out = append(out, s[i:i+j+2])
		s = s[i+j+2:]
	}
}

func lineKey(d Diagnostic) string {
	return fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
}
