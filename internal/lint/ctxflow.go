package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces context/cancellation propagation discipline on the
// engine's concurrent paths. A function that receives a
// context.Context has promised its caller it can be cancelled; the
// analyzer flags the places where that promise is broken:
//
//   - a select with no default and no ctx.Done() case, a bare channel
//     send/receive, a range over a channel, a time.Sleep, or a
//     WaitGroup.Wait reached anywhere in the function's extent (nested
//     literals included — they run or are spawned under it) that cannot
//     observe cancellation;
//   - a call that drops the live context by passing
//     context.Background() or context.TODO() to a context-taking
//     callee;
//   - a context.WithCancel/WithTimeout/WithDeadline whose cancel
//     function is not called, deferred, or handed onward on every
//     control-flow path (defer-aware CFG may-analysis) — each
//     unresolved path leaks the child context's resources;
//   - time.After inside a loop (any function): each iteration allocates
//     a timer that is not collected until it fires.
//
// Escape hatches: receives from ctx.Done() or from a channel the
// extent closes (a close guarantees the receive unblocks); sends on a
// channel the extent drains with a range loop (the drain outlives the
// senders by construction); Wait in an extent that also selects on
// ctx.Done() or checks ctx.Err() (the workers it waits for are
// cancellation-aware); operations inside defer statements (shutdown
// cleanup runs after cancellation by design).
//
// Soundness gaps, stated plainly: a context stored into a struct and
// consulted elsewhere is invisible (the analysis is per-declaration);
// hatches are extent-wide rather than per-channel-instance, so one
// close(ch) blesses every operation on that variable; callees that
// block without taking a context are not flagged at the caller (the
// lockheld/effect layer owns blocking callees); literals with their own
// ctx parameter inside a context-free declaration are checked, but a
// stored context's identity is not tracked across calls.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flag context-carrying functions that can block without observing ctx.Done(), dropped contexts " +
		"(Background/TODO passed to ctx-taking callees), cancel funcs not called on every path, and time.After in loops",
	Scope: underInternalOrCmd,
	Run:   runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxDecl(pass, fd)
		}
	}
	return nil
}

func checkCtxDecl(pass *Pass, fd *ast.FuncDecl) {
	// Cancel-path and timer-in-loop checks apply to every function.
	for _, fn := range funcNodesWithin(fd) {
		checkCancelPaths(pass, fn)
	}
	checkTimeAfterLoops(pass, fd)

	// Blocking/propagation checks apply to context extents: the
	// declaration when it takes a ctx, else any literal that does.
	if hasCtxParam(pass.Info, fd.Type) {
		checkCtxExtent(pass, fd.Body)
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if hasCtxParam(pass.Info, lit.Type) {
			checkCtxExtent(pass, lit.Body)
			return false
		}
		return true
	})
}

// funcNodesWithin returns fd plus every literal nested in it.
func funcNodesWithin(fd *ast.FuncDecl) []ast.Node {
	fns := []ast.Node{fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fns = append(fns, lit)
		}
		return true
	})
	return fns
}

func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if tv, ok := info.Types[f.Type]; ok && isCtxType(tv.Type) {
			return true
		}
	}
	return false
}

// ctxExtent gathers the hatch facts of one context extent.
type ctxExtent struct {
	doneSelect bool                // a select with a ctx.Done() case exists
	recvDone   bool                // a bare <-ctx.Done() exists
	ctxErr     bool                // ctx.Err() is consulted
	closed     map[*types.Var]bool // channels the extent closes
	drained    map[*types.Var]bool // channels the extent drains via range
	comms      map[ast.Node]bool   // send/recv nodes that are select comms
	inDefer    func(token.Pos) bool
}

func gatherExtent(pass *Pass, body *ast.BlockStmt) *ctxExtent {
	ext := &ctxExtent{
		closed:  map[*types.Var]bool{},
		drained: map[*types.Var]bool{},
		comms:   map[ast.Node]bool{},
	}
	var deferRanges [][2]token.Pos
	chanRoot := func(e ast.Expr) *types.Var {
		root := rootIdent(ast.Unparen(e))
		if root == nil {
			return nil
		}
		v, _ := pass.Info.Uses[root].(*types.Var)
		return v
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			deferRanges = append(deferRanges, [2]token.Pos{v.Pos(), v.End()})
		case *ast.SelectStmt:
			for _, c := range v.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				ext.comms[cc.Comm] = true
				if commReceivesDone(pass.Info, cc.Comm) {
					ext.doneSelect = true
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && isDoneCall(pass.Info, v.X) {
				ext.recvDone = true
			}
		case *ast.CallExpr:
			if isCtxMethod(pass.Info, v, "Err") {
				ext.ctxErr = true
			}
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && len(v.Args) == 1 {
				if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin && id.Name == "close" {
					if cv := chanRoot(v.Args[0]); cv != nil {
						ext.closed[cv] = true
					}
				}
			}
		case *ast.RangeStmt:
			if _, isChan := exprType(pass.Info, v.X).(*types.Chan); isChan {
				if cv := chanRoot(v.X); cv != nil {
					ext.drained[cv] = true
				}
			}
		}
		return true
	})
	ext.inDefer = func(p token.Pos) bool {
		for _, r := range deferRanges {
			if r[0] <= p && p < r[1] {
				return true
			}
		}
		return false
	}
	return ext
}

// commReceivesDone reports whether a select comm is a receive from a
// context's Done channel.
func commReceivesDone(info *types.Info, comm ast.Stmt) bool {
	var x ast.Expr
	switch v := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(v.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			x = u.X
		}
	case *ast.AssignStmt:
		if len(v.Rhs) == 1 {
			if u, ok := ast.Unparen(v.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				x = u.X
			}
		}
	}
	return x != nil && isDoneCall(info, x)
}

// isDoneCall reports whether e is ctx.Done() for a context-typed ctx.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isCtxMethod(info, call, "Done")
}

// isCtxMethod reports whether call is <context-typed expr>.<name>().
func isCtxMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isCtxType(tv.Type)
}

// checkCtxExtent applies the blocking/propagation checks to one
// context extent.
func checkCtxExtent(pass *Pass, body *ast.BlockStmt) {
	ext := gatherExtent(pass, body)
	chanRootVar := func(e ast.Expr) *types.Var {
		root := rootIdent(ast.Unparen(e))
		if root == nil {
			return nil
		}
		v, _ := pass.Info.Uses[root].(*types.Var)
		return v
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SelectStmt:
			if selectHasDefault(v) || ext.inDefer(v.Pos()) {
				return true
			}
			hasDone := false
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil && commReceivesDone(pass.Info, cc.Comm) {
					hasDone = true
					break
				}
			}
			if !hasDone {
				pass.Reportf(v.Pos(), "select in a context-carrying function has no ctx.Done() case and no default; "+
					"it can block past cancellation — add a Done case")
			}
		case *ast.SendStmt:
			if ext.comms[ast.Node(v)] || ext.inDefer(v.Pos()) {
				return true
			}
			if cv := chanRootVar(v.Chan); cv != nil && ext.drained[cv] {
				return true // a range loop in this extent drains the channel
			}
			pass.Reportf(v.Pos(), "channel send in a context-carrying function outside any select; "+
				"it can block past cancellation — select on the send and ctx.Done()")
		case *ast.ExprStmt:
			// Bare receive as a statement: <-ch. A select comm of this
			// shape is recorded under the ExprStmt itself.
			if ext.comms[ast.Node(v)] {
				return true
			}
			if u, ok := ast.Unparen(v.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				checkRecv(pass, ext, u, chanRootVar)
			}
		case *ast.AssignStmt:
			if ext.comms[ast.Node(v)] {
				return true
			}
			for _, rhs := range v.Rhs {
				if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					checkRecv(pass, ext, u, chanRootVar)
				}
			}
		case *ast.RangeStmt:
			if _, isChan := exprType(pass.Info, v.X).(*types.Chan); !isChan || ext.inDefer(v.Pos()) {
				return true
			}
			if cv := chanRootVar(v.X); cv != nil && ext.closed[cv] {
				return true
			}
			pass.Reportf(v.Pos(), "range over a channel that is never closed in this extent; "+
				"in a context-carrying function the loop can block past cancellation")
		case *ast.CallExpr:
			checkCtxCall(pass, ext, v)
		}
		return true
	})
}

// checkRecv flags a bare channel receive that cannot observe
// cancellation.
func checkRecv(pass *Pass, ext *ctxExtent, u *ast.UnaryExpr, chanRootVar func(ast.Expr) *types.Var) {
	if ext.comms[ast.Node(u)] || ext.inDefer(u.Pos()) || isDoneCall(pass.Info, u.X) {
		return
	}
	// A comm of the form `x := <-ch` is recorded by its AssignStmt; the
	// UnaryExpr itself may also be the comm node.
	if cv := chanRootVar(u.X); cv != nil && ext.closed[cv] {
		return
	}
	pass.Reportf(u.Pos(), "channel receive in a context-carrying function outside any select, from a channel "+
		"this extent never closes; it can block past cancellation — select on the receive and ctx.Done()")
}

// checkCtxCall flags blocking std calls without a cancellation hatch
// and context drops at call sites.
func checkCtxCall(pass *Pass, ext *ctxExtent, call *ast.CallExpr) {
	if obj := StaticCallee(pass.Info, call); obj != nil && obj.Pkg() != nil {
		switch {
		case obj.Pkg().Path() == "time" && obj.Name() == "Sleep":
			if !ext.inDefer(call.Pos()) {
				pass.Reportf(call.Pos(), "time.Sleep in a context-carrying function ignores cancellation; "+
					"use a timer and select on it and ctx.Done()")
			}
		case obj.Pkg().Path() == "sync" && obj.Name() == "Wait" && recvNamed(obj) == "WaitGroup":
			if !ext.doneSelect && !ext.recvDone && !ext.ctxErr && !ext.inDefer(call.Pos()) {
				pass.Reportf(call.Pos(), "WaitGroup.Wait in a context-carrying function whose extent never observes "+
					"ctx.Done() or ctx.Err(); if a worker blocks, cancellation cannot unwind the wait")
			}
		}
	}
	// Dropped context: Background()/TODO() passed to a ctx-taking
	// callee from inside a context extent.
	if pass.Prog == nil {
		return
	}
	callee := StaticCallee(pass.Info, call)
	if callee == nil {
		return
	}
	idx, takes := pass.Prog.CtxParam[callee.FullName()]
	if !takes {
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || idx >= len(call.Args) {
		return
	}
	arg, ok := ast.Unparen(call.Args[idx]).(*ast.CallExpr)
	if !ok {
		return
	}
	if fresh := StaticCallee(pass.Info, arg); fresh != nil && fresh.Pkg() != nil &&
		fresh.Pkg().Path() == "context" && (fresh.Name() == "Background" || fresh.Name() == "TODO") {
		pass.Reportf(call.Args[idx].Pos(), "call to %s drops the live context by passing context.%s(); "+
			"pass the function's ctx through so cancellation propagates", callee.Name(), fresh.Name())
	}
}

// --- cancel-path analysis ---------------------------------------------------

// cancelFuncNames are the context constructors returning a CancelFunc.
var cancelFuncNames = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

// cancelSpec adapts cancel resolution to the shared obligation solver
// (obligation.go): a `_, cancel := context.WithX(...)` assignment gens
// the obligation, and any other mention of the variable — a call, a
// defer, an argument, an assignment, a return, a capture — discharges
// it (the cancel was invoked or handed to someone who can). Defer
// bodies are included deliberately: a deferred cancel() resolves the
// path it executes on. There is no release shape beyond the bare
// mention and no error pairing, so Discharge and the edge kills stay
// off.
func cancelSpec(info *types.Info) *ObSpec {
	return &ObSpec{
		Info: info,
		Gen: func(as *ast.AssignStmt, call *ast.CallExpr) []ObGen {
			if len(as.Lhs) != 2 {
				return nil
			}
			obj := StaticCallee(info, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" || !cancelFuncNames[obj.Name()] {
				return nil
			}
			id, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident)
			if !ok {
				return nil
			}
			v := identVar(info, id)
			if v == nil {
				return nil
			}
			return []ObGen{{Var: v, Pos: call.Pos()}}
		},
	}
}

// checkCancelPaths flags context.WithX calls whose cancel is not
// resolved on every path out of fn.
func checkCancelPaths(pass *Pass, fn ast.Node) {
	CheckObligations(pass, fn, cancelSpec(pass.Info), &ObReporter{
		Leak: func(inf ObInfo) {
			pass.Reportf(inf.Pos, "cancel function from this context.With call is not called, deferred or handed onward "+
				"on every path out of the function; the leaked path pins the child context's timer and goroutine")
		},
	})
}

// checkTimeAfterLoops flags time.After calls inside loops anywhere in
// fd (nested literals included — the loop is what repeats).
func checkTimeAfterLoops(pass *Pass, fd *ast.FuncDecl) {
	var loops [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := StaticCallee(pass.Info, call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || obj.Name() != "After" {
			return true
		}
		for _, r := range loops {
			if r[0] <= call.Pos() && call.Pos() < r[1] {
				pass.Reportf(call.Pos(), "time.After inside a loop allocates a timer every iteration that lives until it fires; "+
					"hoist a time.NewTimer (resetting it) or use a time.Ticker")
				break
			}
		}
		return true
	})
}
