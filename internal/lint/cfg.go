package lint

import (
	"go/ast"
	"go/token"
)

// This file implements the control-flow-graph layer the dataflow
// analyzers (divguard, goroutineleak) are built on. The graph is
// intraprocedural and syntactic: one CFG per *ast.FuncDecl or
// *ast.FuncLit body, with basic blocks holding the statements (and
// branch-condition expressions) that execute straight-line, and edges
// labelled with the branch condition where one exists so dataflow
// transfer functions can refine facts per branch arm.
//
// Handled control constructs: if/else, for (all three clauses), range,
// switch (expression and type), select, labeled statements,
// break/continue (with and without labels), goto, fallthrough, return,
// and the terminating calls panic and os.Exit. Defers are recorded on
// the CFG (they run on every exit path) rather than woven into the
// block graph.

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn ast.Node
	// Blocks lists every basic block; Blocks[0] is Entry and the last
	// block is the synthetic Exit that all returns converge on.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers collects the function's defer statements in source order;
	// they execute on every path to Exit.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	Index int
	// Nodes holds statements and branch-condition expressions in
	// execution order. Condition expressions of if/for appear as the
	// last node of the block that branches on them.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control transfer.
type Edge struct {
	From, To *Block
	// Cond, when non-nil, is the boolean expression the transfer
	// branches on; the edge is taken when Cond evaluates to Branch.
	// Unconditional transfers and branches the builder cannot express
	// as a boolean (range emptiness, switch dispatch, select readiness)
	// have a nil Cond.
	Cond   ast.Expr
	Branch bool
}

// BuildCFG constructs the control-flow graph of fn's body. fn must be a
// *ast.FuncDecl or *ast.FuncLit; a declaration without a body (external
// linkage) yields a graph with only Entry and Exit.
func BuildCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch v := fn.(type) {
	case *ast.FuncDecl:
		body = v.Body
	case *ast.FuncLit:
		body = v.Body
	default:
		panic("lint: BuildCFG requires *ast.FuncDecl or *ast.FuncLit")
	}
	b := &cfgBuilder{cfg: &CFG{Fn: fn}, labels: map[string]*labelBlocks{}}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	exit := b.newBlock()
	b.cfg.Exit = exit
	// Fall off the end of the body: implicit return.
	b.edgeTo(exit, nil, false)
	for _, from := range b.returns {
		b.rawEdge(from, exit, nil, false)
	}
	for _, g := range b.gotos {
		if lb := b.labels[g.label]; lb != nil {
			b.rawEdge(g.from, lb.head, nil, false)
		}
	}
	return b.cfg
}

type labelBlocks struct {
	head *Block // target of goto / labeled loop continue resolution
	stmt *ast.LabeledStmt
}

type pendingGoto struct {
	from  *Block
	label string
}

// loopCtx tracks where break and continue jump to for the innermost
// enclosing loops/switches/selects, with optional labels.
type loopCtx struct {
	label        string
	breakTo      *Block // filled lazily: block after the construct
	continueTo   *Block // loop post/header; nil for switch/select
	breakEdges   []*Block
	isLoop       bool
	fallthroughs []*Block // pending fallthrough sources (switch only)
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block // nil when the current point is unreachable
	stack   []*loopCtx
	labels  map[string]*labelBlocks
	gotos   []pendingGoto
	returns []*Block
	// pendingLabel is set between a LabeledStmt and the statement it
	// labels, so loops can register their contexts under the label.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) rawEdge(from, to *Block, cond ast.Expr, branch bool) {
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// edgeTo links the current block to `to` (no-op if unreachable).
func (b *cfgBuilder) edgeTo(to *Block, cond ast.Expr, branch bool) {
	if b.cur != nil {
		b.rawEdge(b.cur, to, cond, branch)
	}
}

// startBlock begins a fresh block and makes it current.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	b.cur = blk
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable statement (after return/panic): park it in a
		// dangling block so analyzers still see its syntax.
		b.startBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(v.List)
	case *ast.IfStmt:
		b.ifStmt(v)
	case *ast.ForStmt:
		b.forStmt(v)
	case *ast.RangeStmt:
		b.rangeStmt(v)
	case *ast.SwitchStmt:
		b.switchStmt(v)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(v)
	case *ast.SelectStmt:
		b.selectStmt(v)
	case *ast.LabeledStmt:
		b.labeledStmt(v)
	case *ast.ReturnStmt:
		b.add(v)
		if b.cur != nil {
			b.returns = append(b.returns, b.cur)
		}
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(v)
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, v)
		b.add(v)
	case *ast.ExprStmt:
		b.add(v)
		if isTerminatingCall(v.X) {
			if b.cur != nil {
				b.returns = append(b.returns, b.cur)
			}
			b.cur = nil
		}
	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(v *ast.IfStmt) {
	if v.Init != nil {
		b.add(v.Init)
	}
	b.add(v.Cond)
	condBlock := b.cur
	thenBlock := b.startBlock()
	if condBlock != nil {
		b.rawEdge(condBlock, thenBlock, v.Cond, true)
	}
	b.stmtList(v.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := v.Else != nil
	if hasElse {
		elseBlock := b.startBlock()
		if condBlock != nil {
			b.rawEdge(condBlock, elseBlock, v.Cond, false)
		}
		b.stmt(v.Else)
		elseEnd = b.cur
	}

	after := b.newBlock()
	if thenEnd != nil {
		b.rawEdge(thenEnd, after, nil, false)
	}
	if hasElse {
		if elseEnd != nil {
			b.rawEdge(elseEnd, after, nil, false)
		}
	} else if condBlock != nil {
		b.rawEdge(condBlock, after, v.Cond, false)
	}
	b.cur = after
}

func (b *cfgBuilder) pushLoop(continueTo *Block) *loopCtx {
	ctx := &loopCtx{label: b.pendingLabel, continueTo: continueTo, isLoop: true}
	b.pendingLabel = ""
	b.stack = append(b.stack, ctx)
	return ctx
}

func (b *cfgBuilder) pushSwitch() *loopCtx {
	ctx := &loopCtx{label: b.pendingLabel}
	b.pendingLabel = ""
	b.stack = append(b.stack, ctx)
	return ctx
}

func (b *cfgBuilder) pop(ctx *loopCtx, after *Block) {
	b.stack = b.stack[:len(b.stack)-1]
	for _, from := range ctx.breakEdges {
		b.rawEdge(from, after, nil, false)
	}
}

func (b *cfgBuilder) forStmt(v *ast.ForStmt) {
	if v.Init != nil {
		b.add(v.Init)
	}
	header := b.newBlock()
	b.edgeTo(header, nil, false)
	b.cur = header
	if v.Cond != nil {
		b.add(v.Cond)
	}
	headerEnd := b.cur

	post := b.newBlock()
	ctx := b.pushLoop(post)

	body := b.startBlock()
	if headerEnd != nil {
		b.rawEdge(headerEnd, body, v.Cond, true)
	}
	b.stmtList(v.Body.List)
	b.edgeTo(post, nil, false)
	b.cur = post
	if v.Post != nil {
		b.add(v.Post)
	}
	b.rawEdge(b.cur, header, nil, false)

	after := b.newBlock()
	if v.Cond != nil && headerEnd != nil {
		b.rawEdge(headerEnd, after, v.Cond, false)
	}
	b.pop(ctx, after)
	b.cur = after
	if v.Cond == nil && len(after.Preds) == 0 {
		// for{} with no breaks: code after is unreachable; keep the
		// block so later statements have a home.
		b.cur = after
	}
}

func (b *cfgBuilder) rangeStmt(v *ast.RangeStmt) {
	header := b.newBlock()
	b.edgeTo(header, nil, false)
	b.cur = header
	b.add(v) // the range header: evaluates X, binds key/value
	ctx := b.pushLoop(header)

	body := b.startBlock()
	b.rawEdge(header, body, nil, false)
	b.stmtList(v.Body.List)
	b.edgeTo(header, nil, false)

	after := b.newBlock()
	b.rawEdge(header, after, nil, false)
	b.pop(ctx, after)
	b.cur = after
}

func (b *cfgBuilder) switchStmt(v *ast.SwitchStmt) {
	if v.Init != nil {
		b.add(v.Init)
	}
	if v.Tag != nil {
		b.add(v.Tag)
	}
	header := b.cur
	if header == nil {
		header = b.startBlock()
	}
	ctx := b.pushSwitch()
	b.caseClauses(header, v.Body.List, hasDefaultClause(v.Body.List), ctx)
}

func (b *cfgBuilder) typeSwitchStmt(v *ast.TypeSwitchStmt) {
	if v.Init != nil {
		b.add(v.Init)
	}
	b.add(v.Assign)
	header := b.cur
	if header == nil {
		header = b.startBlock()
	}
	ctx := b.pushSwitch()
	b.caseClauses(header, v.Body.List, hasDefaultClause(v.Body.List), ctx)
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// caseClauses wires switch/type-switch clause bodies: each is entered
// from the header; fallthrough chains to the next clause body.
func (b *cfgBuilder) caseClauses(header *Block, clauses []ast.Stmt, hasDefault bool, ctx *loopCtx) {
	after := b.newBlock()
	var prevFallthrough *Block
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clause := b.startBlock()
		b.rawEdge(header, clause, nil, false)
		if prevFallthrough != nil {
			b.rawEdge(prevFallthrough, clause, nil, false)
			prevFallthrough = nil
		}
		for _, e := range cc.List {
			b.add(e)
		}
		fellThrough := false
		for i, s := range cc.Body {
			if br, isBr := s.(*ast.BranchStmt); isBr && br.Tok == token.FALLTHROUGH && i == len(cc.Body)-1 {
				fellThrough = true
				break
			}
			b.stmt(s)
		}
		if fellThrough && b.cur != nil {
			prevFallthrough = b.cur
			b.cur = nil
			continue
		}
		b.edgeTo(after, nil, false)
	}
	if !hasDefault {
		b.rawEdge(header, after, nil, false)
	}
	b.pop(ctx, after)
	b.cur = after
}

func (b *cfgBuilder) selectStmt(v *ast.SelectStmt) {
	header := b.cur
	if header == nil {
		header = b.startBlock()
	}
	b.add(v) // keep the select visible as a node in its header block
	ctx := b.pushSwitch()
	after := b.newBlock()
	for _, c := range v.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		clause := b.startBlock()
		b.rawEdge(header, clause, nil, false)
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edgeTo(after, nil, false)
	}
	// A select{} with no cases blocks forever: after stays unreachable.
	b.pop(ctx, after)
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(v *ast.LabeledStmt) {
	head := b.newBlock()
	b.edgeTo(head, nil, false)
	b.cur = head
	b.labels[v.Label.Name] = &labelBlocks{head: head, stmt: v}
	b.pendingLabel = v.Label.Name
	b.stmt(v.Stmt)
	b.pendingLabel = ""
}

func (b *cfgBuilder) branchStmt(v *ast.BranchStmt) {
	if b.cur == nil {
		return
	}
	b.add(v)
	switch v.Tok {
	case token.BREAK:
		for i := len(b.stack) - 1; i >= 0; i-- {
			ctx := b.stack[i]
			if v.Label == nil || ctx.label == v.Label.Name {
				ctx.breakEdges = append(ctx.breakEdges, b.cur)
				break
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.stack) - 1; i >= 0; i-- {
			ctx := b.stack[i]
			if !ctx.isLoop {
				continue
			}
			if v.Label == nil || ctx.label == v.Label.Name {
				b.rawEdge(b.cur, ctx.continueTo, nil, false)
				break
			}
		}
		b.cur = nil
	case token.GOTO:
		if v.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: v.Label.Name})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by caseClauses; a stray fallthrough is a compile
		// error anyway.
	}
}

// isTerminatingCall reports whether x is a call that never returns:
// panic(...) or os.Exit(...).
func isTerminatingCall(x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return (id.Name == "os" && fun.Sel.Name == "Exit") ||
				(id.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"))
		}
	}
	return false
}

// FuncNodes returns every function body in f — declarations and
// literals alike. Analyzers build one CFG per returned node.
func FuncNodes(f *ast.File) []ast.Node {
	var fns []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fns = append(fns, n)
		}
		return true
	})
	return fns
}

// WalkBlockNode visits the expressions and statements a block node
// executes itself, pruning subtrees that live in other basic blocks or
// other functions: range bodies, select clauses, and function-literal
// bodies. Analyzers iterating Block.Nodes use it to avoid double
// visiting (the pruned subtrees appear in their own blocks) and to keep
// deferred/goroutine bodies out of straight-line reasoning.
func WalkBlockNode(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		switch v := m.(type) {
		case *ast.RangeStmt:
			// Only the range header executes here: X and the key/value
			// targets; the body has its own blocks.
			if fn(m) {
				if v.Key != nil {
					WalkBlockNode(v.Key, fn)
				}
				if v.Value != nil {
					WalkBlockNode(v.Value, fn)
				}
				WalkBlockNode(v.X, fn)
			}
			return false
		case *ast.SelectStmt:
			// Clause comms and bodies live in their own blocks.
			fn(m)
			return false
		case *ast.FuncLit:
			// Runs when called, not where it is written.
			fn(m)
			return false
		}
		return fn(m)
	})
}
