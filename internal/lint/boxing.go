package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Boxing flags interface conversions of numeric scalars and slices
// inside hot-package loops. Converting a float64 (or any non-pointer
// concrete value wider than a pointer word, slices included) to an
// interface heap-allocates the boxed copy — one allocation per
// iteration when it happens inside a loop. The classic offenders are
// variadic ...any call sites (fmt.Sprintf, binary.Write's any
// parameter) fed one scalar per iteration; the fix is to hoist the
// conversion, batch the values into one concretely-typed write, or use
// a concrete-typed API.
//
// Reported shapes, per-iteration only (the shared walker lifts
// lazy-init guards, terminating branches, and spawned literals):
//
//   - call arguments whose parameter type is an interface while the
//     argument is a concrete numeric or slice value — including each
//     element of a variadic ...any tail (splat calls pass the slice
//     through unboxed and are exempt);
//   - explicit conversions `any(x)` / `interface{...}(x)`;
//   - assignments and var declarations with an interface-typed left
//     side and a concrete numeric/slice right side.
var Boxing = &Analyzer{
	Name: "boxing",
	Doc: "flag interface conversions of numeric scalars and slices in hot-package loops " +
		"(including variadic ...any call sites): each conversion heap-allocates per iteration",
	Scope: hotPackages,
	Run:   runBoxing,
}

func runBoxing(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			reported := map[token.Pos]bool{}
			walkPerIteration(pass.Info, fd.Body, func(n ast.Node) {
				checkBoxingNode(pass, n, reported)
			})
		}
	}
	return nil
}

func checkBoxingNode(pass *Pass, n ast.Node, reported map[token.Pos]bool) {
	report := func(pos token.Pos, arg ast.Expr, to types.Type) {
		if reported[pos] {
			return
		}
		// Constant operands box into static, compiler-interned data.
		if isConstVal(pass.Info, arg) {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, "%s (%s) is boxed into %s per loop iteration; hoist the conversion "+
			"or use a concretely-typed API", exprSnippet(arg),
			shortType(exprConcreteType(pass.Info, arg)), shortType(to))
	}
	switch v := n.(type) {
	case *ast.CallExpr:
		checkBoxingCall(pass, v, report)
	case *ast.AssignStmt:
		if v.Tok != token.ASSIGN {
			return
		}
		if len(v.Lhs) != len(v.Rhs) {
			return
		}
		for i, rhs := range v.Rhs {
			lt := exprConcreteType(pass.Info, v.Lhs[i])
			if lt == nil || !types.IsInterface(lt) {
				continue
			}
			if boxable(exprConcreteType(pass.Info, rhs)) {
				report(rhs.Pos(), rhs, lt)
			}
		}
	case *ast.ValueSpec:
		if v.Type == nil {
			return
		}
		lt := pass.Info.Types[v.Type].Type
		if lt == nil || !types.IsInterface(lt) {
			return
		}
		for _, val := range v.Values {
			if boxable(exprConcreteType(pass.Info, val)) {
				report(val.Pos(), val, lt)
			}
		}
	}
}

func checkBoxingCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, ast.Expr, types.Type)) {
	funTV, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	// Explicit conversion: any(x), MyIface(x).
	if funTV.IsType() {
		if types.IsInterface(funTV.Type) && len(call.Args) == 1 && boxable(exprConcreteType(pass.Info, call.Args[0])) {
			report(call.Args[0].Pos(), call.Args[0], funTV.Type)
		}
		return
	}
	sig, ok := funTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // splat passes the slice through unboxed
			}
			param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		if boxable(exprConcreteType(pass.Info, arg)) {
			report(arg.Pos(), arg, param)
		}
	}
}

// exprConcreteType returns e's (non-underlying) type, nil when
// unknown.
func exprConcreteType(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// boxable reports whether converting a value of type t to an interface
// necessarily heap-allocates the copy: concrete numeric scalars and
// slices. Interfaces, pointers and strings are exempt (pointers fit
// the data word; strings are out of the analyzer's numeric scope).
func boxable(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsNumeric != 0
	case *types.Slice:
		return true
	}
	return false
}

// shortType renders t package-name-qualified for diagnostics.
func shortType(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
