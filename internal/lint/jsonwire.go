package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// JSONWire (DESIGN §7 rule 17) audits every named type that reaches an
// encoding/json sink anywhere in the package set — the Program.WireTypes
// fact table, closed over the call graph and the type structure — for
// the silent and the runtime failure modes of the encoder:
//
//   - unexported fields are dropped without error on both encode and
//     decode: state that looks persisted simply is not;
//   - duplicate (or case-insensitively colliding) effective tag names:
//     Unmarshal matches tags case-insensitively, so `rho` and `Rho`
//     fight over the same input key;
//   - chan, func and complex fields make Marshal fail at runtime;
//   - bare interface{}/any fields decode as map[string]any/float64 and
//     encode whatever the dynamic value happens to be — no schema;
//   - float32/float64 fields not provably NaN/Inf-free: Marshal fails
//     at runtime on non-finite values, and ESSE state (variances,
//     condition numbers, timing ratios) is exactly where they appear.
//     A finite check anywhere in the tree (math.IsNaN/IsInf on the
//     field, directly or through a checker like wire.Finite) blesses
//     the field — see Program.FiniteFields;
//   - encode/decode asymmetry: an exported wire type in a non-cmd
//     package marshalled somewhere but never unmarshalled anywhere in
//     the tree (or vice versa) has no in-repo proof its wire form is
//     readable; the finding cites the lone-direction site.
//
// Soundness gaps, stated plainly: the fact table sees only static
// types at sink call sites (values reaching Marshal through an `any`
// variable bound earlier are invisible); a finite check anywhere
// blesses a field everywhere, it is not a per-path proof; _test.go
// files are parsed but not type-checked, so a decode that exists only
// in tests does not count as a decode — which is the point: the
// non-test tree must be able to read its own wire forms. Types with
// custom MarshalJSON/UnmarshalJSON covering every direction they are
// used in skip the field checks (the encoder never reflects over their
// fields). Unexported types and types in cmd/ are exempt from the
// asymmetry check only: they are package-local codec shims or emit
// JSON for external consumers.
var JSONWire = &Analyzer{
	Name:  "jsonwire",
	Doc:   "audit types crossing the JSON wire: dropped fields, colliding tags, unserializable and non-finite-float fields, encode/decode asymmetry",
	Scope: underInternalOrCmd,
	Run:   runJSONWire,
}

func runJSONWire(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Assign.IsValid() {
					continue
				}
				checkWireType(pass, ts)
			}
		}
	}
	return nil
}

func checkWireType(pass *Pass, ts *ast.TypeSpec) {
	obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	key := pass.Path + "." + ts.Name.Name
	fact := pass.Prog.WireTypes[key]
	if fact == nil {
		return
	}
	usedM, usedU := len(fact.Marshal) > 0, len(fact.Unmarshal) > 0

	if ts.Name.IsExported() && !strings.HasPrefix(pass.RelPath, "cmd") {
		if usedM && !usedU {
			pass.Reportf(ts.Name.Pos(),
				"wire type %s is marshalled (at %s) but never unmarshalled anywhere in the package set: add a decode path proving its wire form is readable, or keep it unexported as a one-way codec shim",
				ts.Name.Name, fact.Marshal[0])
		}
		if usedU && !usedM {
			pass.Reportf(ts.Name.Pos(),
				"wire type %s is unmarshalled (at %s) but never marshalled anywhere in the package set: add an encode path, or keep it unexported as a one-way codec shim",
				ts.Name.Name, fact.Unmarshal[0])
		}
	}

	customM := hasJSONMethod(obj, "MarshalJSON")
	customU := hasJSONMethod(obj, "UnmarshalJSON")
	if (!usedM || customM) && (!usedU || customU) {
		return // custom codec covers every direction in use
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	checkWireFields(pass, ts.Name.Name, key, st)
}

// checkWireFields runs the per-field checks over one wire struct.
func checkWireFields(pass *Pass, typeName, typeKey string, st *ast.StructType) {
	// effective tag name (lowercased) → how it was first spelled
	names := map[string]string{}
	for _, field := range st.Fields.List {
		tag := ""
		if field.Tag != nil {
			tag = strings.Trim(field.Tag.Value, "`")
		}
		tagName := jsonTagName(tag)
		if tagName == "-" {
			continue
		}
		if len(field.Names) == 0 {
			// Embedded field: promoted names are checked where the
			// embedded type is declared; a tagged embedding behaves as a
			// named field for collision purposes.
			if tagName != "" {
				reportTagCollision(pass, field.Pos(), typeName, names, tagName)
			}
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if !name.IsExported() {
				pass.Reportf(name.Pos(),
					"unexported field %s of wire type %s is silently dropped by encoding/json: export it, or tag it `json:\"-\"` to make the omission explicit",
					name.Name, typeName)
				continue
			}
			eff := tagName
			if eff == "" {
				eff = name.Name
			}
			reportTagCollision(pass, name.Pos(), typeName, names, eff)

			ft := pass.Info.Defs[name].Type()
			if ft == nil {
				continue
			}
			if kind := unserializableKind(ft, nil); kind != "" {
				pass.Reportf(name.Pos(),
					"field %s of wire type %s contains a %s value: json.Marshal fails on it at runtime; drop it from the wire form or tag it `json:\"-\"`",
					name.Name, typeName, kind)
			}
			if iface, ok := ft.Underlying().(*types.Interface); ok && iface.NumMethods() == 0 {
				pass.Reportf(name.Pos(),
					"field %s of wire type %s is a bare interface: it decodes as map[string]any/float64 and encodes whatever it dynamically holds; give the wire form a concrete type",
					name.Name, typeName)
			}
			if b, ok := ft.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				if !pass.Prog.FiniteFields[typeKey+"."+name.Name] {
					pass.Reportf(name.Pos(),
						"float field %s of wire type %s is not provably NaN/Inf-free: json.Marshal fails at runtime on non-finite values; guard it on the encode path with math.IsNaN/IsInf (e.g. wire.Finite)",
						name.Name, typeName)
				}
			}
		}
	}
}

// reportTagCollision records eff as an effective tag name of typeName
// and reports if it duplicates — exactly or case-insensitively — a
// name already claimed by an earlier field.
func reportTagCollision(pass *Pass, pos token.Pos, typeName string, names map[string]string, eff string) {
	lower := strings.ToLower(eff)
	prev, taken := names[lower]
	if !taken {
		names[lower] = eff
		return
	}
	if prev == eff {
		pass.Reportf(pos,
			"duplicate json tag %q on wire type %s: encoding/json drops both fields on encode and fills neither deterministically on decode",
			eff, typeName)
		return
	}
	pass.Reportf(pos,
		"json tags %q and %q on wire type %s collide case-insensitively: Unmarshal matches tags case-insensitively, so both fields fight over the same input key",
		prev, eff, typeName)
}

// jsonTagName extracts the name component of a struct tag's json key:
// "" when absent, "-" when the field is explicitly excluded.
func jsonTagName(tag string) string {
	v := reflect.StructTag(tag).Get("json")
	if v == "" {
		return ""
	}
	name, _, _ := strings.Cut(v, ",")
	return name
}

// hasJSONMethod reports whether the type (or its pointer) defines the
// named method.
func hasJSONMethod(obj *types.TypeName, name string) bool {
	o, _, _ := types.LookupFieldOrMethod(types.NewPointer(obj.Type()), true, obj.Pkg(), name)
	_, ok := o.(*types.Func)
	return ok
}

// unserializableKind walks t the way the encoder would and returns
// "chan", "func" or "complex" if Marshal would fail at runtime, or "".
// Named types with a custom MarshalJSON stop the walk: the encoder
// never reflects past them.
func unserializableKind(t types.Type, seen map[*types.Named]bool) string {
	switch v := t.(type) {
	case *types.Named:
		if seen[v] {
			return ""
		}
		if seen == nil {
			seen = map[*types.Named]bool{}
		}
		seen[v] = true
		if hasJSONMethod(v.Obj(), "MarshalJSON") {
			return ""
		}
		return unserializableKind(v.Underlying(), seen)
	case *types.Pointer:
		return unserializableKind(v.Elem(), seen)
	case *types.Slice:
		return unserializableKind(v.Elem(), seen)
	case *types.Array:
		return unserializableKind(v.Elem(), seen)
	case *types.Map:
		return unserializableKind(v.Elem(), seen)
	case *types.Chan:
		return "chan"
	case *types.Signature:
		return "func"
	case *types.Basic:
		if v.Info()&types.IsComplex != 0 {
			return "complex"
		}
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			f := v.Field(i)
			if !f.Exported() && !f.Anonymous() {
				continue
			}
			if jsonTagName(v.Tag(i)) == "-" {
				continue
			}
			if k := unserializableKind(f.Type(), seen); k != "" {
				return k
			}
		}
	}
	return ""
}
