package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SharedGuard is static race detection in the RacerD style: for every
// struct field, package-level variable and captured local it computes
// the locks consistently held at each access (via the lockheld
// must-held dataflow, the EntryHeld caller-lock summaries, and per-
// goroutine-context segmentation of function bodies) and reports
// accesses whose guard sets cannot intersect.
//
// Three rules:
//
//  1. Mixed guard (fields and package vars): a location guarded by a
//     sibling lock at some access site but accessed elsewhere with no
//     relevant lock held. The existing guards are the programmer's own
//     declaration that the location is shared; no spawn evidence is
//     required.
//  2. Unguarded concurrent writes (fields and package vars): no lock
//     anywhere, but a write happens in a goroutine context (inside a
//     go-literal or in a function reachable from a go statement) while
//     another context also accesses the location.
//  3. Captured locals: a local written in one goroutine context of its
//     function and accessed in another with no common lock — including
//     a go-literal spawned in a loop racing against its own instances.
//
// Escape hatches, each a documented heuristic, not a proof:
// read-only-after-publication (no writes outside constructors and
// owned values ⇒ safe); constructor writes (functions named New*/Open*
// or init, or returning the owner type, initialize before publication);
// owned values (accesses through a freshly allocated local, a value-
// typed variable, or a value receiver are private copies or
// pre-publication state); pre-spawn and post-join accesses in the
// spawning function (before the first go statement, or after a
// WaitGroup.Wait that follows every go statement, the spawner has the
// location to itself); per-slot slice writes (walkAccesses demotes
// element writes to base reads). Locations that are themselves sync
// primitives, channels, or atomically accessed (AtomicKeys) belong to
// other analyzers. Calls through function values, interface methods,
// and closures executed on foreign goroutines (e.g. handler callbacks)
// are invisible, so a context classified as non-concurrent may in
// reality run concurrently — the usual soundness gap of the static
// call graph.
var SharedGuard = &Analyzer{
	Name: "sharedguard",
	Doc: "flag struct fields, package variables and captured locals accessed from multiple " +
		"goroutine contexts whose held-lock sets cannot intersect (static race detection)",
	Scope: underInternalOrCmd,
	Run:   runSharedGuard,
}

func runSharedGuard(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	for _, f := range pass.Prog.sharedGuardFindings() {
		if f.pkgPath == pass.Path {
			pass.report(Diagnostic{Pos: f.pos, Analyzer: pass.Analyzer.Name, Message: f.msg})
		}
	}
	return nil
}

// sgFinding is one sharedguard diagnostic, computed once per Program
// and routed to the pass of the package it belongs to.
type sgFinding struct {
	pkgPath string
	pos     token.Position
	msg     string
}

func (p *Program) sharedGuardFindings() []sgFinding {
	p.sgOnce.Do(func() { p.sgFindings = computeSharedGuard(p) })
	return p.sgFindings
}

// sgSegment is one goroutine context of a declaration: the declaration
// body itself, or a nested function literal. Literals spawned by a go
// statement form their own context; other literals inherit the context
// they are written in (they usually run on the same goroutine — a
// documented heuristic).
type sgSegment struct {
	node   ast.Node // *ast.FuncDecl or *ast.FuncLit
	ctxID  string
	goCtx  bool // executes on (or is reachable from) a spawned goroutine
	looped bool // spawned inside a loop: races against its own instances
	root   bool // the declaration segment itself
}

// sgAccess is one observed access to a tracked location.
type sgAccess struct {
	pkg      *Package
	pos      token.Pos
	write    bool
	ctxID    string
	goCtx    bool
	looped   bool
	guards   heldSet // raw lock keys held at the access
	exempt   bool    // constructor or owned-value access
	root     bool    // in the declaration segment
	preGo    bool    // root-segment access before the first go statement
	postJoin bool    // root-segment access after the joining Wait
}

// sgLoc aggregates the accesses of one canonical location key.
type sgLoc struct {
	key  string
	kind accKind
	name string // display name for diagnostics
	accs []sgAccess
}

// accKind classifies what an access key refers to.
type accKind int

const (
	accKindField accKind = iota
	accKindPkgVar
	accKindLocal
)

func computeSharedGuard(p *Program) []sgFinding {
	table := map[string]*sgLoc{}
	for _, key := range p.Graph.Keys {
		fn := p.Graph.Funcs[key]
		if fn.Decl.Body == nil {
			continue
		}
		collectDeclAccesses(p, fn, table)
	}

	var findings []sgFinding
	for _, key := range sortedLocKeys(table) {
		findings = append(findings, evalLocation(table[key])...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings
}

func sortedLocKeys(table map[string]*sgLoc) []string {
	keys := make([]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectDeclAccesses walks every segment of one declaration and files
// each tracked access under its canonical location key.
func collectDeclAccesses(p *Program, fn *FuncInfo, table map[string]*sgLoc) {
	info := fn.Pkg.Info
	ctx := &lockCtx{Info: info, Pkg: fn.Pkg.Pkg, Path: fn.Pkg.Path, Enclosing: fn.Key}
	segs := enumerateSegments(p, fn)
	owned := ownedLocals(info, fn.Decl)
	recv := receiverVar(info, fn.Decl)
	ctorAll, ctorFor := constructorOf(fn)
	firstGo, joinPos := joinWindow(info, fn.Decl)

	// declaredInLiteral reports whether a position falls inside any
	// function literal of the declaration: a local declared there is
	// per-instance state of that literal, never shared between its
	// invocations.
	declaredInLiteral := func(pos token.Pos) bool {
		for _, s := range segs {
			if !s.root && s.node.Pos() <= pos && pos < s.node.End() {
				return true
			}
		}
		return false
	}

	for _, seg := range segs {
		var entry []string
		if !seg.goCtx {
			// Non-spawned segments run on the caller's goroutine; a
			// closure created while a lock is held usually runs under it
			// (heuristic — a stored closure may outlive the lock).
			entry = p.EntryHeld[fn.Key]
		}
		seg := seg
		forEachHeldAccess(ctx, seg.node, entry, func(e ast.Expr, write bool, held heldSet) {
			key, kind, vr, base, ok := classifyAccess(ctx, fn, e, owned, recv)
			if !ok {
				return
			}
			if kind == accKindLocal && declaredInLiteral(vr.Pos()) {
				return
			}
			if isSyncPrimitiveType(vr.Type()) || isTypedAtomic(vr.Type()) {
				return
			}
			if _, atomic := p.AtomicKeys[key]; atomic {
				return // atomicmix's domain
			}
			exempt := false
			if kind == accKindField {
				if owner, okOwner := ownerOf(key); okOwner {
					if ctorFor[owner] || (ctorAll && strings.HasPrefix(owner, fn.Pkg.Path+".")) {
						exempt = true
					}
				}
				if base != nil && owned[base] {
					exempt = true
				}
			}
			acc := sgAccess{
				pkg:    fn.Pkg,
				pos:    e.Pos(),
				write:  write,
				ctxID:  seg.ctxID,
				goCtx:  seg.goCtx,
				looped: seg.looped,
				guards: held.clone(),
				exempt: exempt,
				root:   seg.root,
			}
			if !seg.goCtx && firstGo != token.NoPos {
				acc.preGo = acc.pos < firstGo
				acc.postJoin = joinPos != token.NoPos && acc.pos > joinPos
			}
			loc := table[key]
			if loc == nil {
				loc = &sgLoc{key: key, kind: kind, name: displayName(key, kind)}
				table[key] = loc
			}
			loc.accs = append(loc.accs, acc)
		})
	}
}

// enumerateSegments lists the goroutine contexts of one declaration.
// Literals appear in preorder, so a literal's enclosing literals are
// assigned before it; the innermost enclosing context wins.
func enumerateSegments(p *Program, fn *FuncInfo) []sgSegment {
	rootSeg := sgSegment{node: fn.Decl, ctxID: fn.Key, goCtx: p.spawnReachable()[fn.Key], root: true}
	segs := []sgSegment{rootSeg}
	spawned := map[*ast.FuncLit]*ast.GoStmt{}
	var lits []*ast.FuncLit
	var loops []ast.Node
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				spawned[lit] = v
			}
		case *ast.FuncLit:
			lits = append(lits, v)
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})
	inLoop := func(at token.Pos) bool {
		for _, l := range loops {
			if l.Pos() < at && at < l.End() {
				return true
			}
		}
		return false
	}
	ctxOf := map[*ast.FuncLit]sgSegment{}
	for _, lit := range lits {
		parent := rootSeg
		for _, outer := range lits {
			if outer == lit {
				break
			}
			if outer.Pos() <= lit.Pos() && lit.End() <= outer.End() {
				parent = ctxOf[outer]
			}
		}
		seg := sgSegment{node: lit, ctxID: parent.ctxID, goCtx: parent.goCtx, looped: parent.looped}
		if g, isGo := spawned[lit]; isGo {
			pp := fn.Pkg.Fset.Position(lit.Pos())
			seg.ctxID = fmt.Sprintf("%s@go:%d:%d", fn.Key, pp.Line, pp.Column)
			seg.goCtx = true
			seg.looped = parent.looped || inLoop(g.Pos())
		}
		ctxOf[lit] = seg
		segs = append(segs, seg)
	}
	return segs
}

// classifyAccess canonicalizes an access expression and classifies its
// sharing domain by the root of the expression:
//
//   - a bare identifier: package variable or function local;
//   - a field chain rooted in a receiver, a pointer parameter or a
//     pointer obtained from shared state: the type-canonical field key
//     "(pkg.T).f" — guard discipline applies across all instances;
//   - a field chain rooted in a value-typed or freshly allocated local:
//     the root local itself (capture semantics decide sharing, rule 3);
//   - a chain rooted in a package variable: "pkgpath.var.f".
//
// base returns the root variable for owned-value checks.
func classifyAccess(ctx *lockCtx, fn *FuncInfo, e ast.Expr, owned map[*types.Var]bool, recv *types.Var) (
	key string, kind accKind, vr *types.Var, base *types.Var, ok bool) {

	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return "", 0, nil, nil, false
		}
		obj, isVar := ctx.Info.Uses[v].(*types.Var)
		if !isVar || obj.IsField() {
			return "", 0, nil, nil, false
		}
		if obj.Parent() == ctx.Pkg.Scope() || (obj.Pkg() != nil && obj.Pkg().Scope() == obj.Parent()) {
			return obj.Pkg().Path() + "." + v.Name, accKindPkgVar, obj, nil, true
		}
		return localKey(fn, obj), accKindLocal, obj, obj, true
	case *ast.SelectorExpr:
		sel, isVar := ctx.Info.Uses[v.Sel].(*types.Var)
		if !isVar {
			return "", 0, nil, nil, false
		}
		root := rootIdent(v)
		if root == nil {
			return "", 0, nil, nil, false
		}
		switch robj := ctx.Info.Uses[root].(type) {
		case *types.PkgName:
			if !sel.IsField() {
				// Qualified package-level variable pkg.V.
				return lockKeyOf(ctx, v), accKindPkgVar, sel, nil, true
			}
			return lockKeyOf(ctx, v), accKindPkgVar, sel, nil, true
		case *types.Var:
			if !sel.IsField() {
				return "", 0, nil, nil, false
			}
			if robj.Parent() == ctx.Pkg.Scope() || (robj.Pkg() != nil && robj.Pkg().Scope() == robj.Parent()) {
				return lockKeyOf(ctx, v), accKindPkgVar, sel, nil, true
			}
			// Local root: sharing depends on what the root aliases.
			_, isPtr := robj.Type().(*types.Pointer)
			if robj == recv {
				if isPtr {
					return lockKeyOf(ctx, v), accKindField, sel, robj, true
				}
				// Value receiver: a private copy.
				return localKey(fn, robj), accKindLocal, robj, robj, true
			}
			if !isPtr || owned[robj] {
				// Value-typed local/param (a copy) or freshly allocated
				// pointer: capture semantics decide sharing.
				return localKey(fn, robj), accKindLocal, robj, robj, true
			}
			// Pointer from a parameter, call or shared structure:
			// aliases state published elsewhere.
			return lockKeyOf(ctx, v), accKindField, sel, robj, true
		}
	}
	return "", 0, nil, nil, false
}

// localKey names a function-local variable uniquely within the program:
// declaration key, name, and the variable's defining position (two
// locals named x in different scopes stay distinct).
func localKey(fn *FuncInfo, v *types.Var) string {
	return fmt.Sprintf("%s·%s#%d", fn.Key, v.Name(), int(v.Pos()))
}

// ownerOf extracts "pkgpath.Type" from a type-canonical field key
// "(pkgpath.Type).field".
func ownerOf(key string) (string, bool) {
	if !strings.HasPrefix(key, "(") {
		return "", false
	}
	i := strings.IndexByte(key, ')')
	if i < 0 {
		return "", false
	}
	return key[1:i], true
}

// displayName renders a location key for diagnostics.
func displayName(key string, kind accKind) string {
	if kind == accKindLocal {
		// fn·name#pos → name
		if i := strings.Index(key, "·"); i >= 0 {
			rest := key[i+len("·"):]
			if j := strings.IndexByte(rest, '#'); j >= 0 {
				return rest[:j]
			}
			return rest
		}
	}
	return key
}

// ownedLocals collects the local variables of decl whose defining
// assignment is a fresh allocation — &T{...}, T{...}, new(T), make(...)
// — and which therefore start out private to the function. Ownership is
// a heuristic: a later publication (storing the pointer into shared
// state) is not tracked.
func ownedLocals(info *types.Info, decl *ast.FuncDecl) map[*types.Var]bool {
	owned := map[*types.Var]bool{}
	if decl.Body == nil {
		return owned
	}
	fresh := func(e ast.Expr) bool {
		switch v := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, lit := ast.Unparen(v.X).(*ast.CompositeLit)
			return v.Op == token.AND && lit
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					return id.Name == "new" || id.Name == "make"
				}
			}
		}
		return false
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || !fresh(v.Rhs[i]) {
					continue
				}
				if obj, ok := info.Defs[id].(*types.Var); ok {
					owned[obj] = true
				} else if obj, ok := info.Uses[id].(*types.Var); ok {
					owned[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(v.Names) != len(v.Values) {
				return true
			}
			for i, id := range v.Names {
				if fresh(v.Values[i]) {
					if obj, ok := info.Defs[id].(*types.Var); ok {
						owned[obj] = true
					}
				}
			}
		}
		return true
	})
	return owned
}

// receiverVar returns decl's receiver variable, or nil.
func receiverVar(info *types.Info, decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// constructorOf reports whether fn looks like a constructor: all=true
// for New*/Open*/init names (any type of the same package), and types
// named in ctorFor ("pkgpath.Type") when fn returns the type.
func constructorOf(fn *FuncInfo) (all bool, ctorFor map[string]bool) {
	ctorFor = map[string]bool{}
	name := fn.Obj.Name()
	if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "Open") || name == "init" {
		all = true
	}
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return all, ctorFor
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			ctorFor[named.Obj().Pkg().Path()+"."+named.Obj().Name()] = true
		}
	}
	return all, ctorFor
}

// joinWindow locates the spawn/join structure of decl: the position of
// the first go statement, and the position of the first WaitGroup.Wait
// call that follows every go statement (the join point after which the
// spawner owns captured state again). Either is NoPos when absent.
func joinWindow(info *types.Info, decl *ast.FuncDecl) (firstGo, joinPos token.Pos) {
	var goPos []token.Pos
	var waits []token.Pos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			goPos = append(goPos, v.Pos())
		case *ast.CallExpr:
			if isBlockingStdCall(info, v) {
				if obj := StaticCallee(info, v); obj != nil && obj.Name() == "Wait" {
					waits = append(waits, v.Pos())
				}
			}
		}
		return true
	})
	if len(goPos) == 0 {
		return token.NoPos, token.NoPos
	}
	firstGo = goPos[0]
	lastGo := goPos[0]
	for _, p := range goPos {
		if p < firstGo {
			firstGo = p
		}
		if p > lastGo {
			lastGo = p
		}
	}
	joinPos = token.NoPos
	for _, w := range waits {
		if w > lastGo && (joinPos == token.NoPos || w < joinPos) {
			joinPos = w
		}
	}
	return firstGo, joinPos
}

// siblingGuards filters the raw held set of an access down to the locks
// that can plausibly guard the location: for a field "(pkg.T).f", locks
// of the same struct or the same package; for a package variable,
// locks of the same package.
func siblingGuards(key string, kind accKind, held heldSet) []string {
	var prefixes []string
	switch kind {
	case accKindField:
		owner, ok := ownerOf(key)
		if !ok {
			return nil
		}
		prefixes = []string{"(" + owner + ")."}
		if i := strings.LastIndexByte(owner, '.'); i > 0 {
			prefixes = append(prefixes, owner[:i]+".")
		}
	case accKindPkgVar:
		if i := strings.LastIndexByte(key, '.'); i > 0 {
			prefixes = append(prefixes, key[:i+1])
		}
	default:
		// Locals: any lock counts — local state is typically guarded by
		// a local or sibling mutex, and precision matters less than not
		// missing the guard.
		return sortedKeys(held)
	}
	var out []string
	for lk := range held {
		for _, p := range prefixes {
			if strings.HasPrefix(lk, p) {
				out = append(out, lk)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// evalLocation applies the three rules to one location's accesses.
func evalLocation(loc *sgLoc) []sgFinding {
	var accs []sgAccess
	for _, a := range loc.accs {
		if !a.exempt {
			accs = append(accs, a)
		}
	}
	hasWrite := false
	for _, a := range accs {
		if a.write {
			hasWrite = true
			break
		}
	}
	if !hasWrite {
		return nil // read-only after publication
	}
	if loc.kind == accKindLocal {
		return evalLocal(loc, accs)
	}
	return evalShared(loc, accs)
}

// evalShared handles fields and package variables: rule 1 (mixed
// guard), then rule 2 (unguarded concurrent writes).
func evalShared(loc *sgLoc, accs []sgAccess) []sgFinding {
	type guarded struct {
		acc    sgAccess
		guards []string
	}
	var withGuard, without []guarded
	for _, a := range accs {
		g := siblingGuards(loc.key, loc.kind, a.guards)
		if len(g) > 0 {
			withGuard = append(withGuard, guarded{a, g})
		} else {
			without = append(without, guarded{a, nil})
		}
	}
	var findings []sgFinding
	if len(withGuard) > 0 {
		if len(without) == 0 {
			return nil // consistently guarded
		}
		// Rule 1: mixed guard — name the most common guard lock.
		count := map[string]int{}
		for _, g := range withGuard {
			for _, lk := range g.guards {
				count[lk]++
			}
		}
		lock, bestN := "", -1
		for lk, n := range count {
			if n > bestN || (n == bestN && lk < lock) {
				lock, bestN = lk, n
			}
		}
		ref := withGuard[0].acc
		seen := map[token.Pos]bool{}
		for _, g := range without {
			if seen[g.acc.pos] {
				continue
			}
			seen[g.acc.pos] = true
			findings = append(findings, sgFinding{
				pkgPath: g.acc.pkg.Path,
				pos:     g.acc.pkg.Fset.Position(g.acc.pos),
				msg: fmt.Sprintf("%s of %s without holding %s, which guards it at other access sites (e.g. %s); "+
					"take the lock here or move the access into the guarded section",
					rw(g.acc.write), loc.name, lock, ref.pkg.Fset.Position(ref.pos)),
			})
		}
		return findings
	}
	// Rule 2: no guards anywhere — need goroutine-context evidence.
	for _, w := range without {
		if !w.acc.write || !w.acc.goCtx {
			continue
		}
		for _, o := range without {
			if o.acc.ctxID == w.acc.ctxID {
				continue
			}
			findings = append(findings, sgFinding{
				pkgPath: w.acc.pkg.Path,
				pos:     w.acc.pkg.Fset.Position(w.acc.pos),
				msg: fmt.Sprintf("%s is written here in a goroutine context and also accessed at %s with no lock guarding either; "+
					"guard both sites with one mutex or make the field atomic",
					loc.name, o.acc.pkg.Fset.Position(o.acc.pos)),
			})
			return findings // one report per location
		}
	}
	return findings
}

// evalLocal handles captured locals: rule 3.
func evalLocal(loc *sgLoc, accs []sgAccess) []sgFinding {
	// Pre-spawn and post-join accesses on the spawner's goroutine are
	// owned by the spawner.
	var live []sgAccess
	for _, a := range accs {
		if a.preGo || a.postJoin {
			continue
		}
		live = append(live, a)
	}
	disjoint := func(a, b sgAccess) bool {
		for k := range a.guards {
			if b.guards[k] {
				return false
			}
		}
		return true
	}
	for _, w := range live {
		if !w.write {
			continue
		}
		// Self-race: written by a goroutine spawned in a loop.
		if w.goCtx && w.looped && len(w.guards) == 0 {
			return []sgFinding{{
				pkgPath: w.pkg.Path,
				pos:     w.pkg.Fset.Position(w.pos),
				msg: fmt.Sprintf("captured variable %s is written in a goroutine spawned in a loop with no lock held; "+
					"concurrent instances race on it — guard it with a mutex or make it per-iteration",
					loc.name),
			}}
		}
		for _, o := range live {
			if o.ctxID == w.ctxID || (!w.goCtx && !o.goCtx) || !disjoint(w, o) {
				continue
			}
			return []sgFinding{{
				pkgPath: w.pkg.Path,
				pos:     w.pkg.Fset.Position(w.pos),
				msg: fmt.Sprintf("captured variable %s is written here and accessed at %s from a different goroutine context "+
					"with no common lock; guard both sites or hand the goroutine its own copy",
					loc.name, o.pkg.Fset.Position(o.pos)),
			}}
		}
	}
	return nil
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}
