package lint

import "testing"

func TestRngDeterminismFixture(t *testing.T) {
	RunFixture(t, RngDeterminism, "rngdet")
}

func TestStreamShareFixture(t *testing.T) {
	RunFixture(t, StreamShare, "streamshare")
}

func TestErrDropFixture(t *testing.T) {
	RunFixture(t, ErrDrop, "errdrop")
}

func TestDivGuardFixture(t *testing.T) {
	RunFixture(t, DivGuard, "divguard")
}

func TestFloatCmpFixture(t *testing.T) {
	RunFixture(t, FloatCmp, "floatcmp")
}

func TestGoroutineLeakFixture(t *testing.T) {
	RunFixture(t, GoroutineLeak, "goroutineleak")
}

func TestAliasGuardFixture(t *testing.T) {
	RunFixture(t, AliasGuard, "aliasguard")
}

func TestMapOrderFixture(t *testing.T) {
	RunFixture(t, MapOrder, "maporder")
}

func TestLockHeldFixture(t *testing.T) {
	RunFixture(t, LockHeld, "lockheld")
}

func TestHotAllocFixture(t *testing.T) {
	RunFixture(t, HotAlloc, "hotalloc")
}

func TestPreallocateFixture(t *testing.T) {
	RunFixture(t, Preallocate, "preallocate")
}

func TestBoxingFixture(t *testing.T) {
	RunFixture(t, Boxing, "boxing")
}

func TestMetricLabelsFixture(t *testing.T) {
	RunFixture(t, MetricLabels, "metriclabels")
}

func TestSlogKVFixture(t *testing.T) {
	RunFixture(t, SlogKV, "slogkv")
}

// TestDivGuardSummaryFixture drives divguard over call sites whose
// safety only the interprocedural numeric summaries can prove (or
// refuse to prove).
func TestDivGuardSummaryFixture(t *testing.T) {
	RunFixture(t, DivGuard, "divguardsum")
}

func TestSharedGuardFixture(t *testing.T) {
	RunFixture(t, SharedGuard, "sharedguard")
}

func TestCtxFlowFixture(t *testing.T) {
	RunFixture(t, CtxFlow, "ctxflow")
}

func TestAtomicMixFixture(t *testing.T) {
	RunFixture(t, AtomicMix, "atomicmix")
}

func TestJSONWireFixture(t *testing.T) {
	RunFixture(t, JSONWire, "jsonwire")
}

func TestHTTPGuardFixture(t *testing.T) {
	RunFixture(t, HTTPGuard, "httpguard")
}

func TestExhaustEnumFixture(t *testing.T) {
	RunFixture(t, ExhaustEnum, "exhaustenum")
}

func TestStatefsmFixture(t *testing.T) {
	RunFixture(t, StateFSM, "statefsm")
}

func TestResleakFixture(t *testing.T) {
	RunFixture(t, ResLeak, "resleak")
}

func TestRetrybudgetFixture(t *testing.T) {
	RunFixture(t, RetryBudget, "retrybudget")
}

func TestShapecheckFixture(t *testing.T) {
	RunFixture(t, ShapeCheck, "shapecheck")
}

func TestUnitdimFixture(t *testing.T) {
	RunFixture(t, UnitDim, "unitdim")
}

// TestLoadRealPackage exercises the go-list/export-data loader against
// a real module package and checks scoping: rng sits under internal/,
// so the whole suite applies and must come back clean.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("", "esse/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("expected 1 package, got %d", len(pkgs))
	}
	p := pkgs[0]
	if p.RelPath != "internal/rng" {
		t.Fatalf("RelPath = %q, want internal/rng", p.RelPath)
	}
	if p.Pkg == nil || p.Pkg.Name() != "rng" {
		t.Fatalf("type info missing for %s", p.Path)
	}
	diags, err := RunAnalyzers(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on clean package: %s", d)
	}
}

// TestScopes pins the path filters: rngdeterminism and errdrop are
// scoped gates, streamshare applies everywhere.
func TestScopes(t *testing.T) {
	cases := []struct {
		rel      string
		rngdet   bool
		errdrop  bool
		divguard bool
	}{
		{"internal/workflow", true, true, false},
		{"internal/linalg", true, true, true},
		{"internal/ocean", true, true, true},
		{"cmd/esse-forecast", true, false, false},
		{"examples/quickstart", false, false, false},
		{".", false, false, false},
	}
	// The interprocedural analyzers gate everything under internal/ and
	// cmd/, including the lint suite itself (the lint-self target).
	for _, rel := range []string{"internal/lint", "cmd/esselint", "internal/sched"} {
		if !MapOrder.Scope(rel) || !LockHeld.Scope(rel) {
			t.Errorf("maporder/lockheld must cover %q", rel)
		}
		if !SharedGuard.Scope(rel) || !CtxFlow.Scope(rel) || !AtomicMix.Scope(rel) {
			t.Errorf("sharedguard/ctxflow/atomicmix must cover %q", rel)
		}
		if !StateFSM.Scope(rel) || !ResLeak.Scope(rel) || !RetryBudget.Scope(rel) {
			t.Errorf("statefsm/resleak/retrybudget must cover %q", rel)
		}
		if !ShapeCheck.Scope(rel) || !UnitDim.Scope(rel) {
			t.Errorf("shapecheck/unitdim must cover %q", rel)
		}
		if !SlogKV.Scope(rel) {
			t.Errorf("slogkv must cover %q", rel)
		}
	}
	if MapOrder.Scope("examples/quickstart") || LockHeld.Scope("examples/quickstart") {
		t.Error("maporder/lockheld must not cover examples/")
	}
	if SharedGuard.Scope("examples/quickstart") || CtxFlow.Scope("examples/quickstart") || AtomicMix.Scope("examples/quickstart") {
		t.Error("sharedguard/ctxflow/atomicmix must not cover examples/")
	}
	if StateFSM.Scope("examples/quickstart") || ResLeak.Scope("examples/quickstart") || RetryBudget.Scope("examples/quickstart") {
		t.Error("statefsm/resleak/retrybudget must not cover examples/")
	}
	if ShapeCheck.Scope("examples/quickstart") || UnitDim.Scope("examples/quickstart") {
		t.Error("shapecheck/unitdim must not cover examples/")
	}
	for _, c := range cases {
		if got := RngDeterminism.Scope(c.rel); got != c.rngdet {
			t.Errorf("rngdeterminism scope(%q) = %v, want %v", c.rel, got, c.rngdet)
		}
		if got := ErrDrop.Scope(c.rel); got != c.errdrop {
			t.Errorf("errdrop scope(%q) = %v, want %v", c.rel, got, c.errdrop)
		}
		if got := DivGuard.Scope(c.rel); got != c.divguard {
			t.Errorf("divguard scope(%q) = %v, want %v", c.rel, got, c.divguard)
		}
		if StreamShare.Scope != nil {
			t.Error("streamshare must not be path-scoped")
		}
	}
}

// TestLoadSkipsTestdata pins the loader guard: fixture packages under
// testdata/ are deliberately broken code and must never be analysis
// targets, whatever `go list` pattern semantics do.
func TestLoadSkipsTestdata(t *testing.T) {
	for _, path := range []string{
		"esse/internal/lint/testdata/src/divguard",
		"a/testdata",
		"testdata/b",
	} {
		if !underTestdata(path) {
			t.Errorf("underTestdata(%q) = false, want true", path)
		}
	}
	if underTestdata("esse/internal/lint") {
		t.Error("underTestdata(esse/internal/lint) = true, want false")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if underTestdata(p.Path) {
			t.Errorf("Load returned testdata package %s", p.Path)
		}
	}
}
