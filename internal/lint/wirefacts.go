package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file computes the wire-layer fact tables the v6 analyzers
// (jsonwire, and through it the ROADMAP-1 dispatcher/worker protocol
// review) consume:
//
//   - WireTypes: every named type that reaches an encoding/json
//     marshal or unmarshal sink anywhere in the package set, with the
//     sites, closed over the call graph (a helper that forwards its
//     parameter into json.Marshal makes its call sites sinks too) and
//     over the type structure (struct fields, embedding, slices, maps,
//     pointers — everything the encoder itself would traverse);
//   - FiniteFields: the "pkg.Type.Field" keys of float struct fields
//     that carry a finite-value check somewhere in the tree — a direct
//     math.IsNaN/math.IsInf on the field selector, or the field passed
//     into a function that (transitively) applies such a check to that
//     parameter. jsonwire treats a checked field as NaN/Inf-safe.
//
// Soundness gaps, stated plainly: values reaching a sink through an
// interface variable assigned earlier are invisible (only the static
// type at the sink call site is inspected); a finite check anywhere
// blesses the field everywhere — the table proves "a guard exists",
// not "every encode path runs it"; reflection-driven encoding of types
// never named at a sink is unseen. Sign-fact numeric summaries
// (summary.go) deliberately do not feed FiniteFields: ±Inf is
// sign-definite, so a provably-positive value can still be +Inf — the
// finiteness lattice is orthogonal to the sign lattice and only an
// explicit IsNaN/IsInf (or a constant initializer) proves it.

// WireFact records where one named type crosses the JSON wire.
type WireFact struct {
	// Marshal and Unmarshal list the sink call sites (sorted,
	// deduplicated) through which the type reaches json.Marshal-family
	// and json.Unmarshal-family calls respectively.
	Marshal   []token.Position
	Unmarshal []token.Position
}

// Direction masks for sink parameters.
const (
	wireMarshal uint8 = 1 << iota
	wireUnmarshal
)

// jsonSinkParams returns the (argIndex → direction) map of an external
// encoding/json sink call, or nil when call is not one.
func jsonSinkParams(info *types.Info, call *ast.CallExpr) map[int]uint8 {
	obj := StaticCallee(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/json" {
		return nil
	}
	switch obj.Name() {
	case "Marshal", "MarshalIndent":
		return map[int]uint8{0: wireMarshal}
	case "Unmarshal":
		return map[int]uint8{1: wireUnmarshal}
	case "Encode":
		if recvNamed(obj) == "Encoder" {
			return map[int]uint8{0: wireMarshal}
		}
	case "Decode":
		if recvNamed(obj) == "Decoder" {
			return map[int]uint8{0: wireUnmarshal}
		}
	}
	return nil
}

// paramIndexOf resolves arg to a flattened parameter index of fn's
// declaration, or -1: a bare parameter identifier, optionally behind &
// or parentheses.
func paramIndexOf(fn *FuncInfo, arg ast.Expr) int {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return -1
	}
	obj := fn.Pkg.Info.Uses[id]
	if obj == nil {
		return -1
	}
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// computeWireTypes builds the WireTypes table: the wrapper fixpoint
// first (which in-set functions forward a parameter into a json sink),
// then a site-collection sweep resolving the static argument types.
func (p *Program) computeWireTypes(loaded map[string]bool) {
	p.WireTypes = map[string]*WireFact{}

	// Ascending fixpoint: sinkParams[fn] = positions whose argument is
	// forwarded (directly or through another wrapper) to a json sink.
	sinkParams := map[string]map[int]uint8{}
	for changed := true; changed; {
		changed = false
		for _, key := range p.Graph.Keys {
			fn := p.Graph.Funcs[key]
			if fn.Decl.Body == nil {
				continue
			}
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sinks := jsonSinkParams(fn.Pkg.Info, call)
				if sinks == nil {
					if callee := StaticCallee(fn.Pkg.Info, call); callee != nil {
						sinks = sinkParams[callee.FullName()]
					}
				}
				for argIdx, mask := range sinks {
					if argIdx >= len(call.Args) || call.Ellipsis.IsValid() {
						continue
					}
					if pi := paramIndexOf(fn, call.Args[argIdx]); pi >= 0 {
						m := sinkParams[key]
						if m == nil {
							m = map[int]uint8{}
							sinkParams[key] = m
						}
						if m[pi]&mask != mask {
							m[pi] |= mask
							changed = true
						}
					}
				}
				return true
			})
		}
	}

	// Site collection: every sink argument's static type, closed over
	// the type structure the encoder would traverse.
	for _, key := range p.Graph.Keys {
		fn := p.Graph.Funcs[key]
		if fn.Decl.Body == nil {
			continue
		}
		info := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sinks := jsonSinkParams(info, call)
			if sinks == nil {
				if callee := StaticCallee(info, call); callee != nil {
					sinks = sinkParams[callee.FullName()]
				}
			}
			for argIdx, mask := range sinks {
				if argIdx >= len(call.Args) {
					continue
				}
				tv, ok := info.Types[call.Args[argIdx]]
				if !ok || tv.Type == nil {
					continue
				}
				pos := fn.Pkg.Fset.Position(call.Args[argIdx].Pos())
				seen := map[string]bool{}
				collectWireNamed(tv.Type, loaded, seen, func(tkey string) {
					f := p.WireTypes[tkey]
					if f == nil {
						f = &WireFact{}
						p.WireTypes[tkey] = f
					}
					if mask&wireMarshal != 0 {
						f.Marshal = append(f.Marshal, pos)
					}
					if mask&wireUnmarshal != 0 {
						f.Unmarshal = append(f.Unmarshal, pos)
					}
				})
			}
			return true
		})
	}
	for _, f := range p.WireTypes {
		f.Marshal = sortDedupePositions(f.Marshal)
		f.Unmarshal = sortDedupePositions(f.Unmarshal)
	}
}

// collectWireNamed walks t the way encoding/json would — pointers,
// slices, arrays, map keys/values, struct fields (exported or
// embedded, minus `json:"-"`) — and emits the canonical key of every
// named type defined in the loaded set it reaches.
func collectWireNamed(t types.Type, loaded, seen map[string]bool, emit func(string)) {
	switch v := t.(type) {
	case *types.Pointer:
		collectWireNamed(v.Elem(), loaded, seen, emit)
	case *types.Slice:
		collectWireNamed(v.Elem(), loaded, seen, emit)
	case *types.Array:
		collectWireNamed(v.Elem(), loaded, seen, emit)
	case *types.Map:
		collectWireNamed(v.Key(), loaded, seen, emit)
		collectWireNamed(v.Elem(), loaded, seen, emit)
	case *types.Named:
		obj := v.Obj()
		if obj.Pkg() == nil {
			return
		}
		key := obj.Pkg().Path() + "." + obj.Name()
		if seen[key] {
			return
		}
		seen[key] = true
		if loaded[obj.Pkg().Path()] {
			emit(key)
		}
		collectWireNamed(v.Underlying(), loaded, seen, emit)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			f := v.Field(i)
			if !f.Exported() && !f.Anonymous() {
				continue // encoding/json silently drops it
			}
			if jsonTagName(v.Tag(i)) == "-" {
				continue
			}
			collectWireNamed(f.Type(), loaded, seen, emit)
		}
	}
}

func sortDedupePositions(ps []token.Position) []token.Position {
	if len(ps) == 0 {
		return nil
	}
	sort.Slice(ps, func(i, j int) bool { return lessPosition(ps[i], ps[j]) })
	out := ps[:1]
	for _, p := range ps[1:] {
		last := out[len(out)-1]
		if p != last {
			out = append(out, p)
		}
	}
	return out
}

func lessPosition(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// --- finite-check closure ---------------------------------------------------

// isFiniteCheckCall reports whether call is math.IsNaN(x) or
// math.IsInf(x, ...) and returns the checked expression.
func isFiniteCheckCall(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	obj := StaticCallee(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math" {
		return nil, false
	}
	if (obj.Name() != "IsNaN" && obj.Name() != "IsInf") || len(call.Args) == 0 {
		return nil, false
	}
	return call.Args[0], true
}

// computeFiniteFields builds FiniteFields: first the fixpoint of
// finite-checking functions (a float parameter fed — bare — into
// math.IsNaN/IsInf or into another checker's checked position), then a
// sweep recording every struct field selector passed at a checked
// position.
func (p *Program) computeFiniteFields(loaded map[string]bool) {
	p.FiniteFields = map[string]bool{}

	// checkers[fn] = parameter indices the function finite-checks.
	checkers := map[string]map[int]bool{}
	for changed := true; changed; {
		changed = false
		for _, key := range p.Graph.Keys {
			fn := p.Graph.Funcs[key]
			if fn.Decl.Body == nil {
				continue
			}
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				note := func(arg ast.Expr) {
					if pi := paramIndexOf(fn, arg); pi >= 0 {
						m := checkers[key]
						if m == nil {
							m = map[int]bool{}
							checkers[key] = m
						}
						if !m[pi] {
							m[pi] = true
							changed = true
						}
					}
				}
				if arg, ok := isFiniteCheckCall(fn.Pkg.Info, call); ok {
					note(arg)
					return true
				}
				callee := StaticCallee(fn.Pkg.Info, call)
				if callee == nil {
					return true
				}
				for pi := range checkers[callee.FullName()] {
					if pi < len(call.Args) && !call.Ellipsis.IsValid() {
						note(call.Args[pi])
					}
				}
				return true
			})
		}
	}

	// Sweep: a field selector at a checked position blesses the field.
	for _, key := range p.Graph.Keys {
		fn := p.Graph.Funcs[key]
		if fn.Decl.Body == nil {
			continue
		}
		info := fn.Pkg.Info
		note := func(arg ast.Expr) {
			if fkey, ok := fieldKeyOf(info, arg, loaded); ok {
				p.FiniteFields[fkey] = true
			}
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if arg, ok := isFiniteCheckCall(info, call); ok {
				note(arg)
				return true
			}
			callee := StaticCallee(info, call)
			if callee == nil {
				return true
			}
			for pi := range checkers[callee.FullName()] {
				if pi < len(call.Args) && !call.Ellipsis.IsValid() {
					note(call.Args[pi])
				}
			}
			return true
		})
	}
}

// fieldKeyOf resolves arg to the canonical "pkg.Type.Field" key of a
// struct field selector on a loaded named type.
func fieldKeyOf(info *types.Info, arg ast.Expr, loaded map[string]bool) (string, bool) {
	sel, ok := ast.Unparen(arg).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !loaded[named.Obj().Pkg().Path()] {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name, true
}
