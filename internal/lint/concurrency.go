package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file computes the concurrency-safety summaries the v5 analyzers
// (sharedguard, ctxflow, atomicmix) consume, extending the
// interprocedural layer of summary.go:
//
//   - CtxParam: which functions receive a context.Context, and at which
//     parameter index — the propagation table ctxflow checks dropped
//     contexts against;
//   - AtomicKeys: every word accessed through a function-style
//     sync/atomic call anywhere in the set, keyed like lock keys —
//     atomicmix's "atomic anywhere means atomic everywhere" domain;
//   - EntryHeld: for every function, the locks held on every observed
//     static path into it, computed as a descending fixpoint over the
//     call graph. This is what lets sharedguard see that an xxxLocked
//     helper's field accesses are in fact guarded by every caller;
//   - spawnReachable: the functions reachable from a goroutine, used by
//     sharedguard as concurrency evidence for package-level state.
//
// Soundness gaps, shared with the rest of the interprocedural layer:
// calls through function values and interface methods contribute no
// entry constraints (any exported, go-spawned, or value-referenced
// function is therefore treated as enterable with no locks held);
// defer bodies and goroutine bodies are not call sites.

// computeCtxParams records, for every function in the graph, the index
// of its first context.Context parameter (receivers excluded).
func (p *Program) computeCtxParams() {
	p.CtxParam = map[string]int{}
	for _, key := range p.Graph.Keys {
		fn := p.Graph.Funcs[key]
		sig, ok := fn.Obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isCtxType(sig.Params().At(i).Type()) {
				p.CtxParam[key] = i
				break
			}
		}
	}
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// atomicAddrFuncs are the sync/atomic package functions whose first
// argument is the address of the shared word.
var atomicAddrFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// atomicAddrArg returns the expression whose address is passed to a
// function-style sync/atomic call (atomic.AddInt64(&x.f, 1) → x.f), or
// nil when call is not one.
func atomicAddrArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	obj := StaticCallee(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if !atomicAddrFuncs[obj.Name()] || len(call.Args) == 0 {
		return nil
	}
	if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return ast.Unparen(u.X)
	}
	return nil
}

// computeAtomicKeys records the canonical key of each word accessed
// through a function-style sync/atomic call anywhere in the set, with
// the first access position. Typed atomics (atomic.Uint64 and friends)
// need no entry: the type system already forbids plain access to them.
func (p *Program) computeAtomicKeys() {
	p.AtomicKeys = map[string]token.Position{}
	for _, key := range p.Graph.Keys {
		fn := p.Graph.Funcs[key]
		if fn.Decl.Body == nil {
			continue
		}
		ctx := &lockCtx{Info: fn.Pkg.Info, Pkg: fn.Pkg.Pkg, Path: fn.Pkg.Path, Enclosing: key}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			target := atomicAddrArg(fn.Pkg.Info, call)
			if target == nil {
				return true
			}
			k := lockKeyOf(ctx, target)
			if _, seen := p.AtomicKeys[k]; !seen {
				p.AtomicKeys[k] = fn.Pkg.Fset.Position(call.Pos())
			}
			return true
		})
	}
}

// entrySite is one observed static call: callee entered from caller
// with held locks acquired on every path to the site.
type entrySite struct {
	caller, callee string
	held           heldSet
}

// computeEntryHeld solves, over the whole call graph,
//
//	entry(f) = ∩ over sites (f called from g with H held) of H ∪ entry(g)
//
// with roots — exported functions, go-spawned functions, functions
// referenced as values, main and init — pinned to the empty set.
// Iteration descends from the optimistic Top (never observed);
// functions still at Top afterwards are unreachable through static
// calls and resolve to the empty set.
func (p *Program) computeEntryHeld() {
	var sites []entrySite
	roots := map[string]bool{}

	for _, key := range p.Graph.Keys {
		fn := p.Graph.Funcs[key]
		if fn.Obj.Exported() || fn.Obj.Name() == "main" || fn.Obj.Name() == "init" {
			roots[key] = true
		}
		if fn.Decl.Body == nil {
			continue
		}
		info := fn.Pkg.Info

		// A function used as a value (stored, passed, registered as a
		// handler) or spawned can be entered from anywhere: root it.
		calleeIdents := map[token.Pos]bool{}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				switch f := ast.Unparen(v.Fun).(type) {
				case *ast.Ident:
					calleeIdents[f.Pos()] = true
				case *ast.SelectorExpr:
					calleeIdents[f.Sel.Pos()] = true
				}
			case *ast.GoStmt:
				if callee := StaticCallee(info, v.Call); callee != nil {
					roots[callee.FullName()] = true
				}
			}
			return true
		})
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id.Pos()] {
				return true
			}
			if obj, ok := info.Uses[id].(*types.Func); ok {
				if _, inSet := p.Graph.Funcs[obj.FullName()]; inSet {
					roots[obj.FullName()] = true
				}
			}
			return true
		})

		// Record held-at-site for every statically resolved call.
		// replayHeld skips defer bodies and go statements, so those do
		// not constrain the callee's entry set.
		ctx := &lockCtx{Info: info, Pkg: fn.Pkg.Pkg, Path: fn.Pkg.Path, Enclosing: key}
		cfg := BuildCFG(fn.Decl)
		res := Forward(cfg, &heldFlow{ctx: ctx})
		for _, b := range cfg.Blocks {
			in, _ := res.In[b].(heldSet)
			if in == nil {
				continue
			}
			held := in.clone()
			for _, n := range b.Nodes {
				replayHeld(ctx, n, held, nil, nil,
					func(callee *types.Func, pos token.Pos) {
						if _, inSet := p.Graph.Funcs[callee.FullName()]; !inSet {
							return
						}
						sites = append(sites, entrySite{caller: key, callee: callee.FullName(), held: held.clone()})
					})
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].callee != sites[j].callee {
			return sites[i].callee < sites[j].callee
		}
		return sites[i].caller < sites[j].caller
	})

	// entry: absent = Top (optimistic). Roots start at the empty set.
	entry := map[string]heldSet{}
	for key := range roots {
		entry[key] = heldSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sites {
			callerEntry, known := entry[s.caller]
			if !known {
				continue // caller itself unreached: no constraint yet
			}
			eff := s.held.clone()
			for k := range callerEntry {
				eff[k] = true
			}
			cur, known := entry[s.callee]
			if !known {
				entry[s.callee] = eff
				changed = true
				continue
			}
			meet := heldSet{}
			for k := range cur {
				if eff[k] {
					meet[k] = true
				}
			}
			if len(meet) != len(cur) {
				entry[s.callee] = meet
				changed = true
			}
		}
	}

	p.EntryHeld = map[string][]string{}
	for key, h := range entry {
		if len(h) > 0 {
			p.EntryHeld[key] = sortedKeys(h)
		}
	}
}

// spawnReachable lazily computes the set of functions reachable from a
// goroutine: named functions spawned by a go statement, named functions
// called inside a go statement's function literal, and everything they
// transitively call.
func (p *Program) spawnReachable() map[string]bool {
	p.spawnOnce.Do(func() {
		roots := map[string]bool{}
		note := func(info *types.Info, call *ast.CallExpr) {
			if callee := StaticCallee(info, call); callee != nil {
				if _, inSet := p.Graph.Funcs[callee.FullName()]; inSet {
					roots[callee.FullName()] = true
				}
			}
		}
		for _, key := range p.Graph.Keys {
			fn := p.Graph.Funcs[key]
			if fn.Decl.Body == nil {
				continue
			}
			info := fn.Pkg.Info
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				note(info, g.Call)
				if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						if call, ok := m.(*ast.CallExpr); ok {
							note(info, call)
						}
						return true
					})
				}
				return true
			})
		}
		reach := map[string]bool{}
		queue := sortedKeys(roots)
		for _, k := range queue {
			reach[k] = true
		}
		for len(queue) > 0 {
			k := queue[0]
			queue = queue[1:]
			for _, callee := range p.Graph.Funcs[k].Callees {
				if !reach[callee] {
					reach[callee] = true
					queue = append(queue, callee)
				}
			}
		}
		p.spawnReach = reach
	})
	return p.spawnReach
}

// isSyncPrimitiveType reports whether t is itself a synchronization
// primitive (a sync.*, sync/atomic.* or context type) or a channel —
// accesses to these are safe by construction or another analyzer's
// business.
func isSyncPrimitiveType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic", "context":
		return true
	}
	return false
}

// isTypedAtomic reports whether t is one of sync/atomic's typed
// wrappers (atomic.Uint64, atomic.Int64, atomic.Bool, ...).
func isTypedAtomic(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}

// walkAccesses visits every variable read and write a single CFG block
// node performs itself, pruning subtrees that execute elsewhere —
// nested function literals (their own analysis segment), range bodies
// and select clauses (their own basic blocks). Classification:
// assignment targets, IncDec operands and address-taking count as
// writes; element writes through an index demote to reads of the base
// (the per-slot ownership idiom — each goroutine writing its own slice
// slot — is exempt by design) except for maps, whose concurrent writes
// corrupt the table.
func walkAccesses(info *types.Info, node ast.Node, visit func(expr ast.Expr, write bool)) {
	var walk func(n ast.Node, write bool)
	walkExpr := func(e ast.Expr, write bool) {
		if e != nil {
			walk(e, write)
		}
	}
	walk = func(n ast.Node, write bool) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // separate segment
		case *ast.SelectStmt:
			return // comms and bodies live in their own blocks
		case *ast.RangeStmt:
			// Only the header executes here; the body has its own blocks.
			walkExpr(v.Key, true)
			walkExpr(v.Value, true)
			walkExpr(v.X, false)
			return
		case *ast.GoStmt:
			// Arguments are evaluated in the spawner; a literal callee
			// body is the spawned segment.
			if _, lit := ast.Unparen(v.Call.Fun).(*ast.FuncLit); !lit {
				walkExpr(v.Call.Fun, false)
			}
			for _, a := range v.Call.Args {
				walkExpr(a, false)
			}
			return
		case *ast.DeferStmt:
			if _, lit := ast.Unparen(v.Call.Fun).(*ast.FuncLit); !lit {
				walkExpr(v.Call.Fun, false)
			}
			for _, a := range v.Call.Args {
				walkExpr(a, false)
			}
			return
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				walkExpr(lhs, true)
			}
			for _, rhs := range v.Rhs {
				walkExpr(rhs, false)
			}
			return
		case *ast.IncDecStmt:
			walkExpr(v.X, true)
			return
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				walkExpr(v.X, true)
				return
			}
		case *ast.IndexExpr:
			baseWrite := false
			if write {
				_, baseWrite = exprType(info, v.X).(*types.Map)
			}
			walkExpr(v.X, baseWrite)
			walkExpr(v.Index, false)
			return
		case *ast.SliceExpr:
			walkExpr(v.X, false)
			walkExpr(v.Low, false)
			walkExpr(v.High, false)
			walkExpr(v.Max, false)
			return
		case *ast.StarExpr:
			walkExpr(v.X, false)
			return
		case *ast.SelectorExpr:
			visit(v, write)
			walkExpr(v.X, false)
			return
		case *ast.Ident:
			visit(v, write)
			return
		case *ast.KeyValueExpr:
			// Struct-literal keys are field names, not accesses.
			walkExpr(v.Value, false)
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m.(type) {
			case *ast.FuncLit, *ast.SelectStmt, *ast.RangeStmt, *ast.GoStmt,
				*ast.DeferStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.UnaryExpr,
				*ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr,
				*ast.SelectorExpr, *ast.Ident, *ast.KeyValueExpr:
				walk(m, write)
				return false
			}
			return true
		})
	}
	walk(node, false)
}

// forEachHeldAccess runs the held-lock dataflow over one function node
// (declaration or literal) and fires visit for every variable access
// with the lock set held at that point; entry locks are added
// throughout (a function releasing its caller's lock mid-body is not
// modeled). Lock operations within a single block node take effect
// after that node's accesses are visited — statement granularity, which
// is exact for the mu.Lock()-on-its-own-line idiom.
func forEachHeldAccess(ctx *lockCtx, node ast.Node, entry []string,
	visit func(e ast.Expr, write bool, held heldSet)) {

	cfg := BuildCFG(node)
	res := Forward(cfg, &heldFlow{ctx: ctx})
	for _, b := range cfg.Blocks {
		in, _ := res.In[b].(heldSet)
		if in == nil {
			continue // unreachable
		}
		held := in.clone()
		for _, k := range entry {
			held[k] = true
		}
		for _, n := range b.Nodes {
			walkAccesses(ctx.Info, n, func(e ast.Expr, write bool) {
				visit(e, write, held)
			})
			replayHeld(ctx, n, held, nil, nil, nil)
		}
	}
}
