package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RetryBudget (DESIGN §7 rule 22) flags retry and poll loops that can
// spin forever: a for-loop that talks to the network (directly or
// through a callee whose summary carries EffNetwork) or busy-polls with
// time.Sleep must carry an attempt bound — an integer comparison in the
// loop condition, or an integer-compared early exit in the body — or a
// ctx.Done()/ctx.Err() escape hatch. Network loops must additionally
// back off between attempts (Sleep, timer, Ticker receive); a refusing
// peer hammered in a tight loop is a self-inflicted outage. This is the
// busy-wait lease-poll shape a dispatcher/worker split grows first.
//
// Deliberate narrowing, stated plainly: loops that block only on
// channel receives or selects are idle, not spinning, and channel
// lifetime is ctxflow's domain — they are not flagged here even though
// they carry the may-block effect. Range loops are likewise excluded
// (range-over-channel termination is ctxflow's). The attempt bound is
// syntactic: a dynamically computed budget (deadline arithmetic, a
// decrementing float) is invisible and reads as unbounded.
var RetryBudget = &Analyzer{
	Name:  "retrybudget",
	Doc:   "require retry/poll loops to carry an attempt bound or ctx exit, and network loops a backoff",
	Scope: underInternalOrCmd,
	Run:   runRetryBudget,
}

func runRetryBudget(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, fn := range funcNodesWithin(fd) {
				checkRetryLoops(pass, fn)
			}
		}
	}
	return nil
}

func checkRetryLoops(pass *Pass, fn ast.Node) {
	body := funcBody(fn)
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are checked as their own nodes
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		rb := loopShape(pass, loop)
		if !rb.network && !rb.sleeps {
			return true
		}
		if !rb.bounded && !rb.ctxExit {
			what := "polls"
			if rb.network {
				what = "retries a network operation"
			}
			pass.Reportf(loop.For, "this loop %s with no attempt bound and no ctx.Done/ctx.Err exit; "+
				"cap the attempts or thread a context through so a dead peer cannot spin it forever", what)
		}
		if rb.network && !rb.backoff {
			pass.Reportf(loop.For, "network loop retries without backoff; "+
				"sleep or wait on a timer/ticker between attempts so a refusing peer is not hammered")
		}
		return true
	})
}

// retryShape is what one loop provably carries.
type retryShape struct {
	network bool // body performs a network operation
	sleeps  bool // body busy-polls via time.Sleep
	bounded bool // integer-compared loop condition or early exit
	ctxExit bool // ctx.Done()/ctx.Err() consulted inside the loop
	backoff bool // Sleep, time.After, or a timer/ticker .C receive
}

func loopShape(pass *Pass, loop *ast.ForStmt) retryShape {
	info := pass.Info
	var rb retryShape

	if loop.Cond != nil && containsIntCompare(info, loop.Cond) {
		rb.bounded = true
	}

	inLoop := func(walk func(n ast.Node) bool) {
		if loop.Cond != nil {
			ast.Inspect(loop.Cond, walk)
		}
		if loop.Post != nil {
			ast.Inspect(loop.Post, walk)
		}
		ast.Inspect(loop.Body, walk)
	}
	inLoop(func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// A literal defined in the loop runs on its own schedule;
			// its calls are not this loop's per-iteration work.
			return false
		case *ast.CallExpr:
			if isNetworkCall(info, v) {
				rb.network = true
			}
			if isCtxCall(info, v) {
				rb.ctxExit = true // interface method: no static callee
			}
			if callee := StaticCallee(info, v); callee != nil {
				if isTimeSleep(callee) {
					rb.sleeps = true
					rb.backoff = true
				}
				if callee.FullName() == "time.After" {
					rb.backoff = true
				}
				if pass.Prog != nil {
					if eff, ok := pass.Prog.Effects[callee.FullName()]; ok && eff&EffNetwork != 0 {
						rb.network = true
					}
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				if sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "C" {
					rb.backoff = true // timer/ticker channel receive
				}
			}
		case *ast.IfStmt:
			if containsIntCompare(info, v.Cond) && containsEarlyExit(v.Body) {
				rb.bounded = true
			}
		}
		return true
	})
	return rb
}

func isTimeSleep(callee *types.Func) bool {
	return callee.FullName() == "time.Sleep"
}

// isCtxCall reports whether call is ctx.Done() or ctx.Err() on a
// context.Context-typed receiver.
func isCtxCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return tv.Type.String() == "context.Context"
}

// containsIntCompare reports whether e contains an ordered comparison
// between integer-typed operands — the syntactic shape of an attempt
// bound.
func containsIntCompare(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		if isIntegerExpr(info, bin.X) && isIntegerExpr(info, bin.Y) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// containsEarlyExit reports whether the block leaves the loop: a break
// (any label) or a return.
func containsEarlyExit(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if v.Tok == token.BREAK {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}
