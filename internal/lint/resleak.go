package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ResLeak (DESIGN §7 rule 21) proves that acquired resources — files,
// tickers, timers, sockets — are released on every path out of the
// acquiring function, using the shared obligation solver (obligation.go)
// with httpguard's defer and ownership-transfer semantics: a bare
// mention of the handle (return, struct field, call argument) hands the
// obligation onward, capture by a function literal does too, and the
// error-paired acquisitions die on the err != nil arm where nothing was
// acquired. Method calls on the handle (Write, Read, Reset) are plain
// uses, not transfers — only the whole value escaping blesses a path.
//
// The transfer-on-argument rule is sharpened interprocedurally: passing
// the handle to a function in the analyzed set transfers the obligation
// only if that function (transitively) releases something it was given
// — the EffReleases effect bit from the call-graph summaries. A callee
// that provably never calls Close/Stop on a parameter cannot be the
// discharge, so the obligation stays with the caller and a leak there
// is still a leak. Unknown and dynamic callees transfer, erring quiet;
// static callees outside the set (stdlib) do not, since fmt.Fprintf or
// io.Copy reading from a file does not close it.
//
// Soundness gaps: inherited from the solver (syntactic transfer,
// pre-acquisition aliases, interface escapes), plus EffReleases being
// per-function not per-parameter — a callee that closes one argument
// blesses every argument it is passed.
var ResLeak = &Analyzer{
	Name:  "resleak",
	Doc:   "prove files, tickers, timers and sockets are released on every path",
	Scope: underInternalOrCmd,
	Run:   runResLeak,
}

// acquireRule describes one acquisition function: the method that
// releases its result and whether the result is (value, error) paired.
type acquireRule struct {
	release   string
	errPaired bool
}

var acquireFuncs = map[string]acquireRule{
	"os.Create":       {"Close", true},
	"os.Open":         {"Close", true},
	"os.OpenFile":     {"Close", true},
	"os.CreateTemp":   {"Close", true},
	"net.Dial":        {"Close", true},
	"net.DialTimeout": {"Close", true},
	"net.Listen":      {"Close", true},
	"time.NewTicker":  {"Stop", false},
	"time.NewTimer":   {"Stop", false},
}

// resleakSpec adapts the acquire/release discipline to the shared
// obligation solver.
func resleakSpec(pass *Pass) *ObSpec {
	info := pass.Info
	spec := &ObSpec{Info: info, EdgeKills: true}
	spec.Gen = func(as *ast.AssignStmt, call *ast.CallExpr) []ObGen {
		callee := StaticCallee(info, call)
		if callee == nil {
			return nil
		}
		rule, ok := acquireFuncs[callee.FullName()]
		if !ok {
			return nil
		}
		g := ObGen{Pos: call.Pos(), Release: rule.release}
		if rule.errPaired {
			if len(as.Lhs) != 2 {
				return nil
			}
			g.Var = lhsVar(info, as.Lhs[0])
			g.ErrVar = lhsVar(info, as.Lhs[1])
		} else {
			if len(as.Lhs) != 1 {
				return nil
			}
			g.Var = lhsVar(info, as.Lhs[0])
		}
		if g.Var == nil {
			return nil
		}
		return []ObGen{g}
	}
	spec.Discharge = func(call *ast.CallExpr, st ObFact) (*types.Var, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		v := obTrackedVar(info, st, sel.X)
		if v == nil || sel.Sel.Name != st[v].Release {
			return nil, false
		}
		return v, false // released: the obligation dies
	}
	// A selector on the handle (f.Write, tk.C) is a use, not an escape;
	// stop the descent so the root is not treated as a bare mention.
	spec.OnSelector = func(sel *ast.SelectorExpr, v *types.Var, st ObFact, rep *ObReporter) {}
	spec.TransferArg = func(call *ast.CallExpr, v *types.Var) bool {
		callee := StaticCallee(info, call)
		if callee == nil {
			return true // dynamic callee: assume it takes ownership
		}
		if pass.Prog != nil {
			if eff, ok := pass.Prog.Effects[callee.FullName()]; ok {
				return eff&EffReleases != 0
			}
		}
		// Static callee outside the analyzed set (stdlib): reading from
		// or writing through the handle does not release it.
		return false
	}
	return spec
}

// lhsVar resolves an assignment target to its variable, nil for blanks
// and non-identifiers.
func lhsVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return identVar(info, id)
}

func runResLeak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, fn := range funcNodesWithin(fd) {
				checkResPaths(pass, fn)
			}
		}
	}
	return nil
}

func checkResPaths(pass *Pass, fn ast.Node) {
	CheckObligations(pass, fn, resleakSpec(pass), &ObReporter{
		Leak: func(inf ObInfo) {
			pass.Reportf(inf.Pos, "resource acquired by this call may not be released on every path out of the function; "+
				"defer its %s right after the error check, or hand it onward explicitly", inf.Release)
		},
		Overwrite: func(genPos token.Pos, prev ObInfo) {
			pass.Reportf(genPos, "this assignment overwrites a handle whose %s may still be pending (from the call at %s); "+
				"release the previous handle before reacquiring", prev.Release, pass.Fset.Position(prev.Pos))
		},
	})
}
