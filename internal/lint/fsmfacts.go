package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file collects the lifecycle transition tables the statefsm
// analyzer checks assignments against. A module-local enum declares its
// legal transitions in one of two equivalent forms:
//
//	//esselint:fsm Pending->Active, Active->Completed
//	type LeaseState uint8
//
// (one or more directive lines on the type declaration), or an
// adjacent package-level transitions map the runtime can also consult:
//
//	var LeaseTransitions = map[LeaseState][]LeaseState{...}
//
// When both are present they must agree — the analyzer reports any
// drift, so the statically-checked table and the runtime table cannot
// diverge. Tables key states by constant value (like exhaustenum, so
// aliased names collapse), and travel cross-package: the table is
// collected from the declaring package's source, while an importing
// package's assignments resolve the enum through export data to the
// same "pkgpath.TypeName" key.
//
// Table-level diagnoses (unknown states, members missing from the
// table, states unreachable from the initial state, directive/map
// drift) are recorded here as Problems and reported by statefsm in the
// declaring package's pass only, so they surface exactly once.

// FSMTable is the declared transition table of one lifecycle enum.
type FSMTable struct {
	// Key is the canonical "pkgpath.TypeName"; PkgPath the declaring
	// package (the one whose statefsm pass reports Problems).
	Key      string
	PkgPath  string
	TypeName string
	// Pos anchors table-level reports: the first directive comment, or
	// the transitions map var when only the map form is present.
	Pos token.Pos
	// Members maps constant value (ExactString) → representative member
	// name, from the declaring package's scope.
	Members map[string]string
	// Trans maps a from-state value to its declared successor values.
	// A member value absent from Trans (or mapped to an empty set) that
	// still appears as a successor is terminal: no write may move the
	// enum out of it.
	Trans map[string]map[string]bool
	// Initial is the value checking reachability starts from: the
	// zero-value member when the enum has one, else every state that
	// appears only as a from-state.
	Initial []string
	// Problems are the table-level findings (bad directive names,
	// unreachable or unmentioned states, directive/map drift).
	Problems []FSMProblem

	// names maps every constant name of the type (aliases included) to
	// its value, for directive resolution.
	names map[string]string
}

// FSMProblem is one table-level finding.
type FSMProblem struct {
	Pos token.Pos
	Msg string
}

// Terminal reports whether the state value has no declared successors.
func (t *FSMTable) Terminal(val string) bool {
	return len(t.Trans[val]) == 0
}

// MemberName renders a state value as its member name for diagnostics.
func (t *FSMTable) MemberName(val string) string {
	if n, ok := t.Members[val]; ok {
		return n
	}
	return val
}

// fsmDirectives extracts the "from->to, from->to" payloads of every
// //esselint:fsm line in the given comment groups, with the position of
// the first one.
func fsmDirectives(groups ...*ast.CommentGroup) ([]string, token.Pos) {
	var payloads []string
	var pos token.Pos
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, "//esselint:")
			if !ok {
				continue
			}
			rest, ok := strings.CutPrefix(text, "fsm")
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			if !pos.IsValid() {
				pos = c.Pos()
			}
			// Allow a trailing note after the arcs: the payload ends at
			// an embedded "//".
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			payloads = append(payloads, strings.TrimSpace(rest))
		}
	}
	return payloads, pos
}

// computeFSMTables scans the loaded source packages for fsm directives
// and transitions map vars and builds Program.FSMTables.
func (p *Program) computeFSMTables(pkgs []*Package) {
	p.FSMTables = map[string]*FSMTable{}
	for _, pkg := range pkgs {
		if pkg.Pkg == nil {
			continue
		}
		// First pass: types carrying //esselint:fsm directives.
		type declared struct {
			named    *types.Named
			payloads []string
			pos      token.Pos
		}
		byName := map[string]*declared{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					payloads, pos := fsmDirectives(gd.Doc, ts.Doc, ts.Comment)
					if len(payloads) == 0 {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok {
						continue
					}
					d := byName[ts.Name.Name]
					if d == nil {
						d = &declared{named: named, pos: pos}
						byName[ts.Name.Name] = d
					}
					d.payloads = append(d.payloads, payloads...)
				}
			}
		}
		// Second pass: package-level map[T][]T transition vars.
		type mapDecl struct {
			named *types.Named
			trans map[string]map[string]bool
			pos   token.Pos
		}
		var mapDecls []mapDecl
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
						continue
					}
					named := transMapElem(pkg, vs.Names[0])
					if named == nil {
						continue
					}
					lit, ok := ast.Unparen(vs.Values[0]).(*ast.CompositeLit)
					if !ok {
						continue
					}
					trans := transMapLiteral(pkg.Info, lit)
					if trans == nil {
						continue
					}
					mapDecls = append(mapDecls, mapDecl{named: named, trans: trans, pos: vs.Pos()})
				}
			}
		}

		for _, d := range byName {
			t := newFSMTable(pkg, d.named, d.pos)
			for _, payload := range d.payloads {
				t.addDirective(payload, d.pos)
			}
			for _, md := range mapDecls {
				if md.named.Obj() == d.named.Obj() {
					t.checkMapDrift(md.trans, md.pos)
				}
			}
			t.finish()
			p.FSMTables[t.Key] = t
		}
		// A transitions map with no directive declares the table alone.
		for _, md := range mapDecls {
			key := md.named.Obj().Pkg().Path() + "." + md.named.Obj().Name()
			if _, ok := p.FSMTables[key]; ok {
				continue
			}
			t := newFSMTable(pkg, md.named, md.pos)
			t.Trans = md.trans
			t.finish()
			p.FSMTables[key] = t
		}
	}
}

func newFSMTable(pkg *Package, named *types.Named, pos token.Pos) *FSMTable {
	obj := named.Obj()
	t := &FSMTable{
		Key:      obj.Pkg().Path() + "." + obj.Name(),
		PkgPath:  obj.Pkg().Path(),
		TypeName: obj.Name(),
		Pos:      pos,
		Members:  map[string]string{},
		Trans:    map[string]map[string]bool{},
		names:    map[string]string{},
	}
	for _, m := range enumMembers(pkg.Pkg, named) {
		t.Members[m.val] = m.name
	}
	// Name→value over every constant of the type, so a directive may
	// use aliased member names too.
	scope := pkg.Pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			t.names[name] = c.Val().ExactString()
		}
	}
	return t
}

// addDirective parses one "A->B, C->D" payload into the table,
// recording unknown member names as problems.
func (t *FSMTable) addDirective(payload string, pos token.Pos) {
	for _, arc := range strings.Split(payload, ",") {
		arc = strings.TrimSpace(arc)
		if arc == "" {
			continue
		}
		from, to, ok := strings.Cut(arc, "->")
		if !ok {
			t.Problems = append(t.Problems, FSMProblem{Pos: pos,
				Msg: fmt.Sprintf("malformed arc %q in //esselint:fsm directive for %s; want From->To", arc, t.TypeName)})
			continue
		}
		fromVal, okF := t.names[strings.TrimSpace(from)]
		toVal, okT := t.names[strings.TrimSpace(to)]
		if !okF || !okT {
			bad := strings.TrimSpace(from)
			if okF {
				bad = strings.TrimSpace(to)
			}
			t.Problems = append(t.Problems, FSMProblem{Pos: pos,
				Msg: fmt.Sprintf("unknown state %q in //esselint:fsm directive for %s; declared members: %s",
					bad, t.TypeName, strings.Join(t.memberNames(), ", "))})
			continue
		}
		if t.Trans[fromVal] == nil {
			t.Trans[fromVal] = map[string]bool{}
		}
		t.Trans[fromVal][toVal] = true
	}
}

// checkMapDrift compares the directive-declared table against the
// runtime transitions map and records any disagreement.
func (t *FSMTable) checkMapDrift(mapTrans map[string]map[string]bool, pos token.Pos) {
	var diffs []string
	arcs := func(trans map[string]map[string]bool) map[string]bool {
		set := map[string]bool{}
		for from, tos := range trans {
			for to := range tos {
				set[t.MemberName(from)+"->"+t.MemberName(to)] = true
			}
		}
		return set
	}
	dir, m := arcs(t.Trans), arcs(mapTrans)
	for a := range dir {
		if !m[a] {
			diffs = append(diffs, a+" (directive only)")
		}
	}
	for a := range m {
		if !dir[a] {
			diffs = append(diffs, a+" (map only)")
		}
	}
	if len(diffs) > 0 {
		sort.Strings(diffs)
		t.Problems = append(t.Problems, FSMProblem{Pos: pos,
			Msg: fmt.Sprintf("transitions map for %s disagrees with its //esselint:fsm directive: %s",
				t.TypeName, strings.Join(diffs, ", "))})
	}
}

// finish runs the table-level checks: every member mentioned, every
// declared state reachable from the initial state(s).
func (t *FSMTable) finish() {
	mentioned := map[string]bool{}
	isTo := map[string]bool{}
	for from, tos := range t.Trans {
		mentioned[from] = true
		for to := range tos {
			mentioned[to] = true
			isTo[to] = true
		}
	}
	for _, val := range sortedFSMVals(t.Members) {
		if !mentioned[val] {
			t.Problems = append(t.Problems, FSMProblem{Pos: t.Pos,
				Msg: fmt.Sprintf("fsm table for %s never mentions member %s; wire every lifecycle state into the table (or drop the state)",
					t.TypeName, t.Members[val])})
		}
	}
	// Initial: the zero-value member when present, else the pure
	// sources (from-states that are never successors).
	if _, ok := t.Members["0"]; ok && mentioned["0"] {
		t.Initial = []string{"0"}
	} else {
		for from := range t.Trans {
			if !isTo[from] {
				t.Initial = append(t.Initial, from)
			}
		}
		sort.Strings(t.Initial)
	}
	if len(t.Initial) == 0 {
		return // a pure cycle: reachability has no anchor, skip the check
	}
	reach := map[string]bool{}
	queue := append([]string(nil), t.Initial...)
	for _, s := range queue {
		reach[s] = true
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, to := range sortedKeys(t.Trans[s]) {
			if !reach[to] {
				reach[to] = true
				queue = append(queue, to)
			}
		}
	}
	for _, val := range sortedFSMVals(t.Members) {
		if mentioned[val] && !reach[val] {
			t.Problems = append(t.Problems, FSMProblem{Pos: t.Pos,
				Msg: fmt.Sprintf("state %s in the fsm table for %s is unreachable from the initial state %s",
					t.Members[val], t.TypeName, t.MemberName(t.Initial[0]))})
		}
	}
}

func (t *FSMTable) memberNames() []string {
	names := make([]string, 0, len(t.Members))
	for _, n := range t.Members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedFSMVals(members map[string]string) []string {
	vals := make([]string, 0, len(members))
	for v := range members {
		vals = append(vals, v)
	}
	// Sort by member name so problem order is deterministic and reads
	// in declaration-ish order rather than value-string order.
	sort.Slice(vals, func(i, j int) bool { return members[vals[i]] < members[vals[j]] })
	return vals
}

// transMapElem reports whether the declared variable is a package-level
// map[T][]T for a local enum T, returning T.
func transMapElem(pkg *Package, name *ast.Ident) *types.Named {
	obj, ok := pkg.Info.Defs[name].(*types.Var)
	if !ok || obj.Parent() != pkg.Pkg.Scope() {
		return nil
	}
	m, ok := obj.Type().Underlying().(*types.Map)
	if !ok {
		return nil
	}
	keyNamed, ok := m.Key().(*types.Named)
	if !ok || keyNamed.Obj().Pkg() == nil || keyNamed.Obj().Pkg().Path() != pkg.Path {
		return nil
	}
	slice, ok := m.Elem().Underlying().(*types.Slice)
	if !ok || !types.Identical(slice.Elem(), keyNamed) {
		return nil
	}
	basic, ok := keyNamed.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil
	}
	return keyNamed
}

// transMapLiteral reads a map[T][]T composite literal into a value-
// keyed transition table; nil when any key or element is non-constant.
func transMapLiteral(info *types.Info, lit *ast.CompositeLit) map[string]map[string]bool {
	trans := map[string]map[string]bool{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil
		}
		kt, ok := info.Types[kv.Key]
		if !ok || kt.Value == nil {
			return nil
		}
		from := kt.Value.ExactString()
		inner, ok := ast.Unparen(kv.Value).(*ast.CompositeLit)
		if !ok {
			return nil
		}
		if trans[from] == nil {
			trans[from] = map[string]bool{}
		}
		for _, e := range inner.Elts {
			et, ok := info.Types[e]
			if !ok || et.Value == nil {
				return nil
			}
			trans[from][et.Value.ExactString()] = true
		}
	}
	return trans
}
