package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleM = `
# esse/internal/linalg
internal/linalg/dense.go:30:14: make([]float64, r*c) escapes to heap
internal/linalg/dense.go:30:2: moved to heap: data
internal/linalg/ops.go:95:6: func literal escapes to heap
internal/linalg/ops.go:120:13: make([]float64, a.Rows) does not escape
internal/linalg/qr.go:23:11: can inline Norm2
internal/linalg/qr.go:9:2: leaking param: a
not a diagnostic line
internal/linalg/bad.go:xx:1: unparsable line number
`

func TestParseEscapeFacts(t *testing.T) {
	f := ParseEscapeFacts(sampleM, "/mod")

	heapKey := filepath.Join("/mod", "internal/linalg/dense.go") + ":30"
	msgs, ok := f.Heap[heapKey]
	if !ok {
		t.Fatalf("missing heap fact for %s; have %v", heapKey, f.Heap)
	}
	// Both the escape and the move on line 30 collapse onto one key.
	if len(msgs) != 2 {
		t.Errorf("heap messages at %s = %v, want 2", heapKey, msgs)
	}
	litKey := filepath.Join("/mod", "internal/linalg/ops.go") + ":95"
	if _, ok := f.Heap[litKey]; !ok {
		t.Errorf("missing func-literal heap fact at %s", litKey)
	}
	stackKey := filepath.Join("/mod", "internal/linalg/ops.go") + ":120"
	if !f.Stack[stackKey] {
		t.Errorf("missing stack fact at %s", stackKey)
	}
	// Inlining chatter, leak notes and garbage lines must not become
	// facts.
	if f.HeapCount() != 2 || f.StackCount() != 1 {
		t.Errorf("fact counts = %d heap, %d stack, want 2 and 1", f.HeapCount(), f.StackCount())
	}
}

func mkDiag(analyzer, file string, line int) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 5},
		Analyzer: analyzer,
		Message:  "synthetic finding",
	}
}

func TestCrossCheck(t *testing.T) {
	facts := &EscapeFacts{
		Heap:  map[string][]string{"/mod/a.go:10": {"make([]T, n) escapes to heap"}},
		Stack: map[string]bool{"/mod/a.go:20": true},
	}
	diags := []Diagnostic{
		mkDiag("hotalloc", "/mod/a.go", 10), // heap fact → confirmed
		mkDiag("boxing", "/mod/a.go", 20),   // stack fact → downgraded
		mkDiag("hotalloc", "/mod/a.go", 30), // no fact → untouched
		mkDiag("divguard", "/mod/a.go", 10), // wrong analyzer → untouched
	}
	st := CrossCheck(diags, facts)
	if st.Confirmed != 1 || st.Downgraded != 1 {
		t.Fatalf("stats = %+v, want 1 confirmed, 1 downgraded", st)
	}
	if !strings.Contains(diags[0].Message, "[compiler-confirmed: make([]T, n) escapes to heap]") {
		t.Errorf("heap-fact diag not annotated: %q", diags[0].Message)
	}
	if !diags[1].Suppressed {
		t.Error("stack-fact diag not downgraded to suppressed")
	}
	if diags[2].Suppressed || strings.Contains(diags[2].Message, "compiler") {
		t.Errorf("fact-free diag modified: %+v", diags[2])
	}
	if diags[3].Suppressed || strings.Contains(diags[3].Message, "compiler") {
		t.Errorf("non-allocation analyzer diag modified: %+v", diags[3])
	}
	// Already-suppressed findings stay out of the tallies.
	sup := mkDiag("hotalloc", "/mod/a.go", 10)
	sup.Suppressed = true
	if st := CrossCheck([]Diagnostic{sup}, facts); st.Confirmed != 0 {
		t.Errorf("suppressed diag counted: %+v", st)
	}
}

// TestLoadEscapeFacts compiles this package with -gcflags=-m and
// expects the parser to find real verdicts — the end-to-end contract
// of the -escapes flag.
func TestLoadEscapeFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the package; skipped in -short")
	}
	facts, err := LoadEscapeFacts("", ".")
	if err != nil {
		t.Fatalf("LoadEscapeFacts: %v", err)
	}
	if facts.HeapCount() == 0 {
		t.Error("no heap facts parsed from this package's own build")
	}
	for key := range facts.Heap {
		if !filepath.IsAbs(strings.SplitN(key, ".go:", 2)[0] + ".go") {
			t.Fatalf("non-absolute fact key %q", key)
		}
	}
}

// TestEscapeCacheKey exercises the content-keyed cache machinery on a
// synthetic module root: the key is stable for an unchanged tree,
// changes when a hot-package source changes, and saving a new entry
// prunes the superseded one.
func TestEscapeCacheKey(t *testing.T) {
	root := t.TempDir()
	cache := t.TempDir()
	t.Setenv("ESSELINT_CACHE_DIR", cache)
	write := func(rel, content string) {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module demo\n")
	write("go.sum", "")
	write("internal/linalg/a.go", "package linalg\n")

	dir1, key1 := escapeCachePath(root, []string{"./..."})
	if dir1 != cache || key1 == "" {
		t.Fatalf("cache not enabled: dir=%q key=%q", dir1, key1)
	}
	if _, again := escapeCachePath(root, []string{"./..."}); again != key1 {
		t.Fatalf("key not stable: %q vs %q", key1, again)
	}
	if _, other := escapeCachePath(root, []string{"./cmd"}); other == key1 {
		t.Fatal("key ignores the build patterns")
	}
	write("internal/linalg/a.go", "package linalg // changed\n")
	_, key2 := escapeCachePath(root, []string{"./..."})
	if key2 == key1 {
		t.Fatal("key ignores hot-package source changes")
	}

	if err := saveEscapeCache(cache, key1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := saveEscapeCache(cache, key2, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(cache, key1)); !os.IsNotExist(err) {
		t.Errorf("superseded entry %s not pruned: %v", key1, err)
	}
	b, err := os.ReadFile(filepath.Join(cache, key2))
	if err != nil || string(b) != "new" {
		t.Fatalf("current entry unreadable: %q %v", b, err)
	}

	// Outside a module (no go.mod) caching must stay off.
	if dir, key := escapeCachePath(t.TempDir(), nil); dir != "" || key != "" {
		t.Fatalf("caching enabled outside a module: %q %q", dir, key)
	}
	t.Setenv("ESSELINT_CACHE_DIR", "off")
	if dir, key := escapeCachePath(root, nil); dir != "" || key != "" {
		t.Fatalf("ESSELINT_CACHE_DIR=off not honored: %q %q", dir, key)
	}
}

// TestLoadEscapeFactsCacheHit runs the real -escapes pipeline twice
// from the module root: the first call compiles and populates the
// cache, the second replays it and must report identical fact tables.
func TestLoadEscapeFactsCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the package; skipped in -short")
	}
	t.Setenv("ESSELINT_CACHE_DIR", t.TempDir())
	cold, err := LoadEscapeFacts("../..", "./internal/lint")
	if err != nil {
		t.Fatalf("cold load: %v", err)
	}
	if cold.Cached {
		t.Fatal("first load claims a cache hit into an empty cache")
	}
	warm, err := LoadEscapeFacts("../..", "./internal/lint")
	if err != nil {
		t.Fatalf("warm load: %v", err)
	}
	if !warm.Cached {
		t.Fatal("second load missed the cache")
	}
	if warm.HeapCount() != cold.HeapCount() || warm.StackCount() != cold.StackCount() {
		t.Fatalf("replayed facts differ: heap %d vs %d, stack %d vs %d",
			warm.HeapCount(), cold.HeapCount(), warm.StackCount(), cold.StackCount())
	}
}
