package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

const sampleM = `
# esse/internal/linalg
internal/linalg/dense.go:30:14: make([]float64, r*c) escapes to heap
internal/linalg/dense.go:30:2: moved to heap: data
internal/linalg/ops.go:95:6: func literal escapes to heap
internal/linalg/ops.go:120:13: make([]float64, a.Rows) does not escape
internal/linalg/qr.go:23:11: can inline Norm2
internal/linalg/qr.go:9:2: leaking param: a
not a diagnostic line
internal/linalg/bad.go:xx:1: unparsable line number
`

func TestParseEscapeFacts(t *testing.T) {
	f := ParseEscapeFacts(sampleM, "/mod")

	heapKey := filepath.Join("/mod", "internal/linalg/dense.go") + ":30"
	msgs, ok := f.Heap[heapKey]
	if !ok {
		t.Fatalf("missing heap fact for %s; have %v", heapKey, f.Heap)
	}
	// Both the escape and the move on line 30 collapse onto one key.
	if len(msgs) != 2 {
		t.Errorf("heap messages at %s = %v, want 2", heapKey, msgs)
	}
	litKey := filepath.Join("/mod", "internal/linalg/ops.go") + ":95"
	if _, ok := f.Heap[litKey]; !ok {
		t.Errorf("missing func-literal heap fact at %s", litKey)
	}
	stackKey := filepath.Join("/mod", "internal/linalg/ops.go") + ":120"
	if !f.Stack[stackKey] {
		t.Errorf("missing stack fact at %s", stackKey)
	}
	// Inlining chatter, leak notes and garbage lines must not become
	// facts.
	if f.HeapCount() != 2 || f.StackCount() != 1 {
		t.Errorf("fact counts = %d heap, %d stack, want 2 and 1", f.HeapCount(), f.StackCount())
	}
}

func mkDiag(analyzer, file string, line int) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 5},
		Analyzer: analyzer,
		Message:  "synthetic finding",
	}
}

func TestCrossCheck(t *testing.T) {
	facts := &EscapeFacts{
		Heap:  map[string][]string{"/mod/a.go:10": {"make([]T, n) escapes to heap"}},
		Stack: map[string]bool{"/mod/a.go:20": true},
	}
	diags := []Diagnostic{
		mkDiag("hotalloc", "/mod/a.go", 10), // heap fact → confirmed
		mkDiag("boxing", "/mod/a.go", 20),   // stack fact → downgraded
		mkDiag("hotalloc", "/mod/a.go", 30), // no fact → untouched
		mkDiag("divguard", "/mod/a.go", 10), // wrong analyzer → untouched
	}
	st := CrossCheck(diags, facts)
	if st.Confirmed != 1 || st.Downgraded != 1 {
		t.Fatalf("stats = %+v, want 1 confirmed, 1 downgraded", st)
	}
	if !strings.Contains(diags[0].Message, "[compiler-confirmed: make([]T, n) escapes to heap]") {
		t.Errorf("heap-fact diag not annotated: %q", diags[0].Message)
	}
	if !diags[1].Suppressed {
		t.Error("stack-fact diag not downgraded to suppressed")
	}
	if diags[2].Suppressed || strings.Contains(diags[2].Message, "compiler") {
		t.Errorf("fact-free diag modified: %+v", diags[2])
	}
	if diags[3].Suppressed || strings.Contains(diags[3].Message, "compiler") {
		t.Errorf("non-allocation analyzer diag modified: %+v", diags[3])
	}
	// Already-suppressed findings stay out of the tallies.
	sup := mkDiag("hotalloc", "/mod/a.go", 10)
	sup.Suppressed = true
	if st := CrossCheck([]Diagnostic{sup}, facts); st.Confirmed != 0 {
		t.Errorf("suppressed diag counted: %+v", st)
	}
}

// TestLoadEscapeFacts compiles this package with -gcflags=-m and
// expects the parser to find real verdicts — the end-to-end contract
// of the -escapes flag.
func TestLoadEscapeFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the package; skipped in -short")
	}
	facts, err := LoadEscapeFacts("", ".")
	if err != nil {
		t.Fatalf("LoadEscapeFacts: %v", err)
	}
	if facts.HeapCount() == 0 {
		t.Error("no heap facts parsed from this package's own build")
	}
	for key := range facts.Heap {
		if !filepath.IsAbs(strings.SplitN(key, ".go:", 2)[0] + ".go") {
			t.Fatalf("non-absolute fact key %q", key)
		}
	}
}
