package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// SlogKV enforces the structured-logging key/value convention at every
// call site of a kv-taking function. internal/telemetry's Logger (and
// log/slog itself) accept attributes as a trailing `...any` variadic of
// alternating key/value pairs; a malformed list degrades silently at
// runtime into !BADKEY attributes. This analyzer moves that failure to
// compile time:
//
//   - key/value arguments must come in pairs (even count, where one
//     slog.Attr value consumes a single slot);
//   - every key must be a compile-time string constant, so a record's
//     attribute set is fixed at build time and greppable;
//   - keys must be unique within one call, since duplicate keys make
//     one of the two values unreachable in most handlers.
//
// Seed signatures are recognized structurally: any in-module function
// whose trailing variadic is `kv ...any`, plus everything in log/slog
// with a trailing ...any variadic. Wrappers are followed through the
// call graph exactly as metriclabels does for label variadics: a
// function splatting its own trailing ...any variadic into a kv-taking
// callee is itself kv-taking, and its call sites are checked instead.
var SlogKV = &Analyzer{
	Name: "slogkv",
	Doc: "structured-logging kv arguments must be even-count, compile-time-constant, duplicate-free keys; " +
		"wrappers forwarding their own kv variadic are followed through the call graph",
	Scope: underInternalOrCmd,
	Run:   runSlogKV,
}

// trailingAnyVariadic returns the parameter index of fn's trailing
// variadic ...any parameter, or -1 when fn has no such parameter.
func trailingAnyVariadic(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() == 0 {
		return -1
	}
	last := sig.Params().Len() - 1
	sl, ok := sig.Params().At(last).Type().(*types.Slice)
	if !ok {
		return -1
	}
	iface, ok := sl.Elem().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return -1
	}
	return last
}

// isSeedKVFunc reports whether fn takes kv attributes directly: a
// trailing ...any variadic that is either named exactly "kv" (the
// telemetry.Logger convention, recognizable from export data in any
// importing package) or declared in log/slog itself, whose variadic
// functions all share the alternating-pair contract.
func isSeedKVFunc(fn *types.Func) bool {
	idx := trailingAnyVariadic(fn)
	if idx < 0 {
		return false
	}
	if fn.Type().(*types.Signature).Params().At(idx).Name() == "kv" {
		return true
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "log/slog"
}

// slogKVTakers computes (once per Program) the set of in-set functions
// whose trailing ...any variadic is a kv parameter: seed signatures
// plus an ascending fixpoint over wrappers that splat their own
// trailing ...any variadic into a kv-taking callee.
func (p *Program) slogKVTakers() map[string]bool {
	p.kvOnce.Do(func() {
		set := map[string]bool{}
		for _, key := range p.Graph.Keys {
			info := p.Graph.Funcs[key]
			if info.Obj != nil && isSeedKVFunc(info.Obj) {
				set[key] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, key := range p.Graph.Keys {
				if set[key] {
					continue
				}
				info := p.Graph.Funcs[key]
				if info.Obj == nil || info.Decl == nil || info.Decl.Body == nil {
					continue
				}
				if trailingAnyVariadic(info.Obj) < 0 {
					continue
				}
				if forwardsKVVariadic(info, set) {
					set[key] = true
					changed = true
				}
			}
		}
		p.kvTakers = set
	})
	return p.kvTakers
}

// forwardsKVVariadic reports whether info's body splats its own
// trailing variadic parameter into the kv position of a kv-taking
// callee (seed signature or already in set).
func forwardsKVVariadic(info *FuncInfo, set map[string]bool) bool {
	obj := finalVariadicParamObj(info.Pkg.Info, info.Decl)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !call.Ellipsis.IsValid() || len(call.Args) == 0 {
			return true
		}
		callee := StaticCallee(info.Pkg.Info, call)
		if callee == nil || (!isSeedKVFunc(callee) && !set[callee.FullName()]) {
			return true
		}
		if id, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.Ident); ok &&
			info.Pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func runSlogKV(pass *Pass) error {
	var takers map[string]bool
	if pass.Prog != nil {
		takers = pass.Prog.slogKVTakers()
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ownVariadic := finalVariadicParamObj(pass.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := StaticCallee(pass.Info, call)
				if callee == nil || (!isSeedKVFunc(callee) && !takers[callee.FullName()]) {
					return true
				}
				start := trailingAnyVariadic(callee)
				if start < 0 || start >= len(call.Args) {
					return true
				}
				checkKVCall(pass, call, callee, start, ownVariadic)
				return true
			})
		}
	}
	return nil
}

// isSlogAttr reports whether t is log/slog.Attr, which consumes a
// single kv slot instead of a key/value pair.
func isSlogAttr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Attr" && obj.Pkg() != nil && obj.Pkg().Path() == "log/slog"
}

// checkKVCall validates the kv arguments of one call to a kv-taking
// function whose variadic begins at parameter index start.
func checkKVCall(pass *Pass, call *ast.CallExpr, callee *types.Func, start int, ownVariadic types.Object) {
	name := callee.Name()
	if call.Ellipsis.IsValid() {
		arg := ast.Unparen(call.Args[len(call.Args)-1])
		if id, ok := arg.(*ast.Ident); ok && ownVariadic != nil && pass.Info.Uses[id] == ownVariadic {
			return // forwarding this function's own kv parameter
		}
		pass.Reportf(call.Ellipsis, "%s: kv arguments splatted from a slice cannot be statically validated; "+
			"pass constant key/value pairs or forward a trailing ...any kv parameter", name)
		return
	}
	kvs := call.Args[start:]
	seen := map[string]bool{}
	for i := 0; i < len(kvs); {
		arg := kvs[i]
		if tv, ok := pass.Info.Types[arg]; ok && isSlogAttr(tv.Type) {
			i++ // one slog.Attr is a complete attribute
			continue
		}
		if i == len(kvs)-1 {
			pass.Reportf(arg.Pos(), "%s: odd number of key/value arguments; key at position %d has no value", name, i)
			return
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(arg.Pos(), "%s: kv key must be a compile-time string constant", name)
			i += 2
			continue
		}
		k := constant.StringVal(tv.Value)
		if seen[k] {
			pass.Reportf(arg.Pos(), "%s: duplicate kv key %q", name, k)
		}
		seen[k] = true
		i += 2
	}
}
