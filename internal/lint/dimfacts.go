package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the symbolic numeric-facts layer shared by the
// shapecheck and unitdim analyzers (DESIGN §7 rules 23-24):
//
//   - a linear unit algebra over //esselint:unit directives, collected
//     into a declaring-package fact table the same way fsmfacts.go
//     collects lifecycle tables — malformed directives become Problems
//     reported once, in the declaring package's pass;
//   - the per-function symbolic shape summaries (Program.DimSummaries)
//     shapecheck computes bottom-up over the call graph: result shapes
//     of *linalg.Dense / []float64 functions as terms over their
//     parameters' dimensions, plus the conformance requirements the
//     body imposes on those parameters.
//
// Units store exponents doubled so half-integer powers stay integral:
// the stochastic forcings of the ocean model live in m/s^1.5 and
// degC/s^0.5, and math.Sqrt must halve exponents exactly or give up.

// --- unit algebra ----------------------------------------------------------

// Unit is a physical unit: base dimension name → exponent, stored
// doubled (m/s is {m: 2, s: -2}; m/s^1.5 is {m: 2, s: -3}). The empty
// (or nil) map is dimensionless.
type Unit map[string]int

// ParseUnit parses a unit expression: products and quotients of
// dimension names with optional half-integer powers, e.g. "m", "m/s",
// "m^2/s", "kg/m^3", "degC/s^0.5", "1/s", "1".
func ParseUnit(s string) (Unit, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty unit expression")
	}
	u := Unit{}
	for i, part := range strings.Split(s, "/") {
		sign := 1
		if i > 0 {
			sign = -1
		}
		for _, factor := range strings.Split(part, "*") {
			factor = strings.TrimSpace(factor)
			if factor == "1" {
				continue // multiplicative identity
			}
			name, expStr, hasExp := strings.Cut(factor, "^")
			name = strings.TrimSpace(name)
			if !validDimName(name) {
				return nil, fmt.Errorf("bad dimension %q in unit %q", name, s)
			}
			exp2 := 2
			if hasExp {
				e, err := parseHalfExp(strings.TrimSpace(expStr))
				if err != nil {
					return nil, fmt.Errorf("bad exponent in %q: %v", factor, err)
				}
				exp2 = e
			}
			u[name] += sign * exp2
		}
	}
	u.normalize()
	return u, nil
}

// parseHalfExp parses a decimal exponent with an optional ".5" half
// into the doubled representation: "2" → 4, "1.5" → 3, "-0.5" → -1.
func parseHalfExp(s string) (int, error) {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	whole, frac, hasFrac := strings.Cut(s, ".")
	half := 0
	if hasFrac {
		switch frac {
		case "5":
			half = 1
		case "0":
		default:
			return 0, fmt.Errorf("only .0 and .5 fractions are representable")
		}
	}
	n, err := strconv.Atoi(whole)
	if err != nil || n < 0 || n > 1<<16 {
		return 0, fmt.Errorf("bad integer part %q", whole)
	}
	v := 2*n + half
	if neg {
		v = -v
	}
	return v, nil
}

func validDimName(s string) bool {
	if s == "" || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
		if i == 0 && !letter {
			return false
		}
		if !letter && !('0' <= c && c <= '9') {
			return false
		}
	}
	return true
}

func (u Unit) normalize() {
	for d, e := range u {
		if e == 0 {
			delete(u, d)
		}
	}
}

// String renders the canonical form: dimensions sorted, positive
// exponents joined with "*", negative ones as "/" denominators, and
// "1" for the dimensionless unit (or a purely negative numerator).
func (u Unit) String() string {
	if len(u) == 0 {
		return "1"
	}
	dims := make([]string, 0, len(u))
	for d := range u {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	var num, den []string
	for _, d := range dims {
		switch e := u[d]; {
		case e > 0:
			num = append(num, dimFactor(d, e))
		case e < 0:
			den = append(den, dimFactor(d, -e))
		}
	}
	s := "1"
	if len(num) > 0 {
		s = strings.Join(num, "*")
	}
	for _, d := range den {
		s += "/" + d
	}
	return s
}

func dimFactor(d string, exp2 int) string {
	if exp2 == 2 {
		return d
	}
	s := strconv.Itoa(exp2 / 2)
	if exp2%2 == 1 {
		s += ".5"
	}
	return d + "^" + s
}

// Equal reports whether two units are the same physical dimension.
func (u Unit) Equal(v Unit) bool {
	if len(u) != len(v) {
		return false
	}
	for d, e := range u {
		if v[d] != e {
			return false
		}
	}
	return true
}

func (u Unit) clone() Unit {
	c := make(Unit, len(u))
	for d, e := range u {
		c[d] = e
	}
	return c
}

// Mul returns u·v.
func (u Unit) Mul(v Unit) Unit {
	out := u.clone()
	for d, e := range v {
		out[d] += e
	}
	out.normalize()
	return out
}

// Div returns u/v.
func (u Unit) Div(v Unit) Unit {
	out := u.clone()
	for d, e := range v {
		out[d] -= e
	}
	out.normalize()
	return out
}

// Sqrt halves every exponent. It fails when some doubled exponent is
// odd — a quarter-power is not representable, so callers must treat
// the result as unknown rather than invent a dimension.
func (u Unit) Sqrt() (Unit, bool) {
	out := make(Unit, len(u))
	for d, e := range u {
		if e%2 != 0 {
			return nil, false
		}
		out[d] = e / 2
	}
	return out, true
}

// --- the //esselint:unit fact table ----------------------------------------

// UnitFuncSig holds one function's //esselint:unit annotations:
// per-parameter units (nil entries are unannotated) and the result
// unit, declared on the FuncDecl as "name=expr" fields:
//
//	//esselint:unit t=degC s=psu return=kg/m^3
//	func Density(t, s float64) float64
type UnitFuncSig struct {
	Params []Unit
	Result Unit
	Pos    token.Pos
}

// UnitProblem is one malformed-directive finding, reported by unitdim
// in the declaring package's pass only.
type UnitProblem struct {
	Pos token.Pos
	Msg string
}

// UnitTable is the program-wide //esselint:unit fact table.
type UnitTable struct {
	// Fields maps "pkgpath.Type.Field" to the field's declared unit.
	Fields map[string]Unit
	// Objects maps "pkgpath.Name" to a package-level const or var unit.
	Objects map[string]Unit
	// Funcs maps types.Func.FullName() to the annotated signature.
	Funcs map[string]*UnitFuncSig
	// Problems keys malformed directives by declaring package path.
	Problems map[string][]UnitProblem
}

// Facts counts the annotations the table carries (-stats).
func (t *UnitTable) Facts() int {
	if t == nil {
		return 0
	}
	return len(t.Fields) + len(t.Objects) + len(t.Funcs)
}

// unitDirectives extracts the payloads of //esselint:unit lines from
// the comment groups, with the position of the first one. A trailing
// note after an embedded "//" is stripped, like fsm directives.
func unitDirectives(groups ...*ast.CommentGroup) ([]string, token.Pos) {
	var payloads []string
	var pos token.Pos
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, "//esselint:")
			if !ok {
				continue
			}
			rest, ok := strings.CutPrefix(text, "unit")
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			if !pos.IsValid() {
				pos = c.Pos()
			}
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			payloads = append(payloads, strings.TrimSpace(rest))
		}
	}
	return payloads, pos
}

// computeUnitTable scans the loaded source packages for unit
// directives on struct fields, const/var specs and function
// declarations, and builds Program.Units.
func (p *Program) computeUnitTable(pkgs []*Package) {
	t := &UnitTable{
		Fields:   map[string]Unit{},
		Objects:  map[string]Unit{},
		Funcs:    map[string]*UnitFuncSig{},
		Problems: map[string][]UnitProblem{},
	}
	p.Units = t
	problem := func(pkg *Package, pos token.Pos, format string, args ...any) {
		t.Problems[pkg.Path] = append(t.Problems[pkg.Path],
			UnitProblem{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
	for _, pkg := range pkgs {
		if pkg.Pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					switch d.Tok {
					case token.TYPE:
						for _, spec := range d.Specs {
							ts, ok := spec.(*ast.TypeSpec)
							if !ok {
								continue
							}
							st, ok := ts.Type.(*ast.StructType)
							if !ok {
								continue
							}
							collectFieldUnits(pkg, t, ts.Name.Name, st, problem)
						}
					case token.CONST, token.VAR:
						for _, spec := range d.Specs {
							vs, ok := spec.(*ast.ValueSpec)
							if !ok {
								continue
							}
							groups := []*ast.CommentGroup{vs.Doc, vs.Comment}
							if len(d.Specs) == 1 {
								groups = append(groups, d.Doc)
							}
							payloads, pos := unitDirectives(groups...)
							if len(payloads) == 0 {
								continue
							}
							u, ok := parseSingleUnit(pkg, payloads, pos, problem)
							if !ok {
								continue
							}
							for _, name := range vs.Names {
								if name.Name == "_" {
									continue
								}
								t.Objects[pkg.Path+"."+name.Name] = u
							}
						}
					}
				case *ast.FuncDecl:
					payloads, pos := unitDirectives(d.Doc)
					if len(payloads) == 0 {
						continue
					}
					collectFuncUnits(pkg, t, d, payloads, pos, problem)
				}
			}
		}
	}
}

func collectFieldUnits(pkg *Package, t *UnitTable, typeName string, st *ast.StructType,
	problem func(*Package, token.Pos, string, ...any)) {
	for _, field := range st.Fields.List {
		payloads, pos := unitDirectives(field.Doc, field.Comment)
		if len(payloads) == 0 {
			continue
		}
		u, ok := parseSingleUnit(pkg, payloads, pos, problem)
		if !ok {
			continue
		}
		for _, name := range field.Names {
			t.Fields[pkg.Path+"."+typeName+"."+name.Name] = u
		}
	}
}

// parseSingleUnit parses the one-expression form of a unit directive
// (fields, consts, vars); multiple directive lines on one declaration
// are a mistake worth naming.
func parseSingleUnit(pkg *Package, payloads []string, pos token.Pos,
	problem func(*Package, token.Pos, string, ...any)) (Unit, bool) {
	if len(payloads) > 1 {
		problem(pkg, pos, "multiple //esselint:unit directives on one declaration")
		return nil, false
	}
	if strings.ContainsAny(payloads[0], "= \t") {
		problem(pkg, pos, "//esselint:unit on a field or value takes a single unit expression, got %q", payloads[0])
		return nil, false
	}
	u, err := ParseUnit(payloads[0])
	if err != nil {
		problem(pkg, pos, "//esselint:unit: %v", err)
		return nil, false
	}
	return u, true
}

// collectFuncUnits parses "name=expr" fields of a function-level unit
// directive against the declaration's flattened parameter list.
func collectFuncUnits(pkg *Package, t *UnitTable, d *ast.FuncDecl, payloads []string, pos token.Pos,
	problem func(*Package, token.Pos, string, ...any)) {
	obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	paramIdx := map[string]int{}
	n := 0
	if d.Type.Params != nil {
		for _, field := range d.Type.Params.List {
			for _, name := range field.Names {
				paramIdx[name.Name] = n
				n++
			}
			if len(field.Names) == 0 {
				n++
			}
		}
	}
	sig := &UnitFuncSig{Params: make([]Unit, n), Pos: pos}
	bad := false
	for _, payload := range payloads {
		for _, fieldSpec := range strings.Fields(payload) {
			name, expr, found := strings.Cut(fieldSpec, "=")
			if !found {
				problem(pkg, pos, "//esselint:unit on func %s: %q is not name=unit", d.Name.Name, fieldSpec)
				bad = true
				continue
			}
			u, err := ParseUnit(expr)
			if err != nil {
				problem(pkg, pos, "//esselint:unit on func %s: %v", d.Name.Name, err)
				bad = true
				continue
			}
			if name == "return" {
				sig.Result = u
				continue
			}
			i, ok := paramIdx[name]
			if !ok {
				problem(pkg, pos, "//esselint:unit on func %s names unknown parameter %q", d.Name.Name, name)
				bad = true
				continue
			}
			sig.Params[i] = u
		}
	}
	if bad {
		return
	}
	t.Funcs[obj.FullName()] = sig
}

// --- symbolic shape summaries ----------------------------------------------

// Summary dimension terms are strings over a closed vocabulary:
//
//	"12"   an integer constant
//	"$r3"  rows of parameter 3 (a *linalg.Dense)
//	"$c3"  cols of parameter 3
//	"$l3"  length of parameter 3 (a []float64)
//	"?"    unknown
//
// Compound shapes (sums, data-dependent slices) deliberately degrade
// to "?" at the summary boundary: the summaries exist to check and
// report, so losing a term can only hide a finding, never invent one.
const (
	dimUnknown = "?"
	// dimTop is the optimistic SCC seed: the identity of the summary
	// meet, eliminated by the fixpoint (any survivor finalizes to "?").
	dimTop = "$T"
)

// DimShape is one result's symbolic shape. A Vec shape is a []float64
// whose length is R (C is unused).
type DimShape struct {
	R, C string
	Vec  bool
}

// DimSummary is the interprocedural shape summary of one function.
type DimSummary struct {
	NumParams int
	// Results holds one entry per result; nil entries are results that
	// are neither *linalg.Dense nor []float64, or proved nothing.
	Results []*DimShape
	// Requires lists the conformance requirements the body imposes on
	// its parameters: each term pair must be equal for every caller.
	// Sorted, deduplicated, each pair ordered.
	Requires [][2]string

	// optimistic marks the SCC fixpoint seed; callShape maps it to
	// dimTop shapes so unreached recursive returns contribute top.
	optimistic bool
}

func (s *DimSummary) empty() bool {
	if len(s.Requires) > 0 {
		return false
	}
	for _, r := range s.Results {
		if r != nil {
			return false
		}
	}
	return true
}

func dimSummariesEqual(a, b *DimSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.NumParams != b.NumParams || a.optimistic != b.optimistic ||
		len(a.Results) != len(b.Results) || len(a.Requires) != len(b.Requires) {
		return false
	}
	for i, ra := range a.Results {
		rb := b.Results[i]
		if (ra == nil) != (rb == nil) {
			return false
		}
		if ra != nil && *ra != *rb {
			return false
		}
	}
	for i, p := range a.Requires {
		if b.Requires[i] != p {
			return false
		}
	}
	return true
}

// dimSummaryIterCap, when non-negative, overrides the computed SCC
// iteration cap — a test hook that forces the non-convergence path so
// sound deletion stays exercised (a monotone descent converges on its
// own, so the path is otherwise unreachable).
var dimSummaryIterCap = -1

// computeDimSummaries builds Program.DimSummaries bottom-up over the
// call graph: per SCC, members are seeded with the optimistic top
// summary and iterated to a fixpoint (result terms descend
// specific→unknown, requirement sets ascend over a finite vocabulary,
// so the combined system stabilizes). A component that fails to
// converge within the cap has its summaries deleted — an optimistic
// leftover would be an unsound claim.
func (p *Program) computeDimSummaries() {
	p.DimSummaries = map[string]*DimSummary{}
	for _, scc := range p.Graph.SCCs {
		var members []*FuncInfo
		for _, key := range scc {
			fn := p.Graph.Funcs[key]
			if fn.Decl.Body == nil || !dimSummarizable(fn) {
				continue
			}
			members = append(members, fn)
			p.DimSummaries[key] = &DimSummary{optimistic: true}
		}
		if len(members) == 0 {
			continue
		}
		cap := len(members)*16 + 16
		if dimSummaryIterCap >= 0 {
			cap = dimSummaryIterCap
		}
		converged := false
		for iter := 0; iter <= cap; iter++ {
			changed := false
			for _, fn := range members {
				sum := dimSummaryForFunc(p, fn)
				if !dimSummariesEqual(sum, p.DimSummaries[fn.Key]) {
					changed = true
				}
				p.DimSummaries[fn.Key] = sum
			}
			if !changed {
				converged = true
				break
			}
		}
		if !converged {
			for _, fn := range members {
				delete(p.DimSummaries, fn.Key)
			}
			continue
		}
		for _, fn := range members {
			if p.DimSummaries[fn.Key].empty() {
				delete(p.DimSummaries, fn.Key)
			}
		}
	}
}

// dimSummarizable reports whether fn's signature mentions a shape-
// carrying type (*linalg.Dense or []float64) among its parameters or
// results — the only functions whose summaries could say anything.
func dimSummarizable(fn *FuncInfo) bool {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if t := sig.Params().At(i).Type(); isDenseType(t) || isFloatSliceType(t) {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if t := sig.Results().At(i).Type(); isDenseType(t) || isFloatSliceType(t) {
			return true
		}
	}
	return false
}

// linalgPkgPath is the import path of the dense linear-algebra package
// whose operations shapecheck's transfer vocabulary hard-codes.
const linalgPkgPath = "esse/internal/linalg"

// isDenseType reports whether t is *linalg.Dense.
func isDenseType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Dense" && obj.Pkg() != nil && obj.Pkg().Path() == linalgPkgPath
}

// isFloatSliceType reports whether t is []float64 (the package's
// vector representation).
func isFloatSliceType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
