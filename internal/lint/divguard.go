package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DivGuard flags floating-point divisions, math.Sqrt and math.Log calls
// whose operand is not provably safe on every control-flow path: a
// denominator that may be zero silently injects ±Inf/NaN into the
// covariance pipeline, and one NaN in an anomaly column corrupts the
// whole error subspace (the SVD has no way to quarantine it).
//
// The analyzer runs a forward dataflow over the function's CFG tracking
// sign facts (nonzero / non-negative / non-positive) for variables,
// fields and indexed expressions. Facts are produced by
//
//   - branch conditions: `if d == 0 { return }`, `if v > 0 { ... }`,
//     `if math.Abs(g) <= tol { continue }`, including && / || forms;
//   - assignments whose right-hand side is provably safe: epsilon
//     clamps (`d = math.Max(d, 1e-12)`), absolute values, squares
//     (`x*x`), sums of squares, math.Exp, positive constants;
//   - the trust boundary: function parameters and struct-field reads
//     are assumed nonzero — validating configuration (grid spacing,
//     time steps) is the constructor's job, and the analyzer's target
//     is quantities *computed* inside the kernel (Gram entries, norms,
//     pivots), where cancellation can produce exact zeros.
//
// A division/Sqrt/Log whose operand cannot be proven safe needs a
// guard, an epsilon clamp, or an audited //esselint:allow divguard
// directive with a reason.
var DivGuard = &Analyzer{
	Name: "divguard",
	Doc: "flag float divisions and math.Sqrt/math.Log calls whose operand is not dominated " +
		"by a zero/sign guard or an epsilon clamp (numerical-safety gate for the covariance pipeline)",
	Scope: underAny("internal/linalg", "internal/ocean"),
	Run:   runDivGuard,
}

// underAny scopes an analyzer to the given module-relative paths (and
// their subpackages).
func underAny(rels ...string) func(string) bool {
	return func(rel string) bool {
		for _, r := range rels {
			if rel == r || strings.HasPrefix(rel, r+"/") {
				return true
			}
		}
		return false
	}
}

// Sign-fact bits. A value's mask is the conjunction of proven
// properties: sfPos = sfNonZero|sfNonNeg, sfNeg = sfNonZero|sfNonPos,
// an exact zero is sfNonNeg|sfNonPos.
const (
	sfNonZero uint8 = 1 << iota
	sfNonNeg
	sfNonPos
)

const sfPos = sfNonZero | sfNonNeg
const sfNeg = sfNonZero | sfNonPos

func isPos(m uint8) bool { return m&sfPos == sfPos }
func isNeg(m uint8) bool { return m&sfNeg == sfNeg }

// divState maps the canonical string of a keyable expression (variable,
// field chain, indexed element) to its proven sign mask. A nil map is
// the solver's Top (unreached).
type divState map[string]uint8

func (s divState) clone() divState {
	c := make(divState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func runDivGuard(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range FuncNodes(f) {
			analyzeDivGuardFunc(pass, fn)
		}
	}
	return nil
}

func analyzeDivGuardFunc(pass *Pass, fn ast.Node) {
	a := &divguardFunc{pass: pass, fn: fn, trusted: map[types.Object]bool{}, reported: map[token.Pos]bool{}}
	a.collectTrusted(fn)
	cfg := BuildCFG(fn)
	res := Forward(cfg, a)
	// Reporting pass: replay each reachable block's transfer from its
	// solved entry fact, checking operand safety site by site.
	for _, b := range cfg.Blocks {
		in, _ := res.In[b].(divState)
		if in == nil {
			continue // unreachable (or Top): don't report from dead code
		}
		st := in.clone()
		for _, n := range b.Nodes {
			a.step(st, n, true)
		}
	}
}

// divguardFunc is the per-function analysis: FlowAnalysis plus the
// expression-safety machinery. summary.go re-runs it in summary mode
// (noTrust set, paramSeed filled) to compute callee result masks that
// must hold for every caller.
type divguardFunc struct {
	pass     *Pass
	fn       ast.Node
	trusted  map[types.Object]bool
	reported map[token.Pos]bool
	// noTrust disables the trust boundary: parameters, fields and free
	// variables prove nothing unless paramSeed says so.
	noTrust bool
	// paramSeed holds entry facts for parameter names (summary mode).
	paramSeed divState
}

func (a *divguardFunc) collectTrusted(fn ast.Node) {
	var ft *ast.FuncType
	var recv *ast.FieldList
	switch v := fn.(type) {
	case *ast.FuncDecl:
		ft = v.Type
		recv = v.Recv
	case *ast.FuncLit:
		ft = v.Type
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := a.pass.Info.Defs[name]; obj != nil {
					a.trusted[obj] = true
				}
			}
		}
	}
	if ft != nil {
		addFields(ft.Params)
	}
	addFields(recv)
}

// --- FlowAnalysis ----------------------------------------------------------

func (a *divguardFunc) Boundary() Fact {
	st := divState{}
	for k, m := range a.paramSeed {
		st[k] = m
	}
	return st
}
func (a *divguardFunc) Top() Fact { return divState(nil) }

func (a *divguardFunc) Transfer(b *Block, in Fact) Fact {
	st, _ := in.(divState)
	if st == nil {
		return divState(nil)
	}
	out := st.clone()
	for _, n := range b.Nodes {
		a.step(out, n, false)
	}
	return out
}

func (a *divguardFunc) FlowEdge(e *Edge, out Fact) Fact {
	st, _ := out.(divState)
	if st == nil || e.Cond == nil {
		return out
	}
	refined := st.clone()
	a.refine(refined, e.Cond, e.Branch)
	return refined
}

func (a *divguardFunc) Meet(x, y Fact) Fact {
	sx, _ := x.(divState)
	sy, _ := y.(divState)
	if sx == nil {
		return sy
	}
	if sy == nil {
		return sx
	}
	m := divState{}
	for k, vx := range sx {
		if vy, ok := sy[k]; ok {
			if v := vx & vy; v != 0 {
				m[k] = v
			}
		}
	}
	return m
}

func (a *divguardFunc) Equal(x, y Fact) bool {
	sx, _ := x.(divState)
	sy, _ := y.(divState)
	if (sx == nil) != (sy == nil) || len(sx) != len(sy) {
		return false
	}
	for k, v := range sx {
		if sy[k] != v {
			return false
		}
	}
	return true
}

// --- per-node transfer -----------------------------------------------------

// step checks (when report is set) the unsafe-operand sites inside n
// under the pre-state, then applies n's effects to st in place.
func (a *divguardFunc) step(st divState, n ast.Node, report bool) {
	if report {
		a.checkNode(st, n)
	}
	WalkBlockNode(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.AssignStmt:
			// Children first would be eval order, but effects are
			// applied once per statement here: RHS safeties are read
			// under the current state before kills.
			a.applyAssign(st, v)
			return false
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						a.applyValueSpec(st, vs)
					}
				}
			}
			return false
		case *ast.IncDecStmt:
			a.killExpr(st, v.X)
			return false
		case *ast.RangeStmt:
			if v.Key != nil {
				a.killExpr(st, v.Key)
			}
			if v.Value != nil {
				a.killExpr(st, v.Value)
			}
			return true
		case *ast.CallExpr:
			a.applyCallKills(st, v)
			return true
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				a.killExpr(st, v.X)
			}
			return true
		}
		return true
	})
}

func (a *divguardFunc) applyAssign(st divState, as *ast.AssignStmt) {
	// First check RHS calls for kills (function calls may mutate
	// reference arguments), then compute new facts under the pre-state.
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				a.applyCallKills(st, call)
			}
			return true
		})
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		// Compound assignment x op= y: treat as x = x op y.
		lhs := as.Lhs[0]
		var op token.Token
		switch as.Tok {
		case token.ADD_ASSIGN:
			op = token.ADD
		case token.SUB_ASSIGN:
			op = token.SUB
		case token.MUL_ASSIGN:
			op = token.MUL
		case token.QUO_ASSIGN:
			op = token.QUO
		default:
			a.killExpr(st, lhs)
			return
		}
		mask := a.binaryMask(st, op, lhs, as.Rhs[0])
		a.killExpr(st, lhs)
		a.gen(st, lhs, mask)
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		masks := make([]uint8, len(as.Rhs))
		for i, rhs := range as.Rhs {
			masks[i] = a.safety(st, rhs)
		}
		for _, lhs := range as.Lhs {
			a.killExpr(st, lhs)
		}
		for i, lhs := range as.Lhs {
			a.gen(st, lhs, masks[i])
		}
		return
	}
	// Multi-value assignment from one call: consult the callee's
	// numeric summary per result (under the pre-kill state).
	var masks []uint8
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			masks = make([]uint8, len(as.Lhs))
			for i := range as.Lhs {
				masks[i] = a.summaryMask(st, call, i)
			}
		}
	}
	for _, lhs := range as.Lhs {
		a.killExpr(st, lhs)
	}
	for i, lhs := range as.Lhs {
		if masks != nil {
			a.gen(st, lhs, masks[i])
		}
	}
}

func (a *divguardFunc) applyValueSpec(st divState, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		a.killExpr(st, name)
		if i < len(vs.Values) {
			a.gen(st, name, a.safety(st, vs.Values[i]))
		} else if vs.Values == nil {
			// var x float64 — zero value.
			a.gen(st, name, sfNonNeg|sfNonPos)
		}
	}
}

// applyCallKills invalidates facts that a call may have clobbered:
// anything whose root is passed by pointer/slice/map or is the receiver
// of a method call on a mutable type.
func (a *divguardFunc) applyCallKills(st divState, call *ast.CallExpr) {
	if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: no effects
	}
	kill := func(e ast.Expr) {
		if root := rootIdent(e); root != nil {
			if obj, ok := a.pass.Info.Uses[root]; ok && isMutableRef(obj.Type()) {
				a.killName(st, root.Name)
			}
		}
	}
	for _, arg := range call.Args {
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			a.killExpr(st, u.X)
			continue
		}
		kill(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := a.pass.Info.Selections[sel]; isMethod {
			kill(sel.X)
		}
	}
}

// isMutableRef reports whether a value of type t lets a callee mutate
// state the caller can observe.
func isMutableRef(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

func (a *divguardFunc) gen(st divState, lhs ast.Expr, mask uint8) {
	if mask == 0 {
		return
	}
	if key, ok := a.key(lhs); ok {
		st[key] = mask
	}
}

// killExpr drops every fact depending on the root identifier of e.
func (a *divguardFunc) killExpr(st divState, e ast.Expr) {
	if root := rootIdent(e); root != nil {
		a.killName(st, root.Name)
	}
}

func (a *divguardFunc) killName(st divState, name string) {
	for k := range st {
		if keyMentions(k, name) {
			delete(st, k)
		}
	}
}

// keyMentions reports whether the canonical key string contains name as
// a whole identifier token.
func keyMentions(key, name string) bool {
	for i := 0; i+len(name) <= len(key); i++ {
		j := strings.Index(key[i:], name)
		if j < 0 {
			return false
		}
		j += i
		beforeOK := j == 0 || !isIdentChar(key[j-1])
		afterOK := j+len(name) == len(key) || !isIdentChar(key[j+len(name)])
		if beforeOK && afterOK {
			return true
		}
		i = j
	}
	return false
}

func isIdentChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// key returns the canonical fact key for e if e is keyable: an
// identifier, a field/selector chain, or an index expression over a
// keyable base with an identifier or constant index.
func (a *divguardFunc) key(e ast.Expr) (string, bool) {
	if !a.keyable(e) {
		return "", false
	}
	return types.ExprString(ast.Unparen(e)), true
}

func (a *divguardFunc) keyable(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name != "_"
	case *ast.SelectorExpr:
		return a.keyable(v.X)
	case *ast.IndexExpr:
		if !a.keyable(v.X) {
			return false
		}
		switch idx := ast.Unparen(v.Index).(type) {
		case *ast.Ident:
			return true
		case *ast.BasicLit:
			_ = idx
			return true
		}
		return false
	}
	return false
}

// trustedSource reports whether e reads through the analyzer's trust
// boundary: a function parameter/receiver or a struct-field chain.
// Indexed elements are never trusted — slice contents are computed
// data, exactly what the analyzer exists to check.
func (a *divguardFunc) trustedSource(e ast.Expr) bool {
	if a.noTrust {
		return false
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.pass.Info.Uses[v]
		if obj == nil {
			return false
		}
		if a.trusted[obj] {
			return true
		}
		// Free variables — captured outer locals and package-level vars —
		// cross the same trust boundary as parameters: the closure's
		// denominator `2*dx` is the enclosing function's configuration.
		return obj.Pos() < a.fn.Pos() || obj.Pos() >= a.fn.End()
	case *ast.SelectorExpr:
		if sel, ok := a.pass.Info.Selections[v]; ok {
			return sel.Kind() == types.FieldVal
		}
		// Qualified package-level variable: trusted configuration.
		if obj, ok := a.pass.Info.Uses[v.Sel].(*types.Var); ok {
			return obj.Pkg() != nil
		}
	}
	return false
}

// --- expression safety -----------------------------------------------------

// safety computes the proven sign mask of e under st.
func (a *divguardFunc) safety(st divState, e ast.Expr) uint8 {
	e = ast.Unparen(e)
	if tv, ok := a.pass.Info.Types[e]; ok && tv.Value != nil {
		return constMask(tv)
	}
	switch v := e.(type) {
	case *ast.UnaryExpr:
		switch v.Op {
		case token.SUB:
			return negMask(a.safety(st, v.X))
		case token.ADD:
			return a.safety(st, v.X)
		}
		return 0
	case *ast.BinaryExpr:
		return a.binaryMask(st, v.Op, v.X, v.Y)
	case *ast.CallExpr:
		return a.callMask(st, v)
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		if key, ok := a.key(e); ok {
			if m, found := st[key]; found {
				return m
			}
		}
		if a.trustedSource(e) {
			return sfNonZero
		}
	}
	return 0
}

func constMask(tv types.TypeAndValue) uint8 {
	val := tv.Value
	if val == nil {
		return 0
	}
	s := val.String()
	switch {
	case s == "0", strings.HasPrefix(s, "0/"), s == "0.0":
		return sfNonNeg | sfNonPos
	case strings.HasPrefix(s, "-"):
		return sfNeg
	}
	// Non-negative literal; distinguish exact zero via string form
	// handled above, everything else is positive.
	if s == "" {
		return 0
	}
	if c := s[0]; c >= '0' && c <= '9' || c == '.' {
		// Floating zeros can print as "0" (handled) — any other
		// numeric literal here is positive.
		if isZeroConst(s) {
			return sfNonNeg | sfNonPos
		}
		return sfPos
	}
	return 0
}

// isZeroConst recognizes the constant printer's zero spellings.
func isZeroConst(s string) bool {
	for _, c := range s {
		switch c {
		case '0', '.', 'e', '+', '-':
			// still compatible with a zero like 0.00e+00
		default:
			return false
		}
	}
	return true
}

func negMask(m uint8) uint8 {
	out := m & sfNonZero
	if m&sfNonNeg != 0 {
		out |= sfNonPos
	}
	if m&sfNonPos != 0 {
		out |= sfNonNeg
	}
	return out
}

func sumMask(x, y uint8) uint8 {
	var m uint8
	if x&sfNonNeg != 0 && y&sfNonNeg != 0 {
		m |= sfNonNeg
		if isPos(x) || isPos(y) {
			m |= sfNonZero
		}
	}
	if x&sfNonPos != 0 && y&sfNonPos != 0 {
		m |= sfNonPos
		if isNeg(x) || isNeg(y) {
			m |= sfNonZero
		}
	}
	return m
}

func mulMask(x, y uint8) uint8 {
	var m uint8
	if x&sfNonZero != 0 && y&sfNonZero != 0 {
		m |= sfNonZero
	}
	if (x&sfNonNeg != 0 && y&sfNonNeg != 0) || (x&sfNonPos != 0 && y&sfNonPos != 0) {
		m |= sfNonNeg
	}
	if (x&sfNonNeg != 0 && y&sfNonPos != 0) || (x&sfNonPos != 0 && y&sfNonNeg != 0) {
		m |= sfNonPos
	}
	return m
}

func (a *divguardFunc) binaryMask(st divState, op token.Token, x, y ast.Expr) uint8 {
	switch op {
	case token.ADD:
		return sumMask(a.safety(st, x), a.safety(st, y))
	case token.SUB:
		return sumMask(a.safety(st, x), negMask(a.safety(st, y)))
	case token.MUL:
		return a.productMask(st, &ast.BinaryExpr{X: x, Op: token.MUL, Y: y})
	case token.QUO:
		return mulMask(a.safety(st, x), a.safety(st, y))
	}
	return 0
}

// productMask flattens a chain of multiplications and pairs
// syntactically identical side-effect-free factors as squares (x*x is
// non-negative even when x's sign is unknown) before folding the
// factor masks.
func (a *divguardFunc) productMask(st divState, e *ast.BinaryExpr) uint8 {
	var factors []ast.Expr
	var flatten func(ast.Expr)
	flatten = func(f ast.Expr) {
		f = ast.Unparen(f)
		if b, ok := f.(*ast.BinaryExpr); ok && b.Op == token.MUL {
			flatten(b.X)
			flatten(b.Y)
			return
		}
		factors = append(factors, f)
	}
	flatten(e.X)
	flatten(e.Y)

	used := make([]bool, len(factors))
	mask := sfPos // identity factor 1
	for i, f := range factors {
		if used[i] {
			continue
		}
		fi := a.safety(st, f)
		if sideEffectFree(f) {
			s := types.ExprString(ast.Unparen(f))
			for j := i + 1; j < len(factors); j++ {
				if !used[j] && sideEffectFree(factors[j]) && types.ExprString(ast.Unparen(factors[j])) == s {
					used[i], used[j] = true, true
					mask = mulMask(mask, sfNonNeg|(fi&sfNonZero))
					break
				}
			}
			if used[i] {
				continue
			}
		}
		mask = mulMask(mask, fi)
	}
	return mask
}

func sideEffectFree(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			pure = false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pure = false
			}
		}
		return pure
	})
	return pure
}

// callMask knows the sign behaviour of a small math/builtin vocabulary.
func (a *divguardFunc) callMask(st divState, call *ast.CallExpr) uint8 {
	if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return a.safety(st, call.Args[0]) // numeric conversion preserves sign
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
		return sfNonNeg
	}
	if m := a.summaryMask(st, call, 0); m != 0 {
		return m
	}
	name := a.mathFunc(call)
	if name == "" || len(call.Args) == 0 {
		return 0
	}
	arg0 := func() uint8 { return a.safety(st, call.Args[0]) }
	switch name {
	case "Abs":
		return sfNonNeg | (arg0() & sfNonZero)
	case "Sqrt":
		m := arg0()
		out := sfNonNeg
		if isPos(m) {
			out |= sfNonZero
		}
		return out
	case "Exp":
		return sfPos
	case "Hypot":
		return sfNonNeg
	case "Max":
		if len(call.Args) != 2 {
			return 0
		}
		x, y := arg0(), a.safety(st, call.Args[1])
		var out uint8
		if x&sfNonNeg != 0 || y&sfNonNeg != 0 {
			out |= sfNonNeg
		}
		if isPos(x) || isPos(y) || (x&sfNonZero != 0 && y&sfNonZero != 0) {
			out |= sfNonZero
		}
		if x&sfNonPos != 0 && y&sfNonPos != 0 {
			out |= sfNonPos
		}
		return out
	case "Min":
		if len(call.Args) != 2 {
			return 0
		}
		x, y := arg0(), a.safety(st, call.Args[1])
		var out uint8
		if x&sfNonPos != 0 || y&sfNonPos != 0 {
			out |= sfNonPos
		}
		if isNeg(x) || isNeg(y) || (x&sfNonZero != 0 && y&sfNonZero != 0) {
			out |= sfNonZero
		}
		if x&sfNonNeg != 0 && y&sfNonNeg != 0 {
			out |= sfNonNeg
		}
		return out
	}
	return 0
}

// summaryMask returns the interprocedurally proven sign mask of result
// idx of call, or 0 when no numeric summary applies. The AllPos
// variant is used when every float argument proves positive at this
// call site (and the argument list is simple enough to line up with
// the parameters).
func (a *divguardFunc) summaryMask(st divState, call *ast.CallExpr, idx int) uint8 {
	prog := a.pass.Prog
	if prog == nil {
		return 0
	}
	callee := StaticCallee(a.pass.Info, call)
	if callee == nil {
		return 0
	}
	sum := prog.Numeric[callee.FullName()]
	if sum == nil || idx >= len(sum.Base) {
		return 0
	}
	masks := sum.Base
	if len(sum.FloatParams) > 0 && !sum.Variadic && len(call.Args) == sum.NumParams && !call.Ellipsis.IsValid() {
		allPos := true
		for _, i := range sum.FloatParams {
			if !isPos(a.safety(st, call.Args[i])) {
				allPos = false
				break
			}
		}
		if allPos {
			masks = sum.AllPos
		}
	}
	return masks[idx]
}

// summaryResultMasks computes fn's per-result sign masks by re-running
// the divguard dataflow over its body in summary mode: the trust
// boundary is off (a summary must hold for every caller), and in the
// assumePosParams variant every float parameter is seeded positive.
// The result is the meet across every reachable return site; a body
// with no reachable return proves nothing. summary.go iterates this to
// a greatest fixpoint over recursive components.
func summaryResultMasks(prog *Program, fn *FuncInfo, assumePosParams bool) []uint8 {
	sig := fn.Obj.Type().(*types.Signature)
	masks := make([]uint8, sig.Results().Len())
	for i := range masks {
		masks[i] = sfAll
	}
	pass := &Pass{Fset: fn.Pkg.Fset, Path: fn.Pkg.Path, RelPath: fn.Pkg.RelPath,
		Pkg: fn.Pkg.Pkg, Info: fn.Pkg.Info, Prog: prog}
	a := &divguardFunc{pass: pass, fn: fn.Decl,
		trusted: map[types.Object]bool{}, reported: map[token.Pos]bool{},
		noTrust: true, paramSeed: divState{}}
	if assumePosParams && fn.Decl.Type.Params != nil {
		for _, field := range fn.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil && name.Name != "_" && isFloatType(obj.Type()) {
					a.paramSeed[name.Name] = sfPos
				}
			}
		}
	}
	cfg := BuildCFG(fn.Decl)
	res := Forward(cfg, a)
	var resultNames []string
	if fn.Decl.Type.Results != nil {
		for _, field := range fn.Decl.Type.Results.List {
			for _, name := range field.Names {
				resultNames = append(resultNames, name.Name)
			}
		}
	}
	sawReturn := false
	for _, b := range cfg.Blocks {
		in, _ := res.In[b].(divState)
		if in == nil {
			continue // unreachable return sites constrain nothing
		}
		st := in.clone()
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				sawReturn = true
				a.meetReturn(st, ret, resultNames, masks)
			}
			a.step(st, n, false)
		}
	}
	if !sawReturn {
		// Every path panics or loops: vacuously anything holds, but
		// claim nothing rather than everything.
		for i := range masks {
			masks[i] = 0
		}
	}
	return masks
}

// meetReturn folds one return site's proven masks into the summary.
func (a *divguardFunc) meetReturn(st divState, ret *ast.ReturnStmt, resultNames []string, masks []uint8) {
	switch {
	case len(ret.Results) == len(masks):
		for i, e := range ret.Results {
			masks[i] &= a.safety(st, e)
		}
	case len(ret.Results) == 0 && len(resultNames) == len(masks):
		// Bare return: read the named results' current facts.
		for i, name := range resultNames {
			masks[i] &= st[name]
		}
	case len(ret.Results) == 1 && len(masks) > 1:
		// return f() splat: chain through f's summary.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			for i := range masks {
				masks[i] &= a.summaryMask(st, call, i)
			}
		} else {
			for i := range masks {
				masks[i] = 0
			}
		}
	default:
		for i := range masks {
			masks[i] = 0
		}
	}
}

// mathFunc returns the function name if call is math.<Name>(...).
func (a *divguardFunc) mathFunc(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := a.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "math" {
		return ""
	}
	return obj.Name()
}

// --- branch refinement -----------------------------------------------------

// refine strengthens st with what cond evaluating to branch implies.
func (a *divguardFunc) refine(st divState, cond ast.Expr, branch bool) {
	cond = ast.Unparen(cond)
	switch v := cond.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			a.refine(st, v.X, !branch)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			if branch {
				a.refine(st, v.X, true)
				a.refine(st, v.Y, true)
			}
		case token.LOR:
			if !branch {
				a.refine(st, v.X, false)
				a.refine(st, v.Y, false)
			}
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			op := v.Op
			if !branch {
				op = negateCmp(op)
			}
			a.applyRel(st, v.X, op, v.Y)
			a.applyRel(st, v.Y, swapCmp(op), v.X)
		}
	}
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return op
}

func swapCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// applyRel adds to x the facts implied by `x op y` holding, given y's
// provable mask.
func (a *divguardFunc) applyRel(st divState, x ast.Expr, op token.Token, y ast.Expr) {
	ym := a.safety(st, y)
	var add uint8
	switch op {
	case token.EQL:
		add = ym
	case token.NEQ:
		if ym == sfNonNeg|sfNonPos { // y is exactly zero
			add = sfNonZero
		}
	case token.GTR: // x > y
		if ym&sfNonNeg != 0 {
			add = sfPos
		}
	case token.GEQ: // x >= y
		if isPos(ym) {
			add = sfPos
		} else if ym&sfNonNeg != 0 {
			add = sfNonNeg
		}
	case token.LSS: // x < y
		if ym&sfNonPos != 0 {
			add = sfNeg
		}
	case token.LEQ: // x <= y
		if isNeg(ym) {
			add = sfNeg
		} else if ym&sfNonPos != 0 {
			add = sfNonPos
		}
	}
	if add == 0 {
		return
	}
	a.addFact(st, x, add)
}

// addFact attributes a learned mask to x, unwrapping abs-value calls
// and numeric conversions so `math.Abs(g) > 0` teaches about g.
func (a *divguardFunc) addFact(st divState, x ast.Expr, add uint8) {
	x = ast.Unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		if a.mathFunc(call) == "Abs" && len(call.Args) == 1 {
			// |g| nonzero ⇒ g nonzero; sign facts do not transfer.
			if add&sfNonZero != 0 {
				a.addFact(st, call.Args[0], sfNonZero)
			}
			return
		}
		if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			a.addFact(st, call.Args[0], add)
			return
		}
		return
	}
	if key, ok := a.key(x); ok {
		st[key] |= add
	}
}

// --- site checking ---------------------------------------------------------

// checkNode reports unsafe operands inside n under the pre-state st.
func (a *divguardFunc) checkNode(st divState, n ast.Node) {
	WalkBlockNode(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.BinaryExpr:
			if v.Op == token.QUO && a.isFloat(v.X) {
				a.checkOperand(st, v.OpPos, v.Y, sfNonZero,
					"denominator %s is not provably nonzero on every path; guard it, clamp with an epsilon (math.Max), or annotate //esselint:allow divguard <reason>")
			}
		case *ast.AssignStmt:
			if v.Tok == token.QUO_ASSIGN && len(v.Lhs) == 1 && len(v.Rhs) == 1 && a.isFloat(v.Lhs[0]) {
				a.checkOperand(st, v.TokPos, v.Rhs[0], sfNonZero,
					"denominator %s is not provably nonzero on every path; guard it, clamp with an epsilon (math.Max), or annotate //esselint:allow divguard <reason>")
			}
		case *ast.CallExpr:
			switch a.mathFunc(v) {
			case "Sqrt":
				if len(v.Args) == 1 {
					a.checkOperand(st, v.Pos(), v.Args[0], sfNonNeg,
						"math.Sqrt argument %s is not provably non-negative on every path; guard the sign or annotate //esselint:allow divguard <reason>")
				}
			case "Log":
				if len(v.Args) == 1 {
					a.checkOperand(st, v.Pos(), v.Args[0], sfPos,
						"math.Log argument %s is not provably positive on every path; guard it or annotate //esselint:allow divguard <reason>")
				}
			}
		}
		return true
	})
}

func (a *divguardFunc) isFloat(e ast.Expr) bool {
	tv, ok := a.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func (a *divguardFunc) checkOperand(st divState, pos token.Pos, operand ast.Expr, need uint8, format string) {
	if a.reported[pos] {
		return
	}
	if tv, ok := a.pass.Info.Types[ast.Unparen(operand)]; ok && tv.Value != nil {
		// Constant operands: a constant zero denominator would be a
		// compile-time error for typed constants and glaring in review;
		// sign of negative constants under Sqrt is caught by masks.
		if constMask(tv)&need == need {
			a.reported[pos] = true
			return
		}
	}
	if a.safety(st, operand)&need == need {
		a.reported[pos] = true
		return
	}
	a.reported[pos] = true
	a.pass.Reportf(pos, format, exprSnippet(operand))
}

// exprSnippet renders e compactly for diagnostics.
func exprSnippet(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return fmt.Sprintf("%q", s)
}
