package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between non-constant floating-point
// expressions. Exact float equality is almost never what a numerical
// code means: two mathematically identical reductions differ in their
// last bits depending on association order, so `a == b` silently turns
// into "a and b were computed by the same instruction sequence". The
// required spelling is a tolerance test, math.Abs(a-b) <= tol.
//
// Comparisons against constants are allowed — `x == 0` and `x != 1`
// are legitimate sentinel and guard tests (divguard depends on the
// former) — as is comparing an expression to itself, the idiomatic
// NaN probe `x != x`.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= between non-constant float expressions; exact equality depends on " +
		"instruction ordering — use math.Abs(a-b) <= tol",
	Scope: underInternalOrCmd,
	Run:   runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(pass, cmp.X) || !isFloatOperand(pass, cmp.Y) {
				return true
			}
			if isConstExpr(pass, cmp.X) || isConstExpr(pass, cmp.Y) {
				return true
			}
			if types.ExprString(ast.Unparen(cmp.X)) == types.ExprString(ast.Unparen(cmp.Y)) {
				return true // x != x: the NaN self-test
			}
			pass.Reportf(cmp.OpPos,
				"exact float comparison %s %s %s; use math.Abs(a-b) <= tol (or //esselint:allow floatcmp <reason> if bit-exactness is the contract)",
				exprSnippet(cmp.X), cmp.Op, exprSnippet(cmp.Y))
			return true
		})
	}
	return nil
}

func isFloatOperand(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
