package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Preallocate flags the grow-by-append anti-pattern in hot-package
// loops when the final capacity is statically derivable: `s = append(s,
// ...)` inside a loop whose trip count the analyzer can name — the
// length of a ranged operand, a constant or loop-invariant `i < n`
// bound, or a call to an effect-free in-set function (whose numeric
// summary the interprocedural layer already computed) — while s's
// declaration provably lacks a capacity (`var s []T`, `[]T{}`,
// `make([]T, 0)`, or nil). Each such append chain reallocates
// O(log n) times and copies O(n) elements; declaring the slice with
// `make([]T, 0, bound)` removes every reallocation.
//
// Appends are only attributed to their nearest enclosing loop (an
// inner loop with an underivable bound hides its appends from the
// outer one), splat appends (`append(s, xs...)`) are skipped (the
// element count is not the trip count), and bounds whose variables are
// reassigned inside the loop body — the growing-worklist idiom — are
// rejected as not loop-invariant.
var Preallocate = &Analyzer{
	Name: "preallocate",
	Doc: "flag append-in-loop targets with a derivable final capacity (ranged len, constant " +
		"or invariant trip count, effect-free callee bound) declared without one; demand make(T, 0, n)",
	Scope: hotPackages,
	Run:   runPreallocate,
}

func runPreallocate(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range FuncNodes(f) {
			body := funcBody(fn)
			if body == nil {
				continue
			}
			walkOwnStmts(body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.ForStmt:
					if bound, ok := forBound(pass, v); ok {
						checkLoopAppends(pass, v, v.Body, bound, body)
					}
				case *ast.RangeStmt:
					if bound, ok := rangeBound(pass, v); ok {
						checkLoopAppends(pass, v, v.Body, bound, body)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkLoopAppends reports append targets of loop (with derivable
// bound) declared without capacity. Nested loops and function literals
// are pruned: their appends are not bounded by this loop's trip count.
func checkLoopAppends(pass *Pass, loop ast.Stmt, body *ast.BlockStmt, bound string, fnBody *ast.BlockStmt) {
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(m ast.Node) bool {
		if m == body {
			return true
		}
		switch m.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		as, ok := m.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || call.Ellipsis.IsValid() || len(call.Args) < 2 {
			return true
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[lhs].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || pass.Info.Uses[first] != types.Object(obj) {
			return true
		}
		// The target must outlive the loop; per-iteration slices reset
		// each time and never see the full bound.
		if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			return true
		}
		if !declLacksCapacity(pass, fnBody, obj) {
			return true
		}
		seen[obj] = true
		slice, ok := obj.Type().Underlying().(*types.Slice)
		if !ok {
			return true
		}
		elem := types.TypeString(slice.Elem(), func(p *types.Package) string { return p.Name() })
		pass.Reportf(call.Pos(), "append to %q grows without capacity though the loop bound %s is derivable; "+
			"declare it with make([]%s, 0, %s)", lhs.Name, bound, elem, bound)
		return true
	})
}

// forBound derives the trip count of a canonical counted loop
// `for i := 0; i < n; i++` (or i <= n), requiring the bound expression
// to be hoistable and loop-invariant and the counter untouched in the
// body.
func forBound(pass *Pass, loop *ast.ForStmt) (string, bool) {
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return "", false
	}
	counter, ok := init.Lhs[0].(*ast.Ident)
	if !ok || !isConstZero(pass.Info, init.Rhs[0]) {
		return "", false
	}
	cond, ok := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return "", false
	}
	lhs, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || lhs.Name != counter.Name {
		return "", false
	}
	post, ok := loop.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return "", false
	}
	if id, ok := ast.Unparen(post.X).(*ast.Ident); !ok || id.Name != counter.Name {
		return "", false
	}
	bound := ast.Unparen(cond.Y)
	if !hoistable(pass, bound) {
		return "", false
	}
	roots := exprRootObjects(pass, bound)
	if cobj, ok := pass.Info.Defs[counter]; ok {
		roots[cobj] = true
	}
	if mutatedIn(pass, loop.Body, roots) {
		return "", false
	}
	s := types.ExprString(bound)
	if cond.Op == token.LEQ {
		s += "+1"
	}
	return s, true
}

// rangeBound derives the trip count of a range loop: len(X) for
// slices, arrays, maps and strings, X itself for an integer range.
// Channel ranges have no static bound.
func rangeBound(pass *Pass, rng *ast.RangeStmt) (string, bool) {
	if !hoistable(pass, rng.X) {
		return "", false
	}
	// Range evaluates its operand once, so body mutation of X cannot
	// change the trip count — but reassigning X would desynchronize a
	// hoisted len(X); reject that too for an honest suggestion.
	if mutatedIn(pass, rng.Body, exprRootObjects(pass, rng.X)) {
		return "", false
	}
	switch t := exprType(pass.Info, rng.X).(type) {
	case *types.Slice, *types.Array, *types.Map:
		return "len(" + types.ExprString(rng.X) + ")", true
	case *types.Basic:
		if t.Info()&types.IsString != 0 {
			return "len(" + types.ExprString(rng.X) + ")", true
		}
		if t.Info()&types.IsInteger != 0 {
			return types.ExprString(rng.X), true
		}
	}
	return "", false
}

// hoistable reports whether e can be evaluated once before the loop:
// identifiers, field selections, literals, len/cap, arithmetic over
// hoistable operands, and calls to in-set functions whose effect
// summary is clean (no blocking, spawning, output or allocation —
// their numeric summaries make the result a known quantity).
func hoistable(pass *Pass, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.BasicLit:
		return v.Kind == token.INT
	case *ast.SelectorExpr:
		return hoistable(pass, v.X)
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return hoistable(pass, v.X) && hoistable(pass, v.Y)
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
			if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin {
				if id.Name != "len" && id.Name != "cap" {
					return false
				}
				return len(v.Args) == 1 && hoistable(pass, v.Args[0])
			}
		}
		if pass.Prog == nil {
			return false
		}
		callee := StaticCallee(pass.Info, v)
		if callee == nil {
			return false
		}
		if _, inSet := pass.Prog.Graph.Funcs[callee.FullName()]; !inSet {
			return false
		}
		if pass.Prog.Effects[callee.FullName()] != 0 {
			return false
		}
		for _, a := range v.Args {
			if !hoistable(pass, a) {
				return false
			}
		}
		return true
	}
	return false
}

// exprRootObjects collects the root variables e reads through.
func exprRootObjects(pass *Pass, e ast.Expr) map[types.Object]bool {
	roots := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				roots[v] = true
			}
		}
		return true
	})
	return roots
}

// mutatedIn reports whether any of objs is assigned, incremented, or
// has its address taken inside n.
func mutatedIn(pass *Pass, n ast.Node, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	uses := func(e ast.Expr) bool {
		root := rootIdent(e)
		if root == nil {
			return false
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			obj = pass.Info.Defs[root]
		}
		return obj != nil && objs[obj]
	}
	mutated := false
	ast.Inspect(n, func(m ast.Node) bool {
		if mutated {
			return false
		}
		switch v := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if uses(lhs) {
					mutated = true
				}
			}
		case *ast.IncDecStmt:
			if uses(v.X) {
				mutated = true
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND && uses(v.X) {
				mutated = true
			}
		}
		return !mutated
	})
	return mutated
}

// declLacksCapacity locates obj's declaration inside fnBody and
// reports whether it provably lacks a capacity: `var s []T`, `s :=
// []T{}`, `s := make([]T, 0)`, or an explicit nil. Declarations with a
// capacity, a nonzero length, or outside the function (parameters,
// fields, package variables) return false.
func declLacksCapacity(pass *Pass, fnBody *ast.BlockStmt, obj types.Object) bool {
	lacks, found := false, false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.Info.Defs[id] != obj {
					continue
				}
				found, lacks = true, initLacksCapacity(pass, v.Rhs[i])
			}
		case *ast.ValueSpec:
			for i, name := range v.Names {
				if pass.Info.Defs[name] != obj {
					continue
				}
				found = true
				if len(v.Values) == 0 {
					lacks = true
				} else if i < len(v.Values) {
					lacks = initLacksCapacity(pass, v.Values[i])
				}
			}
		}
		return true
	})
	return found && lacks
}

func initLacksCapacity(pass *Pass, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if _, ok := exprType(pass.Info, v).(*types.Slice); ok {
			return len(v.Elts) == 0
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(v.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin {
			return false
		}
		return len(v.Args) == 2 && isConstZero(pass.Info, v.Args[1])
	case *ast.Ident:
		return v.Name == "nil"
	}
	return false
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}
