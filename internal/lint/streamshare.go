package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StreamShare flags *rng.Stream values shared with goroutines. The rng
// package documents streams as not safe for concurrent use: each
// goroutine must own its own stream, normally a Split child. Two shapes
// are reported:
//
//  1. `go f(s)` where s is a named *rng.Stream — the goroutine aliases
//     a stream the caller (or other goroutines) can still advance.
//     `go f(s.Split(i))` is fine: the argument is a fresh stream with
//     no other referent. Element reads like `go f(streams[i])` are also
//     accepted (per-slot ownership is a common fan-out idiom).
//  2. a `go func(){...}()` literal capturing an outer *rng.Stream and
//     advancing it (any use other than as the receiver of Split). The
//     capture is accepted when the variable is declared inside the body
//     of the innermost loop containing the go statement — a
//     per-iteration child owned by exactly one goroutine — or when the
//     enclosing function never touches the stream again after launch.
//
// Calling Split on a captured parent is deliberately allowed: Split
// does not advance the parent, so concurrent Split-only readers are
// safe as long as nobody writes.
var StreamShare = &Analyzer{
	Name: "streamshare",
	Doc:  "flag *rng.Stream values shared with goroutines; each goroutine must own a Split child",
	Run:  runStreamShare,
}

func runStreamShare(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, g, append([]ast.Node{}, stack...))
			}
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, stack []ast.Node) {
	// Shape 1: bare stream arguments to the launched call.
	for _, arg := range g.Call.Args {
		tv, ok := pass.Info.Types[arg]
		if !ok || !isStreamPtr(tv.Type) {
			continue
		}
		switch arg.(type) {
		case *ast.CallExpr, *ast.IndexExpr:
			// Fresh value (Split/New result) or per-slot element: owned
			// by the goroutine.
		default:
			pass.Reportf(arg.Pos(), "*rng.Stream passed into goroutine is shared; hand it a Split child instead")
		}
	}

	// Shape 2: captures by a function-literal goroutine.
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	for obj, use := range capturedStreamUses(pass, lit) {
		if len(use.unsafe) == 0 {
			continue // only Split receivers: concurrent read-only use
		}
		if loop := innermostLoopBody(stack, g); loop != nil {
			if loop.Pos() <= obj.Pos() && obj.Pos() < loop.End() {
				// Declared inside the loop iteration that launches the
				// goroutine: one stream, one owner.
				continue
			}
		} else if !usedOutsideAfter(pass, stack, lit, g, obj) {
			// Single goroutine and the parent never touches the stream
			// again: ownership was handed off cleanly.
			continue
		}
		pass.Reportf(use.unsafe[0], "goroutine captures shared *rng.Stream %q; derive a per-goroutine child with Split", obj.Name())
	}
}

// streamUse records how a captured stream variable is used inside a
// goroutine literal.
type streamUse struct {
	unsafe []token.Pos // uses that advance or republish the stream
}

// capturedStreamUses finds free *rng.Stream variables of lit and
// classifies each use: the receiver position of a .Split(...) call is
// safe, anything else is unsafe.
func capturedStreamUses(pass *Pass, lit *ast.FuncLit) map[*types.Var]*streamUse {
	uses := map[*types.Var]*streamUse{}
	var stack []ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || !isStreamPtr(v.Type()) {
			return true
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal: not a capture
		}
		u := uses[v]
		if u == nil {
			u = &streamUse{}
			uses[v] = u
		}
		if !isSplitReceiver(stack) {
			u.unsafe = append(u.unsafe, id.Pos())
		}
		return true
	})
	return uses
}

// isSplitReceiver reports whether the identifier on top of stack is the
// receiver of a v.Split(...) call.
func isSplitReceiver(stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	sel, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || sel.X != stack[len(stack)-1] || sel.Sel.Name != "Split" {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && call.Fun == sel
}

// innermostLoopBody returns the body of the innermost for/range
// statement on stack that encloses the go statement g.
func innermostLoopBody(stack []ast.Node, g *ast.GoStmt) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.ForStmt:
			if v.Body.Pos() <= g.Pos() && g.Pos() < v.Body.End() {
				return v.Body
			}
		case *ast.RangeStmt:
			if v.Body.Pos() <= g.Pos() && g.Pos() < v.Body.End() {
				return v.Body
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return nil // don't look past the enclosing function
		}
	}
	return nil
}

// usedOutsideAfter reports whether obj is referenced in the enclosing
// function outside the goroutine literal lit at a position after the go
// statement — the parent (or a later goroutine) still touching a stream
// it just shared.
func usedOutsideAfter(pass *Pass, stack []ast.Node, lit *ast.FuncLit, g *ast.GoStmt, obj *types.Var) bool {
	var encl ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.FuncLit:
			if v != lit {
				encl = v
			}
		case *ast.FuncDecl:
			encl = v
		}
		if encl != nil {
			break
		}
	}
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if lit.Pos() <= n.Pos() && n.Pos() < lit.End() {
			return false // inside the goroutine literal
		}
		if id, ok := n.(*ast.Ident); ok && n.Pos() > g.End() && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isStreamPtr reports whether t is *esse/internal/rng.Stream.
func isStreamPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Stream" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/rng")
}
