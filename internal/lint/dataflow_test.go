package lint

import (
	"go/ast"
	"testing"
)

// markFlow is a toy may-analysis for the solver: the fact is true when
// a call to mark() may have executed with no later call to clear() on
// some path. Meet is OR, Top is false.
type markFlow struct{}

func (markFlow) Boundary() Fact                  { return false }
func (markFlow) Top() Fact                       { return false }
func (markFlow) FlowEdge(e *Edge, out Fact) Fact { return out }
func (markFlow) Meet(a, b Fact) Fact             { return a.(bool) || b.(bool) }
func (markFlow) Equal(a, b Fact) bool            { return a.(bool) == b.(bool) }

func (markFlow) Transfer(b *Block, in Fact) Fact {
	fact := in.(bool)
	for _, n := range b.Nodes {
		WalkBlockNode(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "mark":
						fact = true
					case "clear2":
						fact = false
					}
				}
			}
			return true
		})
	}
	return fact
}

func solveMark(t *testing.T, src string) bool {
	t.Helper()
	cfg := buildTestCFG(t, src)
	res := Forward(cfg, markFlow{})
	leaked, _ := res.In[cfg.Exit].(bool)
	return leaked
}

func TestForwardMayReachExit(t *testing.T) {
	if !solveMark(t, `
func f(c bool) {
	mark()
	if c {
		clear2()
	}
}`) {
		t.Error("mark should reach exit on the branch that skips clear2")
	}
}

func TestForwardAllPathsCleared(t *testing.T) {
	if solveMark(t, `
func f(c bool) {
	mark()
	if c {
		clear2()
	} else {
		clear2()
	}
}`) {
		t.Error("mark cleared on both branches must not reach exit")
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	// The mark happens inside a loop; whether the loop runs zero times
	// decides nothing — some path carries the mark to exit.
	if !solveMark(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		mark()
	}
}`) {
		t.Error("mark inside loop should may-reach exit")
	}
	// A clear after the loop kills every path.
	if solveMark(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		mark()
	}
	clear2()
}`) {
		t.Error("clear after loop must kill the fact on every path")
	}
}

func TestForwardMidGraphSeed(t *testing.T) {
	// The fact is generated two branches deep — a solver that only
	// seeds entry successors would converge before propagating it.
	if !solveMark(t, `
func f(a, b bool) {
	if a {
		if b {
			mark()
		}
	}
}`) {
		t.Error("nested mark should may-reach exit")
	}
}
