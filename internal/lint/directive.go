package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file implements the suppression audit: every //esselint:allow
// and //esselint:allowfile directive in the tree is an exception to a
// machine-checked invariant, so each one must name a real analyzer and
// carry a human-readable reason. `esselint -audit` lists them and fails
// the build on any that don't.

// Directive is one parsed //esselint:allow[file] comment.
type Directive struct {
	Pos token.Position
	// Kind is "allow" or "allowfile".
	Kind string
	// Analyzer is the named analyzer (or "all"); empty when the
	// directive has no analyzer token at all.
	Analyzer string
	// Reason is the free text after the analyzer name.
	Reason string
}

func (d Directive) String() string {
	s := fmt.Sprintf("%s: //esselint:%s %s", d.Pos, d.Kind, d.Analyzer)
	if d.Reason != "" {
		s += " — " + d.Reason
	}
	return s
}

// ParseDirective parses any //esselint: directive comment into its
// canonical rendering: fields single-spaced, fsm arcs trimmed and
// comma-joined, unit expressions reduced to the Unit algebra's
// canonical form. It returns ok=false for comments that are not
// esselint directives or whose payload the corresponding collector
// would reject. Accepted directives are a fixpoint: re-parsing the
// canonical form yields the same string (the FuzzParseDirective
// property).
func ParseDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//esselint:")
	if !ok {
		return "", false
	}
	kind := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		kind = rest[:i]
	}
	// A trailing note after an embedded "//" is not part of fsm/unit
	// payloads (mirroring fsmDirectives and unitDirectives).
	payload := strings.TrimPrefix(rest, kind)
	if i := strings.Index(payload, "//"); i >= 0 && (kind == "fsm" || kind == "unit") {
		payload = payload[:i]
	}
	switch kind {
	case "allow", "allowfile":
		return "//esselint:" + kind + joinFields(strings.Fields(payload)), true
	case "fsm":
		var arcs []string
		for _, arc := range strings.Split(payload, ",") {
			arc = strings.TrimSpace(arc)
			if arc == "" {
				continue
			}
			from, to, ok := strings.Cut(arc, "->")
			from, to = strings.TrimSpace(from), strings.TrimSpace(to)
			if !ok || from == "" || to == "" {
				return "", false
			}
			arcs = append(arcs, from+"->"+to)
		}
		if len(arcs) == 0 {
			return "", false
		}
		return "//esselint:fsm " + strings.Join(arcs, ", "), true
	case "unit":
		fields := strings.Fields(payload)
		if len(fields) == 0 {
			return "", false
		}
		funcForm := false
		for _, f := range fields {
			if strings.Contains(f, "=") {
				funcForm = true
			}
		}
		if !funcForm {
			if len(fields) != 1 {
				return "", false
			}
			u, err := ParseUnit(fields[0])
			if err != nil {
				return "", false
			}
			return "//esselint:unit " + u.String(), true
		}
		out := make([]string, 0, len(fields))
		for _, f := range fields {
			name, expr, found := strings.Cut(f, "=")
			if !found || name == "" {
				return "", false
			}
			u, err := ParseUnit(expr)
			if err != nil {
				return "", false
			}
			out = append(out, name+"="+u.String())
		}
		return "//esselint:unit " + strings.Join(out, " "), true
	}
	return "", false
}

func joinFields(fields []string) string {
	if len(fields) == 0 {
		return ""
	}
	return " " + strings.Join(fields, " ")
}

// CollectDirectives parses every suppression directive in the packages,
// in file/position order.
func CollectDirectives(pkgs []*Package) []Directive {
	var out []Directive
	for _, pkg := range pkgs {
		for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//esselint:")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						continue
					}
					kind := fields[0]
					if kind != "allow" && kind != "allowfile" {
						continue
					}
					d := Directive{
						Pos:  pkg.Fset.Position(c.Pos()),
						Kind: kind,
					}
					if len(fields) > 1 {
						d.Analyzer = fields[1]
					}
					if len(fields) > 2 {
						d.Reason = strings.Join(fields[2:], " ")
					}
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out
}

// AuditDirectives validates the collected directives against the known
// analyzer names and returns one problem string per bad directive: a
// missing analyzer token, an unknown (misspelled) analyzer name, or a
// missing reason. An empty return means the suppression set is clean.
func AuditDirectives(dirs []Directive, analyzers []*Analyzer) []string {
	known := map[string]bool{"all": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var problems []string
	for _, d := range dirs {
		switch {
		case d.Analyzer == "":
			problems = append(problems,
				fmt.Sprintf("%s: //esselint:%s names no analyzer", d.Pos, d.Kind))
		case !known[d.Analyzer]:
			problems = append(problems,
				fmt.Sprintf("%s: //esselint:%s names unknown analyzer %q (known: %s)",
					d.Pos, d.Kind, d.Analyzer, knownNames(analyzers)))
		case d.Reason == "":
			problems = append(problems,
				fmt.Sprintf("%s: //esselint:%s %s has no reason; every suppression must say why",
					d.Pos, d.Kind, d.Analyzer))
		}
	}
	return problems
}

func knownNames(analyzers []*Analyzer) string {
	names := make([]string, 0, len(analyzers)+1)
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	names = append(names, "all")
	return strings.Join(names, ", ")
}

// AuditUnusedDirectives cross-checks the directives against an actual
// run: a directive that no longer suppresses any finding is dead weight
// that silently licenses a future regression, so the audit retires it.
// diags must come from RunAnalyzersAll (suppressed findings included).
// Directives in _test.go files are exempt — several analyzers skip
// test files entirely, so absence of a finding there proves nothing.
func AuditUnusedDirectives(dirs []Directive, diags []Diagnostic) []string {
	matches := func(d Directive) bool {
		for _, g := range diags {
			if !g.Suppressed || g.Pos.Filename != d.Pos.Filename {
				continue
			}
			if d.Analyzer != "all" && d.Analyzer != g.Analyzer {
				continue
			}
			if d.Kind == "allowfile" {
				return true
			}
			// An allow directive covers its own line and the line below.
			if g.Pos.Line == d.Pos.Line || g.Pos.Line == d.Pos.Line+1 {
				return true
			}
		}
		return false
	}
	var problems []string
	for _, d := range dirs {
		if d.Analyzer == "" || strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		if !matches(d) {
			problems = append(problems,
				fmt.Sprintf("%s: //esselint:%s %s suppresses no current finding; retire it",
					d.Pos, d.Kind, d.Analyzer))
		}
	}
	return problems
}
