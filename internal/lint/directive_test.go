package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDirectivePlacement asserts the three placement forms all
// suppress: same line, line above, and allowfile on the last line of a
// file. The fixture has three floatcmp violations and zero want
// comments, so any surviving diagnostic fails the run.
func TestDirectivePlacement(t *testing.T) {
	RunFixture(t, FloatCmp, "directives")
}

// TestRunAnalyzersAllKeepsSuppressed pins the -json contract: the
// unfiltered run returns the suppressed findings, marked.
func TestRunAnalyzersAllKeepsSuppressed(t *testing.T) {
	pkg, err := LoadDir(".", filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatal(err)
	}
	unscoped := *FloatCmp
	unscoped.Scope = nil
	all, err := RunAnalyzersAll([]*Package{pkg}, []*Analyzer{&unscoped})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("got %d diagnostics, want 3 (all suppressed)", len(all))
	}
	for _, d := range all {
		if !d.Suppressed {
			t.Errorf("diagnostic not marked suppressed: %s", d)
		}
	}
	filtered, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{&unscoped})
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 0 {
		t.Fatalf("RunAnalyzers returned %d diagnostics, want 0", len(filtered))
	}
}

// TestCollectDirectives checks parsing of kind, analyzer and reason,
// including the allowfile directive sitting on a file's last line.
func TestCollectDirectives(t *testing.T) {
	pkg, err := LoadDir(".", filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatal(err)
	}
	dirs := CollectDirectives([]*Package{pkg})
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3: %v", len(dirs), dirs)
	}
	kinds := map[string]int{}
	for _, d := range dirs {
		kinds[d.Kind]++
		if d.Analyzer != "floatcmp" {
			t.Errorf("%s: analyzer = %q, want floatcmp", d.Pos, d.Analyzer)
		}
		if !strings.Contains(d.Reason, "suppression") && !strings.Contains(d.Reason, "last line") {
			t.Errorf("%s: reason %q not parsed", d.Pos, d.Reason)
		}
	}
	if kinds["allow"] != 2 || kinds["allowfile"] != 1 {
		t.Errorf("kind counts = %v, want 2 allow + 1 allowfile", kinds)
	}
}

// TestAuditDirectives covers the audit failure modes: a misspelled
// analyzer name, a missing reason, and a directive with no analyzer
// token at all.
func TestAuditDirectives(t *testing.T) {
	dirs := []Directive{
		{Kind: "allow", Analyzer: "floatcmp", Reason: "deliberate exact comparison"},
		{Kind: "allow", Analyzer: "all", Reason: "blanket, but reasoned"},
		{Kind: "allow", Analyzer: "flaotcmp", Reason: "typo in the name"},
		{Kind: "allow", Analyzer: "divguard"},
		{Kind: "allowfile"},
	}
	problems := AuditDirectives(dirs, Analyzers())
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	wantSubstr := []string{"unknown analyzer", "no reason", "names no analyzer"}
	for _, sub := range wantSubstr {
		found := false
		for _, p := range problems {
			if strings.Contains(p, sub) {
				found = true
			}
		}
		if !found {
			t.Errorf("no audit problem mentions %q:\n%s", sub, strings.Join(problems, "\n"))
		}
	}
}
