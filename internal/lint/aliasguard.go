package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AliasGuard flags calls to the in-place linalg kernels whose
// destination may alias a source argument. mulInto and friends read
// their sources while writing dst row by row; handing the same matrix
// (or a row view of it) as both corrupts the product mid-computation —
// silently, because the shapes still agree.
//
// The check is syntactic but targeted: a conflict is reported when the
// two argument expressions are spelled identically, or when they share
// a root variable and one of them IS that root (a matrix aliases every
// view of itself: u and u.Row(j) overlap, s.A and s.B do not).
//
// Kernels that are elementwise-safe by construction (AddInPlace,
// ScaleInPlace, Axpy, CopyFrom) are deliberately absent from the table.
var AliasGuard = &Analyzer{
	Name: "aliasguard",
	Doc: "flag in-place linalg kernel calls (mulInto, mulRange, applyJacobiRotation, OuterAdd, " +
		"SetCol, Col) where the destination may alias a source argument",
	Scope: underInternalOrCmd,
	Run:   runAliasGuard,
}

// aliasConflict names one pair of argument positions that must not
// alias. Position -1 is the method receiver.
type aliasConflict struct{ a, b int }

// aliasKernels maps function names in internal/linalg to their
// conflicting argument pairs.
var aliasKernels = map[string][]aliasConflict{
	"mulInto":             {{0, 1}, {0, 2}}, // mulInto(out, a, b)
	"mulRange":            {{0, 1}, {0, 2}}, // mulRange(out, a, b, lo, hi)
	"applyJacobiRotation": {{0, 1}},         // applyJacobiRotation(w, v, ...)
	"OuterAdd":            {{0, 2}, {0, 3}}, // OuterAdd(m, alpha, x, y)
	"SetCol":              {{-1, 1}},        // (m *Dense).SetCol(j, v)
	"Col":                 {{-1, 0}},        // (m *Dense).Col(dst, j)
}

const linalgPathSuffix = "internal/linalg"

func runAliasGuard(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkAliasCall(pass, call)
			return true
		})
	}
	return nil
}

func checkAliasCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	p := fn.Pkg().Path()
	if p != linalgPathSuffix && !strings.HasSuffix(p, "/"+linalgPathSuffix) {
		return
	}
	conflicts, ok := aliasKernels[fn.Name()]
	if !ok {
		return
	}
	operand := func(idx int) ast.Expr {
		if idx == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		if idx < len(call.Args) {
			return call.Args[idx]
		}
		return nil
	}
	for _, c := range conflicts {
		x, y := operand(c.a), operand(c.b)
		if x == nil || y == nil {
			continue
		}
		if mayAlias(pass, x, y) {
			pass.Reportf(call.Pos(),
				"%s call passes %s and %s, which may alias; the kernel writes its destination while reading sources — copy one side first (//esselint:allow aliasguard <reason> if overlap is impossible)",
				fn.Name(), exprSnippet(x), exprSnippet(y))
		}
	}
}

// calleeFunc resolves the called function or method, if it is a named
// one.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// mayAlias reports whether x and y can refer to overlapping storage:
// identical spelling, or same root variable with one side being the
// bare root (the whole object aliases any of its views).
func mayAlias(pass *Pass, x, y ast.Expr) bool {
	x, y = ast.Unparen(x), ast.Unparen(y)
	rx, ry := rootIdent(x), rootIdent(y)
	if rx == nil || ry == nil {
		return false
	}
	ox, _ := pass.Info.Uses[rx].(*types.Var)
	oy, _ := pass.Info.Uses[ry].(*types.Var)
	if ox == nil || oy == nil || ox != oy {
		return false
	}
	if types.ExprString(x) == types.ExprString(y) {
		return true
	}
	_, xIsRoot := x.(*ast.Ident)
	_, yIsRoot := y.(*ast.Ident)
	return xIsRoot || yIsRoot
}
