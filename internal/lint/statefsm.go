package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// StateFSM (DESIGN §7 rule 20) checks every assignment of a lifecycle
// enum against its declared transition table (fsmfacts.go): an enum
// type carrying an //esselint:fsm directive (or an adjacent
// transitions map var) promises that its value only ever moves along
// declared arcs, and the analyzer proves each constant store keeps
// that promise on every path the dataflow can see.
//
// The fact is "variable (or ident-rooted field chain) is currently one
// of these states", a must-analysis: facts meet by state-set union but
// key intersection, so a state is only claimed where every incoming
// path established it. Facts come from constant stores, composite
// literal fields, zero-value declarations, `== constant` branch edges,
// and switch case clauses (the canonical dispatch shape: `case
// stDispatch:` pins the tag to the clause's values, so the stage
// advance inside it is genuinely checked). Anything that could change
// the value behind the analyzer's back — address-taken variables,
// closure-captured roots, field chains across dynamic calls, calls
// mentioning the root — drops the fact instead of guessing.
//
// Reported here: a constant store s -> t with no declared s -> t arc
// (self-stores s -> s are construction-idempotent and exempt), a store
// moving the enum out of a terminal state (one with no declared
// successors), and — in the declaring package only — the table-level
// problems fsmfacts collected: malformed or unknown directive states,
// members never wired into the table, states unreachable from the
// initial state, and drift between the directive and the runtime
// transitions map.
//
// Soundness gaps, stated plainly: stores through pointers, slices and
// maps are invisible (only ident-rooted chains carry facts); a store
// whose prior state the dataflow cannot prove is not checked at all;
// switches containing fallthrough forfeit clause refinement; and the
// analysis is per-function — a lifecycle threaded through calls is
// checked only around each call, not across it.
var StateFSM = &Analyzer{
	Name:  "statefsm",
	Doc:   "check lifecycle enum assignments against their declared //esselint:fsm transition tables",
	Scope: underInternalOrCmd,
	Run:   runStateFSM,
}

func runStateFSM(pass *Pass) error {
	if pass.Prog == nil || len(pass.Prog.FSMTables) == 0 {
		return nil
	}
	// Table-level problems surface once, in the declaring package.
	keys := make([]string, 0, len(pass.Prog.FSMTables))
	for k := range pass.Prog.FSMTables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := pass.Prog.FSMTables[k]
		if t.PkgPath != pass.Path {
			continue
		}
		for _, pr := range t.Problems {
			pass.Reportf(pr.Pos, "%s", pr.Msg)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, fn := range funcNodesWithin(fd) {
				checkFSMPaths(pass, fn)
			}
		}
	}
	return nil
}

// fsmKey identifies one tracked value: a variable, or a field chain
// rooted at one (`cs.stage` → root cs, path ".stage").
type fsmKey struct {
	root *types.Var
	path string
}

// fsmVal is the fact: the value is provably one of states.
type fsmVal struct {
	table  *FSMTable
	states map[string]bool
}

// fsmFact maps tracked keys to their facts; nil is Top. State sets are
// treated as immutable — refinement builds new sets.
type fsmFact map[fsmKey]fsmVal

func (f fsmFact) clone() fsmFact {
	m := make(fsmFact, len(f))
	for k, v := range f {
		m[k] = v
	}
	return m
}

// killSubtree removes key and every field chain under it.
func (f fsmFact) killSubtree(key fsmKey) {
	for k := range f {
		if k.root == key.root && (k.path == key.path || strings.HasPrefix(k.path, key.path+".")) {
			delete(f, k)
		}
	}
}

// caseRefine pins a switch tag to a clause's constant values; replay
// applies it at the clause's leading case-expression nodes.
type caseRefine struct {
	tag    ast.Expr
	values map[string]bool
}

type fsmFlow struct {
	pass    *Pass
	tainted map[*types.Var]bool
	caseOf  map[ast.Node]caseRefine
}

func newFSMFlow(pass *Pass, fn ast.Node) *fsmFlow {
	ff := &fsmFlow{pass: pass, tainted: map[*types.Var]bool{}, caseOf: map[ast.Node]caseRefine{}}
	body := funcBody(fn)
	// Taint roots the analysis must not claim facts for: address-taken
	// variables and anything a nested literal touches (the closure may
	// mutate it at any call).
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if root := rootIdent(ast.Unparen(v.X)); root != nil {
					if rv, ok := pass.Info.Uses[root].(*types.Var); ok {
						ff.tainted[rv] = true
					}
				}
			}
		case *ast.FuncLit:
			if v == fn {
				return true
			}
			ast.Inspect(v.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if rv, ok := pass.Info.Uses[id].(*types.Var); ok {
						ff.tainted[rv] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})
	// Clause refinement: for each fallthrough-free switch over a
	// resolvable tag, pin the tag to the clause's constant values at
	// the case-expression nodes (which lead the clause's block).
	ast.Inspect(body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		if key, table := ff.resolveKey(sw.Tag); key.root == nil || table == nil {
			return true
		}
		hasFallthrough := false
		ast.Inspect(sw.Body, func(m ast.Node) bool {
			if br, ok := m.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				hasFallthrough = true
			}
			return true
		})
		if hasFallthrough {
			return true
		}
		for _, c := range sw.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok || len(cc.List) == 0 {
				continue
			}
			values := map[string]bool{}
			for _, e := range cc.List {
				tv, ok := ff.pass.Info.Types[e]
				if !ok || tv.Value == nil {
					values = nil
					break
				}
				values[tv.Value.ExactString()] = true
			}
			if values == nil {
				continue
			}
			for _, e := range cc.List {
				ff.caseOf[e] = caseRefine{tag: sw.Tag, values: values}
			}
		}
		return true
	})
	return ff
}

// resolveKey resolves an expression to a tracked key and, when the
// expression's static type is a table-carrying enum, its table.
func (ff *fsmFlow) resolveKey(e ast.Expr) (fsmKey, *FSMTable) {
	var path []string
	cur := ast.Unparen(e)
	for {
		if sel, ok := cur.(*ast.SelectorExpr); ok {
			path = append(path, sel.Sel.Name)
			cur = ast.Unparen(sel.X)
			continue
		}
		break
	}
	id, ok := cur.(*ast.Ident)
	if !ok {
		return fsmKey{}, nil
	}
	v := identVar(ff.pass.Info, id)
	if v == nil || ff.tainted[v] {
		return fsmKey{}, nil
	}
	// Package-level roots are shared state; any call may rewrite them.
	if ff.pass.Pkg != nil && v.Parent() == ff.pass.Pkg.Scope() {
		return fsmKey{}, nil
	}
	key := fsmKey{root: v}
	for i := len(path) - 1; i >= 0; i-- {
		key.path += "." + path[i]
	}
	return key, ff.tableFor(e)
}

// tableFor returns the FSM table of e's static type, or nil.
func (ff *fsmFlow) tableFor(e ast.Expr) *FSMTable {
	var t types.Type
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v := identVar(ff.pass.Info, id); v != nil {
			t = v.Type()
		}
	}
	if t == nil {
		tv, ok := ff.pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return nil
		}
		t = tv.Type
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	return ff.pass.Prog.FSMTables[obj.Pkg().Path()+"."+obj.Name()]
}

func (ff *fsmFlow) Boundary() Fact { return fsmFact{} }
func (ff *fsmFlow) Top() Fact      { return fsmFact(nil) }

func (ff *fsmFlow) Transfer(b *Block, in Fact) Fact {
	st, _ := in.(fsmFact)
	if st == nil {
		return fsmFact(nil)
	}
	out := st.clone()
	for _, n := range b.Nodes {
		ff.replay(n, out, nil)
	}
	return out
}

// FlowEdge refines facts from `key == Const` / `key != Const` branch
// conditions, the if-shaped mirror of clause refinement.
func (ff *fsmFlow) FlowEdge(e *Edge, out Fact) Fact {
	st, _ := out.(fsmFact)
	if st == nil || e.Cond == nil {
		return out
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	keyExpr, constExpr := bin.X, bin.Y
	tv, ok := ff.pass.Info.Types[constExpr]
	if !ok || tv.Value == nil {
		keyExpr, constExpr = constExpr, keyExpr
		if tv, ok = ff.pass.Info.Types[constExpr]; !ok || tv.Value == nil {
			return out
		}
	}
	key, table := ff.resolveKey(keyExpr)
	if key.root == nil || table == nil {
		return out
	}
	val := tv.Value.ExactString()
	equalArm := (bin.Op == token.EQL && e.Branch) || (bin.Op == token.NEQ && !e.Branch)
	next := st.clone()
	if equalArm {
		set := map[string]bool{val: true}
		if prev, ok := next[key]; ok && !prev.states[val] {
			set = map[string]bool{} // contradiction: path is infeasible
		}
		next[key] = fsmVal{table: table, states: set}
		return next
	}
	prev, ok := next[key]
	if !ok || !prev.states[val] {
		return out
	}
	set := make(map[string]bool, len(prev.states))
	for s := range prev.states {
		if s != val {
			set[s] = true
		}
	}
	next[key] = fsmVal{table: table, states: set}
	return next
}

// Meet intersects keys (must-knowledge) and unions state sets.
func (ff *fsmFlow) Meet(a, b Fact) Fact {
	sa, _ := a.(fsmFact)
	sb, _ := b.(fsmFact)
	if sa == nil {
		return sb
	}
	if sb == nil {
		return sa
	}
	m := fsmFact{}
	for k, va := range sa {
		vb, ok := sb[k]
		if !ok {
			continue
		}
		if statesEqual(va.states, vb.states) {
			m[k] = va
			continue
		}
		set := make(map[string]bool, len(va.states)+len(vb.states))
		for s := range va.states {
			set[s] = true
		}
		for s := range vb.states {
			set[s] = true
		}
		m[k] = fsmVal{table: va.table, states: set}
	}
	return m
}

func (ff *fsmFlow) Equal(a, b Fact) bool {
	sa, _ := a.(fsmFact)
	sb, _ := b.(fsmFact)
	if (sa == nil) != (sb == nil) || len(sa) != len(sb) {
		return false
	}
	for k, va := range sa {
		vb, ok := sb[k]
		if !ok || !statesEqual(va.states, vb.states) {
			return false
		}
	}
	return true
}

func statesEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if !b[s] {
			return false
		}
	}
	return true
}

// replay pushes one block node through the fact map, reporting through
// rep when non-nil.
func (ff *fsmFlow) replay(n ast.Node, st fsmFact, rep func(pos token.Pos, format string, args ...any)) {
	info := ff.pass.Info

	// Clause refinement: the case expressions lead their clause's block.
	if refine, ok := ff.caseOf[n]; ok {
		if key, table := ff.resolveKey(refine.tag); key.root != nil && table != nil {
			set := refine.values
			if prev, live := st[key]; live {
				inter := map[string]bool{}
				for s := range set {
					if prev.states[s] {
						inter[s] = true
					}
				}
				set = inter
			}
			st[key] = fsmVal{table: table, states: set}
		}
		return
	}

	// Conservative call kills first: a dynamic call (closure, function
	// value, interface method) may mutate anything reachable through
	// captures, so field-chain facts die; a static call kills the
	// field chains of every root it mentions.
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := StaticCallee(info, call); callee == nil {
			// A type conversion T(x) is not a call at all.
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return true
			}
			for k := range st {
				if k.path != "" {
					delete(st, k)
				}
			}
			return true
		}
		mentioned := map[*types.Var]bool{}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						mentioned[v] = true
					}
				}
				return true
			})
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if root := rootIdent(ast.Unparen(sel.X)); root != nil {
				if v, ok := info.Uses[root].(*types.Var); ok {
					mentioned[v] = true
				}
			}
		}
		for k := range st {
			if k.path != "" && mentioned[k.root] {
				delete(st, k)
			}
		}
		return true
	})

	switch v := n.(type) {
	case *ast.AssignStmt:
		if len(v.Lhs) == len(v.Rhs) {
			for i, lhs := range v.Lhs {
				ff.assign(st, lhs, v.Rhs[i], rep)
			}
		} else {
			for _, lhs := range v.Lhs {
				if key, _ := ff.resolveKey(lhs); key.root != nil {
					st.killSubtree(key)
				} else {
					ff.killOpaque(st, lhs)
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == len(vs.Names) && len(vs.Values) > 0 {
				for i, name := range vs.Names {
					ff.assign(st, name, vs.Values[i], rep)
				}
				continue
			}
			if len(vs.Values) != 0 {
				continue
			}
			// `var l LeaseState`: the zero value is the initial state.
			for _, name := range vs.Names {
				key, table := ff.resolveKey(name)
				if key.root == nil || table == nil {
					continue
				}
				if _, ok := table.Members["0"]; ok {
					st[key] = fsmVal{table: table, states: map[string]bool{"0": true}}
				}
			}
		}
	case *ast.IncDecStmt:
		if key, _ := ff.resolveKey(v.X); key.root != nil {
			st.killSubtree(key)
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{v.Key, v.Value} {
			if e == nil {
				continue
			}
			if key, _ := ff.resolveKey(e); key.root != nil {
				st.killSubtree(key)
			}
		}
	}
}

// killOpaque handles a store the analysis cannot name: a pointer or
// index write may alias any tracked chain, so everything dies.
func (ff *fsmFlow) killOpaque(st fsmFact, lhs ast.Expr) {
	switch ast.Unparen(lhs).(type) {
	case *ast.StarExpr, *ast.IndexExpr:
		for k := range st {
			delete(st, k)
		}
	}
}

// assign pushes one lhs = rhs pair through the fact map, checking
// constant enum stores against the table.
func (ff *fsmFlow) assign(st fsmFact, lhs, rhs ast.Expr, rep func(pos token.Pos, format string, args ...any)) {
	key, table := ff.resolveKey(lhs)
	if key.root == nil {
		ff.killOpaque(st, lhs)
		return
	}
	prev, hadPrev := st[key]
	st.killSubtree(key)

	// Composite literal: gen facts for constant enum fields.
	if lit, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
		ff.genLiteralFields(st, key, lit)
		return
	}

	if table == nil {
		return
	}
	tv, ok := ff.pass.Info.Types[rhs]
	if !ok || tv.Value == nil {
		return // unknown value: fact stays dead
	}
	val := tv.Value.ExactString()
	if hadPrev && rep != nil {
		for _, s := range sortedKeys(prev.states) {
			if s == val || table.Trans[s][val] {
				continue
			}
			if table.Terminal(s) {
				rep(lhs.Pos(), "store moves %s out of terminal state %s (no declared successors in its //esselint:fsm table); "+
					"a finished lifecycle must not be revived", table.TypeName, table.MemberName(s))
			} else {
				rep(lhs.Pos(), "undeclared lifecycle transition %s -> %s for %s; "+
					"declare the arc in its //esselint:fsm table or fix the assignment",
					table.MemberName(s), table.MemberName(val), table.TypeName)
			}
			break
		}
	}
	st[key] = fsmVal{table: table, states: map[string]bool{val: true}}
}

// genLiteralFields records the constant enum fields of a struct
// composite literal as facts under the assigned key.
func (ff *fsmFlow) genLiteralFields(st fsmFact, base fsmKey, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		fieldID, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		table := ff.tableFor(kv.Value)
		if table == nil {
			continue
		}
		tv, ok := ff.pass.Info.Types[kv.Value]
		if !ok || tv.Value == nil {
			continue
		}
		sub := fsmKey{root: base.root, path: base.path + "." + fieldID.Name}
		st[sub] = fsmVal{table: table, states: map[string]bool{tv.Value.ExactString(): true}}
	}
}

// checkFSMPaths solves the lifecycle dataflow over one function node
// and reports undeclared transitions and terminal-state revivals.
func checkFSMPaths(pass *Pass, fn ast.Node) {
	if funcBody(fn) == nil {
		return
	}
	ff := newFSMFlow(pass, fn)
	cfg := BuildCFG(fn)
	res := Forward(cfg, ff)

	type finding struct {
		pos token.Pos
		msg string
	}
	flagged := map[finding]bool{}
	for _, b := range cfg.Blocks {
		in, _ := res.In[b].(fsmFact)
		if in == nil {
			continue
		}
		st := in.clone()
		for _, n := range b.Nodes {
			ff.replay(n, st, func(pos token.Pos, format string, args ...any) {
				f := finding{pos: pos, msg: format}
				if !flagged[f] {
					flagged[f] = true
					pass.Reportf(pos, format, args...)
				}
			})
		}
	}
}
