package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func buildTestCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// checkWellFormed asserts edge symmetry and block membership.
func checkWellFormed(t *testing.T, cfg *CFG) {
	t.Helper()
	inBlocks := map[*Block]bool{}
	for _, b := range cfg.Blocks {
		inBlocks[b] = true
	}
	if !inBlocks[cfg.Entry] || !inBlocks[cfg.Exit] {
		t.Fatal("entry/exit not in Blocks")
	}
	for _, b := range cfg.Blocks {
		for _, e := range b.Succs {
			if e.From != b || !inBlocks[e.To] {
				t.Fatalf("bad succ edge on block %d", b.Index)
			}
			found := false
			for _, p := range e.To.Preds {
				if p == e {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from Preds", e.From.Index, e.To.Index)
			}
		}
	}
}

func TestCFGIfElse(t *testing.T) {
	cfg := buildTestCFG(t, `
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`)
	checkWellFormed(t, cfg)
	// Both returns must reach Exit; the branch must carry cond-labelled
	// edges in both polarities.
	if len(cfg.Exit.Preds) != 2 {
		t.Fatalf("Exit has %d preds, want 2", len(cfg.Exit.Preds))
	}
	var sawTrue, sawFalse bool
	for _, b := range cfg.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil {
				if e.Branch {
					sawTrue = true
				} else {
					sawFalse = true
				}
			}
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatalf("missing branch-labelled edges: true=%v false=%v", sawTrue, sawFalse)
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg := buildTestCFG(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	checkWellFormed(t, cfg)
	back := false
	for _, b := range cfg.Blocks {
		for _, e := range b.Succs {
			if e.To.Index < b.Index && e.To != cfg.Entry {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("loop produced no back edge")
	}
}

func TestCFGRangeAndBreak(t *testing.T) {
	cfg := buildTestCFG(t, `
func f(xs []int) int {
	for _, x := range xs {
		if x < 0 {
			break
		}
	}
	return len(xs)
}`)
	checkWellFormed(t, cfg)
	if len(cfg.Exit.Preds) == 0 {
		t.Fatal("exit unreachable")
	}
}

func TestCFGSelectAndDefer(t *testing.T) {
	cfg := buildTestCFG(t, `
func f(a, b chan int) int {
	defer close(a)
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}`)
	checkWellFormed(t, cfg)
	if len(cfg.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(cfg.Defers))
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	cfg := buildTestCFG(t, `
func f(c bool) int {
	if !c {
		panic("bad")
	}
	return 1
}`)
	checkWellFormed(t, cfg)
	// The panic block must be wired to Exit (it terminates the
	// function), and the return also reaches Exit.
	if len(cfg.Exit.Preds) < 2 {
		t.Fatalf("Exit has %d preds, want >= 2 (panic and return)", len(cfg.Exit.Preds))
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	cfg := buildTestCFG(t, `
func f(m [][]int) int {
	s := 0
outer:
	for i := range m {
		for j := range m[i] {
			if m[i][j] == 0 {
				continue outer
			}
			s++
			_ = j
		}
		_ = i
	}
	return s
}`)
	checkWellFormed(t, cfg)
	if len(cfg.Exit.Preds) == 0 {
		t.Fatal("exit unreachable")
	}
}

// TestWalkBlockNodePrunes asserts the pruned walk skips range bodies,
// select clauses and function-literal bodies but still visits the
// pruned node itself.
func TestWalkBlockNodePrunes(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "walk_test_src.go", `package p
func f(xs []int, c chan int) {
	for _, x := range xs {
		inner(x)
	}
	g := func() { litOnly() }
	g()
}
func inner(int) {}
func litOnly()  {}
`, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	var sawRange, sawLit, sawInner, sawLitOnly bool
	WalkBlockNode(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			sawRange = true
		case *ast.FuncLit:
			sawLit = true
		case *ast.Ident:
			if v.Name == "inner" {
				sawInner = true
			}
			if v.Name == "litOnly" {
				sawLitOnly = true
			}
		}
		return true
	})
	if !sawRange || !sawLit {
		t.Errorf("pruned nodes not visited: range=%v lit=%v", sawRange, sawLit)
	}
	if sawInner {
		t.Error("range body was not pruned")
	}
	if sawLitOnly {
		t.Error("function-literal body was not pruned")
	}
}
