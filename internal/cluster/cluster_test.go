package cluster

import "testing"

func TestMITComposition(t *testing.T) {
	c := MIT()
	if len(c.Nodes) != 117 {
		t.Fatalf("MIT has %d nodes, want 117", len(c.Nodes))
	}
	if c.TotalCores() != 240 {
		t.Fatalf("MIT cores = %d, want 240", c.TotalCores())
	}
	if c.NFS.BandwidthMBps != 1250 {
		t.Fatalf("NFS bandwidth = %v, want 1250 (10 Gbit/s)", c.NFS.BandwidthMBps)
	}
	opt250, opt285 := 0, 0
	for _, n := range c.Nodes {
		switch {
		case n.Cores == 2 && n.Speed == 1.0:
			opt250++
		case n.Cores == 4 && n.Speed > 1.0:
			opt285++
		default:
			t.Fatalf("unexpected node %+v", n)
		}
	}
	if opt250 != 114 || opt285 != 3 {
		t.Fatalf("node mix: %d Opteron 250, %d Opteron 285", opt250, opt285)
	}
}

func TestMITAvailableTrims(t *testing.T) {
	c := MITAvailable(210)
	if c.TotalCores() != 210 {
		t.Fatalf("available = %d", c.TotalCores())
	}
	// Trimming must never exceed the request even with multi-core nodes.
	for _, want := range []int{1, 3, 239, 240} {
		if got := MITAvailable(want).TotalCores(); got != want {
			t.Fatalf("MITAvailable(%d) = %d cores", want, got)
		}
	}
}

func TestCoreListExpansion(t *testing.T) {
	c := &Cluster{Nodes: []Node{
		{Name: "a", Cores: 2, Speed: 1},
		{Name: "b", Cores: 1, Speed: 2},
	}}
	cores := c.CoreList()
	if len(cores) != 3 {
		t.Fatalf("core list = %d", len(cores))
	}
	if cores[0].Node != 0 || cores[2].Node != 1 {
		t.Fatal("core-to-node mapping wrong")
	}
	if cores[2].Speed != 2 {
		t.Fatal("core speed not inherited from node")
	}
	names := map[string]bool{}
	for _, cr := range cores {
		if names[cr.Name] {
			t.Fatalf("duplicate core name %q", cr.Name)
		}
		names[cr.Name] = true
	}
}
