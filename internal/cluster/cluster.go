// Package cluster describes the compute platform of the paper's Section
// 5.2: the MIT home cluster (114 dual-socket Opteron 250 nodes plus a
// few Opteron 285 replacements), its NFS fileserver with a 10 Gbit/s
// uplink, and per-node local disks. The description feeds the
// discrete-event scheduler simulation in internal/sched, which is the
// stdlib substitute for running the real SGE/Condor workload.
package cluster

import "fmt"

// Node is one compute host.
type Node struct {
	Name string
	// Cores is the number of schedulable cores.
	Cores int
	// Speed is the relative compute speed; 1.0 is the local Opteron 250
	// baseline that the paper's Table 1 "local" row uses.
	Speed float64
	// LocalDiskMBps is the local scratch-disk bandwidth.
	LocalDiskMBps float64
}

// NFS models the shared fileserver as a processor-sharing resource: all
// concurrent transfers split the uplink bandwidth evenly.
type NFS struct {
	// BandwidthMBps is the server uplink (10 Gbit/s ≈ 1250 MB/s).
	BandwidthMBps float64
}

// Cluster is a set of nodes behind one shared fileserver.
type Cluster struct {
	Nodes []Node
	NFS   NFS
}

// TotalCores sums cores over all nodes.
func (c *Cluster) TotalCores() int {
	n := 0
	for _, node := range c.Nodes {
		n += node.Cores
	}
	return n
}

// CoreList expands the cluster into per-core slots (node speed attached),
// the granularity at which SGE and Condor schedule singleton jobs.
func (c *Cluster) CoreList() []Core {
	var cores []Core
	for ni, node := range c.Nodes {
		for k := 0; k < node.Cores; k++ {
			cores = append(cores, Core{
				Node:  ni,
				Name:  fmt.Sprintf("%s/c%d", node.Name, k),
				Speed: node.Speed,
			})
		}
	}
	return cores
}

// Core is one schedulable core slot.
type Core struct {
	Node  int
	Name  string
	Speed float64
}

// MIT returns the paper's home cluster: 114 dual-socket single-core
// Opteron 250 nodes (228 cores), 3 dual-socket dual-core Opteron 285
// replacement nodes (12 cores), and a 10 Gbit/s NFS fileserver. The head
// node is excluded from the worker pool (it hosts the master script and
// the diff/SVD stages).
func MIT() *Cluster {
	c := &Cluster{NFS: NFS{BandwidthMBps: 1250}}
	for i := 0; i < 114; i++ {
		c.Nodes = append(c.Nodes, Node{
			Name:          fmt.Sprintf("opt250-%03d", i),
			Cores:         2,
			Speed:         1.0,
			LocalDiskMBps: 60,
		})
	}
	for i := 0; i < 3; i++ {
		c.Nodes = append(c.Nodes, Node{
			Name:          fmt.Sprintf("opt285-%d", i),
			Cores:         4,
			Speed:         1.08, // 2.6 GHz vs 2.4 GHz baseline
			LocalDiskMBps: 60,
		})
	}
	return c
}

// MITAvailable returns the MIT cluster trimmed to the roughly 210 cores
// that were free during the paper's timing runs ("about 210 of the 240
// cores were available - the rest were in use by other users").
func MITAvailable(cores int) *Cluster {
	full := MIT()
	out := &Cluster{NFS: full.NFS}
	remaining := cores
	for _, n := range full.Nodes {
		if remaining <= 0 {
			break
		}
		take := n.Cores
		if take > remaining {
			take = remaining
		}
		n.Cores = take
		out.Nodes = append(out.Nodes, n)
		remaining -= take
	}
	return out
}
