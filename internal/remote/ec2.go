package remote

import (
	"math"

	"esse/internal/sched"
)

// InstanceType is one EC2 virtual machine flavour (Table 2).
type InstanceType struct {
	Name      string
	Processor string
	// Cores is the usable core count; the paper notes m1.small "appears
	// as 1 core but is in fact limited to 50% CPU", hence 0.5.
	Cores float64
	// ComputeSpeed scales CPU-bound work relative to the local baseline.
	ComputeSpeed float64
	// PertOverhead multiplies pert time (virtualized I/O penalty).
	PertOverhead float64
	// HourlyUSD is the 2009 on-demand price.
	HourlyUSD float64
}

// PertTime returns the worst-of-batch pert runtime with every core of
// the instance running a copy concurrently (how Table 2 was measured).
func (it InstanceType) PertTime(spec sched.JobSpec) float64 {
	return spec.PertCPU / it.ComputeSpeed * it.PertOverhead
}

// ModelTime returns the worst-of-batch pemodel runtime.
func (it InstanceType) ModelTime(spec sched.JobSpec) float64 {
	return spec.ModelCPU / it.ComputeSpeed
}

// EC2Instances returns the Table 2 catalog, calibrated to reproduce the
// measured worst-of-batch seconds:
//
//	type       processor         pert   pemodel  cores
//	m1.small   Opt DC 2.6GHz     13.53  2850.14  0.5
//	m1.large   Opt DC 2.0GHz      9.33  1817.13  2
//	m1.xlarge  Opt DC 2.0GHz      9.14  1860.81  4
//	c1.medium  Core2 2.33GHz      9.80  1008.11  2
//	c1.xlarge  Core2 2.33GHz      6.67  1030.42  8
func EC2Instances() []InstanceType {
	spec := sched.ESSEJob()
	mk := func(name, cpu string, pert, model, cores, hourly float64) InstanceType {
		speed := spec.ModelCPU / model
		overhead := pert * speed / spec.PertCPU
		return InstanceType{
			Name:         name,
			Processor:    cpu,
			Cores:        cores,
			ComputeSpeed: speed,
			PertOverhead: overhead,
			HourlyUSD:    hourly,
		}
	}
	return []InstanceType{
		mk("m1.small", "Opt DC 2.6GHz", 13.53, 2850.14, 0.5, 0.10),
		mk("m1.large", "Opt DC 2.0GHz", 9.33, 1817.13, 2, 0.40),
		mk("m1.xlarge", "Opt DC 2.0GHz", 9.14, 1860.81, 4, 0.80),
		mk("c1.medium", "Core2 2.33GHz", 9.80, 1008.11, 2, 0.20),
		mk("c1.xlarge", "Core2 2.33GHz", 6.67, 1030.42, 8, 0.80),
	}
}

// FindInstance returns the named instance type, or ok=false.
func FindInstance(name string) (InstanceType, bool) {
	for _, it := range EC2Instances() {
		if it.Name == name {
			return it, true
		}
	}
	return InstanceType{}, false
}

// CostModel holds the 2009 EC2 pricing the paper's worked example uses.
type CostModel struct {
	// TransferInPerGB / TransferOutPerGB are data movement prices.
	TransferInPerGB  float64
	TransferOutPerGB float64
	// ReservedFactor is how much cheaper reserved-instance CPU hours are
	// ("more than a factor of 3").
	ReservedFactor float64
}

// DefaultCostModel matches §5.4.2: $0.10/GB in, $0.17/GB out.
func DefaultCostModel() CostModel {
	return CostModel{TransferInPerGB: 0.10, TransferOutPerGB: 0.17, ReservedFactor: 3.2}
}

// CostBreakdown itemizes an EC2 ensemble bill.
type CostBreakdown struct {
	TransferInUSD  float64
	TransferOutUSD float64
	ComputeUSD     float64
	TotalUSD       float64
	BilledHours    float64
}

// Cost prices an ensemble run: inGB uploaded once, outGB downloaded,
// and wallHours of compute on `instances` machines of the given type.
// Amazon bills whole hours ("usage of 1 hour 1 sec counts as 2 hours"),
// so wall hours are rounded up per instance.
func (cm CostModel) Cost(inGB, outGB, wallHours float64, instances int, it InstanceType, reserved bool) CostBreakdown {
	billed := math.Ceil(wallHours - 1e-12)
	if billed < 1 && wallHours > 0 {
		billed = 1
	}
	rate := it.HourlyUSD
	if reserved {
		rate /= cm.ReservedFactor
	}
	b := CostBreakdown{
		TransferInUSD:  inGB * cm.TransferInPerGB,
		TransferOutUSD: outGB * cm.TransferOutPerGB,
		ComputeUSD:     billed * float64(instances) * rate,
		BilledHours:    billed * float64(instances),
	}
	b.TotalUSD = b.TransferInUSD + b.TransferOutUSD + b.ComputeUSD
	return b
}

// PaperCostExample reproduces the §5.4.2 worked example: "an ESSE
// calculation with 1.5GB input data, 960 ensemble members each sending
// back 11MB (for a total of 10.56GB) would cost
// 1.5×0.1 + 10.56×0.17 + 2(hr)×20×0.8 = $33.95".
func PaperCostExample() CostBreakdown {
	cm := DefaultCostModel()
	it, _ := FindInstance("c1.xlarge")
	outGB := 960 * 11.0 / 1000 // the paper works in decimal GB: 10.56
	return cm.Cost(1.5, outGB, 2, 20, it, false)
}
