package remote

import (
	"fmt"
	"math"
	"sort"

	"esse/internal/rng"
	"esse/internal/sched"
)

// This file simulates augmenting the home cluster with remote Grid sites
// (§5.3): "One needs to take care to assign a clearly separated block of
// ensemble members to these external Grid execution hosts to avoid
// overlaps", with per-site queue waits (no advance reservation) and the
// §5.3.3 observation that "the more disparate the hosts ... the more
// uneven the progress of the various remote clusters will be and
// perturbation 900 may very well finish well before number 700".

// SiteAllocation gives one site a core count, a queue-wait range and
// implicitly (via SimulateGridRun) a contiguous member block.
type SiteAllocation struct {
	Site  Site
	Cores int
	// QueueWaitMin/Max bound the uniform batch-queue delay (seconds)
	// before the site's block starts (zero for the dedicated home
	// cluster, hours for busy shared centers).
	QueueWaitMin, QueueWaitMax float64
}

// MemberCompletion records when one ensemble member finished and where.
type MemberCompletion struct {
	Index    int
	Site     string
	Finished float64 // seconds
}

// GridRunResult summarizes a multi-site ensemble execution.
type GridRunResult struct {
	Completions []MemberCompletion // indexed by member
	Makespan    float64
	// SiteMakespan is the last completion per site.
	SiteMakespan map[string]float64
	// Blocks records the [start, end) member block per site, in
	// allocation order.
	Blocks [][2]int
}

// SimulateGridRun distributes `members` jobs across the allocations in
// proportion to their effective throughput, as contiguous index blocks,
// and computes per-member completion times (waves on each site's cores
// after its queue wait). The model is deliberately analytic — the
// fine-grained DES lives in internal/sched; this answers the §5.3
// planning questions: who finishes when, how out-of-order, what a
// deadline harvests.
func SimulateGridRun(spec sched.JobSpec, members int, allocs []SiteAllocation, seed uint64) (*GridRunResult, error) {
	if members <= 0 {
		return nil, fmt.Errorf("remote: non-positive member count %d", members)
	}
	if len(allocs) == 0 {
		return nil, fmt.Errorf("remote: no site allocations")
	}
	random := rng.New(seed)

	// Split members proportionally to cores/jobTime throughput.
	thr := make([]float64, len(allocs))
	total := 0.0
	for i, a := range allocs {
		if a.Cores <= 0 {
			return nil, fmt.Errorf("remote: allocation %d has no cores", i)
		}
		jobTime := a.Site.PertTime(spec) + a.Site.ModelTime(spec)
		thr[i] = float64(a.Cores) / jobTime
		total += thr[i]
	}
	counts := make([]int, len(allocs))
	assigned := 0
	for i := range allocs {
		counts[i] = int(math.Floor(float64(members) * thr[i] / total))
		assigned += counts[i]
	}
	// Distribute the remainder to the highest-throughput sites.
	order := make([]int, len(allocs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return thr[order[a]] > thr[order[b]] })
	for r := 0; assigned < members; r++ {
		counts[order[r%len(order)]]++
		assigned++
	}

	res := &GridRunResult{
		Completions:  make([]MemberCompletion, members),
		SiteMakespan: make(map[string]float64),
	}
	start := 0
	for i, a := range allocs {
		block := counts[i]
		res.Blocks = append(res.Blocks, [2]int{start, start + block})
		wait := a.QueueWaitMin + (a.QueueWaitMax-a.QueueWaitMin)*random.Float64()
		jobTime := a.Site.PertTime(spec) + a.Site.ModelTime(spec)
		for m := 0; m < block; m++ {
			wave := m/a.Cores + 1
			fin := wait + float64(wave)*jobTime
			idx := start + m
			res.Completions[idx] = MemberCompletion{Index: idx, Site: a.Site.Name, Finished: fin}
			if fin > res.Makespan {
				res.Makespan = fin
			}
			if fin > res.SiteMakespan[a.Site.Name] {
				res.SiteMakespan[a.Site.Name] = fin
			}
		}
		start += block
	}
	return res, nil
}

// CompletedBy returns how many members finished by the deadline — the
// paper's point (3): late members "can be safely ignored provided they
// do not collectively represent a systematic hole in the statistical
// coverage".
func (r *GridRunResult) CompletedBy(deadline float64) int {
	n := 0
	for _, c := range r.Completions {
		if c.Finished <= deadline {
			n++
		}
	}
	return n
}

// OrderInversionFraction measures how out-of-order completions are: the
// fraction of member pairs (i < j) where j finished strictly before i.
// 0 means perfectly in order; disparate sites push it up.
func (r *GridRunResult) OrderInversionFraction() float64 {
	n := len(r.Completions)
	if n < 2 {
		return 0
	}
	inversions, pairs := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			if r.Completions[j].Finished < r.Completions[i].Finished {
				inversions++
			}
		}
	}
	return float64(inversions) / float64(pairs)
}

// CoverageHole reports whether the members missing at the deadline form
// a systematic block rather than a scattered set: it returns the largest
// fraction of any single site's block that is late. A value near 1 for a
// site means that site's whole block is missing — exactly the
// "systematic hole in the statistical coverage" the paper warns about.
func (r *GridRunResult) CoverageHole(deadline float64) float64 {
	worst := 0.0
	for _, blk := range r.Blocks {
		total := blk[1] - blk[0]
		if total == 0 {
			continue
		}
		late := 0
		for i := blk[0]; i < blk[1]; i++ {
			if r.Completions[i].Finished > deadline {
				late++
			}
		}
		if f := float64(late) / float64(total); f > worst {
			worst = f
		}
	}
	return worst
}
