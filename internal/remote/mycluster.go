package remote

import (
	"fmt"
	"sort"

	"esse/internal/cluster"
)

// VirtualCluster assembles a MyCluster-style personal cluster (§5.3.1,
// §5.4.1: "a collection of remote and local resources appear as one
// large Condor or SGE controlled cluster" / "Creation of a personal ...
// private cluster using MyCluster mixing local and EC2 resources"): the
// home cores plus EC2 instances and/or Grid-site allocations, expressed
// as one cluster.Cluster the scheduler simulation can run directly.
//
// Remote nodes carry their calibrated compute speeds; WAN I/O effects
// are modelled separately (SimulateTransfer / the EC2 cost model), as in
// the paper's own treatment.
func VirtualCluster(homeCores int, instances map[string]int, sites []SiteAllocation) (*cluster.Cluster, error) {
	c := cluster.MITAvailable(homeCores)
	// Sort the instance types so the node list (and therefore scheduler
	// placement) does not depend on map-iteration order.
	names := make([]string, 0, len(instances))
	for name := range instances {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		count := instances[name]
		if count <= 0 {
			continue
		}
		it, ok := FindInstance(name)
		if !ok {
			return nil, fmt.Errorf("remote: unknown EC2 instance type %q", name)
		}
		cores := int(it.Cores + 0.5)
		if cores < 1 {
			cores = 1 // m1.small: one half-speed core rather than zero
		}
		speed := it.ComputeSpeed
		if it.Cores < 1 {
			speed *= it.Cores // fold the CPU cap into the core speed
		}
		for i := 0; i < count; i++ {
			c.Nodes = append(c.Nodes, cluster.Node{
				Name:  fmt.Sprintf("ec2-%s-%d", it.Name, i),
				Cores: cores,
				Speed: speed,
			})
		}
	}
	for i, a := range sites {
		if a.Cores <= 0 {
			return nil, fmt.Errorf("remote: site allocation %d has no cores", i)
		}
		c.Nodes = append(c.Nodes, cluster.Node{
			Name:  fmt.Sprintf("grid-%s", a.Site.Name),
			Cores: a.Cores,
			Speed: a.Site.ComputeSpeed,
		})
	}
	return c, nil
}
