// Package remote models the remote execution platforms of the paper's
// Sections 5.3 and 5.4: TeraGrid sites (Table 1), Amazon EC2 instance
// types (Table 2), the EC2 cost model of §5.4.2, and the push/pull/
// two-stage output transfer strategies of §5.3.2.
//
// Sites and instances carry calibrated speed factors relative to the
// local Opteron 250 baseline, split into a CPU-bound component (pemodel)
// and a filesystem-sensitive component (pert): the paper observes that
// ORNL's slow pert "appears to be partly related to the PVFS2
// filesystem", so compute speed alone cannot describe a host.
package remote

import "esse/internal/sched"

// Site is one remote (TeraGrid-style) execution site.
type Site struct {
	Name      string
	Processor string
	// ComputeSpeed scales CPU-bound work relative to the local baseline
	// (1.0 = Opteron 250 2.4 GHz).
	ComputeSpeed float64
	// PertFSPenalty multiplies pert runtime on top of compute speed —
	// the filesystem/startup overhead the paper saw at ORNL.
	PertFSPenalty float64
	// FreeCores is what the site realistically offers a single user at
	// a time (the paper: "around 100 at a time free to run a user job").
	FreeCores int
}

// PertTime returns the expected pert runtime (seconds) for the job spec.
func (s Site) PertTime(spec sched.JobSpec) float64 {
	return spec.PertCPU / s.ComputeSpeed * s.PertFSPenalty
}

// ModelTime returns the expected pemodel runtime (seconds).
func (s Site) ModelTime(spec sched.JobSpec) float64 {
	return spec.ModelCPU / s.ComputeSpeed
}

// TeragridSites returns the Table 1 catalog. Speed factors are
// calibrated so that PertTime/ModelTime of the reference ESSE job
// reproduce the measured seconds:
//
//	site    processor            pert    pemodel
//	ORNL    Pentium4 3.06GHz     67.83   1823.99
//	Purdue  Core2 2.33GHz         6.25   1107.40
//	local   Opteron 250 2.4GHz    6.21   1531.33
func TeragridSites() []Site {
	spec := sched.ESSEJob()
	mk := func(name, cpu string, pert, model float64, cores int) Site {
		speed := spec.ModelCPU / model
		penalty := pert * speed / spec.PertCPU
		return Site{
			Name:          name,
			Processor:     cpu,
			ComputeSpeed:  speed,
			PertFSPenalty: penalty,
			FreeCores:     cores,
		}
	}
	return []Site{
		mk("ORNL", "Pentium4 3.06GHz", 67.83, 1823.99, 100),
		mk("Purdue", "Core2 2.33GHz", 6.25, 1107.40, 100),
		mk("local", "Opteron 250 2.4GHz", 6.21, 1531.33, 210),
	}
}

// MixedPoolImbalance estimates how uneven ensemble progress becomes when
// the workload is spread across sites with different speeds: it returns
// the ratio of the slowest to fastest per-member turnaround ("pert 900
// may very well finish well before number 700"). A ratio well above 1
// means remote members complete far out of submission order, which is
// why the workflow tracks per-member indices instead of assuming order.
func MixedPoolImbalance(sites []Site, spec sched.JobSpec) float64 {
	if len(sites) == 0 {
		return 1
	}
	min, max := 0.0, 0.0
	for i, s := range sites {
		t := s.PertTime(spec) + s.ModelTime(spec)
		if i == 0 || t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	if min == 0 {
		return 1
	}
	return max / min
}
