package remote

import (
	"strings"
	"testing"

	"esse/internal/sched"
)

func TestVirtualClusterComposition(t *testing.T) {
	sites := TeragridSites()
	var purdue Site
	for _, s := range sites {
		if s.Name == "Purdue" {
			purdue = s
		}
	}
	c, err := VirtualCluster(50, map[string]int{"c1.xlarge": 3}, []SiteAllocation{
		{Site: purdue, Cores: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 50 + 3*8 + 40
	if c.TotalCores() != want {
		t.Fatalf("virtual cluster has %d cores, want %d", c.TotalCores(), want)
	}
	names := map[string]bool{}
	for _, n := range c.Nodes {
		names[n.Name] = true
	}
	if !names["ec2-c1.xlarge-0"] || !names["grid-Purdue"] {
		t.Fatalf("expected node names missing: %v", c.Nodes[len(c.Nodes)-1].Name)
	}
}

func TestVirtualClusterM1SmallHalfSpeed(t *testing.T) {
	c, err := VirtualCluster(0, map[string]int{"m1.small": 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalCores() != 2 {
		t.Fatalf("m1.small nodes contributed %d cores", c.TotalCores())
	}
	it, _ := FindInstance("m1.small")
	for _, n := range c.Nodes {
		if !strings.HasPrefix(n.Name, "ec2-m1.small") {
			continue
		}
		// The 50% CPU cap folds into the core speed.
		if n.Speed >= it.ComputeSpeed {
			t.Fatalf("m1.small speed %v not capped below %v", n.Speed, it.ComputeSpeed)
		}
	}
}

func TestVirtualClusterErrors(t *testing.T) {
	if _, err := VirtualCluster(10, map[string]int{"p5.gpu": 1}, nil); err == nil {
		t.Fatal("unknown instance type accepted")
	}
	if _, err := VirtualCluster(10, nil, []SiteAllocation{{Site: TeragridSites()[0], Cores: 0}}); err == nil {
		t.Fatal("zero-core site accepted")
	}
}

func TestVirtualClusterSpeedsUpEnsemble(t *testing.T) {
	cfg := sched.DefaultConfig()
	home, err := VirtualCluster(100, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := VirtualCluster(100, map[string]int{"c1.xlarge": 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rHome := sched.Simulate(home, 400, sched.ESSEJob(), cfg)
	rHybrid := sched.Simulate(hybrid, 400, sched.ESSEJob(), cfg)
	if rHybrid.Makespan >= rHome.Makespan {
		t.Fatalf("hybrid cluster (%v min) not faster than home alone (%v min)",
			rHybrid.Makespan/60, rHome.Makespan/60)
	}
	if rHybrid.JobsCompleted != 400 {
		t.Fatalf("hybrid completed %d of 400", rHybrid.JobsCompleted)
	}
}
