package remote

import (
	"testing"

	"esse/internal/sched"
)

func gridAllocs() []SiteAllocation {
	sites := TeragridSites()
	var home, ornl, purdue Site
	for _, s := range sites {
		switch s.Name {
		case "local":
			home = s
		case "ORNL":
			ornl = s
		case "Purdue":
			purdue = s
		}
	}
	return []SiteAllocation{
		{Site: home, Cores: 210},
		{Site: purdue, Cores: 100, QueueWaitMin: 600, QueueWaitMax: 1800},
		{Site: ornl, Cores: 100, QueueWaitMin: 1800, QueueWaitMax: 7200},
	}
}

func TestGridRunAssignsAllMembersOnce(t *testing.T) {
	res, err := SimulateGridRun(sched.ESSEJob(), 900, gridAllocs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 900 {
		t.Fatalf("%d completions", len(res.Completions))
	}
	covered := 0
	for bi, blk := range res.Blocks {
		if blk[1] < blk[0] {
			t.Fatalf("block %d inverted: %v", bi, blk)
		}
		covered += blk[1] - blk[0]
		if bi > 0 && blk[0] != res.Blocks[bi-1][1] {
			t.Fatal("blocks not contiguous")
		}
	}
	if covered != 900 {
		t.Fatalf("blocks cover %d members", covered)
	}
	for i, c := range res.Completions {
		if c.Index != i || c.Finished <= 0 || c.Site == "" {
			t.Fatalf("completion %d malformed: %+v", i, c)
		}
	}
}

func TestGridRunOutOfOrderCompletions(t *testing.T) {
	// The §5.3.3 effect: with disparate sites and queue waits,
	// completions are far from submission order.
	res, err := SimulateGridRun(sched.ESSEJob(), 900, gridAllocs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if frac := res.OrderInversionFraction(); frac < 0.02 {
		t.Fatalf("inversion fraction %v: disparate sites should complete out of order", frac)
	}
	// A single homogeneous site completes (weakly) in order.
	single := []SiteAllocation{{Site: TeragridSites()[2], Cores: 50}}
	res1, err := SimulateGridRun(sched.ESSEJob(), 200, single, 3)
	if err != nil {
		t.Fatal(err)
	}
	if frac := res1.OrderInversionFraction(); frac > 0 {
		t.Fatalf("single-site run inverted: %v", frac)
	}
}

func TestGridRunDeadlineHarvest(t *testing.T) {
	res, err := SimulateGridRun(sched.ESSEJob(), 900, gridAllocs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	all := res.CompletedBy(res.Makespan + 1)
	if all != 900 {
		t.Fatalf("CompletedBy(makespan) = %d", all)
	}
	none := res.CompletedBy(0)
	if none != 0 {
		t.Fatalf("CompletedBy(0) = %d", none)
	}
	half := res.CompletedBy(res.Makespan / 2)
	if half <= 0 || half >= 900 {
		t.Fatalf("mid-deadline harvest = %d, want partial", half)
	}
}

func TestGridRunCoverageHole(t *testing.T) {
	res, err := SimulateGridRun(sched.ESSEJob(), 600, gridAllocs(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Before anything finishes, every block is a full hole.
	if h := res.CoverageHole(0); h != 1 {
		t.Fatalf("hole at t=0 is %v, want 1", h)
	}
	// After the makespan, no hole.
	if h := res.CoverageHole(res.Makespan + 1); h != 0 {
		t.Fatalf("hole after makespan is %v", h)
	}
	// A deadline that cuts off the slow ORNL block (long queue) leaves a
	// systematic hole there while home is complete.
	homeDone := res.SiteMakespan["local"]
	if res.CoverageHole(homeDone) < 0.5 {
		t.Fatalf("expected a systematic hole in a remote block at the home deadline, got %v",
			res.CoverageHole(homeDone))
	}
}

func TestGridRunThroughputProportionalBlocks(t *testing.T) {
	res, err := SimulateGridRun(sched.ESSEJob(), 1000, gridAllocs(), 6)
	if err != nil {
		t.Fatal(err)
	}
	// The home block (210 fast cores, no queue) must be the largest.
	if !(res.Blocks[0][1]-res.Blocks[0][0] > res.Blocks[1][1]-res.Blocks[1][0]) {
		t.Fatalf("home block not largest: %v", res.Blocks)
	}
	// ORNL (slow pert + slow CPU) gets fewer members than Purdue.
	purdue := res.Blocks[1][1] - res.Blocks[1][0]
	ornl := res.Blocks[2][1] - res.Blocks[2][0]
	if ornl >= purdue {
		t.Fatalf("ORNL block %d >= Purdue block %d", ornl, purdue)
	}
}

func TestGridRunValidation(t *testing.T) {
	if _, err := SimulateGridRun(sched.ESSEJob(), 0, gridAllocs(), 1); err == nil {
		t.Fatal("zero members accepted")
	}
	if _, err := SimulateGridRun(sched.ESSEJob(), 10, nil, 1); err == nil {
		t.Fatal("no allocations accepted")
	}
	bad := gridAllocs()
	bad[0].Cores = 0
	if _, err := SimulateGridRun(sched.ESSEJob(), 10, bad, 1); err == nil {
		t.Fatal("zero-core allocation accepted")
	}
}

func TestGridRunDeterministic(t *testing.T) {
	a, err := SimulateGridRun(sched.ESSEJob(), 300, gridAllocs(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateGridRun(sched.ESSEJob(), 300, gridAllocs(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("same-seed grid runs differ")
	}
}
