package remote

import "math"

// TransferStrategy selects how member output files return to the home
// cluster from a remote site (§5.3.2).
type TransferStrategy int

const (
	// Push has every execution host copy its own output home the moment
	// its job ends: simplest bookkeeping, but the batch nature of the
	// runs produces a huge burst of concurrent transfers that overloads
	// the home gateway, followed by silence.
	Push TransferStrategy = iota
	// Pull has an agent on the home cluster fetch files from a central
	// per-site repository at a controlled pace: more machinery, steady
	// utilization, no overload.
	Pull
	// TwoStage has hosts drop output on a site-shared filesystem while
	// an independent agent streams files home continuously, overlapping
	// transfers with the remaining computation.
	TwoStage
)

// String names the strategy.
func (s TransferStrategy) String() string {
	switch s {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case TwoStage:
		return "two-stage"
	default:
		return "unknown"
	}
}

// TransferConfig describes the WAN path and workload shape.
type TransferConfig struct {
	// Files and FileMB describe the member outputs.
	Files  int
	FileMB float64
	// WANMBps is the end-to-end bottleneck bandwidth home.
	WANMBps float64
	// ComputeWindow is the wall-clock seconds over which jobs finish
	// (two-stage and pull overlap transfers with this window).
	ComputeWindow float64
	// GatewayOverloadConcurrency is the concurrent-connection count
	// beyond which the home gateway degrades.
	GatewayOverloadConcurrency int
	// GatewayOverloadEfficiency is the aggregate-bandwidth fraction
	// retained during overload.
	GatewayOverloadEfficiency float64
	// PullPacingOverhead is the per-file bookkeeping cost of the pull
	// agent (notifications, deletions).
	PullPacingOverhead float64
}

// DefaultTransferConfig reflects the paper's 960-member EC2 example
// returning 11 MB per member over a ~10 MB/s effective WAN.
func DefaultTransferConfig() TransferConfig {
	return TransferConfig{
		Files:                      960,
		FileMB:                     11,
		WANMBps:                    10,
		ComputeWindow:              2 * 3600,
		GatewayOverloadConcurrency: 64,
		GatewayOverloadEfficiency:  0.6,
		PullPacingOverhead:         0.2,
	}
}

// TransferResult reports the outcome of one strategy.
type TransferResult struct {
	Strategy TransferStrategy
	// CompletionAfterBatch is the seconds after the last job ends until
	// all output has landed home.
	CompletionAfterBatch float64
	// PeakConcurrency is the largest number of simultaneous transfers.
	PeakConcurrency int
	// GatewayOverloaded reports whether the gateway degradation kicked in.
	GatewayOverloaded bool
}

// SimulateTransfer evaluates one output-return strategy analytically
// (fluid model): total volume over effective bandwidth, with the
// strategy determining concurrency, overload and overlap with compute.
func SimulateTransfer(strategy TransferStrategy, cfg TransferConfig) TransferResult {
	total := float64(cfg.Files) * cfg.FileMB
	switch strategy {
	case Push:
		// All transfers start when the batch drains: peak concurrency is
		// the (bursty) file count; the gateway degrades.
		overloaded := cfg.Files > cfg.GatewayOverloadConcurrency
		bw := cfg.WANMBps
		if overloaded {
			bw *= cfg.GatewayOverloadEfficiency
		}
		return TransferResult{
			Strategy:             Push,
			CompletionAfterBatch: total / bw,
			PeakConcurrency:      cfg.Files,
			GatewayOverloaded:    overloaded,
		}
	case Pull:
		// Paced by the agent: a handful of streams, full bandwidth, but
		// transfers only start as the agent notices files; the pacing
		// keeps them inside the compute window where possible.
		overhead := cfg.PullPacingOverhead * float64(cfg.Files)
		work := total/cfg.WANMBps + overhead
		remaining := math.Max(0, work-cfg.ComputeWindow*0.5)
		return TransferResult{
			Strategy:             Pull,
			CompletionAfterBatch: remaining,
			PeakConcurrency:      4,
			GatewayOverloaded:    false,
		}
	case TwoStage:
		// Agent streams continuously during the whole compute window.
		work := total / cfg.WANMBps
		remaining := math.Max(0, work-cfg.ComputeWindow)
		return TransferResult{
			Strategy:             TwoStage,
			CompletionAfterBatch: remaining,
			PeakConcurrency:      2,
			GatewayOverloaded:    false,
		}
	default:
		panic("remote: unknown transfer strategy")
	}
}
