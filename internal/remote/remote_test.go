package remote

import (
	"math"
	"testing"

	"esse/internal/sched"
)

func TestTable1Calibration(t *testing.T) {
	spec := sched.ESSEJob()
	want := map[string][2]float64{
		"ORNL":   {67.83, 1823.99},
		"Purdue": {6.25, 1107.40},
		"local":  {6.21, 1531.33},
	}
	sites := TeragridSites()
	if len(sites) != 3 {
		t.Fatalf("%d sites", len(sites))
	}
	for _, s := range sites {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected site %q", s.Name)
		}
		if math.Abs(s.PertTime(spec)-w[0]) > 0.01 {
			t.Fatalf("%s pert = %v, want %v", s.Name, s.PertTime(spec), w[0])
		}
		if math.Abs(s.ModelTime(spec)-w[1]) > 0.01 {
			t.Fatalf("%s pemodel = %v, want %v", s.Name, s.ModelTime(spec), w[1])
		}
	}
}

func TestORNLPertPenaltyShape(t *testing.T) {
	// The paper's point: ORNL pert is ~10x slower than Purdue/local while
	// pemodel stays within ~1.7x — a filesystem, not CPU, effect.
	spec := sched.ESSEJob()
	sites := TeragridSites()
	var ornl, purdue Site
	for _, s := range sites {
		switch s.Name {
		case "ORNL":
			ornl = s
		case "Purdue":
			purdue = s
		}
	}
	pertRatio := ornl.PertTime(spec) / purdue.PertTime(spec)
	modelRatio := ornl.ModelTime(spec) / purdue.ModelTime(spec)
	if pertRatio < 8 {
		t.Fatalf("ORNL/Purdue pert ratio = %v, want ≈10.8", pertRatio)
	}
	if modelRatio > 2 {
		t.Fatalf("ORNL/Purdue pemodel ratio = %v, want ≈1.65", modelRatio)
	}
	if ornl.PertFSPenalty < 5 {
		t.Fatalf("ORNL filesystem penalty = %v, should dominate", ornl.PertFSPenalty)
	}
}

func TestMixedPoolImbalance(t *testing.T) {
	spec := sched.ESSEJob()
	imb := MixedPoolImbalance(TeragridSites(), spec)
	if imb <= 1.3 {
		t.Fatalf("imbalance = %v; disparate hosts must show uneven progress", imb)
	}
	if MixedPoolImbalance(nil, spec) != 1 {
		t.Fatal("empty site list should be balanced")
	}
}

func TestTable2Calibration(t *testing.T) {
	spec := sched.ESSEJob()
	want := map[string][3]float64{
		"m1.small":  {13.53, 2850.14, 0.5},
		"m1.large":  {9.33, 1817.13, 2},
		"m1.xlarge": {9.14, 1860.81, 4},
		"c1.medium": {9.80, 1008.11, 2},
		"c1.xlarge": {6.67, 1030.42, 8},
	}
	insts := EC2Instances()
	if len(insts) != 5 {
		t.Fatalf("%d instance types", len(insts))
	}
	for _, it := range insts {
		w, ok := want[it.Name]
		if !ok {
			t.Fatalf("unexpected instance %q", it.Name)
		}
		if math.Abs(it.PertTime(spec)-w[0]) > 0.01 {
			t.Fatalf("%s pert = %v, want %v", it.Name, it.PertTime(spec), w[0])
		}
		if math.Abs(it.ModelTime(spec)-w[1]) > 0.01 {
			t.Fatalf("%s pemodel = %v, want %v", it.Name, it.ModelTime(spec), w[1])
		}
		if it.Cores != w[2] {
			t.Fatalf("%s cores = %v, want %v", it.Name, it.Cores, w[2])
		}
	}
}

func TestC1BeatsM1OnModel(t *testing.T) {
	// Shape: high-CPU Core2 instances run pemodel ~1.8x faster than the
	// m1 Opterons.
	spec := sched.ESSEJob()
	c1, _ := FindInstance("c1.xlarge")
	m1, _ := FindInstance("m1.xlarge")
	ratio := m1.ModelTime(spec) / c1.ModelTime(spec)
	if ratio < 1.5 || ratio > 2.2 {
		t.Fatalf("m1/c1 pemodel ratio = %v, want ~1.8", ratio)
	}
}

func TestFindInstance(t *testing.T) {
	if _, ok := FindInstance("c1.medium"); !ok {
		t.Fatal("c1.medium not found")
	}
	if _, ok := FindInstance("p5.gpu"); ok {
		t.Fatal("nonexistent instance found")
	}
}

func TestPaperCostExample(t *testing.T) {
	b := PaperCostExample()
	if math.Abs(b.TotalUSD-33.95) > 0.01 {
		t.Fatalf("worked example total = $%.4f, paper says $33.95", b.TotalUSD)
	}
	if math.Abs(b.TransferInUSD-0.15) > 1e-9 {
		t.Fatalf("transfer-in = %v", b.TransferInUSD)
	}
	if math.Abs(b.TransferOutUSD-1.7952) > 1e-9 {
		t.Fatalf("transfer-out = %v", b.TransferOutUSD)
	}
	if math.Abs(b.ComputeUSD-32) > 1e-9 {
		t.Fatalf("compute = %v", b.ComputeUSD)
	}
}

func TestHourRounding(t *testing.T) {
	// "usage of 1 hour 1 sec counts as 2 hours".
	cm := DefaultCostModel()
	it, _ := FindInstance("c1.xlarge")
	oneSecOver := cm.Cost(0, 0, 1.0003, 1, it, false)
	if oneSecOver.BilledHours != 2 {
		t.Fatalf("billed hours = %v, want 2", oneSecOver.BilledHours)
	}
	exact := cm.Cost(0, 0, 1.0, 1, it, false)
	if exact.BilledHours != 1 {
		t.Fatalf("exact hour billed as %v", exact.BilledHours)
	}
}

func TestReservedInstancesCheaper(t *testing.T) {
	cm := DefaultCostModel()
	it, _ := FindInstance("c1.xlarge")
	onDemand := cm.Cost(1.5, 10.56, 2, 20, it, false)
	reserved := cm.Cost(1.5, 10.56, 2, 20, it, true)
	if reserved.ComputeUSD*3 > onDemand.ComputeUSD {
		t.Fatalf("reserved compute ($%v) not >3x cheaper than on-demand ($%v)",
			reserved.ComputeUSD, onDemand.ComputeUSD)
	}
	if reserved.TransferInUSD != onDemand.TransferInUSD {
		t.Fatal("reservation must not change transfer pricing")
	}
}

func TestTransferStrategyOrdering(t *testing.T) {
	cfg := DefaultTransferConfig()
	push := SimulateTransfer(Push, cfg)
	pull := SimulateTransfer(Pull, cfg)
	two := SimulateTransfer(TwoStage, cfg)
	if !push.GatewayOverloaded {
		t.Fatal("960 simultaneous pushes must overload the gateway")
	}
	if pull.GatewayOverloaded || two.GatewayOverloaded {
		t.Fatal("paced strategies must not overload the gateway")
	}
	if !(two.CompletionAfterBatch <= pull.CompletionAfterBatch) {
		t.Fatalf("two-stage (%v) should beat pull (%v)",
			two.CompletionAfterBatch, pull.CompletionAfterBatch)
	}
	if !(pull.CompletionAfterBatch < push.CompletionAfterBatch) {
		t.Fatalf("pull (%v) should beat push (%v)",
			pull.CompletionAfterBatch, push.CompletionAfterBatch)
	}
	if push.PeakConcurrency != cfg.Files {
		t.Fatalf("push peak concurrency = %d", push.PeakConcurrency)
	}
}

func TestTransferSmallBatchNoOverload(t *testing.T) {
	cfg := DefaultTransferConfig()
	cfg.Files = 8
	push := SimulateTransfer(Push, cfg)
	if push.GatewayOverloaded {
		t.Fatal("8 files should not overload the gateway")
	}
}

func TestStrategyString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" || TwoStage.String() != "two-stage" {
		t.Fatal("strategy names")
	}
}
