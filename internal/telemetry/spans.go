package telemetry

import (
	"io"
	"strconv"
	"sync"
	"time"

	"esse/internal/trace"
)

// Tracer records wall-clock spans and exports them as Chrome
// trace-event JSON, the format chrome://tracing and ui.perfetto.dev
// load directly. Each span becomes a "complete" (ph "X") event; spans
// on the same lane (tid) nest by time containment, so opening an outer
// cycle span and inner member spans renders the hierarchical Gantt of
// the paper's Fig. 1 from a real run.
//
// The hot path is allocation-free: Start captures a timestamp into a
// value-type Span, End appends one spanRecord by value under the
// tracer lock. Names with ids ("member-12") are rendered only at
// export. The nil *Tracer is a no-op.
type Tracer struct {
	mu    sync.Mutex
	base  time.Time
	spans []spanRecord
}

// spanRecord is one finished span, stored by value.
type spanRecord struct {
	cat, name string
	id        int64 // rendered as "name-id" at export when >= 0
	lane      int64 // Chrome tid
	start     time.Duration
	dur       time.Duration
}

// Span is an open interval handed out by Tracer.Start. It is a value:
// copying it is cheap and starting one never heap-allocates. End may
// be called at most once; on a Span from a nil Tracer, End is a no-op.
type Span struct {
	tr    *Tracer
	cat   string
	name  string
	id    int64
	lane  int64
	start time.Duration
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now()}
}

// Start opens a span in category cat. id >= 0 is appended to the name
// at export time ("name-id"); pass -1 for none. lane selects the
// Chrome tid row — use the worker id or member index so concurrent
// tasks land on separate rows.
func (t *Tracer) Start(cat, name string, id, lane int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, cat: cat, name: name, id: id, lane: lane, start: time.Since(t.base)}
}

// End closes the span and records it. No-op on a zero Span.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	end := time.Since(s.tr.base)
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, spanRecord{
		cat:   s.cat,
		name:  s.name,
		id:    s.id,
		lane:  s.lane,
		start: s.start,
		dur:   end - s.start,
	})
	s.tr.mu.Unlock()
}

// Len returns the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// ChromeEvent is one trace event in the Chrome trace-event JSON array
// format. Ph, Ts and Pid intentionally have no omitempty: viewers
// require them even when zero.
type ChromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int64   `json:"pid"`
	Tid  int64   `json:"tid"`
}

// chromePidWall is the pid lane for wall-clock spans; chromePidPaper
// holds converted paper-time Timeline rows so the two clocks never
// share an axis.
const (
	chromePidWall  = 1
	chromePidPaper = 2
)

// ChromeEvents renders the finished spans as complete ("X") events with
// microsecond timestamps relative to the tracer's start.
func (t *Tracer) ChromeEvents() []ChromeEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := make([]spanRecord, len(t.spans))
	copy(recs, t.spans)
	t.mu.Unlock()
	out := make([]ChromeEvent, 0, len(recs))
	name := make([]byte, 0, 64)
	for _, r := range recs {
		name = name[:0]
		name = append(name, r.name...)
		if r.id >= 0 {
			name = append(name, '-')
			name = strconv.AppendInt(name, r.id, 10)
		}
		out = append(out, ChromeEvent{
			Name: string(name),
			Cat:  r.cat,
			Ph:   "X",
			Ts:   float64(r.start.Nanoseconds()) / 1e3,
			Dur:  float64(r.dur.Nanoseconds()) / 1e3,
			Pid:  chromePidWall,
			Tid:  r.lane,
		})
	}
	return out
}

// TimelineChromeEvents converts a paper-time Timeline into trace rows
// on a separate pid, one tid per Kind, treating one paper time unit as
// timeUnit of trace time. Merging these with Tracer.ChromeEvents in a
// single export shows simulated ocean/forecaster time next to where
// the wall-clock actually went.
func TimelineChromeEvents(tl *trace.Timeline, timeUnit time.Duration) []ChromeEvent {
	if tl == nil {
		return nil
	}
	spans := tl.Spans()
	out := make([]ChromeEvent, 0, len(spans))
	usPerUnit := float64(timeUnit.Nanoseconds()) / 1e3
	for _, s := range spans {
		out = append(out, ChromeEvent{
			Name: s.Label,
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   s.Start * usPerUnit,
			Dur:  s.Duration() * usPerUnit,
			Pid:  chromePidPaper,
			Tid:  int64(s.Kind),
		})
	}
	return out
}

// WriteChromeTrace writes events as a Chrome trace-event JSON array.
// The output loads directly into chrome://tracing and Perfetto.
func WriteChromeTrace(w io.Writer, events []ChromeEvent) error {
	buf := make([]byte, 0, 64+128*len(events))
	buf = append(buf, '[', '\n')
	for i, e := range events {
		if i > 0 {
			buf = append(buf, ',', '\n')
		}
		buf = appendChromeEvent(buf, e)
	}
	buf = append(buf, '\n', ']', '\n')
	_, err := w.Write(buf)
	return err
}

// appendChromeEvent renders one event without encoding/json so export
// stays a single-buffer append pass. encoding/json round-trip of this
// output is pinned by tests.
func appendChromeEvent(buf []byte, e ChromeEvent) []byte {
	buf = append(buf, `{"name":`...)
	buf = strconv.AppendQuote(buf, e.Name)
	if e.Cat != "" {
		buf = append(buf, `,"cat":`...)
		buf = strconv.AppendQuote(buf, e.Cat)
	}
	buf = append(buf, `,"ph":`...)
	buf = strconv.AppendQuote(buf, e.Ph)
	buf = append(buf, `,"ts":`...)
	buf = strconv.AppendFloat(buf, e.Ts, 'f', -1, 64)
	if e.Dur != 0 {
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendFloat(buf, e.Dur, 'f', -1, 64)
	}
	buf = append(buf, `,"pid":`...)
	buf = strconv.AppendInt(buf, e.Pid, 10)
	buf = append(buf, `,"tid":`...)
	buf = strconv.AppendInt(buf, e.Tid, 10)
	buf = append(buf, '}')
	return buf
}
