package telemetry

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"esse/internal/trace"
)

// Tracer records wall-clock spans and exports them as Chrome
// trace-event JSON, the format chrome://tracing and ui.perfetto.dev
// load directly. Each span becomes a "complete" (ph "X") event; spans
// on the same lane (tid) nest by time containment, so opening an outer
// cycle span and inner member spans renders the hierarchical Gantt of
// the paper's Fig. 1 from a real run.
//
// The hot path is allocation-free: Start captures a timestamp into a
// value-type Span, End appends one spanRecord by value under the
// tracer lock. Names with ids ("member-12") are rendered only at
// export. The nil *Tracer is a no-op.
type Tracer struct {
	mu    sync.Mutex
	base  time.Time
	spans []spanRecord
	// Run identity stamped on locally-rooted spans, stored as two
	// atomics so Start stays lock-free. SetTraceID is called once at
	// startup, before concurrent span traffic, so the halves never
	// tear in practice.
	trHi, trLo atomic.Uint64
	nextSpn    atomic.Uint64 // next SpanID; allocation is a single Add
}

// spanRecord is one finished span, stored by value.
type spanRecord struct {
	cat, name string
	id        int64 // rendered as "name-id" at export when >= 0
	lane      int64 // Chrome tid
	start     time.Duration
	dur       time.Duration
	trace     TraceID // trace this span belongs to (remote parents may differ)
	span      SpanID  // this span's identity
	parent    SpanID  // zero for roots
}

// Span is an open interval handed out by Tracer.Start. It is a value:
// copying it is cheap and starting one never heap-allocates. End may
// be called at most once; on a Span from a nil Tracer, End is a no-op.
type Span struct {
	tr     *Tracer
	cat    string
	name   string
	id     int64
	lane   int64
	start  time.Duration
	trace  TraceID
	span   SpanID
	parent SpanID
}

// Context returns the span's propagable identity: put it in a wire
// payload or a traceparent header to parent remote work under this
// span. Zero on a Span from a nil Tracer.
func (s Span) Context() SpanContext {
	return SpanContext{Trace: s.trace, Span: s.span}
}

// Lane returns the Chrome tid the span renders on (0 for a zero Span).
func (s Span) Lane() int64 { return s.lane }

// NewTracer returns an empty tracer whose clock starts now. Its trace
// identity defaults to DeriveTraceID(0); runs that want a seed-stable
// identity call SetTraceID before the first span.
func NewTracer() *Tracer {
	t := &Tracer{base: time.Now()}
	t.SetTraceID(DeriveTraceID(0))
	return t
}

// SetTraceID fixes the run identity stamped on every subsequent
// locally-rooted span. Call it once at startup, before span traffic. A
// zero id is ignored — an all-zero TraceID is invalid on the wire.
func (t *Tracer) SetTraceID(id TraceID) {
	if t == nil || id.IsZero() {
		return
	}
	t.trHi.Store(id.Hi)
	t.trLo.Store(id.Lo)
}

// TraceID returns the tracer's run identity (zero when t is nil).
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return TraceID{Hi: t.trHi.Load(), Lo: t.trLo.Load()}
}

// Start opens a root span in category cat. id >= 0 is appended to the
// name at export time ("name-id"); pass -1 for none. lane selects the
// Chrome tid row — use the worker id or member index so concurrent
// tasks land on separate rows.
func (t *Tracer) Start(cat, name string, id, lane int64) Span {
	return t.StartChild(SpanContext{}, cat, name, id, lane)
}

// StartChild opens a span parented under parent. A zero parent yields
// a root span on the tracer's own trace; a parent with a foreign
// TraceID (extracted from a header or a wire payload) adopts that
// trace, so cross-process trees keep one identity. lane < 0 picks
// lane 0 (callers threading contexts use Telemetry.SpanCtx, which
// resolves lane < 0 to the parent's lane instead).
func (t *Tracer) StartChild(parent SpanContext, cat, name string, id, lane int64) Span {
	if t == nil {
		return Span{}
	}
	if lane < 0 {
		lane = 0
	}
	tr := parent.Trace
	if tr.IsZero() {
		tr = t.TraceID()
	}
	return Span{
		tr:     t,
		cat:    cat,
		name:   name,
		id:     id,
		lane:   lane,
		start:  time.Since(t.base),
		trace:  tr,
		span:   SpanID(t.nextSpn.Add(1)),
		parent: parent.Span,
	}
}

// End closes the span and records it. No-op on a zero Span.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	end := time.Since(s.tr.base)
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, spanRecord{
		cat:    s.cat,
		name:   s.name,
		id:     s.id,
		lane:   s.lane,
		start:  s.start,
		dur:    end - s.start,
		trace:  s.trace,
		span:   s.span,
		parent: s.parent,
	})
	s.tr.mu.Unlock()
}

// Len returns the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// ChromeEvent is one trace event in the Chrome trace-event JSON array
// format. Ph, Ts and Pid intentionally have no omitempty: viewers
// require them even when zero. ID and BP serve flow events (ph "s"
// start, ph "f" finish with bp "e"), which draw the parent → child
// arrows between lanes; Args carries the span identity forensics tools
// rebuild the tree from.
type ChromeEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat,omitempty"`
	Ph   string    `json:"ph"`
	Ts   float64   `json:"ts"`
	Dur  float64   `json:"dur,omitempty"`
	Pid  int64     `json:"pid"`
	Tid  int64     `json:"tid"`
	ID   string    `json:"id,omitempty"`
	BP   string    `json:"bp,omitempty"`
	Args *SpanArgs `json:"args,omitempty"`
}

// SpanArgs is the identity block attached to exported span events.
// Hex-string encoded like the wire form; ParentSpan is empty on roots.
type SpanArgs struct {
	TraceID    string `json:"trace_id"`
	SpanID     string `json:"span_id"`
	ParentSpan string `json:"parent_span_id,omitempty"`
}

// chromePidWall is the pid lane for wall-clock spans; chromePidPaper
// holds converted paper-time Timeline rows so the two clocks never
// share an axis.
const (
	chromePidWall  = 1
	chromePidPaper = 2
)

// ChromeEvents renders the finished spans as complete ("X") events
// with microsecond timestamps relative to the tracer's start, each
// carrying its span identity in Args. Every span whose parent also
// finished locally additionally yields a flow-event pair ("s" on the
// parent's lane, "f" with bp "e" on the child's) so viewers draw the
// causal arrow even when parent and child render on different lanes.
func (t *Tracer) ChromeEvents() []ChromeEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := make([]spanRecord, len(t.spans))
	copy(recs, t.spans)
	t.mu.Unlock()
	byID := make(map[SpanID]int, len(recs))
	for i, r := range recs {
		byID[r.span] = i
	}
	out := make([]ChromeEvent, 0, 3*len(recs))
	name := make([]byte, 0, 64)
	for _, r := range recs {
		name = name[:0]
		name = append(name, r.name...)
		if r.id >= 0 {
			name = append(name, '-')
			name = strconv.AppendInt(name, r.id, 10)
		}
		//esselint:allow hotalloc every exported event needs its own identity block; export runs once, after the run
		args := &SpanArgs{TraceID: r.trace.String(), SpanID: r.span.String()}
		if r.parent != 0 {
			args.ParentSpan = r.parent.String()
		}
		out = append(out, ChromeEvent{
			Name: string(name),
			Cat:  r.cat,
			Ph:   "X",
			Ts:   float64(r.start.Nanoseconds()) / 1e3,
			Dur:  float64(r.dur.Nanoseconds()) / 1e3,
			Pid:  chromePidWall,
			Tid:  r.lane,
			Args: args,
		})
		pi, ok := byID[r.parent]
		if r.parent == 0 || !ok {
			continue
		}
		parent := recs[pi]
		// The "s" endpoint must fall inside the source slice for
		// viewers to bind it; clamp the child start into the parent's
		// interval (retries can momentarily start before a re-opened
		// parent under coarse clocks).
		ts := r.start
		if ts < parent.start {
			ts = parent.start
		}
		if end := parent.start + parent.dur; ts > end {
			ts = end
		}
		flowID := r.span.String()
		out = append(out,
			ChromeEvent{
				Name: "parent",
				Cat:  "flow",
				Ph:   "s",
				Ts:   float64(ts.Nanoseconds()) / 1e3,
				Pid:  chromePidWall,
				Tid:  parent.lane,
				ID:   flowID,
			},
			ChromeEvent{
				Name: "parent",
				Cat:  "flow",
				Ph:   "f",
				Ts:   float64(r.start.Nanoseconds()) / 1e3,
				Pid:  chromePidWall,
				Tid:  r.lane,
				ID:   flowID,
				BP:   "e",
			},
		)
	}
	return out
}

// TimelineChromeEvents converts a paper-time Timeline into trace rows
// on a separate pid, one tid per Kind, treating one paper time unit as
// timeUnit of trace time. Merging these with Tracer.ChromeEvents in a
// single export shows simulated ocean/forecaster time next to where
// the wall-clock actually went.
func TimelineChromeEvents(tl *trace.Timeline, timeUnit time.Duration) []ChromeEvent {
	if tl == nil {
		return nil
	}
	spans := tl.Spans()
	out := make([]ChromeEvent, 0, len(spans))
	usPerUnit := float64(timeUnit.Nanoseconds()) / 1e3
	for _, s := range spans {
		out = append(out, ChromeEvent{
			Name: s.Label,
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   s.Start * usPerUnit,
			Dur:  s.Duration() * usPerUnit,
			Pid:  chromePidPaper,
			Tid:  int64(s.Kind),
		})
	}
	return out
}

// WriteChromeTrace writes events as a Chrome trace-event JSON array.
// The output loads directly into chrome://tracing and Perfetto.
func WriteChromeTrace(w io.Writer, events []ChromeEvent) error {
	buf := make([]byte, 0, 64+128*len(events))
	buf = append(buf, '[', '\n')
	for i, e := range events {
		if i > 0 {
			buf = append(buf, ',', '\n')
		}
		buf = appendChromeEvent(buf, e)
	}
	buf = append(buf, '\n', ']', '\n')
	_, err := w.Write(buf)
	return err
}

// appendChromeEvent renders one event without encoding/json so export
// stays a single-buffer append pass. encoding/json round-trip of this
// output is pinned by tests.
func appendChromeEvent(buf []byte, e ChromeEvent) []byte {
	buf = append(buf, `{"name":`...)
	buf = strconv.AppendQuote(buf, e.Name)
	if e.Cat != "" {
		buf = append(buf, `,"cat":`...)
		buf = strconv.AppendQuote(buf, e.Cat)
	}
	buf = append(buf, `,"ph":`...)
	buf = strconv.AppendQuote(buf, e.Ph)
	buf = append(buf, `,"ts":`...)
	buf = strconv.AppendFloat(buf, e.Ts, 'f', -1, 64)
	if e.Dur != 0 {
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendFloat(buf, e.Dur, 'f', -1, 64)
	}
	buf = append(buf, `,"pid":`...)
	buf = strconv.AppendInt(buf, e.Pid, 10)
	buf = append(buf, `,"tid":`...)
	buf = strconv.AppendInt(buf, e.Tid, 10)
	if e.ID != "" {
		buf = append(buf, `,"id":`...)
		buf = strconv.AppendQuote(buf, e.ID)
	}
	if e.BP != "" {
		buf = append(buf, `,"bp":`...)
		buf = strconv.AppendQuote(buf, e.BP)
	}
	if e.Args != nil {
		buf = append(buf, `,"args":{"trace_id":`...)
		buf = strconv.AppendQuote(buf, e.Args.TraceID)
		buf = append(buf, `,"span_id":`...)
		buf = strconv.AppendQuote(buf, e.Args.SpanID)
		if e.Args.ParentSpan != "" {
			buf = append(buf, `,"parent_span_id":`...)
			buf = strconv.AppendQuote(buf, e.Args.ParentSpan)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}')
	return buf
}
