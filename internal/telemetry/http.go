package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// DisplayURL renders a clickable URL for a listen address: a bare
// ":port" gains a localhost host, a full "host:port" is kept as-is.
// The -telemetry-addr banners use it.
func DisplayURL(addr, path string) string {
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	return "http://" + addr + path
}

// Mount registers the telemetry endpoints on mux:
//
//	/metrics        Prometheus text exposition
//	/events         lifecycle event JSON (?since=<seq> for increments)
//	/trace          Chrome trace-event JSON of the wall-clock spans
//	/debug/pprof/*  the standard net/http/pprof handlers
//
// Mounting on a nil *Telemetry is a no-op so callers can wire the
// monitor mux unconditionally.
func (t *Telemetry) Mount(mux *http.ServeMux) {
	if t == nil || mux == nil {
		return
	}
	mux.HandleFunc("/metrics", t.handleMetrics)
	mux.HandleFunc("/events", t.handleEvents)
	mux.HandleFunc("/trace", t.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a mux with all telemetry endpoints mounted — the
// standalone server used by the -telemetry-addr flags.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	t.Mount(mux)
	return mux
}

func (t *Telemetry) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	//esselint:allow errdrop HTTP response write failure means the client went away; nothing to do
	_ = t.Registry().WritePrometheus(w)
}

// EventsPage is the /events response envelope. Oldest lets a poller
// detect ring wraparound (events in [since, oldest) were lost).
type EventsPage struct {
	Total  int64   `json:"total"`
	Oldest int64   `json:"oldest"`
	Events []Event `json:"events"`
}

// ParseEvents decodes one /events response body — the read side of
// handleEvents, for pollers and tests that consume the endpoint.
func ParseEvents(r io.Reader) (*EventsPage, error) {
	var page EventsPage
	if err := json.NewDecoder(r).Decode(&page); err != nil {
		return nil, fmt.Errorf("telemetry: decoding events page: %w", err)
	}
	return &page, nil
}

func (t *Telemetry) handleEvents(w http.ResponseWriter, r *http.Request) {
	since := int64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = v
	}
	log := t.Events()
	reply := EventsPage{
		Total:  log.Total(),
		Oldest: log.Oldest(),
		Events: log.Snapshot(since),
	}
	if reply.Events == nil {
		reply.Events = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//esselint:allow errdrop HTTP response write failure means the client went away; nothing to do
	_ = enc.Encode(reply)
}

func (t *Telemetry) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	//esselint:allow errdrop HTTP response write failure means the client went away; nothing to do
	_ = WriteChromeTrace(w, t.Tracer().ChromeEvents())
}
