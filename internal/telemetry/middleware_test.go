package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// scrape parses the telemetry registry's exposition.
func scrape(t *testing.T, tel *Telemetry) *Exposition {
	t.Helper()
	exp, err := ParsePrometheus(strings.NewReader(scrapeString(t, tel.Registry())))
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestInstrumentNilTelemetryReturnsHandler(t *testing.T) {
	var tel *Telemetry
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := tel.Instrument("route", h); got == nil {
		t.Fatal("nil telemetry must pass the handler through")
	}
	if tel.Instrument("route", nil) != nil {
		t.Fatal("nil handler must stay nil")
	}
}

// findSpan returns the exported wall span with the given name.
func findSpan(t *testing.T, tel *Telemetry, name string) ChromeEvent {
	t.Helper()
	for _, e := range tel.Tracer().ChromeEvents() {
		if e.Ph == "X" && e.Name == name {
			return e
		}
	}
	t.Fatalf("no span named %q exported", name)
	return ChromeEvent{}
}

func TestInstrumentAdoptsRemoteParent(t *testing.T) {
	tel := New()
	tel.Tracer().SetTraceID(DeriveTraceID(100))
	var sawCtxSpan SpanContext
	h := tel.Instrument("opendap-dds", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawCtxSpan = SpanFromContext(r.Context()).Context()
	}))

	remote := SpanContext{Trace: DeriveTraceID(200), Span: 77}
	req := httptest.NewRequest(http.MethodGet, "/dds/x", nil)
	Inject(req.Header, remote)
	h.ServeHTTP(httptest.NewRecorder(), req)

	ev := findSpan(t, tel, "opendap-dds")
	if ev.Tid != httpLane {
		t.Errorf("server span lane = %d, want %d", ev.Tid, httpLane)
	}
	if ev.Args == nil || ev.Args.TraceID != remote.Trace.String() {
		t.Fatalf("server span trace = %+v, want remote %s", ev.Args, remote.Trace)
	}
	if ev.Args.ParentSpan != remote.Span.String() {
		t.Errorf("server span parent = %q, want %s", ev.Args.ParentSpan, remote.Span)
	}
	// The handler saw the server span in its request context.
	if sawCtxSpan.IsZero() || sawCtxSpan.SpanHex() != ev.Args.SpanID {
		t.Errorf("handler ctx span = %+v, want %s", sawCtxSpan, ev.Args.SpanID)
	}

	// Metrics registered and incremented under the route label.
	exp := scrape(t, tel)
	f := exp.Family("esse_http_requests_total")
	if f == nil || len(f.Samples) != 1 || f.Samples[0].Value != 1 {
		t.Fatalf("requests family = %+v", f)
	}
	if f.Samples[0].Labels[0].Value != "opendap-dds" {
		t.Errorf("route label = %+v", f.Samples[0].Labels)
	}
}

func TestInstrumentWithoutInboundHeader(t *testing.T) {
	tel := New()
	want := DeriveTraceID(300)
	tel.Tracer().SetTraceID(want)
	h := tel.Instrument("datasets", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/datasets", nil))

	ev := findSpan(t, tel, "datasets")
	if ev.Args == nil || ev.Args.TraceID != want.String() {
		t.Fatalf("span trace = %+v, want local %s", ev.Args, want)
	}
	if ev.Args.ParentSpan != "" {
		t.Errorf("headerless request grew a parent: %q", ev.Args.ParentSpan)
	}
}
