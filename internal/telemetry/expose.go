package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format, both
// directions: WritePrometheus renders the registry (the /metrics
// endpoint body) and ParsePrometheus reads it back into an Exposition
// — the structure the round-trip tests and the CI smoke scraper
// (cmd/promscrape) validate against. The writer produces canonical
// output: families sorted by name, series sorted by rendered label
// string, one HELP and one TYPE line per family, values formatted with
// strconv ('g', shortest round-trip), so Parse→Render reproduces the
// bytes exactly.

// WritePrometheus renders every family in text exposition format. The
// registry lock is held while the buffer is built (structure only —
// the values themselves are atomic loads) and released before the
// single Write. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	buf := make([]byte, 0, 4096)
	for _, name := range r.names {
		buf = appendFamily(buf, r.families[name])
	}
	r.mu.Unlock()
	_, err := w.Write(buf)
	return err
}

func appendFamily(buf []byte, fam *family) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, fam.name...)
	buf = append(buf, ' ')
	buf = appendEscapedHelp(buf, fam.help)
	buf = append(buf, '\n')
	buf = append(buf, "# TYPE "...)
	buf = append(buf, fam.name...)
	buf = append(buf, ' ')
	buf = append(buf, fam.kind.String()...)
	buf = append(buf, '\n')
	for _, s := range fam.ordered {
		switch fam.kind {
		case kindCounter:
			buf = appendSample(buf, fam.name, "", s.labels, "", float64(s.c.Value()))
		case kindGauge:
			buf = appendSample(buf, fam.name, "", s.labels, "", s.g.Value())
		case kindHistogram:
			cum := uint64(0)
			for i := range s.h.upper {
				cum += s.h.counts[i].Load()
				buf = appendSample(buf, fam.name, "_bucket", s.labels,
					formatFloat(s.h.upper[i]), float64(cum))
			}
			cum += s.h.inf.Load()
			buf = appendSample(buf, fam.name, "_bucket", s.labels, "+Inf", float64(cum))
			buf = appendSample(buf, fam.name, "_sum", s.labels, "", s.h.Sum())
			buf = appendSample(buf, fam.name, "_count", s.labels, "", float64(s.h.Count()))
		}
	}
	return buf
}

// appendSample renders one `name[suffix]{labels[,le="..."]} value` line.
func appendSample(buf []byte, name, suffix, labels, le string, value float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if labels != "" || le != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		if le != "" {
			if labels != "" {
				buf = append(buf, ',')
			}
			buf = append(buf, "le=\""...)
			buf = append(buf, le...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, value, 'g', -1, 64)
	buf = append(buf, '\n')
	return buf
}

// appendEscapedHelp escapes backslash and newline per the exposition
// rules for HELP text.
func appendEscapedHelp(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// unescapeHelp inverts appendEscapedHelp. Unknown escapes are kept
// verbatim (the exposition format tolerates them).
func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			out = append(out, s[i])
			continue
		}
		switch s[i+1] {
		case '\\':
			out = append(out, '\\')
			i++
		case 'n':
			out = append(out, '\n')
			i++
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// --- parser -----------------------------------------------------------------

// Label is one parsed key/value pair.
type Label struct {
	Key, Value string
}

// Sample is one parsed series line.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name, Help, Type string
	Samples          []Sample
}

// Exposition is a parsed /metrics body.
type Exposition struct {
	Families []Family
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *Family {
	for i := range e.Families {
		if e.Families[i].Name == name {
			return &e.Families[i]
		}
	}
	return nil
}

// ParsePrometheus parses a text exposition body. It is strict about
// line syntax (the CI smoke gate relies on that) but tolerant about
// ordering: HELP/TYPE may arrive in either order and samples without a
// preceding header open an implicit untyped family.
func ParsePrometheus(r io.Reader) (*Exposition, error) {
	exp := &Exposition{}
	byName := map[string]int{}
	fam := func(name string) *Family {
		if i, ok := byName[name]; ok {
			return &exp.Families[i]
		}
		byName[name] = len(exp.Families)
		exp.Families = append(exp.Families, Family{Name: name})
		return &exp.Families[len(exp.Families)-1]
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeader(line, fam); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		f := fam(familyNameOf(s.Name, exp, byName))
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading exposition: %w", err)
	}
	return exp, nil
}

// familyNameOf maps a sample name to its owning family: histogram
// sample names carry _bucket/_sum/_count suffixes.
func familyNameOf(sample string, exp *Exposition, byName map[string]int) string {
	for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if i, exists := byName[base]; exists && exp.Families[i].Type == "histogram" {
			return base
		}
	}
	return sample
}

func parseHeader(line string, fam func(string) *Family) error {
	if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
		name, help, _ := strings.Cut(rest, " ")
		if name == "" {
			return fmt.Errorf("HELP line without a metric name")
		}
		fam(name).Help = unescapeHelp(help)
		return nil
	}
	if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
		name, typ, found := strings.Cut(rest, " ")
		if name == "" || !found {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		fam(name).Type = typ
		return nil
	}
	// Other comments are legal and ignored.
	return nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	var err error
	if brace >= 0 {
		s.Name = rest[:brace]
		rest = rest[brace+1:]
		s.Labels, rest, err = parseLabels(rest)
		if err != nil {
			return s, err
		}
	} else {
		var found bool
		s.Name, rest, found = strings.Cut(rest, " ")
		if !found {
			return s, fmt.Errorf("sample line %q has no value", line)
		}
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	s.Value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes `k="v",...}` and returns the remainder after
// the closing brace.
func parseLabels(in string) ([]Label, string, error) {
	var labels []Label
	rest := in
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if key != "le" && !validLabelKey(key) {
			return nil, "", fmt.Errorf("invalid label key %q", key)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label value for %q is not quoted", key)
		}
		val, n, err := unquoteLabelValue(rest[1:])
		if err != nil {
			return nil, "", err
		}
		rest = rest[1+n:]
		labels = append(labels, Label{Key: key, Value: val})
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// errBadEscape reports an escape other than \\, \" or \n; it is a
// package-level value so the parse loop stays allocation-free.
var errBadEscape = errors.New("unknown escape in label value")

// unquoteLabelValue reads up to the closing quote, resolving the three
// exposition escapes; n is the number of input bytes consumed
// including the closing quote.
func unquoteLabelValue(in string) (val string, n int, err error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		c := in[i]
		if c == '"' {
			return b.String(), i + 1, nil
		}
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(in) {
			return "", 0, fmt.Errorf("dangling escape in label value")
		}
		switch in[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", 0, errBadEscape
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// Render writes the exposition back out in the writer's canonical
// format — Parse(WritePrometheus(r)).Render reproduces the bytes, the
// round-trip the tests pin.
func (e *Exposition) Render(w io.Writer) error {
	buf := make([]byte, 0, 4096)
	for i := range e.Families {
		f := &e.Families[i]
		if f.Help != "" || f.Type != "" {
			buf = append(buf, "# HELP "...)
			buf = append(buf, f.Name...)
			buf = append(buf, ' ')
			buf = appendEscapedHelp(buf, f.Help)
			buf = append(buf, '\n')
			buf = append(buf, "# TYPE "...)
			buf = append(buf, f.Name...)
			buf = append(buf, ' ')
			if f.Type == "" {
				buf = append(buf, "untyped"...)
			} else {
				buf = append(buf, f.Type...)
			}
			buf = append(buf, '\n')
		}
		for _, s := range f.Samples {
			buf = append(buf, s.Name...)
			if len(s.Labels) > 0 {
				buf = append(buf, '{')
				for j, l := range s.Labels {
					if j > 0 {
						buf = append(buf, ',')
					}
					buf = append(buf, l.Key...)
					buf = append(buf, '=', '"')
					buf = appendEscaped(buf, l.Value)
					buf = append(buf, '"')
				}
				buf = append(buf, '}')
			}
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, s.Value, 'g', -1, 64)
			buf = append(buf, '\n')
		}
	}
	_, err := w.Write(buf)
	return err
}

// Value returns the value of the sample with the given name and exact
// label set, and whether it was found — a convenience for tests and
// the smoke scraper.
func (e *Exposition) Value(sample string, labelKV ...string) (float64, bool) {
	if len(labelKV)%2 != 0 {
		return math.NaN(), false
	}
	for i := range e.Families {
		for _, s := range e.Families[i].Samples {
			if s.Name != sample || len(s.Labels) != len(labelKV)/2 {
				continue
			}
			match := true
			for j, l := range s.Labels {
				if l.Key != labelKV[2*j] || l.Value != labelKV[2*j+1] {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return math.NaN(), false
}
