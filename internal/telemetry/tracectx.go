package telemetry

import (
	"context"
	"net/http"
)

// Causal identity for spans. A TraceID names one run-scoped causal
// graph (one forecast run, one simulation); a SpanID names one node in
// it. Both are deterministic: the TraceID derives from the run seed via
// DeriveTraceID, span IDs come off an atomic counter on the Tracer, so
// two runs with the same seed and schedule produce the same tree shape
// (span-ID *assignment order* under a concurrent pool follows the
// scheduler, but parent/child edges do not).
//
// The wire form is W3C-traceparent-shaped: lowercase hex, 32 digits of
// trace ID, 16 of span ID, all-zero invalid. wire.TraceContext carries
// the same hex strings across process boundaries; SpanContextFromHex
// and SpanContext.TraceHex/SpanHex convert without either package
// importing the other.

// TraceID is a 128-bit run identity. The zero value means "no trace".
type TraceID struct{ Hi, Lo uint64 }

// IsZero reports whether the TraceID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	var b [32]byte
	appendHex(b[:0], t.Hi)
	appendHex(b[16:16], t.Lo)
	return string(b[:])
}

// SpanID is a 64-bit span identity. Zero means "no span".
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var b [16]byte
	appendHex(b[:0], uint64(s))
	return string(b[:])
}

// SpanContext is the propagated half of a span: enough identity to
// parent remote children under it. The zero value means "no span" and
// injects/extracts as absent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsZero reports whether the context carries no span identity.
func (sc SpanContext) IsZero() bool { return sc.Trace.IsZero() && sc.Span == 0 }

// TraceHex and SpanHex render the wire (hex-string) form used by
// wire.TraceContext. Zero IDs render as "" so legacy payloads stay
// byte-identical.
func (sc SpanContext) TraceHex() string {
	if sc.Trace.IsZero() {
		return ""
	}
	return sc.Trace.String()
}

// SpanHex renders the span ID as 16 hex digits, or "" when zero.
func (sc SpanContext) SpanHex() string {
	if sc.Span == 0 {
		return ""
	}
	return sc.Span.String()
}

// SpanContextFromHex parses the wire (hex-string) form. Empty strings
// yield the corresponding zero component; malformed hex returns
// ok=false. A context with only one half set is accepted here — wire
// validation decides whether that is legal for a given payload.
func SpanContextFromHex(traceID, spanID string) (sc SpanContext, ok bool) {
	if traceID != "" {
		if len(traceID) != 32 {
			return SpanContext{}, false
		}
		hi, ok1 := parseHex(traceID[:16])
		lo, ok2 := parseHex(traceID[16:])
		if !ok1 || !ok2 {
			return SpanContext{}, false
		}
		sc.Trace = TraceID{Hi: hi, Lo: lo}
	}
	if spanID != "" {
		if len(spanID) != 16 {
			return SpanContext{}, false
		}
		v, okv := parseHex(spanID)
		if !okv {
			return SpanContext{}, false
		}
		sc.Span = SpanID(v)
	}
	return sc, true
}

// DeriveTraceID maps a run seed to a non-zero TraceID with a
// splitmix64 finalizer on two counters, so runs restarted from the
// same -seed carry the same trace identity across every process.
func DeriveTraceID(seed uint64) TraceID {
	id := TraceID{Hi: splitmix64(seed), Lo: splitmix64(seed + 0x9e3779b97f4a7c15)}
	if id.IsZero() {
		id.Lo = 1
	}
	return id
}

// splitmix64 is the finalizer from Vigna's SplitMix64 generator: a
// cheap, well-mixed 64-bit hash with no zero fixed point problems once
// the golden-ratio increment is added by the caller.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

// appendHex appends exactly 16 lowercase hex digits.
func appendHex(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xf])
	}
	return dst
}

// parseHex parses up to 16 lowercase hex digits. Uppercase is
// rejected: the traceparent grammar and our canonical form are
// lowercase-only, and accepting both would break re-render canonicity.
func parseHex(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// TraceParentHeader is the HTTP header carrying a SpanContext between
// processes, in the W3C trace-context "traceparent" shape:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// version (00 only) - trace-id (32 hex) - parent-id (16 hex) - flags
// (any two hex digits accepted; re-rendered canonically as 01).
const TraceParentHeader = "Traceparent"

// traceParentLen is the exact length of a traceparent value:
// 2 + 1 + 32 + 1 + 16 + 1 + 2.
const traceParentLen = 55

// FormatTraceParent renders sc in canonical traceparent form. The
// result of parsing any accepted header re-renders to this canonical
// string (FuzzParseTraceContext pins the property).
func FormatTraceParent(sc SpanContext) string {
	b := make([]byte, 0, traceParentLen)
	b = append(b, "00-"...)
	b = appendHex(b, sc.Trace.Hi)
	b = appendHex(b, sc.Trace.Lo)
	b = append(b, '-')
	b = appendHex(b, uint64(sc.Span))
	b = append(b, "-01"...)
	return string(b)
}

// ParseTraceParent parses a traceparent-shaped value. It accepts
// version 00 only, requires lowercase hex throughout, accepts any
// flags byte, and rejects all-zero trace or span IDs (the W3C grammar
// marks both invalid).
func ParseTraceParent(s string) (SpanContext, bool) {
	if len(s) != traceParentLen || s[0] != '0' || s[1] != '0' ||
		s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	hi, ok1 := parseHex(s[3:19])
	lo, ok2 := parseHex(s[19:35])
	sp, ok3 := parseHex(s[36:52])
	_, ok4 := parseHex(s[53:55])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return SpanContext{}, false
	}
	sc := SpanContext{Trace: TraceID{Hi: hi, Lo: lo}, Span: SpanID(sp)}
	if sc.Trace.IsZero() || sc.Span == 0 {
		return SpanContext{}, false
	}
	return sc, true
}

// Inject writes sc into h as a traceparent header. A zero context
// writes nothing, so uninstrumented callers stay header-identical.
func Inject(h http.Header, sc SpanContext) {
	if sc.Trace.IsZero() || sc.Span == 0 {
		return
	}
	h.Set(TraceParentHeader, FormatTraceParent(sc))
}

// Extract reads a SpanContext out of h. ok is false when the header is
// absent or malformed; callers then start a fresh root span.
func Extract(h http.Header) (SpanContext, bool) {
	return ParseTraceParent(h.Get(TraceParentHeader))
}

// spanCtxKey keys the active Span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
// Children started with Telemetry.SpanCtx parent under it. Storing a
// zero Span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp Span) context.Context {
	if sp.tr == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span, or the zero Span when none
// is set. The zero Span's Context() is the zero SpanContext.
func SpanFromContext(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	sp, _ := ctx.Value(spanCtxKey{}).(Span)
	return sp
}
