package telemetry

import (
	"context"
	"io"
	"log/slog"
	"testing"
	"time"
)

// The benchmark suite feeds scripts/bench.sh's allocation gate: the
// enabled hot-path updates (Add/Observe/Emit) and the whole disabled
// path must report 0 allocs/op.

func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("esse_bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := New().Gauge("esse_bench_gauge", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("esse_bench_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%16) * 0.1)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.1)
	}
}

func BenchmarkEventLogEmit(b *testing.B) {
	l := NewEventLog(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Emit("member", i, 0, PhaseDone)
	}
}

func BenchmarkEventLogEmitDisabled(b *testing.B) {
	var l *EventLog
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Emit("member", i, 0, PhaseDone)
	}
}

func BenchmarkSpanStartEndDisabled(b *testing.B) {
	var tel *Telemetry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tel.Span("workflow", "member", int64(i), 0)
		sp.End()
	}
}

func BenchmarkSpanCtxDisabled(b *testing.B) {
	var tel *Telemetry
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := tel.SpanCtx(ctx, "workflow", "member", int64(i), 1)
		sp.End()
	}
}

func BenchmarkSpanCtxEnabled(b *testing.B) {
	tel := New()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := tel.SpanCtx(ctx, "workflow", "member", int64(i), 1)
		sp.End()
	}
}

func BenchmarkLoggerDisabled(b *testing.B) {
	var lg *Logger
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Info("cycle complete", "cycle", i, "converged", true, "elapsed", time.Second)
	}
}

func BenchmarkLoggerEnabled(b *testing.B) {
	lg := NewLogger(io.Discard, slog.LevelInfo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Info("cycle complete", "cycle", i, "converged", true, "elapsed", time.Second)
	}
}

func BenchmarkTraceParentFormat(b *testing.B) {
	sc := SpanContext{Trace: DeriveTraceID(1), Span: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if FormatTraceParent(sc) == "" {
			b.Fatal("empty header")
		}
	}
}

func BenchmarkTraceParentParse(b *testing.B) {
	h := FormatTraceParent(SpanContext{Trace: DeriveTraceID(1), Span: 42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ParseTraceParent(h); !ok {
			b.Fatal("rejected canonical header")
		}
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	tel := New()
	tel.Counter("esse_bench_scrape_total", "C.", "outcome", "done").Add(3)
	tel.Gauge("esse_bench_scrape_gauge", "G.").Set(1.5)
	tel.Histogram("esse_bench_scrape_seconds", "H.", nil).Observe(0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tel.Registry().WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
