package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("esse_test_total", "A counter.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("esse_test_total", "A counter."); again != c {
		t.Fatal("re-registration must return the same handle")
	}

	g := r.Gauge("esse_test_gauge", "A gauge.")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("esse_test_seconds", "A histogram.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 105 {
		t.Fatalf("sum = %v, want 105", h.Sum())
	}

	// Distinct label values are distinct series of one family.
	done := r.Counter("esse_test_outcomes_total", "Labelled.", "outcome", "done")
	failed := r.Counter("esse_test_outcomes_total", "Labelled.", "outcome", "failed")
	if done == failed {
		t.Fatal("different label values must yield different series")
	}
	done.Add(3)
	failed.Add(1)
	if done.Value() != 3 || failed.Value() != 1 {
		t.Fatalf("series values = %d/%d, want 3/1", done.Value(), failed.Value())
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "nil registry hands out nil handles")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry scrape = %q, %v", sb.String(), err)
	}

	var tel *Telemetry
	if tel.Registry() != nil || tel.Events() != nil || tel.Tracer() != nil {
		t.Fatal("nil telemetry must hand out nil components")
	}
	tel.Counter("x_total", "").Inc()
	tel.Gauge("x", "").Set(1)
	tel.Histogram("x_seconds", "", nil).Observe(1)
	tel.Emit("task", 0, 0, PhaseDone)
	sp := tel.Span("cat", "name", -1, 0)
	sp.End()
}

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want substring %q", r, want)
		}
	}()
	f()
}

func TestRegistrationMisusePanics(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "invalid metric name", func() { r.Counter("bad name", "") })
	mustPanic(t, "odd label list", func() { r.Counter("x_total", "", "k") })
	mustPanic(t, "invalid label key", func() { r.Counter("x_total", "", "bad key", "v") })
	mustPanic(t, "invalid label key", func() { r.Counter("x_total", "", "le", "v") })
	mustPanic(t, "duplicate label key", func() { r.Counter("x_total", "", "a", "1", "a", "2") })
	mustPanic(t, "out of order", func() { r.Counter("x_total", "", "b", "1", "a", "2") })

	r.Counter("x_total", "")
	mustPanic(t, "registered as counter", func() { r.Gauge("x_total", "") })

	r.Histogram("h_seconds", "", []float64{1, 2})
	mustPanic(t, "different buckets", func() { r.Histogram("h_seconds", "", []float64{1, 3}) })
	if h := r.Histogram("h_seconds", "", nil); h == nil {
		t.Fatal("nil buckets must reuse the family's layout")
	}
	mustPanic(t, "at least one bucket", func() { r.Histogram("h2_seconds", "", []float64{}) })
	mustPanic(t, "strictly ascending", func() { r.Histogram("h3_seconds", "", []float64{2, 2}) })
}

// TestConcurrentUpdatesAndScrapes exercises the registry under the race
// detector: writers hammer every metric kind while readers scrape the
// text exposition, and every scrape must stay parseable.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	tel := New()
	c := tel.Counter("esse_race_total", "Racing counter.")
	g := tel.Gauge("esse_race_gauge", "Racing gauge.")
	h := tel.Histogram("esse_race_seconds", "Racing histogram.", nil)

	const writers, iters, scrapes = 8, 2000, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.1)
				tel.Emit("race", i, 0, PhaseDone)
				// Registration of an existing series must also be safe
				// concurrently with scrapes.
				tel.Counter("esse_race_total", "Racing counter.").Add(0)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			var sb strings.Builder
			if err := tel.Registry().WritePrometheus(&sb); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
			if _, err := ParsePrometheus(strings.NewReader(sb.String())); err != nil {
				t.Errorf("scrape %d unparseable: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
	if got := h.Count(); got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
	if got := g.Value(); got != writers*iters {
		t.Fatalf("gauge = %v, want %d", got, writers*iters)
	}
}

// TestDisabledPathAllocations pins the zero-allocation guarantee of the
// disabled (nil) path and of the enabled hot-path updates.
func TestDisabledPathAllocations(t *testing.T) {
	var tel *Telemetry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *EventLog

	pin := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(200, f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
	pin("nil Counter.Add", func() { c.Add(1) })
	pin("nil Gauge.Set", func() { g.Set(1) })
	pin("nil Histogram.Observe", func() { h.Observe(1) })
	pin("nil EventLog.Emit", func() { l.Emit("member", 3, 0, PhaseRunning) })
	pin("nil Telemetry.Emit", func() { tel.Emit("member", 3, 0, PhaseRunning) })
	pin("nil Telemetry.Span", func() {
		sp := tel.Span("workflow", "member", 3, 1)
		sp.End()
	})
	ctx := context.Background()
	pin("nil Telemetry.SpanCtx", func() {
		_, sp := tel.SpanCtx(ctx, "workflow", "member", 3, 1)
		sp.End()
	})
	pin("nil Telemetry.SpanRemote", func() {
		_, sp := tel.SpanRemote(ctx, SpanContext{}, "http", "route", -1, 1)
		sp.End()
	})

	// Enabled hot-path updates are also allocation-free (registration is
	// not: it happens once, outside the loops).
	on := New()
	ec := on.Counter("esse_alloc_total", "")
	eg := on.Gauge("esse_alloc_gauge", "")
	eh := on.Histogram("esse_alloc_seconds", "", nil)
	pin("enabled Counter.Add", func() { ec.Add(1) })
	pin("enabled Gauge.Set", func() { eg.Set(2) })
	pin("enabled Histogram.Observe", func() { eh.Observe(0.3) })
	pin("enabled EventLog.Emit", func() { on.Emit("member", 3, 0, PhaseRunning) })
}
