package telemetry

import (
	"encoding/json"
	"testing"
)

func TestEventLogWraparound(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emit("member", i, 0, PhaseDone)
	}
	if got := l.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := l.Oldest(); got != 6 {
		t.Fatalf("Oldest = %d, want 6", got)
	}

	evs := l.Snapshot(0)
	if len(evs) != 4 {
		t.Fatalf("Snapshot(0) = %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := int64(6 + i)
		if e.Seq != wantSeq || e.Index != int(wantSeq) {
			t.Fatalf("event %d = seq %d index %d, want seq/index %d", i, e.Seq, e.Index, wantSeq)
		}
		if e.Task != "member" || e.Phase != PhaseDone {
			t.Fatalf("event %d = %+v", i, e)
		}
	}

	if evs := l.Snapshot(8); len(evs) != 2 || evs[0].Seq != 8 {
		t.Fatalf("Snapshot(8) = %+v, want seqs 8,9", evs)
	}
	if evs := l.Snapshot(100); evs != nil {
		t.Fatalf("Snapshot(100) = %+v, want nil", evs)
	}
}

func TestEventLogBeforeWraparound(t *testing.T) {
	l := NewEventLog(8)
	if l.Total() != 0 || l.Oldest() != 0 || l.Snapshot(0) != nil {
		t.Fatal("empty log must report zero state")
	}
	l.Emit("cycle", 1, 0, PhaseRunning)
	l.Emit("cycle", 1, 0, PhaseDone)
	if l.Oldest() != 0 {
		t.Fatalf("Oldest = %d before wraparound, want 0", l.Oldest())
	}
	evs := l.Snapshot(0)
	if len(evs) != 2 || evs[0].Phase != PhaseRunning || evs[1].Phase != PhaseDone {
		t.Fatalf("Snapshot = %+v", evs)
	}
	if evs[0].Unix == 0 {
		t.Fatal("event timestamp missing")
	}
}

func TestNewEventLogDefaultCapacity(t *testing.T) {
	l := NewEventLog(0)
	if len(l.buf) != DefaultEventCap {
		t.Fatalf("default capacity = %d, want %d", len(l.buf), DefaultEventCap)
	}
}

func TestPhaseNamesAndJSON(t *testing.T) {
	want := map[Phase]string{
		PhaseQueued:     "queued",
		PhaseDispatched: "dispatched",
		PhaseRunning:    "running",
		PhaseRetried:    "retried",
		PhaseDone:       "done",
		PhaseFailed:     "failed",
		PhaseCancelled:  "cancelled",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), name)
		}
	}
	if Phase(200).String() != "unknown" {
		t.Errorf("out-of-range phase = %q", Phase(200).String())
	}

	e := Event{Seq: 3, Unix: 42, Task: "member", Index: 7, Attempt: 1, Phase: PhaseRetried}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["phase"] != "retried" {
		t.Fatalf("phase encodes as %v, want \"retried\"", decoded["phase"])
	}
	if decoded["task"] != "member" || decoded["t_unix_ns"] != float64(42) {
		t.Fatalf("event JSON = %s", raw)
	}

	var back Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Fatalf("round trip: %+v != %+v", back, e)
	}
	var p Phase
	if err := json.Unmarshal([]byte(`"done"`), &p); err != nil || p != PhaseDone {
		t.Fatalf("name decode = %v, %v", p, err)
	}
	if err := json.Unmarshal([]byte(`2`), &p); err != nil || p != PhaseRunning {
		t.Fatalf("numeric decode = %v, %v", p, err)
	}
	if err := json.Unmarshal([]byte(`"wavelet"`), &p); err == nil {
		t.Fatal("unknown phase name must not decode")
	}
}
