package telemetry

import (
	"runtime"
	"runtime/metrics"
	"time"
)

// RuntimeSampler periodically publishes Go runtime health — heap
// bytes, GC cycles and pause time, goroutine count — as gauges in a
// Registry, using the runtime/metrics sample API so reads do not
// stop the world the way runtime.ReadMemStats does.
type RuntimeSampler struct {
	samples    []metrics.Sample
	heap       *Gauge
	gcCycles   *Gauge
	gcPauseSec *Gauge
	goroutines *Gauge
	interval   time.Duration
	stop       chan struct{}
	done       chan struct{}
}

// runtime/metrics names sampled; indices into RuntimeSampler.samples.
const (
	sampleHeap = iota
	sampleGCCycles
	sampleGCPause
	sampleCount
)

// StartRuntimeSampler registers the runtime gauges in t's registry and
// starts a sampling goroutine (interval <= 0 selects 1s). It returns
// nil — and starts nothing — when telemetry is disabled. Call Stop to
// shut the goroutine down.
func StartRuntimeSampler(t *Telemetry, interval time.Duration) *RuntimeSampler {
	if t == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	s := &RuntimeSampler{
		samples:    make([]metrics.Sample, sampleCount),
		heap:       t.Gauge("go_heap_objects_bytes", "Bytes of heap memory occupied by live plus unswept objects."),
		gcCycles:   t.Gauge("go_gc_cycles_total", "Completed GC cycles since process start."),
		gcPauseSec: t.Gauge("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause seconds."),
		goroutines: t.Gauge("go_goroutines", "Number of live goroutines."),
		interval:   interval,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	s.samples[sampleHeap].Name = "/memory/classes/heap/objects:bytes"
	s.samples[sampleGCCycles].Name = "/gc/cycles/total:gc-cycles"
	s.samples[sampleGCPause].Name = "/sched/pauses/total/gc:seconds"
	s.SampleOnce()
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.SampleOnce()
		}
	}
}

// SampleOnce reads the runtime metrics and updates the gauges. Safe to
// call directly (tests, final pre-shutdown readings); nil-safe.
func (s *RuntimeSampler) SampleOnce() {
	if s == nil {
		return
	}
	metrics.Read(s.samples)
	if v := s.samples[sampleHeap].Value; v.Kind() == metrics.KindUint64 {
		s.heap.Set(float64(v.Uint64()))
	}
	if v := s.samples[sampleGCCycles].Value; v.Kind() == metrics.KindUint64 {
		s.gcCycles.Set(float64(v.Uint64()))
	}
	if v := s.samples[sampleGCPause].Value; v.Kind() == metrics.KindFloat64Histogram {
		s.gcPauseSec.Set(histTotalSeconds(v.Float64Histogram()))
	}
	s.goroutines.Set(float64(runtime.NumGoroutine()))
}

// histTotalSeconds approximates the cumulative seconds in a
// runtime/metrics float64 histogram by summing count × bucket midpoint
// (edge buckets use their finite bound).
func histTotalSeconds(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	total := 0.0
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if isInfOrNaN(lo) {
			mid = hi
		} else if isInfOrNaN(hi) {
			mid = lo
		}
		total += float64(n) * mid
	}
	return total
}

func isInfOrNaN(v float64) bool {
	// NaN self-inequality plus infinity bound checks; floatcmp exempts
	// the identical-operand idiom.
	return v != v || v > 1e300 || v < -1e300
}

// Stop terminates the sampling goroutine and waits for it to exit,
// taking one final sample so shutdown-time readings are fresh.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.SampleOnce()
}
