package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParsePrometheus drives the strict exposition parser with
// adversarial input. Beyond not panicking, it pins the round-trip
// property the CI smoke gate relies on: any exposition the parser
// accepts must Render back out to bytes the parser accepts again,
// preserving every sample.
func FuzzParsePrometheus(f *testing.F) {
	seeds := []string{
		// The shapes WritePrometheus emits.
		"# HELP up Whether the target is up.\n# TYPE up gauge\nup 1\n",
		"# TYPE reqs counter\nreqs{method=\"get\",code=\"200\"} 1027\nreqs{method=\"post\"} 3\n",
		"# TYPE lat histogram\nlat_bucket{le=\"0.1\"} 3\nlat_bucket{le=\"+Inf\"} 5\nlat_sum 0.8\nlat_count 5\n",
		// Order tolerance: TYPE after the samples it governs.
		"x_bucket{le=\"1\"} 2\n# TYPE x histogram\n",
		// Escapes, timestamps, exotic values.
		"m{k=\"a\\\\b\\\"c\\nd\"} 2.5e-3 1712000000\n",
		"m 0x1p-2\nm NaN\nm +Inf\n",
		"# HELP h line with \\n escape\n# TYPE h untyped\nh 0\n",
		// Malformed lines the parser must reject, not crash on.
		"m{k=\"unterminated\n",
		"m{k=\"bad\\escape\"} 1\n",
		"m{} \n",
		"# TYPE t notatype\n",
		"no_value\n",
		"m 1 not-a-timestamp\n",
		strings.Repeat("a", 70000) + " 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		exp, err := ParsePrometheus(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and hangs are what we hunt
		}
		var buf bytes.Buffer
		if err := exp.Render(&buf); err != nil {
			t.Fatalf("accepted exposition failed to render: %v\ninput: %q", err, data)
		}
		again, err := ParsePrometheus(&buf)
		if err != nil {
			t.Fatalf("rendered exposition does not reparse: %v\nrendered: %q\ninput: %q", err, buf.Bytes(), data)
		}
		if got, want := countSamples(again), countSamples(exp); got != want {
			t.Fatalf("round trip changed sample count %d -> %d\nrendered: %q\ninput: %q", want, got, buf.Bytes(), data)
		}
	})
}

func countSamples(e *Exposition) int {
	n := 0
	for i := range e.Families {
		n += len(e.Families[i].Samples)
	}
	return n
}

// FuzzParseTraceContext drives the strict traceparent parser with
// adversarial headers. Beyond not panicking, it pins the canonical
// round-trip property the HTTP propagation pair relies on: any header
// the parser accepts must re-render through FormatTraceParent to a
// header the parser accepts again, yielding the same span context —
// and the re-rendered form is canonical (version 00, flags 01).
func FuzzParseTraceContext(f *testing.F) {
	canonical := FormatTraceParent(SpanContext{Trace: DeriveTraceID(1), Span: 42})
	seeds := []string{
		canonical,
		canonical[:len(canonical)-2] + "ff", // exotic flags, still valid
		canonical[:len(canonical)-2] + "00", // not-sampled flags, still parsed
		"",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("0", 16) + "-01", // all-zero ids
		"01" + canonical[2:],           // future version
		strings.ToUpper(canonical),     // uppercase hex
		canonical[:54],                 // truncated
		canonical + "-extra",           // trailing junk
		strings.Repeat("0-", 27) + "0", // dashes everywhere
		"00-zz" + canonical[5:],        // non-hex trace
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sc, ok := ParseTraceParent(s)
		if !ok {
			return // rejection is fine; panics are what we hunt
		}
		if sc.Trace.IsZero() || sc.Span == 0 {
			t.Fatalf("accepted a header with a zero id: %q -> %+v", s, sc)
		}
		re := FormatTraceParent(sc)
		if len(re) != 55 || re[:3] != "00-" || re[len(re)-3:] != "-01" {
			t.Fatalf("re-render not canonical: %q from %q", re, s)
		}
		again, ok := ParseTraceParent(re)
		if !ok || again != sc {
			t.Fatalf("canonical form does not round trip: %q -> %q -> %+v, %v", s, re, again, ok)
		}
	})
}
