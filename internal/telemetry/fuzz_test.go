package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParsePrometheus drives the strict exposition parser with
// adversarial input. Beyond not panicking, it pins the round-trip
// property the CI smoke gate relies on: any exposition the parser
// accepts must Render back out to bytes the parser accepts again,
// preserving every sample.
func FuzzParsePrometheus(f *testing.F) {
	seeds := []string{
		// The shapes WritePrometheus emits.
		"# HELP up Whether the target is up.\n# TYPE up gauge\nup 1\n",
		"# TYPE reqs counter\nreqs{method=\"get\",code=\"200\"} 1027\nreqs{method=\"post\"} 3\n",
		"# TYPE lat histogram\nlat_bucket{le=\"0.1\"} 3\nlat_bucket{le=\"+Inf\"} 5\nlat_sum 0.8\nlat_count 5\n",
		// Order tolerance: TYPE after the samples it governs.
		"x_bucket{le=\"1\"} 2\n# TYPE x histogram\n",
		// Escapes, timestamps, exotic values.
		"m{k=\"a\\\\b\\\"c\\nd\"} 2.5e-3 1712000000\n",
		"m 0x1p-2\nm NaN\nm +Inf\n",
		"# HELP h line with \\n escape\n# TYPE h untyped\nh 0\n",
		// Malformed lines the parser must reject, not crash on.
		"m{k=\"unterminated\n",
		"m{k=\"bad\\escape\"} 1\n",
		"m{} \n",
		"# TYPE t notatype\n",
		"no_value\n",
		"m 1 not-a-timestamp\n",
		strings.Repeat("a", 70000) + " 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		exp, err := ParsePrometheus(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and hangs are what we hunt
		}
		var buf bytes.Buffer
		if err := exp.Render(&buf); err != nil {
			t.Fatalf("accepted exposition failed to render: %v\ninput: %q", err, data)
		}
		again, err := ParsePrometheus(&buf)
		if err != nil {
			t.Fatalf("rendered exposition does not reparse: %v\nrendered: %q\ninput: %q", err, buf.Bytes(), data)
		}
		if got, want := countSamples(again), countSamples(exp); got != want {
			t.Fatalf("round trip changed sample count %d -> %d\nrendered: %q\ninput: %q", want, got, buf.Bytes(), data)
		}
	})
}

func countSamples(e *Exposition) int {
	n := 0
	for i := range e.Families {
		n += len(e.Families[i].Samples)
	}
	return n
}
