package telemetry

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// DefaultEventCap is the event-ring capacity used when NewEventLog is
// given a non-positive one. At ~64 bytes per event the default ring
// pins ~256 KiB — enough for several full forecast cycles of member
// lifecycles before wraparound.
const DefaultEventCap = 4096

// Phase is one station of the task lifecycle: queued → dispatched →
// running → (retried →) done | failed | cancelled. It mirrors the
// member states of the paper's Section 4 workflow: queued members wait
// for a pool slot, dispatched members have been accepted by a pool
// worker (emitted worker-side so each task's phases are ordered),
// retried members consumed one of their failure-tolerance attempts,
// cancelled members were overtaken by convergence or the deadline.
// PhaseDone, PhaseFailed and PhaseCancelled are terminal.
//
//esselint:fsm PhaseQueued->PhaseDispatched, PhaseDispatched->PhaseRunning, PhaseRunning->PhaseDone, PhaseRunning->PhaseFailed, PhaseRunning->PhaseRetried, PhaseRetried->PhaseDispatched, PhaseQueued->PhaseCancelled, PhaseDispatched->PhaseCancelled, PhaseRunning->PhaseCancelled
type Phase uint8

const (
	// PhaseQueued marks a task eligible for dispatch.
	PhaseQueued Phase = iota
	// PhaseDispatched marks a task handed to the worker pool.
	PhaseDispatched
	// PhaseRunning marks a worker starting the task.
	PhaseRunning
	// PhaseRetried marks a failed attempt being retried.
	PhaseRetried
	// PhaseDone marks successful completion.
	PhaseDone
	// PhaseFailed marks abandonment after retries.
	PhaseFailed
	// PhaseCancelled marks convergence/deadline/context cancellation.
	PhaseCancelled
)

// phaseNames is indexed by Phase; keep in sync with the constants.
var phaseNames = [...]string{
	"queued", "dispatched", "running", "retried", "done", "failed", "cancelled",
}

// String names the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// MarshalJSON renders the phase as its name.
func (p Phase) MarshalJSON() ([]byte, error) {
	name := p.String()
	out := make([]byte, 0, len(name)+2)
	out = append(out, '"')
	out = append(out, name...)
	out = append(out, '"')
	return out, nil
}

// UnmarshalJSON inverts MarshalJSON, accepting a phase name or its
// numeric value, so /events payloads decode back into Event.
func (p *Phase) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		name := s[1 : len(s)-1]
		for i := range phaseNames {
			if phaseNames[i] == name {
				*p = Phase(i)
				return nil
			}
		}
		return fmt.Errorf("telemetry: unknown phase %q", name)
	}
	v, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return fmt.Errorf("telemetry: bad phase %s", s)
	}
	*p = Phase(v)
	return nil
}

// Event is one lifecycle transition. Task names the task family
// ("member", "svd", "cycle", "climate", ...), Index the instance
// (member index, cycle number, climate task id), Attempt the retry
// ordinal (0 for the first try).
type Event struct {
	Seq     int64  `json:"seq"`
	Unix    int64  `json:"t_unix_ns"`
	Task    string `json:"task"`
	Index   int    `json:"index"`
	Attempt int    `json:"attempt"`
	Phase   Phase  `json:"phase"`
}

// EventLog is a bounded ring of lifecycle events: emission is O(1),
// never blocks, never allocates, and overwrites the oldest entry when
// full — a monitoring channel must not be able to stall the engine it
// observes. The nil *EventLog is a no-op.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	next int64 // total events ever emitted; buf slot = next % len(buf)
}

// NewEventLog returns a ring holding the last capacity events
// (DefaultEventCap when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Emit records one event. Safe for concurrent use; allocation-free.
func (l *EventLog) Emit(task string, index, attempt int, phase Phase) {
	if l == nil {
		return
	}
	now := time.Now().UnixNano()
	l.mu.Lock()
	l.buf[int(l.next%int64(len(l.buf)))] = Event{
		Seq:     l.next,
		Unix:    now,
		Task:    task,
		Index:   index,
		Attempt: attempt,
		Phase:   phase,
	}
	l.next++
	l.mu.Unlock()
}

// Total returns how many events have ever been emitted (including any
// already overwritten).
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Oldest returns the sequence number of the oldest event still held.
func (l *EventLog) Oldest() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oldestLocked()
}

func (l *EventLog) oldestLocked() int64 {
	if l.next <= int64(len(l.buf)) {
		return 0
	}
	return l.next - int64(len(l.buf))
}

// Snapshot copies out the retained events with Seq >= since, in
// sequence order. A since of 0 returns everything still in the ring.
func (l *EventLog) Snapshot(since int64) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lo := l.oldestLocked()
	if since > lo {
		lo = since
	}
	if lo >= l.next {
		return nil
	}
	out := make([]Event, 0, l.next-lo)
	for seq := lo; seq < l.next; seq++ {
		out = append(out, l.buf[int(seq%int64(len(l.buf)))])
	}
	return out
}
