package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default histogram bucket layout (seconds), a
// latency-shaped geometric ladder matching the Prometheus default.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing series. The nil *Counter is a
// no-op, so disabled telemetry costs one predictable branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down, stored as float64 bits.
// The nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, want) {
			return
		}
	}
}

// Value returns the current gauge reading (0 on the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed, sorted set of upper
// bounds plus the implicit +Inf bucket, tracking sum and count. All
// updates are atomic; Observe never allocates. The nil *Histogram is a
// no-op.
type Histogram struct {
	upper   []float64 // strictly ascending; excludes +Inf
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i := range h.upper {
		if v <= h.upper[i] {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, want) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of observations (0 on the nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on the nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// series is one label combination of a family.
type series struct {
	labels string // rendered `k="v",k2="v2"` form, "" for unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: a help string, a kind and its series.
type family struct {
	name, help string
	kind       metricKind
	buckets    []float64 // histograms only
	byLabel    map[string]*series
	ordered    []*series // sorted by labels, maintained on insert
}

// Registry holds metric families. Registration (Counter/Gauge/
// Histogram) takes the registry lock and may allocate; the returned
// handles update lock-free. The nil *Registry hands out nil handles,
// making the whole disabled path allocation-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names, maintained on insert
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or fetches) a counter series. labelKV alternates
// label keys and values; keys must be compile-time constants, sorted
// and distinct (enforced statically by esselint's metriclabels and
// dynamically here — misuse panics, it is a programming error).
func (r *Registry) Counter(name, help string, labelKV ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, kindCounter, nil, labelKV)
	return s.c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labelKV ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, kindGauge, nil, labelKV)
	return s.g
}

// Histogram registers (or fetches) a histogram series with the given
// upper bucket bounds (strictly ascending, +Inf implicit; nil selects
// DefBuckets). Bounds are fixed per family: a second registration must
// repeat them or pass nil to reuse the family's existing layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labelKV ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, kindHistogram, buckets, labelKV)
	return s.h
}

func (r *Registry) getOrCreate(name, help string, kind metricKind, buckets []float64, labelKV []string) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	labels := renderLabels(labelKV)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		if kind == kindHistogram {
			if buckets == nil {
				buckets = DefBuckets
			}
			validateBuckets(name, buckets)
		}
		fam = &family{name: name, help: help, kind: kind, buckets: buckets, byLabel: map[string]*series{}}
		r.families[name] = fam
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v, requested as %v", name, fam.kind, kind))
	}
	if kind == kindHistogram && buckets != nil && !sameBuckets(fam.buckets, buckets) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with different buckets", name))
	}
	if s := fam.byLabel[labels]; s != nil {
		return s
	}
	s := &series{labels: labels}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{
			upper:  fam.buckets,
			counts: make([]atomic.Uint64, len(fam.buckets)),
		}
	}
	fam.byLabel[labels] = s
	i := sort.Search(len(fam.ordered), func(i int) bool { return fam.ordered[i].labels >= labels })
	fam.ordered = append(fam.ordered, nil)
	copy(fam.ordered[i+1:], fam.ordered[i:])
	fam.ordered[i] = s
	return s
}

// renderLabels validates the key/value pairing discipline and renders
// the canonical `k="v"` comma-joined form used as the series key.
func renderLabels(labelKV []string) string {
	if len(labelKV) == 0 {
		return ""
	}
	if len(labelKV)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list (%d items): keys and values must alternate", len(labelKV)))
	}
	out := make([]byte, 0, 64)
	for i := 0; i < len(labelKV); i += 2 {
		k, v := labelKV[i], labelKV[i+1]
		if !validLabelKey(k) {
			panic(fmt.Sprintf("telemetry: invalid label key %q", k))
		}
		if i > 0 {
			prev := labelKV[i-2]
			if k == prev {
				panic(fmt.Sprintf("telemetry: duplicate label key %q", k))
			}
			if k < prev {
				panic(fmt.Sprintf("telemetry: label keys out of order: %q after %q", k, prev))
			}
			out = append(out, ',')
		}
		out = append(out, k...)
		out = append(out, '=', '"')
		out = appendEscaped(out, v)
		out = append(out, '"')
	}
	return string(out)
}

// appendEscaped escapes backslash, double quote and newline per the
// Prometheus text exposition rules.
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelKey(s string) bool {
	if s == "" || s == "le" { // reserved for histogram buckets
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validateBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not strictly ascending", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		panic(fmt.Sprintf("telemetry: histogram %q must not list +Inf explicitly", name))
	}
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//esselint:allow floatcmp bucket bounds are configuration constants compared for identity, not computed values
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
