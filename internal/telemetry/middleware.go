package telemetry

import (
	"net/http"
	"time"
)

// httpLane is the Chrome tid server-side HTTP spans render on — a
// dedicated row well clear of worker lanes, so request handling reads
// as its own swimlane next to the compute spans.
const httpLane = 90

// Instrument wraps an HTTP handler with trace propagation and
// per-route metrics: it extracts an inbound traceparent header (if
// any), opens a server span parented under the remote caller, threads
// the span through the request context for handlers that trace deeper,
// and records request count and latency labeled by route.
//
// Nil-safe: a nil *Telemetry returns h unchanged, so uninstrumented
// servers pay nothing.
func (t *Telemetry) Instrument(route string, h http.Handler) http.Handler {
	if t == nil || h == nil {
		return h
	}
	reqs := t.Counter("esse_http_requests_total",
		"HTTP requests served, by instrumented route.", "route", route)
	secs := t.Histogram("esse_http_request_seconds",
		"HTTP request wall-clock latency, by instrumented route.", nil, "route", route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		parent, _ := Extract(r.Header)
		ctx, sp := t.SpanRemote(r.Context(), parent, "http", route, -1, httpLane)
		start := time.Now()
		h.ServeHTTP(w, r.WithContext(ctx))
		sp.End()
		secs.Observe(time.Since(start).Seconds())
	})
}
