package telemetry

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestLoggerWritesStructuredLines(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	lg.Info("cycle complete", "cycle", 3, "converged", true, "elapsed", 2*time.Second, "rho", 0.9)
	line := buf.String()
	for _, want := range []string{"msg=\"cycle complete\"", "cycle=3", "converged=true", "elapsed=2s", "rho=0.9", "level=INFO"} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelWarn)
	lg.Debug("d")
	lg.Info("i")
	if buf.Len() != 0 {
		t.Fatalf("below-min levels wrote: %s", buf.String())
	}
	lg.Warn("w")
	lg.Error("e", "err", errors.New("boom").Error())
	out := buf.String()
	if !strings.Contains(out, "level=WARN") || !strings.Contains(out, "err=boom") {
		t.Fatalf("output = %s", out)
	}
}

func TestLoggerWithSpanStampsIdentity(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer()
	tr.SetTraceID(DeriveTraceID(4))
	sp := tr.StartChild(SpanContext{}, "workflow", "member", 1, 0)

	lg := NewLogger(&buf, slog.LevelInfo).WithSpan(sp.Context())
	lg.Info("hello")
	line := buf.String()
	if !strings.Contains(line, "trace_id="+sp.Context().TraceHex()) ||
		!strings.Contains(line, "span_id="+sp.Context().SpanHex()) {
		t.Fatalf("line missing trace correlation: %s", line)
	}

	// WithContext picks the active span out of a context.
	buf.Reset()
	ctx := ContextWithSpan(context.Background(), sp)
	NewLogger(&buf, slog.LevelInfo).WithContext(ctx).Info("hi")
	if !strings.Contains(buf.String(), "span_id="+sp.Context().SpanHex()) {
		t.Fatalf("WithContext line missing span: %s", buf.String())
	}

	// Without a span no identity attrs appear.
	buf.Reset()
	NewLogger(&buf, slog.LevelInfo).Info("plain")
	if strings.Contains(buf.String(), "trace_id=") {
		t.Fatalf("uncorrelated line grew a trace_id: %s", buf.String())
	}
}

func TestLoggerMalformedKV(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	lg.Info("odd", "dangling")
	if !strings.Contains(buf.String(), "!badkey=dangling") {
		t.Fatalf("dangling key not marked: %s", buf.String())
	}
	buf.Reset()
	lg.Info("nonstring", 42, "v")
	if !strings.Contains(buf.String(), "!badkey=v") {
		t.Fatalf("non-string key not marked: %s", buf.String())
	}
	buf.Reset()
	lg.Info("badvalue", "k", struct{}{})
	if !strings.Contains(buf.String(), "k=!badvalue") {
		t.Fatalf("unsupported value not marked: %s", buf.String())
	}
}

func TestNilLoggerIsInert(t *testing.T) {
	var lg *Logger
	lg.Debug("d")
	lg.Info("i", "k", 1)
	lg.Warn("w")
	lg.Error("e", "err", "x")
	if lg.Dropped() != 0 {
		t.Fatal("nil logger dropped records")
	}
	if lg.WithSpan(SpanContext{Trace: DeriveTraceID(1), Span: 1}) != nil {
		t.Fatal("WithSpan on nil logger must stay nil")
	}
	if lg.WithContext(context.Background()) != nil {
		t.Fatal("WithContext on nil logger must stay nil")
	}
}

// failWriter fails every write, for the dropped-records counter.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("wall") }

func TestLoggerCountsDroppedWrites(t *testing.T) {
	lg := NewLogger(failWriter{}, slog.LevelInfo)
	lg.Info("a")
	lg.Info("b")
	lg.Debug("filtered, not dropped")
	if got := lg.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	// With copies share the counter.
	cp := lg.WithSpan(SpanContext{Trace: DeriveTraceID(1), Span: 1})
	cp.Error("c")
	if got := lg.Dropped(); got != 3 {
		t.Fatalf("Dropped after copy = %d, want 3", got)
	}
}

// TestDisabledLoggingAllocations pins the tentpole property: a nil
// logger call site with a mixed non-constant kv list performs zero
// allocations — the variadic boxing stays on the caller's stack.
func TestDisabledLoggingAllocations(t *testing.T) {
	var lg *Logger
	n := 3
	s := "value"
	d := time.Second
	f := 0.5
	if got := testing.AllocsPerRun(200, func() {
		lg.Info("msg", "n", n, "s", s, "d", d, "f", f, "ok", true)
	}); got != 0 {
		t.Fatalf("nil Logger.Info: %v allocs/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		lg.Error("msg", "n", n+1, "s", s)
	}); got != 0 {
		t.Fatalf("nil Logger.Error: %v allocs/op, want 0", got)
	}
}
