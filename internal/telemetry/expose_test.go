package telemetry

import (
	"math"
	"strings"
	"testing"
)

// scrapeString renders the registry into a string.
func scrapeString(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestExpositionRoundTrip pins the writer/parser pair: the writer's
// canonical output parses back, and re-rendering the parse reproduces
// the bytes exactly.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("esse_rt_total", "Counted things.", "outcome", "done").Add(3)
	r.Counter("esse_rt_total", "Counted things.", "outcome", "failed").Add(1)
	r.Gauge("esse_rt_gauge", `Help with \ backslash and
newline.`).Set(-2.25)
	h := r.Histogram("esse_rt_seconds", "Latencies.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}

	text := scrapeString(t, r)
	exp, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	var sb strings.Builder
	if err := exp.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != text {
		t.Fatalf("render != original\n--- wrote ---\n%s--- re-rendered ---\n%s", text, sb.String())
	}

	// The parse sees the structure, not just the bytes.
	fam := exp.Family("esse_rt_seconds")
	if fam == nil || fam.Type != "histogram" || fam.Help != "Latencies." {
		t.Fatalf("histogram family = %+v", fam)
	}
	if n := len(fam.Samples); n != 6 { // 4 buckets (incl +Inf) + sum + count
		t.Fatalf("histogram samples = %d, want 6", n)
	}
	g := exp.Family("esse_rt_gauge")
	if g == nil || g.Help != "Help with \\ backslash and\nnewline." {
		t.Fatalf("help not unescaped: %+v", g)
	}
}

func TestExpositionValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("esse_v_total", "", "outcome", "done").Add(7)
	h := r.Histogram("esse_v_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	exp, err := ParsePrometheus(strings.NewReader(scrapeString(t, r)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("esse_v_total", "outcome", "done"); !ok || v != 7 {
		t.Fatalf("counter value = %v, %v", v, ok)
	}
	// Histogram buckets are cumulative and end at +Inf == count.
	if v, ok := exp.Value("esse_v_seconds_bucket", "le", "1"); !ok || v != 1 {
		t.Fatalf("le=1 bucket = %v, %v", v, ok)
	}
	if v, ok := exp.Value("esse_v_seconds_bucket", "le", "2"); !ok || v != 2 {
		t.Fatalf("le=2 bucket = %v, %v", v, ok)
	}
	if v, ok := exp.Value("esse_v_seconds_bucket", "le", "+Inf"); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
	if v, ok := exp.Value("esse_v_seconds_count"); !ok || v != 3 {
		t.Fatalf("count = %v, %v", v, ok)
	}
	if v, ok := exp.Value("esse_v_seconds_sum"); !ok || v != 11 {
		t.Fatalf("sum = %v, %v", v, ok)
	}
	if _, ok := exp.Value("esse_v_total"); ok {
		t.Fatal("label-less lookup must not match the labelled series")
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("esse_esc", "", "path", "a\\b\"c\nd").Set(1)
	text := scrapeString(t, r)
	exp, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if v, ok := exp.Value("esse_esc", "path", "a\\b\"c\nd"); !ok || v != 1 {
		t.Fatalf("escaped label round-trip failed: %v %v in\n%s", v, ok, text)
	}
}

func TestParsePrometheusErrors(t *testing.T) {
	bad := []string{
		"esse_x",                     // no value
		"esse_x notanumber",          // bad value
		"esse_x{k=\"v\" 1",           // unterminated label set
		"esse_x{k=\"v\\q\"} 1",       // unknown escape
		"esse_x{k=v} 1",              // unquoted value
		"esse_x{=\"v\"} 1",           // empty key
		"esse_x 1 2 3",               // trailing junk
		"9leading 1",                 // invalid name
		"# TYPE esse_x wavelet",      // unknown type
		"# TYPE esse_x",              // truncated TYPE
		"# HELP  trailing",           // HELP without name
		"esse_x{k=\"unterminated} 1", // unterminated value
		"esse_x{k=\"v\"} 1 notatime", // bad timestamp
	}
	for _, line := range bad {
		if _, err := ParsePrometheus(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted malformed input", line)
		}
	}

	good := []string{
		"",                       // empty body
		"# arbitrary comment\n",  // non-header comment
		"esse_x 1 1700000000\n",  // timestamp accepted
		"esse_x{} 1\n",           // empty label set
		"esse_x{le=\"0.5\"} 1\n", // le legal in parse direction
		"# TYPE esse_x counter\nesse_x 1\n",
	}
	for _, text := range good {
		if _, err := ParsePrometheus(strings.NewReader(text)); err != nil {
			t.Errorf("ParsePrometheus(%q): %v", text, err)
		}
	}
}

// TestHistogramBucketOrdering checks the exposition's cumulative-bucket
// invariant on the default layout.
func TestHistogramBucketOrdering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("esse_def_seconds", "", nil)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.17)
	}
	exp, err := ParsePrometheus(strings.NewReader(scrapeString(t, r)))
	if err != nil {
		t.Fatal(err)
	}
	fam := exp.Family("esse_def_seconds")
	if fam == nil {
		t.Fatal("family missing")
	}
	prev := -1.0
	buckets := 0
	for _, s := range fam.Samples {
		if s.Name != "esse_def_seconds_bucket" {
			continue
		}
		buckets++
		if s.Value < prev {
			t.Fatalf("bucket counts not cumulative: %v after %v", s.Value, prev)
		}
		prev = s.Value
	}
	if buckets != len(DefBuckets)+1 {
		t.Fatalf("bucket samples = %d, want %d", buckets, len(DefBuckets)+1)
	}
	if math.Abs(prev-100) > 0 {
		t.Fatalf("+Inf bucket = %v, want 100", prev)
	}
}
