// Package telemetry is the repository's end-to-end observability layer:
// the piece the paper's Grid deployment lacked ("This approach gives no
// easy way for the user to monitor the progress of one's jobs", §5.3.1)
// and the profiling/introspection surface every production many-task
// system grows — EnTK's profiler over its ensemble executor and
// Melissa-DA's launcher fault handling are the published precedents.
//
// It bundles four facilities, all stdlib-only:
//
//   - a metrics Registry (registry.go): atomic counters, gauges and
//     fixed-bucket histograms with constant, sorted label sets, exposed
//     in Prometheus text format at /metrics (expose.go);
//   - a per-task lifecycle EventLog (events.go): a bounded ring of
//     queued → dispatched → running → retried → done/failed/cancelled
//     transitions emitted by the workflow engine, the realtime driver
//     and the acoustic climate pool, served at /events;
//   - a wall-clock span Tracer (spans.go) exporting Chrome trace-event
//     JSON (load it in chrome://tracing or https://ui.perfetto.dev) so
//     an actual run renders as the MTC task Gantt of the paper's
//     Fig. 1. It complements — does not replace — internal/trace's
//     paper-time Timeline: Timeline records simulated ocean/forecaster
//     time, the Tracer records where the wall-clock went; a Timeline
//     converts into trace rows via TimelineChromeEvents;
//   - a runtime/metrics sampler (runtime.go) publishing heap bytes, GC
//     activity and goroutine counts as gauges, plus net/http/pprof
//     mounted next to the other endpoints (http.go).
//
// The zero value of every handle is a no-op: a nil *Telemetry (and the
// nil *Counter/*Gauge/*Histogram/*EventLog/*Tracer handles it yields)
// can be threaded through the hot paths unconditionally. The disabled
// path performs zero allocations — testing.AllocsPerRun pins this —
// so instrumentation stays resident in the engine with no tax when
// observability is off.
package telemetry

import "context"

// Telemetry bundles a metrics registry, a lifecycle event log and a
// wall-clock tracer. The nil *Telemetry is the disabled default: every
// method is nil-safe and returns the matching nil (no-op) handle.
type Telemetry struct {
	reg    *Registry
	events *EventLog
	tracer *Tracer
}

// New returns an enabled telemetry bundle with the default event-ring
// capacity (DefaultEventCap).
func New() *Telemetry {
	return &Telemetry{
		reg:    NewRegistry(),
		events: NewEventLog(0),
		tracer: NewTracer(),
	}
}

// Registry returns the metrics registry (nil when telemetry is off).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Events returns the lifecycle event log (nil when telemetry is off).
func (t *Telemetry) Events() *EventLog {
	if t == nil {
		return nil
	}
	return t.events
}

// Tracer returns the wall-clock tracer (nil when telemetry is off).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Counter registers (or fetches) a counter series. labelKV alternates
// constant label keys and values; keys must be sorted and distinct —
// the esselint metriclabels analyzer enforces this at compile time and
// the registry re-checks at registration. Nil-safe: returns nil when
// telemetry is disabled.
func (t *Telemetry) Counter(name, help string, labelKV ...string) *Counter {
	return t.Registry().Counter(name, help, labelKV...)
}

// Gauge registers (or fetches) a gauge series. Nil-safe.
func (t *Telemetry) Gauge(name, help string, labelKV ...string) *Gauge {
	return t.Registry().Gauge(name, help, labelKV...)
}

// Histogram registers (or fetches) a fixed-bucket histogram series.
// A nil buckets slice selects DefBuckets. Nil-safe.
func (t *Telemetry) Histogram(name, help string, buckets []float64, labelKV ...string) *Histogram {
	return t.Registry().Histogram(name, help, buckets, labelKV...)
}

// Emit records one lifecycle event. Nil-safe and allocation-free.
func (t *Telemetry) Emit(task string, index, attempt int, phase Phase) {
	t.Events().Emit(task, index, attempt, phase)
}

// Span opens a wall-clock span on lane (the Chrome trace tid; use the
// member index or worker id). id >= 0 is rendered into the exported
// span name ("name-id") at export time so the hot path never formats
// strings. Nil-safe: the returned Span's End is then a no-op.
func (t *Telemetry) Span(cat, name string, id, lane int64) Span {
	return t.Tracer().Start(cat, name, id, lane)
}

// SpanCtx opens a span parented under the active span in ctx (a root
// when there is none) and returns a derived context carrying the new
// span, so callees parent under it in turn. lane < 0 inherits the
// parent's lane — the common case for phase spans that should nest
// inside the member row that opened them.
//
// Nil-safe and allocation-free when disabled: a nil *Telemetry returns
// ctx unchanged and a zero Span, with no context wrapping.
func (t *Telemetry) SpanCtx(ctx context.Context, cat, name string, id, lane int64) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	parent := SpanFromContext(ctx)
	if lane < 0 {
		lane = parent.lane
	}
	sp := t.tracer.StartChild(parent.Context(), cat, name, id, lane)
	return ContextWithSpan(ctx, sp), sp
}

// SpanRemote opens a span parented under an identity that crossed a
// process boundary (a traceparent header or a wire payload) and
// returns a context carrying it. With a zero parent it degrades to a
// root span. Nil-safe like SpanCtx.
func (t *Telemetry) SpanRemote(ctx context.Context, parent SpanContext, cat, name string, id, lane int64) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	sp := t.tracer.StartChild(parent, cat, name, id, lane)
	return ContextWithSpan(ctx, sp), sp
}
