package telemetry

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Logger is trace-correlated structured logging over log/slog, with
// the package's nil discipline: a nil *Logger is the disabled default
// and its call sites perform zero allocations — including the boxing
// of the kv variadic. That property needs care: the exported level
// methods are tiny inlinable wrappers that bail out before touching
// kv, and the non-inlined emit extracts values through a concrete type
// switch, never leaking the []any, so escape analysis keeps the
// variadic backing array and the interface boxes on the caller's
// stack. bench_test.go pins this with AllocsPerRun.
//
// kv alternates constant string keys and values (the esselint slogkv
// rule checks call sites). Supported value types: string, int, int64,
// uint64, float64, bool, time.Duration; anything else renders as
// "!badvalue". In particular errors must be passed pre-rendered
// ("err", err.Error()) — a dynamic Error() call inside the logger
// would leak the variadic and break the disabled-path alloc pin.
type Logger struct {
	h       slog.Handler
	min     slog.Level
	trace   TraceID
	span    SpanID
	dropped *atomic.Uint64 // handler write failures, shared across With copies
}

// NewLogger returns a Logger writing logfmt-style lines (slog's text
// handler) at or above min to w.
func NewLogger(w io.Writer, min slog.Level) *Logger {
	return &Logger{
		h:       slog.NewTextHandler(w, &slog.HandlerOptions{Level: min}),
		min:     min,
		dropped: new(atomic.Uint64),
	}
}

// WithSpan returns a Logger stamping sc's trace_id/span_id on every
// line, correlating log output with the span tree. Nil-safe.
func (l *Logger) WithSpan(sc SpanContext) *Logger {
	if l == nil || sc.IsZero() {
		return l
	}
	cp := *l
	cp.trace = sc.Trace
	cp.span = sc.Span
	return &cp
}

// WithContext is WithSpan over the active span in ctx. Nil-safe.
func (l *Logger) WithContext(ctx context.Context) *Logger {
	return l.WithSpan(SpanFromContext(ctx).Context())
}

// Dropped reports how many records failed to write (0 when nil).
func (l *Logger) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Debug logs at LevelDebug. kv alternates constant keys and values.
func (l *Logger) Debug(msg string, kv ...any) {
	if l == nil {
		return
	}
	l.emit(slog.LevelDebug, msg, kv)
}

// Info logs at LevelInfo. kv alternates constant keys and values.
func (l *Logger) Info(msg string, kv ...any) {
	if l == nil {
		return
	}
	l.emit(slog.LevelInfo, msg, kv)
}

// Warn logs at LevelWarn. kv alternates constant keys and values.
func (l *Logger) Warn(msg string, kv ...any) {
	if l == nil {
		return
	}
	l.emit(slog.LevelWarn, msg, kv)
}

// Error logs at LevelError. kv alternates constant keys and values.
// Pass errors pre-rendered: "err", err.Error().
func (l *Logger) Error(msg string, kv ...any) {
	if l == nil {
		return
	}
	l.emit(slog.LevelError, msg, kv)
}

// emit builds the slog.Record. It must stay non-inlined and must not
// leak kv (no slog.Any, no fmt, no dynamic method calls on elements):
// the level wrappers above stay zero-alloc on the nil path only while
// escape analysis can prove the variadic never escapes here.
//
//go:noinline
func (l *Logger) emit(level slog.Level, msg string, kv []any) {
	if level < l.min {
		return
	}
	rec := slog.NewRecord(time.Now(), level, msg, 0)
	if !l.trace.IsZero() {
		rec.AddAttrs(
			slog.String("trace_id", l.trace.String()),
			slog.String("span_id", l.span.String()),
		)
	}
	for i := 0; i < len(kv); i += 2 {
		key, _ := kv[i].(string)
		if key == "" {
			key = "!badkey"
		}
		if i+1 >= len(kv) {
			rec.AddAttrs(slog.String("!badkey", key))
			break
		}
		var v slog.Value
		switch x := kv[i+1].(type) {
		case string:
			v = slog.StringValue(x)
		case int:
			v = slog.Int64Value(int64(x))
		case int64:
			v = slog.Int64Value(x)
		case uint64:
			v = slog.Uint64Value(x)
		case float64:
			v = slog.Float64Value(x)
		case bool:
			v = slog.BoolValue(x)
		case time.Duration:
			v = slog.DurationValue(x)
		default:
			v = slog.StringValue("!badvalue")
		}
		rec.AddAttrs(slog.Attr{Key: key, Value: v})
	}
	if err := l.h.Handle(context.Background(), rec); err != nil {
		l.dropped.Add(1)
	}
}
