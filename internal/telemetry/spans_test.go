package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"esse/internal/trace"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("workflow", "cycle", 1, 0)
	inner := tr.Start("workflow", "member", 12, 3)
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	evs := tr.ChromeEvents()
	if len(evs) != 2 {
		t.Fatalf("ChromeEvents = %d, want 2", len(evs))
	}
	// End order is record order: inner finished first.
	if evs[0].Name != "member-12" || evs[1].Name != "cycle-1" {
		t.Fatalf("names = %q, %q", evs[0].Name, evs[1].Name)
	}
	for _, e := range evs {
		if e.Ph != "X" {
			t.Fatalf("ph = %q, want X", e.Ph)
		}
		if e.Pid != chromePidWall {
			t.Fatalf("pid = %d, want %d", e.Pid, chromePidWall)
		}
		if e.Dur <= 0 {
			t.Fatalf("dur = %v, want > 0", e.Dur)
		}
	}
	if evs[0].Tid != 3 || evs[1].Tid != 0 {
		t.Fatalf("tids = %d, %d, want 3, 0", evs[0].Tid, evs[1].Tid)
	}
	// The outer span contains the inner one in time.
	if evs[1].Ts > evs[0].Ts || evs[1].Ts+evs[1].Dur < evs[0].Ts+evs[0].Dur {
		t.Fatalf("outer [%v,%v] does not contain inner [%v,%v]",
			evs[1].Ts, evs[1].Ts+evs[1].Dur, evs[0].Ts, evs[0].Ts+evs[0].Dur)
	}

	// id -1 leaves the name unsuffixed.
	sp := tr.Start("workflow", "svd", -1, 0)
	sp.End()
	if evs := tr.ChromeEvents(); evs[2].Name != "svd" {
		t.Fatalf("name = %q, want svd", evs[2].Name)
	}
}

// TestChromeTraceRoundTrip pins the hand-rolled JSON writer against
// encoding/json: the output must decode into the same events, and the
// required keys (ph, ts, pid) must be present even when zero.
func TestChromeTraceRoundTrip(t *testing.T) {
	in := []ChromeEvent{
		{Name: "cycle-1", Cat: "workflow", Ph: "X", Ts: 0, Dur: 1500, Pid: 1, Tid: 0},
		{Name: `quote"and\slash`, Ph: "X", Ts: 12.25, Dur: 0.5, Pid: 2, Tid: 7},
		{Name: "zero", Ph: "X", Ts: 0, Dur: 0, Pid: 0, Tid: 0},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, in); err != nil {
		t.Fatal(err)
	}

	var out []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}

	// Required keys survive zero values (no omitempty on ph/ts/pid/tid).
	var generic []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
	for i, m := range generic {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, m)
			}
		}
		if m["ph"] != "X" {
			t.Fatalf("event %d ph = %v", i, m["ph"])
		}
	}

	// An empty trace is still a valid JSON array.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var empty []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("empty trace: %v, %v", empty, err)
	}
}

func TestTimelineChromeEvents(t *testing.T) {
	tl := trace.New()
	tl.Add(trace.ObservationTime, "obs batch", 0, 2)
	tl.Add(trace.SimulationTime, "cycle 1", 1, 4)

	evs := TimelineChromeEvents(tl, time.Second)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Pid != chromePidPaper {
			t.Fatalf("pid = %d, want %d", e.Pid, chromePidPaper)
		}
		if e.Ph != "X" {
			t.Fatalf("ph = %q, want X", e.Ph)
		}
	}
	// One paper time unit = 1 s = 1e6 trace µs; one tid per Kind.
	var obs, sim *ChromeEvent
	for i := range evs {
		switch evs[i].Tid {
		case int64(trace.ObservationTime):
			obs = &evs[i]
		case int64(trace.SimulationTime):
			sim = &evs[i]
		}
	}
	if obs == nil || sim == nil {
		t.Fatalf("missing kind lanes: %+v", evs)
	}
	if obs.Ts != 0 || obs.Dur != 2e6 {
		t.Fatalf("obs = ts %v dur %v, want 0, 2e6", obs.Ts, obs.Dur)
	}
	if sim.Ts != 1e6 || sim.Dur != 3e6 {
		t.Fatalf("sim = ts %v dur %v, want 1e6, 3e6", sim.Ts, sim.Dur)
	}

	if evs := TimelineChromeEvents(nil, time.Second); evs != nil {
		t.Fatalf("nil timeline = %+v, want nil", evs)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("cat", "name", 0, 0)
	sp.End()
	if tr.Len() != 0 || tr.ChromeEvents() != nil {
		t.Fatal("nil tracer must be inert")
	}
}
