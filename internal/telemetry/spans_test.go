package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"esse/internal/trace"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("workflow", "cycle", 1, 0)
	inner := tr.Start("workflow", "member", 12, 3)
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	evs := tr.ChromeEvents()
	if len(evs) != 2 {
		t.Fatalf("ChromeEvents = %d, want 2", len(evs))
	}
	// End order is record order: inner finished first.
	if evs[0].Name != "member-12" || evs[1].Name != "cycle-1" {
		t.Fatalf("names = %q, %q", evs[0].Name, evs[1].Name)
	}
	for _, e := range evs {
		if e.Ph != "X" {
			t.Fatalf("ph = %q, want X", e.Ph)
		}
		if e.Pid != chromePidWall {
			t.Fatalf("pid = %d, want %d", e.Pid, chromePidWall)
		}
		if e.Dur <= 0 {
			t.Fatalf("dur = %v, want > 0", e.Dur)
		}
	}
	if evs[0].Tid != 3 || evs[1].Tid != 0 {
		t.Fatalf("tids = %d, %d, want 3, 0", evs[0].Tid, evs[1].Tid)
	}
	// The outer span contains the inner one in time.
	if evs[1].Ts > evs[0].Ts || evs[1].Ts+evs[1].Dur < evs[0].Ts+evs[0].Dur {
		t.Fatalf("outer [%v,%v] does not contain inner [%v,%v]",
			evs[1].Ts, evs[1].Ts+evs[1].Dur, evs[0].Ts, evs[0].Ts+evs[0].Dur)
	}

	// id -1 leaves the name unsuffixed.
	sp := tr.Start("workflow", "svd", -1, 0)
	sp.End()
	if evs := tr.ChromeEvents(); evs[2].Name != "svd" {
		t.Fatalf("name = %q, want svd", evs[2].Name)
	}
}

// TestChromeTraceRoundTrip pins the hand-rolled JSON writer against
// encoding/json: the output must decode into the same events, and the
// required keys (ph, ts, pid) must be present even when zero.
func TestChromeTraceRoundTrip(t *testing.T) {
	in := []ChromeEvent{
		{Name: "cycle-1", Cat: "workflow", Ph: "X", Ts: 0, Dur: 1500, Pid: 1, Tid: 0,
			Args: &SpanArgs{TraceID: "00ab", SpanID: "0001"}},
		{Name: "member-2", Cat: "workflow", Ph: "X", Ts: 1, Dur: 2, Pid: 1, Tid: 1,
			Args: &SpanArgs{TraceID: "00ab", SpanID: "0002", ParentSpan: "0001"}},
		{Name: "parent", Cat: "flow", Ph: "s", Ts: 1, Pid: 1, Tid: 0, ID: "0002"},
		{Name: "parent", Cat: "flow", Ph: "f", Ts: 1, Pid: 1, Tid: 1, ID: "0002", BP: "e"},
		{Name: `quote"and\slash`, Ph: "X", Ts: 12.25, Dur: 0.5, Pid: 2, Tid: 7},
		{Name: "zero", Ph: "X", Ts: 0, Dur: 0, Pid: 0, Tid: 0},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, in); err != nil {
		t.Fatal(err)
	}

	var out []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(in[i], out[i]) {
			t.Fatalf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}

	// Required keys survive zero values (no omitempty on ph/ts/pid/tid).
	var generic []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
	for i, m := range generic {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, m)
			}
		}
		if ph, ok := m["ph"].(string); !ok || ph == "" {
			t.Fatalf("event %d ph = %v", i, m["ph"])
		}
	}

	// An empty trace is still a valid JSON array.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var empty []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("empty trace: %v, %v", empty, err)
	}
}

func TestTimelineChromeEvents(t *testing.T) {
	tl := trace.New()
	tl.Add(trace.ObservationTime, "obs batch", 0, 2)
	tl.Add(trace.SimulationTime, "cycle 1", 1, 4)

	evs := TimelineChromeEvents(tl, time.Second)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Pid != chromePidPaper {
			t.Fatalf("pid = %d, want %d", e.Pid, chromePidPaper)
		}
		if e.Ph != "X" {
			t.Fatalf("ph = %q, want X", e.Ph)
		}
	}
	// One paper time unit = 1 s = 1e6 trace µs; one tid per Kind.
	var obs, sim *ChromeEvent
	for i := range evs {
		switch evs[i].Tid {
		case int64(trace.ObservationTime):
			obs = &evs[i]
		case int64(trace.SimulationTime):
			sim = &evs[i]
		}
	}
	if obs == nil || sim == nil {
		t.Fatalf("missing kind lanes: %+v", evs)
	}
	if obs.Ts != 0 || obs.Dur != 2e6 {
		t.Fatalf("obs = ts %v dur %v, want 0, 2e6", obs.Ts, obs.Dur)
	}
	if sim.Ts != 1e6 || sim.Dur != 3e6 {
		t.Fatalf("sim = ts %v dur %v, want 1e6, 3e6", sim.Ts, sim.Dur)
	}

	if evs := TimelineChromeEvents(nil, time.Second); evs != nil {
		t.Fatalf("nil timeline = %+v, want nil", evs)
	}
}

// TestChromeEventsFlowPairs pins the parent-linked export: every
// locally-finished child yields an "s"/"f" flow pair binding its lane
// to its parent's, and every X event carries its span identity.
func TestChromeEventsFlowPairs(t *testing.T) {
	tr := NewTracer()
	tr.SetTraceID(DeriveTraceID(21))
	root := tr.StartChild(SpanContext{}, "realtime", "cycle", 0, 0)
	child := tr.StartChild(root.Context(), "workflow", "member", 4, 2)
	child.End()
	root.End()

	evs := tr.ChromeEvents()
	// 2 X events + one flow pair for the child.
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	var x []ChromeEvent
	var s, f *ChromeEvent
	for i := range evs {
		switch evs[i].Ph {
		case "X":
			x = append(x, evs[i])
		case "s":
			s = &evs[i]
		case "f":
			f = &evs[i]
		}
	}
	if len(x) != 2 || s == nil || f == nil {
		t.Fatalf("mix = %+v", evs)
	}
	for _, e := range x {
		if e.Args == nil || e.Args.TraceID != tr.TraceID().String() || e.Args.SpanID == "" {
			t.Fatalf("X event missing identity: %+v", e)
		}
	}
	// The child X event names its parent; the root does not.
	if x[0].Name != "member-4" || x[0].Args.ParentSpan != root.Context().SpanHex() {
		t.Fatalf("child identity = %+v", x[0].Args)
	}
	if x[1].Args.ParentSpan != "" {
		t.Fatalf("root grew a parent: %+v", x[1].Args)
	}
	// Flow pair: s on the parent's lane, f (bp=e) on the child's, both
	// carrying the child span id, s's ts inside the parent interval.
	if s.Tid != 0 || f.Tid != 2 || f.BP != "e" {
		t.Fatalf("flow lanes/bp = %+v, %+v", s, f)
	}
	if s.ID != child.Context().SpanHex() || f.ID != s.ID {
		t.Fatalf("flow ids = %q, %q, want %q", s.ID, f.ID, child.Context().SpanHex())
	}
	rootEv := x[1]
	if s.Ts < rootEv.Ts || s.Ts > rootEv.Ts+rootEv.Dur {
		t.Fatalf("s.ts %v outside parent [%v, %v]", s.Ts, rootEv.Ts, rootEv.Ts+rootEv.Dur)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("cat", "name", 0, 0)
	sp.End()
	if tr.Len() != 0 || tr.ChromeEvents() != nil {
		t.Fatal("nil tracer must be inert")
	}
}
