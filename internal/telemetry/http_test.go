package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	tel := New()
	tel.Counter("esse_http_total", "Handled requests.").Add(2)
	h := tel.Handler()

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	exp, err := ParsePrometheus(rec.Body)
	if err != nil {
		t.Fatalf("unparseable scrape: %v", err)
	}
	if v, ok := exp.Value("esse_http_total"); !ok || v != 2 {
		t.Fatalf("esse_http_total = %v, %v", v, ok)
	}
}

func TestEventsEndpoint(t *testing.T) {
	tel := New()
	for i := 0; i < 5; i++ {
		tel.Emit("member", i, 0, PhaseDone)
	}
	h := tel.Handler()

	rec := get(t, h, "/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var reply struct {
		Total  int64   `json:"total"`
		Oldest int64   `json:"oldest"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Total != 5 || reply.Oldest != 0 || len(reply.Events) != 5 {
		t.Fatalf("reply = %+v", reply)
	}

	rec = get(t, h, "/events?since=3")
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Events) != 2 || reply.Events[0].Seq != 3 {
		t.Fatalf("since=3 reply = %+v", reply)
	}

	// A drained increment is an empty array, not null.
	rec = get(t, h, "/events?since=5")
	if !strings.Contains(rec.Body.String(), `"events": []`) {
		t.Fatalf("empty increment = %s", rec.Body.String())
	}

	if rec := get(t, h, "/events?since=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since status = %d", rec.Code)
	}
	if rec := get(t, h, "/events?since=-1"); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative since status = %d", rec.Code)
	}
}

func TestTraceEndpoint(t *testing.T) {
	tel := New()
	sp := tel.Span("workflow", "member", 4, 1)
	sp.End()
	rec := get(t, tel.Handler(), "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var evs []ChromeEvent
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("trace body not JSON: %v", err)
	}
	if len(evs) != 1 || evs[0].Name != "member-4" || evs[0].Ph != "X" {
		t.Fatalf("trace = %+v", evs)
	}
}

func TestPprofMounted(t *testing.T) {
	rec := get(t, New().Handler(), "/debug/pprof/cmdline")
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof status = %d", rec.Code)
	}
}

func TestNilTelemetryHTTP(t *testing.T) {
	var tel *Telemetry
	tel.Mount(nil)                // must not panic
	tel.Mount(http.NewServeMux()) // no-op
	h := tel.Handler()
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusNotFound {
		t.Fatalf("nil telemetry /metrics status = %d, want 404", rec.Code)
	}
}
