package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestRuntimeSampler(t *testing.T) {
	tel := New()
	s := StartRuntimeSampler(tel, time.Hour) // tick never fires; SampleOnce drives it
	if s == nil {
		t.Fatal("sampler must start when telemetry is enabled")
	}
	s.SampleOnce()

	exp, err := ParsePrometheus(strings.NewReader(scrapeString(t, tel.Registry())))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("go_goroutines"); !ok || v < 1 {
		t.Fatalf("go_goroutines = %v, %v", v, ok)
	}
	if v, ok := exp.Value("go_heap_objects_bytes"); !ok || v <= 0 {
		t.Fatalf("go_heap_objects_bytes = %v, %v", v, ok)
	}
	if _, ok := exp.Value("go_gc_cycles_total"); !ok {
		t.Fatal("go_gc_cycles_total missing")
	}
	if _, ok := exp.Value("go_gc_pause_seconds_total"); !ok {
		t.Fatal("go_gc_pause_seconds_total missing")
	}

	s.Stop() // must terminate the goroutine and not hang
}

func TestRuntimeSamplerDisabled(t *testing.T) {
	s := StartRuntimeSampler(nil, time.Millisecond)
	if s != nil {
		t.Fatal("disabled telemetry must not start a sampler")
	}
	s.SampleOnce() // nil-safe
	s.Stop()       // nil-safe
}
