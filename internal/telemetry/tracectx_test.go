package telemetry

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestTraceIDDerivationAndFormat(t *testing.T) {
	a := DeriveTraceID(1)
	b := DeriveTraceID(1)
	c := DeriveTraceID(2)
	if a != b {
		t.Fatal("DeriveTraceID is not deterministic")
	}
	if a == c {
		t.Fatal("distinct seeds collided")
	}
	if a.IsZero() || DeriveTraceID(0).IsZero() {
		t.Fatal("derived trace ids must be nonzero")
	}
	s := a.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("TraceID.String() = %q, want 32 lowercase hex", s)
	}
	var zero TraceID
	if !zero.IsZero() {
		t.Fatal("zero TraceID not IsZero")
	}
}

func TestSpanContextFromHex(t *testing.T) {
	tr := DeriveTraceID(7)
	sc := SpanContext{Trace: tr, Span: 0x1234}
	back, ok := SpanContextFromHex(sc.TraceHex(), sc.SpanHex())
	if !ok || back != sc {
		t.Fatalf("round trip = %+v, %v", back, ok)
	}
	// Empty halves decode as zero halves.
	if got, ok := SpanContextFromHex("", ""); !ok || !got.IsZero() {
		t.Fatalf("empty = %+v, %v", got, ok)
	}
	bad := []struct{ tr, sp string }{
		{"xyz", sc.SpanHex()},                                    // non-hex
		{sc.TraceHex()[:31], sc.SpanHex()},                       // short trace
		{sc.TraceHex() + "0", sc.SpanHex()},                      // long trace
		{sc.TraceHex(), "123"},                                   // short span
		{strings.ToUpper(sc.TraceHex()), "0" + sc.SpanHex()[1:]}, // uppercase
	}
	for _, c := range bad {
		if _, ok := SpanContextFromHex(c.tr, c.sp); ok {
			t.Errorf("accepted %q/%q", c.tr, c.sp)
		}
	}
	// Zero context renders empty hex so wire payloads stay omitempty.
	var zero SpanContext
	if zero.TraceHex() != "" || zero.SpanHex() != "" {
		t.Fatalf("zero hex = %q/%q, want empty", zero.TraceHex(), zero.SpanHex())
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: DeriveTraceID(3), Span: 42}
	h := FormatTraceParent(sc)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("header = %q", h)
	}
	back, ok := ParseTraceParent(h)
	if !ok || back != sc {
		t.Fatalf("parse = %+v, %v", back, ok)
	}
	// Any flags byte is accepted on parse; rendering is canonical.
	variant := h[:len(h)-2] + "ff"
	if got, ok := ParseTraceParent(variant); !ok || got != sc {
		t.Fatalf("flags variant rejected: %q", variant)
	}
	if re := FormatTraceParent(back); re != h {
		t.Fatalf("re-render %q != %q", re, h)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	good := FormatTraceParent(SpanContext{Trace: DeriveTraceID(3), Span: 42})
	bad := []string{
		"",
		good[:54],                          // short
		good + "0",                         // long
		"01" + good[2:],                    // future version
		strings.ToUpper(good),              // uppercase hex
		strings.Replace(good, "-", "_", 1), // bad separator
		"00-" + strings.Repeat("0", 32) + good[35:], // zero trace
		good[:36] + strings.Repeat("0", 16) + "-01", // zero span
		"00-" + strings.Repeat("g", 32) + good[35:], // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestInjectExtract(t *testing.T) {
	sc := SpanContext{Trace: DeriveTraceID(9), Span: 7}
	h := http.Header{}
	Inject(h, sc)
	got, ok := Extract(h)
	if !ok || got != sc {
		t.Fatalf("extract = %+v, %v", got, ok)
	}
	// A zero context must not be injected at all.
	empty := http.Header{}
	Inject(empty, SpanContext{})
	if empty.Get(TraceParentHeader) != "" {
		t.Fatal("zero context injected a header")
	}
	if _, ok := Extract(empty); ok {
		t.Fatal("extracted a context from no header")
	}
	// Half-zero contexts are equally unsound on the wire.
	half := http.Header{}
	Inject(half, SpanContext{Trace: sc.Trace})
	if half.Get(TraceParentHeader) != "" {
		t.Fatal("half-zero context injected a header")
	}
}

func TestContextCarriesSpan(t *testing.T) {
	tr := NewTracer()
	tr.SetTraceID(DeriveTraceID(5))
	sp := tr.StartChild(SpanContext{}, "workflow", "cycle", 0, 0)
	ctx := ContextWithSpan(context.Background(), sp)
	got := SpanFromContext(ctx)
	if got.Context() != sp.Context() {
		t.Fatalf("span from ctx = %+v, want %+v", got.Context(), sp.Context())
	}
	// Absent span: zero value, zero context.
	if !SpanFromContext(context.Background()).Context().IsZero() {
		t.Fatal("empty ctx yielded a span")
	}
	// A dead Span (zero value) does not replace the ctx.
	if ctx2 := ContextWithSpan(ctx, Span{}); ctx2 != ctx {
		t.Fatal("zero span replaced the context")
	}
}

func TestSetTraceIDThreadsIntoSpans(t *testing.T) {
	tr := NewTracer()
	want := DeriveTraceID(11)
	tr.SetTraceID(want)
	if tr.TraceID() != want {
		t.Fatalf("TraceID = %v, want %v", tr.TraceID(), want)
	}
	// Zero is ignored, not adopted.
	tr.SetTraceID(TraceID{})
	if tr.TraceID() != want {
		t.Fatal("zero SetTraceID overwrote the identity")
	}
	sp := tr.StartChild(SpanContext{}, "c", "n", -1, 0)
	if sp.Context().Trace != want {
		t.Fatalf("span trace = %v, want %v", sp.Context().Trace, want)
	}
	// A remote parent overrides the local identity.
	remote := SpanContext{Trace: DeriveTraceID(12), Span: 99}
	child := tr.StartChild(remote, "c", "n", -1, 0)
	if child.Context().Trace != remote.Trace {
		t.Fatal("remote parent trace not adopted")
	}
}
