package telemetry

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// shutdownGrace bounds the drain when a context-driven shutdown asks
// in-flight requests to finish.
const shutdownGrace = 5 * time.Second

// NewServer wraps h in an http.Server with the repository's standard
// bounds: ReadHeaderTimeout keeps a client trickling header bytes from
// pinning a connection forever. Telemetry and monitor endpoints may
// stream large traces, so no blanket write timeout is imposed.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
}

// Serve runs h on addr until the listener fails or ctx is cancelled,
// then drains in-flight requests for up to shutdownGrace before
// closing. A context-driven shutdown returns nil: it is the expected
// way down, not an error.
func Serve(ctx context.Context, addr string, h http.Handler) error {
	srv := NewServer(addr, h)
	errc := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		// Buffered send with a default: if Serve already returned
		// through ctx.Done, nobody drains errc and the goroutine must
		// still exit.
		select {
		case errc <- err:
		default:
		}
	}()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}
