package ncdf

import (
	"fmt"

	"esse/internal/grid"
)

// FromState packs an ocean state vector into a dataset with one variable
// per layout entry, on (lev, lat, lon) axes. This is the file each
// ensemble member writes home ("the full resulting dataset of the
// ensemble member forecast is required, not just a small set of
// numbers").
func FromState(l *grid.StateLayout, state []float64, globalAttrs map[string]string) (*File, error) {
	if len(state) != l.Dim() {
		return nil, fmt.Errorf("ncdf: state dim %d != layout dim %d", len(state), l.Dim())
	}
	g := l.G
	f := New()
	for k, v := range globalAttrs {
		f.Attrs[k] = v
	}
	if err := f.AddDim("lon", g.NX); err != nil {
		return nil, err
	}
	if err := f.AddDim("lat", g.NY); err != nil {
		return nil, err
	}
	if err := f.AddDim("lev", g.NZ); err != nil {
		return nil, err
	}
	for vi, spec := range l.Vars {
		data := l.Slice(state, vi)
		cp := make([]float64, len(data))
		copy(cp, data)
		var dims []string
		if spec.Levels == 1 {
			dims = []string{"lat", "lon"}
		} else if spec.Levels == g.NZ {
			dims = []string{"lev", "lat", "lon"}
		} else {
			// Partial-depth variable: give it its own level axis.
			dn := fmt.Sprintf("lev_%s", spec.Name)
			if err := f.AddDim(dn, spec.Levels); err != nil {
				return nil, err
			}
			dims = []string{dn, "lat", "lon"}
		}
		if err := f.AddVar(spec.Name, dims, map[string]string{"grid": "c"}, cp); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ToState unpacks a dataset produced by FromState back into a state
// vector for the given layout.
func ToState(f *File, l *grid.StateLayout) ([]float64, error) {
	state := l.NewState()
	for vi, spec := range l.Vars {
		v, ok := f.Var(spec.Name)
		if !ok {
			return nil, fmt.Errorf("ncdf: dataset lacks variable %q", spec.Name)
		}
		dst := l.Slice(state, vi)
		if len(v.Data) != len(dst) {
			return nil, fmt.Errorf("ncdf: variable %q has %d values, layout wants %d", spec.Name, len(v.Data), len(dst))
		}
		copy(dst, v.Data)
	}
	return state, nil
}
